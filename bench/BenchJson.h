//===- bench/BenchJson.h - Shared --json output for bench drivers -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bench driver accepts `--json <file>` and emits its measurements
/// in the shared "cgcm-bench-v1" schema (docs/Observability.md):
///
///   { "schema": "cgcm-bench-v1", "bench": "<driver>", "rows": [
///       { "workload": ..., "config": ..., "cycles": ...,
///         "bytes_htod": ..., "bytes_dtoh": ..., "speedup": ... }, ... ] }
///
/// `speedup` is relative to the driver's own baseline configuration and 0
/// when the row has no meaningful baseline.
///
/// Drivers that instrument the pass pipeline (time_passes,
/// ablation_passes) append two optional top-level sections:
///
///   "pass_timings":   [ { "pass": ..., "wall_ms": ..., "ir_delta": ...,
///                         "runs": ... }, ... ]
///   "analysis_cache": [ { "analysis": ..., "constructions": ...,
///                         "hits": ... }, ... ]
///
/// aggregated over every pipeline execution the driver performed.
///
/// Drivers that exercise the asynchronous transfer engine (micro_runtime,
/// fig4_speedup) append one more optional top-level section
/// (docs/TransferEngine.md):
///
///   "transfer_overlap": [ { "workload": ..., "streams": ...,
///       "coalesce": ..., "pinned": ..., "total_cycles": ...,
///       "wall_cycles": ..., "stall_cycles": ...,
///       "overlap_saved_cycles": ..., "async_transfers": ...,
///       "dma_batches": ..., "coalesced_transfers": ...,
///       "host_syncs": ..., "output_equal": ... }, ... ]
///
/// Every driver also accepts `--streams=<n>`, `--no-async`, and
/// `--no-coalesce` (mirroring cgcmc); drivers that execute workloads run
/// them under the requested transfer model.
///
/// Every artifact additionally embeds the process-wide metrics registry
/// (support/Metrics.h) as a "metrics" section in the cgcm-metrics-v1
/// shape, so cgcm-metrics-diff can regression-compare bench runs without
/// a separate export step.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_BENCH_BENCHJSON_H
#define CGCM_BENCH_BENCHJSON_H

#include "support/JSON.h"
#include "support/Metrics.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace cgcm {
namespace benchjson {

struct Row {
  std::string Workload;
  std::string Config;
  double Cycles = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  double Speedup = 0;
};

/// One "pass_timings" entry: aggregated wall time, IR-size delta, and
/// execution count of one pass (pass/StandardInstrumentations.h produces
/// the per-run numbers; drivers sum them).
struct PassTimingRow {
  std::string Pass;
  double WallMs = 0;
  int64_t IrDelta = 0;
  uint64_t Runs = 0;
};

/// One "analysis_cache" entry: how often the named analysis was rebuilt
/// versus served from the manager's cache.
struct AnalysisCacheRow {
  std::string Analysis;
  uint64_t Constructions = 0;
  uint64_t Hits = 0;
};

/// One "transfer_overlap" entry: a workload (or synthetic scenario) run
/// under one asynchronous-engine configuration, with the overlap-aware
/// wall clock next to the serialized cycle total so the saving is
/// visible in the artifact itself.
struct TransferOverlapRow {
  std::string Workload;
  unsigned Streams = 0; ///< 0 = the synchronous reference row.
  bool Coalesce = true;
  bool Pinned = false;
  double TotalCycles = 0;        ///< Serialized sum of all charges.
  double WallCycles = 0;         ///< Overlap-aware modeled wall clock.
  double StallCycles = 0;        ///< Host cycles blocked at use points.
  double OverlapSavedCycles = 0; ///< TotalCycles - WallCycles (>= 0).
  uint64_t AsyncTransfers = 0;
  uint64_t DmaBatches = 0;
  uint64_t CoalescedTransfers = 0;
  uint64_t HostSyncs = 0;
  bool OutputEqual = true; ///< Async output bit-identical to sync.
};

/// One "devices" entry: per-device traffic and compute of a device-pool
/// run (docs/MultiGPU.md). Only emitted when a driver ran with
/// --devices > 1, so single-device artifacts stay byte-identical.
struct DeviceRow {
  unsigned Device = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  uint64_t TransfersHtoD = 0;
  uint64_t TransfersDtoH = 0;
  uint64_t P2PTransfers = 0;
  uint64_t P2PBytes = 0;
  double ComputeCycles = 0;
};

/// The optional pipeline-instrumentation sections; empty vectors are
/// omitted from the output.
struct PipelineSections {
  std::vector<PassTimingRow> PassTimings;
  std::vector<AnalysisCacheRow> AnalysisCache;
  std::vector<TransferOverlapRow> TransferOverlap;
  std::vector<DeviceRow> Devices;
};

/// Asynchronous-transfer-engine and device-pool knobs shared by every
/// bench driver (mirroring cgcmc's flags; see docs/TransferEngine.md
/// and docs/MultiGPU.md).
struct StreamOpts {
  unsigned Streams = 0; ///< 0 = the default synchronous model.
  bool Coalesce = true;
  unsigned Devices = 1;         ///< Simulated GPUs in the pool.
  std::string Placement = "rr"; ///< "rr" (round-robin) or "bytes".
};

/// Extracts `--streams=<n>`, `--no-async`, `--no-coalesce`,
/// `--devices=<n>`, and `--placement=<rr|bytes>` from the argument
/// vector (removing the tokens so later parsing never sees them).
/// Returns false on a malformed value.
inline bool consumeStreamArgs(int &Argc, char **Argv, StreamOpts &O) {
  int Out = 1;
  bool Ok = true;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--streams=", 0) == 0) {
      int N = std::atoi(A.c_str() + 10);
      if (N < 1) {
        std::fprintf(stderr, "%s: --streams wants a positive count\n",
                     Argv[0]);
        Ok = false;
      } else
        O.Streams = static_cast<unsigned>(N);
    } else if (A == "--no-async")
      O.Streams = 0;
    else if (A == "--no-coalesce")
      O.Coalesce = false;
    else if (A.rfind("--devices=", 0) == 0) {
      int N = std::atoi(A.c_str() + 10);
      if (N < 1) {
        std::fprintf(stderr, "%s: --devices wants a positive count\n",
                     Argv[0]);
        Ok = false;
      } else
        O.Devices = static_cast<unsigned>(N);
    } else if (A.rfind("--placement=", 0) == 0) {
      std::string P = A.substr(12);
      if (P != "rr" && P != "bytes") {
        std::fprintf(stderr, "%s: --placement wants 'rr' or 'bytes'\n",
                     Argv[0]);
        Ok = false;
      } else
        O.Placement = P;
    } else
      Argv[Out++] = Argv[I];
  }
  Argc = Out;
  return Ok;
}

/// Handles `--help` / `-h`: prints the shared bench usage block (plus
/// \p Extra, one line per driver-specific flag) and returns true when
/// the caller should exit successfully.
inline bool consumeHelpArg(int Argc, char **Argv, const char *Extra = "") {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A != "--help" && A != "-h")
      continue;
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --json <file>   write results in the cgcm-bench-v1 schema\n"
        "  --streams=<n>   run workloads under the asynchronous transfer\n"
        "                  engine with <n> DMA streams\n"
        "  --no-async      force the synchronous transfer model (default)\n"
        "  --no-coalesce   with --streams, disable DMA-batch coalescing\n"
        "  --devices=<n>   run workloads on a pool of <n> simulated GPUs\n"
        "                  (default 1; shardable DOALL kernels split)\n"
        "  --placement=<p> device-pool placement policy: rr (round-robin,\n"
        "                  default) or bytes (bytes-balanced)\n"
        "%s",
        Argv[0], Extra);
    return true;
  }
  return false;
}

/// Extracts `--json <file>` from the argument vector (removing both
/// tokens so later parsing never sees them) and returns the path, or ""
/// when the flag is absent.
inline std::string consumeJsonArg(int &Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      std::string Path = Argv[I + 1];
      for (int J = I; J + 2 < Argc; ++J)
        Argv[J] = Argv[J + 2];
      Argc -= 2;
      return Path;
    }
  }
  return "";
}

/// Writes \p Rows (plus \p Sections, when any are non-empty) to \p Path
/// in the shared schema; no-op when \p Path is empty. Returns false only
/// when the file cannot be opened.
inline bool writeBenchJson(const std::string &Path, const std::string &Bench,
                           const std::vector<Row> &Rows,
                           const PipelineSections &Sections = {}) {
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out)
    return false;
  JsonWriter W(Out);
  W.beginObject();
  W.key("schema").string("cgcm-bench-v1");
  W.key("bench").string(Bench);
  W.key("rows").beginArray();
  for (const Row &R : Rows) {
    W.beginObject();
    W.key("workload").string(R.Workload);
    W.key("config").string(R.Config);
    W.key("cycles").number(R.Cycles);
    W.key("bytes_htod").number(R.BytesHtoD);
    W.key("bytes_dtoh").number(R.BytesDtoH);
    W.key("speedup").number(R.Speedup);
    W.endObject();
  }
  W.endArray();
  if (!Sections.PassTimings.empty()) {
    W.key("pass_timings").beginArray();
    for (const PassTimingRow &T : Sections.PassTimings) {
      W.beginObject();
      W.key("pass").string(T.Pass);
      W.key("wall_ms").number(T.WallMs);
      W.key("ir_delta").number(T.IrDelta);
      W.key("runs").number(T.Runs);
      W.endObject();
    }
    W.endArray();
  }
  if (!Sections.AnalysisCache.empty()) {
    W.key("analysis_cache").beginArray();
    for (const AnalysisCacheRow &C : Sections.AnalysisCache) {
      W.beginObject();
      W.key("analysis").string(C.Analysis);
      W.key("constructions").number(C.Constructions);
      W.key("hits").number(C.Hits);
      W.endObject();
    }
    W.endArray();
  }
  if (!Sections.TransferOverlap.empty()) {
    W.key("transfer_overlap").beginArray();
    for (const TransferOverlapRow &T : Sections.TransferOverlap) {
      W.beginObject();
      W.key("workload").string(T.Workload);
      W.key("streams").number(static_cast<uint64_t>(T.Streams));
      W.key("coalesce").boolean(T.Coalesce);
      W.key("pinned").boolean(T.Pinned);
      W.key("total_cycles").number(T.TotalCycles);
      W.key("wall_cycles").number(T.WallCycles);
      W.key("stall_cycles").number(T.StallCycles);
      W.key("overlap_saved_cycles").number(T.OverlapSavedCycles);
      W.key("async_transfers").number(T.AsyncTransfers);
      W.key("dma_batches").number(T.DmaBatches);
      W.key("coalesced_transfers").number(T.CoalescedTransfers);
      W.key("host_syncs").number(T.HostSyncs);
      W.key("output_equal").boolean(T.OutputEqual);
      W.endObject();
    }
    W.endArray();
  }
  if (!Sections.Devices.empty()) {
    W.key("devices").beginArray();
    for (const DeviceRow &D : Sections.Devices) {
      W.beginObject();
      W.key("device").number(static_cast<uint64_t>(D.Device));
      W.key("bytes_htod").number(D.BytesHtoD);
      W.key("bytes_dtoh").number(D.BytesDtoH);
      W.key("transfers_htod").number(D.TransfersHtoD);
      W.key("transfers_dtoh").number(D.TransfersDtoH);
      W.key("p2p_transfers").number(D.P2PTransfers);
      W.key("p2p_bytes").number(D.P2PBytes);
      W.key("compute_cycles").number(D.ComputeCycles);
      W.endObject();
    }
    W.endArray();
  }
  W.key("metrics");
  writeMetricsObject(W, MetricsRegistry::get().snapshot());
  W.endObject();
  Out << "\n";
  return true;
}

} // namespace benchjson
} // namespace cgcm

#endif // CGCM_BENCH_BENCHJSON_H
