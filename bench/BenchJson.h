//===- bench/BenchJson.h - Shared --json output for bench drivers -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bench driver accepts `--json <file>` and emits its measurements
/// in the shared "cgcm-bench-v1" schema (docs/Observability.md):
///
///   { "schema": "cgcm-bench-v1", "bench": "<driver>", "rows": [
///       { "workload": ..., "config": ..., "cycles": ...,
///         "bytes_htod": ..., "bytes_dtoh": ..., "speedup": ... }, ... ] }
///
/// `speedup` is relative to the driver's own baseline configuration and 0
/// when the row has no meaningful baseline.
///
/// Drivers that instrument the pass pipeline (time_passes,
/// ablation_passes) append two optional top-level sections:
///
///   "pass_timings":   [ { "pass": ..., "wall_ms": ..., "ir_delta": ...,
///                         "runs": ... }, ... ]
///   "analysis_cache": [ { "analysis": ..., "constructions": ...,
///                         "hits": ... }, ... ]
///
/// aggregated over every pipeline execution the driver performed.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_BENCH_BENCHJSON_H
#define CGCM_BENCH_BENCHJSON_H

#include "support/JSON.h"

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace cgcm {
namespace benchjson {

struct Row {
  std::string Workload;
  std::string Config;
  double Cycles = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  double Speedup = 0;
};

/// One "pass_timings" entry: aggregated wall time, IR-size delta, and
/// execution count of one pass (pass/StandardInstrumentations.h produces
/// the per-run numbers; drivers sum them).
struct PassTimingRow {
  std::string Pass;
  double WallMs = 0;
  int64_t IrDelta = 0;
  uint64_t Runs = 0;
};

/// One "analysis_cache" entry: how often the named analysis was rebuilt
/// versus served from the manager's cache.
struct AnalysisCacheRow {
  std::string Analysis;
  uint64_t Constructions = 0;
  uint64_t Hits = 0;
};

/// The optional pipeline-instrumentation sections; empty vectors are
/// omitted from the output.
struct PipelineSections {
  std::vector<PassTimingRow> PassTimings;
  std::vector<AnalysisCacheRow> AnalysisCache;
};

/// Extracts `--json <file>` from the argument vector (removing both
/// tokens so later parsing never sees them) and returns the path, or ""
/// when the flag is absent.
inline std::string consumeJsonArg(int &Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      std::string Path = Argv[I + 1];
      for (int J = I; J + 2 < Argc; ++J)
        Argv[J] = Argv[J + 2];
      Argc -= 2;
      return Path;
    }
  }
  return "";
}

/// Writes \p Rows (plus \p Sections, when any are non-empty) to \p Path
/// in the shared schema; no-op when \p Path is empty. Returns false only
/// when the file cannot be opened.
inline bool writeBenchJson(const std::string &Path, const std::string &Bench,
                           const std::vector<Row> &Rows,
                           const PipelineSections &Sections = {}) {
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out)
    return false;
  JsonWriter W(Out);
  W.beginObject();
  W.key("schema").string("cgcm-bench-v1");
  W.key("bench").string(Bench);
  W.key("rows").beginArray();
  for (const Row &R : Rows) {
    W.beginObject();
    W.key("workload").string(R.Workload);
    W.key("config").string(R.Config);
    W.key("cycles").number(R.Cycles);
    W.key("bytes_htod").number(R.BytesHtoD);
    W.key("bytes_dtoh").number(R.BytesDtoH);
    W.key("speedup").number(R.Speedup);
    W.endObject();
  }
  W.endArray();
  if (!Sections.PassTimings.empty()) {
    W.key("pass_timings").beginArray();
    for (const PassTimingRow &T : Sections.PassTimings) {
      W.beginObject();
      W.key("pass").string(T.Pass);
      W.key("wall_ms").number(T.WallMs);
      W.key("ir_delta").number(T.IrDelta);
      W.key("runs").number(T.Runs);
      W.endObject();
    }
    W.endArray();
  }
  if (!Sections.AnalysisCache.empty()) {
    W.key("analysis_cache").beginArray();
    for (const AnalysisCacheRow &C : Sections.AnalysisCache) {
      W.beginObject();
      W.key("analysis").string(C.Analysis);
      W.key("constructions").number(C.Constructions);
      W.key("hits").number(C.Hits);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
  Out << "\n";
  return true;
}

} // namespace benchjson
} // namespace cgcm

#endif // CGCM_BENCH_BENCHJSON_H
