//===- bench/BenchJson.h - Shared --json output for bench drivers -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bench driver accepts `--json <file>` and emits its measurements
/// in the shared "cgcm-bench-v1" schema (docs/Observability.md):
///
///   { "schema": "cgcm-bench-v1", "bench": "<driver>", "rows": [
///       { "workload": ..., "config": ..., "cycles": ...,
///         "bytes_htod": ..., "bytes_dtoh": ..., "speedup": ... }, ... ] }
///
/// `speedup` is relative to the driver's own baseline configuration and 0
/// when the row has no meaningful baseline.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_BENCH_BENCHJSON_H
#define CGCM_BENCH_BENCHJSON_H

#include "support/JSON.h"

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace cgcm {
namespace benchjson {

struct Row {
  std::string Workload;
  std::string Config;
  double Cycles = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  double Speedup = 0;
};

/// Extracts `--json <file>` from the argument vector (removing both
/// tokens so later parsing never sees them) and returns the path, or ""
/// when the flag is absent.
inline std::string consumeJsonArg(int &Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      std::string Path = Argv[I + 1];
      for (int J = I; J + 2 < Argc; ++J)
        Argv[J] = Argv[J + 2];
      Argc -= 2;
      return Path;
    }
  }
  return "";
}

/// Writes \p Rows to \p Path in the shared schema; no-op when \p Path is
/// empty. Returns false only when the file cannot be opened.
inline bool writeBenchJson(const std::string &Path, const std::string &Bench,
                           const std::vector<Row> &Rows) {
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out)
    return false;
  JsonWriter W(Out);
  W.beginObject();
  W.key("schema").string("cgcm-bench-v1");
  W.key("bench").string(Bench);
  W.key("rows").beginArray();
  for (const Row &R : Rows) {
    W.beginObject();
    W.key("workload").string(R.Workload);
    W.key("config").string(R.Config);
    W.key("cycles").number(R.Cycles);
    W.key("bytes_htod").number(R.BytesHtoD);
    W.key("bytes_dtoh").number(R.BytesDtoH);
    W.key("speedup").number(R.Speedup);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  Out << "\n";
  return true;
}

} // namespace benchjson
} // namespace cgcm

#endif // CGCM_BENCH_BENCHJSON_H
