//===- bench/ablation_passes.cpp - Optimization-pass ablations ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the three communication optimizations against each other,
/// justifying the paper's pass schedule (section 5.3: glue kernels, then
/// alloca promotion, then map promotion):
///
///  * map promotion alone is the workhorse (jacobi-class programs);
///  * glue kernels exist to *enable* map promotion when small CPU regions
///    touch mapped data (lu-class programs): without glue, promotion is
///    blocked and communication stays cyclic;
///  * alloca promotion exists to enable promotion past a local buffer's
///    owning function (demonstrated on a dedicated scenario, since the
///    24-program suite allocates its buffers globally or on the heap).
///
/// Each variant is a literal `--passes=` pipeline string
/// (docs/PassManager.md) run through runPassPipeline with an external
/// analysis manager, so the driver also reports how the analysis cache
/// behaved per variant (constructions vs hits — the fixpoint variants are
/// where caching pays).
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <map>

using namespace cgcm;

namespace {

struct Variant {
  const char *Name;
  const char *Passes;
};

const Variant Variants[] = {
    {"management only", "mem2reg,doall,comm,simplify,verify,verify-par"},
    {"+map promotion",
     "mem2reg,doall,comm,fixpoint(map-promote),simplify,verify,verify-par"},
    {"+alloca +map", "mem2reg,doall,comm,fixpoint(alloca-promote,"
                     "map-promote),simplify,verify,verify-par"},
    {"+glue +alloca +map (full)",
     "mem2reg,doall,comm,fixpoint(glue,alloca-promote,map-promote),simplify,"
     "verify,verify-par"},
};

struct VariantResult {
  double Cycles = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  std::vector<AnalysisCacheStats> Cache;
};

benchjson::StreamOpts GStreams;

VariantResult runVariant(const std::string &Source, const Variant &V) {
  auto M = compileMiniC(Source, "ablation");
  ModuleAnalysisManager AM;
  PipelineRunOptions RunOpts;
  RunOpts.AM = &AM;
  runPassPipeline(*M, V.Passes, RunOpts);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  if (GStreams.Devices > 1)
    Mach.setDevices(GStreams.Devices,
                    GStreams.Placement == "bytes"
                        ? PlacementPolicy::BytesBalanced
                        : PlacementPolicy::RoundRobin);
  Mach.setAsyncTransfers(GStreams.Streams, GStreams.Coalesce);
  Mach.loadModule(*M);
  Mach.run();
  return {Mach.getStats().wallCycles(), Mach.getStats().BytesHtoD,
          Mach.getStats().BytesDtoH, AM.getCacheStats()};
}

/// A scenario built for alloca promotion: a helper with an escaping local
/// buffer, called from a hot loop. Only after the buffer is preallocated
/// in the caller's frame can map promotion hoist its transfers out of the
/// loop.
const char *AllocaScenario = R"(
  double data[256];
  void step() {
    double tmp[256];
    int i;
    for (i = 0; i < 256; i++)
      tmp[i] = data[i] * 0.5 + 1.0;
    for (i = 0; i < 256; i++)
      data[i] = tmp[i] * 0.99;
  }
  int main() {
    int i; int t;
    for (i = 0; i < 256; i++)
      data[i] = i * 0.01;
    for (t = 0; t < 24; t++)
      step();
    double sum = 0.0;
    for (i = 0; i < 256; i++)
      sum += data[i];
    print_f64(sum);
    return 0;
  }
)";

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv))
    return 0;
  if (!benchjson::consumeStreamArgs(Argc, Argv, GStreams))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);
  std::vector<benchjson::Row> Rows;

  std::printf("Ablation: contribution of each communication optimization\n");
  std::printf("(total modeled cycles; lower is better)\n\n");
  for (const Variant &V : Variants)
    std::printf("%-28s --passes=%s\n", V.Name, V.Passes);
  std::printf("\n%-28s", "variant");
  const char *Programs[] = {"jacobi-2d-imper", "lu", "lud", "srad"};
  for (const char *P : Programs)
    std::printf(" %15s", P);
  std::printf(" %15s\n", "alloca-scenario");

  double Cycles[4][5];
  // Per-variant analysis-cache totals over the five programs, plus the
  // whole-driver aggregate for the JSON document.
  uint64_t Constructions[4] = {}, Hits[4] = {};
  benchjson::PipelineSections Sections;
  std::map<std::string, size_t> CacheIndex;
  auto AddRow = [&](const char *Program, unsigned V, const VariantResult &R,
                    unsigned P) {
    // Speedup relative to the "management only" variant, which runs first.
    Rows.push_back({Program, Variants[V].Name, R.Cycles, R.BytesHtoD,
                    R.BytesDtoH, Cycles[0][P] / R.Cycles});
    for (const AnalysisCacheStats &S : R.Cache) {
      Constructions[V] += S.Constructions;
      Hits[V] += S.Hits;
      auto [It, New] =
          CacheIndex.try_emplace(S.Name, Sections.AnalysisCache.size());
      if (New)
        Sections.AnalysisCache.push_back({S.Name, 0, 0});
      Sections.AnalysisCache[It->second].Constructions += S.Constructions;
      Sections.AnalysisCache[It->second].Hits += S.Hits;
    }
  };
  for (unsigned V = 0; V != 4; ++V) {
    std::printf("%-28s", Variants[V].Name);
    for (unsigned P = 0; P != 4; ++P) {
      const Workload *W = findWorkload(Programs[P]);
      VariantResult R = runVariant(W->Source, Variants[V]);
      Cycles[V][P] = R.Cycles;
      AddRow(Programs[P], V, R, P);
      std::printf(" %15.0f", Cycles[V][P]);
    }
    VariantResult R = runVariant(AllocaScenario, Variants[V]);
    Cycles[V][4] = R.Cycles;
    AddRow("alloca-scenario", V, R, 4);
    std::printf(" %15.0f\n", Cycles[V][4]);
  }

  std::printf("\nAnalysis cache per variant (all five programs):\n");
  std::printf("  %-28s %14s %8s\n", "variant", "constructions", "hits");
  for (unsigned V = 0; V != 4; ++V)
    std::printf("  %-28s %14llu %8llu\n", Variants[V].Name,
                (unsigned long long)Constructions[V],
                (unsigned long long)Hits[V]);

  int Failures = 0;
  auto Check = [&](bool Cond, const char *Msg) {
    std::printf("  [%s] %s\n", Cond ? "ok" : "FAIL", Msg);
    if (!Cond)
      ++Failures;
  };
  std::printf("\nShape checks:\n");
  // jacobi: map promotion alone captures essentially the whole win.
  Check(Cycles[1][0] < Cycles[0][0] / 2,
        "map promotion alone transforms jacobi's communication");
  Check(Cycles[3][0] < Cycles[1][0] * 1.05,
        "glue/alloca add nothing when promotion is already unblocked");
  // lu and lud: without glue kernels the pivot code blocks promotion.
  Check(Cycles[3][1] < Cycles[1][1] / 1.5,
        "glue kernels unblock promotion in lu");
  Check(Cycles[3][2] < Cycles[1][2] / 1.5,
        "glue kernels unblock promotion in lud");
  // alloca scenario: promotion past the helper needs alloca promotion.
  Check(Cycles[2][4] < Cycles[1][4] / 1.5,
        "alloca promotion unblocks promotion past a local buffer");
  // Full pipeline is never worse than any partial variant.
  bool FullBest = true;
  for (unsigned P = 0; P != 5; ++P)
    for (unsigned V = 0; V != 3; ++V)
      if (Cycles[3][P] > Cycles[V][P] * 1.05)
        FullBest = false;
  Check(FullBest, "the full schedule is never worse than a partial one");
  // The fixpoint variants rerun glue/alloca/map to convergence; the
  // analysis manager must serve those reruns from cache.
  Check(Hits[3] > Hits[0],
        "the fixpoint sweep hits the analysis cache more than the "
        "straight-line schedule");
  if (!benchjson::writeBenchJson(JsonPath, "ablation_passes", Rows,
                                 Sections)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
