//===- bench/ablation_runtime.cpp - Runtime-mechanism ablations ---------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the two runtime mechanisms that make map promotion *cheap*:
///
///  * reference-count reuse (Algorithm 1): a map of an already-resident
///    unit translates the pointer without re-copying — the reason the
///    in-loop map calls Listing 4 keeps cost nothing;
///  * the epoch check (Algorithm 2): unmap copies back at most once per
///    kernel launch — the reason redundant unmaps of the same unit after
///    one launch cost nothing.
///
/// Each mechanism is disabled in turn on a promotion-friendly workload.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace cgcm;

namespace {

struct Result {
  double Cycles;
  uint64_t BytesHtoD;
  uint64_t BytesDtoH;
};

benchjson::StreamOpts GStreams;

Result runWith(const std::string &Src, bool EpochCheck, bool RefCountReuse) {
  auto M = compileMiniC(Src, "rtabl");
  runCGCMPipeline(*M);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  if (GStreams.Devices > 1)
    Mach.setDevices(GStreams.Devices,
                    GStreams.Placement == "bytes"
                        ? PlacementPolicy::BytesBalanced
                        : PlacementPolicy::RoundRobin);
  Mach.setAsyncTransfers(GStreams.Streams, GStreams.Coalesce);
  Mach.getRuntime().setEpochCheckEnabled(EpochCheck);
  Mach.getRuntime().setRefCountReuseEnabled(RefCountReuse);
  Mach.loadModule(*M);
  Mach.run();
  return {Mach.getStats().wallCycles(), Mach.getStats().BytesHtoD,
          Mach.getStats().BytesDtoH};
}

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv))
    return 0;
  if (!benchjson::consumeStreamArgs(Argc, Argv, GStreams))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);

  // jacobi shows the refcount-reuse story (redundant in-loop maps);
  // lu shows the epoch story (its interior pointer and the whole-matrix
  // pointer alias one unit, so two unmaps follow each launch).
  const Workload *W = findWorkload("jacobi-2d-imper");
  const Workload *LU = findWorkload("lu");
  std::printf("Runtime-mechanism ablation on %s (optimized pipeline)\n\n",
              W->Name.c_str());
  Result Full = runWith(W->Source, true, true);
  Result NoEpoch = runWith(W->Source, false, true);
  Result NoReuse = runWith(W->Source, true, false);
  Result Neither = runWith(W->Source, false, false);
  Result LUFull = runWith(LU->Source, true, true);
  Result LUNoEpoch = runWith(LU->Source, false, true);

  std::vector<benchjson::Row> Rows;
  auto AddRow = [&](const std::string &Workload, const char *Config,
                    const Result &R, const Result &Baseline) {
    Rows.push_back({Workload, Config, R.Cycles, R.BytesHtoD, R.BytesDtoH,
                    Baseline.Cycles / R.Cycles});
  };
  AddRow(W->Name, "full-runtime", Full, Full);
  AddRow(W->Name, "no-epoch-check", NoEpoch, Full);
  AddRow(W->Name, "no-refcount-reuse", NoReuse, Full);
  AddRow(W->Name, "neither", Neither, Full);
  AddRow(LU->Name, "full-runtime", LUFull, LUFull);
  AddRow(LU->Name, "no-epoch-check", LUNoEpoch, LUFull);

  std::printf("%-36s %14s %12s %12s\n", "configuration", "cycles", "HtoD B",
              "DtoH B");
  auto Row = [](const char *Name, const Result &R) {
    std::printf("%-36s %14.0f %12llu %12llu\n", Name, R.Cycles,
                static_cast<unsigned long long>(R.BytesHtoD),
                static_cast<unsigned long long>(R.BytesDtoH));
  };
  Row("full runtime (paper Algorithms 1-3)", Full);
  Row("no epoch check (unmap always copies)", NoEpoch);
  Row("no refcount reuse (map always copies)", NoReuse);
  Row("neither", Neither);

  int Failures = 0;
  auto Check = [&](bool Cond, const char *Msg) {
    std::printf("  [%s] %s\n", Cond ? "ok" : "FAIL", Msg);
    if (!Cond)
      ++Failures;
  };
  std::printf("\nShape checks:\n");
  Check(NoReuse.BytesHtoD > Full.BytesHtoD * 5,
        "refcount reuse is what makes redundant in-loop maps free");
  Check(NoEpoch.BytesDtoH >= Full.BytesDtoH,
        "the epoch check only ever removes copies");
  std::printf("  lu with epoch check: %llu DtoH bytes; without: %llu\n",
              static_cast<unsigned long long>(LUFull.BytesDtoH),
              static_cast<unsigned long long>(LUNoEpoch.BytesDtoH));
  Check(LUNoEpoch.BytesDtoH > LUFull.BytesDtoH,
        "the epoch check deduplicates unmaps of aliased pointers (lu)");
  Check(Full.Cycles <= NoReuse.Cycles && Full.Cycles <= NoEpoch.Cycles &&
            Full.Cycles <= Neither.Cycles,
        "the full runtime dominates every ablated configuration");
  if (!benchjson::writeBenchJson(JsonPath, "ablation_runtime", Rows)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
