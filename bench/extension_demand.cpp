//===- bench/extension_demand.cpp - CGCM vs demand paging ----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares CGCM (compiler-inserted, statically optimized communication)
/// against the DyManD-style demand-paging extension (docs/Extensions.md)
/// on three regimes:
///
///  * promotion-friendly code (jacobi): both are acyclic; CGCM avoids
///    fault latency, demand paging avoids runtime-call overhead;
///  * CPU-interleaved code (gramschmidt): CGCM stays cyclic at unit
///    granularity; the demand pager only moves what each side touches;
///  * beyond-CGCM code (triple indirection): the management pass must
///    reject it (>2 levels), demand paging runs it.
///
/// This is "future work" relative to the paper — exactly the direction
/// its successors (DyManD) took — implemented here as an executor policy
/// that needs no compiler support at all.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace cgcm;

namespace {

struct Row {
  double Cycles = 0;
  uint64_t HtoD = 0, DtoH = 0, Faults = 0;
  uint64_t BytesHtoD = 0, BytesDtoH = 0;
  std::string Output;
};

benchjson::StreamOpts GStreams;

Row runCGCM(const std::string &Src) {
  auto M = compileMiniC(Src, "cgcm");
  runCGCMPipeline(*M);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  if (GStreams.Devices > 1)
    Mach.setDevices(GStreams.Devices,
                    GStreams.Placement == "bytes"
                        ? PlacementPolicy::BytesBalanced
                        : PlacementPolicy::RoundRobin);
  Mach.setAsyncTransfers(GStreams.Streams, GStreams.Coalesce);
  Mach.loadModule(*M);
  Mach.run();
  const ExecStats &S = Mach.getStats();
  return {S.wallCycles(), S.TransfersHtoD, S.TransfersDtoH, 0,
          S.BytesHtoD,     S.BytesDtoH,     Mach.getOutput()};
}

Row runDemand(const std::string &Src) {
  auto M = compileMiniC(Src, "dymand");
  PipelineOptions Opts;
  Opts.Manage = false;
  Opts.Optimize = false;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::DemandManaged);
  if (GStreams.Devices > 1)
    Mach.setDevices(GStreams.Devices,
                    GStreams.Placement == "bytes"
                        ? PlacementPolicy::BytesBalanced
                        : PlacementPolicy::RoundRobin);
  Mach.setAsyncTransfers(GStreams.Streams, GStreams.Coalesce);
  Mach.loadModule(*M);
  Mach.run();
  const ExecStats &S = Mach.getStats();
  return {S.wallCycles(), S.TransfersHtoD, S.TransfersDtoH, S.DemandFaults,
          S.BytesHtoD,     S.BytesDtoH,     Mach.getOutput()};
}

const char *DeepProgram = R"(
  double leaf0[32];
  double leaf1[32];
  double *mid[2];
  double **top[1];
  __kernel void deep(double ***t, long n) {
    long i = __tid();
    if (i < n)
      t[0][i % 2][i] = t[0][i % 2][i] * 2.0 + 1.0;
  }
  int main() {
    int i;
    for (i = 0; i < 32; i++) {
      leaf0[i] = i * 0.5;
      leaf1[i] = i * 0.25;
    }
    mid[0] = leaf0;
    mid[1] = leaf1;
    top[0] = mid;
    int t;
    for (t = 0; t < 4; t++)
      launch deep<<<1, 32>>>(top, 32);
    double s = 0.0;
    for (i = 0; i < 32; i++) s += leaf0[i] + leaf1[i];
    print_f64(s);
    return 0;
  }
)";

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv))
    return 0;
  if (!benchjson::consumeStreamArgs(Argc, Argv, GStreams))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);

  std::printf("Extension: CGCM (static) vs DyManD-style demand paging\n\n");
  std::printf("%-22s %14s %8s %8s %8s\n", "program / system", "cycles",
              "HtoD", "DtoH", "faults");

  int Failures = 0;
  auto Check = [&](bool Cond, const char *Msg) {
    std::printf("  [%s] %s\n", Cond ? "ok" : "FAIL", Msg);
    if (!Cond)
      ++Failures;
  };

  const Workload *Jacobi = findWorkload("jacobi-2d-imper");
  Row JC = runCGCM(Jacobi->Source);
  Row JD = runDemand(Jacobi->Source);
  std::printf("%-22s %14.0f %8llu %8llu %8llu\n", "jacobi / CGCM", JC.Cycles,
              (unsigned long long)JC.HtoD, (unsigned long long)JC.DtoH,
              (unsigned long long)JC.Faults);
  std::printf("%-22s %14.0f %8llu %8llu %8llu\n", "jacobi / demand",
              JD.Cycles, (unsigned long long)JD.HtoD,
              (unsigned long long)JD.DtoH, (unsigned long long)JD.Faults);

  const Workload *GS = findWorkload("gramschmidt");
  Row GC = runCGCM(GS->Source);
  Row GD = runDemand(GS->Source);
  std::printf("%-22s %14.0f %8llu %8llu %8llu\n", "gramschmidt / CGCM",
              GC.Cycles, (unsigned long long)GC.HtoD,
              (unsigned long long)GC.DtoH, (unsigned long long)GC.Faults);
  std::printf("%-22s %14.0f %8llu %8llu %8llu\n", "gramschmidt / demand",
              GD.Cycles, (unsigned long long)GD.HtoD,
              (unsigned long long)GD.DtoH, (unsigned long long)GD.Faults);

  Row DD = runDemand(DeepProgram);
  std::printf("%-22s %14.0f %8llu %8llu %8llu\n", "3-level / demand",
              DD.Cycles, (unsigned long long)DD.HtoD,
              (unsigned long long)DD.DtoH, (unsigned long long)DD.Faults);

  std::printf("\nShape checks:\n");
  Check(JC.Output == JD.Output && GC.Output == GD.Output,
        "demand paging matches CGCM's results");
  Check(JD.Cycles < JC.Cycles * 2.0 && JD.Cycles > JC.Cycles * 0.25,
        "on promotion-friendly code both systems are acyclic and close");
  Check(JD.HtoD <= 4,
        "demand-paged data stays resident across the whole time loop");
  Check(!DD.Output.empty() && DD.Faults >= 4,
        "demand paging runs 3-level indirection (CGCM's management pass "
        "rejects it; see Management.TripleIndirectionIsRejected)");

  std::vector<benchjson::Row> Rows = {
      {"jacobi-2d-imper", "cgcm", JC.Cycles, JC.BytesHtoD, JC.BytesDtoH, 1.0},
      {"jacobi-2d-imper", "demand-paging", JD.Cycles, JD.BytesHtoD,
       JD.BytesDtoH, JC.Cycles / JD.Cycles},
      {"gramschmidt", "cgcm", GC.Cycles, GC.BytesHtoD, GC.BytesDtoH, 1.0},
      {"gramschmidt", "demand-paging", GD.Cycles, GD.BytesHtoD, GD.BytesDtoH,
       GC.Cycles / GD.Cycles},
      {"3-level-indirection", "demand-paging", DD.Cycles, DD.BytesHtoD,
       DD.BytesDtoH, 0.0}};
  if (!benchjson::writeBenchJson(JsonPath, "extension_demand", Rows)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
