//===- bench/fig2_schedules.cpp - Reproduce Figure 2 --------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 2: execution schedules for the three communication
/// patterns — naive cyclic (unoptimized CGCM: copy in, kernel, copy out,
/// every iteration), inspector-executor (sequential inspection, minimal
/// bytes, still cyclic), and acyclic (optimized CGCM: one copy in, many
/// kernels, one copy out). The same synthetic program (a loop spawning N
/// kernels over one array) runs under each configuration with timeline
/// recording enabled, and the schedules are rendered as event traces.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <string>

using namespace cgcm;

namespace {

const char *Program = R"(
  double data[512];
  int main() {
    int i; int t;
    for (i = 0; i < 512; i++)
      data[i] = i * 0.01;
    for (t = 0; t < 6; t++) {
      for (i = 0; i < 512; i++)
        data[i] = data[i] * 0.99 + 0.001;
    }
    double sum = 0.0;
    for (i = 0; i < 512; i++)
      sum += data[i];
    print_f64(sum);
    return 0;
  }
)";

const char *eventName(EventKind K) {
  switch (K) {
  case EventKind::CpuCompute:
    return "cpu    ";
  case EventKind::HtoD:
    return "h->d   ";
  case EventKind::DtoH:
    return "d->h   ";
  case EventKind::Kernel:
    return "kernel ";
  case EventKind::Inspect:
    return "inspect";
  }
  return "?";
}

struct ScheduleResult {
  std::vector<TimelineEvent> Events;
  ExecStats Stats;
};

benchjson::StreamOpts GStreams;

ScheduleResult runSchedule(bool Manage, bool Optimize, LaunchPolicy Policy) {
  auto M = compileMiniC(Program, "fig2");
  PipelineOptions Opts;
  Opts.Manage = Manage;
  Opts.Optimize = Optimize;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(Policy);
  if (GStreams.Devices > 1)
    Mach.setDevices(GStreams.Devices,
                    GStreams.Placement == "bytes"
                        ? PlacementPolicy::BytesBalanced
                        : PlacementPolicy::RoundRobin);
  Mach.setAsyncTransfers(GStreams.Streams, GStreams.Coalesce);
  Mach.getDevice().setTimelineEnabled(true);
  Mach.loadModule(*M);
  Mach.run();
  return {Mach.getDevice().getTimeline(), Mach.getStats()};
}

void render(const char *Title, const ScheduleResult &R, unsigned MaxEvents) {
  std::printf("\n=== %s ===\n", Title);
  unsigned Shown = 0;
  for (const TimelineEvent &E : R.Events) {
    if (Shown++ == MaxEvents) {
      std::printf("  ... %zu more events ...\n", R.Events.size() - MaxEvents);
      break;
    }
    std::printf("  %9.0f  %s %8.0f cycles", E.StartCycle, eventName(E.Kind),
                E.DurationCycles);
    if (E.Bytes)
      std::printf("  %6llu bytes", static_cast<unsigned long long>(E.Bytes));
    std::printf("\n");
  }
  std::printf("  total %.0f cycles | %llu HtoD, %llu DtoH transfers | "
              "%llu kernel launches\n",
              R.Stats.wallCycles(),
              static_cast<unsigned long long>(R.Stats.TransfersHtoD),
              static_cast<unsigned long long>(R.Stats.TransfersDtoH),
              static_cast<unsigned long long>(R.Stats.KernelLaunches));
}

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv))
    return 0;
  if (!benchjson::consumeStreamArgs(Argc, Argv, GStreams))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);

  std::printf("Figure 2: execution schedules for the three communication "
              "patterns\n");

  ScheduleResult Cyclic =
      runSchedule(/*Manage=*/true, /*Optimize=*/false, LaunchPolicy::Managed);
  ScheduleResult IE = runSchedule(/*Manage=*/false, /*Optimize=*/false,
                                  LaunchPolicy::InspectorExecutor);
  ScheduleResult Acyclic =
      runSchedule(/*Manage=*/true, /*Optimize=*/true, LaunchPolicy::Managed);

  std::vector<benchjson::Row> Rows;
  auto AddRow = [&](const char *Config, const ScheduleResult &R) {
    Rows.push_back({"fig2-synthetic", Config, R.Stats.wallCycles(),
                    R.Stats.BytesHtoD, R.Stats.BytesDtoH,
                    Cyclic.Stats.wallCycles() / R.Stats.wallCycles()});
  };
  AddRow("cyclic", Cyclic);
  AddRow("inspector-executor", IE);
  AddRow("acyclic", Acyclic);

  render("naive cyclic (unoptimized CGCM)", Cyclic, 12);
  render("inspector-executor", IE, 12);
  render("acyclic (optimized CGCM)", Acyclic, 12);

  // The defining properties of each schedule.
  int Failures = 0;
  auto Check = [&](bool Cond, const char *Msg) {
    std::printf("  [%s] %s\n", Cond ? "ok" : "FAIL", Msg);
    if (!Cond)
      ++Failures;
  };
  std::printf("\nShape checks:\n");
  Check(Cyclic.Stats.TransfersDtoH >= 6,
        "cyclic: data returns to the CPU every iteration");
  Check(Acyclic.Stats.TransfersDtoH <= 2,
        "acyclic: results return to CPU memory only when needed");
  Check(Acyclic.Stats.BytesHtoD < Cyclic.Stats.BytesHtoD / 3,
        "acyclic: far fewer bytes cross the bus");
  Check(IE.Stats.InspectorCycles > 0 &&
            IE.Stats.BytesHtoD < Cyclic.Stats.BytesHtoD,
        "inspector-executor: minimal bytes but pays sequential inspection");
  Check(Acyclic.Stats.wallCycles() < Cyclic.Stats.wallCycles(),
        "acyclic beats cyclic end to end");
  if (!benchjson::writeBenchJson(JsonPath, "fig2_schedules", Rows)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
