//===- bench/fig4_speedup.cpp - Reproduce Figure 4 ---------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4: whole-program speedup over best sequential
/// CPU-only execution for the idealized inspector-executor, unoptimized
/// CGCM, and optimized CGCM, across all 24 programs, plus the geomean
/// rows the paper reports:
///
///   paper: geomean IE 0.92x, unoptimized CGCM 0.71x, optimized 5.36x;
///          clamped-at-1.0 geomeans 1.53x / 2.81x / 7.18x.
///
/// Absolute factors depend on the simulated machine; the claims checked
/// here are the *shape* claims: optimized CGCM beats both baselines in
/// geomean, optimization never hurts, unoptimized communication can be
/// catastrophic (srad/nw class), and gramschmidt is the one program where
/// the idealized inspector-executor wins.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "workloads/Runner.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

using namespace cgcm;

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv))
    return 0;
  benchjson::StreamOpts SO;
  if (!benchjson::consumeStreamArgs(Argc, Argv, SO))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);
  // The Figure-4 table itself honors --streams; the transfer_overlap
  // section always compares synchronous against asynchronous execution
  // (at --streams, or 4 when the table runs synchronously).
  RunnerOptions RO;
  RO.AsyncStreams = SO.Streams;
  RO.Coalesce = SO.Coalesce;
  RO.Devices = SO.Devices;
  RO.Placement = SO.Placement == "bytes" ? PlacementPolicy::BytesBalanced
                                         : PlacementPolicy::RoundRobin;
  unsigned OverlapStreams = SO.Streams ? SO.Streams : 4;
  std::vector<benchjson::Row> Rows;
  benchjson::PipelineSections Sections;
  auto AddRow = [&](const Workload &W, const char *Config,
                    const WorkloadRun &R, double Speedup) {
    Rows.push_back({W.Name, Config, R.TotalCycles, R.Stats.BytesHtoD,
                    R.Stats.BytesDtoH, Speedup});
  };

  std::printf("Figure 4: whole-program speedup over sequential CPU-only\n");
  std::printf("%-16s %10s %12s %12s\n", "program", "insp-exec", "cgcm-unopt",
              "cgcm-opt");

  double GeoIE = 0, GeoUnopt = 0, GeoOpt = 0;
  double GeoIEClamped = 0, GeoUnoptClamped = 0, GeoOptClamped = 0;
  std::map<std::string, double> OptSpeedup, IESpeedup, UnoptSpeedup;

  unsigned AsyncWins = 0, AsyncOutputMismatches = 0;
  const std::vector<Workload> &Suite = getWorkloads();
  for (const Workload &W : Suite) {
    WorkloadRun Seq = runWorkload(W, BenchConfig::Sequential);
    WorkloadRun RunIE = runWorkload(W, BenchConfig::InspectorExecutor, RO);
    WorkloadRun RunUnopt = runWorkload(W, BenchConfig::CGCMUnoptimized, RO);
    WorkloadRun RunOpt = runWorkload(W, BenchConfig::CGCMOptimized, RO);

    // transfer_overlap: optimized CGCM, synchronous vs asynchronous.
    RunnerOptions ARO;
    ARO.AsyncStreams = OverlapStreams;
    ARO.Coalesce = SO.Coalesce;
    ARO.Devices = RO.Devices;
    ARO.Placement = RO.Placement;
    RunnerOptions SyncRO;
    SyncRO.Devices = RO.Devices;
    SyncRO.Placement = RO.Placement;
    WorkloadRun Sync =
        SO.Streams ? runWorkload(W, BenchConfig::CGCMOptimized, SyncRO) : RunOpt;
    WorkloadRun Async =
        SO.Streams ? RunOpt : runWorkload(W, BenchConfig::CGCMOptimized, ARO);
    bool OutputEqual = Async.Output == Sync.Output;
    if (!OutputEqual)
      ++AsyncOutputMismatches;
    if (Async.Stats.wallCycles() < Sync.Stats.totalCycles())
      ++AsyncWins;
    auto AddOverlap = [&](const WorkloadRun &R, unsigned Streams) {
      benchjson::TransferOverlapRow T;
      T.Workload = W.Name;
      T.Streams = Streams;
      T.Coalesce = SO.Coalesce;
      T.TotalCycles = R.Stats.totalCycles();
      T.WallCycles = R.Stats.wallCycles();
      T.StallCycles = R.Stats.StallCycles;
      T.OverlapSavedCycles = R.Stats.overlapSavedCycles();
      T.AsyncTransfers = R.Stats.AsyncTransfers;
      T.DmaBatches = R.Stats.DmaBatches;
      T.CoalescedTransfers = R.Stats.CoalescedTransfers;
      T.HostSyncs = R.Stats.HostSyncs;
      T.OutputEqual = OutputEqual;
      Sections.TransferOverlap.push_back(T);
    };
    AddOverlap(Sync, 0);
    AddOverlap(Async, OverlapStreams);
    double IE = Seq.TotalCycles / RunIE.TotalCycles;
    double Unopt = Seq.TotalCycles / RunUnopt.TotalCycles;
    double Opt = Seq.TotalCycles / RunOpt.TotalCycles;
    AddRow(W, "sequential", Seq, 1.0);
    AddRow(W, "inspector-executor", RunIE, IE);
    AddRow(W, "cgcm-unopt", RunUnopt, Unopt);
    AddRow(W, "cgcm-opt", RunOpt, Opt);
    // Per-device traffic/compute, summed across the suite; populated
    // only under --devices>1 so single-device artifacts are unchanged.
    for (size_t D = 0; D < RunOpt.Stats.Devices.size(); ++D) {
      if (Sections.Devices.size() <= D) {
        Sections.Devices.resize(D + 1);
        Sections.Devices[D].Device = static_cast<unsigned>(D);
      }
      const auto &DS = RunOpt.Stats.Devices[D];
      benchjson::DeviceRow &Out = Sections.Devices[D];
      Out.BytesHtoD += DS.BytesHtoD;
      Out.BytesDtoH += DS.BytesDtoH;
      Out.TransfersHtoD += DS.TransfersHtoD;
      Out.TransfersDtoH += DS.TransfersDtoH;
      Out.P2PTransfers += DS.P2PTransfers;
      Out.P2PBytes += DS.P2PBytes;
      Out.ComputeCycles += DS.ComputeCycles;
    }
    IESpeedup[W.Name] = IE;
    UnoptSpeedup[W.Name] = Unopt;
    OptSpeedup[W.Name] = Opt;
    GeoIE += std::log(IE);
    GeoUnopt += std::log(Unopt);
    GeoOpt += std::log(Opt);
    GeoIEClamped += std::log(std::max(1.0, IE));
    GeoUnoptClamped += std::log(std::max(1.0, Unopt));
    GeoOptClamped += std::log(std::max(1.0, Opt));
    std::printf("%-16s %9.3fx %11.3fx %11.3fx\n", W.Name.c_str(), IE, Unopt,
                Opt);
  }
  double N = static_cast<double>(Suite.size());
  std::printf("%-16s %9.3fx %11.3fx %11.3fx   (paper: 0.92x / 0.71x / 5.36x)\n",
              "geomean", std::exp(GeoIE / N), std::exp(GeoUnopt / N),
              std::exp(GeoOpt / N));
  std::printf("%-16s %9.3fx %11.3fx %11.3fx   (paper: 1.53x / 2.81x / 7.18x)\n",
              "geomean(>=1.0)", std::exp(GeoIEClamped / N),
              std::exp(GeoUnoptClamped / N), std::exp(GeoOptClamped / N));

  // Shape checks mirroring the paper's headline claims.
  int Failures = 0;
  auto Check = [&](bool Cond, const char *Msg) {
    std::printf("  [%s] %s\n", Cond ? "ok" : "FAIL", Msg);
    if (!Cond)
      ++Failures;
  };
  std::printf("\nShape checks against the paper:\n");
  Check(std::exp(GeoOpt / N) > std::exp(GeoIE / N),
        "optimized CGCM beats idealized inspector-executor in geomean");
  Check(std::exp(GeoOpt / N) > std::exp(GeoUnopt / N) * 2.0,
        "optimization gives a large geomean win over unoptimized CGCM");
  Check(std::exp(GeoOpt / N) > 2.0,
        "optimized CGCM shows a substantial whole-program geomean speedup");
  bool NeverHurts = true;
  for (const Workload &W : Suite)
    if (OptSpeedup[W.Name] < UnoptSpeedup[W.Name] * 0.98)
      NeverHurts = false;
  Check(NeverHurts, "communication optimization never reduces performance");
  Check(UnoptSpeedup["srad"] < 0.2 && UnoptSpeedup["nw"] < 0.2,
        "srad and nw show dramatic unoptimized slowdowns");
  Check(IESpeedup["gramschmidt"] > OptSpeedup["gramschmidt"],
        "gramschmidt is the one program where inspector-executor wins");
  std::printf("\nAsynchronous transfer engine (streams=%u%s):\n",
              OverlapStreams, SO.Coalesce ? "" : ", no coalescing");
  std::printf("  async wall clock beats sync on %u/%zu workloads\n", AsyncWins,
              Suite.size());
  Check(AsyncOutputMismatches == 0,
        "asynchronous execution is output-identical to synchronous");
  Check(AsyncWins * 2 >= Suite.size(),
        "asynchronous overlap improves wall clock on transfer-bound "
        "workloads");
  if (!benchjson::writeBenchJson(JsonPath, "fig4_speedup", Rows, Sections)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
