//===- bench/listing_progression.cpp - Listings 1-4 of the paper --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's running example: a loop spawning a kernel over
/// an array of strings (Listing 2). The communication-management pass
/// turns it into Listing 3 (mapArray/unmapArray/releaseArray around every
/// launch — cyclic), and map promotion into Listing 4 (the mapArray
/// hoisted above the loop, device-to-host copies deleted — acyclic). The
/// bench prints the runtime-call counts and transfer statistics at each
/// stage; Listing 1 (manual cudaMalloc/cudaMemcpy management) is the
/// ~20-line boilerplate the whole system exists to delete, shown in
/// examples/manual_vs_cgcm.cpp via the direct runtime API.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <cstdio>

using namespace cgcm;

namespace {

/// Listing 2: implicit communication. The kernel reads through the
/// doubly indirect string table (a char* array with relocations) and
/// writes each string's length to an output array.
const char *Listing2 = R"(
  char *verse[8] = {"What", "so", "proudly", "we", "hailed", "at", "the",
                    "twilight"};
  long lens[8];
  __kernel void kernel_fn(long iter) {
    long t = __tid();
    if (t < 8) {
      char *s = verse[t];
      long n = 0;
      while (s[n] != 0)
        n = n + 1;
      lens[t] = n + iter * 0;
    }
  }
  int main() {
    int i;
    for (i = 0; i < 16; i++)
      launch kernel_fn<<<1, 8>>>(i);
    long total = 0;
    for (i = 0; i < 8; i++)
      total = total + lens[i];
    print_i64(total);
    return 0;
  }
)";

struct StageResult {
  ExecStats Stats;
  std::string Output;
  unsigned RuntimeCallSites = 0;
};

benchjson::StreamOpts GStreams;

StageResult runStage(bool Optimize) {
  auto M = compileMiniC(Listing2, "listing");
  PipelineOptions Opts;
  Opts.Parallelize = false; // The kernel is manually written, as in the paper.
  Opts.Optimize = Optimize;
  runCGCMPipeline(*M, Opts);

  StageResult R;
  for (const auto &F : M->functions()) {
    if (F->isDeclaration())
      continue;
    for (Instruction *I : F->instructions())
      if (auto *CI = dyn_cast<CallInst>(I)) {
        const std::string &N = CI->getCallee()->getName();
        if (N.rfind("cgcm_map", 0) == 0 || N.rfind("cgcm_unmap", 0) == 0 ||
            N.rfind("cgcm_release", 0) == 0)
          ++R.RuntimeCallSites;
      }
  }

  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  if (GStreams.Devices > 1)
    Mach.setDevices(GStreams.Devices,
                    GStreams.Placement == "bytes"
                        ? PlacementPolicy::BytesBalanced
                        : PlacementPolicy::RoundRobin);
  Mach.setAsyncTransfers(GStreams.Streams, GStreams.Coalesce);
  Mach.loadModule(*M);
  Mach.run();
  R.Stats = Mach.getStats();
  R.Output = Mach.getOutput();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv))
    return 0;
  if (!benchjson::consumeStreamArgs(Argc, Argv, GStreams))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);

  std::printf("Listings 2-4: the paper's array-of-strings example\n\n");

  StageResult L3 = runStage(/*Optimize=*/false);
  StageResult L4 = runStage(/*Optimize=*/true);

  std::vector<benchjson::Row> Rows = {
      {"array-of-strings", "listing3-managed", L3.Stats.wallCycles(),
       L3.Stats.BytesHtoD, L3.Stats.BytesDtoH, 1.0},
      {"array-of-strings", "listing4-promoted", L4.Stats.wallCycles(),
       L4.Stats.BytesHtoD, L4.Stats.BytesDtoH,
       L3.Stats.wallCycles() / L4.Stats.wallCycles()}};

  std::printf("%-34s %12s %12s\n", "", "listing 3", "listing 4");
  std::printf("%-34s %12s %12s\n", "", "(managed)", "(promoted)");
  std::printf("%-34s %12u %12u\n", "static runtime-call sites",
              L3.RuntimeCallSites, L4.RuntimeCallSites);
  std::printf("%-34s %12llu %12llu\n", "host-to-device transfers",
              static_cast<unsigned long long>(L3.Stats.TransfersHtoD),
              static_cast<unsigned long long>(L4.Stats.TransfersHtoD));
  std::printf("%-34s %12llu %12llu\n", "device-to-host transfers",
              static_cast<unsigned long long>(L3.Stats.TransfersDtoH),
              static_cast<unsigned long long>(L4.Stats.TransfersDtoH));
  std::printf("%-34s %12llu %12llu\n", "bytes to device",
              static_cast<unsigned long long>(L3.Stats.BytesHtoD),
              static_cast<unsigned long long>(L4.Stats.BytesHtoD));
  std::printf("%-34s %12llu %12llu\n", "runtime library calls",
              static_cast<unsigned long long>(L3.Stats.RuntimeCalls),
              static_cast<unsigned long long>(L4.Stats.RuntimeCalls));
  std::printf("%-34s %12.0f %12.0f\n", "total modeled cycles",
              L3.Stats.wallCycles(), L4.Stats.wallCycles());

  int Failures = 0;
  auto Check = [&](bool Cond, const char *Msg) {
    std::printf("  [%s] %s\n", Cond ? "ok" : "FAIL", Msg);
    if (!Cond)
      ++Failures;
  };
  std::printf("\nShape checks:\n");
  Check(L3.Output == "34\n" && L4.Output == "34\n",
        "both versions compute the correct string lengths");
  Check(L3.Stats.TransfersHtoD >= 16,
        "listing 3 re-transfers the string table every iteration (cyclic)");
  Check(L4.Stats.TransfersHtoD <= L3.Stats.TransfersHtoD / 4,
        "listing 4 transfers the table approximately once (acyclic)");
  Check(L4.Stats.wallCycles() < L3.Stats.wallCycles(),
        "promotion pays off end to end");
  if (!benchjson::writeBenchJson(JsonPath, "listing_progression", Rows)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
