//===- bench/lookup_micro.cpp - Hot-path lookup/dispatch microbenchmarks ------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the two host-time hot paths this
/// project optimized (all host nanoseconds, never modeled cycles):
///
///  * Pointer-to-unit lookup, measured at each tier of the fast path:
///    the balanced-tree fallback (the pre-index behaviour, forced by
///    degrading the radix index), the radix/page index, and the
///    per-call-site translation cache. The driver computes the
///    index-over-tree and cache-over-tree speedups, stores them in the
///    emitted rows, and exits nonzero unless the cached fast path is at
///    least 2x the tree walk — the floor this PR claims.
///
///  * Interpreter dispatch: one compute-bound MiniC program executed
///    end to end under the precomputed handler table versus the
///    reference nested-switch walk. Each iteration builds a fresh
///    Machine, so the table rows include decode time — the realistic
///    per-program cost.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "gpusim/GPUDevice.h"
#include "runtime/AddressIndex.h"
#include "runtime/CGCMRuntime.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace cgcm;

namespace {

struct RuntimeFixture {
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host{HostAddressBase, "host"};
  GPUDevice Device{TM, Stats};
  CGCMRuntime RT{Host, Device, TM, Stats};
};

/// Populates \p F with \p Units heap allocation units of \p Size bytes.
std::vector<uint64_t> populate(RuntimeFixture &F, unsigned Units,
                               uint64_t Size) {
  std::vector<uint64_t> Ptrs;
  Ptrs.reserve(Units);
  for (unsigned I = 0; I != Units; ++I) {
    uint64_t P = F.Host.allocate(Size);
    F.RT.notifyHeapAlloc(P, Size);
    Ptrs.push_back(P);
  }
  return Ptrs;
}

void BM_LookupTreeFallback(benchmark::State &State) {
  // The pre-index behaviour: tracking one unit outside the index's
  // 4 GiB coverage window permanently degrades every probe to the
  // balanced-tree walk (runtime/AddressIndex.h). The translation cache
  // is off, so this is the pure tree cost.
  RuntimeFixture F;
  F.RT.setXlatCacheEnabled(false);
  auto Ptrs = populate(F, static_cast<unsigned>(State.range(0)), 256);
  F.RT.notifyHeapAlloc(AddressIndex::CoverageLimit + 0x1000, 64);
  if (F.RT.indexCoversAll())
    State.SkipWithError("index did not degrade; tree row would lie");
  size_t I = 0;
  for (auto _ : State) {
    const AllocUnitInfo *Info = F.RT.lookup(Ptrs[I % Ptrs.size()] + 100);
    benchmark::DoNotOptimize(Info);
    ++I;
  }
}
BENCHMARK(BM_LookupTreeFallback)->Arg(256)->Arg(4096);

void BM_LookupIndex(benchmark::State &State) {
  // The radix/page index resolves the probe in one leaf load; cycling
  // through every unit defeats the translation cache's locality, and
  // the cache is off anyway to isolate the index tier.
  RuntimeFixture F;
  F.RT.setXlatCacheEnabled(false);
  auto Ptrs = populate(F, static_cast<unsigned>(State.range(0)), 256);
  size_t I = 0;
  for (auto _ : State) {
    const AllocUnitInfo *Info = F.RT.lookup(Ptrs[I % Ptrs.size()] + 100);
    benchmark::DoNotOptimize(Info);
    ++I;
  }
}
BENCHMARK(BM_LookupIndex)->Arg(256)->Arg(4096);

void BM_LookupCachedTranslation(benchmark::State &State) {
  // The per-call-site cache: map() warms the site's translation, and
  // repeated probes into the same unit hit the two-slot MRU chain
  // before the index is even consulted.
  RuntimeFixture F;
  auto Ptrs = populate(F, 4096, 256);
  F.RT.map(Ptrs[1000]); // Warms the heap site's cached translation.
  size_t I = 0;
  for (auto _ : State) {
    const AllocUnitInfo *Info = F.RT.lookup(Ptrs[1000] + (I & 0xFF));
    benchmark::DoNotOptimize(Info);
    ++I;
  }
  F.RT.release(Ptrs[1000]);
}
BENCHMARK(BM_LookupCachedTranslation);

/// A compute-bound MiniC program: no launches, no heap, just the
/// interpreter executing arithmetic, loads/stores, compares, and
/// branches — the instruction mix dispatch strategy actually affects.
const char *DispatchProgram = R"(
int main() {
  double acc = 0.0;
  long x = 1;
  long i;
  for (i = 0; i < 60000; i = i + 1) {
    x = (x * 1103515245 + 12345) % 2147483648;
    if (x % 3 == 0)
      acc += x * 0.5;
    else
      acc -= x * 0.25;
  }
  print_f64(acc);
  return 0;
}
)";

void runDispatchProgram(benchmark::State &State, DispatchMode Mode) {
  std::unique_ptr<Module> M = compileMiniC(DispatchProgram, "dispatch_micro");
  for (auto _ : State) {
    Machine Mach;
    Mach.setDispatchMode(Mode);
    Mach.loadModule(*M);
    int64_t Exit = Mach.run();
    benchmark::DoNotOptimize(Exit);
  }
}

void BM_DispatchTable(benchmark::State &State) {
  runDispatchProgram(State, DispatchMode::Table);
}
BENCHMARK(BM_DispatchTable);

void BM_DispatchSwitch(benchmark::State &State) {
  runDispatchProgram(State, DispatchMode::Switch);
}
BENCHMARK(BM_DispatchSwitch);

/// Collects every run for --json output; these are host nanoseconds, so
/// the shared schema's `cycles` field carries ns/op.
class CollectingReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        Rows.push_back(
            {R.benchmark_name(), "host-ns-per-op", R.GetAdjustedRealTime(), 0,
             0, 0});
    benchmark::ConsoleReporter::ReportRuns(Reports);
  }

  std::vector<cgcm::benchjson::Row> Rows;
};

double nsFor(const std::vector<benchjson::Row> &Rows,
             const std::string &Name) {
  for (const benchjson::Row &R : Rows)
    if (R.Workload == Name)
      return R.Cycles;
  return 0;
}

double safeDiv(double A, double B) { return B > 0 ? A / B : 0; }

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(
          Argc, Argv,
          "  (remaining flags are passed through to google-benchmark)\n"
          "  exits nonzero unless the cached lookup fast path is >= 2x\n"
          "  the balanced-tree fallback\n"))
    return 0;
  benchjson::StreamOpts SO;
  if (!benchjson::consumeStreamArgs(Argc, Argv, SO))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  CollectingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  // Attribute the fast-path speedups into the emitted rows (relative to
  // the tree fallback at the same tracked-unit count) and gate on the
  // floor this PR claims: the cached translation must be >= 2x the
  // tree walk at 4096 units.
  double Tree = nsFor(Reporter.Rows, "BM_LookupTreeFallback/4096");
  double Cached = nsFor(Reporter.Rows, "BM_LookupCachedTranslation");
  for (benchjson::Row &R : Reporter.Rows) {
    if (R.Workload == "BM_LookupIndex/256")
      R.Speedup = safeDiv(nsFor(Reporter.Rows, "BM_LookupTreeFallback/256"),
                          R.Cycles);
    else if (R.Workload == "BM_LookupIndex/4096")
      R.Speedup = safeDiv(Tree, R.Cycles);
    else if (R.Workload == "BM_LookupCachedTranslation")
      R.Speedup = safeDiv(Tree, R.Cycles);
    else if (R.Workload == "BM_DispatchTable")
      R.Speedup =
          safeDiv(nsFor(Reporter.Rows, "BM_DispatchSwitch"), R.Cycles);
  }

  int Failures = 0;
  if (Tree > 0 && Cached > 0) {
    double Speedup = Tree / Cached;
    std::printf("\nlookup fast path: tree %.1f ns, cached %.1f ns "
                "(%.1fx, floor 2x)\n",
                Tree, Cached, Speedup);
    if (Speedup < 2.0) {
      std::printf("  [FAIL] cached lookup below the 2x floor\n");
      ++Failures;
    }
  } else {
    std::printf("\n[FAIL] lookup rows missing (filtered out?); cannot "
                "check the 2x floor\n");
    ++Failures;
  }

  if (!benchjson::writeBenchJson(JsonPath, "lookup_micro", Reporter.Rows))
    return 1;
  return Failures == 0 ? 0 : 1;
}
