//===- bench/micro_runtime.cpp - Runtime-library microbenchmarks --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the CGCM runtime primitives: the
/// greatest-LTE allocation-map lookup as the number of tracked units
/// grows, the map/unmap/release cycle, and mapArray over pointer tables.
/// These measure real host nanoseconds of this implementation (unlike
/// the modeled cycles in the other benches).
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "gpusim/GPUDevice.h"
#include "runtime/CGCMRuntime.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace cgcm;

namespace {

struct RuntimeFixture {
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host{HostAddressBase, "host"};
  GPUDevice Device{TM, Stats};
  CGCMRuntime RT{Host, Device, TM, Stats};
};

/// Populates \p F with \p Units heap allocation units of \p Size bytes.
std::vector<uint64_t> populate(RuntimeFixture &F, unsigned Units,
                               uint64_t Size) {
  std::vector<uint64_t> Ptrs;
  Ptrs.reserve(Units);
  for (unsigned I = 0; I != Units; ++I) {
    uint64_t P = F.Host.allocate(Size);
    F.RT.notifyHeapAlloc(P, Size);
    Ptrs.push_back(P);
  }
  return Ptrs;
}

void BM_AllocationMapLookup(benchmark::State &State) {
  RuntimeFixture F;
  auto Ptrs = populate(F, static_cast<unsigned>(State.range(0)), 256);
  size_t I = 0;
  for (auto _ : State) {
    // Interior pointer: offset 100 into the unit.
    const AllocUnitInfo *Info = F.RT.lookup(Ptrs[I % Ptrs.size()] + 100);
    benchmark::DoNotOptimize(Info);
    ++I;
  }
}
BENCHMARK(BM_AllocationMapLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_MapUnmapRelease(benchmark::State &State) {
  RuntimeFixture F;
  auto Ptrs = populate(F, 64, static_cast<uint64_t>(State.range(0)));
  size_t I = 0;
  for (auto _ : State) {
    uint64_t P = Ptrs[I % Ptrs.size()];
    uint64_t D = F.RT.map(P);
    benchmark::DoNotOptimize(D);
    F.RT.onKernelLaunch();
    F.RT.unmap(P);
    F.RT.release(P);
    ++I;
  }
}
BENCHMARK(BM_MapUnmapRelease)->Arg(64)->Arg(4096)->Arg(65536);

void BM_MapResidentTranslation(benchmark::State &State) {
  // The promotion-enabled fast path: the unit stays mapped, so map only
  // translates and bumps the reference count.
  RuntimeFixture F;
  auto Ptrs = populate(F, 1, 65536);
  F.RT.map(Ptrs[0]); // Keep resident.
  for (auto _ : State) {
    uint64_t D = F.RT.map(Ptrs[0] + 128);
    benchmark::DoNotOptimize(D);
    F.RT.release(Ptrs[0] + 128);
  }
  F.RT.release(Ptrs[0]);
}
BENCHMARK(BM_MapResidentTranslation);

void BM_MapArray(benchmark::State &State) {
  RuntimeFixture F;
  unsigned Elems = static_cast<unsigned>(State.range(0));
  auto Targets = populate(F, Elems, 128);
  uint64_t Table = F.Host.allocate(Elems * 8);
  F.RT.notifyHeapAlloc(Table, Elems * 8);
  for (unsigned I = 0; I != Elems; ++I)
    F.Host.writeUInt(Table + I * 8, Targets[I], 8);
  for (auto _ : State) {
    uint64_t D = F.RT.mapArray(Table);
    benchmark::DoNotOptimize(D);
    F.RT.onKernelLaunch();
    F.RT.unmapArray(Table);
    F.RT.releaseArray(Table);
  }
}
BENCHMARK(BM_MapArray)->Arg(8)->Arg(64)->Arg(512);

void BM_DeclareExpireAlloca(benchmark::State &State) {
  RuntimeFixture F;
  for (auto _ : State) {
    uint64_t P = F.Host.allocate(512);
    F.RT.declareAlloca(P, 512);
    F.RT.removeAlloca(P);
    F.Host.free(P);
  }
}
BENCHMARK(BM_DeclareExpireAlloca);

/// Modeled-cycle scenario for the "transfer_overlap" JSON section (these
/// numbers are modeled cycles, unlike the host-ns rows above): a
/// pipelined map -> kernel -> unmap loop over 8 heap buffers of 64 KiB,
/// run under one transfer-engine configuration. Data movement is eager,
/// so the final host bytes must match the synchronous run exactly;
/// \p FinalBytes receives them for that comparison.
benchjson::TransferOverlapRow runOverlapScenario(unsigned Streams,
                                                 bool Coalesce, bool Pinned,
                                                 std::string &FinalBytes) {
  RuntimeFixture F;
  StreamEngineConfig C;
  C.Async = Streams > 0;
  C.Streams = Streams ? Streams : 1;
  C.Coalesce = Coalesce;
  StreamEngine &Eng = F.Device.getStreamEngine();
  Eng.configure(C);

  constexpr unsigned Buffers = 8;
  constexpr uint64_t Size = 65536;
  auto Ptrs = populate(F, Buffers, Size);
  for (unsigned B = 0; B != Buffers; ++B)
    for (uint64_t I = 0; I != Size; I += 8)
      F.Host.writeUInt(Ptrs[B] + I, (B * 1315423911ull) ^ I, 8);
  if (Pinned)
    for (uint64_t P : Ptrs)
      F.RT.setHostPinned(P, true);

  for (unsigned Iter = 0; Iter != 4; ++Iter) {
    for (uint64_t P : Ptrs)
      F.RT.map(P);
    F.RT.onKernelLaunch();
    Eng.kernelLaunch(20000.0);
    for (uint64_t P : Ptrs) {
      F.RT.unmap(P);
      F.RT.release(P);
    }
  }
  Eng.drain();

  FinalBytes.resize(Buffers * Size);
  for (unsigned B = 0; B != Buffers; ++B)
    F.Host.read(Ptrs[B], &FinalBytes[B * Size], Size);

  benchjson::TransferOverlapRow T;
  T.Workload = "pipeline-map-kernel-unmap";
  T.Streams = Streams;
  T.Coalesce = Coalesce;
  T.Pinned = Pinned;
  T.TotalCycles = F.Stats.totalCycles();
  T.WallCycles = F.Stats.wallCycles();
  T.StallCycles = F.Stats.StallCycles;
  T.OverlapSavedCycles = F.Stats.overlapSavedCycles();
  T.AsyncTransfers = F.Stats.AsyncTransfers;
  T.DmaBatches = F.Stats.DmaBatches;
  T.CoalescedTransfers = F.Stats.CoalescedTransfers;
  T.HostSyncs = F.Stats.HostSyncs;
  return T;
}

/// A console reporter that additionally collects each run for --json
/// output. These benchmarks measure real host nanoseconds, so the shared
/// schema's `cycles` field carries ns/op and the byte/speedup fields stay
/// zero.
class CollectingReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        Rows.push_back(
            {R.benchmark_name(), "host-ns-per-op", R.GetAdjustedRealTime(), 0,
             0, 0});
    benchmark::ConsoleReporter::ReportRuns(Reports);
  }

  std::vector<cgcm::benchjson::Row> Rows;
};

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(
          Argc, Argv,
          "  (remaining flags are passed through to google-benchmark)\n"))
    return 0;
  benchjson::StreamOpts SO;
  if (!benchjson::consumeStreamArgs(Argc, Argv, SO))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  CollectingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  // The transfer-overlap sweep: the synchronous reference against the
  // asynchronous engine at 1/2/4 streams (plus --streams if different),
  // pageable and pinned. Modeled cycles; bit-identical data required.
  benchjson::PipelineSections Sections;
  std::string SyncBytes;
  Sections.TransferOverlap.push_back(
      runOverlapScenario(0, SO.Coalesce, false, SyncBytes));
  std::vector<unsigned> StreamCounts = {1, 2, 4};
  if (SO.Streams && SO.Streams != 1 && SO.Streams != 2 && SO.Streams != 4)
    StreamCounts.push_back(SO.Streams);
  int Failures = 0;
  std::printf("\ntransfer_overlap (modeled cycles; sync total %.0f):\n",
              Sections.TransferOverlap.front().TotalCycles);
  for (bool Pinned : {false, true})
    for (unsigned Streams : StreamCounts) {
      std::string Bytes;
      benchjson::TransferOverlapRow T =
          runOverlapScenario(Streams, SO.Coalesce, Pinned, Bytes);
      T.OutputEqual = Bytes == SyncBytes;
      if (!T.OutputEqual) {
        std::printf("  [FAIL] streams=%u %s: host bytes differ from sync\n",
                    Streams, Pinned ? "pinned" : "pageable");
        ++Failures;
      }
      std::printf("  streams=%u %-8s wall %10.0f (saved %8.0f, "
                  "%llu batches, %llu coalesced)\n",
                  Streams, Pinned ? "pinned" : "pageable", T.WallCycles,
                  T.OverlapSavedCycles,
                  static_cast<unsigned long long>(T.DmaBatches),
                  static_cast<unsigned long long>(T.CoalescedTransfers));
      Sections.TransferOverlap.push_back(T);
    }

  if (!benchjson::writeBenchJson(JsonPath, "micro_runtime", Reporter.Rows,
                                 Sections))
    return 1;
  return Failures == 0 ? 0 : 1;
}
