//===- bench/server_throughput.cpp - Multi-tenant server replay --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays thousands of mixed sessions — the 24 paper workloads plus
/// fuzz-generated programs — through the runtime server's admission
/// queue across a pool of worker threads, and checks every session's
/// output bit-identical against its solo run (docs/Server.md).
///
/// Two kinds of numbers come out:
///
///   * modeled (deterministic, gated by BENCH_server.json): per-program
///     service cycles, and the p50/p90/p99/mean latency + makespan +
///     requests-per-megacycle of the deterministic queueing post-pass;
///   * host wall clock (noisy, `host-` rows, never gated): the real
///     requests/sec the live replay achieved on this machine.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "fuzz/ProgGen.h"
#include "server/SessionManager.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace cgcm;

namespace {

struct Options {
  unsigned Sessions = 1200;
  unsigned Threads = 8;
  unsigned Batch = 8;
  unsigned Queue = 256;
  unsigned FuzzPrograms = 8;
  uint64_t Seed = 1234;
  uint64_t SessionQuotaKB = 16384;
  uint64_t GlobalQuotaKB = 65536;
  double ArrivalCycles = 100000;
  bool Verbose = false;
};

bool parseUnsigned(const char *Arg, const char *Name, uint64_t &Out) {
  size_t N = std::strlen(Name);
  if (std::strncmp(Arg, Name, N) != 0 || Arg[N] != '=')
    return false;
  Out = std::strtoull(Arg + N + 1, nullptr, 10);
  return true;
}

/// splitmix64 — the deterministic mix sampler.
uint64_t mix(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv,
                                "  --sessions=N        total session replays (default 1200)\n"
                                "  --threads=N         worker threads / modeled lanes (default 8)\n"
                                "  --batch=N           admission batch size (default 8)\n"
                                "  --queue=N           admission queue depth (default 256)\n"
                                "  --fuzz=N            distinct generated programs in the mix (default 8)\n"
                                "  --seed=N            mix + generator seed (default 1234)\n"
                                "  --session-quota-kb=N  per-session device quota (default 16384)\n"
                                "  --global-quota-kb=N   server-wide device quota (default 65536)\n"
                                "  --arrival=N         modeled cycles between arrivals (default 100000)\n"
                                "  --verbose           per-mismatch detail\n"))
    return 0;
  benchjson::StreamOpts SO;
  if (!benchjson::consumeStreamArgs(Argc, Argv, SO))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);

  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    uint64_t V = 0;
    if (parseUnsigned(A, "--sessions", V))
      Opt.Sessions = static_cast<unsigned>(V);
    else if (parseUnsigned(A, "--threads", V))
      Opt.Threads = static_cast<unsigned>(V);
    else if (parseUnsigned(A, "--batch", V))
      Opt.Batch = static_cast<unsigned>(V);
    else if (parseUnsigned(A, "--queue", V))
      Opt.Queue = static_cast<unsigned>(V);
    else if (parseUnsigned(A, "--fuzz", V))
      Opt.FuzzPrograms = static_cast<unsigned>(V);
    else if (parseUnsigned(A, "--seed", V))
      Opt.Seed = V;
    else if (parseUnsigned(A, "--session-quota-kb", V))
      Opt.SessionQuotaKB = V;
    else if (parseUnsigned(A, "--global-quota-kb", V))
      Opt.GlobalQuotaKB = V;
    else if (parseUnsigned(A, "--arrival", V))
      Opt.ArrivalCycles = static_cast<double>(V);
    else if (std::strcmp(A, "--verbose") == 0)
      Opt.Verbose = true;
    else {
      std::fprintf(stderr, "server_throughput: unknown argument '%s'\n", A);
      return 2;
    }
  }

  RunnerOptions RO;
  RO.AsyncStreams = SO.Streams;
  RO.Coalesce = SO.Coalesce;
  RO.Devices = SO.Devices;
  RO.Placement = SO.Placement == "bytes" ? PlacementPolicy::BytesBalanced
                                         : PlacementPolicy::RoundRobin;

  // The unique program set: every paper workload under the optimized
  // and unoptimized managed configurations, plus generated programs.
  struct Program {
    std::string Name;
    std::string Source;
    BenchConfig Config;
  };
  std::vector<Program> Mix;
  for (const Workload &W : getWorkloads()) {
    Mix.push_back({W.Name, W.Source, BenchConfig::CGCMOptimized});
    Mix.push_back({W.Name + "+unopt", W.Source, BenchConfig::CGCMUnoptimized});
  }
  for (unsigned I = 0; I < Opt.FuzzPrograms; ++I) {
    ProgDesc D = generateProgram(Opt.Seed + I);
    Mix.push_back({"fuzz-" + std::to_string(Opt.Seed + I), D.render(),
                   BenchConfig::CGCMOptimized});
  }

  // Solo references: each unique program alone on a fresh machine. The
  // per-program modeled service cycles are the deterministic base of
  // every gated number.
  std::printf("server_throughput: %zu unique programs, %u sessions, "
              "%u threads, batch %u\n",
              Mix.size(), Opt.Sessions, Opt.Threads, Opt.Batch);
  std::vector<benchjson::Row> Rows;
  std::vector<WorkloadRun> Solo(Mix.size());
  for (size_t I = 0; I < Mix.size(); ++I) {
    Workload W;
    W.Name = Mix[I].Name;
    W.Source = Mix[I].Source;
    Solo[I] = runWorkload(W, Mix[I].Config, RO);
    Rows.push_back({Mix[I].Name, "service-cycles", Solo[I].TotalCycles,
                    Solo[I].Stats.BytesHtoD, Solo[I].Stats.BytesDtoH, 0});
  }

  // The replay: a deterministic sample of the mix.
  std::vector<ServerRequest> Reqs;
  std::vector<size_t> ReqProgram;
  Reqs.reserve(Opt.Sessions);
  uint64_t Rng = Opt.Seed;
  for (unsigned I = 0; I < Opt.Sessions; ++I) {
    size_t P = static_cast<size_t>(mix(Rng) % Mix.size());
    Reqs.push_back({Mix[P].Name, Mix[P].Source, Mix[P].Config});
    ReqProgram.push_back(P);
  }

  ServerConfig SC;
  SC.Threads = Opt.Threads;
  SC.BatchSize = Opt.Batch;
  SC.QueueDepth = Opt.Queue;
  SC.Quotas.SessionDeviceBytes = Opt.SessionQuotaKB << 10;
  SC.Quotas.GlobalDeviceBytes = Opt.GlobalQuotaKB << 10;
  SC.Run = RO;
  SC.ArrivalSpacingCycles = Opt.ArrivalCycles;
  SessionManager Mgr(SC);
  std::vector<ServerResponse> Rs = Mgr.replay(Reqs);
  ServerStats S = Mgr.summarize(Rs);

  // Identity + failure sweep.
  unsigned Mismatches = 0, Failures = 0, CycleDrift = 0;
  for (size_t I = 0; I < Rs.size(); ++I) {
    const WorkloadRun &Ref = Solo[ReqProgram[I]];
    if (Rs[I].Output != Ref.Output) {
      ++Mismatches;
      if (Opt.Verbose)
        std::fprintf(stderr, "  output mismatch: session %zu (%s)\n", I + 1,
                     Reqs[I].Name.c_str());
    }
    if (Rs[I].ServiceCycles != Ref.TotalCycles)
      ++CycleDrift;
    if (!Rs[I].Ok) {
      ++Failures;
      if (Opt.Verbose)
        std::fprintf(stderr, "  audit failure: session %zu (%s): %s\n", I + 1,
                     Reqs[I].Name.c_str(), Rs[I].Error.c_str());
    }
  }

  const ResidencyIndex &Idx = Mgr.index();
  std::printf("  identity: %u/%zu outputs bit-identical to solo"
              " (%u service-cycle drifts)\n",
              static_cast<unsigned>(Rs.size()) - Mismatches, Rs.size(),
              CycleDrift);
  std::printf("  audit:    %zu clean, %u failed\n", Rs.size() - Failures,
              Failures);
  std::printf("  evictions: %llu (%llu bytes), capacity stalls: %llu, "
              "peak resident: %llu bytes\n",
              static_cast<unsigned long long>(Idx.evictions()),
              static_cast<unsigned long long>(Idx.evictedBytes()),
              static_cast<unsigned long long>(Idx.capacityStalls()),
              static_cast<unsigned long long>(Idx.peakResidentBytes()));
  std::printf("  modeled latency cycles: p50 %.0f  p90 %.0f  p99 %.0f  "
              "mean %.0f\n",
              S.P50LatencyCycles, S.P90LatencyCycles, S.P99LatencyCycles,
              S.MeanLatencyCycles);
  std::printf("  modeled makespan: %.0f cycles (%.2f requests/megacycle)\n",
              S.MakespanCycles, S.RequestsPerMegacycle);
  std::printf("  host wall: %.2fs (%.1f requests/sec)\n", S.HostWallSeconds,
              S.HostRequestsPerSec);

  // Deterministic server rows, gated against BENCH_server.json.
  Rows.push_back({"__server__", "modeled-p50-latency", S.P50LatencyCycles,
                  0, 0, 0});
  Rows.push_back({"__server__", "modeled-p90-latency", S.P90LatencyCycles,
                  0, 0, 0});
  Rows.push_back({"__server__", "modeled-p99-latency", S.P99LatencyCycles,
                  0, 0, 0});
  Rows.push_back({"__server__", "modeled-mean-latency", S.MeanLatencyCycles,
                  0, 0, 0});
  Rows.push_back({"__server__", "modeled-makespan", S.MakespanCycles, 0, 0,
                  0});
  Rows.push_back({"__server__", "modeled-requests-per-megacycle",
                  S.RequestsPerMegacycle, 0, 0, 0});
  // Host-clock rows: real throughput, noisy by definition, skipped by
  // the regression gate's host- prefix rule.
  Rows.push_back({"__server__", "host-requests-per-sec",
                  S.HostRequestsPerSec, 0, 0, 0});
  Rows.push_back({"__server__", "host-wall-ms", S.HostWallSeconds * 1e3, 0,
                  0, 0});

  if (!JsonPath.empty() &&
      !benchjson::writeBenchJson(JsonPath, "server_throughput", Rows)) {
    std::fprintf(stderr, "server_throughput: cannot write %s\n",
                 JsonPath.c_str());
    return 2;
  }
  if (Mismatches || Failures || CycleDrift) {
    std::fprintf(stderr,
                 "server_throughput: FAILED (%u mismatches, %u audit "
                 "failures, %u cycle drifts)\n",
                 Mismatches, Failures, CycleDrift);
    return 1;
  }
  std::printf("server_throughput: PASS\n");
  return 0;
}
