//===- bench/table1_applicability.cpp - Reproduce Table 1 ---------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: the applicability comparison between
/// communication-management systems. Each row of the paper's table is a
/// capability; here each capability becomes a concrete probe program
/// whose kernel exercises exactly that feature, and each framework's
/// applicability predicate is evaluated on it:
///
///   framework          aliasing  irregular  weak-types  ptr-arith  max-ind
///   JCUDA                 x          .          x           x         8*
///   Named regions         .          x         (.)          x         1
///   Affine (PGI)          .          x         (.)          x         1
///   Inspector-executor    x          .          .           x         1
///   CGCM                  .          .          .           .         2
///
/// (*JCUDA is Java-specific and not modeled; the four modeled frameworks
/// are the ones the evaluation compares.)
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "frontend/IRGen.h"
#include "transform/Applicability.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cgcm;

namespace {

struct Probe {
  const char *Name;
  const char *Source;
  // Expected applicability (paper Table 1 semantics).
  bool ExpectNR;
  bool ExpectIE;
  bool ExpectCGCM;
};

/// Each probe launches one kernel exercising one communication hazard.
const Probe Probes[] = {
    {"baseline (named unit)", R"(
      double a[64];
      __kernel void k(double *p, long n) {
        long i = __tid();
        if (i < n) p[i] = p[i] * 2.0;
      }
      int main() {
        launch k<<<1, 64>>>(a, 64);
        return 0;
      }
    )",
     true, true, true},

    {"aliasing pointers", R"(
      double a[64];
      __kernel void k(double *p, double *q, long n) {
        long i = __tid();
        if (i < n) p[i] = q[i] * 2.0;
      }
      int main() {
        launch k<<<1, 64>>>(a, a, 64);
        return 0;
      }
    )",
     false, false, true},

    {"irregular accesses", R"(
      double a[64];
      double b[64];
      int idx[64];
      __kernel void k(long n) {
        long i = __tid();
        if (i < n) a[idx[i]] = b[i];
      }
      int main() {
        launch k<<<1, 64>>>(64);
        return 0;
      }
    )",
     false, true, true},

    {"weak typing (int<->ptr)", R"(
      double a[64];
      __kernel void k(double *p, long n) {
        long i = __tid();
        if (i < n) p[i] = p[i] + 1.0;
      }
      int main() {
        launch k<<<1, 64>>>((double*)((long)a + 0), 64);
        return 0;
      }
    )",
     false, false, true},

    {"pointer arithmetic (interior)", R"(
      double a[64];
      __kernel void k(double *p, long n) {
        long i = __tid();
        if (i < n) p[i] = p[i] * 0.5;
      }
      int main() {
        double *mid = (double*)a + 16;
        launch k<<<1, 32>>>(mid, 32);
        return 0;
      }
    )",
     false, false, true},

    {"double indirection", R"(
      double row0[16];
      double row1[16];
      double *rows[2];
      __kernel void k(double **r, long n) {
        long i = __tid();
        if (i < n) {
          r[0][i] = r[0][i] + 1.0;
          r[1][i] = r[1][i] + 2.0;
        }
      }
      int main() {
        rows[0] = row0;
        rows[1] = row1;
        launch k<<<1, 16>>>(rows, 16);
        return 0;
      }
    )",
     false, false, true},

    {"triple indirection (outside CGCM)", R"(
      double x[8];
      double *p1[1];
      double **p2[1];
      __kernel void k(double ***ppp) {
        long i = __tid();
        if (i < 1) ppp[0][0][0] = 1.0;
      }
      int main() {
        p1[0] = x;
        p2[0] = p1;
        launch k<<<1, 1>>>(p2);
        return 0;
      }
    )",
     false, false, false},
};

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(
          Argc, Argv,
          "  (this bench never executes code, so the stream flags are\n"
          "   accepted for interface uniformity but have no effect)\n"))
    return 0;
  benchjson::StreamOpts SO;
  if (!benchjson::consumeStreamArgs(Argc, Argv, SO))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);
  // This bench measures applicability, not execution: rows carry the
  // boolean verdict in `speedup` (1 = framework applies, 0 = it does not)
  // and leave the timing fields at zero.
  std::vector<benchjson::Row> Rows;

  std::printf("Table 1: communication-framework applicability by feature\n");
  std::printf("%-32s %6s %6s %8s %8s\n", "probe", "NR", "affine", "insp-ex",
              "CGCM");
  int Failures = 0;
  for (const Probe &P : Probes) {
    auto M = compileMiniC(P.Source, "probe");
    PipelineOptions Opts;
    Opts.Parallelize = false;
    Opts.Manage = false;
    Opts.Optimize = false;
    runCGCMPipeline(*M, Opts);
    std::vector<LaunchApplicability> Apps = analyzeModuleApplicability(*M);
    if (Apps.size() != 1) {
      std::printf("%-32s probe has %zu launches (expected 1)\n", P.Name,
                  Apps.size());
      ++Failures;
      continue;
    }
    const LaunchApplicability &A = Apps[0];
    Rows.push_back({P.Name, "named-regions", 0, 0, 0, A.NamedRegions ? 1. : 0.});
    Rows.push_back({P.Name, "affine", 0, 0, 0, A.Affine ? 1. : 0.});
    Rows.push_back(
        {P.Name, "inspector-executor", 0, 0, 0, A.InspectorExecutor ? 1. : 0.});
    Rows.push_back({P.Name, "cgcm", 0, 0, 0, A.CGCM ? 1. : 0.});
    bool Ok = A.NamedRegions == P.ExpectNR &&
              A.InspectorExecutor == P.ExpectIE && A.CGCM == P.ExpectCGCM &&
              A.Affine == A.NamedRegions;
    std::printf("%-32s %6s %6s %8s %8s   %s\n", P.Name,
                A.NamedRegions ? "yes" : "no", A.Affine ? "yes" : "no",
                A.InspectorExecutor ? "yes" : "no", A.CGCM ? "yes" : "no",
                Ok ? "[ok]" : "[FAIL]");
    if (!Ok)
      ++Failures;
  }
  std::printf("\nCGCM handles every hazard up to two levels of indirection "
              "(its stated restriction);\nnamed-region/affine techniques need "
              "distinct whole named units, induction-variable\nindexes, and "
              "sound types; inspector-executor additionally tolerates "
              "irregular\nsubscripts (that is what inspection is for).\n");
  if (!benchjson::writeBenchJson(JsonPath, "table1_applicability", Rows)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
