//===- bench/table3_characteristics.cpp - Reproduce Table 3 ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3: per program — suite, measured limiting factor,
/// GPU and communication time as a percentage of total execution time
/// (unoptimized and optimized), kernel counts, and the applicability of
/// CGCM vs the named-region and inspector-executor techniques, with the
/// paper's values printed alongside.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <string>

using namespace cgcm;

namespace {

struct Percents {
  double Gpu = 0, Comm = 0;
};

Percents percents(const ExecStats &S) {
  double Total = S.totalCycles();
  Percents P;
  if (Total > 0) {
    P.Gpu = 100.0 * S.GpuCycles / Total;
    P.Comm = 100.0 * (S.CommCycles + S.InspectorCycles) / Total;
  }
  return P;
}

const char *classify(const Percents &P) {
  // The paper's three buckets: GPU-bound, communication-bound, or other
  // (CPU / IO).
  double Other = 100.0 - P.Gpu - P.Comm;
  if (P.Gpu >= P.Comm && P.Gpu >= Other)
    return "GPU";
  if (P.Comm >= P.Gpu && P.Comm >= Other)
    return "Comm.";
  return "Other";
}

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(Argc, Argv))
    return 0;
  benchjson::StreamOpts SO;
  if (!benchjson::consumeStreamArgs(Argc, Argv, SO))
    return 2;
  RunnerOptions RO;
  RO.AsyncStreams = SO.Streams;
  RO.Coalesce = SO.Coalesce;
  RO.Devices = SO.Devices;
  RO.Placement = SO.Placement == "bytes" ? PlacementPolicy::BytesBalanced
                                         : PlacementPolicy::RoundRobin;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);
  std::vector<benchjson::Row> Rows;

  std::printf("Table 3: program characteristics (measured | paper)\n");
  std::printf("%-16s %-9s %-7s %-7s | %-15s %-15s | %-9s %-9s\n", "program",
              "suite", "limit", "paper", "GPU%% un/opt", "Comm%% un/opt",
              "kernels", "IE+NR");

  unsigned TotalKernels = 0, TotalNR = 0;
  unsigned LimitMatches = 0;
  int Failures = 0;

  for (const Workload &W : getWorkloads()) {
    WorkloadRun Unopt = runWorkload(W, BenchConfig::CGCMUnoptimized, RO);
    WorkloadRun Opt = runWorkload(W, BenchConfig::CGCMOptimized, RO);
    Percents PU = percents(Unopt.Stats);
    Percents PO = percents(Opt.Stats);
    const char *Limit = classify(PO);
    Rows.push_back({W.Name, "cgcm-unopt", Unopt.TotalCycles,
                    Unopt.Stats.BytesHtoD, Unopt.Stats.BytesDtoH, 1.0});
    Rows.push_back({W.Name, "cgcm-opt", Opt.TotalCycles, Opt.Stats.BytesHtoD,
                    Opt.Stats.BytesDtoH, Unopt.TotalCycles / Opt.TotalCycles});

    std::vector<LaunchApplicability> Apps = analyzeWorkloadApplicability(W);
    unsigned NR = 0;
    for (const LaunchApplicability &A : Apps)
      if (A.NamedRegions)
        ++NR;
    TotalKernels += Apps.size();
    TotalNR += NR;
    if (Limit == W.PaperLimitingFactor)
      ++LimitMatches;

    std::printf("%-16s %-9s %-7s %-7s | %5.1f/%5.1f (%4.1f/%4.1f) | "
                "%5.1f/%5.1f (%4.1f/%4.1f) | %2zu (%2u) %4u (%2u)\n",
                W.Name.c_str(), W.Suite.c_str(), Limit,
                W.PaperLimitingFactor.c_str(), PU.Gpu, PO.Gpu,
                W.PaperGpuPctUnopt, W.PaperGpuPctOpt, PU.Comm, PO.Comm,
                W.PaperCommPctUnopt, W.PaperCommPctOpt, Apps.size(),
                W.PaperKernels, NR, W.PaperNamedRegionKernels);

    if (Apps.size() != W.PaperKernels || NR != W.PaperNamedRegionKernels) {
      std::printf("  [FAIL] %s kernel/applicability counts diverge\n",
                  W.Name.c_str());
      ++Failures;
    }
  }

  std::printf("\nTotals: %u kernels (paper 101), %u named-region applicable "
              "(paper table sums to 78)\n",
              TotalKernels, TotalNR);
  std::printf("Limiting-factor agreement with the paper: %u / 24\n",
              LimitMatches);
  auto Check = [&](bool Cond, const char *Msg) {
    std::printf("  [%s] %s\n", Cond ? "ok" : "FAIL", Msg);
    if (!Cond)
      ++Failures;
  };
  Check(TotalKernels == 101, "101 DOALL kernels across the suite");
  Check(TotalNR == 78, "named-region applicability matches Table 3's sums");
  Check(LimitMatches >= 16,
        "limiting-factor classification matches the paper for most programs");
  if (!benchjson::writeBenchJson(JsonPath, "table3_characteristics", Rows)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
