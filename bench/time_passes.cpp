//===- bench/time_passes.cpp - Per-pass timing sweep over the suite ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the default pipeline over all 24 workloads with the
/// TimePassesHandler attached (docs/PassManager.md) and reports, per
/// workload, the modeled execution cost plus the analysis-cache behaviour
/// the pass-manager refactor exists to improve: the call graph and the
/// function analyses are built once and *hit* on every later fixpoint
/// iteration instead of being rebuilt per iteration.
///
/// `--verify-each` additionally runs the IR verifier after every pass and
/// turns on stale-analysis fingerprint checking — the configuration CI
/// sweeps under ASan.
///
/// The `--json` document is cgcm-bench-v1 with the optional
/// "pass_timings" and "analysis_cache" sections (aggregated over the
/// whole sweep).
///
/// Shape checks (exit status):
///  * every workload converges and verifies;
///  * on every workload whose fixpoint loop ran more than one sweep, the
///    call graph is constructed strictly fewer times than the loop
///    iterated — the cache, not a per-iteration rebuild, served it;
///  * every analysis that was requested at all has cache hits overall.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "pass/StandardInstrumentations.h"
#include "transform/Pipeline.h"
#include "workloads/Runner.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace cgcm;

namespace {

struct SweepResult {
  PipelineResult Pipeline;
  std::vector<PassTiming> Timings;
  std::vector<AnalysisCacheStats> Cache;
  double Cycles = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
};

benchjson::StreamOpts GStreams;

SweepResult sweepWorkload(const Workload &W, const std::string &Text,
                          bool VerifyEach) {
  auto M = compileMiniC(W.Source, W.Name);

  SweepResult R;
  ModuleAnalysisManager AM;

  // Attach our own timer (runPassPipeline's --time-passes plumbing only
  // prints; the bench wants the numbers).
  PassManager PM;
  std::string Err;
  if (!parsePassPipeline(PM, Text, R.Pipeline, nullptr, &Err)) {
    std::fprintf(stderr, "invalid pipeline '%s': %s\n", Text.c_str(),
                 Err.c_str());
    std::exit(2);
  }
  PassInstrumentation PI;
  TimePassesHandler Timer;
  Timer.registerCallbacks(PI);
  VerifyEachHandler Verifier;
  if (VerifyEach) {
    Verifier.registerCallbacks(PI);
    AM.setStaleCheckingEnabled(true);
  }
  AM.setInstrumentation(&PI);
  PM.run(*M, AM);
  AM.setInstrumentation(nullptr);

  R.Timings = Timer.getTimings();
  R.Cache = AM.getCacheStats();

  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  if (GStreams.Devices > 1)
    Mach.setDevices(GStreams.Devices,
                    GStreams.Placement == "bytes"
                        ? PlacementPolicy::BytesBalanced
                        : PlacementPolicy::RoundRobin);
  Mach.setAsyncTransfers(GStreams.Streams, GStreams.Coalesce);
  Mach.loadModule(*M);
  Mach.run();
  R.Cycles = Mach.getStats().wallCycles();
  R.BytesHtoD = Mach.getStats().BytesHtoD;
  R.BytesDtoH = Mach.getStats().BytesDtoH;
  return R;
}

uint64_t cacheCount(const std::vector<AnalysisCacheStats> &Stats,
                    const char *Name, bool Hits) {
  for (const AnalysisCacheStats &S : Stats)
    if (S.Name == Name)
      return Hits ? S.Hits : S.Constructions;
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (benchjson::consumeHelpArg(
          Argc, Argv, "  --verify-each   verifier after every pass\n"))
    return 0;
  if (!benchjson::consumeStreamArgs(Argc, Argv, GStreams))
    return 2;
  std::string JsonPath = benchjson::consumeJsonArg(Argc, Argv);
  bool VerifyEach = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--verify-each")) {
      VerifyEach = true;
    } else {
      std::fprintf(stderr, "usage: %s [--verify-each] [--json <file>]\n",
                   Argv[0]);
      return 2;
    }
  }

  const std::string Text = buildDefaultPipelineText(PipelineOptions());
  std::printf("Per-pass timing sweep: %zu workloads, pipeline\n  %s\n",
              getWorkloads().size(), Text.c_str());
  if (VerifyEach)
    std::printf("(--verify-each: verifier after every pass, stale-analysis "
                "fingerprint checks on)\n");
  std::printf("\n%-18s %12s %6s %10s %10s %8s\n", "workload", "cycles",
              "fixpt", "cg builds", "cg hits", "an.hits");

  const std::string Config =
      VerifyEach ? "default+verify-each" : "default";
  std::vector<benchjson::Row> Rows;
  benchjson::PipelineSections Sections;
  std::map<std::string, size_t> TimingIndex;
  std::map<std::string, size_t> CacheIndex;
  int Failures = 0;

  for (const Workload &W : getWorkloads()) {
    SweepResult R = sweepWorkload(W, Text, VerifyEach);
    Rows.push_back({W.Name, Config, R.Cycles, R.BytesHtoD, R.BytesDtoH, 0});

    // Aggregate in first-appearance order.
    for (const PassTiming &T : R.Timings) {
      auto [It, New] =
          TimingIndex.try_emplace(T.Pass, Sections.PassTimings.size());
      if (New)
        Sections.PassTimings.push_back({T.Pass, 0, 0, 0});
      benchjson::PassTimingRow &Row = Sections.PassTimings[It->second];
      Row.WallMs += T.WallMs;
      Row.IrDelta += T.IrDelta;
      Row.Runs += T.Runs;
    }
    uint64_t TotalHits = 0;
    for (const AnalysisCacheStats &S : R.Cache) {
      auto [It, New] =
          CacheIndex.try_emplace(S.Name, Sections.AnalysisCache.size());
      if (New)
        Sections.AnalysisCache.push_back({S.Name, 0, 0});
      benchjson::AnalysisCacheRow &Row = Sections.AnalysisCache[It->second];
      Row.Constructions += S.Constructions;
      Row.Hits += S.Hits;
      TotalHits += S.Hits;
    }

    unsigned Fixpoint = std::max(R.Pipeline.AllocaPromo.Iterations,
                                 R.Pipeline.MapPromo.Iterations);
    uint64_t CGBuilds = cacheCount(R.Cache, "callgraph", /*Hits=*/false);
    uint64_t CGHits = cacheCount(R.Cache, "callgraph", /*Hits=*/true);
    std::printf("%-18s %12.0f %6u %10llu %10llu %8llu\n", W.Name.c_str(),
                R.Cycles, Fixpoint, (unsigned long long)CGBuilds,
                (unsigned long long)CGHits, (unsigned long long)TotalHits);

    // The refactor's headline property: the naive schedule rebuilt the
    // call graph once per alloca-promotion sweep and once per
    // map-promotion sweep; the cached pipeline must beat that whenever
    // the fixpoint actually iterated.
    unsigned NaiveBuilds =
        R.Pipeline.AllocaPromo.Iterations + R.Pipeline.MapPromo.Iterations;
    if (NaiveBuilds > 1 && CGBuilds >= NaiveBuilds) {
      std::printf("  [FAIL] %s: callgraph built %llu times, naive schedule "
                  "would build %u\n",
                  W.Name.c_str(), (unsigned long long)CGBuilds, NaiveBuilds);
      ++Failures;
    }
  }

  std::printf("\nAggregated per-pass timings (all workloads):\n");
  std::printf("  %-24s %10s %8s %10s\n", "pass", "wall ms", "runs",
              "ir delta");
  for (const benchjson::PassTimingRow &T : Sections.PassTimings)
    std::printf("  %-24s %10.3f %8llu %+10lld\n", T.Pass.c_str(), T.WallMs,
                (unsigned long long)T.Runs, (long long)T.IrDelta);

  std::printf("\nAggregated analysis cache (all workloads):\n");
  std::printf("  %-24s %14s %8s\n", "analysis", "constructions", "hits");
  for (const benchjson::AnalysisCacheRow &C : Sections.AnalysisCache) {
    std::printf("  %-24s %14llu %8llu\n", C.Analysis.c_str(),
                (unsigned long long)C.Constructions,
                (unsigned long long)C.Hits);
    if (C.Hits == 0) {
      std::printf("  [FAIL] analysis '%s' never hit the cache across the "
                  "whole suite\n",
                  C.Analysis.c_str());
      ++Failures;
    }
  }

  if (!benchjson::writeBenchJson(JsonPath, "time_passes", Rows, Sections)) {
    std::printf("  [FAIL] cannot write %s\n", JsonPath.c_str());
    ++Failures;
  }
  std::printf("\n%s\n", Failures == 0 ? "all shape checks passed"
                                      : "SHAPE CHECK FAILURES");
  return Failures == 0 ? 0 : 1;
}
