//===- examples/auto_parallelize.cpp - Fully automatic parallelization ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline configuration: a plain sequential program goes in,
/// and CGCM coupled with the simple DOALL parallelizer produces a GPU
/// program with fully automatic, fully optimized communication. This
/// example shows the IR at each stage of the pipeline — the sequential
/// loops, the extracted kernels, the Listing-3-style management, and the
/// Listing-4-style promoted form — and then runs both versions to compare
/// results and modeled time.
///
/// Build and run:  ./build/examples/auto_parallelize
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/CommManagement.h"
#include "transform/DOALL.h"
#include "transform/MapPromotion.h"
#include "transform/Mem2Reg.h"

#include <cstdio>

using namespace cgcm;

namespace {

const char *Source = R"(
  double A[64][64];
  double B[64][64];
  int main() {
    int i; int j; int t;
    for (i = 0; i < 64; i++) {
      for (j = 0; j < 64; j++) {
        A[i][j] = ((i + j) % 9) * 0.1;
        B[i][j] = 0.0;
      }
    }
    for (t = 0; t < 12; t++) {
      for (i = 1; i < 63; i++) {
        for (j = 1; j < 63; j++)
          B[i][j] = 0.25 * (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] +
                            A[i][j + 1]);
      }
      for (i = 1; i < 63; i++) {
        for (j = 1; j < 63; j++)
          A[i][j] = B[i][j];
      }
    }
    double sum = 0.0;
    for (i = 0; i < 64; i++)
      for (j = 0; j < 64; j++)
        sum += A[i][j];
    print_f64(sum);
    return 0;
  }
)";

void banner(const char *Title) {
  std::printf("\n===================== %s =====================\n", Title);
}

double execute(Module &M, LaunchPolicy Policy, std::string &Output) {
  Machine Mach;
  Mach.setLaunchPolicy(Policy);
  Mach.loadModule(M);
  Mach.run();
  Output = Mach.getOutput();
  return Mach.getStats().totalCycles();
}

} // namespace

int main() {
  // Reference: the sequential program as written.
  auto Seq = compileMiniC(Source, "stencil");
  std::string SeqOut;
  double SeqCycles = execute(*Seq, LaunchPolicy::CpuEmulation, SeqOut);

  // The pipeline, one pass at a time, printing the interesting stages.
  auto M = compileMiniC(Source, "stencil");
  promoteAllocasToRegisters(*M);

  DOALLStats Doall = parallelizeDOALLLoops(*M);
  banner("after DOALL parallelization");
  std::printf("%u kernels extracted:\n", Doall.KernelsCreated);
  for (Function *K : Doall.Kernels)
    std::printf("  kernel @%s (%u live-in parameters)\n",
                K->getName().c_str(), K->getNumArgs());

  ManagementStats Mgmt = insertCommunicationManagement(*M);
  banner("after communication management (Listing 3 shape)");
  std::printf("%u launches managed; %u map calls inserted; %u globals "
              "declared\n",
              Mgmt.LaunchesManaged, Mgmt.MapsInserted, Mgmt.GlobalsDeclared);

  PromotionStats Promo = promoteMaps(*M);
  banner("after map promotion (Listing 4 shape)");
  std::printf("%u loop hoists, %u unmaps deleted in %u iterations\n",
              Promo.LoopHoists, Promo.UnmapsDeleted, Promo.Iterations);
  std::printf("\nmain after optimization:\n");
  for (const auto &F : M->functions()) {
    if (F->getName() != "main")
      continue;
    // Print just main (the module dump includes every kernel).
    std::string Text = M->getString();
    size_t Pos = Text.find("define i32 @main");
    if (Pos != std::string::npos)
      std::printf("%s\n", Text.substr(Pos, 1400).c_str());
  }

  std::string OptOut;
  double OptCycles = execute(*M, LaunchPolicy::Managed, OptOut);

  banner("results");
  std::printf("sequential checksum: %s", SeqOut.c_str());
  std::printf("GPU checksum:        %s", OptOut.c_str());
  std::printf("modeled speedup:     %.2fx\n", SeqCycles / OptCycles);
  return SeqOut == OptOut && OptCycles < SeqCycles ? 0 : 1;
}
