//===- examples/manual_vs_cgcm.cpp - Listing 1 vs Listing 2 --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating comparison. Listing 1 manages the CPU-GPU copy
/// of an array of strings by hand — allocate device memory per string,
/// copy each string, build a translated pointer table, copy it, launch,
/// copy everything back, free. Listing 2 is the same program with CGCM:
/// the kernel is launched on the host pointer and the system does the
/// rest.
///
/// Here "Listing 1" is written against the runtime's building blocks
/// (the cuMemAlloc/cuMemcpy-level device API) to show exactly the
/// boilerplate being deleted; "Listing 2" goes through the compiler
/// pipeline. Both produce identical results; the CGCM version is a
/// fraction of the code and cannot get a buffer size or direction wrong.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cgcm;

namespace {

/// Listing 1, by hand: manual explicit CPU-GPU memory management against
/// the simulated device. Every line here is communication management,
/// not useful work — exactly the paper's point.
std::string runManual() {
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host(HostAddressBase, "host");
  GPUDevice Device(TM, Stats);

  // Host data: an array of strings.
  const char *HText[4] = {"What", "so", "proudly", "we"};
  uint64_t HArray = Host.allocate(4 * 8);
  std::vector<uint64_t> HStrings;
  for (unsigned I = 0; I != 4; ++I) {
    uint64_t S = Host.allocate(std::strlen(HText[I]) + 1);
    Host.write(S, HText[I], std::strlen(HText[I]) + 1);
    Host.writeUInt(HArray + I * 8, S, 8);
    HStrings.push_back(S);
  }

  // --- Listing 1 boilerplate begins -------------------------------------
  // Copy elements from the array to the GPU.
  uint64_t HDevPtrs[4];
  for (unsigned I = 0; I != 4; ++I) {
    uint64_t Size = std::strlen(HText[I]) + 1;
    HDevPtrs[I] = Device.cuMemAlloc(Size);
    Device.cuMemcpyHtoD(HDevPtrs[I], Host, HStrings[I], Size);
  }
  // Copy the translated pointer array to the GPU.
  uint64_t DArray = Device.cuMemAlloc(4 * 8);
  for (unsigned I = 0; I != 4; ++I)
    Device.getMemory().writeUInt(DArray + I * 8, HDevPtrs[I], 8);

  // "Kernel": uppercase the first character of each string, on device
  // memory only.
  for (unsigned I = 0; I != 4; ++I) {
    uint64_t SPtr = Device.getMemory().readUInt(DArray + I * 8, 8);
    char C;
    Device.getMemory().read(SPtr, &C, 1);
    if (C >= 'a' && C <= 'z')
      C = static_cast<char>(C - 'a' + 'A');
    Device.getMemory().write(SPtr, &C, 1);
  }

  // Free the array; copy the elements back and free the GPU copies.
  Device.cuMemFree(DArray);
  std::string Result;
  for (unsigned I = 0; I != 4; ++I) {
    uint64_t Size = std::strlen(HText[I]) + 1;
    Device.cuMemcpyDtoH(Host, HStrings[I], HDevPtrs[I], Size);
    Device.cuMemFree(HDevPtrs[I]);
  }
  // --- Listing 1 boilerplate ends ---------------------------------------

  for (unsigned I = 0; I != 4; ++I)
    Result += Host.readCString(HStrings[I]) + " ";
  return Result;
}

/// Listing 2: the same program with implicit communication; CGCM inserts
/// and optimizes everything.
std::string runAutomatic() {
  // The strings live in mutable char arrays: string literals are
  // read-only allocation units, and CGCM (correctly) never copies
  // read-only units back from the device.
  const char *Source = R"(
    char w0[8] = "What";
    char w1[8] = "so";
    char w2[8] = "proudly";
    char w3[8] = "we";
    char *verse[4];
    __kernel void upper_first(long n) {
      long t = __tid();
      if (t < n) {
        char *s = verse[t];
        if (s[0] >= 'a') {
          if (s[0] <= 'z')
            s[0] = s[0] - 'a' + 'A';
        }
      }
    }
    int main() {
      verse[0] = w0;
      verse[1] = w1;
      verse[2] = w2;
      verse[3] = w3;
      launch upper_first<<<1, 4>>>(4);
      int i;
      for (i = 0; i < 4; i++)
        print_str(verse[i]);
      return 0;
    }
  )";
  auto M = compileMiniC(Source, "listing2");
  PipelineOptions Opts;
  Opts.Parallelize = false;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.loadModule(*M);
  Mach.run();
  // print_str emits one line per string.
  std::string Out = Mach.getOutput(), Result;
  for (char C : Out)
    Result += (C == '\n') ? ' ' : C;
  return Result;
}

} // namespace

int main() {
  std::string Manual = runManual();
  std::string Automatic = runAutomatic();
  std::printf("manual (Listing 1, ~30 lines of communication code): %s\n",
              Manual.c_str());
  std::printf("CGCM   (Listing 2, zero communication code):         %s\n",
              Automatic.c_str());
  bool Match = Manual == Automatic && Manual.rfind("What ", 0) == 0;
  std::printf("%s\n", Match ? "results identical"
                            : "MISMATCH between manual and automatic");
  return Match ? 0 : 1;
}
