//===- examples/quickstart.cpp - CGCM in five minutes --------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shortest end-to-end tour of the public API:
///
///   1. compile a MiniC program that launches a GPU kernel with plain
///      host pointers (no communication code anywhere);
///   2. run the CGCM pipeline, which inserts and then optimizes all
///      CPU-GPU communication automatically;
///   3. execute on the simulated machine and inspect the statistics.
///
/// Build and run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <cstdio>

using namespace cgcm;

int main() {
  // A program in MiniC, the project's C-like input language. The `saxpy`
  // kernel is launched with ordinary host pointers: without CGCM this
  // faults the moment the GPU dereferences CPU memory.
  const char *Source = R"(
    __kernel void saxpy(double *y, double *x, double a, long n) {
      long i = __tid();
      if (i < n)
        y[i] = y[i] + a * x[i];
    }
    int main() {
      long n = 1024;
      double *x = (double*)malloc(n * sizeof(double));
      double *y = (double*)malloc(n * sizeof(double));
      long i;
      for (i = 0; i < n; i = i + 1) {
        x[i] = i * 0.5;
        y[i] = 1.0;
      }
      int t;
      for (t = 0; t < 10; t++)
        launch saxpy<<<8, 128>>>(y, x, 0.1, n);
      double sum = 0.0;
      for (i = 0; i < n; i = i + 1)
        sum += y[i];
      print_f64(sum);
      return 0;
    }
  )";

  // 1. Frontend: MiniC -> IR.
  std::unique_ptr<Module> M = compileMiniC(Source, "quickstart");

  // 2. The CGCM pipeline. `Parallelize=false` because the kernel is
  //    manually written; the pass pipeline inserts map/unmap/release
  //    around the launch and then hoists them out of the time loop.
  PipelineOptions Opts;
  Opts.Parallelize = false;
  PipelineResult PR = runCGCMPipeline(*M, Opts);
  std::printf("pipeline: %u launches managed, %u maps inserted, "
              "%u loop hoists\n",
              PR.Mgmt.LaunchesManaged, PR.Mgmt.MapsInserted,
              PR.MapPromo.LoopHoists);

  // 3. Execute on the simulated CPU+GPU machine.
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.loadModule(*M);
  Mach.run();

  const ExecStats &S = Mach.getStats();
  std::printf("program output: %s", Mach.getOutput().c_str());
  std::printf("kernel launches: %llu\n",
              static_cast<unsigned long long>(S.KernelLaunches));
  std::printf("transfers: %llu to device (%llu bytes), %llu back "
              "(%llu bytes)\n",
              static_cast<unsigned long long>(S.TransfersHtoD),
              static_cast<unsigned long long>(S.BytesHtoD),
              static_cast<unsigned long long>(S.TransfersDtoH),
              static_cast<unsigned long long>(S.BytesDtoH));
  std::printf("modeled time: %.0f cycles (%.0f%% communication)\n",
              S.totalCycles(), 100.0 * S.CommCycles / S.totalCycles());

  // Thanks to map promotion, ten launches needed only one round trip.
  return S.TransfersHtoD <= 3 ? 0 : 1;
}
