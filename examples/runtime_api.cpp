//===- examples/runtime_api.cpp - The runtime library, used directly ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the CGCM runtime library (paper section 3, Algorithms 1-3)
/// directly from C++, without the compiler: tracking allocation units,
/// translating interior pointers, reference counting, the per-launch
/// epoch, and the doubly indirect mapArray. This is the layer a manual
/// parallelization would call — the paper's "CGCM eases manual GPU
/// parallelizations" use case.
///
/// Build and run:  ./build/examples/runtime_api
///
//===----------------------------------------------------------------------===//

#include "gpusim/GPUDevice.h"
#include "runtime/CGCMRuntime.h"

#include <cstdio>

using namespace cgcm;

int main() {
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host(HostAddressBase, "host");
  GPUDevice Device(TM, Stats);
  CGCMRuntime RT(Host, Device, TM, Stats);

  // -- Tracking: the runtime learns about allocation units from the heap
  //    wrappers, declareGlobal, and declareAlloca.
  uint64_t Buf = Host.allocate(1024);
  RT.notifyHeapAlloc(Buf, 1024);
  std::printf("tracked units: %zu\n", RT.getNumTrackedUnits());

  // Fill the buffer with something recognizable.
  for (unsigned I = 0; I != 128; ++I) {
    double V = I * 1.5;
    Host.write(Buf + I * 8, &V, 8);
  }

  // -- map: copies the unit to the GPU and translates the pointer. An
  //    *interior* pointer translates to the same offset in the device
  //    copy: this is the allocation-unit semantics that make pointer
  //    arithmetic safe.
  uint64_t Mid = Buf + 512;
  uint64_t DevMid = RT.map(Mid);
  std::printf("host %llu (interior) -> device %llu (device space: %s)\n",
              static_cast<unsigned long long>(Mid),
              static_cast<unsigned long long>(DevMid),
              isDeviceAddress(DevMid) ? "yes" : "no");

  // A second map of any pointer into the same unit reuses the resident
  // copy: reference count 2, no new transfer.
  uint64_t BytesBefore = Stats.BytesHtoD;
  uint64_t DevBase = RT.map(Buf);
  std::printf("second map copied %llu bytes (resident reuse)\n",
              static_cast<unsigned long long>(Stats.BytesHtoD - BytesBefore));

  // -- A "kernel" mutates device memory; the epoch then tells unmap the
  //    CPU copy is stale exactly once.
  double FortyTwo = 42.0;
  Device.getMemory().write(DevBase, &FortyTwo, 8);
  RT.onKernelLaunch();

  RT.unmap(Buf); // Copies back: epoch is stale.
  uint64_t DtoH1 = Stats.BytesDtoH;
  RT.unmap(Buf); // No copy: already current for this epoch.
  std::printf("unmap copied back once per epoch: %s\n",
              Stats.BytesDtoH == DtoH1 ? "yes" : "no");
  double Read;
  Host.read(Buf, &Read, 8);
  std::printf("CPU sees the kernel's write: %.1f\n", Read);

  // -- release: reference counting frees the device copy at zero.
  RT.release(Buf);
  std::printf("after one release, still resident: %s\n",
              RT.getNumMappedUnits() == 1 ? "yes" : "no");
  RT.release(Mid);
  std::printf("after both releases, resident units: %zu\n",
              RT.getNumMappedUnits());

  // -- mapArray: a doubly indirect pointer table. Each element is mapped
  //    and the device copy of the table holds *device* pointers.
  uint64_t Table = Host.allocate(3 * 8);
  RT.notifyHeapAlloc(Table, 3 * 8);
  uint64_t Elems[3];
  for (unsigned I = 0; I != 3; ++I) {
    Elems[I] = Host.allocate(64);
    RT.notifyHeapAlloc(Elems[I], 64);
    Host.writeUInt(Table + I * 8, Elems[I], 8);
  }
  uint64_t DevTable = RT.mapArray(Table);
  bool AllDevice = true;
  for (unsigned I = 0; I != 3; ++I)
    AllDevice &= isDeviceAddress(Device.getMemory().readUInt(
        DevTable + I * 8, 8));
  std::printf("mapArray translated all table entries to device pointers: "
              "%s\n",
              AllDevice ? "yes" : "no");
  RT.onKernelLaunch();
  RT.unmapArray(Table);
  RT.releaseArray(Table);
  std::printf("resident units after releaseArray: %zu\n",
              RT.getNumMappedUnits());

  std::printf("runtime calls made: %llu\n",
              static_cast<unsigned long long>(Stats.RuntimeCalls));
  return RT.getNumMappedUnits() == 0 && Read == 42.0 ? 0 : 1;
}
