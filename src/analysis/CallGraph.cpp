//===- analysis/CallGraph.cpp - Module call graph ---------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

using namespace cgcm;

CallGraph::CallGraph(Module &M) {
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    for (Instruction *I : F->instructions()) {
      auto *CI = dyn_cast<CallInst>(I);
      if (!CI || CI->getCallee()->isDeclaration())
        continue;
      CallSites[F.get()].push_back(CI);
      Callers[CI->getCallee()].push_back(CI);
    }
  }

  // Tarjan-lite: iterative DFS computing completion order; a function is
  // recursive if it can reach itself.
  std::map<Function *, std::set<Function *>> Reach;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    // Transitive closure by worklist (graphs here are tiny).
    std::set<Function *> &R = Reach[F.get()];
    std::vector<Function *> Work{F.get()};
    while (!Work.empty()) {
      Function *Cur = Work.back();
      Work.pop_back();
      auto It = CallSites.find(Cur);
      if (It == CallSites.end())
        continue;
      for (CallInst *CI : It->second)
        if (R.insert(CI->getCallee()).second)
          Work.push_back(CI->getCallee());
    }
    if (R.count(F.get()))
      Recursive.insert(F.get());
  }

  // Bottom-up order: repeatedly emit functions all of whose non-recursive
  // callees are emitted.
  std::set<Function *> Emitted;
  bool Progress = true;
  std::vector<Function *> Defined;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Defined.push_back(F.get());
  while (Progress) {
    Progress = false;
    for (Function *F : Defined) {
      if (Emitted.count(F))
        continue;
      bool Ready = true;
      auto It = CallSites.find(F);
      if (It != CallSites.end())
        for (CallInst *CI : It->second) {
          Function *Callee = CI->getCallee();
          if (Callee != F && !Emitted.count(Callee) &&
              !Recursive.count(Callee)) {
            Ready = false;
            break;
          }
        }
      if (Ready) {
        BottomUp.push_back(F);
        Emitted.insert(F);
        Progress = true;
      }
    }
  }
  // Mutually recursive leftovers in arbitrary order.
  for (Function *F : Defined)
    if (!Emitted.count(F))
      BottomUp.push_back(F);
}

const std::vector<CallInst *> &CallGraph::getCallSites(Function *Caller) const {
  auto It = CallSites.find(Caller);
  return It == CallSites.end() ? Empty : It->second;
}

const std::vector<CallInst *> &CallGraph::getCallers(Function *F) const {
  auto It = Callers.find(F);
  return It == Callers.end() ? Empty : It->second;
}
