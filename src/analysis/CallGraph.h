//===- analysis/CallGraph.h - Module call graph -----------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct call graph over a module. Map promotion and alloca promotion
/// climb this graph bottom-up; recursive functions (non-trivial SCCs) are
/// excluded from promotion, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_CALLGRAPH_H
#define CGCM_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <map>
#include <set>
#include <vector>

namespace cgcm {

class CallGraph {
public:
  explicit CallGraph(Module &M);

  /// Call sites in \p Caller's body that call defined functions.
  const std::vector<CallInst *> &getCallSites(Function *Caller) const;

  /// All call instructions whose callee is \p F.
  const std::vector<CallInst *> &getCallers(Function *F) const;

  /// True if \p F participates in a cycle (including self-recursion).
  bool isRecursive(Function *F) const { return Recursive.count(F) != 0; }

  /// Defined functions in bottom-up order (callees before callers).
  const std::vector<Function *> &getBottomUpOrder() const { return BottomUp; }

private:
  std::map<Function *, std::vector<CallInst *>> CallSites;
  std::map<Function *, std::vector<CallInst *>> Callers;
  std::set<Function *> Recursive;
  std::vector<Function *> BottomUp;
  std::vector<CallInst *> Empty;
};

} // namespace cgcm

#endif // CGCM_ANALYSIS_CALLGRAPH_H
