//===- analysis/Dominators.cpp - Dominator tree ----------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace cgcm;

DominatorTree::DominatorTree(Function &F) : F(F) {
  assert(!F.isDeclaration() && "dominators of a declaration");

  // Depth-first post order, then reverse.
  std::set<BasicBlock *> Visited;
  std::vector<BasicBlock *> PostOrder;
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  BasicBlock *Entry = F.getEntryBlock();
  Stack.push_back({Entry, 0});
  Visited.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      BasicBlock *S = Succs[NextSucc++];
      if (Visited.insert(S).second)
        Stack.push_back({S, 0});
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I != RPO.size(); ++I)
    RPONumber[RPO[I]] = I;

  // Cooper-Harvey-Kennedy iteration.
  IDom[Entry] = Entry;
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPONumber[A] > RPONumber[B])
        A = IDom[A];
      while (RPONumber[B] > RPONumber[A])
        B = IDom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : BB->predecessors()) {
        if (!RPONumber.count(P) || !IDom.count(P))
          continue;
        NewIDom = NewIDom ? Intersect(NewIDom, P) : P;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }

  // Dominance frontiers (Cytron et al.).
  for (BasicBlock *BB : RPO) {
    std::vector<BasicBlock *> Preds;
    for (BasicBlock *P : BB->predecessors())
      if (RPONumber.count(P))
        Preds.push_back(P);
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *P : Preds) {
      BasicBlock *Runner = P;
      while (Runner != IDom[BB]) {
        Frontier[Runner].insert(BB);
        Runner = IDom[Runner];
      }
    }
  }
}

BasicBlock *DominatorTree::getIDom(BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end() || It->second == BB)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(BasicBlock *A, BasicBlock *B) const {
  if (A == B)
    return true;
  auto ItB = RPONumber.find(B);
  auto ItA = RPONumber.find(A);
  if (ItA == RPONumber.end() || ItB == RPONumber.end())
    return false;
  // Walk up B's idom chain; depth is bounded by the block count.
  BasicBlock *Cur = B;
  for (;;) {
    auto It = IDom.find(Cur);
    if (It == IDom.end() || It->second == Cur)
      return false;
    Cur = It->second;
    if (Cur == A)
      return true;
  }
}

bool DominatorTree::dominates(Instruction *Def, Instruction *User) const {
  BasicBlock *DefBB = Def->getParent();
  BasicBlock *UseBB = User->getParent();
  if (DefBB != UseBB)
    return dominates(DefBB, UseBB);
  for (const auto &I : *DefBB) {
    if (I.get() == Def)
      return true;
    if (I.get() == User)
      return false;
  }
  CGCM_UNREACHABLE("instructions not found in their parent block");
}

const std::set<BasicBlock *> &
DominatorTree::getFrontier(BasicBlock *BB) const {
  auto It = Frontier.find(BB);
  return It == Frontier.end() ? EmptyFrontier : It->second;
}
