//===- analysis/Dominators.h - Dominator tree ------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree computed with the Cooper-Harvey-Kennedy iterative
/// algorithm, plus dominance frontiers for SSA construction (Mem2Reg).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_DOMINATORS_H
#define CGCM_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <map>
#include <set>
#include <vector>

namespace cgcm {

class DominatorTree {
public:
  explicit DominatorTree(Function &F);

  /// The immediate dominator of \p BB, or null for the entry block and
  /// unreachable blocks.
  BasicBlock *getIDom(BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BasicBlock *A, BasicBlock *B) const;

  /// True if instruction \p Def dominates the use site \p User.
  bool dominates(Instruction *Def, Instruction *User) const;

  /// Dominance frontier of \p BB.
  const std::set<BasicBlock *> &getFrontier(BasicBlock *BB) const;

  /// Blocks in reverse post order (entry first), reachable only.
  const std::vector<BasicBlock *> &getReversePostOrder() const { return RPO; }

  bool isReachable(BasicBlock *BB) const { return RPONumber.count(BB) != 0; }

private:
  Function &F;
  std::vector<BasicBlock *> RPO;
  std::map<BasicBlock *, unsigned> RPONumber;
  std::map<BasicBlock *, BasicBlock *> IDom;
  std::map<BasicBlock *, std::set<BasicBlock *>> Frontier;
  std::set<BasicBlock *> EmptyFrontier;
};

} // namespace cgcm

#endif // CGCM_ANALYSIS_DOMINATORS_H
