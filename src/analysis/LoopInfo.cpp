//===- analysis/LoopInfo.cpp - Natural loop detection ----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace cgcm;

BasicBlock *Loop::getPreheader() const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *P : Header->predecessors()) {
    if (contains(P))
      continue;
    if (Pre)
      return nullptr; // Multiple outside predecessors.
    Pre = P;
  }
  return Pre;
}

std::vector<BasicBlock *> Loop::getExitBlocks() const {
  std::vector<BasicBlock *> Exits;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *S : BB->successors())
      if (!contains(S) &&
          std::find(Exits.begin(), Exits.end(), S) == Exits.end())
        Exits.push_back(S);
  return Exits;
}

std::vector<BasicBlock *> Loop::getLatches() const {
  std::vector<BasicBlock *> Latches;
  for (BasicBlock *P : Header->predecessors())
    if (contains(P))
      Latches.push_back(P);
  return Latches;
}

LoopInfo::LoopInfo(Function &F, const DominatorTree &DT) {
  // Find back edges: Tail -> Header where Header dominates Tail. Merge
  // back edges sharing a header into one natural loop.
  std::map<BasicBlock *, std::set<BasicBlock *>> HeaderToBody;
  for (BasicBlock *BB : DT.getReversePostOrder()) {
    for (BasicBlock *Succ : BB->successors()) {
      if (!DT.dominates(Succ, BB))
        continue;
      // Back edge BB -> Succ: collect the natural loop body by walking
      // predecessors from the tail until the header.
      std::set<BasicBlock *> &Body = HeaderToBody[Succ];
      Body.insert(Succ);
      std::vector<BasicBlock *> Work;
      if (Body.insert(BB).second)
        Work.push_back(BB);
      while (!Work.empty()) {
        BasicBlock *Cur = Work.back();
        Work.pop_back();
        if (Cur == Succ)
          continue;
        for (BasicBlock *P : Cur->predecessors())
          if (DT.isReachable(P) && Body.insert(P).second)
            Work.push_back(P);
      }
    }
  }

  // Hand each loop its blocks in reverse post-order: iteration order over
  // a loop's blocks must not depend on their allocation addresses.
  std::map<BasicBlock *, unsigned> RPOIndex;
  unsigned N = 0;
  for (BasicBlock *BB : DT.getReversePostOrder())
    RPOIndex[BB] = N++;

  for (auto &[Header, Body] : HeaderToBody) {
    std::vector<BasicBlock *> Blocks(Body.begin(), Body.end());
    std::sort(Blocks.begin(), Blocks.end(),
              [&](BasicBlock *A, BasicBlock *B) {
                return RPOIndex[A] < RPOIndex[B];
              });
    Loops.push_back(std::make_unique<Loop>(Header, std::move(Blocks)));
  }

  // Establish nesting: the parent is the smallest strictly-containing loop.
  for (auto &L : Loops) {
    Loop *Best = nullptr;
    for (auto &Candidate : Loops) {
      if (Candidate.get() == L.get())
        continue;
      if (!Candidate->contains(L.get()) ||
          Candidate->getBlocks().size() == L->getBlocks().size())
        continue;
      if (!Best ||
          Candidate->getBlocks().size() < Best->getBlocks().size())
        Best = Candidate.get();
    }
    if (Best) {
      L->setParentLoop(Best);
      Best->addSubLoop(L.get());
    }
  }

  // Sort outermost-first (by depth, then by header RPO for determinism).
  std::sort(Loops.begin(), Loops.end(), [&](const auto &A, const auto &B) {
    if (A->getDepth() != B->getDepth())
      return A->getDepth() < B->getDepth();
    return RPOIndex[A->getHeader()] < RPOIndex[B->getHeader()];
  });
}

std::vector<Loop *> LoopInfo::getTopLevelLoops() const {
  std::vector<Loop *> Result;
  for (const auto &L : Loops)
    if (!L->getParentLoop())
      Result.push_back(L.get());
  return Result;
}

Loop *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  Loop *Best = nullptr;
  for (const auto &L : Loops)
    if (L->contains(BB))
      if (!Best || Best->getBlocks().size() > L->getBlocks().size())
        Best = L.get();
  return Best;
}
