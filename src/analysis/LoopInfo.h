//===- analysis/LoopInfo.h - Natural loop detection ------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifies natural loops from back edges in the dominator tree. Loops
/// are the regions the DOALL parallelizer targets and the regions map
/// promotion hoists runtime calls out of (paper Algorithm 4: "a region is
/// either a function or a loop body").
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_LOOPINFO_H
#define CGCM_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <memory>
#include <set>
#include <vector>

namespace cgcm {

class Loop {
public:
  /// \p Blocks must be in a deterministic order (LoopInfo uses reverse
  /// post-order) — transforms iterate it to collect region instructions,
  /// so pointer-ordered blocks would make output IR depend on allocation
  /// addresses.
  Loop(BasicBlock *Header, std::vector<BasicBlock *> Blocks)
      : Header(Header), Blocks(std::move(Blocks)),
        BlockSet(this->Blocks.begin(), this->Blocks.end()) {}

  BasicBlock *getHeader() const { return Header; }
  const std::vector<BasicBlock *> &getBlocks() const { return Blocks; }
  bool contains(const BasicBlock *BB) const {
    return BlockSet.count(const_cast<BasicBlock *>(BB)) != 0;
  }
  bool contains(const Instruction *I) const {
    return contains(I->getParent());
  }
  bool contains(const Loop *Other) const {
    for (BasicBlock *BB : Other->Blocks)
      if (!contains(BB))
        return false;
    return true;
  }

  Loop *getParentLoop() const { return Parent; }
  void setParentLoop(Loop *L) { Parent = L; }
  const std::vector<Loop *> &getSubLoops() const { return SubLoops; }
  void addSubLoop(Loop *L) { SubLoops.push_back(L); }

  /// The unique block outside the loop that branches to the header, or
  /// null if there is none (multiple outside predecessors).
  BasicBlock *getPreheader() const;

  /// Blocks outside the loop that are targets of exits from the loop.
  std::vector<BasicBlock *> getExitBlocks() const;

  /// Blocks inside the loop that branch back to the header.
  std::vector<BasicBlock *> getLatches() const;

  /// The number of enclosing loops (top level = 0).
  unsigned getDepth() const {
    unsigned D = 0;
    for (Loop *L = Parent; L; L = L->Parent)
      ++D;
    return D;
  }

private:
  BasicBlock *Header;
  std::vector<BasicBlock *> Blocks;
  std::set<BasicBlock *> BlockSet;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
};

class LoopInfo {
public:
  LoopInfo(Function &F, const DominatorTree &DT);

  /// All loops, outermost first within each nest.
  const std::vector<std::unique_ptr<Loop>> &getLoops() const { return Loops; }

  /// Top-level loops only.
  std::vector<Loop *> getTopLevelLoops() const;

  /// The innermost loop containing \p BB, or null.
  Loop *getLoopFor(const BasicBlock *BB) const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
};

} // namespace cgcm

#endif // CGCM_ANALYSIS_LOOPINFO_H
