//===- analysis/MemoryObjects.cpp - Object roots and simple aliasing --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/MemoryObjects.h"

#include <set>

using namespace cgcm;

namespace {

MemoryObject classifyRoot(const Value *V) {
  MemoryObject O;
  O.Root = V;
  if (isa<GlobalVariable>(V)) {
    O.K = MemoryObject::Kind::Global;
    return O;
  }
  if (isa<AllocaInst>(V)) {
    O.K = MemoryObject::Kind::Alloca;
    return O;
  }
  if (const auto *CI = dyn_cast<CallInst>(V)) {
    const std::string &N = CI->getCallee()->getName();
    if (N == "malloc" || N == "calloc" || N == "realloc") {
      O.K = MemoryObject::Kind::HeapSite;
      return O;
    }
  }
  O.K = MemoryObject::Kind::Unknown;
  return O;
}

MemoryObject unknownAt(const Value *V) {
  MemoryObject U;
  U.Root = V;
  U.K = MemoryObject::Kind::Unknown;
  return U;
}

/// Shared-visited walker: cycles (loop phis over geps) terminate because
/// every value is expanded at most once.
MemoryObject findImpl(const Value *V, std::set<const Value *> &Visited) {
  while (true) {
    if (!Visited.insert(V).second)
      return unknownAt(V); // Cycle with no dominating root found yet.
    if (const auto *G = dyn_cast<GEPInst>(V)) {
      V = G->getPointerOperand();
      continue;
    }
    if (const auto *C = dyn_cast<CastInst>(V)) {
      switch (C->getOp()) {
      case CastInst::Op::Bitcast:
      case CastInst::Op::IntToPtr:
      case CastInst::Op::PtrToInt:
        V = C->getValueOperand();
        continue;
      default:
        return classifyRoot(V);
      }
    }
    if (const auto *P = dyn_cast<PhiInst>(V)) {
      // A phi keeps an object if all non-cyclic incoming paths agree.
      MemoryObject Common;
      bool First = true;
      for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I) {
        const Value *In = P->getIncomingValue(I);
        if (Visited.count(In))
          continue; // Recurrence edge.
        MemoryObject O = findImpl(In, Visited);
        if (!O.isIdentified() && Visited.count(O.Root))
          continue; // Path that cycled back; ignore.
        if (First) {
          Common = O;
          First = false;
        } else if (!(Common == O)) {
          return unknownAt(P);
        }
      }
      return First ? unknownAt(P) : Common;
    }
    if (const auto *S = dyn_cast<SelectInst>(V)) {
      MemoryObject A = findImpl(S->getTrueValue(), Visited);
      MemoryObject B = findImpl(S->getFalseValue(), Visited);
      if (A == B)
        return A;
      return unknownAt(S);
    }
    if (const auto *B = dyn_cast<BinOpInst>(V)) {
      // Pointer arithmetic through integers: base the object on whichever
      // operand is rooted in an identified object (cast-heavy code). If
      // both or neither are, give up.
      MemoryObject A = findImpl(B->getLHS(), Visited);
      MemoryObject C = findImpl(B->getRHS(), Visited);
      if (A.isIdentified() && !C.isIdentified())
        return A;
      if (C.isIdentified() && !A.isIdentified())
        return C;
      return unknownAt(B);
    }
    return classifyRoot(V);
  }
}

} // namespace

MemoryObject cgcm::findMemoryObject(const Value *Addr) {
  std::set<const Value *> Visited;
  return findImpl(Addr, Visited);
}

bool cgcm::mayAlias(const MemoryObject &A, const MemoryObject &B) {
  if (!A.isIdentified() || !B.isIdentified())
    return true;
  return A == B;
}

std::vector<MemoryAccess> cgcm::collectMemoryAccesses(const Function &F) {
  std::vector<MemoryAccess> Result;
  for (const auto &BB : F) {
    for (const auto &I : *BB) {
      if (const auto *LI = dyn_cast<LoadInst>(I.get()))
        Result.push_back({LI, LI->getPointerOperand(), false});
      else if (const auto *SI = dyn_cast<StoreInst>(I.get()))
        Result.push_back({SI, SI->getPointerOperand(), true});
    }
  }
  return Result;
}
