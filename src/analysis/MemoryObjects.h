//===- analysis/MemoryObjects.h - Object roots and simple aliasing ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifies the *memory object* an address expression is rooted in by
/// walking through geps, casts, and phis/selects. Two identified objects
/// (distinct globals, distinct allocas, distinct allocation sites) do not
/// alias; anything rooted in an unknown value (argument, loaded pointer)
/// may alias everything. This is deliberately the weak static analysis the
/// paper assumes: CGCM's correctness never depends on it — only the DOALL
/// parallelizer and the promotion profitability checks use it.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_MEMORYOBJECTS_H
#define CGCM_ANALYSIS_MEMORYOBJECTS_H

#include "ir/Module.h"

#include <set>
#include <vector>

namespace cgcm {

/// The root of an address expression.
struct MemoryObject {
  enum class Kind {
    Global,   ///< A module global (named region).
    Alloca,   ///< A stack allocation.
    HeapSite, ///< A malloc/calloc/realloc call site.
    Unknown,  ///< Argument, loaded pointer, inttoptr, ...
  };

  Kind K = Kind::Unknown;
  const Value *Root = nullptr;

  bool isIdentified() const { return K != Kind::Unknown; }

  bool operator==(const MemoryObject &O) const {
    return K == O.K && Root == O.Root;
  }
  bool operator<(const MemoryObject &O) const {
    if (K != O.K)
      return K < O.K;
    return Root < O.Root;
  }
};

/// Finds the object an address is rooted in, walking gep/cast chains.
/// Phi/select with multiple distinct roots yields Unknown.
MemoryObject findMemoryObject(const Value *Addr);

/// May the objects alias? Identified distinct objects do not; Unknown
/// aliases everything.
bool mayAlias(const MemoryObject &A, const MemoryObject &B);

/// All loads/stores in \p F (convenience for mod/ref scans).
struct MemoryAccess {
  const Instruction *I;
  const Value *Addr;
  bool IsWrite;
};
std::vector<MemoryAccess> collectMemoryAccesses(const Function &F);

} // namespace cgcm

#endif // CGCM_ANALYSIS_MEMORYOBJECTS_H
