//===- analysis/TypeInference.cpp - Use-based pointer-degree inference ------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/TypeInference.h"

#include "support/ErrorHandling.h"

#include <vector>

using namespace cgcm;

namespace {

/// Worklist inference over the device-side code. Degrees only grow, and
/// are capped, so the fixpoint terminates.
class InferenceEngine {
public:
  explicit InferenceEngine(const std::set<const Function *> &DeviceFns)
      : DeviceFns(DeviceFns) {}

  void run() {
    // Seed: every address operand of a memory operation is a pointer.
    for (const Function *F : DeviceFns) {
      for (const auto &BB : *F) {
        for (const auto &I : *BB) {
          if (const auto *LI = dyn_cast<LoadInst>(I.get()))
            raise(LI->getPointerOperand(), 1);
          else if (const auto *SI = dyn_cast<StoreInst>(I.get()))
            raise(SI->getPointerOperand(), 1);
        }
      }
    }
    while (!Work.empty()) {
      const Value *V = Work.back();
      Work.pop_back();
      propagate(V, Degrees[V]);
    }
  }

  unsigned degreeOf(const Value *V) const {
    auto It = Degrees.find(V);
    return It == Degrees.end() ? 0 : It->second;
  }

private:
  /// Raises V's degree to at least D and queues propagation.
  void raise(const Value *V, unsigned D) {
    if (D > 3)
      D = 3;
    unsigned &Cur = Degrees[V];
    if (Cur >= D)
      return;
    Cur = D;
    Work.push_back(V);
  }

  /// Backward propagation: whatever flows *into* V carries the same
  /// degree; loading a degree-D pointer means the loaded-from address
  /// holds pointers, i.e. has degree D+1 (paper's double-pointer rule).
  void propagate(const Value *V, unsigned D) {
    if (const auto *G = dyn_cast<GEPInst>(V)) {
      raise(G->getPointerOperand(), D);
      return; // Indexes are not addresses.
    }
    if (const auto *C = dyn_cast<CastInst>(V)) {
      raise(C->getValueOperand(), D);
      return;
    }
    if (const auto *B = dyn_cast<BinOpInst>(V)) {
      // Field-insensitive: types flow through pointer arithmetic, and
      // either addend may be the pointer.
      if (B->getOp() == BinOpInst::Op::Add ||
          B->getOp() == BinOpInst::Op::Sub) {
        raise(B->getLHS(), D);
        raise(B->getRHS(), D);
      }
      return;
    }
    if (const auto *P = dyn_cast<PhiInst>(V)) {
      for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I)
        raise(P->getIncomingValue(I), D);
      return;
    }
    if (const auto *S = dyn_cast<SelectInst>(V)) {
      raise(S->getTrueValue(), D);
      raise(S->getFalseValue(), D);
      return;
    }
    if (const auto *L = dyn_cast<LoadInst>(V)) {
      raise(L->getPointerOperand(), D + 1);
      return;
    }
    if (const auto *CI = dyn_cast<CallInst>(V)) {
      // The result of a device call being a pointer makes the callee's
      // returned values pointers.
      const Function *Callee = CI->getCallee();
      if (DeviceFns.count(Callee))
        for (const auto &BB : *Callee)
          for (const auto &I : *BB)
            if (const auto *R = dyn_cast<RetInst>(I.get()))
              if (R->hasReturnValue())
                raise(R->getReturnValue(), D);
      return;
    }
    // Arguments, globals, constants: sinks of the backward flow. Calls
    // passing arguments into device functions flow forward below.
    if (const auto *A = dyn_cast<Argument>(V)) {
      // Degree flows from a callee's formal back to actuals at device
      // call sites.
      const Function *F = A->getParent();
      for (const Function *Caller : DeviceFns)
        for (const auto &BB : *Caller)
          for (const auto &I : *BB)
            if (const auto *CI = dyn_cast<CallInst>(I.get()))
              if (CI->getCallee() == F)
                raise(CI->getArg(A->getArgNo()), D);
    }
  }

  const std::set<const Function *> &DeviceFns;
  std::map<const Value *, unsigned> Degrees;
  std::vector<const Value *> Work;
};

PointerDegree toDegree(unsigned D) {
  switch (D) {
  case 0:
    return PointerDegree::Scalar;
  case 1:
    return PointerDegree::Pointer;
  case 2:
    return PointerDegree::DoublePointer;
  default:
    return PointerDegree::Deeper;
  }
}

} // namespace

KernelLiveIns cgcm::analyzeKernelLiveIns(const Function &Kernel) {
  KernelLiveIns Result;

  // Device-reachable functions (kernels may call device helpers).
  std::vector<const Function *> Work{&Kernel};
  Result.DeviceFunctions.insert(&Kernel);
  Result.DeviceOrder.push_back(&Kernel);
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (const auto *CI = dyn_cast<CallInst>(I.get()))
          if (!CI->getCallee()->isDeclaration() &&
              Result.DeviceFunctions.insert(CI->getCallee()).second) {
            Result.DeviceOrder.push_back(CI->getCallee());
            Work.push_back(CI->getCallee());
          }
  }

  InferenceEngine Engine(Result.DeviceFunctions);
  Engine.run();

  for (unsigned I = 0, E = Kernel.getNumArgs(); I != E; ++I)
    Result.ArgDegrees.push_back(toDegree(Engine.degreeOf(Kernel.getArg(I))));

  // Globals used anywhere on the device are live-ins; a global that is
  // merely *used* is at least a pointer (its storage must reach the GPU).
  // Walk functions in discovery order so GlobalOrder is program-order
  // deterministic, not allocation-address dependent.
  for (const Function *F : Result.DeviceOrder) {
    for (const auto &BB : *F) {
      for (const auto &I : *BB) {
        for (const Value *Op : I->operands()) {
          const auto *GV = dyn_cast<GlobalVariable>(Op);
          if (!GV)
            continue;
          unsigned D = std::max(1u, Engine.degreeOf(GV));
          PointerDegree PD = toDegree(D);
          auto It = Result.GlobalDegrees.find(GV);
          if (It == Result.GlobalDegrees.end())
            Result.GlobalOrder.push_back(GV);
          if (It == Result.GlobalDegrees.end() || It->second < PD)
            Result.GlobalDegrees[GV] = PD;
        }
      }
    }
  }
  return Result;
}
