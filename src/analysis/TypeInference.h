//===- analysis/TypeInference.h - Use-based pointer-degree inference ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's type inference (section 4): because the C/C++ type systems
/// are unreliable, the compiler ignores declared types and infers, from
/// *use inside the GPU function only*, whether each live-in value is a
/// scalar, a pointer, or a double pointer:
///
///  * a value that flows to the address operand of a load or store —
///    potentially through additions, casts, sign extensions, geps — is a
///    pointer;
///  * if a value loaded through a pointer itself flows to a memory
///    operation's address, the original pointer is a double pointer.
///
/// The inference is field-insensitive (types flow through pointer
/// arithmetic) and caps at two degrees of indirection, CGCM's stated
/// restriction.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_TYPEINFERENCE_H
#define CGCM_ANALYSIS_TYPEINFERENCE_H

#include "ir/Module.h"

#include <map>
#include <set>
#include <vector>

namespace cgcm {

/// Inferred indirection degree of a live-in value.
enum class PointerDegree {
  Scalar = 0,
  Pointer = 1,
  DoublePointer = 2,
  /// Three or more levels — outside CGCM's applicability (the management
  /// pass reports an error if a live-in infers to this).
  Deeper = 3,
};

/// Live-in analysis + type inference for one kernel. Live-ins are the
/// kernel's formal arguments plus every global variable used by the
/// kernel (transitively through device-side calls).
struct KernelLiveIns {
  std::vector<PointerDegree> ArgDegrees;      ///< Indexed by argument number.
  std::map<const GlobalVariable *, PointerDegree> GlobalDegrees;
  /// GlobalDegrees' keys in discovery order (program order over the
  /// device-reachable code). Iterate this — not the pointer-keyed map —
  /// when the iteration order reaches the output (inserted calls,
  /// diagnostics), so results do not depend on allocation addresses.
  std::vector<const GlobalVariable *> GlobalOrder;
  /// Functions reachable from the kernel on the device.
  std::set<const Function *> DeviceFunctions;
  /// DeviceFunctions in discovery order (kernel first).
  std::vector<const Function *> DeviceOrder;
};

/// Computes live-ins and their inferred degrees for \p Kernel.
KernelLiveIns analyzeKernelLiveIns(const Function &Kernel);

} // namespace cgcm

#endif // CGCM_ANALYSIS_TYPEINFERENCE_H
