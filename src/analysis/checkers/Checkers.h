//===- analysis/checkers/Checkers.h - Static CGCM checkers -----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static checkers for the CGCM soundness properties that were previously
/// enforced only dynamically by the interpreter and the GPU executor
/// (docs/StaticAnalysis.md):
///
///  * checkCommunicationSoundness — forward dataflow over post-pipeline
///    host IR proving every kernel-launch live-in pointer is mapped on
///    every path to the launch and released on every path to return, and
///    flagging double releases and unmaps of unmapped pointers.
///  * checkCGCMRestrictions — the paper's applicability restrictions
///    (section 2.3) as compile-time diagnostics: live-ins inferring to
///    three or more levels of indirection, and pointer stores reachable
///    inside GPU code.
///  * checkKernelRaces — re-derives cross-thread independence for a GPU
///    kernel. Strict mode mirrors the DOALL parallelizer's dependence
///    test against the outlined kernel (defense in depth for the
///    pipeline); Conservative mode reports only provable races in
///    hand-written kernels.
///
/// Checkers never mutate IR and never abort: findings accumulate in a
/// DiagnosticEngine for the driver to render.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_CHECKERS_CHECKERS_H
#define CGCM_ANALYSIS_CHECKERS_CHECKERS_H

#include "ir/Module.h"
#include "support/Diagnostics.h"

namespace cgcm {

/// Diagnostic IDs emitted by the checkers (stable; tests match on them).
namespace diag {
inline constexpr const char *MissingMap = "cgcm-missing-map";
inline constexpr const char *MissingRelease = "cgcm-missing-release";
inline constexpr const char *DoubleRelease = "cgcm-double-release";
inline constexpr const char *UseAfterRelease = "cgcm-use-after-release";
inline constexpr const char *UnmapUnmapped = "cgcm-unmap-unmapped";
inline constexpr const char *PointerDegree = "cgcm-pointer-degree";
inline constexpr const char *PointerStore = "cgcm-pointer-store";
inline constexpr const char *DoallRace = "cgcm-doall-race";
inline constexpr const char *DoallUnproven = "cgcm-doall-unproven";
} // namespace diag

/// Verifies the map/release protocol in every defined host function of
/// \p M (which must be post-management IR). Reports MissingMap,
/// MissingRelease, DoubleRelease, UseAfterRelease, and UnmapUnmapped.
void checkCommunicationSoundness(const Module &M, DiagnosticEngine &DE);

/// Diagnoses CGCM applicability restrictions in the kernels of \p M
/// using use-based type inference. Reports PointerDegree and
/// PointerStore. Valid on pre- or post-management IR.
void checkCGCMRestrictions(const Module &M, DiagnosticEngine &DE);

enum class RaceCheckMode {
  /// Re-prove full cross-thread independence (the DOALL dependence test
  /// transposed onto the grid-stride kernel). Anything unprovable is a
  /// finding — apply only to kernels the parallelizer itself produced.
  Strict,
  /// Report only provable races; hand-written kernels are allowed to use
  /// idioms the affine analysis cannot model.
  Conservative,
};

/// Checks \p Kernel for cross-thread data races. \p M is consulted for
/// the kernel's launch sites (a kernel only ever launched single-threaded
/// cannot race). Reports DoallRace and, in Strict mode, DoallUnproven.
void checkKernelRaces(const Module &M, const Function &Kernel,
                      RaceCheckMode Mode, DiagnosticEngine &DE);

} // namespace cgcm

#endif // CGCM_ANALYSIS_CHECKERS_CHECKERS_H
