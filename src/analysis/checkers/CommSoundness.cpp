//===- analysis/checkers/CommSoundness.cpp - Map/release protocol check -----===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward dataflow proof that host code follows the CGCM communication
/// protocol. For every *communicated pointer* — any pointer that reaches a
/// cgcm_map/unmap/release call or is a pointer live-in (global) of a
/// launched kernel — the checker tracks an interval [Lo, Hi] of how many
/// outstanding map references the pointer can have at each program point:
///
///   map      : [Lo+1, Hi+1]
///   release  : requires Hi >= 1 (else DoubleRelease), then [Lo-1, Hi-1]
///   unmap    : requires Hi >= 1 (else UnmapUnmapped); no count change
///   launch   : every pointer live-in must have Lo >= 1 (MissingMap if the
///              pointer was never mapped on some path, UseAfterRelease if
///              its mapping came from a map call that a release already
///              retired)
///   ret      : every tracked pointer must be [0, 0] (else MissingRelease)
///
/// Intervals join by convex hull at control-flow merges and are clamped
/// to [0, Cap] so loops that accumulate references converge. The analysis
/// is intraprocedural; that is sound for pipeline output because every
/// pass keeps map/release contributions balanced within each function
/// (map promotion deletes only unmaps; promoting a mapping to callers
/// adds an *extra* balanced pair there, it never moves the callee's own).
///
//===----------------------------------------------------------------------===//

#include "analysis/TypeInference.h"
#include "analysis/checkers/Checkers.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

using namespace cgcm;

namespace {

/// Upper clamp for reference-count intervals. Anything above this is
/// "many"; all protocol rules only distinguish 0 from >= 1.
constexpr int64_t Cap = 16;

bool isMapCall(const CallInst *CI) {
  const std::string &N = CI->getCallee()->getName();
  return N == "cgcm_map" || N == "cgcm_map_array";
}

bool isUnmapCall(const CallInst *CI) {
  const std::string &N = CI->getCallee()->getName();
  return N == "cgcm_unmap" || N == "cgcm_unmap_array";
}

bool isReleaseCall(const CallInst *CI) {
  const std::string &N = CI->getCallee()->getName();
  return N == "cgcm_release" || N == "cgcm_release_array";
}

/// Looks through the bitcasts the management pass wraps runtime-call
/// operands in, yielding the host pointer that names the mapping.
const Value *stripCasts(const Value *V) {
  while (const auto *C = dyn_cast<CastInst>(V))
    V = C->getValueOperand();
  return V;
}

struct Interval {
  int64_t Lo = 0;
  int64_t Hi = 0;

  bool operator==(const Interval &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
};

using State = std::map<const Value *, Interval>;

/// Convex hull; returns true if \p Into changed.
bool joinInto(State &Into, const State &From) {
  bool Changed = false;
  for (const auto &[K, V] : From) {
    auto It = Into.find(K);
    if (It == Into.end()) {
      // Absent means [0, 0]; hull with V.
      Interval H{std::min<int64_t>(0, V.Lo), std::max<int64_t>(0, V.Hi)};
      if (!(H == Interval{})) {
        Into[K] = H;
        Changed = true;
      }
      continue;
    }
    Interval H{std::min(It->second.Lo, V.Lo), std::max(It->second.Hi, V.Hi)};
    if (!(H == It->second)) {
      It->second = H;
      Changed = true;
    }
  }
  // Keys present in Into but absent in From hull with [0, 0].
  for (auto &[K, V] : Into) {
    if (From.count(K))
      continue;
    Interval H{std::min<int64_t>(V.Lo, 0), std::max<int64_t>(V.Hi, 0)};
    if (!(H == V)) {
      V = H;
      Changed = true;
    }
  }
  return Changed;
}

class SoundnessChecker {
public:
  SoundnessChecker(const Module &M, DiagnosticEngine &DE) : M(M), DE(DE) {}

  void run() {
    for (const auto &F : M.functions())
      if (!F->isDeclaration() && !F->isKernel())
        checkFunction(*F);
  }

private:
  const KernelLiveIns &liveIns(const Function *K) {
    auto It = LiveInCache.find(K);
    if (It == LiveInCache.end())
      It = LiveInCache.emplace(K, analyzeKernelLiveIns(*K)).first;
    return It->second;
  }

  void diagnose(const char *ID, const Instruction *At, const std::string &Msg,
                const Function &F) {
    if (!Reported.insert({At, ID}).second)
      return;
    DE.report(ID, DiagSeverity::Error, At->getLoc(), Msg, F.getName());
  }

  static std::string describe(const Value *P) {
    if (P->getName().empty())
      return "<pointer>";
    // SSA temporaries print with their sigil so the name matches the
    // --dump-ir output the user would cross-reference.
    if (isa<Instruction>(P) || isa<Argument>(P))
      return "'%" + P->getName() + "'";
    if (isa<GlobalVariable>(P))
      return "'@" + P->getName() + "'";
    return "'" + P->getName() + "'";
  }

  /// Blocks reachable from the entry, in reverse post-order. The frontend
  /// leaves trivially unreachable "dead" blocks behind statements after a
  /// return; the protocol only applies to code that can execute.
  std::vector<const BasicBlock *> reachableRPO(const Function &F) {
    std::vector<const BasicBlock *> PostOrder;
    std::set<const BasicBlock *> Visited;
    // Iterative DFS with an explicit successor index.
    std::vector<std::pair<const BasicBlock *, unsigned>> Stack;
    Visited.insert(F.getEntryBlock());
    Stack.push_back({F.getEntryBlock(), 0});
    while (!Stack.empty()) {
      auto &[BB, Idx] = Stack.back();
      std::vector<BasicBlock *> Succs = BB->successors();
      if (Idx == Succs.size()) {
        PostOrder.push_back(BB);
        Stack.pop_back();
        continue;
      }
      const BasicBlock *S = Succs[Idx++];
      if (Visited.insert(S).second)
        Stack.push_back({S, 0});
    }
    std::reverse(PostOrder.begin(), PostOrder.end());
    return PostOrder;
  }

  void checkFunction(const Function &F) {
    std::vector<const BasicBlock *> Order = reachableRPO(F);
    std::set<const BasicBlock *> Reachable(Order.begin(), Order.end());

    // A function with no communication traffic needs no analysis.
    bool HasTraffic = false;
    for (const BasicBlock *BB : Order)
      for (const auto &I : *BB) {
        if (isa<KernelLaunchInst>(I.get()))
          HasTraffic = true;
        else if (const auto *CI = dyn_cast<CallInst>(I.get()))
          if (isMapCall(CI) || isUnmapCall(CI) || isReleaseCall(CI))
            HasTraffic = true;
      }
    if (!HasTraffic)
      return;

    std::map<const BasicBlock *, State> In;
    // Blocks whose In state has been computed at least once. An
    // uninitialized In is lattice bottom: the first incoming state is
    // copied, not hulled with [0, 0].
    std::set<const BasicBlock *> HasIn{F.getEntryBlock()};
    In[F.getEntryBlock()]; // Entry starts with everything unmapped.

    bool Changed = true;
    bool Report = false; // Diagnostics only once the fixpoint is reached.
    while (Changed || Report) {
      Changed = false;
      for (const BasicBlock *BB : Order) {
        if (!HasIn.count(BB))
          continue;
        State S = In[BB];
        transferBlock(F, BB, S, Report);
        if (Report)
          continue;
        for (BasicBlock *Succ : BB->successors()) {
          if (!Reachable.count(Succ))
            continue;
          if (!HasIn.count(Succ)) {
            In[Succ] = S;
            HasIn.insert(Succ);
            Changed = true;
          } else if (joinInto(In[Succ], S)) {
            Changed = true;
          }
        }
      }
      if (Report)
        break;
      if (!Changed)
        Report = true; // One final pass that emits diagnostics.
    }
  }

  void transferBlock(const Function &F, const BasicBlock *BB, State &S,
                     bool Report) {
    for (const auto &IP : *BB) {
      const Instruction *I = IP.get();
      if (const auto *CI = dyn_cast<CallInst>(I)) {
        if (isMapCall(CI)) {
          Interval &V = S[stripCasts(CI->getArg(0))];
          V.Lo = std::min(V.Lo + 1, Cap);
          V.Hi = std::min(V.Hi + 1, Cap);
        } else if (isUnmapCall(CI)) {
          const Value *P = stripCasts(CI->getArg(0));
          if (Report && S[P].Hi < 1)
            diagnose(diag::UnmapUnmapped, I,
                     "unmap of " + describe(P) +
                         " which is not mapped on any path",
                     F);
        } else if (isReleaseCall(CI)) {
          const Value *P = stripCasts(CI->getArg(0));
          Interval &V = S[P];
          if (Report && V.Hi < 1)
            diagnose(diag::DoubleRelease, I,
                     "release of " + describe(P) +
                         " which has no outstanding mapping (double "
                         "release)",
                     F);
          V.Lo = std::max<int64_t>(V.Lo - 1, 0);
          V.Hi = std::max<int64_t>(V.Hi - 1, 0);
        }
      } else if (const auto *KL = dyn_cast<KernelLaunchInst>(I)) {
        if (Report)
          checkLaunch(F, KL, S);
      } else if (isa<RetInst>(I) && Report) {
        for (const auto &[P, V] : S) {
          if (V.Hi < 1)
            continue;
          diagnose(diag::MissingRelease, I,
                   "function returns while " + describe(P) +
                       (V.Lo >= 1 ? " still has an outstanding mapping"
                                  : " may still have an outstanding "
                                    "mapping on some path"),
                   F);
        }
      }
    }
  }

  /// Every pointer live-in of the launched kernel must be mapped here.
  void checkLaunch(const Function &F, const KernelLaunchInst *KL, State &S) {
    const Function *K = KL->getKernel();
    const KernelLiveIns &L = liveIns(K);
    for (unsigned A = 0, E = KL->getNumArgs(); A != E; ++A) {
      if (A >= L.ArgDegrees.size() ||
          L.ArgDegrees[A] == PointerDegree::Scalar)
        continue;
      const Value *U = stripCasts(KL->getArg(A));
      if (const auto *MC = dyn_cast<CallInst>(U); MC && isMapCall(MC)) {
        // The argument is a device pointer produced by a map call; the
        // mapping must still be live (not retired by a release).
        const Value *P = stripCasts(MC->getArg(0));
        if (S[P].Lo < 1)
          diagnose(diag::UseAfterRelease, KL,
                   "launch of '" + K->getName() + "' uses " + describe(P) +
                       " whose mapping may already be released",
                   F);
        continue;
      }
      // Raw host pointer passed straight to the kernel.
      if (S[U].Lo < 1)
        diagnose(diag::MissingMap, KL,
                 "launch of '" + K->getName() + "' passes pointer " +
                     describe(U) + " with no mapping on some path",
                 F);
    }
    for (const GlobalVariable *GV : L.GlobalOrder) {
      PointerDegree Deg = L.GlobalDegrees.at(GV);
      if (Deg == PointerDegree::Scalar)
        continue;
      if (S[GV].Lo < 1)
        diagnose(diag::MissingMap, KL,
                 "launch of '" + K->getName() + "' uses global '" +
                     GV->getName() + "' with no mapping on some path",
                 F);
    }
  }

  const Module &M;
  DiagnosticEngine &DE;
  std::map<const Function *, KernelLiveIns> LiveInCache;
  std::set<std::pair<const Instruction *, const char *>> Reported;
};

} // namespace

void cgcm::checkCommunicationSoundness(const Module &M,
                                       DiagnosticEngine &DE) {
  SoundnessChecker(M, DE).run();
}
