//===- analysis/checkers/DOALLRace.cpp - Cross-thread race re-derivation ---===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independently re-derives cross-thread independence for GPU kernels.
/// The DOALL parallelizer proves loop iterations independent *before*
/// outlining; this checker proves the same property *after*, directly on
/// the grid-stride kernel, so a bug anywhere in the outline/management
/// pipeline surfaces as a diagnostic instead of silent data corruption.
///
/// Addresses are classified as
///
///     Coeff * D + NtidCoeff * ntid + Const (+ uniform symbols)
///
/// where D is a per-thread-distinct index: the __tid builtin itself, or a
/// grid-stride induction phi (seeded with `init + tid`, stepped by exact
/// multiples of ntid — every thread then owns a distinct residue class
/// modulo the thread count, so distinct threads never share a D value).
/// Two accesses with the same D, equal coefficients, and constant offsets
/// within one stride cannot touch the same location from different
/// threads — the transposition of the parallelizer's `equal IV
/// coefficient, |delta| < |coeff|` rule. Symbols (kernel arguments,
/// globals) are uniform across threads; inner-loop induction phis are
/// symbols too but *per-thread* ones, which blocks the one judgement that
/// would otherwise be unsound (declaring a store "the same address for
/// every thread" when its address involves a per-thread symbol).
///
//===----------------------------------------------------------------------===//

#include "analysis/MemoryObjects.h"
#include "analysis/checkers/Checkers.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <vector>

using namespace cgcm;

namespace {

bool isPureMath(const Function *F) {
  const std::string &N = F->getName();
  return N == "sqrt" || N == "exp" || N == "log" || N == "sin" ||
         N == "cos" || N == "fabs" || N == "pow";
}

/// Restrict-style object identification: like findMemoryObject but, as in
/// the parallelizer, distinct pointer arguments are distinct objects.
struct KernelObject {
  const Value *Root = nullptr;
  bool Identified = false;
  bool IsAlloca = false;
};

KernelObject classifyObject(const Value *Addr) {
  MemoryObject O = findMemoryObject(Addr);
  KernelObject R;
  R.Root = O.Root;
  R.Identified = O.isIdentified() || isa<Argument>(O.Root);
  R.IsAlloca = O.K == MemoryObject::Kind::Alloca;
  return R;
}

/// An address viewed against the thread index (see file comment).
struct Form {
  const Value *Base = nullptr; ///< Distinct index: __tid Function or a phi.
  int64_t Coeff = 0;           ///< Coefficient of Base.
  int64_t NtidCoeff = 0;       ///< Coefficient of the __ntid builtin.
  int64_t Const = 0;
  bool HasSym = false;    ///< Absorbed a uniform symbol term.
  bool HasPhiSym = false; ///< Absorbed a per-thread symbol (inner phi).
};

class RaceChecker {
public:
  RaceChecker(const Module &M, const Function &K, RaceCheckMode Mode,
              DiagnosticEngine &DE)
      : M(M), K(K), Mode(Mode), DE(DE) {}

  void run() {
    if (K.isDeclaration() || K.isGlueKernel() || !mayRunMultiThreaded())
      return;
    HasThreadDependentBranch = scanBranches();
    checkBody();
  }

private:
  //===--------------------------------------------------------------------===//
  // Thread-affine classification
  //===--------------------------------------------------------------------===//

  const Function *calleeAsBuiltin(const Value *V, const char *Name) const {
    const auto *CI = dyn_cast<CallInst>(V);
    if (CI && CI->getCallee()->getName() == Name)
      return CI->getCallee();
    return nullptr;
  }

  /// Adds two forms; fails when both carry different distinct bases.
  static std::optional<Form> add(const Form &A, const Form &B, int Sign) {
    Form R = A;
    if (B.Base) {
      if (R.Base && R.Base != B.Base)
        return std::nullopt;
      R.Base = B.Base;
    }
    R.Coeff += Sign * B.Coeff;
    R.NtidCoeff += Sign * B.NtidCoeff;
    R.Const += Sign * B.Const;
    R.HasSym |= B.HasSym;
    R.HasPhiSym |= B.HasPhiSym;
    return R;
  }

  static Form scaled(const Form &A, int64_t F) {
    Form R = A;
    R.Coeff *= F;
    R.NtidCoeff *= F;
    R.Const *= F;
    return R;
  }

  static bool isPureSymbol(const Form &F) {
    return !F.Base && F.Coeff == 0 && F.NtidCoeff == 0 && F.Const == 0;
  }

  std::optional<Form> affine(const Value *V,
                             std::set<const Value *> &Visiting) {
    if (const Function *Tid = calleeAsBuiltin(V, "__tid"))
      return Form{Tid, 1, 0, 0, false, false};
    if (calleeAsBuiltin(V, "__ntid"))
      return Form{nullptr, 0, 1, 0, false, false};
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return Form{nullptr, 0, 0, CI->getValue(), false, false};
    if (isa<GlobalVariable>(V) || isa<Argument>(V))
      return Form{nullptr, 0, 0, 0, true, false};
    const auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return std::nullopt;
    auto AIt = Assumed.find(I);
    if (AIt != Assumed.end()) {
      UsedAssumption.insert(I);
      return AIt->second;
    }
    if (!Visiting.insert(V).second)
      return std::nullopt; // Unclassified cycle.

    std::optional<Form> R;
    switch (I->getKind()) {
    case Value::ValueKind::GEP: {
      const auto *G = cast<GEPInst>(I);
      auto P = affine(G->getPointerOperand(), Visiting);
      auto X = affine(G->getIndexOperand(), Visiting);
      if (P && X) {
        int64_t Step =
            static_cast<int64_t>(G->getSteppedType()->getSizeInBytes());
        R = add(*P, scaled(*X, Step), 1);
      }
      break;
    }
    case Value::ValueKind::Cast:
      R = affine(cast<CastInst>(I)->getValueOperand(), Visiting);
      break;
    case Value::ValueKind::BinOp: {
      const auto *B = cast<BinOpInst>(I);
      auto X = affine(B->getLHS(), Visiting);
      auto Y = affine(B->getRHS(), Visiting);
      if (!X || !Y)
        break;
      switch (B->getOp()) {
      case BinOpInst::Op::Add:
        R = add(*X, *Y, 1);
        break;
      case BinOpInst::Op::Sub:
        R = add(*X, *Y, -1);
        break;
      case BinOpInst::Op::Mul: {
        const auto *KL = dyn_cast<ConstantInt>(B->getLHS());
        const auto *KR = dyn_cast<ConstantInt>(B->getRHS());
        if (KR)
          R = scaled(*X, KR->getValue());
        else if (KL)
          R = scaled(*Y, KL->getValue());
        else if (isPureSymbol(*X) && isPureSymbol(*Y))
          R = Form{nullptr, 0, 0, 0, X->HasSym || Y->HasSym,
                   X->HasPhiSym || Y->HasPhiSym};
        break;
      }
      default:
        if (isPureSymbol(*X) && isPureSymbol(*Y))
          R = Form{nullptr, 0, 0, 0, X->HasSym || Y->HasSym,
                   X->HasPhiSym || Y->HasPhiSym};
        break;
      }
      break;
    }
    case Value::ValueKind::Phi:
      R = classifyPhi(cast<PhiInst>(I), Visiting);
      break;
    case Value::ValueKind::Cmp: {
      // Comparisons are never addresses, but they guard stores: a
      // comparison of two thread-uniform values is itself uniform.
      const auto *C = cast<CmpInst>(I);
      auto X = affine(C->getLHS(), Visiting);
      auto Y = affine(C->getRHS(), Visiting);
      if (X && Y && !X->Base && !Y->Base && X->NtidCoeff == 0 &&
          Y->NtidCoeff == 0)
        R = Form{nullptr, 0, 0, 0, true, X->HasPhiSym || Y->HasPhiSym};
      break;
    }
    case Value::ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      auto X = affine(S->getTrueValue(), Visiting);
      auto Y = affine(S->getFalseValue(), Visiting);
      auto Z = affine(S->getCondition(), Visiting);
      if (X && Y && Z && !X->Base && !Y->Base && !Z->Base &&
          X->NtidCoeff == 0 && Y->NtidCoeff == 0 && Z->NtidCoeff == 0)
        R = Form{nullptr, 0, 0, 0, true,
                 X->HasPhiSym || Y->HasPhiSym || Z->HasPhiSym};
      break;
    }
    default:
      break; // Loads, cmps, calls: not classifiable.
    }
    Visiting.erase(V);
    return R;
  }

  /// A phi is either a grid-stride thread index (distinct per thread) or
  /// a per-thread symbol (an inner induction variable). Tried in that
  /// order, optimistically assuming the phi's own form so recurrences
  /// resolve, then verifying every incoming against the assumption.
  std::optional<Form> classifyPhi(const PhiInst *P,
                                  std::set<const Value *> &Visiting) {
    // Attempt 1: thread-distinct index. Each recurrence step must add an
    // exact multiple of ntid (nothing else — no constants, no symbols),
    // and each external seed must be tid plus uniform terms, so every
    // thread keeps a distinct residue modulo the thread count.
    {
      Assumed[P] = Form{P, 1, 0, 0, false, false};
      bool OK = true, SawExternal = false;
      std::optional<int64_t> SeedConst;
      for (unsigned I = 0, E = P->getNumIncoming(); I != E && OK; ++I) {
        UsedAssumption.erase(P);
        auto F = affine(P->getIncomingValue(I), Visiting);
        bool Recurrent = UsedAssumption.count(P) != 0;
        if (!F) {
          OK = false;
        } else if (Recurrent) {
          OK = F->Base == P && F->Coeff == 1 && F->Const == 0 && !F->HasSym;
        } else {
          // The seed may carry any uniform offset (`for (i = 1; ...)`
          // outlines to `i0 = 1 + tid`), as long as every seed carries
          // the *same* one; uniform terms shift all threads' residues
          // identically and preserve distinctness.
          SawExternal = true;
          OK = F->Base && F->Base != P && F->Coeff == 1 &&
               F->NtidCoeff == 0 && !F->HasPhiSym &&
               (!SeedConst || *SeedConst == F->Const);
          SeedConst = F->Const;
        }
      }
      Assumed.erase(P);
      UsedAssumption.erase(P);
      if (OK && SawExternal)
        return Form{P, 1, 0, 0, false, false};
    }
    // Attempt 2: per-thread symbol (IV-free on every path).
    {
      Assumed[P] = Form{nullptr, 0, 0, 0, true, true};
      bool OK = true;
      for (unsigned I = 0, E = P->getNumIncoming(); I != E && OK; ++I) {
        auto F = affine(P->getIncomingValue(I), Visiting);
        OK = F && !F->Base && F->NtidCoeff == 0;
      }
      Assumed.erase(P);
      UsedAssumption.erase(P);
      if (OK)
        return Form{nullptr, 0, 0, 0, true, true};
    }
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // Launch-shape and guard queries
  //===--------------------------------------------------------------------===//

  /// False only when every launch of the kernel is provably one thread
  /// (constant grid * block == 1) — such kernels cannot race.
  bool mayRunMultiThreaded() const {
    bool SawLaunch = false;
    for (const auto &F : M.functions())
      for (const auto &BB : *F)
        for (const auto &I : *BB) {
          const auto *KL = dyn_cast<KernelLaunchInst>(I.get());
          if (!KL || KL->getKernel() != &K)
            continue;
          SawLaunch = true;
          // Dimensions are usually widened literals (`sext i32 1 to i64`).
          const Value *GV = KL->getGrid(), *BV = KL->getBlock();
          while (const auto *C = dyn_cast<CastInst>(GV))
            GV = C->getValueOperand();
          while (const auto *C = dyn_cast<CastInst>(BV))
            BV = C->getValueOperand();
          const auto *G = dyn_cast<ConstantInt>(GV);
          const auto *B = dyn_cast<ConstantInt>(BV);
          if (!G || !B || G->getValue() * B->getValue() != 1)
            return true;
        }
    return !SawLaunch; // Unlaunched kernels are checked pessimistically.
  }

  /// True when any conditional branch depends on the thread index: a
  /// store below it may be executed by a subset of threads, so a shared
  /// address is no longer a *provable* race.
  bool scanBranches() {
    for (const Instruction *I : K.instructions()) {
      const auto *Br = dyn_cast<BranchInst>(I);
      if (!Br || !Br->isConditional())
        continue;
      std::set<const Value *> Visiting;
      auto F = affine(Br->getCondition(), Visiting);
      if (!F || F->Base || F->NtidCoeff != 0 || F->HasPhiSym)
        return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // The dependence test
  //===--------------------------------------------------------------------===//

  void report(const char *ID, DiagSeverity Sev, const Instruction *At,
              const std::string &Msg) {
    if (!Reported.insert({At, ID}).second)
      return;
    DE.report(ID, Sev, At->getLoc(), Msg, K.getName());
  }

  void unproven(const Instruction *At, const std::string &Why) {
    if (Mode == RaceCheckMode::Strict)
      report(diag::DoallUnproven, DiagSeverity::Warning, At,
             "cannot prove kernel '" + K.getName() +
                 "' free of cross-thread races: " + Why);
  }

  /// A write all threads provably aim at one shared location.
  bool isProvablyShared(const Form &F, const KernelObject &Obj) const {
    return !F.Base && F.NtidCoeff == 0 && !F.HasPhiSym && Obj.Identified &&
           !Obj.IsAlloca && !HasThreadDependentBranch;
  }

  void checkBody() {
    struct WriteInfo {
      const StoreInst *SI;
      KernelObject Obj;
      Form F;
    };
    std::vector<WriteInfo> Writes;
    std::vector<const LoadInst *> Loads;

    for (const Instruction *I : K.instructions()) {
      if (isa<AllocaInst>(I)) {
        unproven(I, "kernel-side alloca");
        continue;
      }
      if (isa<KernelLaunchInst>(I)) {
        unproven(I, "nested kernel launch");
        continue;
      }
      if (const auto *CI = dyn_cast<CallInst>(I)) {
        const std::string &N = CI->getCallee()->getName();
        if (N != "__tid" && N != "__ntid" && !isPureMath(CI->getCallee()))
          unproven(I, "call to '" + N + "' with unknown memory effects");
        continue;
      }
      if (const auto *LI = dyn_cast<LoadInst>(I)) {
        Loads.push_back(LI);
        continue;
      }
      const auto *SI = dyn_cast<StoreInst>(I);
      if (!SI)
        continue;
      if (SI->getValueOperand()->getType()->isPointerTy()) {
        unproven(SI, "pointer store (also a CGCM restriction violation)");
        continue;
      }
      KernelObject Obj = classifyObject(SI->getPointerOperand());
      if (Obj.IsAlloca)
        continue; // Thread-private stack slot.
      std::set<const Value *> Visiting;
      auto F = affine(SI->getPointerOperand(), Visiting);
      if (!F) {
        unproven(SI, "store address is not affine in the thread index");
        continue;
      }
      if (isProvablyShared(*F, Obj)) {
        report(diag::DoallRace, DiagSeverity::Error, SI,
               "store in kernel '" + K.getName() +
                   "' writes one shared location from every thread");
        continue;
      }
      if (Mode == RaceCheckMode::Strict &&
          (!Obj.Identified || !F->Base || F->Coeff == 0)) {
        unproven(SI, !Obj.Identified
                         ? "store target object is not identified"
                         : "store address does not advance with the "
                           "thread index");
        continue;
      }
      Writes.push_back({SI, Obj, *F});
    }

    if (Mode != RaceCheckMode::Strict)
      return;

    // Writes pairwise: one per-thread slice per object — same distinct
    // base, equal coefficients, constant offsets within one stride.
    for (const WriteInfo &A : Writes)
      for (const WriteInfo &B : Writes) {
        if (A.SI == B.SI)
          continue;
        bool Alias = (!A.Obj.Identified || !B.Obj.Identified)
                         ? true
                         : A.Obj.Root == B.Obj.Root;
        if (!Alias)
          continue;
        if (A.F.Base != B.F.Base || A.F.Coeff != B.F.Coeff ||
            A.F.NtidCoeff != B.F.NtidCoeff ||
            std::llabs(A.F.Const - B.F.Const) >= std::llabs(A.F.Coeff))
          unproven(A.SI, "two stores to '" +
                             std::string(A.Obj.Root->getName()) +
                             "' may target different threads' slices");
      }

    // Loads against writes: reads must stay within the writing thread's
    // slice (the parallelizer's read-modify-write rule).
    for (const LoadInst *LI : Loads) {
      KernelObject Obj = classifyObject(LI->getPointerOperand());
      if (Obj.IsAlloca)
        continue;
      for (const WriteInfo &W : Writes) {
        bool Alias = (!Obj.Identified || !W.Obj.Identified)
                         ? true
                         : Obj.Root == W.Obj.Root;
        if (!Alias)
          continue;
        std::set<const Value *> Visiting;
        auto RF = affine(LI->getPointerOperand(), Visiting);
        if (!RF || RF->Base != W.F.Base || RF->Coeff != W.F.Coeff ||
            RF->NtidCoeff != W.F.NtidCoeff ||
            std::llabs(RF->Const - W.F.Const) >= std::llabs(W.F.Coeff))
          unproven(LI, "load may read another thread's slice of '" +
                           std::string(W.Obj.Root->getName()) + "'");
      }
    }
  }

  const Module &M;
  const Function &K;
  RaceCheckMode Mode;
  DiagnosticEngine &DE;
  bool HasThreadDependentBranch = false;
  std::map<const Instruction *, Form> Assumed;
  std::set<const Instruction *> UsedAssumption;
  std::set<std::pair<const Instruction *, const char *>> Reported;
};

} // namespace

void cgcm::checkKernelRaces(const Module &M, const Function &Kernel,
                            RaceCheckMode Mode, DiagnosticEngine &DE) {
  RaceChecker(M, Kernel, Mode, DE).run();
}
