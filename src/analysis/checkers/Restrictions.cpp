//===- analysis/checkers/Restrictions.cpp - CGCM applicability checks ------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's applicability restrictions (section 2.3) as compile-time
/// diagnostics. The management pass aborts on a degree-3 live-in and the
/// GPU executor faults on a pointer store; this checker finds both ahead
/// of time and points at the MiniC source. Degrees come from the same
/// use-based type inference the management pass consults, so the checker
/// cannot disagree with the transformation it guards.
///
//===----------------------------------------------------------------------===//

#include "analysis/TypeInference.h"
#include "analysis/checkers/Checkers.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace cgcm;

namespace {

/// A store's value operand is "pointer-like" if any value in its cast
/// chain carries a pointer type; ptrtoint laundering does not hide the
/// pointer from the GPU executor, so it must not hide it from us.
bool storesPointer(const StoreInst *SI) {
  const Value *V = SI->getValueOperand();
  while (true) {
    if (V->getType()->isPointerTy())
      return true;
    if (const auto *C = dyn_cast<CastInst>(V)) {
      V = C->getValueOperand();
      continue;
    }
    return false;
  }
}

class RestrictionChecker {
public:
  RestrictionChecker(const Module &M, DiagnosticEngine &DE) : M(M), DE(DE) {}

  void run() {
    indexLaunchSites();
    for (const auto &F : M.functions())
      if (F->isKernel() && !F->isDeclaration() && !F->isGlueKernel())
        checkKernel(*F);
  }

private:
  void indexLaunchSites() {
    for (const auto &F : M.functions())
      for (const auto &BB : *F)
        for (const auto &I : *BB)
          if (const auto *KL = dyn_cast<KernelLaunchInst>(I.get()))
            LaunchSites[KL->getKernel()].push_back(KL);
  }

  /// The source position blamed for a live-in restriction: the first
  /// located launch of the kernel (the communication happens there), or
  /// the kernel body itself if it is never launched.
  SourceLoc blameLoc(const Function &K) const {
    auto It = LaunchSites.find(&K);
    if (It != LaunchSites.end())
      for (const KernelLaunchInst *KL : It->second)
        if (KL->hasLoc())
          return KL->getLoc();
    for (const Instruction *I : K.instructions())
      if (I->hasLoc())
        return I->getLoc();
    return SourceLoc::none();
  }

  void checkKernel(const Function &K) {
    KernelLiveIns L = analyzeKernelLiveIns(K);

    for (unsigned A = 0, E = K.getNumArgs(); A != E; ++A) {
      if (A >= L.ArgDegrees.size() ||
          L.ArgDegrees[A] != PointerDegree::Deeper)
        continue;
      DE.report(diag::PointerDegree, DiagSeverity::Error, blameLoc(K),
                "live-in '" + K.getArg(A)->getName() + "' of kernel '" +
                    K.getName() +
                    "' is used with three or more levels of indirection; "
                    "CGCM supports at most two",
                K.getName());
    }
    for (const GlobalVariable *GV : L.GlobalOrder) {
      if (L.GlobalDegrees.at(GV) != PointerDegree::Deeper)
        continue;
      DE.report(diag::PointerDegree, DiagSeverity::Error, blameLoc(K),
                "global '" + GV->getName() + "' used by kernel '" +
                    K.getName() +
                    "' is used with three or more levels of indirection; "
                    "CGCM supports at most two",
                K.getName());
    }

    // Pointer stores anywhere GPU-reachable: the kernel itself plus the
    // device functions it calls (the IR verifier only inspects kernels,
    // so helpers are covered here).
    checkPointerStores(K, K);
    for (const Function *DF : L.DeviceOrder)
      if (!DF->isDeclaration())
        checkPointerStores(K, *DF);
  }

  void checkPointerStores(const Function &K, const Function &Body) {
    for (const Instruction *I : Body.instructions()) {
      const auto *SI = dyn_cast<StoreInst>(I);
      if (!SI || !storesPointer(SI))
        continue;
      // A spill into the function's own stack slot stays thread-local
      // (the verifier admits it for the same reason).
      if (isa<AllocaInst>(SI->getPointerOperand()))
        continue;
      if (!ReportedStores.insert(SI).second)
        continue;
      DE.report(diag::PointerStore, DiagSeverity::Error, SI->getLoc(),
                "pointer value stored to memory inside GPU code reachable "
                    "from kernel '" +
                    K.getName() + "'; CGCM forbids pointer stores on the GPU",
                Body.getName());
    }
  }

  const Module &M;
  DiagnosticEngine &DE;
  std::map<const Function *, std::vector<const KernelLaunchInst *>>
      LaunchSites;
  std::set<const StoreInst *> ReportedStores;
};

} // namespace

void cgcm::checkCGCMRestrictions(const Module &M, DiagnosticEngine &DE) {
  RestrictionChecker(M, DE).run();
}
