//===- analysis/commcost/CommCost.h - Static communication cost --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static prediction of the TransferLedger (docs/StaticAnalysis.md): an
/// interprocedural, summary-based abstract interpreter over managed IR
/// that
///
///  * classifies every map/unmap/release/launch call site into the
///    paper's schedule classes (hoisted / cyclic / acyclic),
///  * derives per-allocation-site transfer volumes as symbolic formulas
///    (bytes = size x trip-count terms, folded when constant), and
///  * model-checks each allocation unit's lifecycle against the same
///    protocol the runtime enforces dynamically (map/unmap pairing,
///    free/realloc while mapped, refcount underflow, stale pointer-array
///    snapshots), reporting source-located diagnostics.
///
/// Predictions use the same site keys as the dynamic TransferLedger
/// ("heap@L:C", "alloca@L:C", "global NAME"), so a run's actual ledger
/// joins row-by-row with the static prediction. The soundness contract:
/// where a site is marked exact, every predicted counter equals the
/// dynamic one; otherwise predicted counters are upper bounds. The
/// cgcm-static-parity harness enforces this over every workload.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_COMMCOST_COMMCOST_H
#define CGCM_ANALYSIS_COMMCOST_COMMCOST_H

#include "analysis/commcost/SymExpr.h"
#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <ostream>
#include <string>
#include <vector>

namespace cgcm {

class Module;

/// Diagnostic IDs emitted by the static lifecycle checker. Errors are
/// provable protocol violations (the runtime would reportFatalError);
/// warnings are hazard patterns the fuzzer historically caught
/// dynamically and that depend on data the checker cannot prove safe.
namespace diag {
inline constexpr const char *StaticMapAfterFree = "cgcm-static-map-after-free";
inline constexpr const char *StaticReleaseUnderflow =
    "cgcm-static-release-underflow";
inline constexpr const char *StaticFreeBetweenLaunches =
    "cgcm-static-free-between-launches";
inline constexpr const char *StaticReallocBetweenLaunches =
    "cgcm-static-realloc-between-launches";
inline constexpr const char *StaticStaleSnapshot = "cgcm-static-stale-snapshot";
inline constexpr const char *StaticUnresolvedUnit =
    "cgcm-static-unresolved-unit";
} // namespace diag

/// The paper's communication schedule classes, assigned per call site.
enum class SchedClass {
  Acyclic, ///< Straight-line management: one transfer pair per execution.
  Hoisted, ///< Loop-invariant: promoted to a preheader/exit pair.
  Cyclic,  ///< Inside a loop: executes once per iteration.
  Mixed,   ///< Aggregate of sites in more than one class (per-unit only).
};

const char *getSchedClassName(SchedClass C);

/// Predicted ledger row for one allocation site. Counters mirror
/// LedgerEntry field-for-field; each is a SymExpr that folds to a plain
/// constant whenever sizes and trip counts are statically known.
struct SitePrediction {
  std::string Site; ///< Ledger key: "heap@12:3", "alloca@8:5", "global A".
  SourceLoc Loc;
  SchedClass Class = SchedClass::Acyclic;
  /// True when every counter below is an unconditional constant; the
  /// parity contract then requires equality with the dynamic ledger.
  /// False degrades the contract to "sound upper bound".
  bool Exact = true;
  SymExpr Units;
  SymExpr BytesHtoD, BytesDtoH;
  SymExpr TransfersHtoD, TransfersDtoH;
  SymExpr EpochSuppressed, ReuseSuppressed;
  SymExpr MapCalls, UnmapCalls, ReleaseCalls;
};

/// Schedule classification of one management/launch call site.
struct CallSiteClass {
  std::string Kind; ///< "map", "unmap", "release", "map_array", ..., "launch".
  SourceLoc Loc;
  std::string FunctionName;
  SchedClass Class = SchedClass::Acyclic;
  unsigned LoopDepth = 0;
};

struct CommCostReport {
  /// False when some unit, size, or control structure was unresolvable:
  /// the per-site counters then do not bound the program (a prediction
  /// consumer must not trust them). Diagnosed via
  /// cgcm-static-unresolved-unit.
  bool Sound = true;
  /// True when every site is exact (implies Sound).
  bool Exact = true;
  /// Per-allocation-site predictions, sorted by site key.
  std::vector<SitePrediction> Sites;
  /// Per-call-site schedule classes, in module order.
  std::vector<CallSiteClass> CallSites;
  /// Predicted kernel launches (glue kernels included; epoch advances).
  SymExpr KernelLaunches;
  /// Lifecycle findings, sorted by source location.
  std::vector<Diagnostic> Diagnostics;
  /// Abstract events interpreted (budget/diagnostic aid).
  uint64_t SimulatedEvents = 0;

  /// Totals over Sites (Unknown-absorbing).
  SymExpr totalBytesHtoD() const;
  SymExpr totalBytesDtoH() const;
  SymExpr totalTransfersHtoD() const;
  SymExpr totalTransfersDtoH() const;

  const SitePrediction *findSite(const std::string &Site) const;
  bool hasDiagnostic(const std::string &ID) const;
};

/// Runs the static communication-cost and lifecycle analysis over \p M.
/// Expects managed IR (post-`comm`, with or without the optimization
/// fixpoint); on unmanaged IR the prediction is trivially empty.
CommCostReport runCommCostAnalysis(Module &M);

/// Emits \p R as the "cgcm-static-cost-v1" JSON schema
/// (docs/StaticAnalysis.md).
void writeStaticCostJson(std::ostream &OS, const CommCostReport &R,
                         const std::string &ModuleName);

/// Stable diagnostic order for deterministic --analyze output: by source
/// location (line, column), then checker ID, then severity and message.
void sortDiagnostics(std::vector<Diagnostic> &Diags);

} // namespace cgcm

#endif // CGCM_ANALYSIS_COMMCOST_COMMCOST_H
