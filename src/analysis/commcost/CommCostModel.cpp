//===- analysis/commcost/CommCostModel.cpp - Event-tree construction ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers managed IR into the per-function communication event trees the
/// abstract interpreter replays (CommCostSim.cpp). A region is either a
/// function body or a loop body (the paper's Algorithm 4 vocabulary):
/// blocks are walked in reverse post order, nested loops become Loop
/// events carrying a trip-count recipe and their loop-carried pointer
/// phis, and every event records whether its block is guaranteed to run
/// on each pass through the region (dominance over the region's exits).
///
//===----------------------------------------------------------------------===//

#include "analysis/commcost/CommCostModel.h"

#include "ir/Function.h"
#include "ir/Module.h"

#include <algorithm>
#include <set>

using namespace cgcm;
using namespace cgcm::commcost;

const char *cgcm::getSchedClassName(SchedClass C) {
  switch (C) {
  case SchedClass::Acyclic:
    return "acyclic";
  case SchedClass::Hoisted:
    return "hoisted";
  case SchedClass::Cyclic:
    return "cyclic";
  case SchedClass::Mixed:
    return "mixed";
  }
  return "?";
}

const Value *commcost::stripPointerRoot(const Value *V) {
  for (;;) {
    if (const auto *CI = dyn_cast<CastInst>(V)) {
      // Only pointer-preserving casts: a bitcast or an int round trip of
      // the same value. FPToSI etc. cannot produce a unit pointer.
      switch (CI->getOp()) {
      case CastInst::Op::Bitcast:
      case CastInst::Op::IntToPtr:
      case CastInst::Op::PtrToInt:
        V = CI->getValueOperand();
        continue;
      default:
        return V;
      }
    }
    if (const auto *GEP = dyn_cast<GEPInst>(V)) {
      V = GEP->getPointerOperand();
      continue;
    }
    return V;
  }
}

namespace {

/// Recognized callee kinds by name (the runtime API surface plus the
/// libc heap the interpreter intercepts).
enum class CalleeKind {
  None,
  Map,
  Unmap,
  Release,
  MapArray,
  UnmapArray,
  ReleaseArray,
  DeclareAlloca,
  DeclareGlobal,
  Malloc,
  Calloc,
  Realloc,
  Free,
  UserCall,
};

CalleeKind classifyCallee(const Function *Callee) {
  const std::string &N = Callee->getName();
  if (N == "cgcm_map")
    return CalleeKind::Map;
  if (N == "cgcm_unmap")
    return CalleeKind::Unmap;
  if (N == "cgcm_release")
    return CalleeKind::Release;
  if (N == "cgcm_map_array")
    return CalleeKind::MapArray;
  if (N == "cgcm_unmap_array")
    return CalleeKind::UnmapArray;
  if (N == "cgcm_release_array")
    return CalleeKind::ReleaseArray;
  if (N == "cgcm_declare_alloca")
    return CalleeKind::DeclareAlloca;
  if (N == "cgcm_declare_global")
    return CalleeKind::DeclareGlobal;
  if (N == "malloc")
    return CalleeKind::Malloc;
  if (N == "calloc")
    return CalleeKind::Calloc;
  if (N == "realloc")
    return CalleeKind::Realloc;
  if (N == "free")
    return CalleeKind::Free;
  if (!Callee->isDeclaration() && !Callee->isKernel())
    return CalleeKind::UserCall;
  return CalleeKind::None; // print_*, math intrinsics, ...
}

const char *eventKindName(EvKind K) {
  switch (K) {
  case EvKind::Map:
    return "map";
  case EvKind::Unmap:
    return "unmap";
  case EvKind::Release:
    return "release";
  case EvKind::MapArray:
    return "map_array";
  case EvKind::UnmapArray:
    return "unmap_array";
  case EvKind::ReleaseArray:
    return "release_array";
  case EvKind::Launch:
    return "launch";
  default:
    return "?";
  }
}

class ModelBuilder {
public:
  ModelBuilder(Module &M, CostModel &Out) : M(M), Out(Out) {}

  void run() {
    // Mark call-graph cycles among defined non-kernel functions first so
    // Call events into a cycle are built as unresolvable.
    findRecursion();
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isKernel())
        continue;
      buildFunction(*F);
    }
  }

private:
  Module &M;
  CostModel &Out;
  std::set<const Function *> RecursiveFns;

  void findRecursion() {
    // Iterative DFS with an on-stack set; any back edge marks every
    // function on the cycle (conservatively: the whole current stack
    // from the target up).
    for (const auto &Root : M.functions()) {
      if (Root->isDeclaration() || Root->isKernel())
        continue;
      std::vector<const Function *> Stack{Root.get()};
      std::vector<size_t> EdgeIdx{0};
      std::vector<const Function *> Callees = directCallees(Root.get());
      std::vector<std::vector<const Function *>> CalleeStack{Callees};
      std::set<const Function *> OnStack{Root.get()};
      while (!Stack.empty()) {
        if (EdgeIdx.back() >= CalleeStack.back().size()) {
          OnStack.erase(Stack.back());
          Stack.pop_back();
          EdgeIdx.pop_back();
          CalleeStack.pop_back();
          continue;
        }
        const Function *Next = CalleeStack.back()[EdgeIdx.back()++];
        if (OnStack.count(Next)) {
          // Cycle: everything from Next to the top participates.
          bool In = false;
          for (const Function *F : Stack) {
            if (F == Next)
              In = true;
            if (In)
              RecursiveFns.insert(F);
          }
          continue;
        }
        if (Stack.size() > 64)
          continue; // Depth guard; deeper chains are vanishingly rare.
        Stack.push_back(Next);
        EdgeIdx.push_back(0);
        CalleeStack.push_back(directCallees(Next));
        OnStack.insert(Next);
      }
    }
  }

  std::vector<const Function *> directCallees(const Function *F) {
    std::vector<const Function *> Res;
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (const auto *CI = dyn_cast<CallInst>(I.get()))
          if (classifyCallee(CI->getCallee()) == CalleeKind::UserCall)
            Res.push_back(CI->getCallee());
    return Res;
  }

  void buildFunction(Function &F) {
    auto FM = std::make_unique<FunctionModel>();
    FM->F = &F;
    FM->Recursive = RecursiveFns.count(&F) != 0;
    FM->DT = std::make_unique<DominatorTree>(F);
    FM->LI = std::make_unique<LoopInfo>(F, *FM->DT);

    // The function region's exits: every reachable block ending in ret.
    std::vector<BasicBlock *> Exits;
    for (BasicBlock *BB : FM->DT->getReversePostOrder())
      if (BB->getTerminator() && isa<RetInst>(BB->getTerminator()))
        Exits.push_back(BB);

    std::set<const Loop *> Emitted;
    for (BasicBlock *BB : FM->DT->getReversePostOrder()) {
      Loop *L = FM->LI->getLoopFor(BB);
      if (!L) {
        bool Cond = !dominatesAll(*FM->DT, BB, Exits);
        collectBlockEvents(*FM, BB, Cond, FM->Body);
        continue;
      }
      // First time we meet a block of a top-level loop: emit the whole
      // loop as one event, then skip its remaining blocks.
      Loop *Top = L;
      while (Top->getParentLoop())
        Top = Top->getParentLoop();
      if (Emitted.insert(Top).second) {
        bool Cond = !dominatesAll(*FM->DT, Top->getHeader(), Exits);
        FM->Body.Events.push_back(buildLoop(*FM, Top, Cond));
      }
    }
    Out.Functions[&F] = std::move(FM);
  }

  static bool dominatesAll(const DominatorTree &DT, BasicBlock *BB,
                           const std::vector<BasicBlock *> &Targets) {
    for (BasicBlock *T : Targets)
      if (!DT.dominates(BB, T))
        return false;
    return !Targets.empty() || BB->getParent()->getEntryBlock() == BB;
  }

  Event buildLoop(FunctionModel &FM, Loop *L, bool OuterCond) {
    Event Ev;
    Ev.K = EvKind::Loop;
    Ev.L = L;
    Ev.Conditional = OuterCond;
    Ev.Body = std::make_unique<EventSeq>();
    Ev.Trip = analyzeTripCount(L);
    collectCarriedPtrs(L, Ev);

    std::vector<BasicBlock *> Latches = L->getLatches();
    std::set<const Loop *> Emitted;
    for (BasicBlock *BB : L->getBlocks()) {
      Loop *Inner = FM.LI->getLoopFor(BB);
      if (Inner == L) {
        // Once per iteration iff the block dominates every latch.
        bool Cond = !dominatesAll(*FM.DT, BB, Latches);
        collectBlockEvents(FM, BB, Cond, *Ev.Body);
        continue;
      }
      // A block of a nested loop: find the immediate child of L that
      // contains it and emit that child once.
      Loop *Child = Inner;
      while (Child && Child->getParentLoop() != L)
        Child = Child->getParentLoop();
      if (Child && Emitted.insert(Child).second) {
        bool Cond = !dominatesAll(*FM.DT, Child->getHeader(), Latches);
        Ev.Body->Events.push_back(buildLoop(FM, Child, Cond));
      }
    }
    return Ev;
  }

  /// Canonical trip count: header phi `i = phi [Init, pre], [i+Step,
  /// latch]`, exit test `cmp Pred i, Bound` controlling the header (or an
  /// exiting block) branch with the in-loop successor on the matching
  /// side.
  TripCount analyzeTripCount(Loop *L) {
    TripCount T;
    auto *Br = dyn_cast_or_null<BranchInst>(L->getHeader()->getTerminator());
    if (!Br || !Br->isConditional())
      return T;
    auto *Cmp = dyn_cast<CmpInst>(Br->getCondition());
    if (!Cmp)
      return T;
    bool TrueInLoop = L->contains(Br->getSuccessor(0));
    bool FalseInLoop = L->contains(Br->getSuccessor(1));
    if (TrueInLoop == FalseInLoop)
      return T;

    std::vector<BasicBlock *> Latches = L->getLatches();
    if (Latches.size() != 1)
      return T;

    // Find the induction phi among the header phis: one operand of the
    // compare (through casts) that is a header phi whose latch incoming
    // is phi + constant.
    for (unsigned OpIdx = 0; OpIdx != 2; ++OpIdx) {
      const Value *CmpOp = Cmp->getOperand(OpIdx);
      while (const auto *C = dyn_cast<CastInst>(CmpOp))
        CmpOp = C->getValueOperand();
      const auto *IV = dyn_cast<PhiInst>(CmpOp);
      if (!IV || IV->getParent() != L->getHeader())
        continue;
      const Value *Next = IV->getIncomingValueFor(Latches.front());
      const Value *Init = nullptr;
      for (unsigned I = 0; I != IV->getNumIncoming(); ++I)
        if (!L->contains(IV->getIncomingBlock(I)))
          Init = IV->getIncomingValue(I);
      if (!Next || !Init)
        continue;
      const auto *Step = dyn_cast<BinOpInst>(Next);
      if (!Step)
        continue;
      int64_t StepK = 0;
      if (Step->getOp() == BinOpInst::Op::Add &&
          Step->getOperand(0) == IV && isa<ConstantInt>(Step->getOperand(1)))
        StepK = cast<ConstantInt>(Step->getOperand(1))->getValue();
      else if (Step->getOp() == BinOpInst::Op::Add &&
               Step->getOperand(1) == IV &&
               isa<ConstantInt>(Step->getOperand(0)))
        StepK = cast<ConstantInt>(Step->getOperand(0))->getValue();
      else if (Step->getOp() == BinOpInst::Op::Sub &&
               Step->getOperand(0) == IV &&
               isa<ConstantInt>(Step->getOperand(1)))
        StepK = -cast<ConstantInt>(Step->getOperand(1))->getValue();
      else
        continue;
      if (StepK == 0)
        continue;

      CmpInst::Predicate Pred = Cmp->getPredicate();
      // Normalize so the induction variable is the left operand.
      if (OpIdx == 1) {
        switch (Pred) {
        case CmpInst::Predicate::SLT:
          Pred = CmpInst::Predicate::SGT;
          break;
        case CmpInst::Predicate::SLE:
          Pred = CmpInst::Predicate::SGE;
          break;
        case CmpInst::Predicate::SGT:
          Pred = CmpInst::Predicate::SLT;
          break;
        case CmpInst::Predicate::SGE:
          Pred = CmpInst::Predicate::SLE;
          break;
        default:
          break;
        }
      }
      // Normalize so the predicate holds while the loop continues.
      if (FalseInLoop) {
        switch (Pred) {
        case CmpInst::Predicate::SLT:
          Pred = CmpInst::Predicate::SGE;
          break;
        case CmpInst::Predicate::SLE:
          Pred = CmpInst::Predicate::SGT;
          break;
        case CmpInst::Predicate::SGT:
          Pred = CmpInst::Predicate::SLE;
          break;
        case CmpInst::Predicate::SGE:
          Pred = CmpInst::Predicate::SLT;
          break;
        case CmpInst::Predicate::EQ:
          Pred = CmpInst::Predicate::NE;
          break;
        case CmpInst::Predicate::NE:
          Pred = CmpInst::Predicate::EQ;
          break;
        default:
          return T;
        }
      }
      switch (Pred) {
      case CmpInst::Predicate::SLT:
      case CmpInst::Predicate::SLE:
      case CmpInst::Predicate::SGT:
      case CmpInst::Predicate::SGE:
      case CmpInst::Predicate::NE:
        break;
      default:
        return T;
      }
      T.Valid = true;
      T.IV = IV;
      T.Init = Init;
      T.Bound = Cmp->getOperand(OpIdx == 0 ? 1 : 0);
      T.Step = StepK;
      T.Pred = Pred;
      return T;
    }
    return T;
  }

  void collectCarriedPtrs(Loop *L, Event &Ev) {
    std::vector<BasicBlock *> Latches = L->getLatches();
    for (const auto &I : *L->getHeader()) {
      const auto *Phi = dyn_cast<PhiInst>(I.get());
      if (!Phi)
        break; // Phis lead the block.
      if (!Phi->getType()->isPointerTy())
        continue;
      Event::CarriedPtr CP;
      CP.Phi = Phi;
      bool InitConflict = false, NextConflict = false;
      for (unsigned K = 0; K != Phi->getNumIncoming(); ++K) {
        const Value *V = Phi->getIncomingValue(K);
        if (L->contains(Phi->getIncomingBlock(K))) {
          NextConflict |= CP.Next && CP.Next != V;
          CP.Next = V;
        } else {
          InitConflict |= CP.Init && CP.Init != V;
          CP.Init = V;
        }
      }
      if (InitConflict)
        CP.Init = nullptr;
      if (NextConflict)
        CP.Next = nullptr;
      Ev.CarriedPtrs.push_back(CP);
    }
  }

  void collectBlockEvents(FunctionModel &FM, BasicBlock *BB, bool Conditional,
                          EventSeq &Seq) {
    for (const auto &IP : *BB) {
      const Instruction *I = IP.get();
      if (const auto *KL = dyn_cast<KernelLaunchInst>(I)) {
        (void)KL;
        Event Ev;
        Ev.K = EvKind::Launch;
        Ev.I = I;
        Ev.Conditional = Conditional;
        classifySite(FM, Ev);
        Seq.Events.push_back(std::move(Ev));
        continue;
      }
      if (const auto *SI = dyn_cast<StoreInst>(I)) {
        // Only stores that can retarget a pointer-table slot matter:
        // the stored value is itself a pointer.
        if (SI->getValueOperand()->getType()->isPointerTy()) {
          Event Ev;
          Ev.K = EvKind::StoreSlot;
          Ev.I = I;
          Ev.Conditional = Conditional;
          Seq.Events.push_back(std::move(Ev));
        }
        continue;
      }
      const auto *CI = dyn_cast<CallInst>(I);
      if (!CI)
        continue;
      Event Ev;
      Ev.I = I;
      Ev.Conditional = Conditional;
      switch (classifyCallee(CI->getCallee())) {
      case CalleeKind::Map:
        Ev.K = EvKind::Map;
        break;
      case CalleeKind::Unmap:
        Ev.K = EvKind::Unmap;
        break;
      case CalleeKind::Release:
        Ev.K = EvKind::Release;
        break;
      case CalleeKind::MapArray:
        Ev.K = EvKind::MapArray;
        break;
      case CalleeKind::UnmapArray:
        Ev.K = EvKind::UnmapArray;
        break;
      case CalleeKind::ReleaseArray:
        Ev.K = EvKind::ReleaseArray;
        break;
      case CalleeKind::DeclareAlloca:
        Ev.K = EvKind::DeclareAlloca;
        break;
      case CalleeKind::DeclareGlobal:
        Ev.K = EvKind::DeclareGlobal;
        break;
      case CalleeKind::Malloc:
      case CalleeKind::Calloc:
        Ev.K = EvKind::HeapAlloc;
        break;
      case CalleeKind::Realloc:
        Ev.K = EvKind::HeapRealloc;
        break;
      case CalleeKind::Free:
        Ev.K = EvKind::HeapFree;
        break;
      case CalleeKind::UserCall:
        Ev.K = EvKind::Call;
        Ev.Callee = CI->getCallee();
        break;
      case CalleeKind::None:
        continue;
      }
      switch (Ev.K) {
      case EvKind::Map:
      case EvKind::Unmap:
      case EvKind::Release:
      case EvKind::MapArray:
      case EvKind::UnmapArray:
      case EvKind::ReleaseArray:
        classifySite(FM, Ev);
        break;
      default:
        break;
      }
      Seq.Events.push_back(std::move(Ev));
    }
  }

  /// Paper schedule classes, syntactically: inside a loop = cyclic; a
  /// map in the preheader (or an unmap/release in an exit block) of a
  /// launch-containing loop = hoisted (map promotion's exact placement);
  /// anything else = acyclic.
  void classifySite(FunctionModel &FM, Event &Ev) {
    BasicBlock *BB = Ev.I->getParent();
    Loop *In = FM.LI->getLoopFor(BB);
    if (In) {
      Ev.Class = SchedClass::Cyclic;
      Ev.LoopDepth = In->getDepth() + 1;
    } else if (Ev.K != EvKind::Launch) {
      for (const auto &L : FM.LI->getLoops()) {
        if (!loopLaunches(*L))
          continue;
        bool MapSide = Ev.K == EvKind::Map || Ev.K == EvKind::MapArray;
        if (MapSide && L->getPreheader() == BB) {
          Ev.Class = SchedClass::Hoisted;
          break;
        }
        if (!MapSide) {
          std::vector<BasicBlock *> Exits = L->getExitBlocks();
          if (std::find(Exits.begin(), Exits.end(), BB) != Exits.end()) {
            Ev.Class = SchedClass::Hoisted;
            break;
          }
        }
      }
    }
    CallSiteClass CSC;
    CSC.Kind = eventKindName(Ev.K);
    CSC.Loc = Ev.I->getLoc();
    CSC.FunctionName = FM.F->getName();
    CSC.Class = Ev.Class;
    CSC.LoopDepth = Ev.LoopDepth;
    Out.CallSites.push_back(std::move(CSC));
  }

  static bool loopLaunches(const Loop &L) {
    for (const BasicBlock *BB : L.getBlocks())
      for (const auto &I : *BB)
        if (isa<KernelLaunchInst>(I.get()))
          return true;
    return false;
  }
};

} // namespace

CostModel commcost::buildCostModel(Module &M) {
  CostModel Model;
  Model.M = &M;
  ModelBuilder(M, Model).run();
  return Model;
}
