//===- analysis/commcost/CommCostModel.h - Event-tree program model ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate form between managed IR and the abstract interpreter
/// (CommCostSim.cpp): per-function trees of *communication events* —
/// runtime-API calls, heap traffic, kernel launches, pointer-table slot
/// stores — with loops as nested sequences carrying a trip-count recipe
/// and calls as references to the callee's model. Everything the
/// simulator needs to replay the runtime's ledger accounting without
/// executing user code survives here; everything else is dropped.
///
/// Internal to the commcost analysis (and its tests); the public surface
/// is CommCost.h.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_COMMCOST_COMMCOSTMODEL_H
#define CGCM_ANALYSIS_COMMCOST_COMMCOSTMODEL_H

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/commcost/CommCost.h"
#include "ir/Instructions.h"

#include <map>
#include <memory>
#include <vector>

namespace cgcm {
namespace commcost {

enum class EvKind {
  Map,
  Unmap,
  Release,
  MapArray,
  UnmapArray,
  ReleaseArray,
  DeclareAlloca,
  DeclareGlobal,
  HeapAlloc,
  HeapRealloc,
  HeapFree,
  Launch,
  StoreSlot,
  Call,
  Loop,
};

/// Canonical-loop trip-count recipe: the induction phi starts at Init,
/// steps by the constant Step each latch traversal, and the loop runs
/// while `phi Pred Bound` holds. Evaluated at simulation time so Init and
/// Bound may be argument-dependent.
struct TripCount {
  bool Valid = false;
  const PhiInst *IV = nullptr;
  const Value *Init = nullptr;
  const Value *Bound = nullptr;
  int64_t Step = 0;
  CmpInst::Predicate Pred = CmpInst::Predicate::SLT;
};

struct EventSeq;

struct Event {
  EvKind K = EvKind::Call;
  /// The originating instruction (call/launch/store); null for Loop.
  const Instruction *I = nullptr;
  /// True when the owning block may not execute on every pass through
  /// its region: effects still apply (upper bound) but exactness is lost
  /// and provable-violation errors are downgraded.
  bool Conditional = false;

  // Loop events only.
  std::unique_ptr<EventSeq> Body;
  TripCount Trip;
  const Loop *L = nullptr;
  /// Loop-carried pointer values: header phis of pointer type, with the
  /// value entering from outside and the value flowing around the back
  /// edge (null when not unique).
  struct CarriedPtr {
    const PhiInst *Phi = nullptr;
    const Value *Init = nullptr;
    const Value *Next = nullptr;
  };
  std::vector<CarriedPtr> CarriedPtrs;

  // Call events only.
  const Function *Callee = nullptr;

  // Management/launch events: schedule classification (build-time).
  SchedClass Class = SchedClass::Acyclic;
  unsigned LoopDepth = 0;
};

struct EventSeq {
  std::vector<Event> Events;
};

struct FunctionModel {
  const Function *F = nullptr;
  EventSeq Body;
  /// Part of a call-graph cycle: the simulator treats calls to it as
  /// unresolvable (Sound = false) instead of recursing forever.
  bool Recursive = false;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
};

struct CostModel {
  Module *M = nullptr;
  std::map<const Function *, std::unique_ptr<FunctionModel>> Functions;
  /// Schedule classification of every management/launch call site, in
  /// module order (copied verbatim into the report).
  std::vector<CallSiteClass> CallSites;
};

/// Builds the event-tree model for every defined non-kernel function.
CostModel buildCostModel(Module &M);

/// Replays \p Model from main, mirroring CGCMRuntime's accounting.
CommCostReport simulateCostModel(const CostModel &Model);

/// Strips pointer-preserving casts and pointer arithmetic down to the
/// root value a unit lookup would resolve (same idiom the runtime's
/// greatest-LTE lookup implements dynamically).
const Value *stripPointerRoot(const Value *V);

} // namespace commcost
} // namespace cgcm

#endif // CGCM_ANALYSIS_COMMCOST_COMMCOSTMODEL_H
