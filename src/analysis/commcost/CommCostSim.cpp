//===- analysis/commcost/CommCostSim.cpp - Abstract ledger interpreter -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the event-tree model (CommCostModel.h) from main, mirroring
/// CGCMRuntime's ledger accounting transition-for-transition over
/// *abstract* allocation units: reference counts and staleness are exact
/// integers where the program is statically determined, and degrade to an
/// explicit ambiguous state (per-counter both-branch upper bounds) where
/// it is not. Loops are simulated iteration-by-iteration with a
/// steady-state detector: once an iteration's per-site counter delta and
/// post-state both repeat, the remaining iterations are folded in as
/// delta x (trip - k) — exactly for constant trips, symbolically
/// otherwise.
///
/// Staleness uses a relative epoch: 0 = the host copy is current,
/// 1 = a kernel has launched since the last sync (unmap would copy),
/// 2 = ambiguous. Kernel launches move 0 -> 1 and collapse ambiguity to
/// definitely-stale, which keeps steady-state signatures finite without
/// tracking absolute epoch numbers.
///
/// The model simulates the runtime's DEFAULT configuration (epoch check
/// and refcount reuse both enabled) — the same configuration the parity
/// harness runs dynamically.
///
//===----------------------------------------------------------------------===//

#include "analysis/commcost/CommCostModel.h"

#include "ir/Module.h"
#include "support/JSON.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>

using namespace cgcm;
using namespace cgcm::commcost;

namespace {

/// Abstract unit handles. Non-negative values index Sim::UnitStates.
constexpr int NullUnit = -1;
constexpr int UnknownUnit = -2;

/// Relative staleness of a unit's host copy.
enum : int { HostCurrent = 0, HostStale = 1, StaleAmbiguous = 2 };

/// Counter indices into a site's accounting row (LedgerEntry order).
enum CounterIdx {
  CI_Units,
  CI_BytesHtoD,
  CI_BytesDtoH,
  CI_TransfersHtoD,
  CI_TransfersDtoH,
  CI_EpochSuppressed,
  CI_ReuseSuppressed,
  CI_MapCalls,
  CI_UnmapCalls,
  CI_ReleaseCalls,
  NumCounters,
};

/// Pseudo-site index for module-wide counters (kernel launches).
constexpr int GlobalSite = -1;

struct UnitState {
  int Id = 0;
  int Site = 0;           ///< Index into Sim::Sites.
  SymExpr Size;           ///< Bytes; non-const sizes make copies symbolic.
  int64_t ConstSize = -1; ///< Size when constant, else -1 (slot math).
  bool IsGlobal = false;
  bool IsReadOnly = false;
  int RefCount = 0;
  int Stale = HostCurrent;
  bool HostDead = false;
  bool MaybeHostDead = false;
  bool IsPointerArray = false;
  bool EverMapped = false;
  bool EverMapArrayed = false;
  /// State no longer trusted (conditional event touched it, or a loop
  /// was extrapolated past its state-changing prefix): every later event
  /// applies per-counter both-branch upper bounds and no error is
  /// provable against it.
  bool Poisoned = false;
  bool Tracked = true;
  std::vector<std::vector<int>> Snapshots; ///< mapArray generations.
  std::map<int64_t, int> Slots;            ///< slot index -> unit id.
  bool SlotsUnknown = false;
  /// Host memory was freed/realloc'd after the unit fed a kernel; a
  /// later launch turns this into a between-launches hazard warning.
  SourceLoc PendingFreeLoc = SourceLoc::none();
  SourceLoc PendingReallocLoc = SourceLoc::none();
};

struct SiteState {
  std::string Key;
  SourceLoc Loc;
  bool Exact = true;
  std::set<SchedClass> MapClasses; ///< Classes of map events that hit it.
};

struct Frame {
  std::map<const Value *, int> PtrEnv;
  std::map<const Value *, SymExpr> IntEnv;
  std::vector<int> DeclaredAllocas; ///< Expired on return (removeAlloca).
  const Function *F = nullptr;
};

/// One accumulation scope: the function/loop-iteration the simulator is
/// currently attributing counters to. Loop extrapolation multiplies a
/// popped scope's delta and folds it into the parent.
struct Accumulator {
  /// (site index, counter) -> accumulated value.
  std::map<std::pair<int, int>, SymExpr> Deltas;

  void add(int Site, int Counter, const SymExpr &V) {
    auto &Slot = Deltas[{Site, Counter}];
    Slot += V;
  }
  void addScaled(const Accumulator &O, const SymExpr &Scale) {
    for (const auto &[K, V] : O.Deltas)
      add(K.first, K.second, V * Scale);
  }
  bool equals(const Accumulator &O) const {
    if (Deltas.size() != O.Deltas.size())
      return false;
    auto It = O.Deltas.begin();
    for (const auto &KV : Deltas) {
      if (KV.first != It->first || KV.second != It->second)
        return false;
      ++It;
    }
    return true;
  }
};

class Simulator {
public:
  Simulator(const CostModel &Model) : Model(Model) {}

  CommCostReport run();

private:
  const CostModel &Model;
  CommCostReport Report;

  std::vector<UnitState> Units;
  std::vector<SiteState> Sites;
  std::map<std::string, int> SiteIndex;
  std::map<const GlobalVariable *, int> GlobalUnits;
  std::vector<Accumulator> Accums; ///< Bottom entry = program totals.
  std::vector<Frame> Frames;
  std::set<std::pair<std::string, std::pair<unsigned, unsigned>>> Reported;
  unsigned CallDepth = 0;

  static constexpr int64_t IterCap = 4096;
  static constexpr int SymbolicProbe = 8; ///< Iterations to find steady state.

  //===------------------------------------------------------------------===//
  // Bookkeeping
  //===------------------------------------------------------------------===//

  Frame &frame() { return Frames.back(); }

  int siteFor(const std::string &Key, SourceLoc Loc) {
    auto It = SiteIndex.find(Key);
    if (It != SiteIndex.end())
      return It->second;
    int Idx = (int)Sites.size();
    Sites.push_back({Key, Loc, true, {}});
    SiteIndex[Key] = Idx;
    return Idx;
  }

  void add(int Site, int Counter, const SymExpr &V) {
    if (V.isConst(0))
      return;
    Accums.back().add(Site, Counter, V);
    if (!V.isConst() && Site >= 0)
      Sites[Site].Exact = false;
  }

  void inexact(int Site) {
    if (Site >= 0)
      Sites[Site].Exact = false;
  }

  void diagnose(const char *ID, DiagSeverity Sev, SourceLoc Loc,
                const std::string &Msg) {
    if (!Reported.insert({ID, {Loc.Line, Loc.Col}}).second)
      return;
    Diagnostic D;
    D.ID = ID;
    D.Severity = Sev;
    D.Loc = Loc;
    D.Message = Msg;
    D.FunctionName = Frames.empty() ? "" : frame().F->getName();
    Report.Diagnostics.push_back(std::move(D));
  }

  void unresolved(SourceLoc Loc, const std::string &What) {
    Report.Sound = false;
    diagnose(diag::StaticUnresolvedUnit, DiagSeverity::Warning, Loc,
             "static cost analysis lost track of " + What +
                 "; predictions are not a sound bound from here");
  }

  int newUnit(int Site, SymExpr Size, bool IsGlobal, bool IsReadOnly,
              bool Poisoned) {
    UnitState U;
    U.Id = (int)Units.size();
    U.Site = Site;
    U.ConstSize = Size.isConst() ? Size.getConst() : -1;
    U.Size = std::move(Size);
    U.IsGlobal = IsGlobal;
    U.IsReadOnly = IsReadOnly;
    U.Poisoned = Poisoned;
    add(Site, CI_Units, SymExpr::constant(1));
    if (!U.Size.isConst())
      inexact(Site);
    Units.push_back(std::move(U));
    return Units.back().Id;
  }

  //===------------------------------------------------------------------===//
  // Value evaluation
  //===------------------------------------------------------------------===//

  SymExpr evalInt(const Value *V) {
    if (const auto *C = dyn_cast<ConstantInt>(V))
      return SymExpr::constant(C->getValue());
    if (const auto *Cast = dyn_cast<CastInst>(V)) {
      switch (Cast->getOp()) {
      case CastInst::Op::Trunc:
      case CastInst::Op::ZExt:
      case CastInst::Op::SExt:
        return evalInt(Cast->getValueOperand());
      default:
        return SymExpr::unknown();
      }
    }
    if (const auto *B = dyn_cast<BinOpInst>(V)) {
      SymExpr L = evalInt(B->getLHS()), R = evalInt(B->getRHS());
      switch (B->getOp()) {
      case BinOpInst::Op::Add:
        return L + R;
      case BinOpInst::Op::Sub:
        return L - R;
      case BinOpInst::Op::Mul:
        return L * R;
      case BinOpInst::Op::SDiv:
        if (L.isConst() && R.isConst() && R.getConst() != 0)
          return SymExpr::constant(L.getConst() / R.getConst());
        return SymExpr::unknown();
      case BinOpInst::Op::SRem:
        if (L.isConst() && R.isConst() && R.getConst() != 0)
          return SymExpr::constant(L.getConst() % R.getConst());
        return SymExpr::unknown();
      case BinOpInst::Op::Shl:
        if (L.isConst() && R.isConst() && R.getConst() >= 0 &&
            R.getConst() < 63)
          return SymExpr::constant(L.getConst() << R.getConst());
        return SymExpr::unknown();
      default:
        return SymExpr::unknown();
      }
    }
    if (isa<Argument>(V) || isa<PhiInst>(V) || isa<CallInst>(V) ||
        isa<SelectInst>(V)) {
      auto It = frame().IntEnv.find(V);
      if (It != frame().IntEnv.end())
        return It->second;
      if (const auto *A = dyn_cast<Argument>(V))
        return SymExpr::symbol(A->getParent()->getName() + ":" +
                               (A->hasName() ? A->getName()
                                             : "arg" +
                                                   std::to_string(
                                                       A->getArgNo())));
      return SymExpr::unknown();
    }
    return SymExpr::unknown();
  }

  int resolveUnit(const Value *V) {
    const Value *Root = stripPointerRoot(V);
    if (isa<ConstantNull>(Root))
      return NullUnit;
    if (const auto *GV = dyn_cast<GlobalVariable>(Root)) {
      auto It = GlobalUnits.find(GV);
      return It != GlobalUnits.end() ? It->second : UnknownUnit;
    }
    auto It = frame().PtrEnv.find(Root);
    if (It != frame().PtrEnv.end())
      return It->second;
    return UnknownUnit;
  }

  /// Constant byte offset of \p Ptr from its root, or false. Array decay
  /// is a bitcast (offset 0); each gep steps by index * sizeof(stepped).
  bool constByteOffset(const Value *Ptr, int64_t &Off) {
    Off = 0;
    for (;;) {
      if (const auto *CI = dyn_cast<CastInst>(Ptr)) {
        if (CI->getOp() != CastInst::Op::Bitcast)
          return false;
        Ptr = CI->getValueOperand();
        continue;
      }
      if (const auto *GEP = dyn_cast<GEPInst>(Ptr)) {
        SymExpr Idx = evalInt(GEP->getIndexOperand());
        if (!Idx.isConst())
          return false;
        Off += Idx.getConst() * (int64_t)GEP->getSteppedType()->getSizeInBytes();
        Ptr = GEP->getPointerOperand();
        continue;
      }
      return true;
    }
  }

  //===------------------------------------------------------------------===//
  // Runtime transitions (CGCMRuntime.cpp mirrored, default config)
  //===------------------------------------------------------------------===//

  /// A management call on an erased unit (freed/reclaimed at refcount
  /// zero) is a provable abort: the runtime's pointer lookup fails.
  /// Returns false when the unit is dead and the event was consumed.
  bool checkAlive(int Id, const Event &Ev, bool Cond) {
    UnitState &U = Units[Id];
    if (U.Tracked)
      return true;
    if (!Cond && !U.Poisoned)
      diagnose(diag::StaticMapAfterFree, DiagSeverity::Error, Ev.I->getLoc(),
               "management call on allocation unit '" + Sites[U.Site].Key +
                   "' whose host memory was already freed and reclaimed "
                   "(the runtime aborts on unknown pointers)");
    U.Poisoned = true;
    return false;
  }

  void simMap(int Id, const Event &Ev, bool Forced = false) {
    UnitState &U = Units[Id];
    bool Cond = Ev.Conditional || Forced;
    if (!checkAlive(Id, Ev, Cond))
      return;
    if (U.Poisoned || Cond) {
      // Both-branch upper bound: charge the copy and the suppression.
      add(U.Site, CI_MapCalls, SymExpr::constant(1));
      add(U.Site, CI_BytesHtoD, U.Size);
      add(U.Site, CI_TransfersHtoD, SymExpr::constant(1));
      add(U.Site, CI_ReuseSuppressed, SymExpr::constant(1));
      inexact(U.Site);
      U.Stale = StaleAmbiguous;
      U.Poisoned = true;
      U.EverMapped = true;
      return;
    }
    if (U.HostDead) {
      if (!Ev.Conditional)
        diagnose(diag::StaticMapAfterFree, DiagSeverity::Error, Ev.I->getLoc(),
                 "map of allocation unit '" + Sites[U.Site].Key +
                     "' whose host memory was already freed (the runtime "
                     "aborts here)");
      // The runtime would abort; keep going with a poisoned unit so one
      // bug does not hide the rest of the program's findings.
      U.Poisoned = true;
      return;
    }
    add(U.Site, CI_MapCalls, SymExpr::constant(1));
    if (U.RefCount == 0) {
      add(U.Site, CI_BytesHtoD, U.Size);
      add(U.Site, CI_TransfersHtoD, SymExpr::constant(1));
      U.Stale = HostCurrent;
    } else {
      add(U.Site, CI_ReuseSuppressed, SymExpr::constant(1));
    }
    ++U.RefCount;
    U.EverMapped = true;
  }

  void simUnmap(int Id, const Event &Ev, bool Forced = false) {
    UnitState &U = Units[Id];
    bool Cond = Ev.Conditional || Forced;
    if (!checkAlive(Id, Ev, Cond))
      return;
    if (U.Poisoned || Cond) {
      add(U.Site, CI_UnmapCalls, SymExpr::constant(1));
      add(U.Site, CI_BytesDtoH, U.Size);
      add(U.Site, CI_TransfersDtoH, SymExpr::constant(1));
      add(U.Site, CI_EpochSuppressed, SymExpr::constant(1));
      inexact(U.Site);
      if (Cond)
        U.Poisoned = true;
      U.Stale = StaleAmbiguous;
      return;
    }
    if (U.RefCount == 0)
      return; // Silent no-op; the runtime charges nothing.
    add(U.Site, CI_UnmapCalls, SymExpr::constant(1));
    bool CanCopy =
        !U.IsReadOnly && !U.HostDead && !U.MaybeHostDead && !U.IsPointerArray;
    if (U.MaybeHostDead && !U.IsReadOnly && !U.IsPointerArray) {
      // Maybe-dead: the copy-back may be skipped. Upper-bound both
      // counters.
      add(U.Site, CI_BytesDtoH, U.Size);
      add(U.Site, CI_TransfersDtoH, SymExpr::constant(1));
      if (U.Stale != HostStale)
        add(U.Site, CI_EpochSuppressed, SymExpr::constant(1));
      inexact(U.Site);
      U.Stale = HostCurrent;
      return;
    }
    if (CanCopy && U.Stale == HostStale) {
      add(U.Site, CI_BytesDtoH, U.Size);
      add(U.Site, CI_TransfersDtoH, SymExpr::constant(1));
      U.Stale = HostCurrent;
    } else if (CanCopy && U.Stale == HostCurrent) {
      add(U.Site, CI_EpochSuppressed, SymExpr::constant(1));
    } else if (CanCopy && U.Stale == StaleAmbiguous) {
      // Either the copy or the suppression happened; afterwards the
      // host copy is current either way.
      add(U.Site, CI_BytesDtoH, U.Size);
      add(U.Site, CI_TransfersDtoH, SymExpr::constant(1));
      add(U.Site, CI_EpochSuppressed, SymExpr::constant(1));
      inexact(U.Site);
      U.Stale = HostCurrent;
    }
  }

  void simRelease(int Id, const Event &Ev, bool Forced = false) {
    UnitState &U = Units[Id];
    bool Cond = Ev.Conditional || Forced;
    if (!checkAlive(Id, Ev, Cond))
      return;
    if (U.Poisoned || Cond) {
      add(U.Site, CI_ReleaseCalls, SymExpr::constant(1));
      inexact(U.Site);
      if (Cond)
        U.Poisoned = true;
      return;
    }
    if (U.RefCount == 0) {
      diagnose(diag::StaticReleaseUnderflow, DiagSeverity::Error,
               Ev.I->getLoc(),
               "release of allocation unit '" + Sites[U.Site].Key +
                   "' whose reference count is zero (the runtime aborts "
                   "here)");
      U.Poisoned = true;
      return;
    }
    add(U.Site, CI_ReleaseCalls, SymExpr::constant(1));
    --U.RefCount;
    if (U.RefCount == 0 && !U.IsGlobal) {
      U.IsPointerArray = false;
      U.Snapshots.clear();
      if (U.HostDead)
        U.Tracked = false;
    }
  }

  void simMapArray(int Id, const Event &Ev) {
    if (!checkAlive(Id, Ev, Ev.Conditional))
      return;
    UnitState &U = Units[Id];
    if (U.HostDead && !U.Poisoned && !Ev.Conditional)
      diagnose(diag::StaticMapAfterFree, DiagSeverity::Error, Ev.I->getLoc(),
               "mapArray of allocation unit '" + Sites[U.Site].Key +
                   "' whose host memory was already freed (the runtime "
                   "aborts here)");
    bool Cond = Ev.Conditional || U.Poisoned || U.HostDead;
    // Elements first, in ascending slot order, exactly like the runtime's
    // slot walk. Unknown slot contents make the element accounting — and
    // this table's pairing — untrackable.
    std::vector<int> Snapshot;
    if (U.SlotsUnknown) {
      unresolved(Ev.I->getLoc(), "the element pointers of pointer array '" +
                                     Sites[U.Site].Key + "'");
      inexact(U.Site);
    } else {
      for (const auto &[Slot, Elem] : Units[Id].Slots) {
        (void)Slot;
        if (Elem == NullUnit)
          continue;
        if (Elem == UnknownUnit || Elem < 0) {
          unresolved(Ev.I->getLoc(), "an element pointer of pointer array '" +
                                         Sites[U.Site].Key + "'");
          continue;
        }
        simMap(Elem, Ev, /*Forced=*/Cond);
        Snapshot.push_back(Elem);
      }
    }
    UnitState &T = Units[Id]; // Re-fetch: simMap may have grown nothing,
                              // but keep the idiom safe for future edits.
    if (T.Poisoned || Cond) {
      add(T.Site, CI_MapCalls, SymExpr::constant(1));
      add(T.Site, CI_BytesHtoD, T.Size);
      add(T.Site, CI_TransfersHtoD, SymExpr::constant(1));
      add(T.Site, CI_ReuseSuppressed, SymExpr::constant(1));
      inexact(T.Site);
      T.Poisoned = true;
      T.Stale = StaleAmbiguous;
      T.EverMapped = true;
      T.EverMapArrayed = true;
      T.IsPointerArray = true;
      T.Snapshots.push_back(std::move(Snapshot));
      return;
    }
    add(T.Site, CI_MapCalls, SymExpr::constant(1));
    bool FirstMap = T.RefCount == 0;
    if (FirstMap) {
      T.Stale = HostCurrent;
      add(T.Site, CI_BytesHtoD, T.Size);
      add(T.Site, CI_TransfersHtoD, SymExpr::constant(1));
    } else {
      add(T.Site, CI_ReuseSuppressed, SymExpr::constant(1));
    }
    T.IsPointerArray = true;
    T.EverMapped = true;
    T.EverMapArrayed = true;
    T.Snapshots.push_back(std::move(Snapshot));
    ++T.RefCount;
  }

  void simUnmapArray(int Id, const Event &Ev) {
    if (!checkAlive(Id, Ev, Ev.Conditional))
      return;
    UnitState &U = Units[Id];
    if (!U.Poisoned && !Ev.Conditional && U.RefCount == 0)
      return; // No-op, exactly like scalar unmap at refcount zero.
    add(U.Site, CI_UnmapCalls, SymExpr::constant(1));
    if (Ev.Conditional || U.Poisoned)
      inexact(U.Site);
    std::vector<int> Elems;
    if (!Units[Id].Snapshots.empty())
      Elems = Units[Id].Snapshots.back();
    else
      for (const auto &[Slot, Elem] : Units[Id].Slots) {
        (void)Slot;
        if (Elem >= 0)
          Elems.push_back(Elem);
      }
    for (int Elem : Elems) {
      if (Elem < 0 || !Units[Elem].Tracked)
        continue; // Vanished element; the runtime tolerates it too.
      simUnmap(Elem, Ev, /*Forced=*/Ev.Conditional || Units[Id].Poisoned);
    }
  }

  void simReleaseArray(int Id, const Event &Ev) {
    if (!checkAlive(Id, Ev, Ev.Conditional))
      return;
    UnitState &U = Units[Id];
    if (!U.Poisoned && !Ev.Conditional && U.RefCount == 0) {
      diagnose(diag::StaticReleaseUnderflow, DiagSeverity::Error,
               Ev.I->getLoc(),
               "releaseArray of allocation unit '" + Sites[U.Site].Key +
                   "' whose reference count is zero (the runtime aborts "
                   "here)");
      U.Poisoned = true;
      return;
    }
    bool Forced = Ev.Conditional || U.Poisoned;
    std::vector<int> Elems;
    if (!Units[Id].Snapshots.empty()) {
      Elems = Units[Id].Snapshots.back();
      Units[Id].Snapshots.pop_back();
    } else {
      for (const auto &[Slot, Elem] : Units[Id].Slots) {
        (void)Slot;
        if (Elem >= 0)
          Elems.push_back(Elem);
      }
    }
    for (int Elem : Elems) {
      if (Elem < 0 || !Units[Elem].Tracked)
        continue;
      simRelease(Elem, Ev, Forced);
    }
    simRelease(Id, Ev, Forced);
  }

  void simLaunch(const Event &Ev) {
    add(GlobalSite, CI_Units /*unused slot for launches*/,
        SymExpr::constant(1));
    for (UnitState &U : Units) {
      // Pending free/realloc hazards fire even for units the runtime has
      // already reclaimed: the hazard is about the freed range being
      // handed out again while kernels keep running, so erasure does not
      // retire it.
      if (U.PendingFreeLoc.isValid()) {
        diagnose(diag::StaticFreeBetweenLaunches, DiagSeverity::Warning,
                 U.PendingFreeLoc,
                 "allocation unit '" + Sites[U.Site].Key +
                     "' is freed after feeding a kernel while later kernel "
                     "launches follow; the runtime must keep a host-dead "
                     "zombie to resolve its remaining unmap/release calls");
        U.PendingFreeLoc = SourceLoc::none();
      }
      if (U.PendingReallocLoc.isValid()) {
        diagnose(diag::StaticReallocBetweenLaunches, DiagSeverity::Warning,
                 U.PendingReallocLoc,
                 "allocation unit '" + Sites[U.Site].Key +
                     "' is reallocated after feeding a kernel while later "
                     "kernel launches follow; device-side updates must be "
                     "salvaged into the new block");
        U.PendingReallocLoc = SourceLoc::none();
      }
      if (!U.Tracked)
        continue;
      if (Ev.Conditional) {
        // The epoch may or may not have advanced.
        if (U.Stale == HostCurrent)
          U.Stale = StaleAmbiguous;
      } else if (U.Stale != HostStale) {
        // A launch makes even an ambiguous host copy definitely stale.
        U.Stale = HostStale;
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Event dispatch
  //===------------------------------------------------------------------===//

  void simulateSeq(const EventSeq &Seq) {
    for (const Event &Ev : Seq.Events)
      simulateEvent(Ev);
  }

  void simulateEvent(const Event &Ev) {
    ++Report.SimulatedEvents;
    switch (Ev.K) {
    case EvKind::Loop:
      simulateLoop(Ev);
      return;
    case EvKind::Launch:
      simLaunch(Ev);
      return;
    case EvKind::Call:
      simulateCall(Ev);
      return;
    case EvKind::StoreSlot:
      simStoreSlot(cast<StoreInst>(Ev.I), Ev);
      return;
    default:
      break;
    }

    const auto *CI = cast<CallInst>(Ev.I);
    switch (Ev.K) {
    case EvKind::DeclareGlobal: {
      // cgcm_declare_global(name, ptr, size, readonly); ptr is the
      // global (through a bitcast).
      const auto *GV =
          dyn_cast<GlobalVariable>(stripPointerRoot(CI->getArg(1)));
      if (!GV) {
        unresolved(CI->getLoc(), "a cgcm_declare_global operand");
        return;
      }
      SymExpr RO = evalInt(CI->getArg(3));
      int Id = newUnit(siteFor("global " + GV->getName(), SourceLoc::none()),
                       evalInt(CI->getArg(2)), /*IsGlobal=*/true,
                       RO.isConst() ? RO.getConst() != 0 : GV->isConstant(),
                       Ev.Conditional);
      GlobalUnits[GV] = Id;
      return;
    }
    case EvKind::DeclareAlloca: {
      SourceLoc Loc = CI->getLoc();
      int Site = siteFor(
          Loc.isValid() ? "alloca@" + Loc.getString() : "alloca@<unknown>",
          Loc);
      int Id = newUnit(Site, evalInt(CI->getArg(1)), false, false,
                       Ev.Conditional);
      frame().PtrEnv[stripPointerRoot(CI->getArg(0))] = Id;
      frame().DeclaredAllocas.push_back(Id);
      return;
    }
    case EvKind::HeapAlloc: {
      SourceLoc Loc = CI->getLoc();
      SymExpr Size = evalInt(CI->getArg(0));
      if (CI->getCallee()->getName() == "calloc")
        Size = Size * evalInt(CI->getArg(1));
      int Site = siteFor(
          Loc.isValid() ? "heap@" + Loc.getString() : "heap@<unknown>", Loc);
      int Id = newUnit(Site, Size, false, false, Ev.Conditional);
      frame().PtrEnv[CI] = Id;
      return;
    }
    case EvKind::HeapRealloc:
      simHeapRealloc(CI, Ev);
      return;
    case EvKind::HeapFree: {
      int Id = resolveUnit(CI->getArg(0));
      if (Id == NullUnit)
        return; // free(NULL) never reaches the runtime hook.
      if (Id == UnknownUnit) {
        unresolved(CI->getLoc(), "the operand of a free call");
        return;
      }
      UnitState &U = Units[Id];
      if (U.EverMapped)
        U.PendingFreeLoc = CI->getLoc();
      if (Ev.Conditional || U.Poisoned) {
        U.MaybeHostDead = true;
        U.Poisoned = true;
        inexact(U.Site);
        return;
      }
      if (U.RefCount > 0)
        U.HostDead = true; // Deferred reclamation (zombie).
      else
        U.Tracked = false;
      return;
    }
    case EvKind::Map:
    case EvKind::Unmap:
    case EvKind::Release:
    case EvKind::MapArray:
    case EvKind::UnmapArray:
    case EvKind::ReleaseArray: {
      int Id = resolveUnit(CI->getArg(0));
      if (Id == NullUnit || Id == UnknownUnit) {
        unresolved(CI->getLoc(),
                   std::string("the operand of a ") +
                       CI->getCallee()->getName() + " call");
        return;
      }
      recordMapClass(Ev, Units[Id].Site);
      switch (Ev.K) {
      case EvKind::Map:
        simMap(Id, Ev);
        return;
      case EvKind::Unmap:
        simUnmap(Id, Ev);
        return;
      case EvKind::Release:
        simRelease(Id, Ev);
        return;
      case EvKind::MapArray:
        simMapArray(Id, Ev);
        return;
      case EvKind::UnmapArray:
        simUnmapArray(Id, Ev);
        return;
      case EvKind::ReleaseArray:
        simReleaseArray(Id, Ev);
        return;
      default:
        return;
      }
    }
    default:
      return;
    }
  }

  void recordMapClass(const Event &Ev, int Site) {
    if (Ev.K == EvKind::Map || Ev.K == EvKind::MapArray)
      Sites[Site].MapClasses.insert(Ev.Class);
  }

  void simHeapRealloc(const CallInst *CI, const Event &Ev) {
    int OldId = resolveUnit(CI->getArg(0));
    SymExpr NewSize = evalInt(CI->getArg(1));
    SourceLoc Loc = CI->getLoc();
    if (OldId == UnknownUnit)
      unresolved(Loc, "the operand of a realloc call");
    if (OldId >= 0) {
      UnitState &Old = Units[OldId];
      if (Old.EverMapped)
        Old.PendingReallocLoc = Loc;
      bool Forced = Ev.Conditional || Old.Poisoned;
      if (Old.RefCount > 0 || (Forced && Old.EverMapped)) {
        // Salvage: device bytes flow back into the new block, charged to
        // the OLD unit's site.
        SymExpr Salvage =
            Old.Size.isConst() && NewSize.isConst()
                ? SymExpr::constant(
                      std::min(Old.Size.getConst(), NewSize.getConst()))
                : SymExpr::unknown();
        bool SalvageKnownZero = Salvage.isConst(0);
        bool CanSalvage = !Old.IsReadOnly && !Old.IsPointerArray &&
                          !SalvageKnownZero;
        if (CanSalvage && (Forced || Old.Stale != HostCurrent)) {
          add(Old.Site, CI_BytesDtoH, Salvage);
          add(Old.Site, CI_TransfersDtoH, SymExpr::constant(1));
          if (Forced || Old.Stale == StaleAmbiguous)
            inexact(Old.Site);
        }
        if (Forced) {
          Old.MaybeHostDead = true;
          Old.Poisoned = true;
          inexact(Old.Site);
        } else {
          Old.HostDead = true;
        }
      } else if (!Forced) {
        Old.Tracked = false;
      } else {
        Old.MaybeHostDead = true;
        Old.Poisoned = true;
        inexact(Old.Site);
      }
    }
    int Site =
        siteFor(Loc.isValid() ? "heap@" + Loc.getString() : "heap@<unknown>",
                Loc);
    int Id = newUnit(Site, NewSize, false, false, Ev.Conditional);
    frame().PtrEnv[CI] = Id;
  }

  void simStoreSlot(const StoreInst *SI, const Event &Ev) {
    int Target = resolveUnit(SI->getPointerOperand());
    if (Target < 0)
      return; // Pointer store outside any tracked table.
    UnitState &T = Units[Target];
    int64_t Off = 0;
    bool KnownOff = constByteOffset(SI->getPointerOperand(), Off);
    int Val = resolveUnit(SI->getValueOperand());
    if (T.EverMapArrayed)
      diagnose(diag::StaticStaleSnapshot, DiagSeverity::Warning, SI->getLoc(),
               "pointer slot of array '" + Sites[T.Site].Key +
                   "' is retargeted after the array fed a kernel; the "
                   "runtime's map-generation snapshots must pair the "
                   "originally-mapped element, not the new occupant");
    if (!KnownOff || Ev.Conditional) {
      T.SlotsUnknown = true;
      return;
    }
    T.Slots[Off / 8] = Val;
  }

  void simulateCall(const Event &Ev) {
    const auto *CI = cast<CallInst>(Ev.I);
    auto It = Model.Functions.find(Ev.Callee);
    if (It == Model.Functions.end() || It->second->Recursive ||
        CallDepth > 64) {
      unresolved(CI->getLoc(), "a call to '" + Ev.Callee->getName() + "'" +
                                   (It != Model.Functions.end() &&
                                            It->second->Recursive
                                        ? " (recursive)"
                                        : ""));
      return;
    }
    const FunctionModel &FM = *It->second;
    Frame Callee;
    Callee.F = Ev.Callee;
    for (unsigned I = 0;
         I != std::min(CI->getNumArgs(), Ev.Callee->getNumArgs()); ++I) {
      Argument *A = Ev.Callee->getArg(I);
      if (A->getType()->isPointerTy())
        Callee.PtrEnv[A] = resolveUnit(CI->getArg(I));
      else
        Callee.IntEnv[A] = evalInt(CI->getArg(I));
    }
    // Conditional calls poison everything they touch; simplest sound
    // treatment is to force-poison the units reachable through the
    // arguments and simulate the body as conditional would — but event
    // conditionality is per-block inside the callee. Approximate by
    // poisoning pointer arguments' units up front.
    if (Ev.Conditional)
      for (auto &[V, Id] : Callee.PtrEnv) {
        (void)V;
        if (Id >= 0) {
          Units[Id].Poisoned = true;
          inexact(Units[Id].Site);
        }
      }
    ++CallDepth;
    Frames.push_back(std::move(Callee));
    simulateSeq(FM.Body);
    // Single-return functions propagate their result.
    const Value *RetVal = nullptr;
    unsigned NumRets = 0;
    for (BasicBlock *BB : FM.DT->getReversePostOrder())
      if (auto *R = dyn_cast_or_null<RetInst>(BB->getTerminator())) {
        ++NumRets;
        RetVal = R->getReturnValue();
      }
    int RetUnit = UnknownUnit;
    SymExpr RetInt = SymExpr::unknown();
    if (NumRets == 1 && RetVal) {
      if (RetVal->getType()->isPointerTy())
        RetUnit = resolveUnit(RetVal);
      else
        RetInt = evalInt(RetVal);
    }
    // Expire this activation's alloca registrations (interpreter frame
    // pop -> removeAlloca; no ledger counters either way).
    for (int Id : frame().DeclaredAllocas)
      Units[Id].Tracked = false;
    Frames.pop_back();
    --CallDepth;
    if (CI->getType()->isPointerTy())
      frame().PtrEnv[CI] = RetUnit;
    else
      frame().IntEnv[CI] = RetInt;
  }

  //===------------------------------------------------------------------===//
  // Loops
  //===------------------------------------------------------------------===//

  static bool seqHasEvents(const EventSeq &Seq) {
    for (const Event &Ev : Seq.Events) {
      if (Ev.K != EvKind::Loop)
        return true;
      if (Ev.Body && seqHasEvents(*Ev.Body))
        return true;
    }
    return false;
  }

  /// Constant trip count for a canonical loop, or -1.
  static int64_t constTrip(int64_t Init, int64_t Bound, int64_t Step,
                           CmpInst::Predicate Pred) {
    auto CeilDiv = [](int64_t A, int64_t B) { return (A + B - 1) / B; };
    switch (Pred) {
    case CmpInst::Predicate::SLT:
      return Step > 0 ? std::max<int64_t>(0, CeilDiv(Bound - Init, Step)) : -1;
    case CmpInst::Predicate::SLE:
      return Step > 0 ? std::max<int64_t>(0, (Bound - Init) / Step + 1) : -1;
    case CmpInst::Predicate::SGT:
      return Step < 0 ? std::max<int64_t>(0, CeilDiv(Init - Bound, -Step))
                      : -1;
    case CmpInst::Predicate::SGE:
      return Step < 0 ? std::max<int64_t>(0, (Init - Bound) / (-Step) + 1)
                      : -1;
    case CmpInst::Predicate::NE:
      if (Step != 0 && (Bound - Init) % Step == 0 &&
          (Bound - Init) / Step >= 0)
        return (Bound - Init) / Step;
      return -1;
    default:
      return -1;
    }
  }

  /// Symbolic trip count; Unknown when the shape is not affine-simple.
  SymExpr symTrip(const SymExpr &Init, const SymExpr &Bound, int64_t Step,
                  CmpInst::Predicate Pred) {
    if (Init.isUnknown() || Bound.isUnknown())
      return SymExpr::unknown();
    if (Step == 1 && Pred == CmpInst::Predicate::SLT)
      return Bound - Init;
    if (Step == 1 && Pred == CmpInst::Predicate::SLE)
      return Bound - Init + SymExpr::constant(1);
    if (Step == -1 && Pred == CmpInst::Predicate::SGT)
      return Init - Bound;
    if (Step == -1 && Pred == CmpInst::Predicate::SGE)
      return Init - Bound + SymExpr::constant(1);
    return SymExpr::unknown();
  }

  /// Signature of the mutable state a loop iteration can change — unit
  /// states, slots, snapshots, and the loop's pointer-phi bindings. The
  /// induction variable is deliberately excluded (it always changes);
  /// iteration-dependence shows up as a delta mismatch instead.
  std::string stateSignature(const Event &LoopEv) {
    std::ostringstream SS;
    for (const UnitState &U : Units) {
      if (!U.Tracked)
        continue;
      SS << U.Id << ':' << U.RefCount << ',' << U.Stale << ','
         << U.HostDead << U.MaybeHostDead << U.IsPointerArray << U.Poisoned
         << U.EverMapped << U.EverMapArrayed << U.SlotsUnknown << ','
         << U.PendingFreeLoc.isValid() << U.PendingReallocLoc.isValid()
         << ";s";
      for (const auto &Snap : U.Snapshots) {
        for (int E : Snap)
          SS << E << '.';
        SS << '|';
      }
      SS << ";l";
      for (const auto &[K, V] : U.Slots)
        SS << K << '=' << V << '.';
      SS << '\n';
    }
    SS << "phi:";
    for (const auto &CP : LoopEv.CarriedPtrs) {
      auto It = frame().PtrEnv.find(CP.Phi);
      SS << (It == frame().PtrEnv.end() ? UnknownUnit : It->second) << ',';
    }
    return SS.str();
  }

  void simulateLoop(const Event &Ev) {
    if (!Ev.Body || !seqHasEvents(*Ev.Body))
      return; // Pure compute; nothing the ledger can see.

    // Bind loop-carried pointer phis to their entry values and the
    // induction variable to its start.
    for (const auto &CP : Ev.CarriedPtrs)
      frame().PtrEnv[CP.Phi] =
          CP.Init ? resolveUnit(CP.Init) : UnknownUnit;
    SymExpr IVVal;
    bool HaveIV = Ev.Trip.Valid && Ev.Trip.IV;
    if (HaveIV) {
      IVVal = evalInt(Ev.Trip.Init);
      frame().IntEnv[Ev.Trip.IV] = IVVal;
    }

    SymExpr Trip = SymExpr::unknown();
    int64_t N = -1;
    if (Ev.Trip.Valid) {
      SymExpr Init = evalInt(Ev.Trip.Init), Bound = evalInt(Ev.Trip.Bound);
      if (Init.isConst() && Bound.isConst())
        N = constTrip(Init.getConst(), Bound.getConst(), Ev.Trip.Step,
                      Ev.Trip.Pred);
      if (N < 0)
        Trip = symTrip(Init, Bound, Ev.Trip.Step, Ev.Trip.Pred);
      else
        Trip = SymExpr::constant(N);
    }
    bool ConstN = N >= 0;
    bool Approximate = !ConstN || Ev.Conditional;
    if (ConstN && N == 0 && !Ev.Conditional)
      return;

    int64_t Budget = ConstN ? std::min(N, IterCap) : SymbolicProbe;
    Accumulator PrevDelta;
    std::string PrevSig;
    bool HavePrev = false;
    int64_t Done = 0;
    bool Steady = false;

    for (int64_t K = 0; K != Budget; ++K) {
      Accums.push_back({});
      simulateSeq(*Ev.Body);
      Accumulator Delta = std::move(Accums.back());
      Accums.pop_back();

      // Advance loop-carried state for the next iteration: all phi
      // updates read this iteration's bindings before any commit.
      std::vector<std::pair<const Value *, int>> NewPtrs;
      for (const auto &CP : Ev.CarriedPtrs)
        NewPtrs.push_back(
            {CP.Phi, CP.Next ? resolveUnit(CP.Next) : UnknownUnit});
      for (const auto &[Phi, Id] : NewPtrs)
        frame().PtrEnv[Phi] = Id;
      if (HaveIV) {
        IVVal += SymExpr::constant(Ev.Trip.Step);
        frame().IntEnv[Ev.Trip.IV] = IVVal;
      }

      ++Done;
      std::string Sig = stateSignature(Ev);
      Accums.back().addScaled(Delta, SymExpr::constant(1));
      if (HavePrev && Sig == PrevSig && Delta.equals(PrevDelta)) {
        Steady = true;
        // Iterations beyond `Done` repeat this exact delta with an
        // identical post-state: fold them in closed form.
        SymExpr Remaining = ConstN
                                ? SymExpr::constant(N - Done)
                                : (Trip.isUnknown()
                                       ? SymExpr::unknown()
                                       : Trip - SymExpr::constant(Done));
        if (!Remaining.isConst(0))
          Accums.back().addScaled(Delta, Remaining);
        if (!ConstN)
          for (const auto &[KC, V] : Delta.Deltas) {
            (void)V;
            inexact(KC.first);
          }
        break;
      }
      PrevDelta = std::move(Delta);
      PrevSig = std::move(Sig);
      HavePrev = true;
    }

    if (!Steady && (!ConstN || Done < N)) {
      // Gave up: either a symbolic trip with no steady state within the
      // probe window, or a constant trip beyond the iteration cap. The
      // remaining iterations' effects are unbounded from here.
      unresolved(loopLoc(Ev), "a loop whose remaining iterations have no "
                              "steady per-iteration cost");
      poisonSeqUnits(*Ev.Body);
    } else if (Approximate) {
      // The loop ran a data-dependent (or conditional) number of times:
      // the post-loop unit states assumed at least `Done` iterations.
      poisonSeqUnits(*Ev.Body);
    }
  }

  SourceLoc loopLoc(const Event &Ev) {
    if (Ev.L && Ev.L->getHeader())
      for (const auto &I : *Ev.L->getHeader())
        if (I->hasLoc())
          return I->getLoc();
    return SourceLoc::none();
  }

  /// Marks every unit any event in \p Seq could have touched as poisoned
  /// (its future behaviour, and this loop's residual effect on it, are
  /// upper bounds only).
  void poisonSeqUnits(const EventSeq &Seq) {
    for (const Event &Ev : Seq.Events) {
      if (Ev.K == EvKind::Loop) {
        if (Ev.Body)
          poisonSeqUnits(*Ev.Body);
        continue;
      }
      if (Ev.K == EvKind::Launch) {
        for (UnitState &U : Units)
          if (U.Tracked && U.Stale == HostCurrent)
            U.Stale = StaleAmbiguous;
        continue;
      }
      if (Ev.K == EvKind::Call) {
        auto It = Model.Functions.find(Ev.Callee);
        if (It != Model.Functions.end() && !It->second->Recursive)
          poisonSeqUnits(It->second->Body);
        continue;
      }
      const Value *Ptr = nullptr;
      if (const auto *CI = dyn_cast_or_null<CallInst>(Ev.I)) {
        if (CI->getNumArgs() > 0)
          Ptr = CI->getArg(Ev.K == EvKind::DeclareGlobal ? 1 : 0);
      } else if (const auto *SI = dyn_cast_or_null<StoreInst>(Ev.I)) {
        Ptr = SI->getPointerOperand();
      }
      if (!Ptr)
        continue;
      int Id = resolveUnit(Ptr);
      if (Id >= 0) {
        Units[Id].Poisoned = true;
        inexact(Units[Id].Site);
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Report assembly
  //===------------------------------------------------------------------===//

  SymExpr counterOf(int Site, int Counter) {
    auto It = Accums.front().Deltas.find({Site, Counter});
    return It == Accums.front().Deltas.end() ? SymExpr() : It->second;
  }

  void buildReport() {
    for (int S = 0; S != (int)Sites.size(); ++S) {
      SitePrediction P;
      P.Site = Sites[S].Key;
      P.Loc = Sites[S].Loc;
      P.Exact = Sites[S].Exact && Report.Sound;
      P.Units = counterOf(S, CI_Units);
      P.BytesHtoD = counterOf(S, CI_BytesHtoD);
      P.BytesDtoH = counterOf(S, CI_BytesDtoH);
      P.TransfersHtoD = counterOf(S, CI_TransfersHtoD);
      P.TransfersDtoH = counterOf(S, CI_TransfersDtoH);
      P.EpochSuppressed = counterOf(S, CI_EpochSuppressed);
      P.ReuseSuppressed = counterOf(S, CI_ReuseSuppressed);
      P.MapCalls = counterOf(S, CI_MapCalls);
      P.UnmapCalls = counterOf(S, CI_UnmapCalls);
      P.ReleaseCalls = counterOf(S, CI_ReleaseCalls);
      const auto &Classes = Sites[S].MapClasses;
      if (Classes.count(SchedClass::Hoisted))
        P.Class = SchedClass::Hoisted;
      else if (Classes.size() == 1)
        P.Class = *Classes.begin();
      else if (Classes.size() > 1)
        P.Class = SchedClass::Mixed;
      if (!P.Exact)
        Report.Exact = false;
      Report.Sites.push_back(std::move(P));
    }
    std::sort(Report.Sites.begin(), Report.Sites.end(),
              [](const SitePrediction &A, const SitePrediction &B) {
                return A.Site < B.Site;
              });
    Report.KernelLaunches = counterOf(GlobalSite, CI_Units);
    Report.CallSites = Model.CallSites;
    if (!Report.Sound)
      Report.Exact = false;
    sortDiagnostics(Report.Diagnostics);
  }
};

CommCostReport Simulator::run() {
  const Function *Main = nullptr;
  for (const auto &[F, FM] : Model.Functions) {
    (void)FM;
    if (F->getName() == "main")
      Main = F;
  }
  if (!Main) {
    // Nothing runs; an empty module predicts an empty ledger, exactly.
    Report.CallSites = Model.CallSites;
    return std::move(Report);
  }
  Accums.push_back({});
  Frame Top;
  Top.F = Main;
  Frames.push_back(std::move(Top));
  simulateSeq(Model.Functions.at(Main)->Body);
  Frames.pop_back();
  buildReport();
  return std::move(Report);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

CommCostReport commcost::simulateCostModel(const CostModel &Model) {
  return Simulator(Model).run();
}

CommCostReport cgcm::runCommCostAnalysis(Module &M) {
  CostModel Model = buildCostModel(M);
  return simulateCostModel(Model);
}

void cgcm::sortDiagnostics(std::vector<Diagnostic> &Diags) {
  std::stable_sort(Diags.begin(), Diags.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Loc.Line != B.Loc.Line)
                       return A.Loc.Line < B.Loc.Line;
                     if (A.Loc.Col != B.Loc.Col)
                       return A.Loc.Col < B.Loc.Col;
                     if (A.ID != B.ID)
                       return A.ID < B.ID;
                     if (A.Severity != B.Severity)
                       return A.Severity < B.Severity;
                     if (A.Message != B.Message)
                       return A.Message < B.Message;
                     return A.FunctionName < B.FunctionName;
                   });
}

SymExpr CommCostReport::totalBytesHtoD() const {
  SymExpr T;
  for (const SitePrediction &P : Sites)
    T += P.BytesHtoD;
  return T;
}

SymExpr CommCostReport::totalBytesDtoH() const {
  SymExpr T;
  for (const SitePrediction &P : Sites)
    T += P.BytesDtoH;
  return T;
}

SymExpr CommCostReport::totalTransfersHtoD() const {
  SymExpr T;
  for (const SitePrediction &P : Sites)
    T += P.TransfersHtoD;
  return T;
}

SymExpr CommCostReport::totalTransfersDtoH() const {
  SymExpr T;
  for (const SitePrediction &P : Sites)
    T += P.TransfersDtoH;
  return T;
}

const SitePrediction *CommCostReport::findSite(const std::string &Site) const {
  for (const SitePrediction &P : Sites)
    if (P.Site == Site)
      return &P;
  return nullptr;
}

bool CommCostReport::hasDiagnostic(const std::string &ID) const {
  for (const Diagnostic &D : Diagnostics)
    if (D.ID == ID)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// JSON export (schema "cgcm-static-cost-v1")
//===----------------------------------------------------------------------===//

namespace {

const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Remark:
    return "remark";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "?";
}

/// Counters render as JSON numbers when constant, formula strings
/// otherwise ("8*n", "?").
void writeSym(JsonWriter &W, const char *Key, const SymExpr &E) {
  W.key(Key);
  if (E.isConst())
    W.number((int64_t)E.getConst());
  else
    W.string(E.getString());
}

} // namespace

void cgcm::writeStaticCostJson(std::ostream &OS, const CommCostReport &R,
                               const std::string &ModuleName) {
  JsonWriter W(OS);
  W.beginObject();
  W.key("schema").string("cgcm-static-cost-v1");
  W.key("module").string(ModuleName);
  W.key("sound").boolean(R.Sound);
  W.key("exact").boolean(R.Exact);
  writeSym(W, "kernel_launches", R.KernelLaunches);
  W.key("simulated_events").number((uint64_t)R.SimulatedEvents);

  W.key("sites").beginArray();
  for (const SitePrediction &P : R.Sites) {
    W.beginObject();
    W.key("site").string(P.Site);
    W.key("loc").string(P.Loc.isValid() ? P.Loc.getString() : "");
    W.key("class").string(getSchedClassName(P.Class));
    W.key("exact").boolean(P.Exact);
    writeSym(W, "units", P.Units);
    writeSym(W, "bytes_htod", P.BytesHtoD);
    writeSym(W, "bytes_dtoh", P.BytesDtoH);
    writeSym(W, "transfers_htod", P.TransfersHtoD);
    writeSym(W, "transfers_dtoh", P.TransfersDtoH);
    writeSym(W, "epoch_suppressed", P.EpochSuppressed);
    writeSym(W, "reuse_suppressed", P.ReuseSuppressed);
    writeSym(W, "map_calls", P.MapCalls);
    writeSym(W, "unmap_calls", P.UnmapCalls);
    writeSym(W, "release_calls", P.ReleaseCalls);
    W.endObject();
  }
  W.endArray();

  W.key("call_sites").beginArray();
  for (const CallSiteClass &C : R.CallSites) {
    W.beginObject();
    W.key("kind").string(C.Kind);
    W.key("loc").string(C.Loc.isValid() ? C.Loc.getString() : "");
    W.key("function").string(C.FunctionName);
    W.key("class").string(getSchedClassName(C.Class));
    W.key("loop_depth").number((uint64_t)C.LoopDepth);
    W.endObject();
  }
  W.endArray();

  W.key("diagnostics").beginArray();
  for (const Diagnostic &D : R.Diagnostics) {
    W.beginObject();
    W.key("id").string(D.ID);
    W.key("severity").string(severityName(D.Severity));
    W.key("loc").string(D.Loc.isValid() ? D.Loc.getString() : "");
    W.key("message").string(D.Message);
    W.key("function").string(D.FunctionName);
    W.endObject();
  }
  W.endArray();

  W.key("totals").beginObject();
  writeSym(W, "bytes_htod", R.totalBytesHtoD());
  writeSym(W, "bytes_dtoh", R.totalBytesDtoH());
  writeSym(W, "transfers_htod", R.totalTransfersHtoD());
  writeSym(W, "transfers_dtoh", R.totalTransfersDtoH());
  W.endObject();

  W.endObject();
  OS << "\n";
}
