//===- analysis/commcost/SymExpr.cpp - Symbolic expressions ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/commcost/SymExpr.h"

#include <algorithm>

using namespace cgcm;

namespace {

/// Canonical operand order: by rendered form, so structurally equal
/// expressions built in different orders compare equal.
void sortOps(std::vector<SymExpr> &Ops) {
  std::stable_sort(Ops.begin(), Ops.end(),
                   [](const SymExpr &A, const SymExpr &B) {
                     return A.getString() < B.getString();
                   });
}

} // namespace

SymExpr SymExpr::operator+(const SymExpr &O) const {
  if (isUnknown() || O.isUnknown())
    return unknown();
  if (isConst() && O.isConst())
    return constant(getConst() + O.getConst());
  if (isConst(0))
    return O;
  if (O.isConst(0))
    return *this;
  // Flatten nested sums and fold the constant tail.
  std::vector<SymExpr> Ops;
  int64_t C = 0;
  auto Absorb = [&](const SymExpr &E) {
    if (E.getKind() == Kind::Add) {
      for (const SymExpr &Sub : E.N->Ops) {
        if (Sub.isConst())
          C += Sub.getConst();
        else
          Ops.push_back(Sub);
      }
    } else if (E.isConst()) {
      C += E.getConst();
    } else {
      Ops.push_back(E);
    }
  };
  Absorb(*this);
  Absorb(O);
  if (C != 0)
    Ops.push_back(constant(C));
  if (Ops.size() == 1)
    return Ops.front();
  sortOps(Ops);
  auto N = std::make_shared<Node>();
  N->K = Kind::Add;
  N->Ops = std::move(Ops);
  return SymExpr(std::move(N));
}

SymExpr SymExpr::operator*(const SymExpr &O) const {
  if (isConst(0) || O.isConst(0))
    return constant(0);
  if (isUnknown() || O.isUnknown())
    return unknown();
  if (isConst() && O.isConst())
    return constant(getConst() * O.getConst());
  if (isConst(1))
    return O;
  if (O.isConst(1))
    return *this;
  std::vector<SymExpr> Ops;
  int64_t C = 1;
  auto Absorb = [&](const SymExpr &E) {
    if (E.getKind() == Kind::Mul) {
      for (const SymExpr &Sub : E.N->Ops) {
        if (Sub.isConst())
          C *= Sub.getConst();
        else
          Ops.push_back(Sub);
      }
    } else if (E.isConst()) {
      C *= E.getConst();
    } else {
      Ops.push_back(E);
    }
  };
  Absorb(*this);
  Absorb(O);
  if (C != 1)
    Ops.push_back(constant(C));
  if (Ops.size() == 1)
    return Ops.front();
  sortOps(Ops);
  auto N = std::make_shared<Node>();
  N->K = Kind::Mul;
  N->Ops = std::move(Ops);
  return SymExpr(std::move(N));
}

bool SymExpr::equals(const SymExpr &O) const {
  if (N == O.N)
    return true;
  if (N->K != O.N->K)
    return false;
  switch (N->K) {
  case Kind::Const:
    return N->C == O.N->C;
  case Kind::Sym:
    return N->Name == O.N->Name;
  case Kind::Unknown:
    return true;
  case Kind::Add:
  case Kind::Mul: {
    if (N->Ops.size() != O.N->Ops.size())
      return false;
    for (size_t I = 0; I != N->Ops.size(); ++I)
      if (!N->Ops[I].equals(O.N->Ops[I]))
        return false;
    return true;
  }
  }
  return false;
}

std::string SymExpr::getString() const {
  switch (N->K) {
  case Kind::Const:
    return std::to_string(N->C);
  case Kind::Sym:
    return N->Name;
  case Kind::Unknown:
    return "?";
  case Kind::Add: {
    std::string S;
    for (const SymExpr &E : N->Ops) {
      if (!S.empty())
        S += " + ";
      S += E.getString();
    }
    return S;
  }
  case Kind::Mul: {
    std::string S;
    for (const SymExpr &E : N->Ops) {
      if (!S.empty())
        S += "*";
      bool Paren = E.getKind() == Kind::Add;
      S += Paren ? "(" + E.getString() + ")" : E.getString();
    }
    return S;
  }
  }
  return "?";
}
