//===- analysis/commcost/SymExpr.h - Symbolic byte/count expressions --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small immutable symbolic expressions over 64-bit integers for the
/// static communication-cost analysis (docs/StaticAnalysis.md): transfer
/// volumes and call counts are sums of products of constants, symbolic
/// parameters (unknown trip counts, argument-dependent sizes), and an
/// absorbing Unknown. Construction folds constants eagerly, so a fully
/// constant program yields plain numbers and only genuinely symbolic
/// inputs keep a formula.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_ANALYSIS_COMMCOST_SYMEXPR_H
#define CGCM_ANALYSIS_COMMCOST_SYMEXPR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cgcm {

/// An immutable symbolic integer: constant, named symbol, n-ary sum or
/// product, or Unknown (absorbing: any arithmetic with Unknown is
/// Unknown). Value-semantic; copies share nodes.
class SymExpr {
public:
  enum class Kind { Const, Sym, Add, Mul, Unknown };

  /// Default: the constant 0.
  SymExpr() : SymExpr(makeConst(0)) {}

  static SymExpr constant(int64_t K) { return SymExpr(makeConst(K)); }
  static SymExpr symbol(const std::string &Name) {
    auto N = std::make_shared<Node>();
    N->K = Kind::Sym;
    N->Name = Name;
    return SymExpr(std::move(N));
  }
  static SymExpr unknown() {
    auto N = std::make_shared<Node>();
    N->K = Kind::Unknown;
    return SymExpr(std::move(N));
  }

  Kind getKind() const { return N->K; }
  bool isConst() const { return N->K == Kind::Const; }
  bool isConst(int64_t K) const { return isConst() && N->C == K; }
  bool isUnknown() const { return N->K == Kind::Unknown; }
  int64_t getConst() const { return N->C; }

  SymExpr operator+(const SymExpr &O) const;
  SymExpr operator*(const SymExpr &O) const;
  SymExpr operator-(const SymExpr &O) const {
    return *this + O * constant(-1);
  }
  SymExpr &operator+=(const SymExpr &O) { return *this = *this + O; }

  /// Structural equality (constants by value; sums/products compare
  /// operand lists in canonical order).
  bool equals(const SymExpr &O) const;
  bool operator==(const SymExpr &O) const { return equals(O); }
  bool operator!=(const SymExpr &O) const { return !equals(O); }

  /// "4096", "8*n", "512 + 24*T", "?".
  std::string getString() const;

private:
  struct Node {
    Kind K = Kind::Const;
    int64_t C = 0;
    std::string Name;           ///< Sym only.
    std::vector<SymExpr> Ops;   ///< Add/Mul only.
  };

  explicit SymExpr(std::shared_ptr<const Node> N) : N(std::move(N)) {}

  static std::shared_ptr<const Node> makeConst(int64_t K) {
    auto N = std::make_shared<Node>();
    N->K = Kind::Const;
    N->C = K;
    return N;
  }

  std::shared_ptr<const Node> N;
};

} // namespace cgcm

#endif // CGCM_ANALYSIS_COMMCOST_SYMEXPR_H
