//===- exec/Decode.cpp - Function decoder for table dispatch ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes a Function into the dense DecodedInst form of exec/Decoded.h.
/// Two passes: the first sizes each basic block (a consecutive phi run
/// is one unit) to assign absolute code indices, the second emits
/// instructions with branch targets resolved against that map.
///
//===----------------------------------------------------------------------===//

#include "exec/Decoded.h"

#include "support/ErrorHandling.h"

#include <cassert>
#include <cstring>
#include <map>

using namespace cgcm;

namespace {

uint64_t fpBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  return Bits;
}

struct Decoder {
  Machine &M;
  const FunctionLayout &L;
  DecodedFunction &DF;
  std::map<const BasicBlock *, unsigned> Start;

  Decoder(Machine &M, const FunctionLayout &L, DecodedFunction &DF)
      : M(M), L(L), DF(DF) {}

  DecodedOperand operand(const Value *V) const {
    DecodedOperand Op;
    switch (V->getKind()) {
    case Value::ValueKind::ConstantInt:
      Op.Imm = static_cast<uint64_t>(cast<ConstantInt>(V)->getValue());
      return Op;
    case Value::ValueKind::ConstantFP:
      Op.Imm = fpBits(cast<ConstantFP>(V)->getValue());
      return Op;
    case Value::ValueKind::ConstantNull:
      return Op;
    case Value::ValueKind::GlobalVariable:
      Op.K = DecodedOperand::Kind::Global;
      Op.GV = cast<GlobalVariable>(V);
      return Op;
    default:
      Op.K = DecodedOperand::Kind::Slot;
      Op.Slot = L.Slots.at(V);
      return Op;
    }
  }

  static unsigned intWidth(const Type *Ty) {
    return cast<IntegerType>(Ty)->getBitWidth();
  }

  DecodedInst decodeOne(const Instruction *I) const {
    DecodedInst DI;
    DI.I = I;
    DI.KindIdx = static_cast<uint8_t>(
        static_cast<unsigned>(I->getKind()) -
        static_cast<unsigned>(Value::ValueKind::InstBegin));
    if (!I->getType()->isVoidTy())
      DI.Dest = L.Slots.at(I);

    switch (I->getKind()) {
    case Value::ValueKind::Alloca: {
      const auto *AI = cast<AllocaInst>(I);
      DI.Op = DOp::Alloca;
      DI.Step = AI->getAllocatedType()->getSizeInBytes();
      if (AI->hasArraySize())
        DI.A = operand(AI->getArraySize());
      else
        DI.A.Imm = 1;
      return DI;
    }
    case Value::ValueKind::Load: {
      const auto *LI = cast<LoadInst>(I);
      DI.Op = DOp::Load;
      DI.A = operand(LI->getPointerOperand());
      DI.Ty = LI->getType();
      return DI;
    }
    case Value::ValueKind::Store: {
      const auto *SI = cast<StoreInst>(I);
      DI.Op = DOp::Store;
      DI.A = operand(SI->getPointerOperand());
      DI.B = operand(SI->getValueOperand());
      DI.Ty = SI->getValueOperand()->getType();
      return DI;
    }
    case Value::ValueKind::GEP: {
      const auto *G = cast<GEPInst>(I);
      DI.Op = DOp::GEP;
      DI.A = operand(G->getPointerOperand());
      DI.B = operand(G->getIndexOperand());
      DI.Step = G->getSteppedType()->getSizeInBytes();
      return DI;
    }
    case Value::ValueKind::BinOp: {
      const auto *BO = cast<BinOpInst>(I);
      static const DOp Map[] = {
          DOp::BinAdd,  DOp::BinSub,  DOp::BinMul, DOp::BinSDiv,
          DOp::BinSRem, DOp::BinFAdd, DOp::BinFSub, DOp::BinFMul,
          DOp::BinFDiv, DOp::BinAnd,  DOp::BinOr,  DOp::BinXor,
          DOp::BinShl,  DOp::BinAShr, DOp::BinLShr};
      DI.Op = Map[static_cast<unsigned>(BO->getOp())];
      DI.A = operand(BO->getLHS());
      DI.B = operand(BO->getRHS());
      if (BO->isFloatingPointOp())
        DI.IsFloat = BO->getType()->isFloatTy();
      else
        DI.Width = intWidth(BO->getType());
      return DI;
    }
    case Value::ValueKind::Cmp: {
      const auto *C = cast<CmpInst>(I);
      // Pointer orderings decode to the unsigned forms; EQ/NE compare
      // raw bits either way.
      bool Ptr = C->getLHS()->getType()->isPointerTy();
      static const DOp SignedMap[] = {DOp::CmpEQ,  DOp::CmpNE,  DOp::CmpSLT,
                                      DOp::CmpSLE, DOp::CmpSGT, DOp::CmpSGE};
      static const DOp PtrMap[] = {DOp::CmpEQ,  DOp::CmpNE,  DOp::CmpULT,
                                   DOp::CmpULE, DOp::CmpUGT, DOp::CmpUGE};
      static const DOp FpMap[] = {DOp::CmpFOEQ, DOp::CmpFONE, DOp::CmpFOLT,
                                  DOp::CmpFOLE, DOp::CmpFOGT, DOp::CmpFOGE};
      unsigned P = static_cast<unsigned>(C->getPredicate());
      if (C->isFloatPredicate())
        DI.Op = FpMap[P - static_cast<unsigned>(CmpInst::Predicate::FOEQ)];
      else
        DI.Op = (Ptr ? PtrMap : SignedMap)[P];
      DI.A = operand(C->getLHS());
      DI.B = operand(C->getRHS());
      return DI;
    }
    case Value::ValueKind::Cast: {
      const auto *C = cast<CastInst>(I);
      DI.A = operand(C->getValueOperand());
      Type *From = C->getValueOperand()->getType();
      Type *To = C->getType();
      switch (C->getOp()) {
      case CastInst::Op::Trunc:
        DI.Op = DOp::CastTrunc;
        DI.Width = intWidth(To);
        break;
      case CastInst::Op::ZExt:
        DI.Op = DOp::CastZExt;
        DI.Width = intWidth(From);
        break;
      case CastInst::Op::SExt:
        DI.Op = DOp::CastSExt;
        DI.Width = intWidth(From);
        break;
      case CastInst::Op::FPToSI:
        DI.Op = DOp::CastFPToSI;
        DI.Width = intWidth(To);
        break;
      case CastInst::Op::SIToFP:
        DI.Op = DOp::CastSIToFP;
        DI.IsFloat = To->isFloatTy();
        break;
      case CastInst::Op::FPTrunc:
        DI.Op = DOp::CastFPTrunc;
        break;
      case CastInst::Op::FPExt:
      case CastInst::Op::Bitcast:
      case CastInst::Op::PtrToInt:
      case CastInst::Op::IntToPtr:
        // Registers already hold double bits / raw addresses.
        DI.Op = DOp::CastBit;
        break;
      }
      return DI;
    }
    case Value::ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      DI.Op = DOp::Select;
      DI.A = operand(S->getCondition());
      DI.B = operand(S->getTrueValue());
      DI.C = operand(S->getFalseValue());
      return DI;
    }
    case Value::ValueKind::Call: {
      const auto *CI = cast<CallInst>(I);
      DI.Op = DOp::Call;
      DI.Intr = M.getIntrinsic(CI->getCallee());
      DI.Extra.reserve(CI->getNumArgs());
      for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A)
        DI.Extra.push_back(operand(CI->getArg(A)));
      return DI;
    }
    case Value::ValueKind::KernelLaunch: {
      const auto *KL = cast<KernelLaunchInst>(I);
      DI.Op = DOp::KernelLaunch;
      DI.A = operand(KL->getGrid());
      DI.B = operand(KL->getBlock());
      DI.Extra.reserve(KL->getNumArgs());
      for (unsigned A = 0, E = KL->getNumArgs(); A != E; ++A)
        DI.Extra.push_back(operand(KL->getArg(A)));
      return DI;
    }
    case Value::ValueKind::Br: {
      const auto *Br = cast<BranchInst>(I);
      DI.SrcBB = I->getParent();
      if (Br->isConditional()) {
        DI.Op = DOp::CondBr;
        DI.A = operand(Br->getCondition());
        DI.Target0 = Start.at(Br->getSuccessor(0));
        DI.Target1 = Start.at(Br->getSuccessor(1));
      } else {
        DI.Op = DOp::Br;
        DI.Target0 = Start.at(Br->getSuccessor(0));
      }
      return DI;
    }
    case Value::ValueKind::Ret: {
      const auto *R = cast<RetInst>(I);
      if (R->hasReturnValue()) {
        DI.Op = DOp::Ret;
        DI.A = operand(R->getReturnValue());
      } else {
        DI.Op = DOp::RetVoid;
      }
      return DI;
    }
    default:
      CGCM_UNREACHABLE("unknown instruction kind in decoder");
    }
  }

  void run(const Function *F) {
    DF.F = F;
    // Pass 1: code index of every block, counting a phi run as one unit.
    unsigned N = 0;
    for (const auto &BB : *F) {
      Start[BB.get()] = N;
      for (auto It = BB->begin(), E = BB->end(); It != E; ++It) {
        if (isa<PhiInst>(It->get()))
          while (std::next(It) != E && isa<PhiInst>(std::next(It)->get()))
            ++It;
        ++N;
      }
    }
    // Pass 2: emit.
    DF.Code.reserve(N);
    for (const auto &BB : *F) {
      for (auto It = BB->begin(), E = BB->end(); It != E; ++It) {
        const Instruction *I = It->get();
        if (auto *P = dyn_cast<PhiInst>(I)) {
          DecodedInst DI;
          DI.Op = DOp::PhiGroup;
          DI.I = I;
          DI.KindIdx = static_cast<uint8_t>(
              static_cast<unsigned>(Value::ValueKind::Phi) -
              static_cast<unsigned>(Value::ValueKind::InstBegin));
          for (;;) {
            DecodedPhi DP;
            DP.Dest = L.Slots.at(P);
            DP.Incoming.reserve(P->getNumIncoming());
            for (unsigned K = 0, E2 = P->getNumIncoming(); K != E2; ++K)
              DP.Incoming.emplace_back(P->getIncomingBlock(K),
                                       operand(P->getIncomingValue(K)));
            DI.Phis.push_back(std::move(DP));
            if (std::next(It) == E || !isa<PhiInst>(std::next(It)->get()))
              break;
            ++It;
            P = cast<PhiInst>(It->get());
          }
          DF.Code.push_back(std::move(DI));
          continue;
        }
        DF.Code.push_back(decodeOne(I));
      }
    }
    assert(DF.Code.size() == N && "pass 1/2 disagree on code size");
  }
};

} // namespace

const DecodedFunction &Machine::getDecoded(const Function *F) {
  auto It = Decoded.find(F);
  if (It != Decoded.end())
    return *It->second;
  auto DF = std::make_unique<DecodedFunction>();
  Decoder(*this, getLayout(F), *DF).run(F);
  return *Decoded.emplace(F, std::move(DF)).first->second;
}
