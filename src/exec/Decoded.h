//===- exec/Decoded.h - Precomputed interpreter dispatch form ---------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's precomputed dispatch form. Decoding runs once per
/// function (cached on the Machine) and flattens every per-instruction
/// decision the tree-walking loop used to redo on each visit: operand
/// resolution (constant vs register slot vs module global), the nested
/// opcode/predicate/cast switches, branch-target block lookups, and the
/// intrinsic-by-name classification of calls. Execution then reduces to
/// an indexed handler call per DecodedInst.
///
/// The decoded form is observationally identical to the switch
/// interpreter by construction: one DecodedInst per charged operation
/// (a run of consecutive phis collapses to one PhiGroup, exactly as the
/// switch loop charges a phi group once), operands evaluate in the same
/// order, and only statically-resolvable facts are precomputed — module
/// globals stay symbolic because their address depends on the execution
/// context (host address vs per-device cuModuleGetGlobal).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_EXEC_DECODED_H
#define CGCM_EXEC_DECODED_H

#include "exec/Machine.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace cgcm {

/// Flattened opcode: the IR's kind/op/predicate/cast hierarchy unrolled
/// into one dense enum so dispatch is a single table index. Pointer
/// orderings decode to the unsigned compare forms (addresses compare
/// unsigned; integers signed); identity casts (fpext, bitcast,
/// ptrtoint, inttoptr) collapse to CastBit.
enum class DOp : uint8_t {
  Alloca,
  Load,
  Store,
  GEP,
  BinAdd,
  BinSub,
  BinMul,
  BinSDiv,
  BinSRem,
  BinAnd,
  BinOr,
  BinXor,
  BinShl,
  BinAShr,
  BinLShr,
  BinFAdd,
  BinFSub,
  BinFMul,
  BinFDiv,
  CmpEQ,
  CmpNE,
  CmpSLT,
  CmpSLE,
  CmpSGT,
  CmpSGE,
  CmpULT,
  CmpULE,
  CmpUGT,
  CmpUGE,
  CmpFOEQ,
  CmpFONE,
  CmpFOLT,
  CmpFOLE,
  CmpFOGT,
  CmpFOGE,
  CastTrunc,
  CastZExt,
  CastSExt,
  CastFPToSI,
  CastSIToFP,
  CastFPTrunc,
  CastBit,
  Select,
  Call,
  KernelLaunch,
  Br,
  CondBr,
  Ret,
  RetVoid,
  PhiGroup,
};

constexpr unsigned NumDOps = static_cast<unsigned>(DOp::PhiGroup) + 1;

/// One pre-resolved operand. Constants fold to their register image at
/// decode time (integers sign-extended, floats as double bits, null as
/// 0); SSA values become their frame slot; module globals stay symbolic
/// (their address is context-dependent).
struct DecodedOperand {
  enum class Kind : uint8_t { Imm, Slot, Global };
  Kind K = Kind::Imm;
  uint64_t Imm = 0;
  unsigned Slot = 0;
  const GlobalVariable *GV = nullptr;
};

/// One phi of a PhiGroup: destination slot plus the (predecessor ->
/// operand) incoming list, scanned against the dynamic predecessor in
/// declaration order (first match wins, like getIncomingValueFor).
struct DecodedPhi {
  unsigned Dest = 0;
  std::vector<std::pair<const BasicBlock *, DecodedOperand>> Incoming;
};

/// One executable unit: a single instruction, except that a run of
/// consecutive phis is one PhiGroup (preserving the switch loop's
/// one-charge-per-group accounting).
struct DecodedInst {
  DOp Op = DOp::RetVoid;
  /// Opcode-tally index (Value::ValueKind relative to InstBegin).
  uint8_t KindIdx = 0;
  /// Result rounds through float precision (FP binops, sitofp).
  bool IsFloat = false;
  /// Integer width driving sign-extension (binops: result type; casts:
  /// whichever side the op truncates/extends from).
  unsigned Width = 0;
  /// Destination frame slot; NoSlot when the result is void.
  static constexpr unsigned NoSlot = ~0u;
  unsigned Dest = NoSlot;
  DecodedOperand A, B, C;
  /// GEP: stepped-type size. Alloca: allocated-type size.
  uint64_t Step = 0;
  /// Load: result type. Store: value-operand type.
  Type *Ty = nullptr;
  /// The source instruction, for everything not worth flattening: fatal
  /// messages, source locations, call/launch callees.
  const Instruction *I = nullptr;
  /// Branch targets as absolute code indices (CondBr: taken, fallthrough).
  unsigned Target0 = 0;
  unsigned Target1 = 0;
  /// The block this branch leaves — the next block's dynamic predecessor.
  const BasicBlock *SrcBB = nullptr;
  /// Calls: the callee's intrinsic classification, resolved at decode.
  Machine::Intrinsic Intr = Machine::Intrinsic::None;
  /// Call / kernel-launch arguments.
  std::vector<DecodedOperand> Extra;
  /// PhiGroup members, in block order.
  std::vector<DecodedPhi> Phis;
};

/// A function decoded into straight-line code with absolute branch
/// targets. Block boundaries survive only as branch targets and the
/// SrcBB fields that keep phi resolution honest.
struct DecodedFunction {
  const Function *F = nullptr;
  std::vector<DecodedInst> Code;
};

} // namespace cgcm

#endif // CGCM_EXEC_DECODED_H
