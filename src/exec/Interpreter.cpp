//===- exec/Interpreter.cpp - IR interpreter ---------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "support/ErrorHandling.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace cgcm;

namespace {
// Cached once: MetricsRegistry instruments live for the whole process,
// so the pointers never dangle (reset() zeroes values only). The names
// track the instruction range of Value::ValueKind. The holder struct
// makes initialization a magic static — concurrent interpreter
// teardowns (the runtime server destroys one machine per session, on N
// threads) must not race the one-time lookup.
constexpr unsigned OpcodeKinds =
    static_cast<unsigned>(Value::ValueKind::InstEnd) -
    static_cast<unsigned>(Value::ValueKind::InstBegin) + 1;

struct InterpMetrics {
  MetricCounter *OpcodeCounters[OpcodeKinds];
  MetricCounter *FenceChecks;
  InterpMetrics() {
    static const char *const OpcodeNames[OpcodeKinds] = {
        "alloca", "load",   "store",         "gep", "binop",  "cmp",
        "cast",   "call",   "kernel_launch", "phi", "select", "br",
        "ret"};
    MetricsRegistry &R = MetricsRegistry::get();
    for (unsigned I = 0; I < OpcodeKinds; ++I)
      OpcodeCounters[I] =
          &R.counter(std::string("interp.op.") + OpcodeNames[I]);
    FenceChecks = &R.counter("interp.host_fence_checks");
  }
};
} // namespace

Interpreter::~Interpreter() {
  static InterpMetrics M;
  for (unsigned I = 0; I < NumOpcodeKinds; ++I)
    if (OpcodeCounts[I])
      M.OpcodeCounters[I]->inc(OpcodeCounts[I]);
  if (HostFenceChecks)
    M.FenceChecks->inc(HostFenceChecks);
}

namespace {

uint64_t signExtend(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return V;
  uint64_t Mask = (1ull << Bits) - 1;
  V &= Mask;
  if (V & (1ull << (Bits - 1)))
    V |= ~Mask;
  return V;
}

unsigned intWidth(const Type *Ty) {
  return cast<IntegerType>(Ty)->getBitWidth();
}

double bitsToDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, 8);
  return D;
}

uint64_t doubleToBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  return Bits;
}

} // namespace

struct Interpreter::Frame {
  std::vector<uint64_t> Slots;
  /// Host/device allocations made by allocas in this frame, freed on
  /// return (reverse order). Second member: was declareAlloca'd.
  std::vector<std::pair<uint64_t, bool>> Allocas;
};

SimMemory &Interpreter::memoryFor(uint64_t &Addr, bool IsWrite, uint64_t Size,
                                  ExecContext &Ctx) {
  bool Dev = isDeviceAddress(Addr);
  if (Ctx.DemandPage) {
    // DyManD-style demand paging (docs/Extensions.md): a GPU access to
    // host memory faults its allocation unit onto the device; a CPU
    // access to a demand-resident unit faults it back. Any pointer depth
    // works because translation happens at the access, not at the launch.
    if (Ctx.OnGPU && !Dev) {
      uint64_t Translated;
      if (!M.Runtime->translateToDevice(Addr, Translated)) {
        M.Stats.RuntimeCycles += M.TM.DemandFaultLatency;
        ++M.Stats.DemandFaults;
        if (M.Trace.isEnabled())
          M.Trace.instant("demand-fault", "runtime", M.Stats.totalCycles(),
                          TraceArgs().add("addr", Addr).add("dir", "to-gpu"));
        Translated = M.Runtime->map(Addr);
        const AllocUnitInfo *Info = M.Runtime->lookup(Addr);
        assert(Info && "mapped unit must be tracked");
        M.DemandResident.insert(Info->Base);
        // A demand fault is a synchronous round trip by definition: the
        // faulting thread cannot proceed until the data arrived.
        M.getStreamEngine().waitAll();
      }
      Addr = Translated;
      Dev = true;
    } else if (!Ctx.OnGPU && !Dev && !M.DemandResident.empty()) {
      if (const AllocUnitInfo *Info = M.Runtime->lookup(Addr)) {
        auto It = M.DemandResident.find(Info->Base);
        if (It != M.DemandResident.end()) {
          if (Info->RefCount > 0) {
            // Fault the unit back: copy-back (epoch permitting) + free.
            M.Stats.RuntimeCycles += M.TM.DemandFaultLatency;
            ++M.Stats.DemandFaults;
            if (M.Trace.isEnabled())
              M.Trace.instant("demand-fault", "runtime",
                              M.Stats.totalCycles(),
                              TraceArgs().add("addr", Addr).add("dir",
                                                                "to-cpu"));
            M.Runtime->unmap(Info->Base);
            M.Runtime->release(Info->Base);
            M.getStreamEngine().waitAll();
          }
          M.DemandResident.erase(It);
        }
      }
    }
  }
  if (!Ctx.OnGPU && !Dev) {
    // True host use point: if an in-flight asynchronous copy still owns
    // this range, the host blocks until it completes
    // (docs/TransferEngine.md). One empty-vector check when idle.
    for (unsigned D = 0, N = M.Pool.size(); D != N; ++D) {
      StreamEngine &Eng = M.Pool.device(D).getStreamEngine();
      if (Eng.hasPendingHostRanges()) {
        ++HostFenceChecks;
        Eng.hostAccess(Addr, Size, IsWrite);
      }
    }
    // A host write makes every peer-device replica of the unit stale;
    // the next sharded launch re-replicates (docs/MultiGPU.md). One
    // counter check while no replicas are live.
    if (IsWrite && M.Runtime->hasReplicas())
      M.Runtime->noteHostWrite(Addr);
  }
  if (!Ctx.OnGPU && Dev)
    reportFatalError("CPU code dereferenced a GPU pointer (address " +
                     std::to_string(Addr) +
                     "); a missing unmap would cause this in a real system");
  if (Ctx.OnGPU && !Dev && Ctx.EnforceSpace)
    reportFatalError(
        "GPU function dereferenced a CPU pointer (address " +
        std::to_string(Addr) +
        "); CPU-GPU communication was not managed for this value");
  SimMemory &Mem = Dev ? M.deviceMemoryFor(Addr) : M.Host;
  if (M.CheckedMemory && !Mem.isAccessible(Addr, Size))
    reportFatalError(Mem.getSpaceName() + ": access of " +
                     std::to_string(Size) + " bytes at " +
                     std::to_string(Addr) +
                     " is outside every live allocation unit");
  if (Ctx.AccessCount)
    ++*Ctx.AccessCount;
  if ((Ctx.ReadUnits && !IsWrite) || (Ctx.WriteUnits && IsWrite)) {
    uint64_t Base, USize;
    if (Mem.findAllocation(Addr, Base, USize)) {
      if (IsWrite)
        Ctx.WriteUnits->insert(Base);
      else
        Ctx.ReadUnits->insert(Base);
    }
  }
  return Mem;
}

uint64_t Interpreter::loadValue(uint64_t Addr, Type *Ty, ExecContext &Ctx) {
  SimMemory &Mem =
      memoryFor(Addr, /*IsWrite=*/false, Ty->getSizeInBytes(), Ctx);
  if (Ty->isFloatTy()) {
    float F;
    Mem.read(Addr, &F, 4);
    return doubleToBits(static_cast<double>(F));
  }
  if (Ty->isDoubleTy()) {
    uint64_t Bits;
    Mem.read(Addr, &Bits, 8);
    return Bits;
  }
  if (Ty->isPointerTy())
    return Mem.readUInt(Addr, 8);
  if (Ty->isIntegerTy()) {
    unsigned W = intWidth(Ty);
    uint64_t Raw = Mem.readUInt(Addr, Ty->getSizeInBytes());
    return W == 1 ? (Raw & 1) : signExtend(Raw, W);
  }
  reportFatalError("load of unsupported type " + Ty->getString());
}

void Interpreter::storeValue(uint64_t Addr, uint64_t Bits, Type *Ty,
                             ExecContext &Ctx) {
  SimMemory &Mem = memoryFor(Addr, /*IsWrite=*/true, Ty->getSizeInBytes(),
                             Ctx);
  if (Ty->isFloatTy()) {
    float F = static_cast<float>(bitsToDouble(Bits));
    Mem.write(Addr, &F, 4);
    return;
  }
  if (Ty->isDoubleTy() || Ty->isPointerTy()) {
    Mem.write(Addr, &Bits, 8);
    return;
  }
  if (Ty->isIntegerTy()) {
    Mem.writeUInt(Addr, Bits, Ty->getSizeInBytes());
    return;
  }
  reportFatalError("store of unsupported type " + Ty->getString());
}

uint64_t Interpreter::evalOperand(const Value *V, Frame &Fr,
                                  ExecContext &Ctx) {
  switch (V->getKind()) {
  case Value::ValueKind::ConstantInt:
    return static_cast<uint64_t>(cast<ConstantInt>(V)->getValue());
  case Value::ValueKind::ConstantFP:
    return doubleToBits(cast<ConstantFP>(V)->getValue());
  case Value::ValueKind::ConstantNull:
    return 0;
  case Value::ValueKind::GlobalVariable:
    return resolveGlobal(cast<GlobalVariable>(V), Ctx);
  default: {
    const FunctionLayout &L = M.getLayout(
        isa<Argument>(V) ? cast<Argument>(V)->getParent()
                         : cast<Instruction>(V)->getFunction());
    auto It = L.Slots.find(V);
    assert(It != L.Slots.end() && "operand has no register slot");
    return Fr.Slots[It->second];
  }
  }
}

uint64_t Interpreter::resolveGlobal(const GlobalVariable *GV,
                                    ExecContext &Ctx) {
  // On the GPU a module global names a *device* region
  // (cuModuleGetGlobal); on the CPU it is a host address. Under the
  // inspector-executor policy kernels run against host memory, and
  // under demand paging the host address faults per access.
  if (Ctx.OnGPU && Ctx.EnforceSpace && !Ctx.DemandPage) {
    // With a device pool the global lives on its home device (sticky
    // placement); untracked globals resolve against device 0.
    unsigned Home = 0;
    if (M.Pool.size() > 1)
      if (const AllocUnitInfo *Info =
              M.Runtime->lookup(M.getGlobalAddress(GV)))
        Home = Info->HomeDevice;
    return M.Pool.device(Home).cuModuleGetGlobal(GV->getName(),
                                                 GV->getSizeInBytes());
  }
  return M.getGlobalAddress(GV);
}

uint64_t Interpreter::evalDecoded(const DecodedOperand &Op, Frame &Fr,
                                  ExecContext &Ctx) {
  switch (Op.K) {
  case DecodedOperand::Kind::Imm:
    return Op.Imm;
  case DecodedOperand::Kind::Slot:
    return Fr.Slots[Op.Slot];
  case DecodedOperand::Kind::Global:
    return resolveGlobal(Op.GV, Ctx);
  }
  CGCM_UNREACHABLE("covered switch");
}

void Interpreter::chargeOps(uint64_t N, ExecContext &Ctx) {
  M.TotalOps += N;
  if (M.OpLimit && M.TotalOps > M.OpLimit)
    reportFatalError("interpreter op limit exceeded");
  if (Ctx.GpuOpCounter) {
    *Ctx.GpuOpCounter += N;
  } else {
    M.Stats.CpuOps += N;
    M.Stats.CpuCycles += static_cast<double>(N) * M.TM.CpuCyclesPerOp;
  }
}

void Interpreter::popFrame(Frame &Fr) {
  for (auto It = Fr.Allocas.rbegin(), E = Fr.Allocas.rend(); It != E; ++It) {
    if (It->second)
      M.Runtime->removeAlloca(It->first);
    SimMemory &Mem =
        isDeviceAddress(It->first) ? M.deviceMemoryFor(It->first) : M.Host;
    Mem.free(It->first);
  }
  --CallDepth;
}

uint64_t Interpreter::execFunction(Function *F,
                                   const std::vector<uint64_t> &Args,
                                   ExecContext &Ctx) {
  if (F->isDeclaration())
    reportFatalError("execution reached undefined function '" + F->getName() +
                     "'");
  if (++CallDepth > 4096)
    reportFatalError("call stack overflow in '" + F->getName() + "'");

  const FunctionLayout &L = M.getLayout(F);
  Frame Fr;
  Fr.Slots.assign(L.NumSlots, 0);
  assert(Args.size() == F->getNumArgs() && "argument count mismatch");
  for (unsigned I = 0; I != Args.size(); ++I)
    Fr.Slots[L.Slots.at(F->getArg(I))] = Args[I];

  if (M.getDispatchMode() == DispatchMode::Table)
    return execDecoded(M.getDecoded(F), Fr, Ctx);
  return execSwitch(F, L, Fr, Ctx);
}

uint64_t Interpreter::execSwitch(Function *F, const FunctionLayout &L,
                                 Frame &Fr, ExecContext &Ctx) {
  auto SetSlot = [&](const Instruction *I, uint64_t V) {
    Fr.Slots[L.Slots.at(I)] = V;
  };
  auto ChargeOps = [&](uint64_t N) { chargeOps(N, Ctx); };
  auto PopFrame = [&] { popFrame(Fr); };

  BasicBlock *BB = F->getEntryBlock();
  BasicBlock *PrevBB = nullptr;
  auto It = BB->begin();

  for (;;) {
    assert(It != BB->end() && "fell off the end of a basic block");
    Instruction *I = It->get();
    ChargeOps(1);
    ++OpcodeCounts[static_cast<unsigned>(I->getKind()) -
                   static_cast<unsigned>(Value::ValueKind::InstBegin)];

    switch (I->getKind()) {
    case Value::ValueKind::Phi: {
      // Evaluate the whole phi group against PrevBB atomically.
      std::vector<std::pair<Instruction *, uint64_t>> Pending;
      while (It != BB->end() && isa<PhiInst>(It->get())) {
        auto *P = cast<PhiInst>(It->get());
        Value *In = P->getIncomingValueFor(PrevBB);
        if (!In)
          reportFatalError("phi has no incoming value for predecessor in '" +
                           F->getName() + "'");
        Pending.push_back({P, evalOperand(In, Fr, Ctx)});
        ++It;
      }
      for (auto &[P, V] : Pending)
        SetSlot(P, V);
      continue;
    }
    case Value::ValueKind::Alloca: {
      const auto *AI = cast<AllocaInst>(I);
      uint64_t Count =
          AI->hasArraySize() ? evalOperand(AI->getArraySize(), Fr, Ctx) : 1;
      uint64_t Size = AI->getAllocatedType()->getSizeInBytes() * Count;
      SimMemory &Mem = Ctx.OnGPU ? M.getDevice().getMemory() : M.Host;
      uint64_t Addr = Mem.allocate(Size);
      bool AutoDeclared = false;
      if (!Ctx.OnGPU && M.Policy == LaunchPolicy::DemandManaged) {
        // Demand paging needs every unit tracked; there is no compiler
        // pass to insert declareAlloca, so the machine registers it.
        M.Runtime->declareAlloca(Addr, Size, AI->getLoc());
        AutoDeclared = true;
      }
      Fr.Allocas.push_back({Addr, AutoDeclared});
      SetSlot(AI, Addr);
      break;
    }
    case Value::ValueKind::Load: {
      const auto *LI = cast<LoadInst>(I);
      uint64_t Addr = evalOperand(LI->getPointerOperand(), Fr, Ctx);
      SetSlot(LI, loadValue(Addr, LI->getType(), Ctx));
      break;
    }
    case Value::ValueKind::Store: {
      const auto *SI = cast<StoreInst>(I);
      uint64_t Addr = evalOperand(SI->getPointerOperand(), Fr, Ctx);
      uint64_t V = evalOperand(SI->getValueOperand(), Fr, Ctx);
      storeValue(Addr, V, SI->getValueOperand()->getType(), Ctx);
      break;
    }
    case Value::ValueKind::GEP: {
      const auto *G = cast<GEPInst>(I);
      uint64_t Base = evalOperand(G->getPointerOperand(), Fr, Ctx);
      int64_t Idx = static_cast<int64_t>(
          evalOperand(G->getIndexOperand(), Fr, Ctx));
      uint64_t Step = G->getSteppedType()->getSizeInBytes();
      SetSlot(G, Base + static_cast<uint64_t>(Idx * static_cast<int64_t>(Step)));
      break;
    }
    case Value::ValueKind::BinOp: {
      const auto *BO = cast<BinOpInst>(I);
      uint64_t A = evalOperand(BO->getLHS(), Fr, Ctx);
      uint64_t Bv = evalOperand(BO->getRHS(), Fr, Ctx);
      Type *Ty = BO->getType();
      uint64_t R;
      if (BO->isFloatingPointOp()) {
        double X = bitsToDouble(A), Y = bitsToDouble(Bv), D;
        switch (BO->getOp()) {
        case BinOpInst::Op::FAdd:
          D = X + Y;
          break;
        case BinOpInst::Op::FSub:
          D = X - Y;
          break;
        case BinOpInst::Op::FMul:
          D = X * Y;
          break;
        case BinOpInst::Op::FDiv:
          D = X / Y;
          break;
        default:
          CGCM_UNREACHABLE("non-FP op classified as FP");
        }
        if (Ty->isFloatTy())
          D = static_cast<double>(static_cast<float>(D));
        R = doubleToBits(D);
      } else {
        int64_t X = static_cast<int64_t>(A), Y = static_cast<int64_t>(Bv), S;
        unsigned W = intWidth(Ty);
        switch (BO->getOp()) {
        case BinOpInst::Op::Add:
          S = X + Y;
          break;
        case BinOpInst::Op::Sub:
          S = X - Y;
          break;
        case BinOpInst::Op::Mul:
          S = X * Y;
          break;
        case BinOpInst::Op::SDiv:
          if (Y == 0)
            reportFatalError("integer division by zero");
          S = X / Y;
          break;
        case BinOpInst::Op::SRem:
          if (Y == 0)
            reportFatalError("integer remainder by zero");
          S = X % Y;
          break;
        case BinOpInst::Op::And:
          S = X & Y;
          break;
        case BinOpInst::Op::Or:
          S = X | Y;
          break;
        case BinOpInst::Op::Xor:
          S = X ^ Y;
          break;
        case BinOpInst::Op::Shl:
          S = static_cast<int64_t>(static_cast<uint64_t>(X)
                                   << (static_cast<uint64_t>(Y) & 63));
          break;
        case BinOpInst::Op::AShr:
          S = X >> (static_cast<uint64_t>(Y) & 63);
          break;
        case BinOpInst::Op::LShr: {
          uint64_t Masked = static_cast<uint64_t>(X);
          if (W < 64)
            Masked &= (1ull << W) - 1;
          S = static_cast<int64_t>(Masked >> (static_cast<uint64_t>(Y) & 63));
          break;
        }
        default:
          CGCM_UNREACHABLE("FP op classified as int");
        }
        R = signExtend(static_cast<uint64_t>(S), W);
      }
      SetSlot(BO, R);
      break;
    }
    case Value::ValueKind::Cmp: {
      const auto *C = cast<CmpInst>(I);
      uint64_t A = evalOperand(C->getLHS(), Fr, Ctx);
      uint64_t Bv = evalOperand(C->getRHS(), Fr, Ctx);
      bool R;
      if (C->isFloatPredicate()) {
        double X = bitsToDouble(A), Y = bitsToDouble(Bv);
        switch (C->getPredicate()) {
        case CmpInst::Predicate::FOEQ:
          R = X == Y;
          break;
        case CmpInst::Predicate::FONE:
          R = X != Y;
          break;
        case CmpInst::Predicate::FOLT:
          R = X < Y;
          break;
        case CmpInst::Predicate::FOLE:
          R = X <= Y;
          break;
        case CmpInst::Predicate::FOGT:
          R = X > Y;
          break;
        case CmpInst::Predicate::FOGE:
          R = X >= Y;
          break;
        default:
          CGCM_UNREACHABLE("int predicate classified as FP");
        }
      } else {
        // Pointers compare as unsigned addresses; integers as signed.
        bool Ptr = C->getLHS()->getType()->isPointerTy();
        int64_t X = static_cast<int64_t>(A), Y = static_cast<int64_t>(Bv);
        switch (C->getPredicate()) {
        case CmpInst::Predicate::EQ:
          R = A == Bv;
          break;
        case CmpInst::Predicate::NE:
          R = A != Bv;
          break;
        case CmpInst::Predicate::SLT:
          R = Ptr ? A < Bv : X < Y;
          break;
        case CmpInst::Predicate::SLE:
          R = Ptr ? A <= Bv : X <= Y;
          break;
        case CmpInst::Predicate::SGT:
          R = Ptr ? A > Bv : X > Y;
          break;
        case CmpInst::Predicate::SGE:
          R = Ptr ? A >= Bv : X >= Y;
          break;
        default:
          CGCM_UNREACHABLE("FP predicate classified as int");
        }
      }
      SetSlot(C, R ? 1 : 0);
      break;
    }
    case Value::ValueKind::Cast: {
      const auto *C = cast<CastInst>(I);
      uint64_t V = evalOperand(C->getValueOperand(), Fr, Ctx);
      Type *From = C->getValueOperand()->getType();
      Type *To = C->getType();
      uint64_t R = V;
      switch (C->getOp()) {
      case CastInst::Op::Trunc:
        R = intWidth(To) == 1 ? (V & 1) : signExtend(V, intWidth(To));
        break;
      case CastInst::Op::ZExt: {
        unsigned FW = intWidth(From);
        R = FW >= 64 ? V : (V & ((1ull << FW) - 1));
        break;
      }
      case CastInst::Op::SExt:
        R = signExtend(V, intWidth(From));
        break;
      case CastInst::Op::FPToSI:
        R = signExtend(
            static_cast<uint64_t>(static_cast<int64_t>(bitsToDouble(V))),
            intWidth(To));
        break;
      case CastInst::Op::SIToFP: {
        double D = static_cast<double>(static_cast<int64_t>(V));
        if (To->isFloatTy())
          D = static_cast<double>(static_cast<float>(D));
        R = doubleToBits(D);
        break;
      }
      case CastInst::Op::FPExt:
        R = V; // Registers already hold double precision bits.
        break;
      case CastInst::Op::FPTrunc:
        R = doubleToBits(
            static_cast<double>(static_cast<float>(bitsToDouble(V))));
        break;
      case CastInst::Op::Bitcast:
      case CastInst::Op::PtrToInt:
      case CastInst::Op::IntToPtr:
        R = V;
        break;
      }
      SetSlot(C, R);
      break;
    }
    case Value::ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      uint64_t C = evalOperand(S->getCondition(), Fr, Ctx);
      SetSlot(S, (C & 1) ? evalOperand(S->getTrueValue(), Fr, Ctx)
                         : evalOperand(S->getFalseValue(), Fr, Ctx));
      break;
    }
    case Value::ValueKind::Call: {
      const auto *CI = cast<CallInst>(I);
      uint64_t R = execCall(CI, Fr, Ctx);
      if (!CI->getType()->isVoidTy())
        SetSlot(CI, R);
      break;
    }
    case Value::ValueKind::KernelLaunch:
      execKernelLaunch(cast<KernelLaunchInst>(I), Fr, Ctx);
      break;
    case Value::ValueKind::Br: {
      const auto *Br = cast<BranchInst>(I);
      BasicBlock *Next;
      if (Br->isConditional()) {
        uint64_t C = evalOperand(Br->getCondition(), Fr, Ctx);
        Next = Br->getSuccessor((C & 1) ? 0 : 1);
      } else {
        Next = Br->getSuccessor(0);
      }
      PrevBB = BB;
      BB = Next;
      It = BB->begin();
      continue;
    }
    case Value::ValueKind::Ret: {
      const auto *R = cast<RetInst>(I);
      uint64_t V =
          R->hasReturnValue() ? evalOperand(R->getReturnValue(), Fr, Ctx) : 0;
      PopFrame();
      return V;
    }
    default:
      CGCM_UNREACHABLE("unknown instruction kind in interpreter");
    }
    ++It;
  }
}

uint64_t Interpreter::execCall(const CallInst *CI, Frame &Fr,
                               ExecContext &Ctx) {
  std::vector<uint64_t> Args;
  Args.reserve(CI->getNumArgs());
  for (unsigned I = 0, E = CI->getNumArgs(); I != E; ++I)
    Args.push_back(evalOperand(CI->getArg(I), Fr, Ctx));
  return execCallImpl(CI, M.getIntrinsic(CI->getCallee()), Args, Fr, Ctx);
}

uint64_t Interpreter::execCallImpl(const CallInst *CI, Machine::Intrinsic K,
                                   const std::vector<uint64_t> &Args,
                                   Frame &Fr, ExecContext &Ctx) {
  Function *Callee = CI->getCallee();
  auto ChargeExtra = [&](uint64_t N) {
    if (Ctx.GpuOpCounter)
      *Ctx.GpuOpCounter += N;
    else {
      M.Stats.CpuOps += N;
      M.Stats.CpuCycles += static_cast<double>(N) * M.TM.CpuCyclesPerOp;
    }
  };
  auto RequireCPU = [&](const char *What) {
    if (Ctx.OnGPU)
      reportFatalError(std::string(What) + " called inside a GPU function");
  };
  auto MathResult = [&](double D) {
    ChargeExtra(8); // Transcendental ops cost more than one ALU op.
    return doubleToBits(D);
  };

  switch (K) {
  case Machine::Intrinsic::None: {
    // Ordinary user function.
    return execFunction(Callee, Args, Ctx);
  }
  case Machine::Intrinsic::Malloc: {
    RequireCPU("malloc");
    ChargeExtra(30);
    uint64_t Addr = M.Host.allocate(Args[0]);
    uint64_t Base, Size;
    M.Host.findAllocation(Addr, Base, Size);
    M.Runtime->notifyHeapAlloc(Addr, Size, CI->getLoc());
    return Addr;
  }
  case Machine::Intrinsic::Calloc: {
    RequireCPU("calloc");
    ChargeExtra(30);
    uint64_t Bytes = Args[0] * Args[1];
    uint64_t Addr = M.Host.allocate(Bytes);
    uint64_t Base, Size;
    M.Host.findAllocation(Addr, Base, Size);
    std::vector<uint8_t> Zeros(Size, 0);
    M.Host.write(Addr, Zeros.data(), Size);
    M.Runtime->notifyHeapAlloc(Addr, Size, CI->getLoc());
    return Addr;
  }
  case Machine::Intrinsic::Realloc: {
    RequireCPU("realloc");
    ChargeExtra(30);
    if (Args[0] == 0) {
      uint64_t Addr = M.Host.allocate(Args[1]);
      uint64_t Base, Size;
      M.Host.findAllocation(Addr, Base, Size);
      M.Runtime->notifyHeapAlloc(Addr, Size, CI->getLoc());
      return Addr;
    }
    uint64_t NewAddr = M.Host.reallocate(Args[0], Args[1]);
    uint64_t Base, Size;
    M.Host.findAllocation(NewAddr, Base, Size);
    M.Runtime->notifyHeapRealloc(Args[0], NewAddr, Size, CI->getLoc());
    return NewAddr;
  }
  case Machine::Intrinsic::Free: {
    RequireCPU("free");
    ChargeExtra(10);
    if (Args[0] == 0)
      return 0;
    M.Runtime->notifyHeapFree(Args[0]);
    M.Host.free(Args[0]);
    return 0;
  }
  case Machine::Intrinsic::Sqrt:
    return MathResult(std::sqrt(bitsToDouble(Args[0])));
  case Machine::Intrinsic::Exp:
    return MathResult(std::exp(bitsToDouble(Args[0])));
  case Machine::Intrinsic::Log:
    return MathResult(std::log(bitsToDouble(Args[0])));
  case Machine::Intrinsic::Sin:
    return MathResult(std::sin(bitsToDouble(Args[0])));
  case Machine::Intrinsic::Cos:
    return MathResult(std::cos(bitsToDouble(Args[0])));
  case Machine::Intrinsic::Fabs:
    return MathResult(std::fabs(bitsToDouble(Args[0])));
  case Machine::Intrinsic::Pow:
    return MathResult(std::pow(bitsToDouble(Args[0]), bitsToDouble(Args[1])));
  case Machine::Intrinsic::PrintI64:
    RequireCPU("print_i64");
    M.Output += std::to_string(static_cast<int64_t>(Args[0])) + "\n";
    return 0;
  case Machine::Intrinsic::PrintF64: {
    RequireCPU("print_f64");
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g\n", bitsToDouble(Args[0]));
    M.Output += Buf;
    return 0;
  }
  case Machine::Intrinsic::PrintStr:
    RequireCPU("print_str");
    M.Output += M.Host.readCString(Args[0]) + "\n";
    return 0;
  case Machine::Intrinsic::Tid:
    if (!Ctx.OnGPU)
      reportFatalError("__tid() called outside a GPU function");
    return Ctx.Tid;
  case Machine::Intrinsic::NTid:
    if (!Ctx.OnGPU)
      reportFatalError("__ntid() called outside a GPU function");
    return Ctx.NTid;
  case Machine::Intrinsic::CgcmMap:
    RequireCPU("cgcm_map");
    return M.Runtime->map(Args[0]);
  case Machine::Intrinsic::CgcmUnmap:
    RequireCPU("cgcm_unmap");
    M.Runtime->unmap(Args[0]);
    return 0;
  case Machine::Intrinsic::CgcmRelease:
    RequireCPU("cgcm_release");
    M.Runtime->release(Args[0]);
    return 0;
  case Machine::Intrinsic::CgcmMapArray:
    RequireCPU("cgcm_map_array");
    return M.Runtime->mapArray(Args[0]);
  case Machine::Intrinsic::CgcmUnmapArray:
    RequireCPU("cgcm_unmap_array");
    M.Runtime->unmapArray(Args[0]);
    return 0;
  case Machine::Intrinsic::CgcmReleaseArray:
    RequireCPU("cgcm_release_array");
    M.Runtime->releaseArray(Args[0]);
    return 0;
  case Machine::Intrinsic::CgcmDeclareGlobal: {
    RequireCPU("cgcm_declare_global");
    // (namePtr, ptr, size, isReadOnly)
    std::string Name = M.Host.readCString(Args[0]);
    M.Runtime->declareGlobal(Name, Args[1], Args[2], Args[3] & 1);
    return 0;
  }
  case Machine::Intrinsic::CgcmDeclareAlloca: {
    RequireCPU("cgcm_declare_alloca");
    M.Runtime->declareAlloca(Args[0], Args[1], CI->getLoc());
    // Mark the owning frame entry so the registration expires with it.
    for (auto &[Addr, Declared] : Fr.Allocas)
      if (Addr == Args[0])
        Declared = true;
    return 0;
  }
  }
  CGCM_UNREACHABLE("covered switch");
}

void Interpreter::execKernelLaunch(const KernelLaunchInst *KL, Frame &Fr,
                                   ExecContext &Ctx) {
  if (Ctx.OnGPU)
    reportFatalError("nested kernel launch on the GPU");
  uint64_t Grid = evalOperand(KL->getGrid(), Fr, Ctx);
  uint64_t Block = evalOperand(KL->getBlock(), Fr, Ctx);
  if (Grid * Block == 0)
    reportFatalError("kernel launched with zero threads");
  std::vector<uint64_t> Args;
  for (unsigned I = 0, E = KL->getNumArgs(); I != E; ++I)
    Args.push_back(evalOperand(KL->getArg(I), Fr, Ctx));
  execKernelLaunchImpl(KL, Grid, Block, Args, Ctx);
}

void Interpreter::execKernelLaunchImpl(const KernelLaunchInst *KL,
                                       uint64_t Grid, uint64_t Block,
                                       const std::vector<uint64_t> &Args,
                                       ExecContext &Ctx) {
  Function *Kernel = KL->getKernel();
  uint64_t Threads = Grid * Block;
  LaunchPolicy Policy = M.Policy;
  uint64_t GpuOps = 0;

  if (Policy == LaunchPolicy::CpuEmulation) {
    // Sequential baseline: the kernel body is what the original loop did;
    // run it on host memory at CPU cost with no GPU-side overheads.
    for (uint64_t Tid = 0; Tid != Threads; ++Tid) {
      ExecContext GCtx;
      GCtx.OnGPU = true; // __tid/__ntid resolve...
      GCtx.EnforceSpace = false;
      GCtx.Tid = Tid;
      GCtx.NTid = Threads;
      GCtx.GpuOpCounter = &GpuOps;
      execFunction(Kernel, Args, GCtx);
    }
    double ECost = static_cast<double>(GpuOps) * M.TM.CpuCyclesPerOp;
    if (M.Trace.isEnabled())
      M.Trace.complete(Kernel->getName(), "kernel",
                       M.Stats.totalCycles(), ECost,
                       TraceArgs()
                           .add("threads", Threads)
                           .add("ops", GpuOps)
                           .add("policy", "cpu-emulation"));
    M.Stats.CpuOps += GpuOps;
    M.Stats.CpuCycles += ECost;
    // Keep the runtime's epoch honest even in emulation, so a managed
    // module still unmaps correctly under this policy.
    M.Runtime->onKernelLaunch();
    return;
  }

  if (Policy == LaunchPolicy::InspectorExecutor) {
    // Idealized inspector-executor (paper section 6.3): the inspector
    // walks the kernel's accesses sequentially (oracle-precise), the
    // scheduler transfers exactly one byte per accessed allocation unit,
    // and execution proceeds against host data.
    std::set<uint64_t> ReadUnits, WriteUnits;
    uint64_t Accesses = 0;
    for (uint64_t Tid = 0; Tid != Threads; ++Tid) {
      ExecContext GCtx;
      GCtx.OnGPU = true;
      GCtx.EnforceSpace = false;
      GCtx.Tid = Tid;
      GCtx.NTid = Threads;
      GCtx.GpuOpCounter = &GpuOps;
      GCtx.ReadUnits = &ReadUnits;
      GCtx.WriteUnits = &WriteUnits;
      GCtx.AccessCount = &Accesses;
      execFunction(Kernel, Args, GCtx);
    }
    double InspectCost =
        static_cast<double>(Accesses) * M.TM.InspectorCyclesPerAccess;
    M.getDevice().recordEvent(EventKind::Inspect, M.Stats.totalCycles(),
                         InspectCost);
    if (M.Trace.isEnabled())
      M.Trace.complete("inspect", "kernel", M.Stats.totalCycles(),
                       InspectCost, TraceArgs().add("accesses", Accesses));
    M.Stats.InspectorCycles += InspectCost;
    uint64_t HtoDBytes = ReadUnits.size() + WriteUnits.size();
    if (HtoDBytes) {
      double Cost = M.TM.transferCycles(HtoDBytes);
      M.getDevice().recordEvent(EventKind::HtoD, M.Stats.totalCycles(), Cost,
                           HtoDBytes);
      // The IE baseline is inherently synchronous: the stream engine
      // charges the Comm split and the host-timeline attribution mirror.
      M.getDevice().getStreamEngine().noteSyncCharge(Cost,
                                                StreamEngine::SyncKind::HtoD);
      M.Stats.BytesHtoD += HtoDBytes;
      ++M.Stats.TransfersHtoD;
    }
    double KCost = M.TM.kernelCycles(GpuOps, Threads);
    M.getDevice().recordEvent(EventKind::Kernel, M.Stats.totalCycles(), KCost);
    if (M.Trace.isEnabled())
      M.Trace.complete(Kernel->getName(), "kernel", M.Stats.totalCycles(),
                       KCost,
                       TraceArgs()
                           .add("threads", Threads)
                           .add("ops", GpuOps)
                           .add("policy", "inspector-executor"));
    M.getDevice().getStreamEngine().noteSyncCharge(
        KCost, StreamEngine::SyncKind::Compute);
    M.Stats.GpuOps += GpuOps;
    if (!WriteUnits.empty()) {
      double Cost = M.TM.transferCycles(WriteUnits.size());
      M.getDevice().recordEvent(EventKind::DtoH, M.Stats.totalCycles(), Cost,
                           WriteUnits.size());
      M.getDevice().getStreamEngine().noteSyncCharge(
          Cost, StreamEngine::SyncKind::DtoH);
      M.Stats.BytesDtoH += WriteUnits.size();
      ++M.Stats.TransfersDtoH;
    }
    ++M.Stats.KernelLaunches;
    M.Runtime->onKernelLaunch();
    return;
  }

  // Trap / Managed / DemandManaged: threads execute against device
  // memory; a host access faults — fatally under Trap/Managed (the
  // unmanaged-communication bug), or into the demand pager. A DOALL
  // kernel the optimizer proved shardable may split its iteration space
  // across the device pool (docs/MultiGPU.md).
  unsigned Cand = 1;
  if (M.Pool.size() > 1 && Kernel->isShardable() && Threads > 1)
    Cand = unsigned(std::min<uint64_t>(M.Pool.size(), Threads));

  // Execute every thread in ascending tid order — sharded or not, this
  // is the single-device order, so the data plane is bit-identical by
  // construction (execution always reads and writes the home replica of
  // every unit; peer replicas carry modeled traffic only). When a pool
  // could shard, ops are recorded per contiguous tid chunk so shard
  // boundaries can balance measured work, not thread counts: grid-stride
  // kernels concentrate iterations in low tids whenever the trip count
  // is below the launch width.
  uint64_t NumChunks =
      Cand > 1 ? std::min<uint64_t>(Threads, 4096) : 1;
  std::vector<uint64_t> ChunkOps(NumChunks, 0);
  for (uint64_t Tid = 0; Tid != Threads; ++Tid) {
    ExecContext GCtx;
    GCtx.OnGPU = true;
    GCtx.EnforceSpace = true;
    GCtx.Tid = Tid;
    GCtx.NTid = Threads;
    GCtx.GpuOpCounter =
        Cand > 1 ? &ChunkOps[Tid * NumChunks / Threads] : &GpuOps;
    GCtx.DemandPage = Policy == LaunchPolicy::DemandManaged;
    execFunction(Kernel, Args, GCtx);
  }
  if (Cand > 1)
    for (uint64_t C = 0; C != NumChunks; ++C)
      GpuOps += ChunkOps[C];
  const char *PolicyName =
      Policy == LaunchPolicy::DemandManaged ? "demand-managed" : "managed";
  double SingleCost = M.TM.kernelCycles(GpuOps, Threads);

  // Shard plan: contiguous chunk ranges whose op counts track the ideal
  // per-device share. Shards left empty by a skewed distribution are
  // dropped (their devices would only pay launch latency).
  unsigned ND = 1;
  std::vector<uint64_t> ShardOps, ShardThreads;
  std::vector<double> KCost;
  double MaxCost = 0;
  if (Cand > 1) {
    uint64_t Acc = 0, ChunkLo = 0;
    for (unsigned D = 0; D != Cand; ++D) {
      uint64_t Target = GpuOps * (D + 1) / Cand;
      uint64_t ChunkHi = ChunkLo, Ops = 0;
      while (ChunkHi != NumChunks &&
             (D + 1 == Cand || Acc + Ops < Target)) {
        Ops += ChunkOps[ChunkHi];
        ++ChunkHi;
      }
      if (ChunkHi == ChunkLo)
        continue;
      // Chunk C covers tids [C*Threads/NumChunks, (C+1)*Threads/NumChunks).
      uint64_t TidLo = ChunkLo * Threads / NumChunks;
      uint64_t TidHi = ChunkHi * Threads / NumChunks;
      ShardOps.push_back(Ops);
      ShardThreads.push_back(TidHi - TidLo);
      Acc += Ops;
      ChunkLo = ChunkHi;
    }
    ND = unsigned(ShardOps.size());
    KCost.resize(ND);
    for (unsigned D = 0; D != ND; ++D) {
      // Every pool device launches the full-width grid over its
      // iteration slice (the standard multi-GPU grid-stride
      // decomposition): per-shard parallel width matches the original
      // launch; only the iteration count shrinks.
      KCost[D] = M.TM.kernelCycles(ShardOps[D], Threads);
      MaxCost = std::max(MaxCost, KCost[D]);
    }
    // Profitability gate: shard only when the modeled sharded schedule —
    // slowest shard, plus halo re-coherence, plus replication — beats
    // the single-device charge. Stale replicas (host writes between
    // launches re-dirty them every iteration) are priced in full;
    // missing replicas are one-time setup, amortized over the timing
    // model's creation horizon so a kernel that relaunches can
    // bootstrap. Everything here is modeled time; the data already
    // moved.
    if (ND > 1) {
      double ShardedCost = MaxCost;
      if (uint64_t Halo = Kernel->getHaloBytes())
        ShardedCost += (ND - 1) * M.TM.p2pCopyCycles(Halo);
      for (uint64_t A : Args)
        if (isDeviceAddress(A)) {
          CGCMRuntime::ReplicationEstimate E =
              M.Runtime->estimateReplicationCycles(A, ND);
          ShardedCost +=
              E.StaleCycles + E.MissingCycles / M.TM.ShardCreationHorizon;
        }
      if (ShardedCost >= SingleCost)
        ND = 1;
    }
  }

  if (ND == 1) {
    // The engine decides when the kernel starts: synchronously at the
    // current clock (legacy behavior), or — async — after every pending
    // HtoD copy has landed, on the compute lane. GpuCycles are charged by
    // the engine either way.
    StreamEngine &Eng = M.getDevice().getStreamEngine();
    double KStart = Eng.kernelLaunch(SingleCost);
    M.getDevice().recordEvent(EventKind::Kernel, KStart, SingleCost);
    if (M.Trace.isEnabled())
      M.Trace.complete(Kernel->getName(), "kernel", KStart, SingleCost,
                       TraceArgs()
                           .add("threads", Threads)
                           .add("ops", GpuOps)
                           .add("policy", PolicyName),
                       Eng.isAsync() ? LaneCompute : LaneHost);
    M.Stats.GpuOps += GpuOps;
    ++M.Stats.KernelLaunches;
    M.Runtime->onKernelLaunch();
    return;
  }

  // Committed to sharding: give every shard device a current replica of
  // each device-resident argument (timing-only peer copies; stale or
  // missing replicas were priced into the gate above).
  for (uint64_t A : Args)
    if (isDeviceAddress(A))
      for (unsigned D = 0; D != ND; ++D)
        M.Runtime->replicateForDevice(A, D);

  StreamEngine &Eng0 = M.getDevice().getStreamEngine();
  if (!Eng0.isAsync()) {
    // Synchronous regime: the shards run concurrently, so the host
    // blocks once, for the slowest shard.
    double KStart = Eng0.kernelLaunch(MaxCost);
    for (unsigned D = 0; D != ND; ++D) {
      M.Pool.device(D).recordEvent(EventKind::Kernel, KStart, KCost[D]);
      M.Stats.deviceStats(D).ComputeCycles += KCost[D];
      if (M.Trace.isEnabled())
        M.Trace.complete(Kernel->getName() + "/shard" + std::to_string(D),
                         "kernel", KStart, KCost[D],
                         TraceArgs()
                             .add("threads", ShardThreads[D])
                             .add("ops", ShardOps[D])
                             .add("device", D)
                             .add("policy", PolicyName),
                         LaneHost);
    }
  } else {
    for (unsigned D = 0; D != ND; ++D) {
      StreamEngine &Eng = M.Pool.device(D).getStreamEngine();
      double KStart = Eng.kernelLaunch(KCost[D]);
      M.Pool.device(D).recordEvent(EventKind::Kernel, KStart, KCost[D]);
      M.Stats.deviceStats(D).ComputeCycles += KCost[D];
      if (M.Trace.isEnabled())
        M.Trace.complete(Kernel->getName() + "/shard" + std::to_string(D),
                         "kernel", KStart, KCost[D],
                         TraceArgs()
                             .add("threads", ShardThreads[D])
                             .add("ops", ShardOps[D])
                             .add("device", D)
                             .add("policy", PolicyName),
                         Eng.computeLane());
    }
  }
  // Halo re-coherence between adjacent shards: timing-only peer traffic
  // (every shard wrote the single authoritative replica).
  if (uint64_t Halo = Kernel->getHaloBytes())
    for (unsigned D = 0; D + 1 != ND; ++D)
      M.Pool.chargeP2P(D, D + 1, Halo);
  M.Stats.GpuOps += GpuOps;
  ++M.Stats.KernelLaunches;
  M.Runtime->onKernelLaunch();
}

//===----------------------------------------------------------------------===//
// Decoded handler-table dispatch (DispatchMode::Table)
//===----------------------------------------------------------------------===//

/// Per-invocation state the handlers thread through the decoded loop:
/// the frame, the execution context, and the control-flow registers the
/// switch walk kept in locals (the dynamic predecessor for phis, the
/// pending return value).
struct Interpreter::TableState {
  Frame &Fr;
  ExecContext &Ctx;
  const DecodedFunction &DF;
  const BasicBlock *PrevBB = nullptr;
  uint64_t RetVal = 0;
  bool Returned = false;
};

namespace cgcm {

/// One static handler per DOp, indexed by the dispatch table below. Each
/// handler mirrors its switch-interpreter case exactly — same operand
/// evaluation order, same fatal strings, same rounding — with the decode
/// work (operand classification, sub-opcode switches, width lookups)
/// already paid.
struct TableOps {
  using Frame = Interpreter::Frame;
  using TS = Interpreter::TableState;
  using Handler = void (*)(Interpreter &, const DecodedInst &, TS &,
                           unsigned &);

  static void hAlloca(Interpreter &IP, const DecodedInst &DI, TS &S,
                      unsigned &) {
    const auto *AI = cast<AllocaInst>(DI.I);
    uint64_t Count = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    uint64_t Size = DI.Step * Count;
    SimMemory &Mem = S.Ctx.OnGPU ? IP.M.getDevice().getMemory() : IP.M.Host;
    uint64_t Addr = Mem.allocate(Size);
    bool AutoDeclared = false;
    if (!S.Ctx.OnGPU && IP.M.Policy == LaunchPolicy::DemandManaged) {
      // Demand paging needs every unit tracked; there is no compiler
      // pass to insert declareAlloca, so the machine registers it.
      IP.M.Runtime->declareAlloca(Addr, Size, AI->getLoc());
      AutoDeclared = true;
    }
    S.Fr.Allocas.push_back({Addr, AutoDeclared});
    S.Fr.Slots[DI.Dest] = Addr;
  }

  static void hLoad(Interpreter &IP, const DecodedInst &DI, TS &S,
                    unsigned &) {
    uint64_t Addr = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.Fr.Slots[DI.Dest] = IP.loadValue(Addr, DI.Ty, S.Ctx);
  }

  static void hStore(Interpreter &IP, const DecodedInst &DI, TS &S,
                     unsigned &) {
    uint64_t Addr = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    uint64_t V = IP.evalDecoded(DI.B, S.Fr, S.Ctx);
    IP.storeValue(Addr, V, DI.Ty, S.Ctx);
  }

  static void hGEP(Interpreter &IP, const DecodedInst &DI, TS &S,
                   unsigned &) {
    uint64_t Base = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    int64_t Idx = static_cast<int64_t>(IP.evalDecoded(DI.B, S.Fr, S.Ctx));
    S.Fr.Slots[DI.Dest] =
        Base + static_cast<uint64_t>(Idx * static_cast<int64_t>(DI.Step));
  }

#define CGCM_INT_BIN(NAME, EXPR)                                               \
  static void NAME(Interpreter &IP, const DecodedInst &DI, TS &S,              \
                   unsigned &) {                                               \
    int64_t X = static_cast<int64_t>(IP.evalDecoded(DI.A, S.Fr, S.Ctx));       \
    int64_t Y = static_cast<int64_t>(IP.evalDecoded(DI.B, S.Fr, S.Ctx));       \
    (void)DI;                                                                  \
    int64_t R = (EXPR);                                                        \
    S.Fr.Slots[DI.Dest] = signExtend(static_cast<uint64_t>(R), DI.Width);      \
  }

  CGCM_INT_BIN(hBinAdd, X + Y)
  CGCM_INT_BIN(hBinSub, X - Y)
  CGCM_INT_BIN(hBinMul, X *Y)
  CGCM_INT_BIN(hBinAnd, X &Y)
  CGCM_INT_BIN(hBinOr, X | Y)
  CGCM_INT_BIN(hBinXor, X ^ Y)
  CGCM_INT_BIN(hBinShl, static_cast<int64_t>(static_cast<uint64_t>(X)
                                             << (static_cast<uint64_t>(Y) &
                                                 63)))
  CGCM_INT_BIN(hBinAShr, X >> (static_cast<uint64_t>(Y) & 63))
#undef CGCM_INT_BIN

  static void hBinSDiv(Interpreter &IP, const DecodedInst &DI, TS &S,
                       unsigned &) {
    int64_t X = static_cast<int64_t>(IP.evalDecoded(DI.A, S.Fr, S.Ctx));
    int64_t Y = static_cast<int64_t>(IP.evalDecoded(DI.B, S.Fr, S.Ctx));
    if (Y == 0)
      reportFatalError("integer division by zero");
    S.Fr.Slots[DI.Dest] =
        signExtend(static_cast<uint64_t>(X / Y), DI.Width);
  }

  static void hBinSRem(Interpreter &IP, const DecodedInst &DI, TS &S,
                       unsigned &) {
    int64_t X = static_cast<int64_t>(IP.evalDecoded(DI.A, S.Fr, S.Ctx));
    int64_t Y = static_cast<int64_t>(IP.evalDecoded(DI.B, S.Fr, S.Ctx));
    if (Y == 0)
      reportFatalError("integer remainder by zero");
    S.Fr.Slots[DI.Dest] =
        signExtend(static_cast<uint64_t>(X % Y), DI.Width);
  }

  static void hBinLShr(Interpreter &IP, const DecodedInst &DI, TS &S,
                       unsigned &) {
    int64_t X = static_cast<int64_t>(IP.evalDecoded(DI.A, S.Fr, S.Ctx));
    int64_t Y = static_cast<int64_t>(IP.evalDecoded(DI.B, S.Fr, S.Ctx));
    uint64_t Masked = static_cast<uint64_t>(X);
    if (DI.Width < 64)
      Masked &= (1ull << DI.Width) - 1;
    S.Fr.Slots[DI.Dest] = signExtend(
        Masked >> (static_cast<uint64_t>(Y) & 63), DI.Width);
  }

#define CGCM_FP_BIN(NAME, OPR)                                                 \
  static void NAME(Interpreter &IP, const DecodedInst &DI, TS &S,              \
                   unsigned &) {                                               \
    double X = bitsToDouble(IP.evalDecoded(DI.A, S.Fr, S.Ctx));                \
    double Y = bitsToDouble(IP.evalDecoded(DI.B, S.Fr, S.Ctx));                \
    double D = X OPR Y;                                                        \
    if (DI.IsFloat)                                                            \
      D = static_cast<double>(static_cast<float>(D));                          \
    S.Fr.Slots[DI.Dest] = doubleToBits(D);                                     \
  }

  CGCM_FP_BIN(hBinFAdd, +)
  CGCM_FP_BIN(hBinFSub, -)
  CGCM_FP_BIN(hBinFMul, *)
  CGCM_FP_BIN(hBinFDiv, /)
#undef CGCM_FP_BIN

#define CGCM_CMP(NAME, EXPR)                                                   \
  static void NAME(Interpreter &IP, const DecodedInst &DI, TS &S,              \
                   unsigned &) {                                               \
    uint64_t A = IP.evalDecoded(DI.A, S.Fr, S.Ctx);                            \
    uint64_t Bv = IP.evalDecoded(DI.B, S.Fr, S.Ctx);                           \
    int64_t X = static_cast<int64_t>(A), Y = static_cast<int64_t>(Bv);         \
    (void)X;                                                                   \
    (void)Y;                                                                   \
    S.Fr.Slots[DI.Dest] = (EXPR) ? 1 : 0;                                      \
  }

  CGCM_CMP(hCmpEQ, A == Bv)
  CGCM_CMP(hCmpNE, A != Bv)
  CGCM_CMP(hCmpSLT, X < Y)
  CGCM_CMP(hCmpSLE, X <= Y)
  CGCM_CMP(hCmpSGT, X > Y)
  CGCM_CMP(hCmpSGE, X >= Y)
  CGCM_CMP(hCmpULT, A < Bv)
  CGCM_CMP(hCmpULE, A <= Bv)
  CGCM_CMP(hCmpUGT, A > Bv)
  CGCM_CMP(hCmpUGE, A >= Bv)
#undef CGCM_CMP

#define CGCM_FCMP(NAME, OPR)                                                   \
  static void NAME(Interpreter &IP, const DecodedInst &DI, TS &S,              \
                   unsigned &) {                                               \
    double X = bitsToDouble(IP.evalDecoded(DI.A, S.Fr, S.Ctx));                \
    double Y = bitsToDouble(IP.evalDecoded(DI.B, S.Fr, S.Ctx));                \
    S.Fr.Slots[DI.Dest] = (X OPR Y) ? 1 : 0;                                   \
  }

  CGCM_FCMP(hCmpFOEQ, ==)
  CGCM_FCMP(hCmpFONE, !=)
  CGCM_FCMP(hCmpFOLT, <)
  CGCM_FCMP(hCmpFOLE, <=)
  CGCM_FCMP(hCmpFOGT, >)
  CGCM_FCMP(hCmpFOGE, >=)
#undef CGCM_FCMP

  static void hCastTrunc(Interpreter &IP, const DecodedInst &DI, TS &S,
                         unsigned &) {
    uint64_t V = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.Fr.Slots[DI.Dest] = DI.Width == 1 ? (V & 1) : signExtend(V, DI.Width);
  }

  static void hCastZExt(Interpreter &IP, const DecodedInst &DI, TS &S,
                        unsigned &) {
    uint64_t V = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.Fr.Slots[DI.Dest] =
        DI.Width >= 64 ? V : (V & ((1ull << DI.Width) - 1));
  }

  static void hCastSExt(Interpreter &IP, const DecodedInst &DI, TS &S,
                        unsigned &) {
    uint64_t V = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.Fr.Slots[DI.Dest] = signExtend(V, DI.Width);
  }

  static void hCastFPToSI(Interpreter &IP, const DecodedInst &DI, TS &S,
                          unsigned &) {
    uint64_t V = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.Fr.Slots[DI.Dest] = signExtend(
        static_cast<uint64_t>(static_cast<int64_t>(bitsToDouble(V))),
        DI.Width);
  }

  static void hCastSIToFP(Interpreter &IP, const DecodedInst &DI, TS &S,
                          unsigned &) {
    uint64_t V = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    double D = static_cast<double>(static_cast<int64_t>(V));
    if (DI.IsFloat)
      D = static_cast<double>(static_cast<float>(D));
    S.Fr.Slots[DI.Dest] = doubleToBits(D);
  }

  static void hCastFPTrunc(Interpreter &IP, const DecodedInst &DI, TS &S,
                           unsigned &) {
    uint64_t V = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.Fr.Slots[DI.Dest] = doubleToBits(
        static_cast<double>(static_cast<float>(bitsToDouble(V))));
  }

  static void hCastBit(Interpreter &IP, const DecodedInst &DI, TS &S,
                       unsigned &) {
    // fpext / bitcast / ptrtoint / inttoptr: registers already hold
    // double bits or raw addresses.
    S.Fr.Slots[DI.Dest] = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
  }

  static void hSelect(Interpreter &IP, const DecodedInst &DI, TS &S,
                      unsigned &) {
    // Lazy, like the switch walk: only the chosen side is evaluated
    // (operand resolution has side effects for module globals).
    uint64_t C = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.Fr.Slots[DI.Dest] = (C & 1) ? IP.evalDecoded(DI.B, S.Fr, S.Ctx)
                                  : IP.evalDecoded(DI.C, S.Fr, S.Ctx);
  }

  static void hCall(Interpreter &IP, const DecodedInst &DI, TS &S,
                    unsigned &) {
    const auto *CI = cast<CallInst>(DI.I);
    std::vector<uint64_t> Args;
    Args.reserve(DI.Extra.size());
    for (const DecodedOperand &Op : DI.Extra)
      Args.push_back(IP.evalDecoded(Op, S.Fr, S.Ctx));
    uint64_t R = IP.execCallImpl(CI, DI.Intr, Args, S.Fr, S.Ctx);
    if (DI.Dest != DecodedInst::NoSlot)
      S.Fr.Slots[DI.Dest] = R;
  }

  static void hKernelLaunch(Interpreter &IP, const DecodedInst &DI, TS &S,
                            unsigned &) {
    const auto *KL = cast<KernelLaunchInst>(DI.I);
    if (S.Ctx.OnGPU)
      reportFatalError("nested kernel launch on the GPU");
    uint64_t Grid = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    uint64_t Block = IP.evalDecoded(DI.B, S.Fr, S.Ctx);
    if (Grid * Block == 0)
      reportFatalError("kernel launched with zero threads");
    std::vector<uint64_t> Args;
    Args.reserve(DI.Extra.size());
    for (const DecodedOperand &Op : DI.Extra)
      Args.push_back(IP.evalDecoded(Op, S.Fr, S.Ctx));
    IP.execKernelLaunchImpl(KL, Grid, Block, Args, S.Ctx);
  }

  static void hBr(Interpreter &, const DecodedInst &DI, TS &S,
                  unsigned &PC) {
    S.PrevBB = DI.SrcBB;
    PC = DI.Target0;
  }

  static void hCondBr(Interpreter &IP, const DecodedInst &DI, TS &S,
                      unsigned &PC) {
    uint64_t C = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    S.PrevBB = DI.SrcBB;
    PC = (C & 1) ? DI.Target0 : DI.Target1;
  }

  static void hRet(Interpreter &IP, const DecodedInst &DI, TS &S,
                   unsigned &) {
    uint64_t V = IP.evalDecoded(DI.A, S.Fr, S.Ctx);
    IP.popFrame(S.Fr);
    S.RetVal = V;
    S.Returned = true;
  }

  static void hRetVoid(Interpreter &IP, const DecodedInst &, TS &S,
                       unsigned &) {
    IP.popFrame(S.Fr);
    S.RetVal = 0;
    S.Returned = true;
  }

  static void hPhiGroup(Interpreter &IP, const DecodedInst &DI, TS &S,
                        unsigned &) {
    // Evaluate the whole group against the dynamic predecessor
    // atomically: all reads happen before any write, exactly like the
    // switch walk's pending list.
    std::vector<uint64_t> Pending;
    Pending.reserve(DI.Phis.size());
    for (const DecodedPhi &P : DI.Phis) {
      const DecodedOperand *In = nullptr;
      for (const auto &[BB, Op] : P.Incoming)
        if (BB == S.PrevBB) {
          In = &Op;
          break;
        }
      if (!In)
        reportFatalError("phi has no incoming value for predecessor in '" +
                         S.DF.F->getName() + "'");
      Pending.push_back(IP.evalDecoded(*In, S.Fr, S.Ctx));
    }
    for (unsigned I = 0, E = unsigned(DI.Phis.size()); I != E; ++I)
      S.Fr.Slots[DI.Phis[I].Dest] = Pending[I];
  }

  /// Indexed by DOp; order must match the enum exactly.
  static constexpr Handler Table[NumDOps] = {
      hAlloca,     hLoad,       hStore,      hGEP,        hBinAdd,
      hBinSub,     hBinMul,     hBinSDiv,    hBinSRem,    hBinAnd,
      hBinOr,      hBinXor,     hBinShl,     hBinAShr,    hBinLShr,
      hBinFAdd,    hBinFSub,    hBinFMul,    hBinFDiv,    hCmpEQ,
      hCmpNE,      hCmpSLT,     hCmpSLE,     hCmpSGT,     hCmpSGE,
      hCmpULT,     hCmpULE,     hCmpUGT,     hCmpUGE,     hCmpFOEQ,
      hCmpFONE,    hCmpFOLT,    hCmpFOLE,    hCmpFOGT,    hCmpFOGE,
      hCastTrunc,  hCastZExt,   hCastSExt,   hCastFPToSI, hCastSIToFP,
      hCastFPTrunc, hCastBit,   hSelect,     hCall,       hKernelLaunch,
      hBr,         hCondBr,     hRet,        hRetVoid,    hPhiGroup,
  };
};

} // namespace cgcm

uint64_t Interpreter::execDecoded(const DecodedFunction &DF, Frame &Fr,
                                  ExecContext &Ctx) {
  TableState S{Fr, Ctx, DF};
  const DecodedInst *Code = DF.Code.data();
  unsigned PC = 0;
  while (!S.Returned) {
    const DecodedInst &DI = Code[PC++];
    chargeOps(1, Ctx);
    ++OpcodeCounts[DI.KindIdx];
    TableOps::Table[static_cast<unsigned>(DI.Op)](*this, DI, S, PC);
  }
  return S.RetVal;
}
