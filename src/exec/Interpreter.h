//===- exec/Interpreter.h - IR interpreter ----------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR interpreter behind Machine. CPU code interprets directly
/// against host memory; GPU kernels interpret per-thread against device
/// memory (or host memory under the inspector-executor policy, which
/// additionally collects the set of accessed allocation units).
///
/// Register convention: every SSA value is a 64-bit slot. Integers are
/// stored sign-extended to 64 bits; floating-point values of both widths
/// are stored as the bit pattern of a double (float-typed operations
/// round through float precision); pointers are simulated addresses.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_EXEC_INTERPRETER_H
#define CGCM_EXEC_INTERPRETER_H

#include "exec/Decoded.h"
#include "exec/Machine.h"

#include <set>

namespace cgcm {

/// Per-execution context: CPU vs GPU, thread identity, and optional
/// inspector access collection.
struct ExecContext {
  bool OnGPU = false;
  /// When true (Trap/Managed), a GPU access to host memory faults and a
  /// CPU access to device memory faults.
  bool EnforceSpace = true;
  uint64_t Tid = 0;
  uint64_t NTid = 1;
  /// GPU-side op counter (per launch); null on the CPU.
  uint64_t *GpuOpCounter = nullptr;
  /// DyManD-style demand paging is active (LaunchPolicy::DemandManaged).
  bool DemandPage = false;
  /// Inspector-executor collection (null when not inspecting).
  std::set<uint64_t> *ReadUnits = nullptr;
  std::set<uint64_t> *WriteUnits = nullptr;
  uint64_t *AccessCount = nullptr;
};

class Interpreter {
public:
  explicit Interpreter(Machine &M) : M(M) {}
  /// Flushes the per-instance dispatch/fence tallies into the process-wide
  /// metrics registry (support/Metrics.h) — one batched add per opcode
  /// instead of an atomic on every dispatched instruction.
  ~Interpreter();

  /// Executes \p F with \p Args; returns the register value of the
  /// returned result (0 for void). Dispatches per the Machine's
  /// DispatchMode: decoded handler table (default) or the reference
  /// switch walk — bit-identical by construction.
  uint64_t execFunction(Function *F, const std::vector<uint64_t> &Args,
                        ExecContext &Ctx);

private:
  struct Frame;
  /// Per-invocation state threaded through the decoded handlers.
  struct TableState;
  /// The decoded handlers (static, one per DOp) live in this friend so
  /// Interpreter.h does not declare fifty functions.
  friend struct TableOps;

  /// Opcode dispatch tallies, indexed by Value::ValueKind for the
  /// instruction range [InstBegin, InstEnd].
  static constexpr unsigned NumOpcodeKinds =
      static_cast<unsigned>(Value::ValueKind::InstEnd) -
      static_cast<unsigned>(Value::ValueKind::InstBegin) + 1;
  uint64_t OpcodeCounts[NumOpcodeKinds] = {};
  /// How often memoryFor consulted the stream engine's pending-range set
  /// at a host use point.
  uint64_t HostFenceChecks = 0;

  /// The reference tree-walking loop (DispatchMode::Switch).
  uint64_t execSwitch(Function *F, const FunctionLayout &L, Frame &Fr,
                      ExecContext &Ctx);
  /// The decoded handler-table loop (DispatchMode::Table).
  uint64_t execDecoded(const DecodedFunction &DF, Frame &Fr, ExecContext &Ctx);

  uint64_t evalOperand(const Value *V, Frame &Fr, ExecContext &Ctx);
  uint64_t evalDecoded(const DecodedOperand &Op, Frame &Fr, ExecContext &Ctx);
  /// A module global's address in \p Ctx (host address, or the home
  /// device's cuModuleGetGlobal region on the GPU under space
  /// enforcement). Shared by both operand evaluators; resolution has
  /// side effects (first GPU touch allocates; lookup touches metrics).
  uint64_t resolveGlobal(const GlobalVariable *GV, ExecContext &Ctx);
  /// Charges \p N interpreted ops (op-limit guard, CPU/GPU attribution).
  void chargeOps(uint64_t N, ExecContext &Ctx);
  /// Frees the frame's allocas (reverse order) and pops the call depth.
  void popFrame(Frame &Fr);
  void execKernelLaunch(const KernelLaunchInst *KL, Frame &Fr,
                        ExecContext &Ctx);
  /// Launch body shared by both dispatch modes; \p Grid, \p Block and
  /// \p Args are pre-evaluated (and \p Threads pre-checked nonzero).
  void execKernelLaunchImpl(const KernelLaunchInst *KL, uint64_t Grid,
                            uint64_t Block,
                            const std::vector<uint64_t> &Args,
                            ExecContext &Ctx);
  uint64_t execCall(const CallInst *CI, Frame &Fr, ExecContext &Ctx);
  /// Call body shared by both dispatch modes; \p K and \p Args are
  /// pre-resolved.
  uint64_t execCallImpl(const CallInst *CI, Machine::Intrinsic K,
                        const std::vector<uint64_t> &Args, Frame &Fr,
                        ExecContext &Ctx);
  uint64_t loadValue(uint64_t Addr, Type *Ty, ExecContext &Ctx);
  void storeValue(uint64_t Addr, uint64_t Bits, Type *Ty, ExecContext &Ctx);
  /// Resolves the memory space for an access, translating \p Addr when
  /// demand paging moves the data.
  SimMemory &memoryFor(uint64_t &Addr, bool IsWrite, uint64_t Size,
                       ExecContext &Ctx);

  Machine &M;
  unsigned CallDepth = 0;
};

} // namespace cgcm

#endif // CGCM_EXEC_INTERPRETER_H
