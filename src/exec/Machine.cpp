//===- exec/Machine.cpp - Simulated CPU+GPU machine -------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"

#include "exec/Decoded.h"
#include "exec/Interpreter.h"
#include "support/ErrorHandling.h"

using namespace cgcm;

// Out of line: ~Decoded needs DecodedFunction complete.
Machine::~Machine() = default;

Machine::Machine()
    : Host(HostAddressBase, "host"), Pool(TM, Stats),
      Runtime(std::make_unique<CGCMRuntime>(Host, Pool.device(0), TM, Stats)) {
  Pool.device(0).setTrace(&Trace);
  Runtime->setTrace(&Trace);
}

void Machine::setDevices(unsigned N, PlacementPolicy P) {
  Pool.setDeviceCount(N);
  for (unsigned D = 0; D != Pool.size(); ++D)
    Pool.device(D).setTrace(&Trace);
  Runtime->setPlacementPolicy(P);
  Runtime->setDevicePool(Pool.size() > 1 ? &Pool : nullptr);
  applyLaneLayout();
}

void Machine::applyLaneLayout() {
  if (Pool.size() <= 1)
    return;
  // Every engine carries the same stream count (setAsyncTransfers
  // configures them together), so the per-device lane block is uniform:
  // compute + Streams lanes per device, after the shared host lane 0.
  unsigned Streams = Pool.device(0).getStreamEngine().getConfig().Streams;
  unsigned PerDevice = Streams + 1;
  Trace.setLaneName(LaneHost, "host");
  for (unsigned D = 0; D != Pool.size(); ++D) {
    StreamEngine &Eng = Pool.device(D).getStreamEngine();
    Eng.setLaneBase(D * PerDevice);
    std::string Dev = "dev" + std::to_string(D);
    Eng.setMetricPrefix(Dev + ".");
    Trace.setLaneName(D * PerDevice + LaneCompute, Dev + "/gpu-compute");
    for (unsigned S = 0; S != Streams; ++S)
      Trace.setLaneName(D * PerDevice + laneForStream(S),
                        Dev + "/stream-" + std::to_string(S));
  }
}

void Machine::loadModule(Module &M) {
  assert(!LoadedModule && "Machine is one-shot; create a new one per run");
  LoadedModule = &M;
  for (const auto &GV : M.globals()) {
    uint64_t Addr = Host.allocate(GV->getSizeInBytes());
    GlobalAddrs[GV.get()] = Addr;
    AddrToGlobal[Addr] = GV.get();
    if (GV->hasInitializer())
      Host.write(Addr, GV->getInitializer().data(),
                 GV->getInitializer().size());
    else {
      std::vector<uint8_t> Zeros(GV->getSizeInBytes(), 0);
      Host.write(Addr, Zeros.data(), Zeros.size());
    }
  }
  // Relocations: write the addresses of referenced globals.
  for (const auto &GV : M.globals()) {
    uint64_t Base = GlobalAddrs[GV.get()];
    for (const GlobalVariable::Relocation &R : GV->getRelocations()) {
      uint64_t Target = GlobalAddrs.at(R.Target);
      Host.writeUInt(Base + R.ByteOffset, Target, 8);
    }
  }
}

uint64_t Machine::getGlobalAddress(const GlobalVariable *GV) const {
  auto It = GlobalAddrs.find(GV);
  if (It == GlobalAddrs.end())
    reportFatalError("global '" + GV->getName() + "' was never loaded");
  return It->second;
}

const GlobalVariable *Machine::findGlobalByAddress(uint64_t Addr) const {
  auto It = AddrToGlobal.find(Addr);
  return It == AddrToGlobal.end() ? nullptr : It->second;
}

const FunctionLayout &Machine::getLayout(const Function *F) {
  auto It = Layouts.find(F);
  if (It != Layouts.end())
    return It->second;
  FunctionLayout &L = Layouts[F];
  for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
    L.Slots[F->getArg(I)] = L.NumSlots++;
  for (const auto &BB : *F)
    for (const auto &Inst : *BB)
      if (!Inst->getType()->isVoidTy())
        L.Slots[Inst.get()] = L.NumSlots++;
  return L;
}

Machine::Intrinsic Machine::getIntrinsic(const Function *F) {
  auto It = Intrinsics.find(F);
  if (It != Intrinsics.end())
    return It->second;
  const std::string &N = F->getName();
  Intrinsic K = Intrinsic::None;
  if (N == "malloc")
    K = Intrinsic::Malloc;
  else if (N == "calloc")
    K = Intrinsic::Calloc;
  else if (N == "realloc")
    K = Intrinsic::Realloc;
  else if (N == "free")
    K = Intrinsic::Free;
  else if (N == "sqrt")
    K = Intrinsic::Sqrt;
  else if (N == "exp")
    K = Intrinsic::Exp;
  else if (N == "log")
    K = Intrinsic::Log;
  else if (N == "sin")
    K = Intrinsic::Sin;
  else if (N == "cos")
    K = Intrinsic::Cos;
  else if (N == "fabs")
    K = Intrinsic::Fabs;
  else if (N == "pow")
    K = Intrinsic::Pow;
  else if (N == "print_i64")
    K = Intrinsic::PrintI64;
  else if (N == "print_f64")
    K = Intrinsic::PrintF64;
  else if (N == "print_str")
    K = Intrinsic::PrintStr;
  else if (N == "__tid")
    K = Intrinsic::Tid;
  else if (N == "__ntid")
    K = Intrinsic::NTid;
  else if (N == "cgcm_map")
    K = Intrinsic::CgcmMap;
  else if (N == "cgcm_unmap")
    K = Intrinsic::CgcmUnmap;
  else if (N == "cgcm_release")
    K = Intrinsic::CgcmRelease;
  else if (N == "cgcm_map_array")
    K = Intrinsic::CgcmMapArray;
  else if (N == "cgcm_unmap_array")
    K = Intrinsic::CgcmUnmapArray;
  else if (N == "cgcm_release_array")
    K = Intrinsic::CgcmReleaseArray;
  else if (N == "cgcm_declare_global")
    K = Intrinsic::CgcmDeclareGlobal;
  else if (N == "cgcm_declare_alloca")
    K = Intrinsic::CgcmDeclareAlloca;
  Intrinsics[F] = K;
  return K;
}

int64_t Machine::run() {
  assert(LoadedModule && "no module loaded");
  if (Policy == LaunchPolicy::DemandManaged) {
    // Demand paging works without any compiler support, so the machine
    // itself registers the globals the management pass would have
    // declared.
    for (const auto &GV : LoadedModule->globals())
      Runtime->declareGlobal(GV->getName(), getGlobalAddress(GV.get()),
                             GV->getSizeInBytes(), GV->isConstant());
  }
  Function *Main = LoadedModule->getFunction("main");
  if (!Main || Main->isDeclaration())
    reportFatalError("module '" + LoadedModule->getName() + "' has no main");
  int64_t Ret = static_cast<int64_t>(runFunction(Main, {}));
  // End-of-run fence: the program is over, so the host observes every
  // in-flight transfer; records the overlap-aware wall clock. A no-op on
  // synchronous runs. Drained in device order: stalls accumulate
  // monotonically into the shared stats, so the last drain records the
  // pool-wide wall clock.
  for (unsigned D = 0; D != Pool.size(); ++D)
    Pool.device(D).getStreamEngine().drain();
  return Ret;
}

uint64_t Machine::runFunction(Function *F, const std::vector<uint64_t> &Args) {
  Interpreter Interp(*this);
  ExecContext Ctx;
  // Under demand paging CPU code must also fault resident units back.
  Ctx.DemandPage = Policy == LaunchPolicy::DemandManaged;
  return Interp.execFunction(F, Args, Ctx);
}
