//===- exec/Machine.h - Simulated CPU+GPU machine ---------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine owns the divided memories (host + device), the timing model,
/// the CGCM runtime, and an IR interpreter. It loads a Module (placing
/// globals in host memory) and executes `main`, interpreting CPU code
/// directly and dispatching KernelLaunch instructions to the GPU executor
/// under a configurable launch policy:
///
///  * Trap (default): kernels run on the device and fault on any host-
///    memory access — the raw, unmanaged behaviour that motivates CGCM.
///  * Managed: like Trap; used with the CGCM management pass, whose
///    map/unmap calls make all kernel accesses device-legal.
///  * InspectorExecutor: the idealized baseline of section 6.3 — an
///    oracle inspector enumerates accessed allocation units (charging
///    sequential inspection cost), one byte per accessed unit is
///    transferred each way, and the kernel then runs against host memory.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_EXEC_MACHINE_H
#define CGCM_EXEC_MACHINE_H

#include "gpusim/DevicePool.h"
#include "gpusim/GPUDevice.h"
#include "gpusim/SimMemory.h"
#include "gpusim/Timing.h"
#include "ir/Module.h"
#include "runtime/CGCMRuntime.h"
#include "support/Trace.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace cgcm {

enum class LaunchPolicy {
  Trap,              ///< Unmanaged: device-space faults surface the bug.
  Managed,           ///< With CGCM management: kernels see device memory.
  InspectorExecutor, ///< Idealized IE baseline (oracle inspection).
  CpuEmulation,      ///< Sequential baseline: kernels run as host loops at
                     ///< CPU cost with no transfers or launch overhead.
  DemandManaged,     ///< DyManD-style extension: no compiler-inserted
                     ///< communication at all; GPU accesses to host
                     ///< memory fault and map their allocation unit on
                     ///< demand, CPU accesses to demand-resident units
                     ///< fault the data back. Removes CGCM's indirection
                     ///< restriction (see docs/Extensions.md).
};

/// Precomputed register-slot assignment for one function.
struct FunctionLayout {
  std::map<const Value *, unsigned> Slots;
  unsigned NumSlots = 0;
};

struct DecodedFunction;

/// How the interpreter executes function bodies: Table precomputes each
/// function into dense handler-table form on first execution (the
/// default); Switch walks the IR with the original nested switches.
/// Both are observationally identical — Switch exists as the reference
/// semantics for differential testing.
enum class DispatchMode { Table, Switch };

class Machine {
public:
  Machine();
  ~Machine();
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  //===--------------------------------------------------------------------===//
  // Configuration
  //===--------------------------------------------------------------------===//

  TimingModel &getTiming() { return TM; }
  ExecStats &getStats() { return Stats; }
  SimMemory &getHostMemory() { return Host; }
  /// Device 0 — the only device unless setDevices grew the pool.
  GPUDevice &getDevice() { return Pool.device(0); }
  DevicePool &getDevicePool() { return Pool; }
  CGCMRuntime &getRuntime() { return *Runtime; }

  /// Grows the device pool to \p N simulated GPUs and selects the
  /// runtime's placement policy (docs/MultiGPU.md). N == 1 (the default)
  /// is byte-identical to the pre-pool machine. Call before loadModule.
  void setDevices(unsigned N,
                  PlacementPolicy P = PlacementPolicy::RoundRobin);
  unsigned getNumDevices() const { return Pool.size(); }

  void setLaunchPolicy(LaunchPolicy P) { Policy = P; }
  LaunchPolicy getLaunchPolicy() const { return Policy; }

  /// Configures the asynchronous transfer engine
  /// (docs/TransferEngine.md): \p Streams == 0 restores the default
  /// synchronous model; >= 1 enables async issue with that many stream
  /// lanes (>= 2 unlocks copy/compute overlap). Call before run().
  void setAsyncTransfers(unsigned Streams, bool Coalesce = true) {
    StreamEngineConfig C;
    C.Async = Streams > 0;
    C.Streams = Streams ? Streams : 1;
    C.Coalesce = Coalesce;
    for (unsigned D = 0; D != Pool.size(); ++D)
      Pool.device(D).getStreamEngine().configure(C);
    applyLaneLayout();
  }
  StreamEngine &getStreamEngine() { return Pool.device(0).getStreamEngine(); }

  /// The device memory an address belongs to. With one device this is
  /// always that device's memory (preserving historical fatal-error
  /// text for out-of-window addresses); with a pool the address's
  /// stride window picks the device.
  SimMemory &deviceMemoryFor(uint64_t Addr) {
    if (Pool.size() == 1)
      return Pool.device(0).getMemory();
    return Pool.deviceForAddress(Addr).getMemory();
  }

  /// Per-access allocation-unit bounds checking (slow; used in tests).
  void setCheckedMemory(bool V) { CheckedMemory = V; }
  bool isCheckedMemory() const { return CheckedMemory; }

  /// Hard cap on interpreted operations (runaway guard). 0 = unlimited.
  void setOpLimit(uint64_t Limit) { OpLimit = Limit; }
  uint64_t getOpLimit() const { return OpLimit; }

  /// Selects the interpreter dispatch strategy. Call any time; decoded
  /// functions are cached independently of the mode.
  void setDispatchMode(DispatchMode D) { Dispatch = D; }
  DispatchMode getDispatchMode() const { return Dispatch; }

  /// The decoded form of \p F, built on first request (exec/Decoded.h).
  const DecodedFunction &getDecoded(const Function *F);

  /// The machine's structured event trace (docs/Observability.md).
  /// Disabled by default; enabling it makes the runtime, the device, and
  /// the interpreter emit events timestamped in modeled cycles.
  TraceCollector &getTraceCollector() { return Trace; }
  void setTracingEnabled(bool V) { Trace.setEnabled(V); }
  bool isTracingEnabled() const { return Trace.isEnabled(); }

  //===--------------------------------------------------------------------===//
  // Program loading and execution
  //===--------------------------------------------------------------------===//

  /// Places globals in host memory (applying initializers and
  /// relocations) and prepares function layouts.
  void loadModule(Module &M);

  /// Host address of a loaded global.
  uint64_t getGlobalAddress(const GlobalVariable *GV) const;

  /// The module global matching a host address, or null.
  const GlobalVariable *findGlobalByAddress(uint64_t Addr) const;

  /// Runs `main` (no arguments) and returns its exit value.
  int64_t run();

  /// Runs an arbitrary defined function with integer/pointer arguments.
  uint64_t runFunction(Function *F, const std::vector<uint64_t> &Args);

  /// Output accumulated by print_* builtins.
  const std::string &getOutput() const { return Output; }

  const FunctionLayout &getLayout(const Function *F);

  Module *getLoadedModule() const { return LoadedModule; }

  /// Builtin functions the executor implements natively.
  enum class Intrinsic {
    None,
    Malloc,
    Calloc,
    Realloc,
    Free,
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Fabs,
    Pow,
    PrintI64,
    PrintF64,
    PrintStr,
    Tid,
    NTid,
    CgcmMap,
    CgcmUnmap,
    CgcmRelease,
    CgcmMapArray,
    CgcmUnmapArray,
    CgcmReleaseArray,
    CgcmDeclareGlobal,
    CgcmDeclareAlloca,
  };

  Intrinsic getIntrinsic(const Function *F);

private:
  /// Assigns per-device trace-lane bases, lane names, and metric
  /// prefixes; a no-op while the pool holds one device.
  void applyLaneLayout();

  TimingModel TM;
  ExecStats Stats;
  SimMemory Host;
  DevicePool Pool;
  TraceCollector Trace;
  std::unique_ptr<CGCMRuntime> Runtime;
  LaunchPolicy Policy = LaunchPolicy::Trap;
  DispatchMode Dispatch = DispatchMode::Table;
  bool CheckedMemory = false;
  uint64_t OpLimit = 0;
  /// Lazily decoded function bodies (Table dispatch). The Machine is
  /// one-shot per module, so entries never go stale.
  std::map<const Function *, std::unique_ptr<DecodedFunction>> Decoded;

  Module *LoadedModule = nullptr;
  std::map<const GlobalVariable *, uint64_t> GlobalAddrs;
  std::map<uint64_t, const GlobalVariable *> AddrToGlobal;
  std::map<const Function *, FunctionLayout> Layouts;
  std::map<const Function *, Intrinsic> Intrinsics;
  std::string Output;
  uint64_t TotalOps = 0;
  /// Allocation-unit bases currently resident on the device because a
  /// kernel faulted them in (DemandManaged policy only).
  std::set<uint64_t> DemandResident;

  friend class Interpreter;
  /// The interpreter's decoded-dispatch handlers (Interpreter.cpp).
  friend struct TableOps;
};

} // namespace cgcm

#endif // CGCM_EXEC_MACHINE_H
