//===- frontend/AST.h - MiniC abstract syntax tree -------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniC. The tree is produced by the Parser and consumed by
/// IRGen; nodes are plain structs with a Kind tag (the AST is internal to
/// the frontend, so it uses a lighter-weight discrimination scheme than
/// the IR's Casting.h hierarchy).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FRONTEND_AST_H
#define CGCM_FRONTEND_AST_H

#include "frontend/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace cgcm {

/// A declared MiniC type: base scalar + pointer depth + array dimensions.
/// `double *A[4]` is {Double, ptr 1, dims [4]} — an array of 4 pointers.
struct ASTType {
  enum class Base { Void, Char, Int, Long, Float, Double };

  Base B = Base::Int;
  unsigned PtrDepth = 0;
  std::vector<uint64_t> ArrayDims;
  bool IsConst = false;

  bool isVoid() const {
    return B == Base::Void && PtrDepth == 0 && ArrayDims.empty();
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr {
  enum class Kind {
    IntLit,
    FloatLit,
    StringLit,
    Var,
    Unary,
    Binary,
    Assign,
    Cond,
    Call,
    Index,
    Cast,
    Sizeof,
  };

  explicit Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  virtual ~Expr() = default;

  Kind K;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr(int64_t V, SourceLoc Loc) : Expr(Kind::IntLit, Loc), Value(V) {}
  int64_t Value;
};

struct FloatLitExpr : Expr {
  FloatLitExpr(double V, SourceLoc Loc) : Expr(Kind::FloatLit, Loc), Value(V) {}
  double Value;
};

struct StringLitExpr : Expr {
  StringLitExpr(std::string V, SourceLoc Loc)
      : Expr(Kind::StringLit, Loc), Value(std::move(V)) {}
  std::string Value;
};

struct VarExpr : Expr {
  VarExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::Var, Loc), Name(std::move(Name)) {}
  std::string Name;
};

struct UnaryExpr : Expr {
  enum class Op { Neg, Not, BitNot, Deref, AddrOf };
  UnaryExpr(Op O, ExprPtr Sub, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), O(O), Sub(std::move(Sub)) {}
  Op O;
  ExprPtr Sub;
};

struct BinaryExpr : Expr {
  enum class Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    LogAnd,
    LogOr,
    EQ,
    NE,
    LT,
    LE,
    GT,
    GE,
  };
  BinaryExpr(Op O, ExprPtr L, ExprPtr R, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), O(O), LHS(std::move(L)), RHS(std::move(R)) {}
  Op O;
  ExprPtr LHS, RHS;
};

struct AssignExpr : Expr {
  /// Compound assignments carry the arithmetic op; plain `=` has no op.
  enum class Op { None, Add, Sub, Mul, Div };
  AssignExpr(Op O, ExprPtr L, ExprPtr R, SourceLoc Loc)
      : Expr(Kind::Assign, Loc), O(O), LHS(std::move(L)), RHS(std::move(R)) {}
  Op O;
  ExprPtr LHS, RHS;
};

struct CondExpr : Expr {
  CondExpr(ExprPtr C, ExprPtr T, ExprPtr F, SourceLoc Loc)
      : Expr(Kind::Cond, Loc), Cond(std::move(C)), TrueE(std::move(T)),
        FalseE(std::move(F)) {}
  ExprPtr Cond, TrueE, FalseE;
};

struct CallExpr : Expr {
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
};

struct IndexExpr : Expr {
  IndexExpr(ExprPtr Base, ExprPtr Idx, SourceLoc Loc)
      : Expr(Kind::Index, Loc), Base(std::move(Base)), Idx(std::move(Idx)) {}
  ExprPtr Base, Idx;
};

struct CastExpr : Expr {
  CastExpr(ASTType To, ExprPtr Sub, SourceLoc Loc)
      : Expr(Kind::Cast, Loc), To(To), Sub(std::move(Sub)) {}
  ASTType To;
  ExprPtr Sub;
};

struct SizeofExpr : Expr {
  SizeofExpr(ASTType Of, SourceLoc Loc) : Expr(Kind::Sizeof, Loc), Of(Of) {}
  ASTType Of;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt {
  enum class Kind {
    Block,
    Decl,
    Expr,
    If,
    For,
    While,
    Return,
    Break,
    Continue,
    Launch,
    Empty,
  };

  explicit Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  virtual ~Stmt() = default;

  Kind K;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  BlockStmt(std::vector<StmtPtr> Body, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Body(std::move(Body)) {}
  std::vector<StmtPtr> Body;
};

struct DeclStmt : Stmt {
  DeclStmt(ASTType Ty, std::string Name, ExprPtr Init, SourceLoc Loc)
      : Stmt(Kind::Decl, Loc), Ty(Ty), Name(std::move(Name)),
        Init(std::move(Init)) {}
  ASTType Ty;
  std::string Name;
  ExprPtr Init; ///< May be null.
};

struct ExprStmt : Stmt {
  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(Kind::Expr, Loc), E(std::move(E)) {}
  ExprPtr E;
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr C, StmtPtr T, StmtPtr F, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(C)), Then(std::move(T)),
        Else(std::move(F)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
};

struct ForStmt : Stmt {
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Inc, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Inc(std::move(Inc)), Body(std::move(Body)) {}
  StmtPtr Init; ///< Decl or expression statement; may be null.
  ExprPtr Cond; ///< May be null (infinite loop).
  ExprPtr Inc;  ///< May be null.
  StmtPtr Body;
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr C, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(C)), Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
};

struct ReturnStmt : Stmt {
  ReturnStmt(ExprPtr V, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(V)) {}
  ExprPtr Value; ///< May be null.
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
};

struct EmptyStmt : Stmt {
  explicit EmptyStmt(SourceLoc Loc) : Stmt(Kind::Empty, Loc) {}
};

/// Manual kernel launch: `launch f<<<grid, block>>>(args);`.
struct LaunchStmt : Stmt {
  LaunchStmt(std::string Kernel, ExprPtr Grid, ExprPtr Block,
             std::vector<ExprPtr> Args, SourceLoc Loc)
      : Stmt(Kind::Launch, Loc), Kernel(std::move(Kernel)),
        Grid(std::move(Grid)), Block(std::move(Block)), Args(std::move(Args)) {}
  std::string Kernel;
  ExprPtr Grid, Block;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

/// A global variable definition. The initializer is a flat list of
/// scalar constant expressions or string literals (strings in a pointer
/// array become separate char-array globals plus relocations).
struct GlobalDecl {
  ASTType Ty;
  std::string Name;
  std::vector<ExprPtr> Init; ///< Empty means zero-initialized.
  SourceLoc Loc;
};

struct ParamDecl {
  ASTType Ty;
  std::string Name;
};

struct FuncDecl {
  ASTType RetTy;
  std::string Name;
  std::vector<ParamDecl> Params;
  StmtPtr Body; ///< Null for declarations.
  bool IsKernel = false;
  SourceLoc Loc;
};

struct TranslationUnit {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Functions;
};

} // namespace cgcm

#endif // CGCM_FRONTEND_AST_H
