//===- frontend/IRGen.cpp - AST to IR lowering ------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/IRGen.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"

#include <cstring>
#include <algorithm>
#include <map>

using namespace cgcm;

namespace {

class IRGen {
public:
  IRGen(const TranslationUnit &TU, const std::string &ModuleName)
      : TU(TU), M(std::make_unique<Module>(ModuleName)), B(*M) {}

  std::unique_ptr<Module> run() {
    declareBuiltins();
    genGlobals();
    declareFunctions();
    for (const FuncDecl &FD : TU.Functions)
      if (FD.Body)
        genFunctionBody(FD);
    return std::move(M);
  }

private:
  //===--------------------------------------------------------------------===//
  // Types and diagnostics
  //===--------------------------------------------------------------------===//

  [[noreturn]] void error(SourceLoc Loc, const std::string &Msg) {
    reportFatalError("semantic error at " + Loc.getString() + ": " + Msg);
  }

  Type *scalarType(ASTType::Base BaseKind) {
    TypeContext &Ctx = M->getContext();
    switch (BaseKind) {
    case ASTType::Base::Void:
      return Ctx.getVoidTy();
    case ASTType::Base::Char:
      return Ctx.getInt8Ty();
    case ASTType::Base::Int:
      return Ctx.getInt32Ty();
    case ASTType::Base::Long:
      return Ctx.getInt64Ty();
    case ASTType::Base::Float:
      return Ctx.getFloatTy();
    case ASTType::Base::Double:
      return Ctx.getDoubleTy();
    }
    CGCM_UNREACHABLE("covered switch");
  }

  Type *lowerType(const ASTType &Ty) {
    Type *T = scalarType(Ty.B);
    for (unsigned I = 0; I != Ty.PtrDepth; ++I)
      T = M->getContext().getPointerTo(T);
    // Dims are outermost first: `double A[N][M]` is [N x [M x double]].
    for (auto It = Ty.ArrayDims.rbegin(), E = Ty.ArrayDims.rend(); It != E;
         ++It)
      T = M->getContext().getArrayTy(T, *It);
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Builtins, globals, signatures
  //===--------------------------------------------------------------------===//

  Function *declare(const std::string &Name, Type *Ret,
                    std::vector<Type *> Params) {
    return M->getOrCreateFunction(
        Name, M->getContext().getFunctionTy(Ret, std::move(Params)));
  }

  void declareBuiltins() {
    TypeContext &Ctx = M->getContext();
    Type *I64 = Ctx.getInt64Ty();
    Type *F64 = Ctx.getDoubleTy();
    Type *I8Ptr = Ctx.getPointerTo(Ctx.getInt8Ty());
    Type *VoidTy = Ctx.getVoidTy();
    declare("malloc", I8Ptr, {I64});
    declare("calloc", I8Ptr, {I64, I64});
    declare("realloc", I8Ptr, {I8Ptr, I64});
    declare("free", VoidTy, {I8Ptr});
    for (const char *FName : {"sqrt", "exp", "log", "sin", "cos", "fabs"})
      declare(FName, F64, {F64});
    declare("pow", F64, {F64, F64});
    declare("print_i64", VoidTy, {I64});
    declare("print_f64", VoidTy, {F64});
    declare("print_str", VoidTy, {I8Ptr});
    declare("__tid", I64, {});
    declare("__ntid", I64, {});
  }

  /// Const-folds a global initializer element.
  void foldScalarInto(const Expr *E, Type *ElemTy, std::vector<uint8_t> &Out,
                      uint64_t Offset) {
    double FV = 0;
    int64_t IV = 0;
    bool IsFloat = false;
    const Expr *Cur = E;
    bool Negate = false;
    while (Cur->K == Expr::Kind::Unary) {
      const auto *U = static_cast<const UnaryExpr *>(Cur);
      if (U->O != UnaryExpr::Op::Neg)
        error(E->Loc, "unsupported constant initializer");
      Negate = !Negate;
      Cur = U->Sub.get();
    }
    if (Cur->K == Expr::Kind::IntLit) {
      IV = static_cast<const IntLitExpr *>(Cur)->Value;
      FV = static_cast<double>(IV);
    } else if (Cur->K == Expr::Kind::FloatLit) {
      FV = static_cast<const FloatLitExpr *>(Cur)->Value;
      IV = static_cast<int64_t>(FV);
      IsFloat = true;
    } else {
      error(E->Loc, "global initializers must be constant scalars or strings");
    }
    if (Negate) {
      IV = -IV;
      FV = -FV;
    }
    uint64_t Size = ElemTy->getSizeInBytes();
    if (Offset + Size > Out.size())
      error(E->Loc, "too many initializer elements");
    if (ElemTy->isFloatTy()) {
      float F = static_cast<float>(FV);
      std::memcpy(Out.data() + Offset, &F, 4);
    } else if (ElemTy->isDoubleTy()) {
      std::memcpy(Out.data() + Offset, &FV, 8);
    } else if (ElemTy->isIntegerTy()) {
      if (IsFloat)
        error(E->Loc, "float literal initializing an integer global");
      std::memcpy(Out.data() + Offset, &IV, Size);
    } else {
      error(E->Loc, "unsupported initializer element type");
    }
  }

  GlobalVariable *internString(const std::string &S) {
    auto It = StringPool.find(S);
    if (It != StringPool.end())
      return It->second;
    TypeContext &Ctx = M->getContext();
    Type *ArrTy = Ctx.getArrayTy(Ctx.getInt8Ty(), S.size() + 1);
    GlobalVariable *GV = M->createGlobal(
        ArrTy, ".str" + std::to_string(StringPool.size()), /*IsConstant=*/true);
    std::vector<uint8_t> Bytes(S.begin(), S.end());
    Bytes.push_back(0);
    GV->setInitializer(std::move(Bytes));
    StringPool[S] = GV;
    return GV;
  }

  void genGlobals() {
    for (const GlobalDecl &GD : TU.Globals) {
      Type *Ty = lowerType(GD.Ty);
      if (Ty->isVoidTy())
        error(GD.Loc, "global of void type");
      GlobalVariable *GV = M->createGlobal(Ty, GD.Name, GD.Ty.IsConst);
      GlobalTypes[GD.Name] = Ty;
      if (GD.Init.empty())
        continue;

      std::vector<uint8_t> Bytes(Ty->getSizeInBytes(), 0);
      // Determine the element type a flat initializer walks over.
      Type *ElemTy = Ty;
      while (auto *AT = dyn_cast<ArrayType>(ElemTy))
        ElemTy = AT->getElementType();
      uint64_t ElemSize = ElemTy->getSizeInBytes();
      for (size_t I = 0; I != GD.Init.size(); ++I) {
        const Expr *E = GD.Init[I].get();
        uint64_t Offset = I * ElemSize;
        if (E->K == Expr::Kind::StringLit) {
          const auto *SL = static_cast<const StringLitExpr *>(E);
          if (ElemTy->isPointerTy()) {
            // char *names[] = {"a", "b"}: pointer elements relocated to
            // interned string globals (paper Listing 1's data shape).
            GlobalVariable *Str = internString(SL->Value);
            if (Offset + 8 > Bytes.size())
              error(E->Loc, "too many initializer elements");
            GV->addRelocation(Offset, Str);
          } else if (ElemTy->isIntegerTy() &&
                     cast<IntegerType>(ElemTy)->getBitWidth() == 8) {
            // char s[] = "...": copy bytes. Only valid as sole init.
            if (SL->Value.size() + 1 > Bytes.size())
              error(E->Loc, "string longer than char array");
            std::memcpy(Bytes.data(), SL->Value.data(), SL->Value.size());
          } else {
            error(E->Loc, "string initializer for a non-char, non-pointer "
                          "global");
          }
          continue;
        }
        foldScalarInto(E, ElemTy, Bytes, Offset);
      }
      GV->setInitializer(std::move(Bytes));
    }
  }

  void declareFunctions() {
    for (const FuncDecl &FD : TU.Functions) {
      Type *Ret = lowerType(FD.RetTy);
      std::vector<Type *> Params;
      for (const ParamDecl &P : FD.Params) {
        Type *PT = lowerType(P.Ty);
        if (PT->isVoidTy() || PT->isArrayTy())
          error(FD.Loc, "invalid parameter type in '" + FD.Name + "'");
        Params.push_back(PT);
      }
      Function *F = declare(FD.Name, Ret, std::move(Params));
      if (FD.IsKernel) {
        if (!Ret->isVoidTy())
          error(FD.Loc, "__kernel functions must return void");
        F->setKernel(true);
      }
      for (unsigned I = 0; I != FD.Params.size(); ++I)
        F->getArg(I)->setName(FD.Params[I].Name);
    }
  }

  //===--------------------------------------------------------------------===//
  // Function bodies
  //===--------------------------------------------------------------------===//

  struct LocalVar {
    Value *Addr;   ///< Alloca or global address.
    Type *ValueTy; ///< Type of the stored object.
  };

  void genFunctionBody(const FuncDecl &FD) {
    CurF = M->getFunction(FD.Name);
    assert(CurF && "function signature missing");
    if (!CurF->empty())
      error(FD.Loc, "redefinition of function '" + FD.Name + "'");
    Scopes.clear();
    Scopes.emplace_back();
    BreakTargets.clear();
    ContinueTargets.clear();

    BasicBlock *Entry = CurF->createBlock("entry");
    B.setInsertPoint(Entry);
    // Spill parameters to allocas; Mem2Reg re-promotes non-escaping ones.
    for (unsigned I = 0, E = CurF->getNumArgs(); I != E; ++I) {
      Argument *A = CurF->getArg(I);
      AllocaInst *Slot = B.createAlloca(A->getType(), nullptr, A->getName());
      B.createStore(A, Slot);
      Scopes.back()[A->getName()] = {Slot, A->getType()};
    }

    genStmt(FD.Body.get());

    if (!B.getInsertBlock()->getTerminator()) {
      Type *Ret = CurF->getReturnType();
      if (Ret->isVoidTy())
        B.createRet();
      else
        B.createRet(zeroValue(Ret, FD.Loc));
    }
    Scopes.clear();
  }

  Value *zeroValue(Type *Ty, SourceLoc Loc) {
    if (auto *IT = dyn_cast<IntegerType>(Ty))
      return M->getConstantInt(IT, 0);
    if (Ty->isFloatingPointTy())
      return M->getConstantFP(Ty, 0.0);
    if (auto *PT = dyn_cast<PointerType>(Ty))
      return M->getNullPtr(PT);
    error(Loc, "no zero value for type " + Ty->getString());
  }

  LocalVar *lookupLocal(const std::string &Name) {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Conversions
  //===--------------------------------------------------------------------===//

  Value *convert(Value *V, Type *To, SourceLoc Loc, bool Explicit = false) {
    Type *From = V->getType();
    if (From == To)
      return V;
    TypeContext &Ctx = M->getContext();
    if (From->isIntegerTy() && To->isIntegerTy()) {
      unsigned FB = cast<IntegerType>(From)->getBitWidth();
      unsigned TB = cast<IntegerType>(To)->getBitWidth();
      if (FB < TB)
        return B.createCast(FB == 1 ? CastInst::Op::ZExt : CastInst::Op::SExt,
                            V, To);
      return B.createCast(CastInst::Op::Trunc, V, To);
    }
    if (From->isIntegerTy() && To->isFloatingPointTy())
      return B.createCast(CastInst::Op::SIToFP, V, To);
    if (From->isFloatingPointTy() && To->isIntegerTy())
      return B.createCast(CastInst::Op::FPToSI, V, To);
    if (From->isFloatTy() && To->isDoubleTy())
      return B.createCast(CastInst::Op::FPExt, V, To);
    if (From->isDoubleTy() && To->isFloatTy())
      return B.createCast(CastInst::Op::FPTrunc, V, To);
    if (From->isPointerTy() && To->isPointerTy())
      return B.createCast(CastInst::Op::Bitcast, V, To);
    if (From->isPointerTy() && To->isIntegerTy() && Explicit) {
      Value *I = B.createCast(CastInst::Op::PtrToInt, V, Ctx.getInt64Ty());
      return convert(I, To, Loc, Explicit);
    }
    if (From->isIntegerTy() && To->isPointerTy() && Explicit) {
      Value *I = convert(V, Ctx.getInt64Ty(), Loc, Explicit);
      return B.createCast(CastInst::Op::IntToPtr, I, To);
    }
    error(Loc, "cannot convert " + From->getString() + " to " +
                   To->getString());
  }

  /// Converts to an i1 condition value.
  Value *toBool(Value *V, SourceLoc Loc) {
    Type *Ty = V->getType();
    if (auto *IT = dyn_cast<IntegerType>(Ty)) {
      if (IT->getBitWidth() == 1)
        return V;
      return B.createCmp(CmpInst::Predicate::NE, V,
                         M->getConstantInt(IT, 0));
    }
    if (Ty->isFloatingPointTy())
      return B.createCmp(CmpInst::Predicate::FONE, V,
                         M->getConstantFP(Ty, 0.0));
    if (auto *PT = dyn_cast<PointerType>(Ty))
      return B.createCmp(CmpInst::Predicate::NE, V, M->getNullPtr(PT));
    error(Loc, "value of type " + Ty->getString() + " is not a condition");
  }

  /// The common type two scalar operand types promote to (no IR emitted).
  Type *commonType(Type *LT, Type *RT, SourceLoc Loc) {
    if (LT == RT)
      return LT;
    TypeContext &Ctx = M->getContext();
    if (LT->isDoubleTy() || RT->isDoubleTy())
      return Ctx.getDoubleTy();
    if (LT->isFloatTy() || RT->isFloatTy())
      return Ctx.getFloatTy();
    if (LT->isIntegerTy() && RT->isIntegerTy())
      return Ctx.getIntegerTy(std::max({cast<IntegerType>(LT)->getBitWidth(),
                                        cast<IntegerType>(RT)->getBitWidth(),
                                        32u}));
    error(Loc, "no common type for " + LT->getString() + " and " +
                   RT->getString());
  }

  /// C-style usual arithmetic conversions for two scalar operands.
  std::pair<Value *, Value *> promote(Value *L, Value *R, SourceLoc Loc) {
    Type *LT = L->getType(), *RT = R->getType();
    TypeContext &Ctx = M->getContext();
    if (LT->isDoubleTy() || RT->isDoubleTy())
      return {convert(L, Ctx.getDoubleTy(), Loc),
              convert(R, Ctx.getDoubleTy(), Loc)};
    if (LT->isFloatTy() || RT->isFloatTy())
      return {convert(L, Ctx.getFloatTy(), Loc),
              convert(R, Ctx.getFloatTy(), Loc)};
    if (LT->isIntegerTy() && RT->isIntegerTy()) {
      unsigned W = std::max({cast<IntegerType>(LT)->getBitWidth(),
                             cast<IntegerType>(RT)->getBitWidth(), 32u});
      Type *T = Ctx.getIntegerTy(W);
      return {convert(L, T, Loc), convert(R, T, Loc)};
    }
    error(Loc, "invalid operands " + LT->getString() + " and " +
                   RT->getString());
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Generates the address of an lvalue expression.
  Value *genLValue(const Expr *E) {
    B.setCurrentLoc(E->Loc);
    switch (E->K) {
    case Expr::Kind::Var: {
      const auto *V = static_cast<const VarExpr *>(E);
      if (LocalVar *LV = lookupLocal(V->Name))
        return LV->Addr;
      if (GlobalVariable *GV = M->getGlobal(V->Name))
        return GV;
      error(E->Loc, "unknown variable '" + V->Name + "'");
    }
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      if (U->O == UnaryExpr::Op::Deref) {
        Value *P = genRValue(U->Sub.get());
        if (!P->getType()->isPointerTy())
          error(E->Loc, "dereference of a non-pointer");
        return P;
      }
      error(E->Loc, "expression is not assignable");
    }
    case Expr::Kind::Index: {
      const auto *IE = static_cast<const IndexExpr *>(E);
      Value *Base = genPointerBase(IE->Base.get());
      Value *Idx = convert(genRValue(IE->Idx.get()),
                           M->getContext().getInt64Ty(), E->Loc);
      return B.createGEP(Base, Idx);
    }
    default:
      error(E->Loc, "expression is not assignable");
    }
  }

  /// Generates a pointer for the base of an index or arithmetic: arrays
  /// yield their decayed address, pointers yield their value.
  Value *genPointerBase(const Expr *E) {
    // Arrays must not be loaded; use their address with decay.
    if (E->K == Expr::Kind::Var || E->K == Expr::Kind::Index) {
      Value *Addr = genLValue(E);
      auto *PT = cast<PointerType>(Addr->getType());
      if (isa<ArrayType>(PT->getPointeeType()))
        return decayArray(Addr);
      return B.createLoad(Addr);
    }
    Value *V = genRValue(E);
    if (!V->getType()->isPointerTy())
      error(E->Loc, "subscripted value is not a pointer or array");
    return V;
  }

  /// [N x T]* -> T* (address-preserving decay).
  Value *decayArray(Value *Addr) { return B.createArrayDecay(Addr); }

  Value *genRValue(const Expr *E) {
    B.setCurrentLoc(E->Loc);
    switch (E->K) {
    case Expr::Kind::IntLit:
      return M->getInt32(
          static_cast<int32_t>(static_cast<const IntLitExpr *>(E)->Value));
    case Expr::Kind::FloatLit:
      return M->getConstantFP(M->getContext().getDoubleTy(),
                              static_cast<const FloatLitExpr *>(E)->Value);
    case Expr::Kind::StringLit: {
      GlobalVariable *GV =
          internString(static_cast<const StringLitExpr *>(E)->Value);
      return decayArray(GV);
    }
    case Expr::Kind::Var: {
      const auto *V = static_cast<const VarExpr *>(E);
      Value *Addr = genLValue(E);
      auto *PT = cast<PointerType>(Addr->getType());
      if (isa<ArrayType>(PT->getPointeeType()))
        return decayArray(Addr);
      (void)V;
      return B.createLoad(Addr);
    }
    case Expr::Kind::Index: {
      Value *Addr = genLValue(E);
      auto *PT = cast<PointerType>(Addr->getType());
      if (isa<ArrayType>(PT->getPointeeType()))
        return decayArray(Addr);
      return B.createLoad(Addr);
    }
    case Expr::Kind::Unary:
      return genUnary(static_cast<const UnaryExpr *>(E));
    case Expr::Kind::Binary:
      return genBinary(static_cast<const BinaryExpr *>(E));
    case Expr::Kind::Assign:
      return genAssign(static_cast<const AssignExpr *>(E));
    case Expr::Kind::Cond:
      return genCond(static_cast<const CondExpr *>(E));
    case Expr::Kind::Call:
      return genCall(static_cast<const CallExpr *>(E));
    case Expr::Kind::Cast: {
      const auto *C = static_cast<const CastExpr *>(E);
      Type *To = lowerType(C->To);
      return convert(genRValue(C->Sub.get()), To, E->Loc, /*Explicit=*/true);
    }
    case Expr::Kind::Sizeof: {
      const auto *S = static_cast<const SizeofExpr *>(E);
      return M->getInt64(
          static_cast<int64_t>(lowerType(S->Of)->getSizeInBytes()));
    }
    }
    CGCM_UNREACHABLE("covered switch");
  }

  Value *genUnary(const UnaryExpr *E) {
    switch (E->O) {
    case UnaryExpr::Op::Neg: {
      Value *V = genRValue(E->Sub.get());
      if (V->getType()->isFloatingPointTy())
        return B.createBinOp(BinOpInst::Op::FSub,
                             M->getConstantFP(V->getType(), 0.0), V);
      auto [L, R] = promote(zeroValue(V->getType(), E->Loc), V, E->Loc);
      return B.createSub(L, R);
    }
    case UnaryExpr::Op::Not: {
      Value *C = toBool(genRValue(E->Sub.get()), E->Loc);
      return B.createBinOp(BinOpInst::Op::Xor, C, M->getInt1(true));
    }
    case UnaryExpr::Op::BitNot: {
      Value *V = genRValue(E->Sub.get());
      if (!V->getType()->isIntegerTy())
        error(E->Loc, "operand of ~ is not an integer");
      return B.createBinOp(
          BinOpInst::Op::Xor, V,
          M->getConstantInt(cast<IntegerType>(V->getType()), -1));
    }
    case UnaryExpr::Op::Deref: {
      Value *P = genRValue(E->Sub.get());
      if (!P->getType()->isPointerTy())
        error(E->Loc, "dereference of a non-pointer");
      return B.createLoad(P);
    }
    case UnaryExpr::Op::AddrOf:
      return genLValue(E->Sub.get());
    }
    CGCM_UNREACHABLE("covered switch");
  }

  Value *genBinary(const BinaryExpr *E) {
    using Op = BinaryExpr::Op;
    if (E->O == Op::LogAnd || E->O == Op::LogOr)
      return genShortCircuit(E);

    Value *L = genRValue(E->LHS.get());
    Value *R = genRValue(E->RHS.get());

    // Pointer arithmetic: p + i, p - i, i + p.
    if (E->O == Op::Add || E->O == Op::Sub) {
      if (L->getType()->isPointerTy() && R->getType()->isIntegerTy()) {
        Value *Idx = convert(R, M->getContext().getInt64Ty(), E->Loc);
        if (E->O == Op::Sub)
          Idx = B.createSub(M->getInt64(0), Idx);
        return B.createGEP(L, Idx);
      }
      if (E->O == Op::Add && R->getType()->isPointerTy() &&
          L->getType()->isIntegerTy()) {
        Value *Idx = convert(L, M->getContext().getInt64Ty(), E->Loc);
        return B.createGEP(R, Idx);
      }
    }
    // Pointer comparisons compare addresses.
    if (L->getType()->isPointerTy() && R->getType()->isPointerTy() &&
        E->O >= Op::EQ) {
      Type *I64 = M->getContext().getInt64Ty();
      L = B.createCast(CastInst::Op::PtrToInt, L, I64);
      R = B.createCast(CastInst::Op::PtrToInt, R, I64);
    }

    auto [PL, PR] = promote(L, R, E->Loc);
    bool FP = PL->getType()->isFloatingPointTy();
    switch (E->O) {
    case Op::Add:
      return B.createBinOp(FP ? BinOpInst::Op::FAdd : BinOpInst::Op::Add, PL,
                           PR);
    case Op::Sub:
      return B.createBinOp(FP ? BinOpInst::Op::FSub : BinOpInst::Op::Sub, PL,
                           PR);
    case Op::Mul:
      return B.createBinOp(FP ? BinOpInst::Op::FMul : BinOpInst::Op::Mul, PL,
                           PR);
    case Op::Div:
      return B.createBinOp(FP ? BinOpInst::Op::FDiv : BinOpInst::Op::SDiv, PL,
                           PR);
    case Op::Rem:
      if (FP)
        error(E->Loc, "%% requires integer operands");
      return B.createBinOp(BinOpInst::Op::SRem, PL, PR);
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::Shr: {
      if (FP)
        error(E->Loc, "bitwise operator requires integer operands");
      BinOpInst::Op BO = E->O == Op::And   ? BinOpInst::Op::And
                         : E->O == Op::Or  ? BinOpInst::Op::Or
                         : E->O == Op::Xor ? BinOpInst::Op::Xor
                         : E->O == Op::Shl ? BinOpInst::Op::Shl
                                           : BinOpInst::Op::AShr;
      return B.createBinOp(BO, PL, PR);
    }
    case Op::EQ:
    case Op::NE:
    case Op::LT:
    case Op::LE:
    case Op::GT:
    case Op::GE: {
      CmpInst::Predicate P;
      if (FP)
        P = E->O == Op::EQ   ? CmpInst::Predicate::FOEQ
            : E->O == Op::NE ? CmpInst::Predicate::FONE
            : E->O == Op::LT ? CmpInst::Predicate::FOLT
            : E->O == Op::LE ? CmpInst::Predicate::FOLE
            : E->O == Op::GT ? CmpInst::Predicate::FOGT
                             : CmpInst::Predicate::FOGE;
      else
        P = E->O == Op::EQ   ? CmpInst::Predicate::EQ
            : E->O == Op::NE ? CmpInst::Predicate::NE
            : E->O == Op::LT ? CmpInst::Predicate::SLT
            : E->O == Op::LE ? CmpInst::Predicate::SLE
            : E->O == Op::GT ? CmpInst::Predicate::SGT
                             : CmpInst::Predicate::SGE;
      return B.createCmp(P, PL, PR);
    }
    case Op::LogAnd:
    case Op::LogOr:
      break;
    }
    CGCM_UNREACHABLE("covered switch");
  }

  Value *genShortCircuit(const BinaryExpr *E) {
    bool IsAnd = E->O == BinaryExpr::Op::LogAnd;
    // -O0 style: the result lives in a temporary i1 slot, promoted later.
    AllocaInst *Slot =
        B.createAlloca(M->getContext().getInt1Ty(), nullptr, "sc");
    Value *L = toBool(genRValue(E->LHS.get()), E->Loc);
    B.createStore(L, Slot);
    BasicBlock *RHSBB = CurF->createBlock("sc.rhs");
    BasicBlock *EndBB = CurF->createBlock("sc.end");
    if (IsAnd)
      B.createCondBr(L, RHSBB, EndBB);
    else
      B.createCondBr(L, EndBB, RHSBB);
    B.setInsertPoint(RHSBB);
    Value *R = toBool(genRValue(E->RHS.get()), E->Loc);
    B.createStore(R, Slot);
    B.createBr(EndBB);
    B.setInsertPoint(EndBB);
    return B.createLoad(Slot);
  }

  Value *genCond(const CondExpr *E) {
    Value *C = toBool(genRValue(E->Cond.get()), E->Loc);
    BasicBlock *TrueBB = CurF->createBlock("cond.true");
    BasicBlock *FalseBB = CurF->createBlock("cond.false");
    BasicBlock *EndBB = CurF->createBlock("cond.end");
    B.createCondBr(C, TrueBB, FalseBB);

    B.setInsertPoint(TrueBB);
    Value *T = genRValue(E->TrueE.get());
    BasicBlock *TrueOut = B.getInsertBlock();

    B.setInsertPoint(FalseBB);
    Value *F = genRValue(E->FalseE.get());
    BasicBlock *FalseOut = B.getInsertBlock();

    // Unify the arm types (each conversion is emitted in its own arm),
    // then route both through a slot.
    Type *ResTy = commonType(T->getType(), F->getType(), E->Loc);
    if (T->getType() != ResTy) {
      B.setInsertPoint(TrueOut);
      T = convert(T, ResTy, E->Loc);
      TrueOut = B.getInsertBlock();
    }
    if (F->getType() != ResTy) {
      B.setInsertPoint(FalseOut);
      F = convert(F, ResTy, E->Loc);
      FalseOut = B.getInsertBlock();
    }
    AllocaInst *Slot = nullptr;
    {
      // The slot alloca must precede both arms; put it in the entry block.
      BasicBlock *Entry = CurF->getEntryBlock();
      IRBuilder EB(*M);
      EB.setInsertPoint(Entry->front());
      Slot = EB.createAlloca(ResTy, nullptr, "cond");
    }
    B.setInsertPoint(TrueOut);
    B.createStore(T, Slot);
    B.createBr(EndBB);
    B.setInsertPoint(FalseOut);
    B.createStore(F, Slot);
    B.createBr(EndBB);
    B.setInsertPoint(EndBB);
    return B.createLoad(Slot);
  }

  Value *genAssign(const AssignExpr *E) {
    Value *Addr = genLValue(E->LHS.get());
    auto *PT = cast<PointerType>(Addr->getType());
    Type *ElemTy = PT->getPointeeType();
    Value *R = genRValue(E->RHS.get());

    if (E->O != AssignExpr::Op::None) {
      Value *Old = B.createLoad(Addr);
      // Pointer compound assignment: p += i.
      if (ElemTy->isPointerTy()) {
        if (!R->getType()->isIntegerTy())
          error(E->Loc, "pointer compound assignment needs an integer");
        Value *Idx = convert(R, M->getContext().getInt64Ty(), E->Loc);
        if (E->O == AssignExpr::Op::Sub)
          Idx = B.createSub(M->getInt64(0), Idx);
        else if (E->O != AssignExpr::Op::Add)
          error(E->Loc, "invalid pointer compound assignment");
        R = B.createGEP(Old, Idx);
      } else {
        auto [L2, R2] = promote(Old, R, E->Loc);
        bool FP = L2->getType()->isFloatingPointTy();
        BinOpInst::Op BO;
        switch (E->O) {
        case AssignExpr::Op::Add:
          BO = FP ? BinOpInst::Op::FAdd : BinOpInst::Op::Add;
          break;
        case AssignExpr::Op::Sub:
          BO = FP ? BinOpInst::Op::FSub : BinOpInst::Op::Sub;
          break;
        case AssignExpr::Op::Mul:
          BO = FP ? BinOpInst::Op::FMul : BinOpInst::Op::Mul;
          break;
        case AssignExpr::Op::Div:
          BO = FP ? BinOpInst::Op::FDiv : BinOpInst::Op::SDiv;
          break;
        case AssignExpr::Op::None:
          CGCM_UNREACHABLE("handled above");
        }
        R = B.createBinOp(BO, L2, R2);
      }
    }
    Value *Converted = convert(R, ElemTy, E->Loc);
    B.createStore(Converted, Addr);
    return Converted;
  }

  Value *genCall(const CallExpr *E) {
    Function *Callee = M->getFunction(E->Callee);
    if (!Callee)
      error(E->Loc, "call to unknown function '" + E->Callee + "'");
    if (Callee->isKernel())
      error(E->Loc, "kernels must be invoked with 'launch'");
    FunctionType *FTy = Callee->getFunctionType();
    if (E->Args.size() != FTy->getNumParams())
      error(E->Loc, "wrong number of arguments to '" + E->Callee + "'");
    std::vector<Value *> Args;
    for (unsigned I = 0; I != E->Args.size(); ++I)
      Args.push_back(convert(genRValue(E->Args[I].get()),
                             FTy->getParamType(I), E->Loc));
    return B.createCall(Callee, Args);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  /// Starts a fresh block for code following a terminator so that
  /// statements after return/break/continue do not append to a terminated
  /// block (they become trivially unreachable).
  void ensureOpenBlock() {
    if (B.getInsertBlock()->getTerminator())
      B.setInsertPoint(CurF->createBlock("dead"));
  }

  void genStmt(const Stmt *S) {
    ensureOpenBlock();
    B.setCurrentLoc(S->Loc);
    switch (S->K) {
    case Stmt::Kind::Block: {
      Scopes.emplace_back();
      for (const StmtPtr &Sub : static_cast<const BlockStmt *>(S)->Body)
        genStmt(Sub.get());
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Decl: {
      const auto *D = static_cast<const DeclStmt *>(S);
      Type *Ty = lowerType(D->Ty);
      if (Ty->isVoidTy())
        error(S->Loc, "variable of void type");
      AllocaInst *Slot = B.createAlloca(Ty, nullptr, D->Name);
      Scopes.back()[D->Name] = {Slot, Ty};
      if (D->Init) {
        Value *V = genRValue(D->Init.get());
        if (Ty->isArrayTy())
          error(S->Loc, "array locals cannot be initialized with =");
        B.createStore(convert(V, Ty, S->Loc), Slot);
      }
      return;
    }
    case Stmt::Kind::Expr:
      genRValue(static_cast<const ExprStmt *>(S)->E.get());
      return;
    case Stmt::Kind::If: {
      const auto *I = static_cast<const IfStmt *>(S);
      Value *C = toBool(genRValue(I->Cond.get()), S->Loc);
      BasicBlock *ThenBB = CurF->createBlock("if.then");
      BasicBlock *ElseBB = I->Else ? CurF->createBlock("if.else") : nullptr;
      BasicBlock *EndBB = CurF->createBlock("if.end");
      B.createCondBr(C, ThenBB, ElseBB ? ElseBB : EndBB);
      B.setInsertPoint(ThenBB);
      genStmt(I->Then.get());
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(EndBB);
      if (ElseBB) {
        B.setInsertPoint(ElseBB);
        genStmt(I->Else.get());
        if (!B.getInsertBlock()->getTerminator())
          B.createBr(EndBB);
      }
      B.setInsertPoint(EndBB);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = static_cast<const WhileStmt *>(S);
      BasicBlock *CondBB = CurF->createBlock("while.cond");
      BasicBlock *BodyBB = CurF->createBlock("while.body");
      BasicBlock *EndBB = CurF->createBlock("while.end");
      B.createBr(CondBB);
      B.setInsertPoint(CondBB);
      Value *C = toBool(genRValue(W->Cond.get()), S->Loc);
      B.createCondBr(C, BodyBB, EndBB);
      B.setInsertPoint(BodyBB);
      BreakTargets.push_back(EndBB);
      ContinueTargets.push_back(CondBB);
      genStmt(W->Body.get());
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(CondBB);
      B.setInsertPoint(EndBB);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = static_cast<const ForStmt *>(S);
      Scopes.emplace_back();
      if (F->Init)
        genStmt(F->Init.get());
      BasicBlock *CondBB = CurF->createBlock("for.cond");
      BasicBlock *BodyBB = CurF->createBlock("for.body");
      BasicBlock *IncBB = CurF->createBlock("for.inc");
      BasicBlock *EndBB = CurF->createBlock("for.end");
      B.createBr(CondBB);
      B.setInsertPoint(CondBB);
      if (F->Cond) {
        Value *C = toBool(genRValue(F->Cond.get()), S->Loc);
        B.createCondBr(C, BodyBB, EndBB);
      } else {
        B.createBr(BodyBB);
      }
      B.setInsertPoint(BodyBB);
      BreakTargets.push_back(EndBB);
      ContinueTargets.push_back(IncBB);
      genStmt(F->Body.get());
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(IncBB);
      B.setInsertPoint(IncBB);
      if (F->Inc)
        genRValue(F->Inc.get());
      B.createBr(CondBB);
      B.setInsertPoint(EndBB);
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      Type *RetTy = CurF->getReturnType();
      if (R->Value) {
        if (RetTy->isVoidTy())
          error(S->Loc, "returning a value from a void function");
        B.createRet(convert(genRValue(R->Value.get()), RetTy, S->Loc));
      } else {
        if (!RetTy->isVoidTy())
          error(S->Loc, "missing return value");
        B.createRet();
      }
      return;
    }
    case Stmt::Kind::Break:
      if (BreakTargets.empty())
        error(S->Loc, "'break' outside a loop");
      B.createBr(BreakTargets.back());
      return;
    case Stmt::Kind::Continue:
      if (ContinueTargets.empty())
        error(S->Loc, "'continue' outside a loop");
      B.createBr(ContinueTargets.back());
      return;
    case Stmt::Kind::Launch: {
      const auto *L = static_cast<const LaunchStmt *>(S);
      Function *K = M->getFunction(L->Kernel);
      if (!K || !K->isKernel())
        error(S->Loc, "'" + L->Kernel + "' is not a kernel");
      Type *I64 = M->getContext().getInt64Ty();
      Value *Grid = convert(genRValue(L->Grid.get()), I64, S->Loc);
      Value *Block = convert(genRValue(L->Block.get()), I64, S->Loc);
      FunctionType *FTy = K->getFunctionType();
      if (L->Args.size() != FTy->getNumParams())
        error(S->Loc, "wrong number of launch arguments");
      std::vector<Value *> Args;
      for (unsigned I = 0; I != L->Args.size(); ++I)
        Args.push_back(convert(genRValue(L->Args[I].get()),
                               FTy->getParamType(I), S->Loc));
      B.setCurrentLoc(S->Loc);
      B.createKernelLaunch(K, Grid, Block, Args);
      return;
    }
    case Stmt::Kind::Empty:
      return;
    }
    CGCM_UNREACHABLE("covered switch");
  }

  const TranslationUnit &TU;
  std::unique_ptr<Module> M;
  IRBuilder B;
  Function *CurF = nullptr;
  std::vector<std::map<std::string, LocalVar>> Scopes;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
  std::map<std::string, GlobalVariable *> StringPool;
  std::map<std::string, Type *> GlobalTypes;
};

} // namespace

std::unique_ptr<Module> cgcm::generateIR(const TranslationUnit &TU,
                                         const std::string &ModuleName) {
  return IRGen(TU, ModuleName).run();
}

std::unique_ptr<Module> cgcm::compileMiniC(const std::string &Source,
                                           const std::string &ModuleName) {
  TranslationUnit TU = parseSource(Source);
  std::unique_ptr<Module> M = generateIR(TU, ModuleName);
  std::string Err;
  if (!verifyModule(*M, &Err))
    reportFatalError("IR verification failed after frontend for module '" +
                     ModuleName + "': " + Err);
  return M;
}
