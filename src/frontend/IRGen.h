//===- frontend/IRGen.h - AST to IR lowering --------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a MiniC TranslationUnit to CGCM IR in the classic -O0 style:
/// every local variable is an alloca, control flow is explicit CFG, and
/// scalar promotion to SSA happens later in the Mem2Reg pass.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FRONTEND_IRGEN_H
#define CGCM_FRONTEND_IRGEN_H

#include "frontend/AST.h"
#include "ir/Module.h"

#include <memory>
#include <string>

namespace cgcm {

/// Lowers \p TU into a fresh module named \p ModuleName. Semantic errors
/// (unknown names, type clashes) are fatal with source locations.
std::unique_ptr<Module> generateIR(const TranslationUnit &TU,
                                   const std::string &ModuleName);

/// Convenience: parse + lower + verify in one step.
std::unique_ptr<Module> compileMiniC(const std::string &Source,
                                     const std::string &ModuleName);

} // namespace cgcm

#endif // CGCM_FRONTEND_IRGEN_H
