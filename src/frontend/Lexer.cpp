//===- frontend/Lexer.cpp - MiniC lexer ------------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/ErrorHandling.h"

#include <cctype>
#include <map>

using namespace cgcm;

namespace {

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    for (;;) {
      Token T = next();
      bool Done = T.is(Token::Kind::Eof);
      Tokens.push_back(std::move(T));
      if (Done)
        return Tokens;
    }
  }

private:
  [[noreturn]] void error(const std::string &Msg) {
    reportFatalError("lex error at " + Loc.getString() + ": " + Msg);
  }

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Loc.Line;
      Loc.Col = 1;
    } else {
      ++Loc.Col;
    }
    return C;
  }

  void skipWhitespaceAndComments() {
    for (;;) {
      while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
        advance();
      if (peek() == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd())
          error("unterminated block comment");
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(Token::Kind K, SourceLoc At) {
    Token T;
    T.K = K;
    T.Loc = At;
    return T;
  }

  Token next() {
    skipWhitespaceAndComments();
    SourceLoc At = Loc;
    if (atEnd())
      return make(Token::Kind::Eof, At);

    char C = advance();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return identifierOrKeyword(C, At);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return number(C, At);

    switch (C) {
    case '(':
      return make(Token::Kind::LParen, At);
    case ')':
      return make(Token::Kind::RParen, At);
    case '{':
      return make(Token::Kind::LBrace, At);
    case '}':
      return make(Token::Kind::RBrace, At);
    case '[':
      return make(Token::Kind::LBracket, At);
    case ']':
      return make(Token::Kind::RBracket, At);
    case ',':
      return make(Token::Kind::Comma, At);
    case ';':
      return make(Token::Kind::Semi, At);
    case '?':
      return make(Token::Kind::Question, At);
    case ':':
      return make(Token::Kind::Colon, At);
    case '~':
      return make(Token::Kind::Tilde, At);
    case '^':
      return make(Token::Kind::Caret, At);
    case '%':
      return make(Token::Kind::Percent, At);
    case '+':
      if (peek() == '+') {
        advance();
        return make(Token::Kind::PlusPlus, At);
      }
      if (peek() == '=') {
        advance();
        return make(Token::Kind::PlusAssign, At);
      }
      return make(Token::Kind::Plus, At);
    case '-':
      if (peek() == '-') {
        advance();
        return make(Token::Kind::MinusMinus, At);
      }
      if (peek() == '=') {
        advance();
        return make(Token::Kind::MinusAssign, At);
      }
      return make(Token::Kind::Minus, At);
    case '*':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::StarAssign, At);
      }
      return make(Token::Kind::Star, At);
    case '/':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::SlashAssign, At);
      }
      return make(Token::Kind::Slash, At);
    case '&':
      if (peek() == '&') {
        advance();
        return make(Token::Kind::AmpAmp, At);
      }
      return make(Token::Kind::Amp, At);
    case '|':
      if (peek() == '|') {
        advance();
        return make(Token::Kind::PipePipe, At);
      }
      return make(Token::Kind::Pipe, At);
    case '!':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::BangEq, At);
      }
      return make(Token::Kind::Bang, At);
    case '=':
      if (peek() == '=') {
        advance();
        return make(Token::Kind::EqEq, At);
      }
      return make(Token::Kind::Assign, At);
    case '<':
      if (peek() == '<' && peek(1) == '<') {
        advance();
        advance();
        return make(Token::Kind::TripleLt, At);
      }
      if (peek() == '<') {
        advance();
        return make(Token::Kind::Shl, At);
      }
      if (peek() == '=') {
        advance();
        return make(Token::Kind::LtEq, At);
      }
      return make(Token::Kind::Lt, At);
    case '>':
      if (peek() == '>' && peek(1) == '>') {
        advance();
        advance();
        return make(Token::Kind::TripleGt, At);
      }
      if (peek() == '>') {
        advance();
        return make(Token::Kind::Shr, At);
      }
      if (peek() == '=') {
        advance();
        return make(Token::Kind::GtEq, At);
      }
      return make(Token::Kind::Gt, At);
    case '"':
      return stringLiteral(At);
    case '\'':
      return charLiteral(At);
    default:
      error(std::string("unexpected character '") + C + "'");
    }
  }

  Token identifierOrKeyword(char First, SourceLoc At) {
    std::string Text(1, First);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text.push_back(advance());

    static const std::map<std::string, Token::Kind> Keywords = {
        {"void", Token::Kind::KwVoid},       {"char", Token::Kind::KwChar},
        {"int", Token::Kind::KwInt},         {"long", Token::Kind::KwLong},
        {"float", Token::Kind::KwFloat},     {"double", Token::Kind::KwDouble},
        {"const", Token::Kind::KwConst},     {"if", Token::Kind::KwIf},
        {"else", Token::Kind::KwElse},       {"for", Token::Kind::KwFor},
        {"while", Token::Kind::KwWhile},     {"return", Token::Kind::KwReturn},
        {"break", Token::Kind::KwBreak},
        {"continue", Token::Kind::KwContinue},
        {"sizeof", Token::Kind::KwSizeof},
        {"__kernel", Token::Kind::KwKernel},
        {"launch", Token::Kind::KwLaunch},
    };
    auto It = Keywords.find(Text);
    Token T = make(It != Keywords.end() ? It->second : Token::Kind::Ident, At);
    T.Text = std::move(Text);
    return T;
  }

  Token number(char First, SourceLoc At) {
    std::string Text(1, First);
    bool IsFloat = false;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Text.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
      IsFloat = true;
      Text.push_back(advance());
      if (peek() == '+' || peek() == '-')
        Text.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text.push_back(advance());
    }
    Token T = make(IsFloat ? Token::Kind::FloatLit : Token::Kind::IntLit, At);
    if (IsFloat)
      T.FloatValue = std::stod(Text);
    else
      T.IntValue = std::stoll(Text);
    return T;
  }

  char escape(char C) {
    switch (C) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case '0':
      return '\0';
    case '\\':
      return '\\';
    case '\'':
      return '\'';
    case '"':
      return '"';
    default:
      error(std::string("unknown escape '\\") + C + "'");
    }
  }

  Token stringLiteral(SourceLoc At) {
    Token T = make(Token::Kind::StringLit, At);
    while (!atEnd() && peek() != '"') {
      char C = advance();
      if (C == '\\')
        C = escape(advance());
      T.Text.push_back(C);
    }
    if (atEnd())
      error("unterminated string literal");
    advance(); // Closing quote.
    return T;
  }

  Token charLiteral(SourceLoc At) {
    Token T = make(Token::Kind::CharLit, At);
    char C = advance();
    if (C == '\\')
      C = escape(advance());
    T.IntValue = static_cast<int64_t>(C);
    if (advance() != '\'')
      error("unterminated character literal");
    return T;
  }

  const std::string &Src;
  size_t Pos = 0;
  SourceLoc Loc;
};

} // namespace

std::vector<Token> cgcm::lexSource(const std::string &Source) {
  return Lexer(Source).run();
}

const char *cgcm::getTokenKindName(Token::Kind K) {
  switch (K) {
  case Token::Kind::Ident:
    return "identifier";
  case Token::Kind::IntLit:
    return "integer literal";
  case Token::Kind::FloatLit:
    return "float literal";
  case Token::Kind::CharLit:
    return "char literal";
  case Token::Kind::StringLit:
    return "string literal";
  case Token::Kind::Eof:
    return "end of file";
  case Token::Kind::KwVoid:
    return "'void'";
  case Token::Kind::KwChar:
    return "'char'";
  case Token::Kind::KwInt:
    return "'int'";
  case Token::Kind::KwLong:
    return "'long'";
  case Token::Kind::KwFloat:
    return "'float'";
  case Token::Kind::KwDouble:
    return "'double'";
  case Token::Kind::KwConst:
    return "'const'";
  case Token::Kind::KwIf:
    return "'if'";
  case Token::Kind::KwElse:
    return "'else'";
  case Token::Kind::KwFor:
    return "'for'";
  case Token::Kind::KwWhile:
    return "'while'";
  case Token::Kind::KwReturn:
    return "'return'";
  case Token::Kind::KwBreak:
    return "'break'";
  case Token::Kind::KwContinue:
    return "'continue'";
  case Token::Kind::KwSizeof:
    return "'sizeof'";
  case Token::Kind::KwKernel:
    return "'__kernel'";
  case Token::Kind::KwLaunch:
    return "'launch'";
  case Token::Kind::LParen:
    return "'('";
  case Token::Kind::RParen:
    return "')'";
  case Token::Kind::LBrace:
    return "'{'";
  case Token::Kind::RBrace:
    return "'}'";
  case Token::Kind::LBracket:
    return "'['";
  case Token::Kind::RBracket:
    return "']'";
  case Token::Kind::Comma:
    return "','";
  case Token::Kind::Semi:
    return "';'";
  case Token::Kind::Question:
    return "'?'";
  case Token::Kind::Colon:
    return "':'";
  case Token::Kind::Assign:
    return "'='";
  case Token::Kind::PlusAssign:
    return "'+='";
  case Token::Kind::MinusAssign:
    return "'-='";
  case Token::Kind::StarAssign:
    return "'*='";
  case Token::Kind::SlashAssign:
    return "'/='";
  case Token::Kind::Plus:
    return "'+'";
  case Token::Kind::Minus:
    return "'-'";
  case Token::Kind::Star:
    return "'*'";
  case Token::Kind::Slash:
    return "'/'";
  case Token::Kind::Percent:
    return "'%'";
  case Token::Kind::Amp:
    return "'&'";
  case Token::Kind::AmpAmp:
    return "'&&'";
  case Token::Kind::Pipe:
    return "'|'";
  case Token::Kind::PipePipe:
    return "'||'";
  case Token::Kind::Caret:
    return "'^'";
  case Token::Kind::Tilde:
    return "'~'";
  case Token::Kind::Bang:
    return "'!'";
  case Token::Kind::EqEq:
    return "'=='";
  case Token::Kind::BangEq:
    return "'!='";
  case Token::Kind::Lt:
    return "'<'";
  case Token::Kind::LtEq:
    return "'<='";
  case Token::Kind::Gt:
    return "'>'";
  case Token::Kind::GtEq:
    return "'>='";
  case Token::Kind::Shl:
    return "'<<'";
  case Token::Kind::Shr:
    return "'>>'";
  case Token::Kind::TripleLt:
    return "'<<<'";
  case Token::Kind::TripleGt:
    return "'>>>'";
  case Token::Kind::PlusPlus:
    return "'++'";
  case Token::Kind::MinusMinus:
    return "'--'";
  }
  return "<unknown token>";
}
