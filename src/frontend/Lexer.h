//===- frontend/Lexer.h - MiniC lexer --------------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniC, the C-like input language the workloads and
/// examples are written in. MiniC deliberately keeps C's communication
/// hazards: raw pointers, pointer arithmetic, casts, weak typing.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FRONTEND_LEXER_H
#define CGCM_FRONTEND_LEXER_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cgcm {

struct Token {
  enum class Kind {
    // Literals and identifiers.
    Ident,
    IntLit,
    FloatLit,
    CharLit,
    StringLit,
    // Keywords.
    KwVoid,
    KwChar,
    KwInt,
    KwLong,
    KwFloat,
    KwDouble,
    KwConst,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwKernel,   ///< `__kernel` function qualifier.
    KwLaunch,   ///< `launch f<<<g, b>>>(...)` statement.
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Question,
    Colon,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Tilde,
    Bang,
    EqEq,
    BangEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Shl,
    Shr,
    TripleLt, ///< `<<<` in a launch statement.
    TripleGt, ///< `>>>` in a launch statement.
    PlusPlus,
    MinusMinus,
    Eof,
  };

  Kind K = Kind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< Identifier or string-literal body.
  int64_t IntValue = 0;
  double FloatValue = 0;

  bool is(Kind Other) const { return K == Other; }
};

/// Tokenizes \p Source completely. Lexical errors are fatal (MiniC inputs
/// are programmer-authored workloads, not untrusted data).
std::vector<Token> lexSource(const std::string &Source);

/// Returns a printable spelling for a token kind, for diagnostics.
const char *getTokenKindName(Token::Kind K);

} // namespace cgcm

#endif // CGCM_FRONTEND_LEXER_H
