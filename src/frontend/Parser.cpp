//===- frontend/Parser.cpp - MiniC recursive-descent parser ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/ErrorHandling.h"

using namespace cgcm;

namespace {

class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  TranslationUnit run() {
    TranslationUnit TU;
    while (!peek().is(Token::Kind::Eof))
      parseTopLevel(TU);
    return TU;
  }

private:
  using TK = Token::Kind;

  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  const Token &advance() { return Tokens[Pos++]; }

  bool check(TK K) const { return peek().is(K); }

  bool match(TK K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  const Token &expect(TK K, const char *Context) {
    if (!check(K))
      error(std::string("expected ") + getTokenKindName(K) + " " + Context +
            ", found " + getTokenKindName(peek().K));
    return advance();
  }

  [[noreturn]] void error(const std::string &Msg) {
    reportFatalError("parse error at " + peek().Loc.getString() + ": " + Msg);
  }

  bool isTypeStart(unsigned Ahead = 0) const {
    switch (peek(Ahead).K) {
    case TK::KwVoid:
    case TK::KwChar:
    case TK::KwInt:
    case TK::KwLong:
    case TK::KwFloat:
    case TK::KwDouble:
    case TK::KwConst:
      return true;
    default:
      return false;
    }
  }

  /// type := ['const'] basetype '*'*  — array suffixes attach to the
  /// declarator and are parsed by the caller.
  ASTType parseTypePrefix() {
    ASTType Ty;
    if (match(TK::KwConst))
      Ty.IsConst = true;
    switch (advance().K) {
    case TK::KwVoid:
      Ty.B = ASTType::Base::Void;
      break;
    case TK::KwChar:
      Ty.B = ASTType::Base::Char;
      break;
    case TK::KwInt:
      Ty.B = ASTType::Base::Int;
      break;
    case TK::KwLong:
      Ty.B = ASTType::Base::Long;
      break;
    case TK::KwFloat:
      Ty.B = ASTType::Base::Float;
      break;
    case TK::KwDouble:
      Ty.B = ASTType::Base::Double;
      break;
    default:
      error("expected a type name");
    }
    while (match(TK::Star))
      ++Ty.PtrDepth;
    // `void*` is spelled in MiniC but modeled as char*.
    if (Ty.B == ASTType::Base::Void && Ty.PtrDepth > 0)
      Ty.B = ASTType::Base::Char;
    return Ty;
  }

  /// Parses `[N][M]...` array suffixes onto \p Ty.
  void parseArraySuffix(ASTType &Ty) {
    while (match(TK::LBracket)) {
      const Token &N = expect(TK::IntLit, "in array dimension");
      if (N.IntValue <= 0)
        error("array dimension must be positive");
      Ty.ArrayDims.push_back(static_cast<uint64_t>(N.IntValue));
      expect(TK::RBracket, "after array dimension");
    }
  }

  void parseTopLevel(TranslationUnit &TU) {
    SourceLoc Loc = peek().Loc;
    bool IsKernel = match(TK::KwKernel);
    if (!isTypeStart())
      error("expected a declaration");
    ASTType Ty = parseTypePrefix();
    std::string Name = expect(TK::Ident, "in declaration").Text;

    if (check(TK::LParen)) {
      parseFunction(TU, Ty, std::move(Name), IsKernel, Loc);
      return;
    }
    if (IsKernel)
      error("__kernel qualifier on a non-function");
    parseGlobal(TU, Ty, std::move(Name), Loc);
  }

  void parseFunction(TranslationUnit &TU, ASTType RetTy, std::string Name,
                     bool IsKernel, SourceLoc Loc) {
    expect(TK::LParen, "in function declaration");
    std::vector<ParamDecl> Params;
    if (!check(TK::RParen)) {
      if (check(TK::KwVoid) && peek(1).is(TK::RParen)) {
        advance(); // `(void)` parameter list.
      } else {
        do {
          ASTType PTy = parseTypePrefix();
          std::string PName = expect(TK::Ident, "in parameter").Text;
          parseArraySuffix(PTy);
          // Array parameters decay to pointers, as in C.
          if (!PTy.ArrayDims.empty()) {
            PTy.ArrayDims.erase(PTy.ArrayDims.begin());
            if (PTy.ArrayDims.empty())
              ++PTy.PtrDepth;
            else
              error("multi-dimensional array parameters are unsupported; "
                    "pass a pointer");
          }
          Params.push_back({PTy, std::move(PName)});
        } while (match(TK::Comma));
      }
    }
    expect(TK::RParen, "after parameters");

    FuncDecl FD;
    FD.RetTy = RetTy;
    FD.Name = std::move(Name);
    FD.Params = std::move(Params);
    FD.IsKernel = IsKernel;
    FD.Loc = Loc;
    if (!match(TK::Semi))
      FD.Body = parseBlock();
    TU.Functions.push_back(std::move(FD));
  }

  void parseGlobal(TranslationUnit &TU, ASTType Ty, std::string Name,
                   SourceLoc Loc) {
    parseArraySuffix(Ty);
    GlobalDecl GD;
    GD.Ty = Ty;
    GD.Name = std::move(Name);
    GD.Loc = Loc;
    if (match(TK::Assign)) {
      if (match(TK::LBrace)) {
        if (!check(TK::RBrace)) {
          do
            GD.Init.push_back(parseTernary());
          while (match(TK::Comma) && !check(TK::RBrace));
        }
        expect(TK::RBrace, "after initializer list");
      } else {
        GD.Init.push_back(parseTernary());
      }
    }
    expect(TK::Semi, "after global declaration");
    TU.Globals.push_back(std::move(GD));
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  StmtPtr parseBlock() {
    SourceLoc Loc = peek().Loc;
    expect(TK::LBrace, "to open a block");
    std::vector<StmtPtr> Body;
    while (!check(TK::RBrace) && !check(TK::Eof))
      Body.push_back(parseStmt());
    expect(TK::RBrace, "to close a block");
    return std::make_unique<BlockStmt>(std::move(Body), Loc);
  }

  StmtPtr parseStmt() {
    SourceLoc Loc = peek().Loc;
    switch (peek().K) {
    case TK::LBrace:
      return parseBlock();
    case TK::Semi:
      advance();
      return std::make_unique<EmptyStmt>(Loc);
    case TK::KwIf: {
      advance();
      expect(TK::LParen, "after 'if'");
      ExprPtr Cond = parseExpr();
      expect(TK::RParen, "after if condition");
      StmtPtr Then = parseStmt();
      StmtPtr Else;
      if (match(TK::KwElse))
        Else = parseStmt();
      return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      std::move(Else), Loc);
    }
    case TK::KwWhile: {
      advance();
      expect(TK::LParen, "after 'while'");
      ExprPtr Cond = parseExpr();
      expect(TK::RParen, "after while condition");
      StmtPtr Body = parseStmt();
      return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body),
                                         Loc);
    }
    case TK::KwFor: {
      advance();
      expect(TK::LParen, "after 'for'");
      StmtPtr Init;
      if (!check(TK::Semi))
        Init = parseDeclOrExprStmtNoSemi();
      expect(TK::Semi, "after for initializer");
      ExprPtr Cond;
      if (!check(TK::Semi))
        Cond = parseExpr();
      expect(TK::Semi, "after for condition");
      ExprPtr Inc;
      if (!check(TK::RParen))
        Inc = parseExpr();
      expect(TK::RParen, "after for increment");
      StmtPtr Body = parseStmt();
      return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                       std::move(Inc), std::move(Body), Loc);
    }
    case TK::KwReturn: {
      advance();
      ExprPtr V;
      if (!check(TK::Semi))
        V = parseExpr();
      expect(TK::Semi, "after return");
      return std::make_unique<ReturnStmt>(std::move(V), Loc);
    }
    case TK::KwBreak:
      advance();
      expect(TK::Semi, "after 'break'");
      return std::make_unique<BreakStmt>(Loc);
    case TK::KwContinue:
      advance();
      expect(TK::Semi, "after 'continue'");
      return std::make_unique<ContinueStmt>(Loc);
    case TK::KwLaunch: {
      advance();
      std::string Kernel = expect(TK::Ident, "after 'launch'").Text;
      expect(TK::TripleLt, "in launch configuration");
      ExprPtr Grid = parseTernary();
      expect(TK::Comma, "between grid and block");
      ExprPtr Block = parseTernary();
      expect(TK::TripleGt, "after launch configuration");
      expect(TK::LParen, "before launch arguments");
      std::vector<ExprPtr> Args;
      if (!check(TK::RParen)) {
        do
          Args.push_back(parseTernary());
        while (match(TK::Comma));
      }
      expect(TK::RParen, "after launch arguments");
      expect(TK::Semi, "after launch statement");
      return std::make_unique<LaunchStmt>(std::move(Kernel), std::move(Grid),
                                          std::move(Block), std::move(Args),
                                          Loc);
    }
    default: {
      StmtPtr S = parseDeclOrExprStmtNoSemi();
      expect(TK::Semi, "after statement");
      return S;
    }
    }
  }

  StmtPtr parseDeclOrExprStmtNoSemi() {
    SourceLoc Loc = peek().Loc;
    if (isTypeStart()) {
      ASTType Ty = parseTypePrefix();
      std::string Name = expect(TK::Ident, "in declaration").Text;
      parseArraySuffix(Ty);
      ExprPtr Init;
      if (match(TK::Assign))
        Init = parseExpr();
      return std::make_unique<DeclStmt>(Ty, std::move(Name), std::move(Init),
                                        Loc);
    }
    ExprPtr E = parseExpr();
    return std::make_unique<ExprStmt>(std::move(E), Loc);
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing via nested methods)
  //===--------------------------------------------------------------------===//

  ExprPtr parseExpr() { return parseAssign(); }

  ExprPtr parseAssign() {
    ExprPtr L = parseTernary();
    SourceLoc Loc = peek().Loc;
    AssignExpr::Op Op;
    if (match(TK::Assign))
      Op = AssignExpr::Op::None;
    else if (match(TK::PlusAssign))
      Op = AssignExpr::Op::Add;
    else if (match(TK::MinusAssign))
      Op = AssignExpr::Op::Sub;
    else if (match(TK::StarAssign))
      Op = AssignExpr::Op::Mul;
    else if (match(TK::SlashAssign))
      Op = AssignExpr::Op::Div;
    else
      return L;
    ExprPtr R = parseAssign();
    return std::make_unique<AssignExpr>(Op, std::move(L), std::move(R), Loc);
  }

  ExprPtr parseTernary() {
    ExprPtr C = parseLogOr();
    if (!check(TK::Question))
      return C;
    SourceLoc Loc = advance().Loc;
    ExprPtr T = parseExpr();
    expect(TK::Colon, "in conditional expression");
    ExprPtr F = parseTernary();
    return std::make_unique<CondExpr>(std::move(C), std::move(T), std::move(F),
                                      Loc);
  }

  ExprPtr parseLogOr() {
    ExprPtr L = parseLogAnd();
    while (check(TK::PipePipe)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseLogAnd();
      L = std::make_unique<BinaryExpr>(BinaryExpr::Op::LogOr, std::move(L),
                                       std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseLogAnd() {
    ExprPtr L = parseBitOr();
    while (check(TK::AmpAmp)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseBitOr();
      L = std::make_unique<BinaryExpr>(BinaryExpr::Op::LogAnd, std::move(L),
                                       std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseBitOr() {
    ExprPtr L = parseBitXor();
    while (check(TK::Pipe)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseBitXor();
      L = std::make_unique<BinaryExpr>(BinaryExpr::Op::Or, std::move(L),
                                       std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseBitXor() {
    ExprPtr L = parseBitAnd();
    while (check(TK::Caret)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseBitAnd();
      L = std::make_unique<BinaryExpr>(BinaryExpr::Op::Xor, std::move(L),
                                       std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseBitAnd() {
    ExprPtr L = parseEquality();
    while (check(TK::Amp) && !peek(1).is(TK::Amp)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseEquality();
      L = std::make_unique<BinaryExpr>(BinaryExpr::Op::And, std::move(L),
                                       std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseEquality() {
    ExprPtr L = parseRelational();
    for (;;) {
      BinaryExpr::Op Op;
      if (check(TK::EqEq))
        Op = BinaryExpr::Op::EQ;
      else if (check(TK::BangEq))
        Op = BinaryExpr::Op::NE;
      else
        return L;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseRelational();
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
  }

  ExprPtr parseRelational() {
    ExprPtr L = parseShift();
    for (;;) {
      BinaryExpr::Op Op;
      if (check(TK::Lt))
        Op = BinaryExpr::Op::LT;
      else if (check(TK::LtEq))
        Op = BinaryExpr::Op::LE;
      else if (check(TK::Gt))
        Op = BinaryExpr::Op::GT;
      else if (check(TK::GtEq))
        Op = BinaryExpr::Op::GE;
      else
        return L;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseShift();
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
  }

  ExprPtr parseShift() {
    ExprPtr L = parseAdditive();
    for (;;) {
      BinaryExpr::Op Op;
      if (check(TK::Shl))
        Op = BinaryExpr::Op::Shl;
      else if (check(TK::Shr))
        Op = BinaryExpr::Op::Shr;
      else
        return L;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseAdditive();
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    for (;;) {
      BinaryExpr::Op Op;
      if (check(TK::Plus))
        Op = BinaryExpr::Op::Add;
      else if (check(TK::Minus))
        Op = BinaryExpr::Op::Sub;
      else
        return L;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseMultiplicative();
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    for (;;) {
      BinaryExpr::Op Op;
      if (check(TK::Star))
        Op = BinaryExpr::Op::Mul;
      else if (check(TK::Slash))
        Op = BinaryExpr::Op::Div;
      else if (check(TK::Percent))
        Op = BinaryExpr::Op::Rem;
      else
        return L;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseUnary();
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
  }

  ExprPtr parseUnary() {
    SourceLoc Loc = peek().Loc;
    if (match(TK::Minus))
      return std::make_unique<UnaryExpr>(UnaryExpr::Op::Neg, parseUnary(),
                                         Loc);
    if (match(TK::Bang))
      return std::make_unique<UnaryExpr>(UnaryExpr::Op::Not, parseUnary(),
                                         Loc);
    if (match(TK::Tilde))
      return std::make_unique<UnaryExpr>(UnaryExpr::Op::BitNot, parseUnary(),
                                         Loc);
    if (match(TK::Star))
      return std::make_unique<UnaryExpr>(UnaryExpr::Op::Deref, parseUnary(),
                                         Loc);
    if (match(TK::Amp))
      return std::make_unique<UnaryExpr>(UnaryExpr::Op::AddrOf, parseUnary(),
                                         Loc);
    if (match(TK::PlusPlus)) {
      // ++x desugars to (x += 1).
      ExprPtr X = parseUnary();
      return std::make_unique<AssignExpr>(
          AssignExpr::Op::Add, std::move(X),
          std::make_unique<IntLitExpr>(1, Loc), Loc);
    }
    if (match(TK::MinusMinus)) {
      ExprPtr X = parseUnary();
      return std::make_unique<AssignExpr>(
          AssignExpr::Op::Sub, std::move(X),
          std::make_unique<IntLitExpr>(1, Loc), Loc);
    }
    // Cast: '(' type ')' unary.
    if (check(TK::LParen) && isTypeStart(1)) {
      advance();
      ASTType To = parseTypePrefix();
      expect(TK::RParen, "after cast type");
      return std::make_unique<CastExpr>(To, parseUnary(), Loc);
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    for (;;) {
      SourceLoc Loc = peek().Loc;
      if (match(TK::LBracket)) {
        ExprPtr Idx = parseExpr();
        expect(TK::RBracket, "after index");
        E = std::make_unique<IndexExpr>(std::move(E), std::move(Idx), Loc);
        continue;
      }
      if (check(TK::PlusPlus) || check(TK::MinusMinus)) {
        // Postfix ++/-- desugar to compound assignment. MiniC restricts
        // them to statement position where the result value is unused.
        AssignExpr::Op Op = check(TK::PlusPlus) ? AssignExpr::Op::Add
                                                : AssignExpr::Op::Sub;
        advance();
        E = std::make_unique<AssignExpr>(
            Op, std::move(E), std::make_unique<IntLitExpr>(1, Loc), Loc);
        continue;
      }
      return E;
    }
  }

  ExprPtr parsePrimary() {
    SourceLoc Loc = peek().Loc;
    switch (peek().K) {
    case TK::IntLit: {
      int64_t V = advance().IntValue;
      return std::make_unique<IntLitExpr>(V, Loc);
    }
    case TK::FloatLit: {
      double V = advance().FloatValue;
      return std::make_unique<FloatLitExpr>(V, Loc);
    }
    case TK::CharLit: {
      int64_t V = advance().IntValue;
      return std::make_unique<IntLitExpr>(V, Loc);
    }
    case TK::StringLit: {
      std::string V = advance().Text;
      return std::make_unique<StringLitExpr>(std::move(V), Loc);
    }
    case TK::KwSizeof: {
      advance();
      expect(TK::LParen, "after 'sizeof'");
      ASTType Of = parseTypePrefix();
      expect(TK::RParen, "after sizeof type");
      return std::make_unique<SizeofExpr>(Of, Loc);
    }
    case TK::Ident: {
      std::string Name = advance().Text;
      if (match(TK::LParen)) {
        std::vector<ExprPtr> Args;
        if (!check(TK::RParen)) {
          do
            Args.push_back(parseTernary());
          while (match(TK::Comma));
        }
        expect(TK::RParen, "after call arguments");
        return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                          Loc);
      }
      return std::make_unique<VarExpr>(std::move(Name), Loc);
    }
    case TK::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TK::RParen, "after parenthesized expression");
      return E;
    }
    default:
      error(std::string("expected an expression, found ") +
            getTokenKindName(peek().K));
    }
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace

TranslationUnit cgcm::parseSource(const std::string &Source) {
  return Parser(lexSource(Source)).run();
}
