//===- frontend/Parser.h - MiniC recursive-descent parser ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses MiniC source into a TranslationUnit. Syntax errors are fatal
/// with source locations; inputs are project-authored workloads.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FRONTEND_PARSER_H
#define CGCM_FRONTEND_PARSER_H

#include "frontend/AST.h"

#include <string>

namespace cgcm {

/// Parses \p Source into an AST.
TranslationUnit parseSource(const std::string &Source);

} // namespace cgcm

#endif // CGCM_FRONTEND_PARSER_H
