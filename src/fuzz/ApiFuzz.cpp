//===- fuzz/ApiFuzz.cpp - Runtime API-sequence differential fuzzer ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ApiFuzz.h"

#include "gpusim/GPUDevice.h"

#include <algorithm>
#include <deque>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <vector>

using namespace cgcm;

namespace {

/// Specification-level mirror of one allocation unit. Kept deliberately
/// independent of AllocUnitInfo: it re-derives what the paper's
/// semantics *require*, not what the implementation stores.
struct ModelUnit {
  uint64_t Base = 0;
  uint64_t Size = 0;
  unsigned Ref = 0;
  /// References held by outstanding mapArray snapshots of some table
  /// (these may only drain through releaseArray, never a loose release).
  unsigned SnapRefs = 0;
  bool Dead = false; ///< Host memory freed while mapped (zombie).
  bool IsGlobal = false;
  bool IsAlloca = false;
  bool IsTable = false;
  std::string Name; ///< Globals only.
  /// Outstanding mapArray generations: the element *bases* each call
  /// resolved and mapped, in slot order (nulls omitted).
  std::vector<std::vector<uint64_t>> Snapshots;
};

class Session {
public:
  Session(uint64_t Seed, unsigned MaxSteps)
      : Rng(Seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull),
        MaxSteps(MaxSteps), Host(HostAddressBase, "host"), Device(TM, Stats),
        RT(Host, Device, TM, Stats) {
    RT.setObserver(&Auditor);
  }

  ApiFuzzResult run();

  /// The same session broken into phases so two sessions can interleave
  /// on one thread (runApiFuzzMultiSession): preamble, one operation +
  /// cross-check (false once the session failed), end-of-run drain +
  /// audit sweep.
  void start();
  bool stepOnce(ApiFuzzResult &R);
  void finishRun(ApiFuzzResult &R);

private:
  std::mt19937_64 Rng;
  unsigned MaxSteps;
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host;
  GPUDevice Device;
  CGCMRuntime RT;
  RuntimeAuditor Auditor;

  std::map<uint64_t, ModelUnit> Model;
  std::set<std::string> InstantiatedGlobals; ///< Named regions live on device.
  unsigned NextGlobal = 0;
  std::deque<std::string> Log; ///< Trailing operation window.
  std::string Failure;

  unsigned pick(unsigned N) { return unsigned(Rng() % N); }
  void note(const std::string &S) {
    Log.push_back(S);
    if (Log.size() > 40)
      Log.pop_front();
  }
  void fail(const std::string &Why);
  bool failed() const { return !Failure.empty(); }

  ModelUnit *lookupModel(uint64_t Ptr);
  std::vector<uint64_t> unitsWhere(bool (*Pred)(const ModelUnit &));
  void evictZombiesOverlapping(uint64_t Lo, uint64_t Hi);
  void dropUnitRefs(ModelUnit &U); // Mirror of forced teardown.
  void nullSlotsInto(uint64_t Lo, uint64_t Hi);
  void modelReleaseOne(uint64_t Base, bool FromSnapshot);

  // Operations. Each returns false if it chose not to apply.
  bool opAlloc();
  bool opAllocTable();
  bool opDeclareGlobal();
  bool opDeclareAlloca();
  bool opMap();
  bool opUnmap();
  bool opRelease();
  bool opMapArray();
  bool opUnmapArray();
  bool opReleaseArray();
  bool opSlotWrite();
  bool opKernelLaunch();
  bool opFree();
  bool opRealloc();
  bool opRemoveAlloca();

  void crossCheck();
  void verifyTableTranslations(const ModelUnit &T);
  void drain();
};

void Session::fail(const std::string &Why) {
  if (failed())
    return;
  std::ostringstream OS;
  OS << Why << "\nlast operations:\n";
  for (const std::string &L : Log)
    OS << "  " << L << "\n";
  Failure = OS.str();
}

ModelUnit *Session::lookupModel(uint64_t Ptr) {
  auto It = Model.upper_bound(Ptr);
  if (It == Model.begin())
    return nullptr;
  --It;
  if (Ptr >= It->second.Base + It->second.Size)
    return nullptr;
  return &It->second;
}

std::vector<uint64_t> Session::unitsWhere(bool (*Pred)(const ModelUnit &)) {
  std::vector<uint64_t> Out;
  for (const auto &[Base, U] : Model)
    if (Pred(U))
      Out.push_back(Base);
  return Out;
}

void Session::evictZombiesOverlapping(uint64_t Lo, uint64_t Hi) {
  std::vector<uint64_t> Evict;
  for (const auto &[Base, U] : Model)
    if (U.Dead && Base < Hi && Base + U.Size > Lo)
      Evict.push_back(Base);
  for (uint64_t B : Evict) {
    uint64_t Size = Model[B].Size;
    dropUnitRefs(Model[B]);
    Model.erase(B);
    // Mirror of the runtime's eviction scrub: snapshot entries naming
    // the evicted unit die with it (their references are gone).
    for (auto &[TB, T] : Model)
      for (auto &Snap : T.Snapshots)
        Snap.erase(std::remove_if(Snap.begin(), Snap.end(),
                                  [&](uint64_t E) {
                                    return E >= B && E < B + Size;
                                  }),
                   Snap.end());
  }
}

void Session::dropUnitRefs(ModelUnit &U) {
  // Mirrors CGCMRuntime::forceReclaim: every outstanding snapshot's
  // element references drain, then the unit itself is forgotten by the
  // caller (its own refcount simply vanishes).
  for (auto SI = U.Snapshots.rbegin(); SI != U.Snapshots.rend(); ++SI)
    for (uint64_t ElemBase : *SI) {
      auto It = Model.find(ElemBase);
      if (It == Model.end())
        continue;
      ModelUnit &E = It->second;
      if (E.Ref == 0)
        continue;
      --E.Ref;
      --E.SnapRefs;
      if (E.Ref == 0 && E.Dead)
        Model.erase(It);
    }
  U.Snapshots.clear();
}

void Session::nullSlotsInto(uint64_t Lo, uint64_t Hi) {
  for (auto &[Base, T] : Model) {
    if (!T.IsTable || T.Dead)
      continue;
    uint64_t Slots = T.Size / 8;
    for (uint64_t S = 0; S != Slots; ++S) {
      uint64_t Elem = Host.readUInt(T.Base + S * 8, 8);
      if (Elem >= Lo && Elem < Hi)
        Host.writeUInt(T.Base + S * 8, 0, 8);
    }
  }
}

void Session::modelReleaseOne(uint64_t Base, bool FromSnapshot) {
  auto It = Model.find(Base);
  if (It == Model.end())
    return;
  ModelUnit &U = It->second;
  if (U.Ref == 0)
    return;
  --U.Ref;
  if (FromSnapshot && U.SnapRefs > 0)
    --U.SnapRefs;
  if (U.Ref == 0 && U.Dead)
    Model.erase(It);
}

//===----------------------------------------------------------------------===//
// Operations
//===----------------------------------------------------------------------===//

bool Session::opAlloc() {
  static const uint64_t Sizes[] = {5, 13, 16, 24, 40, 64, 100};
  uint64_t Size = Sizes[pick(7)];
  uint64_t P = Host.allocate(Size);
  // Fill with a pattern so transfers move real data.
  for (uint64_t I = 0; I + 8 <= Size; I += 8)
    Host.writeUInt(P + I, 0x1111111111111111ull * ((P + I) & 0xF), 8);
  evictZombiesOverlapping(P, P + Size);
  RT.notifyHeapAlloc(P, Size);
  ModelUnit U;
  U.Base = P;
  U.Size = Size;
  Model[P] = U;
  note("alloc " + std::to_string(P) + " size " + std::to_string(Size));
  return true;
}

bool Session::opAllocTable() {
  unsigned Slots = 1 + pick(4);
  uint64_t Size = Slots * 8 + (pick(2) ? 4 : 0); // Sometimes a tail.
  uint64_t P = Host.allocate(Size);
  // Candidate targets: live, non-table, non-alloca, non-dead units.
  std::vector<uint64_t> Cand;
  for (const auto &[Base, U] : Model)
    if (!U.IsTable && !U.Dead && !U.IsAlloca)
      Cand.push_back(Base);
  for (unsigned S = 0; S != Slots; ++S) {
    uint64_t Elem = 0;
    if (!Cand.empty() && pick(4) != 0) {
      uint64_t B = Cand[pick(unsigned(Cand.size()))];
      // Interior pointers exercise greatest-LTE translation.
      uint64_t Off = pick(2) ? 0 : (pick(unsigned(Model[B].Size / 8 + 1)));
      Elem = B + Off;
    }
    Host.writeUInt(P + S * 8, Elem, 8);
  }
  if (Size % 8)
    Host.writeUInt(P + Slots * 8, 0xBEEF, 4);
  evictZombiesOverlapping(P, P + Size);
  RT.notifyHeapAlloc(P, Size);
  ModelUnit U;
  U.Base = P;
  U.Size = Size;
  U.IsTable = true;
  Model[P] = U;
  note("alloc-table " + std::to_string(P) + " slots " + std::to_string(Slots));
  return true;
}

bool Session::opDeclareGlobal() {
  if (NextGlobal >= 6)
    return false;
  uint64_t Size = 8 + pick(5) * 8;
  uint64_t P = Host.allocate(Size);
  std::string Name = "g" + std::to_string(NextGlobal++);
  evictZombiesOverlapping(P, P + Size);
  RT.declareGlobal(Name, P, Size, /*IsReadOnly=*/false);
  ModelUnit U;
  U.Base = P;
  U.Size = Size;
  U.IsGlobal = true;
  U.Name = Name;
  Model[P] = U;
  note("global " + Name + " at " + std::to_string(P));
  return true;
}

bool Session::opDeclareAlloca() {
  uint64_t Size = 8 + pick(8) * 8;
  uint64_t P = Host.allocate(Size);
  evictZombiesOverlapping(P, P + Size);
  RT.declareAlloca(P, Size);
  ModelUnit U;
  U.Base = P;
  U.Size = Size;
  U.IsAlloca = true;
  Model[P] = U;
  note("alloca " + std::to_string(P));
  return true;
}

bool Session::opMap() {
  std::vector<uint64_t> Cand = unitsWhere(
      [](const ModelUnit &U) { return !U.Dead && !U.IsTable; });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  uint64_t Off = pick(2) ? 0 : pick(unsigned(Model[B].Size));
  RT.map(B + Off);
  ++Model[B].Ref;
  note("map " + std::to_string(B) + "+" + std::to_string(Off));
  return true;
}

bool Session::opUnmap() {
  if (Model.empty())
    return false;
  auto It = Model.begin();
  std::advance(It, pick(unsigned(Model.size())));
  if (It->second.IsTable)
    return false; // unmapArray is the paired operation for tables.
  RT.unmap(It->first);
  note("unmap " + std::to_string(It->first));
  return true;
}

bool Session::opRelease() {
  std::vector<uint64_t> Cand = unitsWhere([](const ModelUnit &U) {
    return U.Ref > U.SnapRefs && !U.IsTable;
  });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  RT.release(B);
  modelReleaseOne(B, /*FromSnapshot=*/false);
  note("release " + std::to_string(B));
  return true;
}

bool Session::opMapArray() {
  std::vector<uint64_t> Cand = unitsWhere(
      [](const ModelUnit &U) { return U.IsTable && !U.Dead; });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  ModelUnit &T = Model[B];
  // Resolve the current host slots exactly the way the runtime must.
  std::vector<uint64_t> Snapshot;
  uint64_t Slots = T.Size / 8;
  for (uint64_t S = 0; S != Slots; ++S) {
    uint64_t Elem = Host.readUInt(T.Base + S * 8, 8);
    if (Elem == 0)
      continue;
    ModelUnit *E = lookupModel(Elem);
    if (!E || E->Dead)
      return false; // A dangling slot would (rightly) be fatal; skip.
    Snapshot.push_back(Elem);
  }
  RT.mapArray(B);
  for (uint64_t Elem : Snapshot) {
    ModelUnit *E = lookupModel(Elem);
    ++E->Ref;
    ++E->SnapRefs;
  }
  // Store resolved bases: releaseArray pairs against these.
  std::vector<uint64_t> Bases;
  for (uint64_t Elem : Snapshot)
    Bases.push_back(lookupModel(Elem)->Base);
  T.Snapshots.push_back(std::move(Bases));
  ++T.Ref;
  note("mapArray " + std::to_string(B));
  verifyTableTranslations(T);
  return true;
}

bool Session::opUnmapArray() {
  std::vector<uint64_t> Cand =
      unitsWhere([](const ModelUnit &U) { return U.IsTable; });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  RT.unmapArray(B);
  note("unmapArray " + std::to_string(B));
  return true;
}

bool Session::opReleaseArray() {
  std::vector<uint64_t> Cand = unitsWhere(
      [](const ModelUnit &U) { return U.IsTable && !U.Snapshots.empty(); });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  ModelUnit &T = Model[B];
  std::vector<uint64_t> Snapshot = T.Snapshots.back();
  T.Snapshots.pop_back();
  RT.releaseArray(B);
  for (uint64_t ElemBase : Snapshot)
    modelReleaseOne(ElemBase, /*FromSnapshot=*/true);
  modelReleaseOne(B, /*FromSnapshot=*/false);
  note("releaseArray " + std::to_string(B));
  return true;
}

bool Session::opSlotWrite() {
  std::vector<uint64_t> Cand = unitsWhere(
      [](const ModelUnit &U) { return U.IsTable && !U.Dead; });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  ModelUnit &T = Model[B];
  uint64_t Slots = T.Size / 8;
  if (Slots == 0)
    return false;
  uint64_t S = pick(unsigned(Slots));
  uint64_t Elem = 0;
  std::vector<uint64_t> Targets;
  for (const auto &[UB, U] : Model)
    if (!U.IsTable && !U.Dead && !U.IsAlloca)
      Targets.push_back(UB);
  if (!Targets.empty() && pick(3) != 0)
    Elem = Targets[pick(unsigned(Targets.size()))];
  Host.writeUInt(T.Base + S * 8, Elem, 8);
  note("slot " + std::to_string(B) + "[" + std::to_string(S) + "] = " +
       std::to_string(Elem));
  return true;
}

bool Session::opKernelLaunch() {
  RT.onKernelLaunch();
  // Model a kernel dirtying one mapped unit's device copy.
  std::vector<uint64_t> Mapped = unitsWhere(
      [](const ModelUnit &U) { return U.Ref > 0 && !U.IsTable; });
  if (!Mapped.empty()) {
    uint64_t B = Mapped[pick(unsigned(Mapped.size()))];
    const AllocUnitInfo *Info = RT.lookup(B);
    if (Info && Info->DevPtr && Info->Size >= 8)
      Device.getMemory().writeUInt(Info->DevPtr, Rng(), 8);
  }
  note("launch");
  return true;
}

bool Session::opFree() {
  std::vector<uint64_t> Cand = unitsWhere([](const ModelUnit &U) {
    return !U.IsGlobal && !U.IsAlloca && !U.Dead;
  });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  ModelUnit &U = Model[B];
  // A table with mapArray generations outstanding frees like any unit —
  // its snapshots drain later through the paired releaseArray calls.
  nullSlotsInto(B, B + U.Size);
  RT.notifyHeapFree(B);
  Host.free(B);
  if (U.Ref > 0) {
    U.Dead = true;
    note("free " + std::to_string(B) + " (deferred)");
  } else {
    Model.erase(B);
    note("free " + std::to_string(B));
  }
  return true;
}

bool Session::opRealloc() {
  std::vector<uint64_t> Cand = unitsWhere([](const ModelUnit &U) {
    return !U.IsGlobal && !U.IsAlloca && !U.Dead && !U.IsTable;
  });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  static const uint64_t Sizes[] = {5, 13, 24, 48, 80};
  uint64_t NewSize = Sizes[pick(5)];
  nullSlotsInto(B, B + Model[B].Size);
  uint64_t NewPtr = Host.reallocate(B, NewSize);
  RT.notifyHeapRealloc(B, NewPtr, NewSize);
  ModelUnit &U = Model[B];
  if (U.Ref > 0)
    U.Dead = true;
  else
    Model.erase(B);
  evictZombiesOverlapping(NewPtr, NewPtr + NewSize);
  ModelUnit N;
  N.Base = NewPtr;
  N.Size = NewSize;
  Model[NewPtr] = N;
  note("realloc " + std::to_string(B) + " -> " + std::to_string(NewPtr));
  return true;
}

bool Session::opRemoveAlloca() {
  std::vector<uint64_t> Cand = unitsWhere([](const ModelUnit &U) {
    return U.IsAlloca && U.SnapRefs == 0;
  });
  if (Cand.empty())
    return false;
  uint64_t B = Cand[pick(unsigned(Cand.size()))];
  RT.removeAlloca(B);
  dropUnitRefs(Model[B]);
  Model.erase(B);
  Host.free(B);
  note("remove-alloca " + std::to_string(B));
  return true;
}

//===----------------------------------------------------------------------===//
// Cross-checking
//===----------------------------------------------------------------------===//

void Session::verifyTableTranslations(const ModelUnit &T) {
  const AllocUnitInfo *Info = RT.lookup(T.Base);
  if (!Info || Info->RefCount == 0) {
    fail("table " + std::to_string(T.Base) + " not mapped after mapArray");
    return;
  }
  uint64_t Slots = T.Size / 8;
  for (uint64_t S = 0; S != Slots; ++S) {
    uint64_t HostElem = Host.readUInt(T.Base + S * 8, 8);
    uint64_t DevSlot = Device.getMemory().readUInt(Info->DevPtr + S * 8, 8);
    if (HostElem == 0) {
      if (DevSlot != 0)
        fail("null slot " + std::to_string(S) + " of table " +
             std::to_string(T.Base) + " translated to " +
             std::to_string(DevSlot));
      continue;
    }
    uint64_t Expect;
    if (!RT.translateToDevice(HostElem, Expect)) {
      fail("slot target " + std::to_string(HostElem) + " not resident");
      continue;
    }
    if (DevSlot != Expect)
      fail("stale device translation in table " + std::to_string(T.Base) +
           " slot " + std::to_string(S) + ": device has " +
           std::to_string(DevSlot) + ", current translation is " +
           std::to_string(Expect));
  }
}

void Session::crossCheck() {
  if (RT.getNumTrackedUnits() != Model.size())
    fail("tracked-unit divergence: runtime " +
         std::to_string(RT.getNumTrackedUnits()) + " vs model " +
         std::to_string(Model.size()));
  size_t MappedModel = 0;
  for (const auto &[Base, U] : Model)
    if (U.Ref > 0)
      ++MappedModel;
  if (RT.getNumMappedUnits() != MappedModel)
    fail("mapped-unit divergence: runtime " +
         std::to_string(RT.getNumMappedUnits()) + " vs model " +
         std::to_string(MappedModel));
  // Device residency: one allocation per mapped non-global unit plus one
  // per instantiated named region.
  size_t ExpectDevice = InstantiatedGlobals.size();
  for (const auto &[Base, U] : Model)
    if (U.Ref > 0 && !U.IsGlobal)
      ++ExpectDevice;
  for (const auto &[Base, U] : Model)
    if (U.IsGlobal && U.Ref > 0 && !InstantiatedGlobals.count(U.Name)) {
      InstantiatedGlobals.insert(U.Name);
      ++ExpectDevice;
    }
  if (Device.getMemory().getNumLiveAllocations() != ExpectDevice)
    fail("device-allocation divergence: device has " +
         std::to_string(Device.getMemory().getNumLiveAllocations()) +
         " live, model expects " + std::to_string(ExpectDevice));
  // Spot-check translation of one mapped unit.
  for (const auto &[Base, U] : Model)
    if (U.Ref > 0) {
      uint64_t Dev;
      if (!RT.translateToDevice(Base + U.Size / 2, Dev))
        fail("mapped unit " + std::to_string(Base) + " fails translation");
      break;
    }
}

void Session::drain() {
  // Pairwise teardown: releaseArray drains snapshots (LIFO per table),
  // then loose releases drain what remains.
  bool Progress = true;
  while (Progress && !failed()) {
    Progress = false;
    for (auto &[Base, U] : Model)
      if (U.IsTable && !U.Snapshots.empty()) {
        std::vector<uint64_t> Snapshot = U.Snapshots.back();
        U.Snapshots.pop_back();
        RT.releaseArray(Base);
        for (uint64_t ElemBase : Snapshot)
          modelReleaseOne(ElemBase, /*FromSnapshot=*/true);
        modelReleaseOne(Base, /*FromSnapshot=*/false);
        Progress = true;
        break; // Iterators invalidated if a zombie drained away.
      }
  }
  Progress = true;
  while (Progress && !failed()) {
    Progress = false;
    for (auto &[Base, U] : Model)
      if (U.Ref > 0) {
        RT.release(Base);
        modelReleaseOne(Base, /*FromSnapshot=*/false);
        Progress = true;
        break;
      }
  }
  crossCheck();
  if (Device.getMemory().getNumLiveAllocations() !=
      InstantiatedGlobals.size())
    fail("device allocations leaked after drain: " +
         std::to_string(Device.getMemory().getNumLiveAllocations()) +
         " live, " + std::to_string(InstantiatedGlobals.size()) +
         " named regions expected");
}

void Session::start() {
  // A few starting units so early operations have targets.
  opAlloc();
  opAlloc();
  opAllocTable();
}

bool Session::stepOnce(ApiFuzzResult &R) {
  if (failed())
    return false;
  ++R.Steps;
  switch (pick(20)) {
  case 0: opAlloc(); break;
  case 1: opAllocTable(); break;
  case 2: opDeclareGlobal(); break;
  case 3: opDeclareAlloca(); break;
  case 4: case 5: case 6: opMap(); break;
  case 7: case 8: opUnmap(); break;
  case 9: case 10: opRelease(); break;
  case 11: case 12: opMapArray(); break;
  case 13: opUnmapArray(); break;
  case 14: opReleaseArray(); break;
  case 15: opSlotWrite(); break;
  case 16: opKernelLaunch(); break;
  case 17: opFree(); break;
  case 18: opRealloc(); break;
  case 19: opRemoveAlloca(); break;
  }
  crossCheck();
  return !failed();
}

void Session::finishRun(ApiFuzzResult &R) {
  if (!failed())
    drain();
  Auditor.finish(RT, Device, Stats);
  R.Audit = Auditor.getReport();
  if (!R.Audit.clean() && Failure.empty())
    fail("auditor violations:\n" + R.Audit.str());
  R.Failed = failed();
  R.Failure = Failure;
}

ApiFuzzResult Session::run() {
  ApiFuzzResult R;
  start();
  for (unsigned Step = 0; Step != MaxSteps; ++Step)
    if (!stepOnce(R))
      break;
  finishRun(R);
  return R;
}

} // namespace

ApiFuzzResult cgcm::runApiFuzz(uint64_t Seed, unsigned MaxSteps) {
  Session S(Seed, MaxSteps);
  return S.run();
}

MultiSessionFuzzResult cgcm::runApiFuzzMultiSession(uint64_t Seed,
                                                    unsigned MaxSteps) {
  // Two tenants with derived seeds, each on its own simulated machine
  // (host memory, device, runtime) — exactly the server's isolation
  // model. A seeded scheduler interleaves their operations on one
  // thread; every step still cross-checks against that session's own
  // spec model, so any hidden state shared between concurrently-live
  // runtime instances shows up as a divergence in whichever session
  // observes it.
  MultiSessionFuzzResult R;
  Session A(Seed * 2 + 1, MaxSteps);
  Session B(Seed * 2 + 2, MaxSteps);
  A.start();
  B.start();
  std::mt19937_64 Sched(Seed ^ 0xC2B2AE3D27D4EB4Full);
  unsigned StepsA = 0, StepsB = 0;
  bool LiveA = true, LiveB = true;
  while ((StepsA < MaxSteps && LiveA) || (StepsB < MaxSteps && LiveB)) {
    bool PickA;
    if (StepsA >= MaxSteps || !LiveA)
      PickA = false;
    else if (StepsB >= MaxSteps || !LiveB)
      PickA = true;
    else
      PickA = (Sched() & 1) != 0;
    if (PickA) {
      LiveA = A.stepOnce(R.A);
      ++StepsA;
    } else {
      LiveB = B.stepOnce(R.B);
      ++StepsB;
    }
  }
  A.finishRun(R.A);
  B.finishRun(R.B);
  R.Failed = R.A.Failed || R.B.Failed;
  if (R.A.Failed)
    R.Failure += "session A: " + R.A.Failure;
  if (R.B.Failed) {
    if (!R.Failure.empty())
      R.Failure += "\n";
    R.Failure += "session B: " + R.B.Failure;
  }
  return R;
}
