//===- fuzz/ApiFuzz.h - Runtime API-sequence differential fuzzer ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives CGCMRuntime directly with randomized — but contract-valid —
/// call sequences and cross-checks every step against an independent
/// specification-level model of Algorithms 1-3 (docs/Fuzzing.md).
///
/// This mode exists because *compiled* programs cannot reach the nastiest
/// lifecycle states: map promotion refuses to hoist communication across
/// a free/realloc that may alias the promoted pointer, so free-while-
/// mapped, realloc-while-mapped, zombie address reuse, and stale array
/// re-translations only arise from raw API sequences (or future compiler
/// bugs — which is exactly what the ctest smoke tier is for).
///
/// Checked at every step: tracked-unit count, mapped-unit count, live
/// device allocations vs model expectation, pointer translation, and —
/// after every mapArray — that each device slot holds the *current*
/// translation of its host slot. At the end the sequence is drained
/// pairwise and the RuntimeAuditor must report clean.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FUZZ_APIFUZZ_H
#define CGCM_FUZZ_APIFUZZ_H

#include "runtime/RuntimeAuditor.h"

#include <cstdint>
#include <string>

namespace cgcm {

struct ApiFuzzResult {
  bool Failed = false;
  /// First divergence plus the trailing operation log (empty when OK).
  std::string Failure;
  uint64_t Steps = 0; ///< Operations actually executed.
  AuditReport Audit;
};

/// Runs one seeded API-sequence session of roughly \p MaxSteps
/// operations. Deterministic in \p Seed. Fatal runtime errors abort the
/// process — run under fork isolation (cgcm-fuzz) to record them.
ApiFuzzResult runApiFuzz(uint64_t Seed, unsigned MaxSteps = 400);

/// Two interleaved sessions (the runtime server's tenancy model: each
/// on a private simulated machine, operations shuffled together by a
/// seeded scheduler), each cross-checked against its own spec model at
/// every step (docs/Server.md).
struct MultiSessionFuzzResult {
  bool Failed = false;
  std::string Failure; ///< Labeled per session (empty when OK).
  ApiFuzzResult A;
  ApiFuzzResult B;
};
MultiSessionFuzzResult runApiFuzzMultiSession(uint64_t Seed,
                                              unsigned MaxSteps = 400);

} // namespace cgcm

#endif // CGCM_FUZZ_APIFUZZ_H
