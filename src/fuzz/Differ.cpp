//===- fuzz/Differ.cpp - Differential execution oracle ----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differ.h"

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <vector>

using namespace cgcm;

namespace {

/// One executed configuration's observables.
struct ModeRun {
  std::string Output;
  int64_t ExitValue = 0;
  /// Final bytes of every named global, keyed by name (managed modules
  /// gain internal .cgcmname.* string globals; those are skipped).
  std::vector<std::pair<std::string, std::vector<uint8_t>>> Globals;
  AuditReport Audit;
};

ModeRun runMode(const std::string &Source, const std::string &Name,
                bool Manage, bool Optimize, bool Audit,
                unsigned AsyncStreams = 0, unsigned Devices = 1,
                bool XlatCache = false) {
  std::unique_ptr<Module> M = compileMiniC(Source, Name);
  PipelineOptions Opts;
  Opts.Parallelize = false; // Launches are explicit; isolate management.
  Opts.Manage = Manage;
  Opts.Optimize = Optimize;
  runCGCMPipeline(*M, Opts);

  Machine Mach;
  Mach.setLaunchPolicy(Manage ? LaunchPolicy::Managed
                              : LaunchPolicy::CpuEmulation);
  Mach.setOpLimit(200u * 1000u * 1000u);
  // The differ's baseline configurations run with the per-call-site
  // translation cache off so the dedicated optimized-xlatcache run can
  // diff the cached path against the uncached reference path.
  Mach.getRuntime().setXlatCacheEnabled(XlatCache);
  if (Devices > 1)
    Mach.setDevices(Devices);
  Mach.setAsyncTransfers(AsyncStreams);
  Mach.loadModule(*M);

  RuntimeAuditor Auditor;
  if (Audit)
    Mach.getRuntime().setObserver(&Auditor);

  ModeRun R;
  R.ExitValue = Mach.run();
  R.Output = Mach.getOutput();
  if (Audit) {
    Auditor.finish(Mach.getRuntime(), Mach.getDevice(), Mach.getStats());
    Mach.getRuntime().setObserver(nullptr);
    R.Audit = Auditor.getReport();
  }

  for (const auto &GV : M->globals()) {
    // Skip compiler-internal string globals (kernel/global name tables).
    if (!GV->getName().empty() && GV->getName()[0] == '.')
      continue;
    uint64_t Addr = Mach.getGlobalAddress(GV.get());
    std::vector<uint8_t> Bytes(GV->getSizeInBytes());
    if (!Bytes.empty())
      Mach.getHostMemory().read(Addr, Bytes.data(), Bytes.size());
    R.Globals.emplace_back(GV->getName(), std::move(Bytes));
  }
  return R;
}

/// Appends the first observable difference between \p Ref and \p Got to
/// \p Failure; returns true if they agree.
bool compareRuns(const ModeRun &Ref, const ModeRun &Got,
                 const char *GotName, std::string &Failure) {
  if (Ref.ExitValue != Got.ExitValue) {
    Failure += std::string(GotName) + ": exit value " +
               std::to_string(Got.ExitValue) + " vs reference " +
               std::to_string(Ref.ExitValue) + "\n";
    return false;
  }
  if (Ref.Output != Got.Output) {
    Failure += std::string(GotName) + ": output diverged\n--- reference\n" +
               Ref.Output + "--- " + GotName + "\n" + Got.Output;
    return false;
  }
  for (const auto &[Name, Bytes] : Ref.Globals) {
    const std::vector<uint8_t> *GotBytes = nullptr;
    for (const auto &[GName, GBytes] : Got.Globals)
      if (GName == Name) {
        GotBytes = &GBytes;
        break;
      }
    if (!GotBytes) {
      Failure += std::string(GotName) + ": global '" + Name + "' missing\n";
      return false;
    }
    if (*GotBytes != Bytes) {
      uint64_t Off = 0;
      while (Off < Bytes.size() && Off < GotBytes->size() &&
             Bytes[Off] == (*GotBytes)[Off])
        ++Off;
      Failure += std::string(GotName) + ": global '" + Name +
                 "' differs at byte " + std::to_string(Off) + "\n";
      return false;
    }
  }
  return true;
}

} // namespace

DiffResult cgcm::diffProgram(const std::string &Source,
                             const std::string &Name,
                             unsigned AsyncStreams, unsigned Devices,
                             bool XlatCache) {
  DiffResult R;
  ModeRun Ref = runMode(Source, Name + ".ref", /*Manage=*/false,
                        /*Optimize=*/false, /*Audit=*/false);
  ModeRun Unopt = runMode(Source, Name + ".unopt", /*Manage=*/true,
                          /*Optimize=*/false, /*Audit=*/true);
  ModeRun Opt = runMode(Source, Name + ".opt", /*Manage=*/true,
                        /*Optimize=*/true, /*Audit=*/true);

  R.ReferenceOutput = Ref.Output;
  R.UnoptimizedAudit = Unopt.Audit;
  R.OptimizedAudit = Opt.Audit;

  bool OK = compareRuns(Ref, Unopt, "unoptimized", R.Failure);
  OK &= compareRuns(Ref, Opt, "optimized", R.Failure);
  if (!Unopt.Audit.clean()) {
    R.Failure += "unoptimized audit:\n" + Unopt.Audit.str() + "\n";
    OK = false;
  }
  if (!Opt.Audit.clean()) {
    R.Failure += "optimized audit:\n" + Opt.Audit.str() + "\n";
    OK = false;
  }

  // The asynchronous pair: data movement is eager, so any observable
  // divergence means a missing fence or a corrupting overlap, not an
  // "expected" reordering.
  if (AsyncStreams > 0) {
    ModeRun Async = runMode(Source, Name + ".async", /*Manage=*/true,
                            /*Optimize=*/true, /*Audit=*/true, AsyncStreams);
    R.AsyncAudit = Async.Audit;
    OK &= compareRuns(Ref, Async, "optimized-async", R.Failure);
    if (!Async.Audit.clean()) {
      R.Failure += "optimized-async audit:\n" + Async.Audit.str() + "\n";
      OK = false;
    }
  }

  // The multi-device configuration: allocation units place across a
  // device pool, exercising the per-device routing of every runtime
  // call. Execution reads home replicas only, so any divergence is a
  // routing bug, not an "expected" placement effect.
  if (Devices > 1) {
    ModeRun MultiDev =
        runMode(Source, Name + ".multidev", /*Manage=*/true,
                /*Optimize=*/true, /*Audit=*/true, /*AsyncStreams=*/0,
                Devices);
    R.MultiDevAudit = MultiDev.Audit;
    OK &= compareRuns(Ref, MultiDev, "optimized-multidev", R.Failure);
    if (!MultiDev.Audit.clean()) {
      R.Failure +=
          "optimized-multidev audit:\n" + MultiDev.Audit.str() + "\n";
      OK = false;
    }
  }

  // The translation-cache configuration: the optimized pipeline re-run
  // with the runtime's per-call-site translation cache force-enabled.
  // The cache is a pure memoization of lookup(), so any divergence —
  // output, globals, or audit — is a stale translation surviving a
  // free/realloc/eviction, never an "expected" caching effect.
  if (XlatCache) {
    ModeRun Cached =
        runMode(Source, Name + ".xlatcache", /*Manage=*/true,
                /*Optimize=*/true, /*Audit=*/true, /*AsyncStreams=*/0,
                /*Devices=*/1, /*XlatCache=*/true);
    R.XlatCacheAudit = Cached.Audit;
    OK &= compareRuns(Ref, Cached, "optimized-xlatcache", R.Failure);
    if (!Cached.Audit.clean()) {
      R.Failure +=
          "optimized-xlatcache audit:\n" + Cached.Audit.str() + "\n";
      OK = false;
    }
  }
  R.Agreed = OK;
  return R;
}
