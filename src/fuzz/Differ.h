//===- fuzz/Differ.h - Differential execution oracle ------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one MiniC program through three configurations and diffs the
/// observable results (docs/Fuzzing.md):
///
///   reference  — CPU-only (no management, launches emulated as host loops)
///   unoptimized — communication management only, Managed launches
///   optimized  — management + fixpoint(glue,alloca-promote,map-promote)
///   optimized-async — the optimized pipeline re-run under the
///                 asynchronous transfer engine (docs/TransferEngine.md);
///                 data movement is eager, so it must stay bit-identical
///                 to the synchronous runs while only modeled time moves
///   optimized-multidev — the optimized pipeline re-run on a device pool
///                 (docs/MultiGPU.md): allocation units place across
///                 devices, so every map/unmap/launch exercises the
///                 per-device routing while the output must stay
///                 bit-identical to the single-device runs
///   optimized-xlatcache — the optimized pipeline re-run with the
///                 runtime's per-call-site translation cache force-
///                 enabled (DESIGN.md). The other managed
///                 configurations run with the cache off (the reference
///                 translation path), so any divergence here is a stale
///                 cached translation — a missed invalidation on
///                 free/realloc/eviction — not an "expected" effect
///
/// The fourth configuration is skipped when AsyncStreams is 0; the fifth
/// when Devices <= 1; the sixth when XlatCache is false.
///
/// Agreement means: identical printed output, identical exit values,
/// identical final bytes in every named global, and — for the two
/// managed runs — a clean RuntimeAuditor report (balanced refcounts, no
/// device leaks, ledger/stats byte conservation). Heap state is diffed
/// indirectly: generated programs print checksums of every live buffer.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FUZZ_DIFFER_H
#define CGCM_FUZZ_DIFFER_H

#include "runtime/RuntimeAuditor.h"

#include <cstdint>
#include <string>

namespace cgcm {

struct DiffResult {
  bool Agreed = false;
  /// Human-readable description of the first disagreement (empty when
  /// Agreed). Fatal runtime errors abort the process — run under fork
  /// isolation (cgcm-fuzz) to convert those into recorded failures.
  std::string Failure;
  std::string ReferenceOutput;
  AuditReport UnoptimizedAudit;
  AuditReport OptimizedAudit;
  AuditReport AsyncAudit; ///< Empty/clean when the async run was skipped.
  /// Empty/clean when the multi-device run was skipped.
  AuditReport MultiDevAudit;
  /// Empty/clean when the translation-cache run was skipped.
  AuditReport XlatCacheAudit;
};

/// Compiles and runs \p Source under every configuration and diffs them.
/// \p Name labels compiler diagnostics; \p AsyncStreams sets the stream
/// count of the optimized-async run (0 skips it); \p Devices the pool
/// size of the optimized-multidev run (<= 1 skips it); \p XlatCache
/// false skips the optimized-xlatcache run.
DiffResult diffProgram(const std::string &Source,
                       const std::string &Name = "fuzz",
                       unsigned AsyncStreams = 4, unsigned Devices = 2,
                       bool XlatCache = true);

} // namespace cgcm

#endif // CGCM_FUZZ_DIFFER_H
