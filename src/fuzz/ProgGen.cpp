//===- fuzz/ProgGen.cpp - Seeded random MiniC program generator -------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgGen.h"

#include <algorithm>
#include <random>
#include <sstream>

using namespace cgcm;

namespace {

/// Every double buffer is at least this many elements long, so table
/// kernels can use a fixed trip count no matter which buffers occupy
/// the slots, and realloc can never shrink below kernel reach.
constexpr unsigned MinLen = 8;

const unsigned DoubleLens[] = {8, 9, 12, 16, 24, 33, 40};
const unsigned ByteLens[] = {9, 13, 21, 27, 35}; // All % 8 != 0.
const double Factors[] = {0.5, 1.0, 1.25, 2.0};

bool isDouble(const BufferDesc &B) { return B.K != BufferDesc::Bytes; }
bool isFreeable(const BufferDesc &B) {
  return B.K == BufferDesc::Heap || B.K == BufferDesc::Bytes;
}

} // namespace

unsigned ProgDesc::numEnabledOps() const {
  unsigned N = 0;
  for (const OpDesc &Op : Ops)
    if (Op.Enabled)
      ++N;
  return N;
}

ProgDesc cgcm::generateProgram(uint64_t Seed) {
  std::mt19937_64 Rng(Seed * 0x9E3779B97F4A7C15ull + 1);
  auto Pick = [&](unsigned N) { return unsigned(Rng() % N); };

  ProgDesc P;
  P.Seed = Seed;

  unsigned NumHeap = 2 + Pick(3);
  for (unsigned I = 0; I != NumHeap; ++I)
    P.Buffers.push_back({BufferDesc::Heap, DoubleLens[Pick(7)]});
  if (Pick(2))
    P.Buffers.push_back({BufferDesc::Bytes, ByteLens[Pick(5)]});
  if (Pick(2))
    P.Buffers.push_back({BufferDesc::Global, DoubleLens[Pick(7)]});
  if (Pick(2))
    P.Buffers.push_back({BufferDesc::Local, DoubleLens[Pick(7)]});

  std::vector<unsigned> DoubleIdx, HeapIdx, ByteIdx;
  for (unsigned I = 0; I != P.Buffers.size(); ++I) {
    if (isDouble(P.Buffers[I]))
      DoubleIdx.push_back(I);
    if (P.Buffers[I].K == BufferDesc::Heap)
      HeapIdx.push_back(I);
    if (P.Buffers[I].K == BufferDesc::Bytes)
      ByteIdx.push_back(I);
  }

  P.HasTable = Pick(10) < 7;
  if (P.HasTable) {
    P.TableSlots = 2 + Pick(3);
    P.TableIsLocal = Pick(2);
    P.TableTail = !P.TableIsLocal && Pick(2);
    for (unsigned S = 0; S != P.TableSlots; ++S) {
      // Null, duplicate, and ordinary slots all occur.
      if (Pick(4) == 0)
        P.TableInit.push_back(0);
      else
        P.TableInit.push_back(DoubleIdx[Pick(unsigned(DoubleIdx.size()))] + 1);
    }
  }

  unsigned NumOps = 6 + Pick(9);
  for (unsigned I = 0; I != NumOps; ++I) {
    OpDesc Op;
    unsigned R = Pick(100);
    if (R < 22) {
      Op.K = OpDesc::LaunchScale;
      Op.A = DoubleIdx[Pick(unsigned(DoubleIdx.size()))];
      Op.Off = Pick(2) ? 0 : Pick(4);
      Op.F = Factors[Pick(4)];
      Op.Loop = 1 + Pick(3);
      Op.Loop2 = Pick(3) == 0 ? 1 + Pick(2) : 0;
    } else if (R < 34) {
      Op.K = OpDesc::LaunchAdd;
      // Distinct operands: the verifier rejects passing the same
      // pointer live-in twice. At least two heap doubles always exist.
      unsigned PA = Pick(unsigned(DoubleIdx.size()));
      unsigned PB = Pick(unsigned(DoubleIdx.size()));
      if (PB == PA)
        PB = (PB + 1) % unsigned(DoubleIdx.size());
      Op.A = DoubleIdx[PA];
      Op.B = DoubleIdx[PB];
      Op.Loop = 1 + Pick(3);
    } else if (R < 42 && !ByteIdx.empty()) {
      Op.K = OpDesc::LaunchBytes;
      Op.A = ByteIdx[Pick(unsigned(ByteIdx.size()))];
      Op.Loop = 1 + Pick(2);
    } else if (R < 56 && P.HasTable) {
      Op.K = Pick(4) == 0 ? OpDesc::LaunchTable2 : OpDesc::LaunchTable;
      Op.F = Factors[Pick(4)];
      Op.Loop = 1 + Pick(3);
      Op.Loop2 = Pick(4) == 0 ? 1 + Pick(2) : 0;
    } else if (R < 66) {
      Op.K = OpDesc::HostTouch;
      Op.A = Pick(unsigned(P.Buffers.size()));
    } else if (R < 76 && P.HasTable) {
      Op.K = OpDesc::SlotSet;
      Op.Slot = Pick(P.TableSlots);
      Op.Null = Pick(4) == 0;
      Op.B = DoubleIdx[Pick(unsigned(DoubleIdx.size()))];
    } else if (R < 82 && !HeapIdx.empty()) {
      Op.K = OpDesc::FreeBuf;
      Op.A = HeapIdx[Pick(unsigned(HeapIdx.size()))];
    } else if (R < 90 && !HeapIdx.empty()) {
      Op.K = OpDesc::ReallocBuf;
      Op.A = Pick(4) && !ByteIdx.empty() ? ByteIdx[Pick(unsigned(ByteIdx.size()))]
                                         : HeapIdx[Pick(unsigned(HeapIdx.size()))];
      Op.NewLen = P.Buffers[Op.A].K == BufferDesc::Bytes ? ByteLens[Pick(5)]
                                                         : DoubleLens[Pick(7)];
    } else {
      Op.K = OpDesc::Checksum;
      Op.A = Pick(unsigned(P.Buffers.size()));
    }
    P.Ops.push_back(Op);
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// Render-time mutable view of one buffer.
struct BufState {
  unsigned CurLen;
  bool Alive = true;
};

std::string bufName(unsigned I) { return "u" + std::to_string(I); }

std::string fmtF(double V) {
  std::ostringstream OS;
  OS << V;
  std::string S = OS.str();
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos)
    S += ".0";
  return S;
}

unsigned gridFor(unsigned N) { return (N + 31) / 32; }

} // namespace

std::string ProgDesc::render() const {
  std::ostringstream OS;
  OS << "/* generated: seed " << Seed << " */\n";

  // File-scope globals.
  for (unsigned I = 0; I != Buffers.size(); ++I)
    if (Buffers[I].K == BufferDesc::Global)
      OS << "double " << bufName(I) << "[" << Buffers[I].Len << "];\n";

  // The kernel zoo. All are emitted whether or not an op uses them.
  OS << R"(
__kernel void k_scale(double *a, long n, double f) {
  long i = __tid();
  if (i < n)
    a[i] = a[i] * f + 1.0;
}
__kernel void k_add(double *a, double *b, long n) {
  long i = __tid();
  if (i < n)
    a[i] = a[i] + b[i] * 0.25;
}
__kernel void k_bytes(char *c, long n) {
  long i = __tid();
  if (i < n)
    c[i] = (char)((long)c[i] + i + 1);
}
__kernel void k_table(double **t, long rows, long n, double f) {
  long i = __tid();
  long j;
  if (i < n) {
    for (j = 0; j < rows; j++) {
      double *p = t[j];
      if (p != (double*)0)
        p[i] = p[i] * f + (double)j;
    }
  }
}
__kernel void k_table2(double **t, double **u, long rows, long n) {
  long i = __tid();
  long j;
  if (i < n) {
    for (j = 0; j < rows; j++) {
      double *p = t[j];
      double *q = u[rows - 1 - j];
      if (p != (double*)0)
        if (q != (double*)0)
          p[i] = p[i] + q[i] * 0.125;
    }
  }
}
)";

  OS << "int main() {\n";
  OS << "  long t0; long t1; long ci; double s; long si;\n";

  // Buffer declarations + deterministic initialization.
  std::vector<BufState> St;
  for (unsigned I = 0; I != Buffers.size(); ++I) {
    const BufferDesc &B = Buffers[I];
    St.push_back({B.Len, true});
    std::string N = bufName(I);
    switch (B.K) {
    case BufferDesc::Heap:
      OS << "  double *" << N << " = (double*)malloc(" << B.Len
         << " * sizeof(double));\n";
      break;
    case BufferDesc::Bytes:
      OS << "  char *" << N << " = malloc(" << B.Len << ");\n";
      break;
    case BufferDesc::Local:
      OS << "  double " << N << "[" << B.Len << "];\n";
      break;
    case BufferDesc::Global:
      break; // Declared at file scope.
    }
    if (B.K == BufferDesc::Bytes)
      OS << "  for (ci = 0; ci < " << B.Len << "; ci++) " << N
         << "[ci] = (char)(ci * 3 + " << (I + 1) << ");\n";
    else
      OS << "  for (ci = 0; ci < " << B.Len << "; ci++) " << N
         << "[ci] = (double)(ci % 7) * 0.5 + " << fmtF(double(I + 1)) << ";\n";
  }

  // The pointer table.
  std::vector<unsigned> Slots = TableInit; // buffer index + 1, 0 = null
  if (HasTable) {
    if (TableIsLocal)
      OS << "  double *tab[" << TableSlots << "];\n";
    else
      OS << "  double **tab = (double**)malloc(" << TableSlots
         << " * sizeof(double*)" << (TableTail ? " + 4" : "") << ");\n";
    for (unsigned S = 0; S != TableSlots; ++S) {
      if (Slots[S] == 0)
        OS << "  tab[" << S << "] = (double*)0;\n";
      else
        OS << "  tab[" << S << "] = " << bufName(Slots[S] - 1) << ";\n";
    }
  }

  auto nullSlotsOf = [&](unsigned Buf, std::ostream &Out) {
    if (!HasTable)
      return;
    for (unsigned S = 0; S != TableSlots; ++S)
      if (Slots[S] == Buf + 1) {
        Out << "  tab[" << S << "] = (double*)0;\n";
        Slots[S] = 0;
      }
  };
  auto refreshSlotsOf = [&](unsigned Buf, std::ostream &Out) {
    if (!HasTable)
      return;
    for (unsigned S = 0; S != TableSlots; ++S)
      if (Slots[S] == Buf + 1)
        Out << "  tab[" << S << "] = " << bufName(Buf) << ";\n";
  };
  auto checksum = [&](unsigned I, std::ostream &Out) {
    std::string N = bufName(I);
    if (Buffers[I].K == BufferDesc::Bytes) {
      Out << "  si = 0;\n  for (ci = 0; ci < " << St[I].CurLen
          << "; ci++) si = si + (long)" << N << "[ci];\n  print_i64(si);\n";
    } else {
      Out << "  s = 0.0;\n  for (ci = 0; ci < " << St[I].CurLen
          << "; ci++) s = s + " << N << "[ci];\n  print_f64(s);\n";
    }
  };
  auto launchHeader = [&](const OpDesc &Op, std::ostream &Out) -> std::string {
    std::string Indent = "  ";
    if (Op.Loop2 > 0) {
      Out << Indent << "for (t1 = 0; t1 < " << Op.Loop2 << "; t1++)\n";
      Indent += "  ";
    }
    if (Op.Loop > 1) {
      Out << Indent << "for (t0 = 0; t0 < " << Op.Loop << "; t0++)\n";
      Indent += "  ";
    }
    return Indent;
  };

  for (const OpDesc &Op : Ops) {
    if (!Op.Enabled)
      continue;
    switch (Op.K) {
    case OpDesc::LaunchScale: {
      if (!St[Op.A].Alive)
        break;
      unsigned Off = std::min(Op.Off, St[Op.A].CurLen - MinLen + 4);
      if (Off >= St[Op.A].CurLen)
        Off = 0;
      unsigned N = St[Op.A].CurLen - Off;
      std::string In = launchHeader(Op, OS);
      OS << In << "launch k_scale<<<" << gridFor(N) << ", 32>>>("
         << bufName(Op.A) << (Off ? " + " + std::to_string(Off) : "") << ", "
         << N << ", " << fmtF(Op.F) << ");\n";
      break;
    }
    case OpDesc::LaunchAdd: {
      if (!St[Op.A].Alive || !St[Op.B].Alive)
        break;
      unsigned N = std::min(St[Op.A].CurLen, St[Op.B].CurLen);
      std::string In = launchHeader(Op, OS);
      OS << In << "launch k_add<<<" << gridFor(N) << ", 32>>>("
         << bufName(Op.A) << ", " << bufName(Op.B) << ", " << N << ");\n";
      break;
    }
    case OpDesc::LaunchBytes: {
      if (!St[Op.A].Alive)
        break;
      unsigned N = St[Op.A].CurLen;
      std::string In = launchHeader(Op, OS);
      OS << In << "launch k_bytes<<<" << gridFor(N) << ", 32>>>("
         << bufName(Op.A) << ", " << N << ");\n";
      break;
    }
    case OpDesc::LaunchTable: {
      if (!HasTable)
        break;
      std::string In = launchHeader(Op, OS);
      OS << In << "launch k_table<<<" << gridFor(MinLen) << ", 32>>>(tab, "
         << TableSlots << ", " << MinLen << ", " << fmtF(Op.F) << ");\n";
      break;
    }
    case OpDesc::LaunchTable2: {
      if (!HasTable)
        break;
      // Both parameters view the same allocation unit, but through
      // distinct pointers (the verifier rejects duplicate live-ins by
      // SSA root): the second mapArray of the launch is a re-map with
      // RefCount already 1 — the refcount-reuse translation-refresh
      // path a single-table launch never reaches.
      std::string In = launchHeader(Op, OS);
      OS << In << "launch k_table2<<<" << gridFor(MinLen) << ", 32>>>(tab, "
         << "tab + 1, " << (TableSlots - 1) << ", " << MinLen << ");\n";
      break;
    }
    case OpDesc::HostTouch: {
      if (!St[Op.A].Alive)
        break;
      std::string N = bufName(Op.A);
      if (Buffers[Op.A].K == BufferDesc::Bytes)
        OS << "  for (ci = 0; ci < " << St[Op.A].CurLen << "; ci++) " << N
           << "[ci] = (char)((long)" << N << "[ci] + 1);\n";
      else
        OS << "  for (ci = 0; ci < " << St[Op.A].CurLen << "; ci++) " << N
           << "[ci] = " << N << "[ci] + 0.5;\n";
      break;
    }
    case OpDesc::SlotSet: {
      if (!HasTable || Op.Slot >= TableSlots)
        break;
      if (Op.Null || !St[Op.B].Alive) {
        OS << "  tab[" << Op.Slot << "] = (double*)0;\n";
        Slots[Op.Slot] = 0;
      } else {
        OS << "  tab[" << Op.Slot << "] = " << bufName(Op.B) << ";\n";
        Slots[Op.Slot] = Op.B + 1;
      }
      break;
    }
    case OpDesc::FreeBuf: {
      if (!St[Op.A].Alive || !isFreeable(Buffers[Op.A]))
        break;
      nullSlotsOf(Op.A, OS);
      OS << "  free((char*)" << bufName(Op.A) << ");\n";
      St[Op.A].Alive = false;
      break;
    }
    case OpDesc::ReallocBuf: {
      if (!St[Op.A].Alive || !isFreeable(Buffers[Op.A]))
        break;
      std::string N = bufName(Op.A);
      if (Buffers[Op.A].K == BufferDesc::Bytes)
        OS << "  " << N << " = realloc(" << N << ", " << Op.NewLen << ");\n";
      else
        OS << "  " << N << " = (double*)realloc((char*)" << N << ", "
           << Op.NewLen << " * sizeof(double));\n";
      // Growth exposes uninitialized bytes: give them defined values so
      // every mode sees identical data.
      if (Op.NewLen > St[Op.A].CurLen) {
        if (Buffers[Op.A].K == BufferDesc::Bytes)
          OS << "  for (ci = " << St[Op.A].CurLen << "; ci < " << Op.NewLen
             << "; ci++) " << N << "[ci] = (char)ci;\n";
        else
          OS << "  for (ci = " << St[Op.A].CurLen << "; ci < " << Op.NewLen
             << "; ci++) " << N << "[ci] = (double)ci * 0.25;\n";
      }
      St[Op.A].CurLen = Op.NewLen;
      refreshSlotsOf(Op.A, OS);
      break;
    }
    case OpDesc::Checksum: {
      if (!St[Op.A].Alive)
        break;
      checksum(Op.A, OS);
      break;
    }
    }
  }

  // Final checksums over everything still alive, then tidy teardown.
  for (unsigned I = 0; I != Buffers.size(); ++I)
    if (St[I].Alive)
      checksum(I, OS);
  for (unsigned I = 0; I != Buffers.size(); ++I)
    if (St[I].Alive && isFreeable(Buffers[I]))
      OS << "  free((char*)" << bufName(I) << ");\n";
  if (HasTable && !TableIsLocal)
    OS << "  free((char*)tab);\n";
  OS << "  return 0;\n}\n";
  return OS.str();
}
