//===- fuzz/ProgGen.h - Seeded random MiniC program generator ---------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random-but-valid MiniC programs that concentrate on the
/// communication-management bug surface (docs/Fuzzing.md): aliased
/// heap/global/alloca allocation units, doubly-indirect pointer tables
/// with null and duplicate slots, realloc/free between kernel launches,
/// buffer sizes not divisible by 8, and nested loops around launches.
///
/// Generation is two-phase so failing programs can be minimized: a seed
/// deterministically expands to a structured ProgDesc (buffers, an
/// optional pointer table, and a sequence of top-level operations), and
/// render() turns the description into MiniC source. The reducer works
/// by clearing OpDesc::Enabled bits and re-rendering — render() tracks
/// buffer liveness and table contents itself, so *any* mask yields a
/// valid program (operations on dead buffers are skipped, slots holding
/// freed buffers are nulled before the free).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FUZZ_PROGGEN_H
#define CGCM_FUZZ_PROGGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace cgcm {

/// One allocation unit the generated program owns.
struct BufferDesc {
  enum Kind {
    Heap,   ///< double array from malloc/calloc (free/realloc eligible)
    Bytes,  ///< char array from malloc with size % 8 != 0
    Global, ///< file-scope double array (registered via declareGlobal)
    Local,  ///< double array in main's frame (registered via declareAlloca)
  };
  Kind K = Heap;
  unsigned Len = 8; ///< Elements (doubles) or bytes (Bytes kind).
};

/// One top-level operation in main, in program order.
struct OpDesc {
  enum Kind {
    LaunchScale, ///< launch k_scale(A + Off, n, F) inside Loop (x Loop2)
    LaunchAdd,   ///< launch k_add(A, B, n) inside Loop
    LaunchBytes, ///< launch k_bytes(A, n) — char buffer traffic
    LaunchTable, ///< launch k_table(tab, rows, n, F) inside Loop
    LaunchTable2,///< launch k_table2(tab, tab, rows, n) — re-map path
    HostTouch,   ///< CPU writes a pattern into A (forces DtoH sync)
    SlotSet,     ///< tab[Slot] = B (or null) — retarget between launches
    FreeBuf,     ///< free(A) (slots holding A are nulled first)
    ReallocBuf,  ///< A = realloc(A, NewLen) (slots are refreshed)
    Checksum,    ///< CPU reduction over A, printed
  };
  Kind K = LaunchScale;
  unsigned A = 0;      ///< Primary buffer index.
  unsigned B = 0;      ///< Secondary buffer index (LaunchAdd/SlotSet).
  unsigned Slot = 0;   ///< Table slot (SlotSet).
  bool Null = false;   ///< SlotSet: store null instead of B.
  unsigned Off = 0;    ///< Interior-pointer offset in elements.
  unsigned Loop = 1;   ///< Launch repeat count (for-loop around it).
  unsigned Loop2 = 0;  ///< Outer loop trips; 0 = no outer loop.
  double F = 1.0;      ///< Kernel scale factor.
  unsigned NewLen = 8; ///< ReallocBuf: new element count.
  bool Enabled = true; ///< Cleared by the reducer.
};

/// A complete generated program.
struct ProgDesc {
  uint64_t Seed = 0;
  std::vector<BufferDesc> Buffers;
  bool HasTable = false;
  unsigned TableSlots = 0;
  bool TableIsLocal = false; ///< `double *tab[N]` vs heap `double **`.
  bool TableTail = false;    ///< Heap table gets 4 trailing bytes.
  /// Initial slot contents: buffer index + 1, or 0 for null.
  std::vector<unsigned> TableInit;
  std::vector<OpDesc> Ops;

  /// Renders the description to MiniC source. Valid for any Enabled
  /// mask; see file comment.
  std::string render() const;

  unsigned numEnabledOps() const;
};

/// Expands \p Seed into a program description. Deterministic.
ProgDesc generateProgram(uint64_t Seed);

} // namespace cgcm

#endif // CGCM_FUZZ_PROGGEN_H
