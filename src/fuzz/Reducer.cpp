//===- fuzz/Reducer.cpp - Greedy failing-program minimizer ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <vector>

using namespace cgcm;

namespace {

std::vector<size_t> enabledIndices(const ProgDesc &P) {
  std::vector<size_t> Out;
  for (size_t I = 0; I != P.Ops.size(); ++I)
    if (P.Ops[I].Enabled)
      Out.push_back(I);
  return Out;
}

} // namespace

ProgDesc cgcm::reduceProgram(
    ProgDesc P, const std::function<bool(const ProgDesc &)> &StillFails,
    ReduceStats *Stats) {
  ReduceStats Local;
  Local.OpsBefore = P.numEnabledOps();

  ++Local.CandidatesTried;
  if (!StillFails(P)) {
    // Not reproducible — refuse to "minimize" into a vacuous program.
    Local.OpsAfter = Local.OpsBefore;
    if (Stats)
      *Stats = Local;
    return P;
  }

  bool Progress = true;
  while (Progress) {
    Progress = false;

    // Chunk phase: drop contiguous runs of enabled ops, halving the
    // chunk size down to 2. For the typical 6-14 op program this clears
    // unrelated preambles in a couple of tests.
    std::vector<size_t> Idx = enabledIndices(P);
    for (size_t Chunk = Idx.size() / 2; Chunk >= 2; Chunk /= 2) {
      Idx = enabledIndices(P);
      for (size_t Start = 0; Start + Chunk <= Idx.size();) {
        ProgDesc Candidate = P;
        for (size_t I = 0; I != Chunk; ++I)
          Candidate.Ops[Idx[Start + I]].Enabled = false;
        ++Local.CandidatesTried;
        if (StillFails(Candidate)) {
          P = std::move(Candidate);
          Idx = enabledIndices(P);
          Progress = true;
          // Indices shifted; stay at the same position.
        } else {
          Start += Chunk;
        }
      }
    }

    // Single-op phase.
    for (size_t I = 0; I != P.Ops.size(); ++I) {
      if (!P.Ops[I].Enabled)
        continue;
      ProgDesc Candidate = P;
      Candidate.Ops[I].Enabled = false;
      ++Local.CandidatesTried;
      if (StillFails(Candidate)) {
        P = std::move(Candidate);
        Progress = true;
      }
    }
  }

  Local.OpsAfter = P.numEnabledOps();
  if (Stats)
    *Stats = Local;
  return P;
}
