//===- fuzz/Reducer.h - Greedy failing-program minimizer --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimizes a failing generated program by greedily clearing
/// OpDesc::Enabled bits and re-testing. ProgDesc::render() keeps any
/// mask valid (dead-buffer operations are skipped, slots are nulled
/// before frees), so reduction never has to reason about program
/// semantics — only about whether the failure reproduces.
///
/// The caller supplies the oracle as a predicate so it can run each
/// candidate under fork isolation (fatal runtime errors abort the
/// process; see tools/cgcm-fuzz.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_FUZZ_REDUCER_H
#define CGCM_FUZZ_REDUCER_H

#include "fuzz/ProgGen.h"

#include <functional>

namespace cgcm {

struct ReduceStats {
  unsigned CandidatesTried = 0;
  unsigned OpsBefore = 0;
  unsigned OpsAfter = 0;
};

/// Returns \p P with a minimal Enabled mask such that \p StillFails
/// holds. Tries chunk removal first (halving), then single operations,
/// iterating to a fixed point. \p StillFails must be true for \p P
/// itself; it is re-checked and the input returned unchanged if not.
ProgDesc reduceProgram(ProgDesc P,
                       const std::function<bool(const ProgDesc &)> &StillFails,
                       ReduceStats *Stats = nullptr);

} // namespace cgcm

#endif // CGCM_FUZZ_REDUCER_H
