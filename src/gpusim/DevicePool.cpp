//===- gpusim/DevicePool.cpp - N simulated devices + P2P copy lanes ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpusim/DevicePool.h"

#include <vector>

using namespace cgcm;

StreamEngine::TransferResult
DevicePool::chargeP2PImpl(unsigned Src, unsigned Dst, uint64_t Bytes,
                          uint64_t SrcPtr, uint64_t DstPtr, bool WithArgs) {
  GPUDevice &SrcDev = device(Src);
  GPUDevice &DstDev = device(Dst);
  StreamEngine &DstEngine = DstDev.getStreamEngine();
  double SrcReady = SrcDev.getStreamEngine().dataReadyFrontier();
  StreamEngine::TransferResult R = DstEngine.transferP2P(Bytes, SrcReady);
  DstDev.recordEvent(EventKind::HtoD, R.Start, R.Duration, Bytes);
  TraceCollector *T = DstDev.getTrace();
  if (T && T->isEnabled()) {
    TraceArgs Args;
    Args.add("bytes", Bytes).add("src_dev", Src).add("dst_dev", Dst);
    if (WithArgs)
      Args.add("src", SrcPtr).add("dst", DstPtr);
    T->complete("P2P", "xfer", R.Start, R.Duration, std::move(Args), R.Lane);
  }
  Stats.BytesP2P += Bytes;
  ++Stats.TransfersP2P;
  if (Devices.size() > 1) {
    ExecStats::DeviceStats &DS = Stats.deviceStats(Dst);
    DS.P2PBytes += Bytes;
    ++DS.P2PTransfers;
  }
  return R;
}

StreamEngine::TransferResult DevicePool::p2pCopy(unsigned Src, unsigned Dst,
                                                 uint64_t SrcPtr,
                                                 uint64_t DstPtr,
                                                 uint64_t Bytes) {
  // Bytes move eagerly regardless of the modeled P2P schedule, so a
  // multi-device run is output-identical to a single-device one.
  std::vector<uint8_t> Buf(Bytes);
  device(Src).getMemory().read(SrcPtr, Buf.data(), Bytes);
  device(Dst).getMemory().write(DstPtr, Buf.data(), Bytes);
  return chargeP2PImpl(Src, Dst, Bytes, SrcPtr, DstPtr, /*WithArgs=*/true);
}

StreamEngine::TransferResult DevicePool::chargeP2P(unsigned Src, unsigned Dst,
                                                   uint64_t Bytes) {
  return chargeP2PImpl(Src, Dst, Bytes, 0, 0, /*WithArgs=*/false);
}
