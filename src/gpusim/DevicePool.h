//===- gpusim/DevicePool.h - N simulated devices + P2P copy lanes -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pool of simulated GPUs (docs/MultiGPU.md). Each device owns its own
/// SimMemory — strided address windows, so any device address identifies
/// its owner arithmetically — and its own StreamEngine. The pool adds the
/// device-to-device copy path: `p2pCopy` moves bytes eagerly between two
/// device memories and charges the modeled peer-lane cost (or the
/// DtoH + HtoD staging fallback when TimingModel::P2PEnabled is off)
/// through the *destination* engine, so kernels launched on the
/// destination fence the arrival like any other input.
///
/// A pool of size 1 is byte-for-byte the pre-pool single device: device 0
/// sits at the historical DeviceAddressBase, per-device stats stay off,
/// and no P2P path can be exercised.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_GPUSIM_DEVICEPOOL_H
#define CGCM_GPUSIM_DEVICEPOOL_H

#include "gpusim/GPUDevice.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace cgcm {

class DevicePool {
public:
  DevicePool(TimingModel &TM, ExecStats &Stats) : TM(TM), Stats(Stats) {
    Devices.push_back(std::make_unique<GPUDevice>(TM, Stats, 0));
  }

  /// Grows (never shrinks below 1) the pool to \p N devices. Device
  /// objects are stable: references handed out earlier stay valid.
  /// Growing past 1 turns per-device stats on for every device,
  /// including device 0.
  void setDeviceCount(unsigned N) {
    if (N == 0)
      N = 1;
    while (Devices.size() < N)
      Devices.push_back(
          std::make_unique<GPUDevice>(TM, Stats, unsigned(Devices.size())));
    bool PerDevice = Devices.size() > 1;
    for (auto &D : Devices)
      D->setPerDeviceStats(PerDevice);
  }

  unsigned size() const { return unsigned(Devices.size()); }

  GPUDevice &device(unsigned D) { return *Devices.at(D); }
  const GPUDevice &device(unsigned D) const { return *Devices.at(D); }

  /// The device whose address window holds \p Addr.
  GPUDevice &deviceForAddress(uint64_t Addr) {
    return device(deviceIndexForAddress(Addr));
  }

  /// Copies \p Bytes from \p SrcPtr on device \p Src to \p DstPtr on
  /// device \p Dst: bytes move eagerly (output identity by construction)
  /// and the modeled cost lands on the destination engine. Returns the
  /// engine's timing decision.
  StreamEngine::TransferResult p2pCopy(unsigned Src, unsigned Dst,
                                       uint64_t SrcPtr, uint64_t DstPtr,
                                       uint64_t Bytes);

  /// Charges the timing (and counters) of a peer copy without moving any
  /// bytes — for halo exchanges after sharded launches, where every shard
  /// already wrote the single authoritative replica and only the modeled
  /// re-coherence traffic remains.
  StreamEngine::TransferResult chargeP2P(unsigned Src, unsigned Dst,
                                         uint64_t Bytes);

  /// Resets every device (memory, module globals, timelines).
  void reset() {
    for (auto &D : Devices)
      D->reset();
  }

private:
  StreamEngine::TransferResult chargeP2PImpl(unsigned Src, unsigned Dst,
                                             uint64_t Bytes, uint64_t SrcPtr,
                                             uint64_t DstPtr, bool Trace);

  TimingModel &TM;
  ExecStats &Stats;
  std::vector<std::unique_ptr<GPUDevice>> Devices;
};

} // namespace cgcm

#endif // CGCM_GPUSIM_DEVICEPOOL_H
