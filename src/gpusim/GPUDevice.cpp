//===- gpusim/GPUDevice.cpp - Simulated CUDA-like device --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpusim/GPUDevice.h"

#include <vector>

using namespace cgcm;

void GPUDevice::cuMemcpyHtoD(uint64_t DevPtr, const SimMemory &Host,
                             uint64_t HostPtr, uint64_t Size) {
  std::vector<uint8_t> Buf(Size);
  Host.read(HostPtr, Buf.data(), Size);
  Mem.write(DevPtr, Buf.data(), Size);
  double Cost = TM.transferCycles(Size);
  double Start = Stats.totalCycles();
  recordEvent(EventKind::HtoD, Start, Cost, Size);
  if (Trace && Trace->isEnabled())
    Trace->complete("HtoD", "xfer", Start, Cost,
                    TraceArgs()
                        .add("bytes", Size)
                        .add("host", HostPtr)
                        .add("dev", DevPtr));
  Stats.CommCycles += Cost;
  Stats.BytesHtoD += Size;
  ++Stats.TransfersHtoD;
}

void GPUDevice::cuMemcpyDtoH(SimMemory &Host, uint64_t HostPtr,
                             uint64_t DevPtr, uint64_t Size) {
  std::vector<uint8_t> Buf(Size);
  Mem.read(DevPtr, Buf.data(), Size);
  Host.write(HostPtr, Buf.data(), Size);
  double Cost = TM.transferCycles(Size);
  double Start = Stats.totalCycles();
  recordEvent(EventKind::DtoH, Start, Cost, Size);
  if (Trace && Trace->isEnabled())
    Trace->complete("DtoH", "xfer", Start, Cost,
                    TraceArgs()
                        .add("bytes", Size)
                        .add("host", HostPtr)
                        .add("dev", DevPtr));
  Stats.CommCycles += Cost;
  Stats.BytesDtoH += Size;
  ++Stats.TransfersDtoH;
}

uint64_t GPUDevice::cuModuleGetGlobal(const std::string &Name, uint64_t Size) {
  auto It = ModuleGlobals.find(Name);
  if (It != ModuleGlobals.end())
    return It->second;
  uint64_t Addr = Mem.allocate(Size);
  noteResidency();
  ModuleGlobals[Name] = Addr;
  return Addr;
}
