//===- gpusim/GPUDevice.cpp - Simulated CUDA-like device --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpusim/GPUDevice.h"

#include <vector>

using namespace cgcm;

StreamEngine::TransferResult GPUDevice::cuMemcpyHtoD(uint64_t DevPtr,
                                                     const SimMemory &Host,
                                                     uint64_t HostPtr,
                                                     uint64_t Size,
                                                     bool Pinned) {
  // Bytes move eagerly regardless of the engine's timing decision, so an
  // asynchronous run is output-identical to a synchronous one.
  std::vector<uint8_t> Buf(Size);
  Host.read(HostPtr, Buf.data(), Size);
  Mem.write(DevPtr, Buf.data(), Size);
  StreamEngine::TransferResult R = Engine.transferHtoD(Size, Pinned, HostPtr);
  recordEvent(EventKind::HtoD, R.Start, R.Duration, Size);
  if (Trace && Trace->isEnabled()) {
    TraceArgs Args;
    Args.add("bytes", Size).add("host", HostPtr).add("dev", DevPtr);
    if (Engine.isAsync())
      Args.add("stream", R.Stream).add("coalesced", R.Coalesced);
    Trace->complete("HtoD", "xfer", R.Start, R.Duration, std::move(Args),
                    R.Lane);
  }
  Stats.BytesHtoD += Size;
  ++Stats.TransfersHtoD;
  if (PerDeviceStats) {
    ExecStats::DeviceStats &DS = Stats.deviceStats(Index);
    DS.BytesHtoD += Size;
    ++DS.TransfersHtoD;
  }
  return R;
}

StreamEngine::TransferResult GPUDevice::cuMemcpyDtoH(SimMemory &Host,
                                                     uint64_t HostPtr,
                                                     uint64_t DevPtr,
                                                     uint64_t Size,
                                                     bool Pinned) {
  std::vector<uint8_t> Buf(Size);
  Mem.read(DevPtr, Buf.data(), Size);
  Host.write(HostPtr, Buf.data(), Size);
  StreamEngine::TransferResult R = Engine.transferDtoH(Size, Pinned, HostPtr);
  recordEvent(EventKind::DtoH, R.Start, R.Duration, Size);
  if (Trace && Trace->isEnabled()) {
    TraceArgs Args;
    Args.add("bytes", Size).add("host", HostPtr).add("dev", DevPtr);
    if (Engine.isAsync())
      Args.add("stream", R.Stream).add("coalesced", R.Coalesced);
    Trace->complete("DtoH", "xfer", R.Start, R.Duration, std::move(Args),
                    R.Lane);
  }
  Stats.BytesDtoH += Size;
  ++Stats.TransfersDtoH;
  if (PerDeviceStats) {
    ExecStats::DeviceStats &DS = Stats.deviceStats(Index);
    DS.BytesDtoH += Size;
    ++DS.TransfersDtoH;
  }
  return R;
}

uint64_t GPUDevice::cuModuleGetGlobal(const std::string &Name, uint64_t Size) {
  auto It = ModuleGlobals.find(Name);
  if (It != ModuleGlobals.end())
    return It->second;
  uint64_t Addr = Mem.allocate(Size);
  noteResidency();
  ModuleGlobals[Name] = Addr;
  return Addr;
}
