//===- gpusim/GPUDevice.h - Simulated CUDA-like device ----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A software GPU with its own memory space and a driver-style API
/// mirroring the subset of the CUDA driver API the paper's runtime uses:
/// cuMemAlloc, cuMemFree, cuMemcpyHtoD, cuMemcpyDtoH, cuModuleGetGlobal.
/// Transfers charge the timing model and append timeline events.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_GPUSIM_GPUDEVICE_H
#define CGCM_GPUSIM_GPUDEVICE_H

#include "gpusim/SimMemory.h"
#include "gpusim/StreamEngine.h"
#include "gpusim/Timing.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace cgcm {

class GPUDevice {
public:
  /// \p Index places this device's memory at
  /// DeviceAddressBase + Index * DeviceAddressStride; index 0 (the
  /// default, and the only device outside a pool) keeps exactly the
  /// historical base.
  GPUDevice(TimingModel &TM, ExecStats &Stats, unsigned Index = 0)
      : Index(Index), Mem(baseAddr(), spaceName(Index)), TM(TM), Stats(Stats),
        Engine(TM, Stats) {}

  unsigned getIndex() const { return Index; }

  /// When true (pools with more than one device), traffic through this
  /// device additionally lands in Stats.Devices[Index].
  void setPerDeviceStats(bool V) { PerDeviceStats = V; }

  SimMemory &getMemory() { return Mem; }
  const SimMemory &getMemory() const { return Mem; }

  /// The modeled DMA engine every copy's timing routes through
  /// (docs/TransferEngine.md). Synchronous (disabled) by default.
  StreamEngine &getStreamEngine() { return Engine; }
  const StreamEngine &getStreamEngine() const { return Engine; }

  //===--------------------------------------------------------------------===//
  // Driver-style API (paper Algorithms 1-3 call these)
  //===--------------------------------------------------------------------===//

  /// Allocates device memory; returns a device-space address.
  uint64_t cuMemAlloc(uint64_t Size) {
    uint64_t Addr = Mem.allocate(Size);
    noteResidency();
    return Addr;
  }

  /// Frees device memory allocated by cuMemAlloc.
  void cuMemFree(uint64_t DevPtr) { Mem.free(DevPtr); }

  /// Copies host bytes to device memory, charging transfer cost through
  /// the stream engine (synchronous blocking cost by default). \p Pinned
  /// marks a page-locked source buffer (async staging model). Returns the
  /// engine's timing decision so callers can account coalescing.
  StreamEngine::TransferResult cuMemcpyHtoD(uint64_t DevPtr,
                                            const SimMemory &Host,
                                            uint64_t HostPtr, uint64_t Size,
                                            bool Pinned = false);

  /// Copies device bytes to host memory; see cuMemcpyHtoD.
  StreamEngine::TransferResult cuMemcpyDtoH(SimMemory &Host, uint64_t HostPtr,
                                            uint64_t DevPtr, uint64_t Size,
                                            bool Pinned = false);

  /// Returns the device-space address of the named module global,
  /// allocating it on first use (the "named region" of global variables).
  uint64_t cuModuleGetGlobal(const std::string &Name, uint64_t Size);

  /// True if the named global already has a device instance.
  bool hasModuleGlobal(const std::string &Name) const {
    return ModuleGlobals.count(Name) != 0;
  }

  /// All named regions instantiated so far (name -> device address). The
  /// fuzzing auditor uses this to exclude module globals — which are
  /// deliberately never freed — from its device-leak sweep.
  const std::map<std::string, uint64_t> &getModuleGlobals() const {
    return ModuleGlobals;
  }

  //===--------------------------------------------------------------------===//
  // Timeline (for the Figure 2 schedule bench)
  //===--------------------------------------------------------------------===//

  /// Attaches the machine's structured trace collector; transfers emit
  /// events into it when tracing is enabled. Null detaches.
  void setTrace(TraceCollector *T) { Trace = T; }
  TraceCollector *getTrace() const { return Trace; }

  void setTimelineEnabled(bool V) { TimelineEnabled = V; }
  const std::vector<TimelineEvent> &getTimeline() const { return Timeline; }
  void recordEvent(EventKind Kind, double Start, double Duration,
                   uint64_t Bytes = 0) {
    if (TimelineEnabled)
      Timeline.push_back({Kind, Start, Duration, Bytes});
  }
  void clearTimeline() { Timeline.clear(); }

  /// Resets device memory and module globals between program runs.
  void reset() {
    Mem = SimMemory(baseAddr(), spaceName(Index));
    ModuleGlobals.clear();
    Timeline.clear();
  }

private:
  uint64_t baseAddr() const {
    return DeviceAddressBase + Index * DeviceAddressStride;
  }
  static std::string spaceName(unsigned Index) {
    return Index == 0 ? "device" : "device" + std::to_string(Index);
  }

  /// Updates the peak-resident counter after an allocation.
  void noteResidency() {
    Stats.PeakResidentDeviceBytes =
        std::max(Stats.PeakResidentDeviceBytes, Mem.getLiveBytes());
  }

  unsigned Index = 0;
  bool PerDeviceStats = false;
  SimMemory Mem;
  TimingModel &TM;
  ExecStats &Stats;
  StreamEngine Engine;
  std::map<std::string, uint64_t> ModuleGlobals;
  TraceCollector *Trace = nullptr;
  bool TimelineEnabled = false;
  std::vector<TimelineEvent> Timeline;
};

} // namespace cgcm

#endif // CGCM_GPUSIM_GPUDEVICE_H
