//===- gpusim/SimMemory.cpp - Simulated address space -----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpusim/SimMemory.h"

#include "support/ErrorHandling.h"

#include <cassert>
#include <cstring>

using namespace cgcm;

static uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) & ~(A - 1); }

uint64_t SimMemory::allocate(uint64_t Size) {
  if (Size == 0)
    Size = 1;
  Size = alignUp(Size, 16);
  // Exact-size reuse keeps fragmentation bounded without a full free-list
  // coalescer; workloads allocate uniform buffers.
  auto It = FreeList.find(Size);
  uint64_t Addr;
  if (It != FreeList.end()) {
    Addr = It->second;
    FreeList.erase(It);
  } else {
    Addr = Brk;
    Brk += Size;
  }
  Allocations[Addr] = Size;
  return Addr;
}

void SimMemory::free(uint64_t Addr) {
  auto It = Allocations.find(Addr);
  if (It == Allocations.end())
    reportFatalError(SpaceName + ": free of address " + std::to_string(Addr) +
                     " which is not a live allocation base");
  FreeList.insert({It->second, Addr});
  Allocations.erase(It);
}

uint64_t SimMemory::reallocate(uint64_t Addr, uint64_t NewSize) {
  auto It = Allocations.find(Addr);
  if (It == Allocations.end())
    reportFatalError(SpaceName + ": realloc of a non-allocation address");
  uint64_t OldSize = It->second;
  uint64_t NewAddr = allocate(NewSize);
  uint64_t CopySize = std::min(OldSize, NewSize);
  std::vector<uint8_t> Tmp(CopySize);
  read(Addr, Tmp.data(), CopySize);
  write(NewAddr, Tmp.data(), CopySize);
  free(Addr);
  return NewAddr;
}

bool SimMemory::findAllocation(uint64_t Addr, uint64_t &UnitBase,
                               uint64_t &UnitSize) const {
  // Greatest base <= Addr.
  auto It = Allocations.upper_bound(Addr);
  if (It == Allocations.begin())
    return false;
  --It;
  if (Addr >= It->first + It->second)
    return false;
  UnitBase = It->first;
  UnitSize = It->second;
  return true;
}

bool SimMemory::isAccessible(uint64_t Addr, uint64_t Size) const {
  uint64_t UnitBase, UnitSize;
  if (!findAllocation(Addr, UnitBase, UnitSize))
    return false;
  return Addr + Size <= UnitBase + UnitSize;
}

void SimMemory::ensureCapacity(uint64_t Addr, uint64_t Size) const {
  if (Addr < Base || Addr + Size > Brk + (1ull << 20))
    reportFatalError(SpaceName + ": access at address " + std::to_string(Addr) +
                     " (" + std::to_string(Size) +
                     " bytes) is outside this memory space");
  uint64_t End = Addr - Base + Size;
  if (Storage.size() < End)
    Storage.resize(std::max<uint64_t>(End, Storage.size() * 2 + 4096));
}

void SimMemory::read(uint64_t Addr, void *Out, uint64_t Size) const {
  ensureCapacity(Addr, Size);
  std::memcpy(Out, Storage.data() + (Addr - Base), Size);
}

void SimMemory::write(uint64_t Addr, const void *In, uint64_t Size) {
  ensureCapacity(Addr, Size);
  std::memcpy(Storage.data() + (Addr - Base), In, Size);
}

uint64_t SimMemory::readUInt(uint64_t Addr, uint64_t Size) const {
  assert(Size <= 8 && "oversized scalar read");
  uint64_t V = 0;
  read(Addr, &V, Size);
  return V;
}

void SimMemory::writeUInt(uint64_t Addr, uint64_t Value, uint64_t Size) {
  assert(Size <= 8 && "oversized scalar write");
  write(Addr, &Value, Size);
}

std::string SimMemory::readCString(uint64_t Addr) const {
  std::string S;
  for (;;) {
    char C;
    read(Addr + S.size(), &C, 1);
    if (!C)
      return S;
    S.push_back(C);
    if (S.size() > (1u << 20))
      reportFatalError(SpaceName + ": unterminated C string");
  }
}

uint64_t SimMemory::getLiveBytes() const {
  uint64_t Total = 0;
  for (const auto &[Addr, Size] : Allocations)
    Total += Size;
  return Total;
}
