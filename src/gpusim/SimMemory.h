//===- gpusim/SimMemory.h - Simulated address space -------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated flat memory space with a simple allocator. Two instances
/// exist per machine: host memory (low addresses) and device memory (high
/// addresses), reproducing the divided CPU-GPU memory architecture the
/// paper targets. The allocator's blocks are the ground-truth *allocation
/// units* of section 3.1: all bytes reachable from a pointer by valid
/// pointer arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_GPUSIM_SIMMEMORY_H
#define CGCM_GPUSIM_SIMMEMORY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cgcm {

/// Host addresses start here (null page below stays unmapped).
inline constexpr uint64_t HostAddressBase = 0x10000;

/// Device addresses live at and above this bit. Crossing this boundary
/// with a CPU (or GPU) access is the communication bug CGCM prevents.
inline constexpr uint64_t DeviceAddressBase = 1ull << 46;

/// Address-space stride between devices in a multi-device pool. Device D's
/// memory starts at DeviceAddressBase + D * DeviceAddressStride, so device
/// 0 keeps exactly the historical base and any device address identifies
/// its owner arithmetically.
inline constexpr uint64_t DeviceAddressStride = 1ull << 40;

inline bool isDeviceAddress(uint64_t Addr) {
  return Addr >= DeviceAddressBase;
}

/// Which device owns \p Addr (only meaningful for device addresses).
inline unsigned deviceIndexForAddress(uint64_t Addr) {
  return static_cast<unsigned>((Addr - DeviceAddressBase) /
                               DeviceAddressStride);
}

class SimMemory {
public:
  SimMemory(uint64_t Base, std::string SpaceName)
      : Base(Base), SpaceName(std::move(SpaceName)), Brk(Base) {}

  uint64_t getBase() const { return Base; }
  const std::string &getSpaceName() const { return SpaceName; }

  /// Allocates \p Size bytes (at least 1), 16-byte aligned. Returns the
  /// base address of a fresh allocation unit.
  uint64_t allocate(uint64_t Size);

  /// Frees an allocation unit by its base address. Freeing an interior
  /// pointer or an unallocated address is a fatal error (heap misuse).
  void free(uint64_t Addr);

  /// Grows (or shrinks) an allocation, preserving contents; returns the
  /// new base address.
  uint64_t reallocate(uint64_t Addr, uint64_t NewSize);

  /// Looks up the allocation unit containing \p Addr (interior pointers
  /// welcome). Returns false if \p Addr is not inside any live unit.
  bool findAllocation(uint64_t Addr, uint64_t &UnitBase,
                      uint64_t &UnitSize) const;

  /// True if [Addr, Addr+Size) is within a single live allocation unit.
  bool isAccessible(uint64_t Addr, uint64_t Size) const;

  //===--------------------------------------------------------------------===//
  // Typed access. Addresses are validated against the space bounds; a
  // fatal error reports out-of-space access.
  //===--------------------------------------------------------------------===//

  void read(uint64_t Addr, void *Out, uint64_t Size) const;
  void write(uint64_t Addr, const void *In, uint64_t Size);

  uint64_t readUInt(uint64_t Addr, uint64_t Size) const;
  void writeUInt(uint64_t Addr, uint64_t Value, uint64_t Size);

  /// Reads a NUL-terminated string (for print_str and tests).
  std::string readCString(uint64_t Addr) const;

  /// Number of live allocation units.
  size_t getNumLiveAllocations() const { return Allocations.size(); }

  /// Total bytes in live allocation units.
  uint64_t getLiveBytes() const;

  /// Iterates live allocations as (base, size) pairs.
  const std::map<uint64_t, uint64_t> &allocations() const {
    return Allocations;
  }

private:
  void ensureCapacity(uint64_t Addr, uint64_t Size) const;

  uint64_t Base;
  std::string SpaceName;
  uint64_t Brk; ///< Next fresh address (bump pointer).
  mutable std::vector<uint8_t> Storage;
  std::map<uint64_t, uint64_t> Allocations;  ///< base -> size (live).
  std::multimap<uint64_t, uint64_t> FreeList; ///< size -> base (reuse pool).
};

} // namespace cgcm

#endif // CGCM_GPUSIM_SIMMEMORY_H
