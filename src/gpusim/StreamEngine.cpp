//===- gpusim/StreamEngine.cpp - Modeled asynchronous DMA engine ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpusim/StreamEngine.h"

using namespace cgcm;

unsigned StreamEngine::pickStream() {
  unsigned S = NextStream % Cfg.Streams;
  ++NextStream;
  return S;
}

void StreamEngine::hostWaitUntil(double T) {
  double Now = hostNow();
  if (T <= Now)
    return;
  Stats.StallCycles += T - Now;
  ++Stats.HostSyncs;
}

void StreamEngine::prunePending() {
  double Now = hostNow();
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [Now](const PendingRange &R) {
                                 return R.Ready <= Now;
                               }),
                Pending.end());
}

StreamEngine::TransferResult
StreamEngine::transferHtoD(uint64_t Bytes, bool Pinned, uint64_t HostAddr) {
  TransferResult R;
  if (!Cfg.Async) {
    // Legacy synchronous model, bit-identical to the pre-engine code: the
    // host blocks for the full latency + per-byte cost.
    R.Duration = TM.transferCycles(Bytes);
    R.Start = Stats.totalCycles();
    R.Lane = LaneHost;
    Stats.CommCycles += R.Duration;
    SyncCommitted += R.Duration;
    ++Stats.DmaBatches;
    return R;
  }
  double Issue = hostNow();
  // An opposite-direction copy breaks DtoH adjacency.
  DtoHBatch.Open = false;
  bool Join = Cfg.Coalesce && HtoDBatch.Open && Issue <= HtoDBatch.End;
  if (Join) {
    R.Stream = HtoDBatch.Stream;
    R.Start = HtoDBatch.End;
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/true, Bytes, Pinned,
                                    /*BatchHead=*/false);
    R.Coalesced = true;
    ++Stats.CoalescedTransfers;
  } else {
    R.Stream = pickStream();
    R.Start = std::max(Issue, std::max(HtoDBusy, StreamBusy[R.Stream]));
    if (Cfg.Streams <= 1)
      R.Start = std::max(R.Start, std::max(ComputeBusy, DtoHBusy));
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/true, Bytes, Pinned,
                                    /*BatchHead=*/true);
    HtoDBatch.Open = true;
    HtoDBatch.Stream = R.Stream;
    ++Stats.DmaBatches;
  }
  double End = R.Start + R.Duration;
  HtoDBatch.End = End;
  HtoDBusy = End;
  StreamBusy[R.Stream] = End;
  PendingHtoDFence = std::max(PendingHtoDFence, End);
  R.Lane = laneForStream(R.Stream);
  Stats.CommCycles += R.Duration;
  ++Stats.AsyncTransfers;
  Pending.push_back({HostAddr, HostAddr + Bytes, End, /*IsDtoH=*/false});
  return R;
}

StreamEngine::TransferResult
StreamEngine::transferDtoH(uint64_t Bytes, bool Pinned, uint64_t HostAddr) {
  TransferResult R;
  if (!Cfg.Async) {
    R.Duration = TM.transferCycles(Bytes);
    R.Start = Stats.totalCycles();
    R.Lane = LaneHost;
    Stats.CommCycles += R.Duration;
    SyncCommitted += R.Duration;
    ++Stats.DmaBatches;
    return R;
  }
  double Issue = hostNow();
  HtoDBatch.Open = false;
  bool Join = Cfg.Coalesce && DtoHBatch.Open && Issue <= DtoHBatch.End;
  if (Join) {
    R.Stream = DtoHBatch.Stream;
    R.Start = DtoHBatch.End;
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/false, Bytes, Pinned,
                                    /*BatchHead=*/false);
    R.Coalesced = true;
    ++Stats.CoalescedTransfers;
  } else {
    R.Stream = pickStream();
    // A DtoH copy reads what the latest kernel wrote: fence compute.
    R.Start = std::max(std::max(Issue, ComputeBusy),
                       std::max(DtoHBusy, StreamBusy[R.Stream]));
    if (Cfg.Streams <= 1)
      R.Start = std::max(R.Start, HtoDBusy);
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/false, Bytes, Pinned,
                                    /*BatchHead=*/true);
    DtoHBatch.Open = true;
    DtoHBatch.Stream = R.Stream;
    ++Stats.DmaBatches;
  }
  double End = R.Start + R.Duration;
  DtoHBatch.End = End;
  DtoHBusy = End;
  StreamBusy[R.Stream] = End;
  R.Lane = laneForStream(R.Stream);
  Stats.CommCycles += R.Duration;
  ++Stats.AsyncTransfers;
  Pending.push_back({HostAddr, HostAddr + Bytes, End, /*IsDtoH=*/true});
  return R;
}

double StreamEngine::kernelLaunch(double Cycles) {
  if (!Cfg.Async) {
    double Start = Stats.totalCycles();
    Stats.GpuCycles += Cycles;
    SyncCommitted += Cycles;
    return Start;
  }
  // A kernel launch closes both coalescing windows and fences every
  // outstanding HtoD copy (conservatively: any of them may be an input).
  HtoDBatch.Open = DtoHBatch.Open = false;
  double Start = std::max(std::max(hostNow(), ComputeBusy), PendingHtoDFence);
  if (Cfg.Streams <= 1)
    Start = std::max(Start, std::max(HtoDBusy, DtoHBusy));
  ComputeBusy = Start + Cycles;
  Stats.GpuCycles += Cycles;
  return Start;
}

void StreamEngine::hostAccess(uint64_t Addr, uint64_t Size, bool IsWrite) {
  if (!Cfg.Async || Pending.empty())
    return;
  prunePending();
  uint64_t Lo = Addr, Hi = Addr + (Size ? Size : 1);
  double WaitUntil = 0;
  for (auto It = Pending.begin(); It != Pending.end();) {
    bool Overlaps = It->Lo < Hi && Lo < It->Hi;
    // Reads conflict with in-flight DtoH landings; writes additionally
    // conflict with HtoD copies still reading the range.
    if (Overlaps && (It->IsDtoH || IsWrite)) {
      WaitUntil = std::max(WaitUntil, It->Ready);
      It = Pending.erase(It);
      continue;
    }
    ++It;
  }
  hostWaitUntil(WaitUntil);
}

void StreamEngine::waitAll() {
  if (!Cfg.Async)
    return;
  HtoDBatch.Open = DtoHBatch.Open = false;
  hostWaitUntil(wallNow());
  Pending.clear();
}

void StreamEngine::drain() {
  if (!Cfg.Async)
    return;
  waitAll();
  Stats.WallCycles = hostNow();
}
