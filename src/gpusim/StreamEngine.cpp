//===- gpusim/StreamEngine.cpp - Modeled asynchronous DMA engine ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpusim/StreamEngine.h"

#include "support/Metrics.h"

using namespace cgcm;

unsigned StreamEngine::pickStream() {
  unsigned S = NextStream % Cfg.Streams;
  ++NextStream;
  return S;
}

void StreamEngine::hostWaitUntil(double T, StallCause Cause) {
  double Now = hostNow();
  if (T <= Now)
    return;
  const double Delta = T - Now;
  switch (Cause) {
  case StallCause::HtoDFence:
    Stats.StallHtoDFenceCycles += Delta;
    break;
  case StallCause::DtoHFence:
    Stats.StallDtoHFenceCycles += Delta;
    break;
  case StallCause::HostSync:
    Stats.StallHostSyncCycles += Delta;
    break;
  }
  // Recompute the stored total so it is always bitwise-equal to the
  // canonical (htod + dtoh) + sync shape over the final bucket values
  // (the attribution exactness invariant; see gpusim/Timing.h).
  Stats.StallCycles =
      (Stats.StallHtoDFenceCycles + Stats.StallDtoHFenceCycles) +
      Stats.StallHostSyncCycles;
  ++Stats.HostSyncs;
  // Stall attribution under this engine's prefix; instruments are
  // resolved once per prefix and the pointers stay valid for the life of
  // the process.
  if (!StallGauges[0]) {
    StallGauges[0] = &MetricsRegistry::get().gauge(
        MetricPrefix + "stream.stall.htod_fence_cycles");
    StallGauges[1] = &MetricsRegistry::get().gauge(
        MetricPrefix + "stream.stall.dtoh_fence_cycles");
    StallGauges[2] = &MetricsRegistry::get().gauge(
        MetricPrefix + "stream.stall.host_sync_cycles");
  }
  StallGauges[static_cast<unsigned>(Cause)]->add(Delta);
}

void StreamEngine::recordQueueDepth() {
  if (!DepthHist)
    DepthHist = &MetricsRegistry::get().histogram(MetricPrefix +
                                                  "stream.pending_ranges");
  DepthHist->record(Pending.size());
}

void StreamEngine::setMetricPrefix(std::string Prefix) {
  if (Prefix == MetricPrefix)
    return;
  MetricPrefix = std::move(Prefix);
  StallGauges[0] = StallGauges[1] = StallGauges[2] = nullptr;
  DepthHist = nullptr;
}

void StreamEngine::prunePending() {
  double Now = hostNow();
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [Now](const PendingRange &R) {
                                 return R.Ready <= Now;
                               }),
                Pending.end());
}

StreamEngine::TransferResult
StreamEngine::transferHtoD(uint64_t Bytes, bool Pinned, uint64_t HostAddr) {
  TransferResult R;
  if (!Cfg.Async) {
    // Legacy synchronous model, bit-identical to the pre-engine code: the
    // host blocks for the full latency + per-byte cost.
    R.Duration = TM.transferCycles(Bytes);
    R.Start = Stats.totalCycles();
    R.Lane = LaneHost;
    noteSyncCharge(R.Duration, SyncKind::HtoD);
    ++Stats.DmaBatches;
    return R;
  }
  double Issue = hostNow();
  // An opposite-direction copy breaks DtoH adjacency.
  DtoHBatch.Open = false;
  bool Join = Cfg.Coalesce && HtoDBatch.Open && Issue <= HtoDBatch.End;
  if (Join) {
    R.Stream = HtoDBatch.Stream;
    R.Start = HtoDBatch.End;
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/true, Bytes, Pinned,
                                    /*BatchHead=*/false);
    R.Coalesced = true;
    ++Stats.CoalescedTransfers;
  } else {
    R.Stream = pickStream();
    R.Start = std::max(Issue, std::max(HtoDBusy, StreamBusy[R.Stream]));
    if (Cfg.Streams <= 1)
      R.Start = std::max(R.Start, std::max(ComputeBusy, DtoHBusy));
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/true, Bytes, Pinned,
                                    /*BatchHead=*/true);
    HtoDBatch.Open = true;
    HtoDBatch.Stream = R.Stream;
    ++Stats.DmaBatches;
    ++laneStats(R.Stream).Batches;
  }
  double End = R.Start + R.Duration;
  HtoDBatch.End = End;
  HtoDBusy = End;
  StreamBusy[R.Stream] = End;
  PendingHtoDFence = std::max(PendingHtoDFence, End);
  R.Lane = laneFor(R.Stream);
  Stats.HtoDCommCycles += R.Duration;
  recomputeComm();
  ExecStats::StreamLaneStats &LS = laneStats(R.Stream);
  LS.HtoDBusyCycles += R.Duration;
  ++LS.Copies;
  ++Stats.AsyncTransfers;
  Pending.push_back({HostAddr, HostAddr + Bytes, End, /*IsDtoH=*/false});
  recordQueueDepth();
  return R;
}

StreamEngine::TransferResult
StreamEngine::transferDtoH(uint64_t Bytes, bool Pinned, uint64_t HostAddr) {
  TransferResult R;
  if (!Cfg.Async) {
    R.Duration = TM.transferCycles(Bytes);
    R.Start = Stats.totalCycles();
    R.Lane = LaneHost;
    noteSyncCharge(R.Duration, SyncKind::DtoH);
    ++Stats.DmaBatches;
    return R;
  }
  double Issue = hostNow();
  HtoDBatch.Open = false;
  bool Join = Cfg.Coalesce && DtoHBatch.Open && Issue <= DtoHBatch.End;
  if (Join) {
    R.Stream = DtoHBatch.Stream;
    R.Start = DtoHBatch.End;
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/false, Bytes, Pinned,
                                    /*BatchHead=*/false);
    R.Coalesced = true;
    ++Stats.CoalescedTransfers;
  } else {
    R.Stream = pickStream();
    // A DtoH copy reads what the latest kernel wrote: fence compute.
    R.Start = std::max(std::max(Issue, ComputeBusy),
                       std::max(DtoHBusy, StreamBusy[R.Stream]));
    if (Cfg.Streams <= 1)
      R.Start = std::max(R.Start, HtoDBusy);
    R.Duration = TM.asyncCopyCycles(/*HtoD=*/false, Bytes, Pinned,
                                    /*BatchHead=*/true);
    DtoHBatch.Open = true;
    DtoHBatch.Stream = R.Stream;
    ++Stats.DmaBatches;
    ++laneStats(R.Stream).Batches;
  }
  double End = R.Start + R.Duration;
  DtoHBatch.End = End;
  DtoHBusy = End;
  StreamBusy[R.Stream] = End;
  R.Lane = laneFor(R.Stream);
  Stats.DtoHCommCycles += R.Duration;
  recomputeComm();
  ExecStats::StreamLaneStats &LS = laneStats(R.Stream);
  LS.DtoHBusyCycles += R.Duration;
  ++LS.Copies;
  ++Stats.AsyncTransfers;
  Pending.push_back({HostAddr, HostAddr + Bytes, End, /*IsDtoH=*/true});
  recordQueueDepth();
  return R;
}

double StreamEngine::kernelLaunch(double Cycles) {
  if (!Cfg.Async) {
    double Start = Stats.totalCycles();
    noteSyncCharge(Cycles, SyncKind::Compute);
    return Start;
  }
  // A kernel launch closes both coalescing windows and fences every
  // outstanding HtoD copy (conservatively: any of them may be an input).
  HtoDBatch.Open = DtoHBatch.Open = false;
  double Start = std::max(std::max(hostNow(), ComputeBusy), PendingHtoDFence);
  if (Cfg.Streams <= 1)
    Start = std::max(Start, std::max(HtoDBusy, DtoHBusy));
  ComputeBusy = Start + Cycles;
  Stats.GpuCycles += Cycles;
  Stats.ComputeLaneBusyCycles += Cycles;
  return Start;
}

StreamEngine::TransferResult StreamEngine::transferP2P(uint64_t Bytes,
                                                       double SrcReady) {
  TransferResult R;
  R.Duration = TM.p2pCopyCycles(Bytes);
  if (!Cfg.Async) {
    // Synchronous regime: the host blocks for the peer copy just as it
    // does for its own transfers.
    R.Start = Stats.totalCycles();
    R.Lane = LaneHost;
    noteSyncCharge(R.Duration, SyncKind::P2P);
    ++Stats.DmaBatches;
    return R;
  }
  // Peer arrivals land on this (destination) device's copy engine. A P2P
  // copy never coalesces with host traffic: it closes both windows.
  HtoDBatch.Open = DtoHBatch.Open = false;
  double Issue = hostNow();
  R.Stream = pickStream();
  R.Start = std::max(std::max(Issue, SrcReady),
                     std::max(HtoDBusy, StreamBusy[R.Stream]));
  if (Cfg.Streams <= 1)
    R.Start = std::max(R.Start, std::max(ComputeBusy, DtoHBusy));
  double End = R.Start + R.Duration;
  HtoDBusy = End;
  StreamBusy[R.Stream] = End;
  // Feed the kernel-launch fence: a kernel on this device issued after
  // this arrival must see the peer data, exactly like an HtoD input.
  PendingHtoDFence = std::max(PendingHtoDFence, End);
  R.Lane = laneFor(R.Stream);
  Stats.P2PCommCycles += R.Duration;
  recomputeComm();
  ++Stats.AsyncTransfers;
  ++Stats.DmaBatches;
  return R;
}

void StreamEngine::hostAccess(uint64_t Addr, uint64_t Size, bool IsWrite) {
  if (!Cfg.Async || Pending.empty())
    return;
  prunePending();
  uint64_t Lo = Addr, Hi = Addr + (Size ? Size : 1);
  double WaitUntil = 0;
  bool CauseDtoH = false;
  for (auto It = Pending.begin(); It != Pending.end();) {
    bool Overlaps = It->Lo < Hi && Lo < It->Hi;
    // Reads conflict with in-flight DtoH landings; writes additionally
    // conflict with HtoD copies still reading the range.
    if (Overlaps && (It->IsDtoH || IsWrite)) {
      if (It->Ready >= WaitUntil) {
        // The stall is attributed to the copy the host actually waits
        // longest for.
        WaitUntil = It->Ready;
        CauseDtoH = It->IsDtoH;
      }
      It = Pending.erase(It);
      continue;
    }
    ++It;
  }
  hostWaitUntil(WaitUntil,
                CauseDtoH ? StallCause::DtoHFence : StallCause::HtoDFence);
}

void StreamEngine::waitAll() {
  if (!Cfg.Async)
    return;
  HtoDBatch.Open = DtoHBatch.Open = false;
  hostWaitUntil(wallNow(), StallCause::HostSync);
  Pending.clear();
}

void StreamEngine::drain() {
  if (!Cfg.Async)
    return;
  waitAll();
  Stats.WallCycles = hostNow();
}
