//===- gpusim/StreamEngine.h - Modeled asynchronous DMA engine --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous transfer engine (docs/TransferEngine.md): a modeled
/// DMA subsystem with N streams, one copy engine per direction, and one
/// compute lane, all advancing on the modeled clock in ExecStats.
///
/// The simulation always moves bytes eagerly — asynchrony changes *time*,
/// never *data* — so an async run is output-identical to a sync run by
/// construction; the engine only decides when each operation starts and
/// how long the host blocks. Disabled (the default), every operation
/// takes the exact legacy synchronous cost path, keeping historical
/// cycle counts bit-identical.
///
/// Timing rules (worked examples in docs/TransferEngine.md):
///  * Copies serialize on their direction's engine; opposite directions
///    and compute proceed concurrently when Streams >= 2. With
///    Streams == 1 every operation serializes in issue order (one CUDA
///    stream's FIFO semantics).
///  * Adjacent same-direction copies with no intervening kernel launch
///    or opposite-direction copy coalesce into one DMA batch: only the
///    batch head pays TransferLatency.
///  * A kernel launch fences all outstanding HtoD copies (its inputs);
///    DtoH copies fence the latest kernel (their producer).
///  * The host blocks only at true use points: reading a host range with
///    an in-flight DtoH copy, writing a host range an in-flight copy
///    still uses, or the end-of-run drain.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_GPUSIM_STREAMENGINE_H
#define CGCM_GPUSIM_STREAMENGINE_H

#include "gpusim/Timing.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace cgcm {

/// Trace lane numbering (exported as Chrome trace tids, see
/// support/Trace.h): lane 0 is the host, lane 1 the compute engine, and
/// lane 2+s stream s. Synchronous runs put everything on lane 0, which
/// preserves the historical single-lane export. In a multi-device pool
/// device D's engine shifts its compute/stream lanes by a per-engine
/// LaneBase (D * (Streams + 1)); device 0 keeps the historical numbers.
constexpr unsigned LaneHost = 0;
constexpr unsigned LaneCompute = 1;
inline unsigned laneForStream(unsigned Stream) { return 2 + Stream; }

class MetricGauge;
class MetricHistogram;

struct StreamEngineConfig {
  /// Number of stream lanes. 1 models a single in-order stream (copies
  /// and kernels all serialize); >= 2 unlocks copy/compute overlap.
  unsigned Streams = 4;
  /// Master switch; off = exact legacy synchronous behavior.
  bool Async = false;
  /// Merge adjacent same-direction copies into batched DMA operations.
  bool Coalesce = true;
};

class StreamEngine {
public:
  StreamEngine(TimingModel &TM, ExecStats &Stats) : TM(TM), Stats(Stats) {
    reset();
  }

  /// Applies \p C and resets all engine state. Configure between runs,
  /// not mid-run.
  void configure(const StreamEngineConfig &C) {
    Cfg = C;
    if (Cfg.Streams == 0)
      Cfg.Streams = 1;
    reset();
  }
  const StreamEngineConfig &getConfig() const { return Cfg; }
  bool isAsync() const { return Cfg.Async; }

  /// Clears all lane frontiers and pending fences (config is kept).
  void reset() {
    StreamBusy.assign(Cfg.Streams, 0.0);
    HtoDBusy = DtoHBusy = ComputeBusy = 0;
    PendingHtoDFence = 0;
    NextStream = 0;
    HtoDBatch = DtoHBatch = Batch();
    Pending.clear();
  }

  //===--------------------------------------------------------------------===//
  // The modeled clock
  //===--------------------------------------------------------------------===//

  /// Where the host's own timeline stands: busy components charged to the
  /// host, synchronously-committed kernel/transfer costs, and stalls. On
  /// a synchronous run this equals ExecStats::totalCycles() bitwise —
  /// the association shape here deliberately mirrors totalCycles() and
  /// WallAttribution::sum() (see gpusim/Timing.h). The P2P leg joins the
  /// transfer group as ((HtoD + DtoH) + P2P), bitwise-identical to the
  /// old shape when HostP2PCycles is 0.0 (every single-device run).
  double hostNow() const {
    return ((Stats.hostBusyCycles() + Stats.HostComputeCycles) +
            ((Stats.HostHtoDCycles + Stats.HostDtoHCycles) +
             Stats.HostP2PCycles)) +
           Stats.StallCycles;
  }

  /// The frontier of the busiest lane — the overlap-aware wall clock.
  double wallNow() const {
    return std::max(std::max(hostNow(), ComputeBusy),
                    std::max(HtoDBusy, DtoHBusy));
  }

  //===--------------------------------------------------------------------===//
  // Operations (time only; the caller has already moved the bytes)
  //===--------------------------------------------------------------------===//

  struct TransferResult {
    double Start = 0;
    double Duration = 0;
    unsigned Stream = 0;   ///< Stream the copy ran on (async only).
    unsigned Lane = 0;     ///< Trace lane for the event.
    bool Coalesced = false;///< Merged into the previous DMA batch.
  };

  /// Models one host-to-device copy of \p Bytes. \p HostAddr names the
  /// source range so later host *writes* to it can fence.
  TransferResult transferHtoD(uint64_t Bytes, bool Pinned, uint64_t HostAddr);

  /// Models one device-to-host copy of \p Bytes landing at \p HostAddr;
  /// later host reads or writes of that range fence on its completion.
  TransferResult transferDtoH(uint64_t Bytes, bool Pinned, uint64_t HostAddr);

  /// Models a kernel of \p Cycles on the compute lane, fencing all
  /// outstanding HtoD traffic first. Returns the start time and charges
  /// GpuCycles.
  double kernelLaunch(double Cycles);

  /// Models one device-to-device copy of \p Bytes *landing on this
  /// engine's device*. \p SrcReady is the source device's data-ready
  /// frontier, so the copy cannot start before the producer finished.
  /// Arrivals feed the same HtoD fence a kernel launch honors, which is
  /// how fences hold across devices: a kernel launched here after a P2P
  /// landing waits for it.
  TransferResult transferP2P(uint64_t Bytes, double SrcReady = 0);

  /// What a synchronously-committed charge paid for, so the attribution
  /// decomposition can split the host timeline by kind.
  enum class SyncKind { Compute, HtoD, DtoH, P2P };

  /// Accounts a synchronous cost the host blocked for: updates the
  /// kind's ExecStats accumulators (GpuCycles/Comm split plus the
  /// Host*Cycles attribution mirror) and recomputes the stored derived
  /// totals. Call sites that used to charge Comm/Gpu cycles directly now
  /// route through here so the split can never drift from the totals.
  void noteSyncCharge(double Cycles, SyncKind Kind) {
    switch (Kind) {
    case SyncKind::Compute:
      Stats.GpuCycles += Cycles;
      Stats.HostComputeCycles += Cycles;
      break;
    case SyncKind::HtoD:
      Stats.HtoDCommCycles += Cycles;
      Stats.HostHtoDCycles += Cycles;
      recomputeComm();
      break;
    case SyncKind::DtoH:
      Stats.DtoHCommCycles += Cycles;
      Stats.HostDtoHCycles += Cycles;
      recomputeComm();
      break;
    case SyncKind::P2P:
      Stats.P2PCommCycles += Cycles;
      Stats.HostP2PCycles += Cycles;
      recomputeComm();
      break;
    }
  }

  //===--------------------------------------------------------------------===//
  // Multi-device pool hooks (no-ops for a standalone single engine)
  //===--------------------------------------------------------------------===//

  /// Shifts this engine's compute/stream trace lanes; device D in a pool
  /// uses D * (Streams + 1) so every device gets disjoint lanes and
  /// device 0 keeps the historical numbering.
  void setLaneBase(unsigned Base) { LaneBase = Base; }
  unsigned getLaneBase() const { return LaneBase; }
  unsigned computeLane() const { return LaneBase + LaneCompute; }
  unsigned laneFor(unsigned Stream) const {
    return LaneBase + laneForStream(Stream);
  }

  /// Prefixes this engine's registry series (e.g. "dev1."). Empty (the
  /// default) keeps the historical process-wide names; a pool with more
  /// than one device prefixes *all* engines, including device 0.
  void setMetricPrefix(std::string Prefix);

  /// The frontier after which this device's data is ready for a peer
  /// copy out of it: its compute lane (last producer kernel).
  double dataReadyFrontier() const { return ComputeBusy; }

  //===--------------------------------------------------------------------===//
  // Fences
  //===--------------------------------------------------------------------===//

  /// Cheap guard for the interpreter's access path: any host ranges with
  /// in-flight copies at all?
  bool hasPendingHostRanges() const { return !Pending.empty(); }

  /// Host touches [Addr, Addr+Size): blocks until every conflicting
  /// in-flight copy completes (reads conflict with DtoH landings, writes
  /// with copies in either direction).
  void hostAccess(uint64_t Addr, uint64_t Size, bool IsWrite);

  /// Blocks the host until every lane is idle (demand-paging faults and
  /// the end-of-run drain need full synchronization).
  void waitAll();

  /// End of run: waits for everything, records the overlap-aware wall
  /// clock in Stats.WallCycles, and clears pending state.
  void drain();

private:
  struct Batch {
    bool Open = false;
    unsigned Stream = 0;
    double End = 0;
  };
  struct PendingRange {
    uint64_t Lo = 0, Hi = 0;
    double Ready = 0;
    bool IsDtoH = false;
  };

  /// Why the host blocked, for the stall-by-cause split in ExecStats.
  enum class StallCause { HtoDFence, DtoHFence, HostSync };

  /// Recomputes the stored CommCycles in the canonical association shape
  /// (see gpusim/Timing.h): bitwise-identical to the historical
  /// HtoD + DtoH sum whenever P2PCommCycles is 0.0.
  void recomputeComm() {
    Stats.CommCycles =
        (Stats.HtoDCommCycles + Stats.DtoHCommCycles) + Stats.P2PCommCycles;
  }
  /// Advances the host to \p T, accounting the gap as stall attributed
  /// to \p Cause.
  void hostWaitUntil(double T, StallCause Cause);
  /// Samples the in-flight host-range queue depth into the metrics
  /// registry (called at every async issue).
  void recordQueueDepth();
  /// Ensures Stats.StreamLanes covers stream \p S and returns its slot.
  ExecStats::StreamLaneStats &laneStats(unsigned S) {
    if (Stats.StreamLanes.size() <= S)
      Stats.StreamLanes.resize(S + 1);
    return Stats.StreamLanes[S];
  }
  void prunePending();
  unsigned pickStream();

  TimingModel &TM;
  ExecStats &Stats;
  StreamEngineConfig Cfg;

  std::vector<double> StreamBusy; ///< Per-stream FIFO frontier.
  double HtoDBusy = 0;            ///< HtoD copy-engine frontier.
  double DtoHBusy = 0;            ///< DtoH copy-engine frontier.
  double ComputeBusy = 0;         ///< Compute-lane frontier.
  /// Completion frontier of all HtoD copies a future kernel must see.
  double PendingHtoDFence = 0;
  unsigned NextStream = 0;
  Batch HtoDBatch, DtoHBatch;
  std::vector<PendingRange> Pending;

  /// Trace-lane offset for this engine's compute/stream lanes (0 for a
  /// single device; D * (Streams + 1) for device D in a pool).
  unsigned LaneBase = 0;
  /// Registry series prefix ("" = historical names, "devN." in pools).
  std::string MetricPrefix;
  /// Lazily-resolved registry instruments under MetricPrefix (pointers
  /// stay valid for the life of the process; reset on prefix change).
  mutable MetricGauge *StallGauges[3] = {nullptr, nullptr, nullptr};
  mutable MetricHistogram *DepthHist = nullptr;
};

} // namespace cgcm

#endif // CGCM_GPUSIM_STREAMENGINE_H
