//===- gpusim/Timing.h - Analytic CPU/GPU/PCIe cost model -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing model substituting for the paper's Core 2 Quad + GTX 480
/// testbed. Absolute cycle counts are arbitrary; what matters for the
/// reproduction is the *structure*: kernel launches and transfers carry a
/// fixed latency, transfers additionally pay per byte, GPU math is wide
/// but a single GPU thread is slower than the CPU. These relations are
/// what make cyclic communication patterns slow and acyclic ones fast
/// (paper Figure 2), and they drive every speedup shape in Figure 4 and
/// Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_GPUSIM_TIMING_H
#define CGCM_GPUSIM_TIMING_H

#include <cstdint>
#include <vector>

namespace cgcm {

struct TimingModel {
  /// Cycles per interpreted IR operation on the CPU.
  double CpuCyclesPerOp = 1.0;

  /// Cycles per IR operation for a single GPU thread (lower clock, in-order).
  double GpuThreadCyclesPerOp = 2.0;

  /// Number of GPU lanes that retire operations concurrently. The GTX
  /// 480 has 480 CUDA cores, but naive generated kernels are memory-bound
  /// far below peak; the effective width is calibrated (with the other
  /// constants) so the suite reproduces the paper's *shapes* at
  /// interpreter-friendly problem sizes (see DESIGN.md section 2).
  double GpuParallelWidth = 64.0;

  /// Fixed cost of spawning a GPU function (driver + launch latency).
  double KernelLaunchLatency = 200.0;

  /// Fixed cost of one cuMemcpy in either direction (DMA setup + sync).
  double TransferLatency = 2200.0;

  /// PCIe throughput in bytes per CPU cycle.
  double TransferBytesPerCycle = 8.0;

  /// Sequential inspection cost per inspected memory access
  /// (inspector-executor baseline, paper section 2.2).
  double InspectorCyclesPerAccess = 6.0;

  /// Cycles for one CGCM runtime-library call (allocation-map lookup and
  /// bookkeeping; the tree lookup is logarithmic but small).
  double RuntimeCallOverhead = 40.0;

  /// Cost of one demand-paging fault in the DyManD-style extension
  /// (LaunchPolicy::DemandManaged): trap + map round trip, on top of the
  /// transfer itself.
  double DemandFaultLatency = 1500.0;

  //===--------------------------------------------------------------------===//
  // Asynchronous transfer engine (docs/TransferEngine.md)
  //===--------------------------------------------------------------------===//

  /// Per-direction DMA throughput for asynchronous copies. Defaults equal
  /// TransferBytesPerCycle so the per-byte cost of a pinned async copy
  /// matches a synchronous one; only latency amortization (coalescing)
  /// and overlap change the modeled wall clock.
  double HtoDBytesPerCycle = 8.0;
  double DtoHBytesPerCycle = 8.0;

  /// Extra per-byte cost of staging a *pageable* host buffer through a
  /// DMA-able bounce buffer. Pinned buffers skip this term entirely.
  /// Modeled inside the copy duration: the effective pageable bandwidth
  /// is 1 / (1/BW + 1/Staging) bytes per cycle.
  double PageableStagingBytesPerCycle = 24.0;

  //===--------------------------------------------------------------------===//
  // Peer-to-peer copy lanes (docs/MultiGPU.md). Only exercised when a
  // DevicePool holds more than one device.
  //===--------------------------------------------------------------------===//

  /// Whether direct device-to-device copies exist. When false, a P2P
  /// request is modeled as staging through the host: one DtoH plus one
  /// HtoD at the synchronous transfer cost each.
  bool P2PEnabled = true;

  /// Fixed cost of one direct peer copy (NVLink/PCIe peer setup). Cheaper
  /// than a host round trip but not free.
  double P2PLatency = 1400.0;

  /// Direct peer-copy throughput in bytes per CPU cycle. Faster than the
  /// host link: the point of P2P is skipping the host bounce.
  double P2PBytesPerCycle = 12.0;

  /// Launch horizon over which the shard-profitability gate amortizes
  /// one-time replica creation: a DOALL kernel shards only when its
  /// per-launch win covers creation spread over this many launches.
  /// Higher values shard more eagerly; 1 demands the first launch pay
  /// for everything (docs/MultiGPU.md).
  double ShardCreationHorizon = 16.0;

  double transferCycles(uint64_t Bytes) const {
    return TransferLatency + static_cast<double>(Bytes) / TransferBytesPerCycle;
  }

  /// Cycles for one device-to-device copy: a direct peer copy when P2P is
  /// enabled, otherwise the DtoH + HtoD staging fallback.
  double p2pCopyCycles(uint64_t Bytes) const {
    if (P2PEnabled)
      return P2PLatency + static_cast<double>(Bytes) / P2PBytesPerCycle;
    return transferCycles(Bytes) + transferCycles(Bytes);
  }

  /// Duration of one asynchronous copy on its DMA engine. Only the first
  /// copy of a coalesced batch (\p BatchHead) pays TransferLatency; the
  /// followers ride the already-programmed descriptor chain.
  double asyncCopyCycles(bool HtoD, uint64_t Bytes, bool Pinned,
                         bool BatchHead) const {
    double BW = HtoD ? HtoDBytesPerCycle : DtoHBytesPerCycle;
    double Cost = static_cast<double>(Bytes) / BW;
    if (!Pinned)
      Cost += static_cast<double>(Bytes) / PageableStagingBytesPerCycle;
    if (BatchHead)
      Cost += TransferLatency;
    return Cost;
  }

  /// Wall-clock cycles for a kernel that executed \p TotalThreadOps IR
  /// operations across \p Threads threads.
  double kernelCycles(uint64_t TotalThreadOps, uint64_t Threads) const {
    double Width = Threads < GpuParallelWidth ? static_cast<double>(Threads)
                                              : GpuParallelWidth;
    if (Width < 1.0)
      Width = 1.0;
    return KernelLaunchLatency +
           static_cast<double>(TotalThreadOps) * GpuThreadCyclesPerOp / Width;
  }
};

/// Aggregate execution statistics; ratios of these produce every number
/// reported by the benchmark harnesses.
struct ExecStats {
  double CpuCycles = 0;
  double GpuCycles = 0;
  /// Total transfer cycles. Derived but stored: recomputed as
  /// (HtoDCommCycles + DtoHCommCycles) + P2PCommCycles at every charge
  /// site, so reading it is free and it is always bitwise-equal to that
  /// sum of the current direction accumulators. (P2PCommCycles is 0.0 on
  /// single-device runs, and (a + b) + 0.0 == a + b for finite doubles,
  /// so the single-device value is unchanged bitwise.)
  double CommCycles = 0;
  double InspectorCycles = 0;
  double RuntimeCycles = 0;

  /// Direction split of CommCycles (every charge updates one of these,
  /// then recomputes CommCycles).
  double HtoDCommCycles = 0;
  double DtoHCommCycles = 0;
  /// Device-to-device copy cycles (multi-device pools only; 0 otherwise).
  double P2PCommCycles = 0;

  //===--------------------------------------------------------------------===//
  // Host-timeline attribution (docs/Observability.md §Metrics). These
  // track what the *host* paid for, by kind: on a synchronous run every
  // kernel/transfer charge blocks the host, so HostComputeCycles mirrors
  // GpuCycles and HostHtoD/DtoH mirror the Comm split bitwise; on an
  // asynchronous run the lanes absorb those costs and the host-side
  // fields stay near zero — the time reappears as stall-by-cause below.
  //===--------------------------------------------------------------------===//

  /// Kernel cycles the host blocked for (sync launches; async launches
  /// charge the compute lane instead).
  double HostComputeCycles = 0;
  /// HtoD / DtoH copy cycles the host blocked for.
  double HostHtoDCycles = 0;
  double HostDtoHCycles = 0;
  /// Peer-copy cycles the host blocked for (multi-device pools only).
  double HostP2PCycles = 0;

  uint64_t KernelLaunches = 0;
  uint64_t TransfersHtoD = 0;
  uint64_t TransfersDtoH = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  /// Device-to-device copies and bytes (multi-device pools only).
  uint64_t TransfersP2P = 0;
  uint64_t BytesP2P = 0;
  uint64_t CpuOps = 0;
  uint64_t GpuOps = 0;
  uint64_t RuntimeCalls = 0;
  uint64_t DemandFaults = 0;
  /// Device-to-host copies the runtime skipped because the unit's epoch
  /// showed the host copy was already current (Algorithm 2's staleness
  /// test paying off).
  uint64_t EpochSuppressedCopies = 0;
  /// High-water mark of live device-memory bytes across the run.
  uint64_t PeakResidentDeviceBytes = 0;

  //===--------------------------------------------------------------------===//
  // Asynchronous transfer engine counters (docs/TransferEngine.md).
  // All zero on a synchronous run.
  //===--------------------------------------------------------------------===//

  /// Cycles the host spent blocked at a fence (kernel waiting on HtoD
  /// traffic is charged to the compute lane, not here; this is host-side
  /// stall only: reads of in-flight DtoH data, writes under a pending
  /// copy, and the end-of-run drain). Derived but stored: recomputed as
  /// (StallHtoDFenceCycles + StallDtoHFenceCycles) + StallHostSyncCycles
  /// at every stall site.
  double StallCycles = 0;
  /// Cause split of StallCycles: host writes fencing on in-flight HtoD
  /// sources, host reads/writes fencing on in-flight DtoH landings, and
  /// full synchronization points (waitAll / drain / demand faults).
  double StallHtoDFenceCycles = 0;
  double StallDtoHFenceCycles = 0;
  double StallHostSyncCycles = 0;
  /// Kernel cycles executed on the asynchronous compute lane (the async
  /// counterpart of HostComputeCycles; GpuCycles is always the sum of
  /// both regimes).
  double ComputeLaneBusyCycles = 0;
  /// Overlap-aware wall clock, set when the stream engine drains at the
  /// end of an asynchronous run; 0 while unset (synchronous runs).
  double WallCycles = 0;
  /// Copies issued asynchronously through the stream engine.
  uint64_t AsyncTransfers = 0;
  /// Distinct DMA operations after coalescing. Synchronous copies count
  /// one batch each, so for copies issued through the device copy path
  /// batches + coalesced equals transfers (the inspector-executor
  /// baseline charges its modeled scheduler copies directly and is not
  /// counted here).
  uint64_t DmaBatches = 0;
  /// Copies merged into the preceding same-direction batch, paying no
  /// TransferLatency of their own.
  uint64_t CoalescedTransfers = 0;
  /// Number of fences at which the host actually blocked.
  uint64_t HostSyncs = 0;

  /// Per-stream utilization on an asynchronous run (index = stream id;
  /// empty on synchronous runs). Busy cycles are copy durations on that
  /// stream; idle is wallCycles() minus busy, computed by the reporter.
  struct StreamLaneStats {
    double HtoDBusyCycles = 0;
    double DtoHBusyCycles = 0;
    uint64_t Copies = 0;
    uint64_t Batches = 0;
  };
  std::vector<StreamLaneStats> StreamLanes;

  /// Per-device traffic split for multi-device pools (index = device).
  /// Populated only when the pool holds more than one device, so
  /// single-device artifacts (bench JSON, metrics snapshots) are
  /// byte-identical to the pre-pool engine.
  struct DeviceStats {
    uint64_t BytesHtoD = 0;
    uint64_t BytesDtoH = 0;
    uint64_t TransfersHtoD = 0;
    uint64_t TransfersDtoH = 0;
    uint64_t P2PTransfers = 0; ///< Peer copies landing on this device.
    uint64_t P2PBytes = 0;
    double ComputeCycles = 0; ///< Kernel (shard) cycles run here.
  };
  std::vector<DeviceStats> Devices;

  /// Devices[D], growing the vector on demand. Callers gate on pool > 1.
  DeviceStats &deviceStats(unsigned D) {
    if (Devices.size() <= D)
      Devices.resize(D + 1);
    return Devices[D];
  }

  /// Host-side busy work: interpreted CPU ops plus runtime-call and
  /// inspector bookkeeping. One leg of both totalCycles() and the
  /// attribution decomposition.
  double hostBusyCycles() const {
    return CpuCycles + RuntimeCycles + InspectorCycles;
  }

  /// Sum of busy cycles across components. On a synchronous run the
  /// machine model blocks the CPU on transfers and kernels, so this *is*
  /// the wall clock; on an asynchronous run lanes overlap and the wall
  /// clock is WallCycles (see wallCycles()).
  ///
  /// The association shape ((host + gpu) + comm) is deliberate: it is
  /// the same shape StreamEngine::hostNow() and WallAttribution::sum()
  /// use, which is what makes the attribution decomposition *bitwise*
  /// equal to the wall clock (MetricsTests.cpp locks this in).
  double totalCycles() const {
    return (hostBusyCycles() + GpuCycles) + CommCycles;
  }

  /// The modeled wall clock: overlap-aware when the stream engine ran
  /// asynchronously, the synchronous component sum otherwise.
  double wallCycles() const {
    return WallCycles > 0 ? WallCycles : totalCycles();
  }

  /// Busy cycles hidden by overlap: serial cost minus actual wall clock.
  double overlapSavedCycles() const {
    if (WallCycles <= 0 || totalCycles() <= WallCycles)
      return 0;
    return totalCycles() - WallCycles;
  }

  void reset() { *this = ExecStats(); }
};

/// The "where did the wall cycles go" decomposition (docs/Observability.md
/// §Metrics): every modeled wall cycle attributed to exactly one of host
/// busy work, kernel compute the host blocked for, transfer time the host
/// blocked for (by direction), or a stall cause. sum() reproduces
/// ExecStats::wallCycles() *bitwise* in both regimes, because it uses the
/// same accumulators and the same association shape as totalCycles() /
/// StreamEngine::hostNow() (the exactness is a ctest invariant over all
/// 24 workloads).
struct WallAttribution {
  double Wall = 0;
  double Host = 0;    ///< ExecStats::hostBusyCycles().
  double Compute = 0; ///< HostComputeCycles.
  double HtoD = 0;    ///< HostHtoDCycles.
  double DtoH = 0;    ///< HostDtoHCycles.
  double P2P = 0;     ///< HostP2PCycles (0 on single-device runs).
  double StallHtoDFence = 0;
  double StallDtoHFence = 0;
  double StallHostSync = 0;
  /// Report-only per-stream columns (copied from ExecStats::StreamLanes).
  std::vector<ExecStats::StreamLaneStats> Streams;

  /// Same shape as totalCycles() and hostNow(); bitwise-equal to Wall.
  /// The P2P leg joins the transfer group as ((HtoD + DtoH) + P2P),
  /// which equals (HtoD + DtoH) bitwise when P2P is 0.0.
  double sum() const {
    return ((Host + Compute) + ((HtoD + DtoH) + P2P)) +
           ((StallHtoDFence + StallDtoHFence) + StallHostSync);
  }
};

/// Builds the decomposition from final run statistics.
inline WallAttribution attributeWall(const ExecStats &S) {
  WallAttribution A;
  A.Wall = S.wallCycles();
  A.Host = S.hostBusyCycles();
  A.Compute = S.HostComputeCycles;
  A.HtoD = S.HostHtoDCycles;
  A.DtoH = S.HostDtoHCycles;
  A.P2P = S.HostP2PCycles;
  A.StallHtoDFence = S.StallHtoDFenceCycles;
  A.StallDtoHFence = S.StallDtoHFenceCycles;
  A.StallHostSync = S.StallHostSyncCycles;
  A.Streams = S.StreamLanes;
  return A;
}

/// Kinds of timeline events recorded for schedule visualization (Fig. 2).
enum class EventKind { CpuCompute, HtoD, DtoH, Kernel, Inspect };

struct TimelineEvent {
  EventKind Kind;
  double StartCycle;
  double DurationCycles;
  uint64_t Bytes; ///< For transfers.
};

} // namespace cgcm

#endif // CGCM_GPUSIM_TIMING_H
