//===- gpusim/Timing.h - Analytic CPU/GPU/PCIe cost model -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing model substituting for the paper's Core 2 Quad + GTX 480
/// testbed. Absolute cycle counts are arbitrary; what matters for the
/// reproduction is the *structure*: kernel launches and transfers carry a
/// fixed latency, transfers additionally pay per byte, GPU math is wide
/// but a single GPU thread is slower than the CPU. These relations are
/// what make cyclic communication patterns slow and acyclic ones fast
/// (paper Figure 2), and they drive every speedup shape in Figure 4 and
/// Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_GPUSIM_TIMING_H
#define CGCM_GPUSIM_TIMING_H

#include <cstdint>

namespace cgcm {

struct TimingModel {
  /// Cycles per interpreted IR operation on the CPU.
  double CpuCyclesPerOp = 1.0;

  /// Cycles per IR operation for a single GPU thread (lower clock, in-order).
  double GpuThreadCyclesPerOp = 2.0;

  /// Number of GPU lanes that retire operations concurrently. The GTX
  /// 480 has 480 CUDA cores, but naive generated kernels are memory-bound
  /// far below peak; the effective width is calibrated (with the other
  /// constants) so the suite reproduces the paper's *shapes* at
  /// interpreter-friendly problem sizes (see DESIGN.md section 2).
  double GpuParallelWidth = 64.0;

  /// Fixed cost of spawning a GPU function (driver + launch latency).
  double KernelLaunchLatency = 200.0;

  /// Fixed cost of one cuMemcpy in either direction (DMA setup + sync).
  double TransferLatency = 2200.0;

  /// PCIe throughput in bytes per CPU cycle.
  double TransferBytesPerCycle = 8.0;

  /// Sequential inspection cost per inspected memory access
  /// (inspector-executor baseline, paper section 2.2).
  double InspectorCyclesPerAccess = 6.0;

  /// Cycles for one CGCM runtime-library call (allocation-map lookup and
  /// bookkeeping; the tree lookup is logarithmic but small).
  double RuntimeCallOverhead = 40.0;

  /// Cost of one demand-paging fault in the DyManD-style extension
  /// (LaunchPolicy::DemandManaged): trap + map round trip, on top of the
  /// transfer itself.
  double DemandFaultLatency = 1500.0;

  double transferCycles(uint64_t Bytes) const {
    return TransferLatency + static_cast<double>(Bytes) / TransferBytesPerCycle;
  }

  /// Wall-clock cycles for a kernel that executed \p TotalThreadOps IR
  /// operations across \p Threads threads.
  double kernelCycles(uint64_t TotalThreadOps, uint64_t Threads) const {
    double Width = Threads < GpuParallelWidth ? static_cast<double>(Threads)
                                              : GpuParallelWidth;
    if (Width < 1.0)
      Width = 1.0;
    return KernelLaunchLatency +
           static_cast<double>(TotalThreadOps) * GpuThreadCyclesPerOp / Width;
  }
};

/// Aggregate execution statistics; ratios of these produce every number
/// reported by the benchmark harnesses.
struct ExecStats {
  double CpuCycles = 0;
  double GpuCycles = 0;
  double CommCycles = 0;
  double InspectorCycles = 0;
  double RuntimeCycles = 0;

  uint64_t KernelLaunches = 0;
  uint64_t TransfersHtoD = 0;
  uint64_t TransfersDtoH = 0;
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  uint64_t CpuOps = 0;
  uint64_t GpuOps = 0;
  uint64_t RuntimeCalls = 0;
  uint64_t DemandFaults = 0;
  /// Device-to-host copies the runtime skipped because the unit's epoch
  /// showed the host copy was already current (Algorithm 2's staleness
  /// test paying off).
  uint64_t EpochSuppressedCopies = 0;
  /// High-water mark of live device-memory bytes across the run.
  uint64_t PeakResidentDeviceBytes = 0;

  /// Total modeled wall clock: the machine model is synchronous (the CPU
  /// blocks on transfers and kernels), so components add.
  double totalCycles() const {
    return CpuCycles + GpuCycles + CommCycles + InspectorCycles +
           RuntimeCycles;
  }

  void reset() { *this = ExecStats(); }
};

/// Kinds of timeline events recorded for schedule visualization (Fig. 2).
enum class EventKind { CpuCompute, HtoD, DtoH, Kernel, Inspect };

struct TimelineEvent {
  EventKind Kind;
  double StartCycle;
  double DurationCycles;
  uint64_t Bytes; ///< For transfers.
};

} // namespace cgcm

#endif // CGCM_GPUSIM_TIMING_H
