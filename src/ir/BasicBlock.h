//===- ir/BasicBlock.h - Basic block ---------------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block owns an ordered list of instructions ending in a
/// terminator. Blocks are Values so they can be named and printed.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_BASICBLOCK_H
#define CGCM_IR_BASICBLOCK_H

#include "ir/Instructions.h"
#include "ir/Value.h"

#include <list>
#include <memory>

namespace cgcm {

class Function;

class BasicBlock : public Value {
public:
  using InstListType = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstListType::iterator;
  using const_iterator = InstListType::const_iterator;

  BasicBlock(Type *LabelTy, std::string Name)
      : Value(ValueKind::BasicBlock, LabelTy, std::move(Name)) {}

  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The block terminator, or null if the block is not yet terminated.
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  /// Appends \p I, taking ownership.
  Instruction *push_back(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Insts.push_back(std::move(I));
    return Insts.back().get();
  }

  /// Inserts \p I before \p Pos, taking ownership.
  Instruction *insertBefore(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Inserts \p I immediately after \p Pos, taking ownership.
  Instruction *insertAfter(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Finds the list iterator for \p I (which must be in this block).
  iterator getIterator(Instruction *I);

  /// Unlinks \p I and returns ownership.
  std::unique_ptr<Instruction> remove(Instruction *I);

  /// Successor blocks via the terminator (empty if none).
  std::vector<BasicBlock *> successors() const;

  /// Predecessor blocks (computed by scanning the function; cached by
  /// analyses that need it repeatedly).
  std::vector<BasicBlock *> predecessors() const;

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::BasicBlock;
  }

private:
  Function *Parent = nullptr;
  InstListType Insts;
};

} // namespace cgcm

#endif // CGCM_IR_BASICBLOCK_H
