//===- ir/Constants.h - Constant values ------------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant scalar values. Constants are uniqued per Module, so pointer
/// equality is value equality for a given type.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_CONSTANTS_H
#define CGCM_IR_CONSTANTS_H

#include "ir/Value.h"

#include <cstdint>

namespace cgcm {

/// Common base for constants (scalar immediates and the null pointer).
class Constant : public Value {
protected:
  using Value::Value;

public:
  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt ||
           V->getKind() == ValueKind::ConstantFP ||
           V->getKind() == ValueKind::ConstantNull;
  }
};

/// An integer immediate of any supported width, stored sign-extended.
class ConstantInt : public Constant {
  friend class Module;
  ConstantInt(IntegerType *Ty, int64_t V)
      : Constant(ValueKind::ConstantInt, Ty), Val(V) {}

public:
  int64_t getValue() const { return Val; }
  uint64_t getZExtValue() const;
  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt;
  }

private:
  int64_t Val;
};

/// A floating-point immediate (float or double typed).
class ConstantFP : public Constant {
  friend class Module;
  ConstantFP(Type *Ty, double V) : Constant(ValueKind::ConstantFP, Ty), Val(V) {}

public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantFP;
  }

private:
  double Val;
};

/// The null pointer constant for a given pointer type.
class ConstantNull : public Constant {
  friend class Module;
  explicit ConstantNull(PointerType *Ty)
      : Constant(ValueKind::ConstantNull, Ty) {}

public:
  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantNull;
  }
};

} // namespace cgcm

#endif // CGCM_IR_CONSTANTS_H
