//===- ir/Function.h - Functions, arguments, and globals -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function (CPU function, GPU kernel, or external declaration), Argument,
/// and GlobalVariable. GPU kernels carry an IsKernel flag; glue kernels
/// produced by the glue-kernel optimization additionally carry IsGlue.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_FUNCTION_H
#define CGCM_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"

#include <memory>
#include <vector>

namespace cgcm {

class Module;

/// A formal parameter of a function.
class Argument : public Value {
public:
  Argument(Type *Ty, std::string Name, Function *Parent, unsigned ArgNo)
      : Value(ValueKind::Argument, Ty, std::move(Name)), Parent(Parent),
        ArgNo(ArgNo) {}

  Function *getParent() const { return Parent; }
  unsigned getArgNo() const { return ArgNo; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  Function *Parent;
  unsigned ArgNo;
};

/// A module-level variable. The interpreter assigns its host address at
/// program load; the CGCM management pass registers it with the runtime
/// via declareGlobal before main runs (paper section 3.1).
class GlobalVariable : public Value {
public:
  /// A pointer-sized patch applied at load time: the address of Target is
  /// written at ByteOffset within this global's storage. This is how an
  /// array-of-strings initializer (Listing 1/2 of the paper) is expressed.
  struct Relocation {
    uint64_t ByteOffset;
    GlobalVariable *Target;
  };

  GlobalVariable(PointerType *AddrTy, Type *ValueTy, std::string Name,
                 bool IsConstant)
      : Value(ValueKind::GlobalVariable, AddrTy, std::move(Name)),
        ValueTy(ValueTy), IsConstant(IsConstant) {}

  /// The type of the stored object (the value's type is a pointer to it).
  Type *getValueType() const { return ValueTy; }
  uint64_t getSizeInBytes() const { return ValueTy->getSizeInBytes(); }

  bool isConstant() const { return IsConstant; }

  bool hasInitializer() const { return !Init.empty(); }
  const std::vector<uint8_t> &getInitializer() const { return Init; }
  void setInitializer(std::vector<uint8_t> Bytes) { Init = std::move(Bytes); }

  const std::vector<Relocation> &getRelocations() const { return Relocs; }
  void addRelocation(uint64_t ByteOffset, GlobalVariable *Target) {
    Relocs.push_back({ByteOffset, Target});
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::GlobalVariable;
  }

private:
  Type *ValueTy;
  bool IsConstant;
  std::vector<uint8_t> Init;
  std::vector<Relocation> Relocs;
};

/// A function: a declaration (no body) or a definition (entry block plus
/// successors). Functions are Values so calls can reference them.
class Function : public Value {
public:
  using BlockListType = std::list<std::unique_ptr<BasicBlock>>;
  using iterator = BlockListType::iterator;
  using const_iterator = BlockListType::const_iterator;

  Function(FunctionType *FTy, PointerType *AddrTy, std::string Name,
           Module *Parent);

  Module *getParent() const { return Parent; }
  FunctionType *getFunctionType() const { return FTy; }
  Type *getReturnType() const { return FTy->getReturnType(); }

  bool isDeclaration() const { return Blocks.empty(); }

  /// True for functions compiled for the GPU and invoked via KernelLaunch.
  bool isKernel() const { return IsKernel; }
  void setKernel(bool V) { IsKernel = V; }

  /// True for single-threaded GPU functions created by the glue-kernel
  /// optimization (paper section 5.3).
  bool isGlueKernel() const { return IsGlue; }
  void setGlueKernel(bool V) { IsGlue = V; }

  /// True for DOALL kernels whose iteration space a device pool may
  /// split into contiguous per-device shards (docs/MultiGPU.md). Set by
  /// the DOALL pass when its applicability analysis proves iterations
  /// independent; printed/parsed as `shardable(<halo>)`.
  bool isShardable() const { return IsShardable; }
  void setShardable(bool V) { IsShardable = V; }

  /// Modeled boundary-exchange bytes charged per adjacent shard pair
  /// after a sharded launch (0 = no halo traffic).
  uint64_t getHaloBytes() const { return HaloBytes; }
  void setHaloBytes(uint64_t V) { HaloBytes = V; }

  unsigned getNumArgs() const { return Args.size(); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }

  /// Appends a parameter, updating the function type. Every call site
  /// must be extended in the same transformation (the verifier checks).
  /// Used by alloca promotion to thread preallocated buffers.
  Argument *appendArgument(Type *Ty, const std::string &Name);

  iterator begin() { return Blocks.begin(); }
  iterator end() { return Blocks.end(); }
  const_iterator begin() const { return Blocks.begin(); }
  const_iterator end() const { return Blocks.end(); }
  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }

  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front().get();
  }

  /// Creates a new block appended to this function.
  BasicBlock *createBlock(const std::string &Name);

  /// Creates a new block inserted immediately after \p After.
  BasicBlock *createBlockAfter(BasicBlock *After, const std::string &Name);

  /// Unlinks \p BB (which must be in this function) and deletes it. All
  /// instructions in it must be dead.
  void eraseBlock(BasicBlock *BB);

  /// All instructions of the function in block order (convenience for
  /// analyses; snapshot, not a live view).
  std::vector<Instruction *> instructions() const;

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Function;
  }

private:
  Module *Parent;
  FunctionType *FTy;
  bool IsKernel = false;
  bool IsGlue = false;
  bool IsShardable = false;
  uint64_t HaloBytes = 0;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockListType Blocks;
};

} // namespace cgcm

#endif // CGCM_IR_FUNCTION_H
