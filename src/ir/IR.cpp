//===- ir/IR.cpp - Instruction/BasicBlock/Function/Module bodies ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace cgcm;

//===----------------------------------------------------------------------===//
// ConstantInt
//===----------------------------------------------------------------------===//

uint64_t ConstantInt::getZExtValue() const {
  unsigned Bits = cast<IntegerType>(getType())->getBitWidth();
  if (Bits == 64)
    return static_cast<uint64_t>(Val);
  return static_cast<uint64_t>(Val) & ((1ull << Bits) - 1);
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction is not linked into a block");
  assert(!hasUses() && "erasing an instruction that still has users");
  Parent->remove(this); // Unique_ptr returned and dropped here.
}

std::unique_ptr<Instruction> Instruction::removeFromParent() {
  assert(Parent && "instruction is not linked into a block");
  return Parent->remove(this);
}

const char *Instruction::getOpcodeName() const {
  switch (getKind()) {
  case ValueKind::Alloca:
    return "alloca";
  case ValueKind::Load:
    return "load";
  case ValueKind::Store:
    return "store";
  case ValueKind::GEP:
    return "gep";
  case ValueKind::BinOp:
    return BinOpInst::getOpName(cast<BinOpInst>(this)->getOp());
  case ValueKind::Cmp:
    return "cmp";
  case ValueKind::Cast:
    return CastInst::getOpName(cast<CastInst>(this)->getOp());
  case ValueKind::Call:
    return "call";
  case ValueKind::KernelLaunch:
    return "launch";
  case ValueKind::Phi:
    return "phi";
  case ValueKind::Select:
    return "select";
  case ValueKind::Br:
    return "br";
  case ValueKind::Ret:
    return "ret";
  default:
    CGCM_UNREACHABLE("not an instruction kind");
  }
}

const char *BinOpInst::getOpName(Op Opcode) {
  switch (Opcode) {
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::SDiv:
    return "sdiv";
  case Op::SRem:
    return "srem";
  case Op::FAdd:
    return "fadd";
  case Op::FSub:
    return "fsub";
  case Op::FMul:
    return "fmul";
  case Op::FDiv:
    return "fdiv";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::AShr:
    return "ashr";
  case Op::LShr:
    return "lshr";
  }
  CGCM_UNREACHABLE("covered switch");
}

const char *CmpInst::getPredicateName(Predicate Pred) {
  switch (Pred) {
  case Predicate::EQ:
    return "eq";
  case Predicate::NE:
    return "ne";
  case Predicate::SLT:
    return "slt";
  case Predicate::SLE:
    return "sle";
  case Predicate::SGT:
    return "sgt";
  case Predicate::SGE:
    return "sge";
  case Predicate::FOEQ:
    return "foeq";
  case Predicate::FONE:
    return "fone";
  case Predicate::FOLT:
    return "folt";
  case Predicate::FOLE:
    return "fole";
  case Predicate::FOGT:
    return "fogt";
  case Predicate::FOGE:
    return "foge";
  }
  CGCM_UNREACHABLE("covered switch");
}

const char *CastInst::getOpName(Op Opcode) {
  switch (Opcode) {
  case Op::Trunc:
    return "trunc";
  case Op::ZExt:
    return "zext";
  case Op::SExt:
    return "sext";
  case Op::FPToSI:
    return "fptosi";
  case Op::SIToFP:
    return "sitofp";
  case Op::FPExt:
    return "fpext";
  case Op::FPTrunc:
    return "fptrunc";
  case Op::Bitcast:
    return "bitcast";
  case Op::PtrToInt:
    return "ptrtoint";
  case Op::IntToPtr:
    return "inttoptr";
  }
  CGCM_UNREACHABLE("covered switch");
}

Value *PhiInst::getIncomingValueFor(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (Blocks[I] == BB)
      return getIncomingValue(I);
  return nullptr;
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

BasicBlock::iterator BasicBlock::getIterator(Instruction *I) {
  for (auto It = Insts.begin(), E = Insts.end(); It != E; ++It)
    if (It->get() == I)
      return It;
  CGCM_UNREACHABLE("instruction not in this block");
}

Instruction *BasicBlock::insertBefore(Instruction *Pos,
                                      std::unique_ptr<Instruction> I) {
  auto It = getIterator(Pos);
  I->setParent(this);
  return Insts.insert(It, std::move(I))->get();
}

Instruction *BasicBlock::insertAfter(Instruction *Pos,
                                     std::unique_ptr<Instruction> I) {
  auto It = getIterator(Pos);
  ++It;
  I->setParent(this);
  return Insts.insert(It, std::move(I))->get();
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction *I) {
  auto It = getIterator(I);
  std::unique_ptr<Instruction> Owned = std::move(*It);
  Insts.erase(It);
  Owned->setParent(nullptr);
  return Owned;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  if (const Instruction *Term = getTerminator())
    if (const auto *Br = dyn_cast<BranchInst>(Term))
      for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
        Result.push_back(Br->getSuccessor(I));
  return Result;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Result;
  if (!Parent)
    return Result;
  for (const auto &BB : *Parent) {
    for (BasicBlock *Succ : BB->successors())
      if (Succ == this) {
        Result.push_back(BB.get());
        break;
      }
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(FunctionType *FTy, PointerType *AddrTy, std::string Name,
                   Module *Parent)
    : Value(ValueKind::Function, AddrTy, std::move(Name)), Parent(Parent),
      FTy(FTy) {
  for (unsigned I = 0, E = FTy->getNumParams(); I != E; ++I)
    Args.push_back(std::make_unique<Argument>(
        FTy->getParamType(I), "arg" + std::to_string(I), this, I));
}

Argument *Function::appendArgument(Type *Ty, const std::string &Name) {
  std::vector<Type *> Params = FTy->getParamTypes();
  Params.push_back(Ty);
  FTy = Parent->getContext().getFunctionTy(FTy->getReturnType(),
                                           std::move(Params));
  Args.push_back(
      std::make_unique<Argument>(Ty, Name, this, Args.size()));
  return Args.back().get();
}

BasicBlock *Function::createBlock(const std::string &Name) {
  auto BB = std::make_unique<BasicBlock>(
      Parent->getContext().getVoidTy(), Name);
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

BasicBlock *Function::createBlockAfter(BasicBlock *After,
                                       const std::string &Name) {
  auto BB = std::make_unique<BasicBlock>(
      Parent->getContext().getVoidTy(), Name);
  BB->setParent(this);
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It) {
    if (It->get() == After) {
      ++It;
      return Blocks.insert(It, std::move(BB))->get();
    }
  }
  CGCM_UNREACHABLE("block not in this function");
}

void Function::eraseBlock(BasicBlock *BB) {
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It) {
    if (It->get() == BB) {
      // Drop instructions back-to-front so defs are deleted after uses.
      while (!BB->empty()) {
        Instruction *Last = BB->back();
        Last->dropAllOperands();
        assert(!Last->hasUses() && "erasing block with live-out values");
        BB->remove(Last);
      }
      Blocks.erase(It);
      return;
    }
  }
  CGCM_UNREACHABLE("block not in this function");
}

std::vector<Instruction *> Function::instructions() const {
  std::vector<Instruction *> Result;
  for (const auto &BB : Blocks)
    for (const auto &I : *BB)
      Result.push_back(I.get());
  return Result;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Module::~Module() {
  // Break every def-use edge before members are destroyed, so that value
  // destructors (which assert emptiness of their use lists) run clean
  // regardless of member declaration order.
  for (const auto &F : Functions)
    for (Instruction *I : F->instructions())
      I->dropAllOperands();
}

ConstantInt *Module::getConstantInt(IntegerType *Ty, int64_t V) {
  // Canonicalize to the sign-extended value for the width.
  unsigned Bits = Ty->getBitWidth();
  if (Bits < 64) {
    uint64_t Mask = (1ull << Bits) - 1;
    uint64_t U = static_cast<uint64_t>(V) & Mask;
    if (U & (1ull << (Bits - 1)))
      U |= ~Mask;
    V = static_cast<int64_t>(U);
  }
  auto Key = std::make_pair(Ty, V);
  auto It = IntConstants.find(Key);
  if (It != IntConstants.end())
    return It->second.get();
  auto *C = new ConstantInt(Ty, V);
  IntConstants[Key] = std::unique_ptr<ConstantInt>(C);
  return C;
}

ConstantInt *Module::getInt1(bool V) {
  return getConstantInt(Ctx.getInt1Ty(), V ? 1 : 0);
}

ConstantInt *Module::getInt32(int32_t V) {
  return getConstantInt(Ctx.getInt32Ty(), V);
}

ConstantInt *Module::getInt64(int64_t V) {
  return getConstantInt(Ctx.getInt64Ty(), V);
}

ConstantFP *Module::getConstantFP(Type *Ty, double V) {
  assert(Ty->isFloatingPointTy() && "FP constant must have FP type");
  auto Key = std::make_pair(Ty, V);
  auto It = FPConstants.find(Key);
  if (It != FPConstants.end())
    return It->second.get();
  auto *C = new ConstantFP(Ty, V);
  FPConstants[Key] = std::unique_ptr<ConstantFP>(C);
  return C;
}

ConstantNull *Module::getNullPtr(PointerType *Ty) {
  auto It = NullConstants.find(Ty);
  if (It != NullConstants.end())
    return It->second.get();
  auto *C = new ConstantNull(Ty);
  NullConstants[Ty] = std::unique_ptr<ConstantNull>(C);
  return C;
}

GlobalVariable *Module::createGlobal(Type *ValueTy, const std::string &Name,
                                     bool IsConstant) {
  assert(!getGlobal(Name) && "duplicate global name");
  auto *GV = new GlobalVariable(Ctx.getPointerTo(ValueTy), ValueTy, Name,
                                IsConstant);
  Globals.push_back(std::unique_ptr<GlobalVariable>(GV));
  return GV;
}

GlobalVariable *Module::getGlobal(const std::string &Name) const {
  for (const auto &GV : Globals)
    if (GV->getName() == Name)
      return GV.get();
  return nullptr;
}

Function *Module::getOrCreateFunction(const std::string &Name,
                                      FunctionType *FTy) {
  if (Function *F = getFunction(Name)) {
    if (F->getFunctionType() != FTy)
      reportFatalError("function '" + Name + "' redeclared with a different type");
    return F;
  }
  auto *F = new Function(FTy, Ctx.getPointerTo(FTy), Name, this);
  Functions.push_back(std::unique_ptr<Function>(F));
  return F;
}

Function *Module::getFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

void Module::eraseFunction(Function *F) {
  assert(!F->hasUses() && "erasing a function that still has users");
  for (auto It = Functions.begin(), E = Functions.end(); It != E; ++It) {
    if (It->get() == F) {
      // Drop every operand edge first so cross-block uses cannot outlive
      // their definitions during block erasure.
      for (Instruction *I : F->instructions())
        I->dropAllOperands();
      for (Instruction *I : F->instructions())
        if (I->hasUses())
          reportFatalError("erasing function with externally used values");
      while (!F->empty())
        F->eraseBlock(F->begin()->get());
      Functions.erase(It);
      return;
    }
  }
  CGCM_UNREACHABLE("function not in this module");
}
