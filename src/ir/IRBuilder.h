//===- ir/IRBuilder.h - Convenience IR construction ------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder appends instructions at an insertion point, computing result
/// types and interning constants. Used by the frontend's IR generation,
/// by the CGCM transformation passes, and by tests.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_IRBUILDER_H
#define CGCM_IR_IRBUILDER_H

#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <memory>

namespace cgcm {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &getModule() { return M; }
  TypeContext &getContext() { return M.getContext(); }

  /// Sets the insertion point to the end of \p BB.
  void setInsertPoint(BasicBlock *BB) {
    InsertBB = BB;
    InsertBefore = nullptr;
  }

  /// Sets the insertion point to just before \p I.
  void setInsertPoint(Instruction *I) {
    InsertBB = I->getParent();
    InsertBefore = I;
  }

  BasicBlock *getInsertBlock() const { return InsertBB; }

  /// Sets the source location stamped onto subsequently created
  /// instructions (LLVM debug-location style). The frontend updates this
  /// per statement/expression; transformation passes set it when the new
  /// code stands in for located source (or leave it at "none").
  void setCurrentLoc(SourceLoc L) { CurLoc = L; }
  const SourceLoc &getCurrentLoc() const { return CurLoc; }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  AllocaInst *createAlloca(Type *Allocated, Value *ArraySize = nullptr,
                           const std::string &Name = "") {
    auto *PT = getContext().getPointerTo(Allocated);
    return insert(
        std::make_unique<AllocaInst>(Allocated, PT, ArraySize, Name));
  }

  LoadInst *createLoad(Value *Ptr, const std::string &Name = "") {
    auto *PT = dyn_cast<PointerType>(Ptr->getType());
    if (!PT)
      reportFatalError("load from non-pointer value");
    return insert(
        std::make_unique<LoadInst>(Ptr, PT->getPointeeType(), Name));
  }

  StoreInst *createStore(Value *Val, Value *Ptr) {
    assert(isa<PointerType>(Ptr->getType()) && "store to non-pointer");
    return insert(
        std::make_unique<StoreInst>(Val, Ptr, getContext().getVoidTy()));
  }

  /// C pointer arithmetic: the result has the operand's pointer type and
  /// the index steps by sizeof(pointee). Array-to-element decay is a
  /// separate bitcast (see createArrayDecay).
  GEPInst *createGEP(Value *Ptr, Value *Idx, const std::string &Name = "") {
    auto *PT = dyn_cast<PointerType>(Ptr->getType());
    if (!PT)
      reportFatalError("gep on non-pointer value");
    return insert(std::make_unique<GEPInst>(Ptr, Idx, PT, Name));
  }

  /// [N x T]* -> T* (address-preserving array decay).
  CastInst *createArrayDecay(Value *Ptr, const std::string &Name = "") {
    auto *PT = dyn_cast<PointerType>(Ptr->getType());
    if (!PT || !isa<ArrayType>(PT->getPointeeType()))
      reportFatalError("array decay of a non-array pointer");
    Type *Elem = cast<ArrayType>(PT->getPointeeType())->getElementType();
    return createCast(CastInst::Op::Bitcast, Ptr,
                      getContext().getPointerTo(Elem), Name);
  }

  //===--------------------------------------------------------------------===//
  // Arithmetic
  //===--------------------------------------------------------------------===//

  BinOpInst *createBinOp(BinOpInst::Op Op, Value *LHS, Value *RHS,
                         const std::string &Name = "") {
    assert(LHS->getType() == RHS->getType() && "binop operand type mismatch");
    return insert(std::make_unique<BinOpInst>(Op, LHS, RHS, Name));
  }

  BinOpInst *createAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpInst::Op::Add, L, R, Name);
  }
  BinOpInst *createSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpInst::Op::Sub, L, R, Name);
  }
  BinOpInst *createMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpInst::Op::Mul, L, R, Name);
  }

  CmpInst *createCmp(CmpInst::Predicate Pred, Value *LHS, Value *RHS,
                     const std::string &Name = "") {
    assert(LHS->getType() == RHS->getType() && "cmp operand type mismatch");
    return insert(std::make_unique<CmpInst>(Pred, LHS, RHS,
                                            getContext().getInt1Ty(), Name));
  }

  CastInst *createCast(CastInst::Op Op, Value *V, Type *DestTy,
                       const std::string &Name = "") {
    return insert(std::make_unique<CastInst>(Op, V, DestTy, Name));
  }

  SelectInst *createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                           const std::string &Name = "") {
    assert(TrueV->getType() == FalseV->getType() &&
           "select arm type mismatch");
    return insert(std::make_unique<SelectInst>(Cond, TrueV, FalseV, Name));
  }

  //===--------------------------------------------------------------------===//
  // Calls and control flow
  //===--------------------------------------------------------------------===//

  CallInst *createCall(Function *Callee, const std::vector<Value *> &Args,
                       const std::string &Name = "") {
    return insert(std::make_unique<CallInst>(
        Callee, Callee->getReturnType(), Args, Name));
  }

  KernelLaunchInst *createKernelLaunch(Function *Kernel, Value *Grid,
                                       Value *Block,
                                       const std::vector<Value *> &Args) {
    assert(Kernel->isKernel() && "launch target is not a kernel");
    return insert(std::make_unique<KernelLaunchInst>(
        Kernel, Grid, Block, Args, getContext().getVoidTy()));
  }

  PhiInst *createPhi(Type *Ty, const std::string &Name = "") {
    return insert(std::make_unique<PhiInst>(Ty, Name));
  }

  BranchInst *createBr(BasicBlock *Dest) {
    return insert(
        std::make_unique<BranchInst>(Dest, getContext().getVoidTy()));
  }

  BranchInst *createCondBr(Value *Cond, BasicBlock *TrueBB,
                           BasicBlock *FalseBB) {
    return insert(std::make_unique<BranchInst>(Cond, TrueBB, FalseBB,
                                               getContext().getVoidTy()));
  }

  RetInst *createRet(Value *V = nullptr) {
    return insert(std::make_unique<RetInst>(V, getContext().getVoidTy()));
  }

private:
  template <typename InstT> InstT *insert(std::unique_ptr<InstT> I) {
    assert(InsertBB && "no insertion point set");
    InstT *Raw = I.get();
    Raw->setLoc(CurLoc);
    if (InsertBefore)
      InsertBB->insertBefore(InsertBefore, std::move(I));
    else
      InsertBB->push_back(std::move(I));
    return Raw;
  }

  Module &M;
  BasicBlock *InsertBB = nullptr;
  Instruction *InsertBefore = nullptr;
  SourceLoc CurLoc = SourceLoc::none();
};

} // namespace cgcm

#endif // CGCM_IR_IRBUILDER_H
