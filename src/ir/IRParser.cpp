//===- ir/IRParser.cpp - Textual IR parser -----------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"

#include <cctype>
#include <cstring>
#include <map>
#include <vector>

using namespace cgcm;

namespace {

/// A line-oriented cursor over the IR text.
class Cursor {
public:
  explicit Cursor(const std::string &Text) : Text(Text) {}

  bool atEnd() const { return Pos >= Text.size(); }

  void skipSpace() {
    while (!atEnd() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
      ++Pos;
  }

  /// Advances past the newline; returns false at end of text.
  bool nextLine() {
    while (!atEnd() && Text[Pos] != '\n')
      ++Pos;
    if (atEnd())
      return false;
    ++Pos;
    ++Line;
    return true;
  }

  bool startsWith(const char *S) {
    skipSpace();
    size_t N = std::strlen(S);
    return Text.compare(Pos, N, S) == 0;
  }

  bool consume(const char *S) {
    skipSpace();
    size_t N = std::strlen(S);
    if (Text.compare(Pos, N, S) != 0)
      return false;
    Pos += N;
    return true;
  }

  void expect(const char *S) {
    if (!consume(S))
      fail(std::string("expected '") + S + "'");
  }

  char peek() {
    skipSpace();
    return atEnd() ? '\0' : Text[Pos];
  }

  bool peekRaw(char C) const { return !atEnd() && Text[Pos] == C; }

  char take() { return Text[Pos++]; }

  /// Identifier characters used by names, labels, and keywords.
  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '-';
  }

  std::string ident() {
    skipSpace();
    std::string S;
    while (!atEnd() && isIdentChar(Text[Pos]))
      S.push_back(Text[Pos++]);
    if (S.empty())
      fail("expected an identifier");
    return S;
  }

  /// A number token (integer or floating point, with sign/exponent).
  std::string numberToken() {
    skipSpace();
    std::string S;
    while (!atEnd() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == 'i' ||
            Text[Pos] == 'n' || Text[Pos] == 'f' || Text[Pos] == 'a'))
      S.push_back(Text[Pos++]);
    if (S.empty())
      fail("expected a number");
    return S;
  }

  [[noreturn]] void fail(const std::string &Msg) {
    reportFatalError("IR parse error at line " + std::to_string(Line) +
                     ": " + Msg);
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

class IRParser {
public:
  IRParser(const std::string &Text, const std::string &Name)
      : C(Text), M(std::make_unique<Module>(Name)) {}

  std::unique_ptr<Module> run() {
    scanSignatures();
    parseBodies();
    std::string Err;
    if (!verifyModule(*M, &Err))
      reportFatalError("parsed IR failed verification: " + Err);
    return std::move(M);
  }

private:
  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  Type *parseType() {
    TypeContext &Ctx = M->getContext();
    Type *T = nullptr;
    if (C.consume("[")) {
      std::string N = C.numberToken();
      C.expect("x");
      Type *Elem = parseType();
      C.expect("]");
      T = Ctx.getArrayTy(Elem, std::stoull(N));
    } else {
      std::string Name = C.ident();
      if (Name == "void")
        T = Ctx.getVoidTy();
      else if (Name == "float")
        T = Ctx.getFloatTy();
      else if (Name == "double")
        T = Ctx.getDoubleTy();
      else if (Name.size() >= 2 && Name[0] == 'i')
        T = Ctx.getIntegerTy(std::stoul(Name.substr(1)));
      else
        C.fail("unknown type '" + Name + "'");
    }
    while (C.peekRaw('*')) {
      C.take();
      T = Ctx.getPointerTo(T);
    }
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Pass 1: globals and function signatures
  //===--------------------------------------------------------------------===//

  void scanSignatures() {
    Cursor Scan = C;
    do {
      Scan.skipSpace();
      if (Scan.startsWith("@"))
        parseGlobal(Scan);
      else if (Scan.startsWith("declare") || Scan.startsWith("define"))
        parseFunctionHeader(Scan);
    } while (Scan.nextLine());
  }

  void parseGlobal(Cursor &S) {
    S.expect("@");
    std::string Name = S.ident();
    S.expect("=");
    bool IsConst = false;
    if (S.consume("constant"))
      IsConst = true;
    else
      S.expect("global");
    // Types must come from the module's context: reuse parseType through
    // a cursor swap.
    std::swap(C.Pos, S.Pos);
    std::swap(C.Line, S.Line);
    Type *Ty = parseType();
    GlobalVariable *GV = M->createGlobal(Ty, Name, IsConst);
    if (C.consume("init")) {
      C.expect("\"");
      std::vector<uint8_t> Bytes;
      auto HexVal = [&](char H) -> unsigned {
        if (H >= '0' && H <= '9')
          return H - '0';
        if (H >= 'A' && H <= 'F')
          return H - 'A' + 10;
        C.fail("bad hex digit in initializer");
      };
      while (!C.peekRaw('"')) {
        char Hi = C.take(), Lo = C.take();
        Bytes.push_back(static_cast<uint8_t>(HexVal(Hi) * 16 + HexVal(Lo)));
      }
      C.take(); // Closing quote.
      GV->setInitializer(std::move(Bytes));
    }
    PendingRelocs[GV] = {};
    while (C.consume("reloc(")) {
      std::string Off = C.numberToken();
      C.expect(",");
      C.expect("@");
      std::string Target = C.ident();
      C.expect(")");
      PendingRelocs[GV].push_back({std::stoull(Off), Target});
    }
    std::swap(C.Pos, S.Pos);
    std::swap(C.Line, S.Line);
  }

  void parseFunctionHeader(Cursor &S) {
    bool IsDef = S.consume("define");
    if (!IsDef)
      S.expect("declare");
    bool IsKernel = false, IsGlue = false;
    if (S.consume("glue_kernel"))
      IsKernel = IsGlue = true;
    else if (S.consume("kernel"))
      IsKernel = true;
    bool IsShardable = false;
    uint64_t Halo = 0;
    if (S.consume("shardable(")) {
      IsShardable = true;
      Halo = std::stoull(S.numberToken());
      S.expect(")");
    }
    std::swap(C.Pos, S.Pos);
    std::swap(C.Line, S.Line);
    Type *Ret = parseType();
    C.expect("@");
    std::string Name = C.ident();
    C.expect("(");
    std::vector<Type *> Params;
    std::vector<std::string> ArgNames;
    if (!C.consume(")")) {
      do {
        Params.push_back(parseType());
        C.expect("%");
        ArgNames.push_back(C.ident());
      } while (C.consume(","));
      C.expect(")");
    }
    Function *F = M->getOrCreateFunction(
        Name, M->getContext().getFunctionTy(Ret, Params));
    F->setKernel(IsKernel);
    F->setGlueKernel(IsGlue);
    F->setShardable(IsShardable);
    F->setHaloBytes(Halo);
    ArgTokens[F] = ArgNames;
    std::swap(C.Pos, S.Pos);
    std::swap(C.Line, S.Line);
  }

  //===--------------------------------------------------------------------===//
  // Pass 2: bodies
  //===--------------------------------------------------------------------===//

  void parseBodies() {
    do {
      C.skipSpace();
      if (C.startsWith("define"))
        parseBody();
    } while (C.nextLine());
    // Apply relocations now that all globals exist.
    for (auto &[GV, Relocs] : PendingRelocs)
      for (auto &[Off, Target] : Relocs) {
        GlobalVariable *T = M->getGlobal(Target);
        if (!T)
          reportFatalError("relocation target '@" + Target + "' not found");
        GV->addRelocation(Off, T);
      }
  }

  BasicBlock *blockFor(Function *F, const std::string &Label) {
    auto &Map = Blocks[F];
    auto It = Map.find(Label);
    if (It != Map.end())
      return It->second;
    BasicBlock *BB = F->createBlock(Label);
    Map[Label] = BB;
    return BB;
  }

  void parseBody() {
    C.expect("define");
    C.consume("glue_kernel") || C.consume("kernel");
    if (C.consume("shardable(")) {
      C.numberToken();
      C.expect(")");
    }
    parseType();
    C.expect("@");
    Function *F = M->getFunction(C.ident());
    assert(F && "signature pass missed a function");
    // Skip the parameter list; bind argument tokens.
    Values.clear();
    const std::vector<std::string> &ArgNames = ArgTokens[F];
    for (unsigned I = 0; I != F->getNumArgs(); ++I) {
      Values[ArgNames[I]] = F->getArg(I);
      F->getArg(I)->setName(stripSuffix(ArgNames[I]));
    }
    while (!C.peekRaw('{')) {
      if (C.atEnd())
        C.fail("unterminated function header");
      C.take();
    }
    C.take(); // '{'
    C.nextLine();

    // Pre-scan the body for labels so blocks are created in their
    // textual order (a forward branch must not reorder the layout, or a
    // re-print would no longer parse defs-before-uses).
    {
      Cursor Scan = C;
      do {
        Scan.skipSpace();
        if (Scan.startsWith("}"))
          break;
        if (Cursor::isIdentChar(Scan.peek())) {
          std::string Tok = Scan.ident();
          if (Scan.peekRaw(':'))
            blockFor(F, Tok);
        }
      } while (Scan.nextLine());
    }

    IRBuilder B(*M);
    BasicBlock *Cur = nullptr;
    PendingPhis.clear();
    for (;;) {
      C.skipSpace();
      if (C.consume("}"))
        break;
      if (C.atEnd())
        C.fail("unterminated function body");
      // Label or instruction?
      size_t Save = C.Pos;
      std::string Tok;
      if (Cursor::isIdentChar(C.peek())) {
        Tok = C.ident();
        if (C.peekRaw(':')) {
          C.take();
          Cur = blockFor(F, Tok);
          B.setInsertPoint(Cur);
          C.nextLine();
          continue;
        }
      }
      C.Pos = Save;
      if (!Cur)
        C.fail("instruction outside a block");
      parseInstruction(F, B);
      C.nextLine();
    }
    resolvePendingPhis(F);
  }

  static std::string stripSuffix(const std::string &Tok) {
    size_t Dot = Tok.rfind('.');
    return Dot == std::string::npos ? Tok : Tok.substr(0, Dot);
  }

  //===--------------------------------------------------------------------===//
  // Operands
  //===--------------------------------------------------------------------===//

  Value *parseOperand(Type *Ty) {
    char P = C.peek();
    if (P == '%') {
      C.take();
      std::string Tok = C.ident();
      auto It = Values.find(Tok);
      if (It == Values.end())
        C.fail("use of undefined value %" + Tok +
               " (only phis may forward-reference)");
      return It->second;
    }
    if (P == '@') {
      C.take();
      std::string Name = C.ident();
      if (GlobalVariable *GV = M->getGlobal(Name))
        return GV;
      if (Function *F = M->getFunction(Name))
        return F;
      C.fail("unknown global @" + Name);
    }
    if (C.consume("null")) {
      auto *PT = dyn_cast<PointerType>(Ty);
      if (!PT)
        C.fail("null in non-pointer context");
      return M->getNullPtr(PT);
    }
    std::string Num = C.numberToken();
    if (!Ty)
      C.fail("constant '" + Num + "' in untyped context");
    if (auto *IT = dyn_cast<IntegerType>(Ty))
      return M->getConstantInt(IT, std::stoll(Num));
    if (Ty->isFloatingPointTy())
      return M->getConstantFP(Ty, std::stod(Num));
    C.fail("constant '" + Num + "' of unsupported type");
  }

  void define(const std::string &Tok, Value *V) {
    V->setName(stripSuffix(Tok));
    Values[Tok] = V;
    // Resolve phis that forward-referenced this token.
    for (auto &[Phi, Incomings] : PendingPhis)
      for (auto &In : Incomings)
        if (In.Token == Tok && !In.Resolved) {
          Phi->setIncomingValue(In.Index, V);
          In.Resolved = true;
        }
  }

  //===--------------------------------------------------------------------===//
  // Instructions
  //===--------------------------------------------------------------------===//

  void parseInstruction(Function *F, IRBuilder &B) {
    std::string ResultTok;
    if (C.peek() == '%') {
      C.take();
      ResultTok = C.ident();
      C.expect("=");
    }
    std::string Op = C.ident();
    Value *Result = nullptr;

    if (Op == "alloca") {
      Type *Allocated = parseType();
      Value *Count = nullptr;
      if (C.consume(", count")) {
        Type *CTy = parseType();
        Count = parseOperand(CTy);
      }
      Result = B.createAlloca(Allocated, Count);
    } else if (Op == "load") {
      Type *Ty = parseType();
      C.expect(",");
      Value *Ptr = parseOperand(M->getContext().getPointerTo(Ty));
      Result = B.createLoad(Ptr);
    } else if (Op == "store") {
      Type *Ty = parseType();
      Value *V = parseOperand(Ty);
      C.expect(",");
      Value *Ptr = parseOperand(M->getContext().getPointerTo(Ty));
      B.createStore(V, Ptr);
    } else if (Op == "gep") {
      Type *Stepped = parseType();
      C.expect(",");
      Value *Ptr = parseOperand(M->getContext().getPointerTo(Stepped));
      C.expect(",");
      Value *Idx = parseOperand(M->getContext().getInt64Ty());
      Result = B.createGEP(Ptr, Idx);
    } else if (BinOpInst::Op BinOp; parseBinOpName(Op, BinOp)) {
      Type *Ty = parseType();
      Value *L = parseOperand(Ty);
      C.expect(",");
      Value *R = parseOperand(Ty);
      Result = B.createBinOp(BinOp, L, R);
    } else if (Op == "cmp") {
      CmpInst::Predicate Pred = parsePredicate(C.ident());
      Type *Ty = parseType();
      Value *L = parseOperand(Ty);
      C.expect(",");
      Value *R = parseOperand(Ty);
      Result = B.createCmp(Pred, L, R);
    } else if (CastInst::Op CastOp; parseCastName(Op, CastOp)) {
      Type *From = parseType();
      Value *V = parseOperand(From);
      C.expect("to");
      Type *To = parseType();
      Result = B.createCast(CastOp, V, To);
    } else if (Op == "call") {
      C.expect("@");
      Function *Callee = M->getFunction(C.ident());
      if (!Callee)
        C.fail("call to unknown function");
      C.expect("(");
      std::vector<Value *> Args;
      if (!C.consume(")")) {
        unsigned I = 0;
        do
          Args.push_back(
              parseOperand(Callee->getFunctionType()->getParamType(I++)));
        while (C.consume(","));
        C.expect(")");
      }
      Result = B.createCall(Callee, Args);
      if (Callee->getReturnType()->isVoidTy())
        Result = nullptr;
    } else if (Op == "launch") {
      C.expect("@");
      Function *Kernel = M->getFunction(C.ident());
      if (!Kernel)
        C.fail("launch of unknown kernel");
      C.expect("<<<");
      Value *Grid = parseOperand(M->getContext().getInt64Ty());
      C.expect(",");
      Value *Block = parseOperand(M->getContext().getInt64Ty());
      C.expect(">>>");
      C.expect("(");
      std::vector<Value *> Args;
      if (!C.consume(")")) {
        unsigned I = 0;
        do
          Args.push_back(
              parseOperand(Kernel->getFunctionType()->getParamType(I++)));
        while (C.consume(","));
        C.expect(")");
      }
      B.createKernelLaunch(Kernel, Grid, Block, Args);
    } else if (Op == "phi") {
      Type *Ty = parseType();
      PhiInst *P = B.createPhi(Ty);
      PendingPhis.push_back({P, {}});
      do {
        C.expect("[");
        // The incoming value may forward-reference: record the token.
        std::string Tok;
        if (C.peek() == '%') {
          size_t Save = C.Pos;
          C.take();
          Tok = C.ident();
          if (!Values.count(Tok)) {
            // Placeholder: a zero constant of the right type, patched in
            // define().
            Value *Placeholder = zeroOf(Ty);
            P->addIncoming(Placeholder, nullptr);
            PendingPhis.back().Incomings.push_back(
                {Tok, P->getNumIncoming() - 1, false});
          } else {
            C.Pos = Save;
            P->addIncoming(parseOperand(Ty), nullptr);
          }
        } else {
          P->addIncoming(parseOperand(Ty), nullptr);
        }
        C.expect(",");
        std::string Label = C.ident();
        P->setIncomingBlock(P->getNumIncoming() - 1,
                            blockFor(P->getParent()->getParent(), Label));
        C.expect("]");
      } while (C.consume(","));
      Result = P;
    } else if (Op == "select") {
      Value *Cond = parseOperand(M->getContext().getInt1Ty());
      C.expect(",");
      Type *Ty = parseType();
      Value *T = parseOperand(Ty);
      C.expect(",");
      Value *E = parseOperand(Ty);
      Result = B.createSelect(Cond, T, E);
    } else if (Op == "br") {
      // Conditional branches always name an i1 %value first (the
      // frontend never emits constant conditions; Simplify folds them).
      if (C.peek() == '%') {
        Value *Cond = parseOperand(M->getContext().getInt1Ty());
        C.expect(",");
        std::string T = C.ident();
        C.expect(",");
        std::string E = C.ident();
        B.createCondBr(Cond, blockFor(F, T), blockFor(F, E));
      } else {
        B.createBr(blockFor(F, C.ident()));
      }
    } else if (Op == "ret") {
      C.skipSpace();
      if (C.peekRaw('\n') || C.peekRaw('\r') || C.peekRaw('!') ||
          C.atEnd()) {
        B.createRet();
      } else {
        Type *Ty = parseType();
        B.createRet(parseOperand(Ty));
      }
    } else {
      C.fail("unknown instruction '" + Op + "'");
    }

    // Optional trailing source location: `!loc <line>:<col>`.
    if (C.consume("!loc")) {
      std::string Line = C.numberToken();
      C.expect(":");
      std::string Col = C.numberToken();
      B.getInsertBlock()->back()->setLoc(
          {static_cast<unsigned>(std::stoul(Line)),
           static_cast<unsigned>(std::stoul(Col))});
    }

    if (!ResultTok.empty()) {
      if (!Result)
        C.fail("void instruction cannot define %" + ResultTok);
      define(ResultTok, Result);
    }
  }

  Value *zeroOf(Type *Ty) {
    if (auto *IT = dyn_cast<IntegerType>(Ty))
      return M->getConstantInt(IT, 0);
    if (Ty->isFloatingPointTy())
      return M->getConstantFP(Ty, 0.0);
    return M->getNullPtr(cast<PointerType>(Ty));
  }

  static bool parseBinOpName(const std::string &N, BinOpInst::Op &Op) {
    static const std::map<std::string, BinOpInst::Op> Map = {
        {"add", BinOpInst::Op::Add},   {"sub", BinOpInst::Op::Sub},
        {"mul", BinOpInst::Op::Mul},   {"sdiv", BinOpInst::Op::SDiv},
        {"srem", BinOpInst::Op::SRem}, {"fadd", BinOpInst::Op::FAdd},
        {"fsub", BinOpInst::Op::FSub}, {"fmul", BinOpInst::Op::FMul},
        {"fdiv", BinOpInst::Op::FDiv}, {"and", BinOpInst::Op::And},
        {"or", BinOpInst::Op::Or},     {"xor", BinOpInst::Op::Xor},
        {"shl", BinOpInst::Op::Shl},   {"ashr", BinOpInst::Op::AShr},
        {"lshr", BinOpInst::Op::LShr},
    };
    auto It = Map.find(N);
    if (It == Map.end())
      return false;
    Op = It->second;
    return true;
  }

  static bool parseCastName(const std::string &N, CastInst::Op &Op) {
    static const std::map<std::string, CastInst::Op> Map = {
        {"trunc", CastInst::Op::Trunc},
        {"zext", CastInst::Op::ZExt},
        {"sext", CastInst::Op::SExt},
        {"fptosi", CastInst::Op::FPToSI},
        {"sitofp", CastInst::Op::SIToFP},
        {"fpext", CastInst::Op::FPExt},
        {"fptrunc", CastInst::Op::FPTrunc},
        {"bitcast", CastInst::Op::Bitcast},
        {"ptrtoint", CastInst::Op::PtrToInt},
        {"inttoptr", CastInst::Op::IntToPtr},
    };
    auto It = Map.find(N);
    if (It == Map.end())
      return false;
    Op = It->second;
    return true;
  }

  CmpInst::Predicate parsePredicate(const std::string &N) {
    static const std::map<std::string, CmpInst::Predicate> Map = {
        {"eq", CmpInst::Predicate::EQ},     {"ne", CmpInst::Predicate::NE},
        {"slt", CmpInst::Predicate::SLT},   {"sle", CmpInst::Predicate::SLE},
        {"sgt", CmpInst::Predicate::SGT},   {"sge", CmpInst::Predicate::SGE},
        {"foeq", CmpInst::Predicate::FOEQ}, {"fone", CmpInst::Predicate::FONE},
        {"folt", CmpInst::Predicate::FOLT}, {"fole", CmpInst::Predicate::FOLE},
        {"fogt", CmpInst::Predicate::FOGT}, {"foge", CmpInst::Predicate::FOGE},
    };
    auto It = Map.find(N);
    if (It == Map.end())
      C.fail("unknown predicate '" + N + "'");
    return It->second;
  }

  void resolvePendingPhis(Function *F) {
    for (auto &[Phi, Incomings] : PendingPhis)
      for (auto &In : Incomings)
        if (!In.Resolved)
          C.fail("phi incoming %" + In.Token + " never defined in @" +
                 F->getName());
    PendingPhis.clear();
  }

  struct PendingIncoming {
    std::string Token;
    unsigned Index;
    bool Resolved;
  };
  struct PendingPhi {
    PhiInst *Phi;
    std::vector<PendingIncoming> Incomings;
  };

  Cursor C;
  std::unique_ptr<Module> M;
  std::map<std::string, Value *> Values; ///< Per-function token bindings.
  std::map<Function *, std::map<std::string, BasicBlock *>> Blocks;
  std::map<Function *, std::vector<std::string>> ArgTokens;
  std::map<GlobalVariable *, std::vector<std::pair<uint64_t, std::string>>>
      PendingRelocs;
  std::vector<PendingPhi> PendingPhis;
};

} // namespace

std::unique_ptr<Module> cgcm::parseIR(const std::string &Text,
                                      const std::string &ModuleName) {
  IRParser P(Text, ModuleName);
  return P.run();
}
