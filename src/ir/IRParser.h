//===- ir/IRParser.h - Textual IR parser ------------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR produced by Module::getString() back into a
/// Module, enabling print/parse round trips, IR-level test inputs, and
/// offline inspection workflows (cgcmc --dump-ir output can be re-run).
///
/// One restriction: non-phi operands must be defined textually before
/// use (phi incomings may forward-reference). The printer emits blocks
/// in layout order, which satisfies this for all IR the project
/// produces; the round-trip property tests enforce it.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_IRPARSER_H
#define CGCM_IR_IRPARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace cgcm {

/// Parses \p Text into a fresh module. Syntax errors are fatal with a
/// line number (inputs are tool-produced).
std::unique_ptr<Module> parseIR(const std::string &Text,
                                const std::string &ModuleName = "parsed");

} // namespace cgcm

#endif // CGCM_IR_IRPARSER_H
