//===- ir/IRPrinter.cpp - Textual IR output --------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Module in a readable LLVM-flavoured textual syntax. The
/// output is operand-typed and label-unique so ir/IRParser.cpp can parse
/// it back: print -> parse round-trips (property-tested over the suite).
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/ErrorHandling.h"

#include <map>
#include <set>
#include <sstream>

using namespace cgcm;

namespace {

/// Assigns stable names (%name or %N, blocks as label names) within one
/// function and renders instructions.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) { numberValues(); }

  void print(std::ostream &OS) {
    OS << (F.isDeclaration() ? "declare " : "define ");
    if (F.isKernel())
      OS << (F.isGlueKernel() ? "glue_kernel " : "kernel ");
    if (F.isShardable())
      OS << "shardable(" << F.getHaloBytes() << ") ";
    OS << F.getReturnType()->getString() << " @" << F.getName() << "(";
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
      if (I)
        OS << ", ";
      const Argument *A = F.getArg(I);
      OS << A->getType()->getString() << " " << ref(A);
    }
    OS << ")";
    if (F.isDeclaration()) {
      OS << "\n";
      return;
    }
    OS << " {\n";
    for (const auto &BB : F) {
      OS << blockName(BB.get()) << ":\n";
      for (const auto &I : *BB)
        printInst(OS, I.get());
    }
    OS << "}\n";
  }

private:
  void numberValues() {
    unsigned N = 0;
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      Names[F.getArg(I)] = uniqueName(F.getArg(I), N);
    unsigned B = 0;
    std::set<std::string> UsedLabels;
    for (const auto &BB : F) {
      std::string Label =
          BB->hasName() ? BB->getName() : "bb" + std::to_string(B);
      // Labels must be unique for the text form to parse back.
      while (!UsedLabels.insert(Label).second)
        Label += "." + std::to_string(B);
      BlockNames[BB.get()] = Label;
      ++B;
      for (const auto &I : *BB)
        if (!I->getType()->isVoidTy())
          Names[I.get()] = uniqueName(I.get(), N);
    }
  }

  std::string uniqueName(const Value *V, unsigned &N) {
    if (V->hasName())
      return "%" + V->getName() + "." + std::to_string(N++);
    return "%" + std::to_string(N++);
  }

  std::string blockName(const BasicBlock *BB) const {
    auto It = BlockNames.find(BB);
    assert(It != BlockNames.end() && "block not numbered");
    return It->second;
  }

  /// Renders an operand reference (typed for constants and globals).
  std::string ref(const Value *V) const {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return std::to_string(CI->getValue());
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      // max_digits10 keeps the value exact through a print/parse cycle.
      std::ostringstream SS;
      SS.precision(17);
      SS << CF->getValue();
      std::string Str = SS.str();
      // Ensure FP constants are lexically distinct from integers.
      if (Str.find('.') == std::string::npos &&
          Str.find('e') == std::string::npos &&
          Str.find("inf") == std::string::npos &&
          Str.find("nan") == std::string::npos)
        Str += ".0";
      return Str;
    }
    if (isa<ConstantNull>(V))
      return "null";
    if (isa<GlobalVariable>(V))
      return "@" + V->getName();
    if (isa<Function>(V))
      return "@" + V->getName();
    auto It = Names.find(V);
    if (It == Names.end())
      return "%<badref>";
    return It->second;
  }

  void printInst(std::ostream &OS, const Instruction *I) const {
    OS << "  ";
    if (!I->getType()->isVoidTy())
      OS << ref(I) << " = ";
    switch (I->getKind()) {
    case Value::ValueKind::Alloca: {
      const auto *AI = cast<AllocaInst>(I);
      OS << "alloca " << AI->getAllocatedType()->getString();
      if (AI->hasArraySize())
        OS << ", count " << AI->getArraySize()->getType()->getString() << " "
           << ref(AI->getArraySize());
      break;
    }
    case Value::ValueKind::Load:
      OS << "load " << I->getType()->getString() << ", "
         << ref(I->getOperand(0));
      break;
    case Value::ValueKind::Store:
      OS << "store " << I->getOperand(0)->getType()->getString() << " "
         << ref(I->getOperand(0)) << ", " << ref(I->getOperand(1));
      break;
    case Value::ValueKind::GEP: {
      const auto *G = cast<GEPInst>(I);
      OS << "gep " << G->getSteppedType()->getString() << ", "
         << ref(G->getPointerOperand()) << ", " << ref(G->getIndexOperand());
      break;
    }
    case Value::ValueKind::BinOp: {
      const auto *B = cast<BinOpInst>(I);
      OS << BinOpInst::getOpName(B->getOp()) << " "
         << B->getType()->getString() << " " << ref(B->getLHS()) << ", "
         << ref(B->getRHS());
      break;
    }
    case Value::ValueKind::Cmp: {
      const auto *C = cast<CmpInst>(I);
      OS << "cmp " << CmpInst::getPredicateName(C->getPredicate()) << " "
         << C->getLHS()->getType()->getString() << " " << ref(C->getLHS())
         << ", " << ref(C->getRHS());
      break;
    }
    case Value::ValueKind::Cast: {
      const auto *C = cast<CastInst>(I);
      OS << CastInst::getOpName(C->getOp()) << " "
         << C->getValueOperand()->getType()->getString() << " "
         << ref(C->getValueOperand()) << " to "
         << I->getType()->getString();
      break;
    }
    case Value::ValueKind::Call: {
      const auto *C = cast<CallInst>(I);
      OS << "call @" << C->getCallee()->getName() << "(";
      for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A) {
        if (A)
          OS << ", ";
        OS << ref(C->getArg(A));
      }
      OS << ")";
      break;
    }
    case Value::ValueKind::KernelLaunch: {
      const auto *K = cast<KernelLaunchInst>(I);
      OS << "launch @" << K->getKernel()->getName() << "<<<"
         << ref(K->getGrid()) << ", " << ref(K->getBlock()) << ">>>(";
      for (unsigned A = 0, E = K->getNumArgs(); A != E; ++A) {
        if (A)
          OS << ", ";
        OS << ref(K->getArg(A));
      }
      OS << ")";
      break;
    }
    case Value::ValueKind::Phi: {
      const auto *P = cast<PhiInst>(I);
      OS << "phi " << I->getType()->getString() << " ";
      for (unsigned V = 0, E = P->getNumIncoming(); V != E; ++V) {
        if (V)
          OS << ", ";
        OS << "[" << ref(P->getIncomingValue(V)) << ", "
           << blockName(P->getIncomingBlock(V)) << "]";
      }
      break;
    }
    case Value::ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      OS << "select " << ref(S->getCondition()) << ", "
         << S->getTrueValue()->getType()->getString() << " "
         << ref(S->getTrueValue()) << ", " << ref(S->getFalseValue());
      break;
    }
    case Value::ValueKind::Br: {
      const auto *B = cast<BranchInst>(I);
      if (B->isConditional())
        OS << "br " << ref(B->getCondition()) << ", "
           << blockName(B->getSuccessor(0)) << ", "
           << blockName(B->getSuccessor(1));
      else
        OS << "br " << blockName(B->getSuccessor(0));
      break;
    }
    case Value::ValueKind::Ret: {
      const auto *R = cast<RetInst>(I);
      OS << "ret";
      if (R->hasReturnValue())
        OS << " " << R->getReturnValue()->getType()->getString() << " "
           << ref(R->getReturnValue());
      break;
    }
    default:
      CGCM_UNREACHABLE("unknown instruction kind in printer");
    }
    if (I->hasLoc())
      OS << " !loc " << I->getLoc().Line << ":" << I->getLoc().Col;
    OS << "\n";
  }

  const Function &F;
  std::map<const Value *, std::string> Names;
  std::map<const BasicBlock *, std::string> BlockNames;
};

} // namespace

std::string Module::getString() const {
  std::ostringstream OS;
  OS << "; module '" << Name << "'\n";
  for (const auto &GV : Globals) {
    OS << "@" << GV->getName() << " = "
       << (GV->isConstant() ? "constant " : "global ")
       << GV->getValueType()->getString();
    if (GV->hasInitializer()) {
      static const char *Hex = "0123456789ABCDEF";
      OS << " init \"";
      for (uint8_t B : GV->getInitializer())
        OS << Hex[B >> 4] << Hex[B & 15];
      OS << "\"";
    }
    for (const GlobalVariable::Relocation &R : GV->getRelocations())
      OS << " reloc(" << R.ByteOffset << ", @" << R.Target->getName()
         << ")";
    OS << "\n";
  }
  for (const auto &F : Functions) {
    OS << "\n";
    FunctionPrinter(*F).print(OS);
  }
  return OS.str();
}
