//===- ir/Instructions.h - Instruction class hierarchy --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the CGCM IR: memory (alloca/load/store/gep),
/// arithmetic (binop/cmp/cast/select), control flow (br/ret/phi), calls,
/// and the KernelLaunch instruction that models spawning a GPU function
/// (the paper's `kernel<<<grid, block>>>(...)` syntax).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_INSTRUCTIONS_H
#define CGCM_IR_INSTRUCTIONS_H

#include "ir/Constants.h"
#include "ir/Value.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <vector>

namespace cgcm {

class BasicBlock;
class Function;

/// Common base of all instructions. Instructions are owned by their parent
/// basic block.
class Instruction : public User {
public:
  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// The function containing this instruction, or null if unlinked.
  Function *getFunction() const;

  bool isTerminator() const {
    return getKind() == ValueKind::Br || getKind() == ValueKind::Ret;
  }

  /// Unlinks this instruction from its parent block and deletes it. The
  /// instruction must have no remaining users.
  void eraseFromParent();

  /// Unlinks this instruction from its parent block, transferring
  /// ownership to the caller.
  std::unique_ptr<Instruction> removeFromParent();

  /// Returns a human-readable opcode name, e.g. "load".
  const char *getOpcodeName() const;

  /// The MiniC source position this instruction was lowered from.
  /// Pass-created instructions inherit the location of the construct
  /// they implement (e.g. management calls carry their launch's
  /// location); {0, 0} means no location.
  const SourceLoc &getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }
  bool hasLoc() const { return Loc.isValid(); }

  static bool classof(const Value *V) { return V->isInstruction(); }

protected:
  Instruction(ValueKind Kind, Type *Ty, std::string Name = "")
      : User(Kind, Ty, std::move(Name)) {}

private:
  BasicBlock *Parent = nullptr;
  SourceLoc Loc = SourceLoc::none();
};

/// Stack allocation of one object (or a dynamic count of objects) of the
/// allocated type; yields a pointer into the current frame.
class AllocaInst : public Instruction {
public:
  AllocaInst(Type *Allocated, PointerType *ResultTy, Value *ArraySize,
             std::string Name)
      : Instruction(ValueKind::Alloca, ResultTy, std::move(Name)),
        Allocated(Allocated) {
    if (ArraySize)
      addOperand(ArraySize);
  }

  Type *getAllocatedType() const { return Allocated; }
  bool hasArraySize() const { return getNumOperands() == 1; }
  Value *getArraySize() const {
    return hasArraySize() ? getOperand(0) : nullptr;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Alloca;
  }

private:
  Type *Allocated;
};

/// Loads a value of the pointee type through a pointer operand.
class LoadInst : public Instruction {
public:
  LoadInst(Value *Ptr, Type *ResultTy, std::string Name)
      : Instruction(ValueKind::Load, ResultTy, std::move(Name)) {
    addOperand(Ptr);
  }

  Value *getPointerOperand() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Load;
  }
};

/// Stores a value through a pointer operand.
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr, Type *VoidTy)
      : Instruction(ValueKind::Store, VoidTy) {
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointerOperand() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Store;
  }
};

/// C-style pointer arithmetic: steps a pointer by an index. The result
/// has the same pointer type; the byte offset is index * sizeof(pointee).
/// Array-to-element decay is expressed as a bitcast, so indexing a
/// multi-dimensional array is a chain of decay + gep pairs.
class GEPInst : public Instruction {
public:
  GEPInst(Value *Ptr, Value *Idx, PointerType *ResultTy, std::string Name)
      : Instruction(ValueKind::GEP, ResultTy, std::move(Name)) {
    addOperand(Ptr);
    addOperand(Idx);
  }

  Value *getPointerOperand() const { return getOperand(0); }
  Value *getIndexOperand() const { return getOperand(1); }

  /// The type whose size scales the index.
  Type *getSteppedType() const {
    return cast<PointerType>(getType())->getPointeeType();
  }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::GEP; }
};

/// Two-operand arithmetic and bitwise operations.
class BinOpInst : public Instruction {
public:
  enum class Op {
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    FAdd,
    FSub,
    FMul,
    FDiv,
    And,
    Or,
    Xor,
    Shl,
    AShr,
    LShr,
  };

  BinOpInst(Op Opcode, Value *LHS, Value *RHS, std::string Name)
      : Instruction(ValueKind::BinOp, LHS->getType(), std::move(Name)),
        Opcode(Opcode) {
    addOperand(LHS);
    addOperand(RHS);
  }

  Op getOp() const { return Opcode; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatingPointOp() const {
    return Opcode == Op::FAdd || Opcode == Op::FSub || Opcode == Op::FMul ||
           Opcode == Op::FDiv;
  }

  static const char *getOpName(Op Opcode);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::BinOp;
  }

private:
  Op Opcode;
};

/// Integer and ordered floating-point comparisons yielding i1.
class CmpInst : public Instruction {
public:
  enum class Predicate {
    EQ,
    NE,
    SLT,
    SLE,
    SGT,
    SGE,
    FOEQ,
    FONE,
    FOLT,
    FOLE,
    FOGT,
    FOGE,
  };

  CmpInst(Predicate Pred, Value *LHS, Value *RHS, IntegerType *I1Ty,
          std::string Name)
      : Instruction(ValueKind::Cmp, I1Ty, std::move(Name)), Pred(Pred) {
    addOperand(LHS);
    addOperand(RHS);
  }

  Predicate getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatPredicate() const { return Pred >= Predicate::FOEQ; }

  static const char *getPredicateName(Predicate Pred);

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Cmp; }

private:
  Predicate Pred;
};

/// Value conversions, including the subversive pointer/integer casts the
/// paper's type inference must see through.
class CastInst : public Instruction {
public:
  enum class Op {
    Trunc,
    ZExt,
    SExt,
    FPToSI,
    SIToFP,
    FPExt,
    FPTrunc,
    Bitcast,
    PtrToInt,
    IntToPtr,
  };

  CastInst(Op Opcode, Value *V, Type *DestTy, std::string Name)
      : Instruction(ValueKind::Cast, DestTy, std::move(Name)), Opcode(Opcode) {
    addOperand(V);
  }

  Op getOp() const { return Opcode; }
  Value *getValueOperand() const { return getOperand(0); }

  static const char *getOpName(Op Opcode);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Cast;
  }

private:
  Op Opcode;
};

/// A direct call. Intrinsics (malloc family, math, CGCM runtime entry
/// points) are calls to declared functions that the executor recognizes by
/// name.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, Type *ResultTy, const std::vector<Value *> &Args,
           std::string Name)
      : Instruction(ValueKind::Call, ResultTy, std::move(Name)),
        Callee(Callee) {
    for (Value *A : Args)
      addOperand(A);
  }

  Function *getCallee() const { return Callee; }
  void setCallee(Function *F) { Callee = F; }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }
  void setArg(unsigned I, Value *V) { setOperand(I, V); }

  /// Appends an actual argument (paired with Function::appendArgument).
  void appendArg(Value *V) { addOperand(V); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Call;
  }

private:
  Function *Callee;
};

/// Spawns a GPU function over a grid of blocks x threads. Operand layout:
/// [grid, block, args...]. The result is void; kernels communicate through
/// memory, which is exactly why communication management exists.
class KernelLaunchInst : public Instruction {
public:
  KernelLaunchInst(Function *Kernel, Value *Grid, Value *Block,
                   const std::vector<Value *> &Args, Type *VoidTy)
      : Instruction(ValueKind::KernelLaunch, VoidTy), Kernel(Kernel) {
    addOperand(Grid);
    addOperand(Block);
    for (Value *A : Args)
      addOperand(A);
  }

  Function *getKernel() const { return Kernel; }
  Value *getGrid() const { return getOperand(0); }
  Value *getBlock() const { return getOperand(1); }
  unsigned getNumArgs() const { return getNumOperands() - 2; }
  Value *getArg(unsigned I) const { return getOperand(I + 2); }
  void setArg(unsigned I, Value *V) { setOperand(I + 2, V); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::KernelLaunch;
  }

private:
  Function *Kernel;
};

/// SSA phi node. Incoming blocks are kept in a parallel array to the
/// incoming-value operands.
class PhiInst : public Instruction {
public:
  PhiInst(Type *Ty, std::string Name)
      : Instruction(ValueKind::Phi, Ty, std::move(Name)) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    addOperand(V);
    Blocks.push_back(BB);
  }

  unsigned getNumIncoming() const { return getNumOperands(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  void setIncomingValue(unsigned I, Value *V) { setOperand(I, V); }
  BasicBlock *getIncomingBlock(unsigned I) const { return Blocks[I]; }
  void setIncomingBlock(unsigned I, BasicBlock *BB) { Blocks[I] = BB; }

  /// The incoming value for \p BB, or null if \p BB is not a predecessor.
  Value *getIncomingValueFor(const BasicBlock *BB) const;

  /// Drops all incoming (value, block) pairs.
  void clearIncoming() {
    dropAllOperands();
    Blocks.clear();
  }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Phi; }

private:
  std::vector<BasicBlock *> Blocks;
};

/// Ternary select: cond ? tval : fval.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV, std::string Name)
      : Instruction(ValueKind::Select, TrueV->getType(), std::move(Name)) {
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Select;
  }
};

/// Conditional or unconditional branch. Successor blocks are fields, not
/// operands.
class BranchInst : public Instruction {
public:
  /// Unconditional branch.
  BranchInst(BasicBlock *Dest, Type *VoidTy)
      : Instruction(ValueKind::Br, VoidTy) {
    Succs[0] = Dest;
    Succs[1] = nullptr;
  }

  /// Conditional branch.
  BranchInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB,
             Type *VoidTy)
      : Instruction(ValueKind::Br, VoidTy) {
    addOperand(Cond);
    Succs[0] = TrueBB;
    Succs[1] = FalseBB;
  }

  bool isConditional() const { return getNumOperands() == 1; }
  Value *getCondition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return getOperand(0);
  }

  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned I) const {
    assert(I < getNumSuccessors() && "successor # out of range");
    return Succs[I];
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < getNumSuccessors() && "successor # out of range");
    Succs[I] = BB;
  }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Br; }

private:
  BasicBlock *Succs[2];
};

/// Function return, with an optional value.
class RetInst : public Instruction {
public:
  RetInst(Value *V, Type *VoidTy) : Instruction(ValueKind::Ret, VoidTy) {
    if (V)
      addOperand(V);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    return hasReturnValue() ? getOperand(0) : nullptr;
  }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Ret; }
};

} // namespace cgcm

#endif // CGCM_IR_INSTRUCTIONS_H
