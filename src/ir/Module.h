//===- ir/Module.h - Top-level IR container --------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns a TypeContext, a constant pool, globals, and functions.
/// As in the paper's model, all global variables share a single common
/// namespace with no distinction between CPU and GPU memory spaces until
/// the CGCM passes introduce one.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_MODULE_H
#define CGCM_IR_MODULE_H

#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Type.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cgcm {

class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  ~Module();

  const std::string &getName() const { return Name; }
  TypeContext &getContext() { return Ctx; }

  //===--------------------------------------------------------------------===//
  // Constants (uniqued per module)
  //===--------------------------------------------------------------------===//

  ConstantInt *getConstantInt(IntegerType *Ty, int64_t V);
  ConstantInt *getInt1(bool V);
  ConstantInt *getInt32(int32_t V);
  ConstantInt *getInt64(int64_t V);
  ConstantFP *getConstantFP(Type *Ty, double V);
  ConstantNull *getNullPtr(PointerType *Ty);

  //===--------------------------------------------------------------------===//
  // Globals
  //===--------------------------------------------------------------------===//

  GlobalVariable *createGlobal(Type *ValueTy, const std::string &Name,
                               bool IsConstant);
  GlobalVariable *getGlobal(const std::string &Name) const;
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  /// Creates a function. If a declaration with the same name and type
  /// already exists, returns it instead.
  Function *getOrCreateFunction(const std::string &Name, FunctionType *FTy);
  Function *getFunction(const std::string &Name) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Removes a dead function (no callers, no launches).
  void eraseFunction(Function *F);

  /// Renders the whole module in textual IR form.
  std::string getString() const;

private:
  std::string Name;
  TypeContext Ctx;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::vector<std::unique_ptr<Function>> Functions;
  std::map<std::pair<IntegerType *, int64_t>, std::unique_ptr<ConstantInt>>
      IntConstants;
  std::map<std::pair<Type *, double>, std::unique_ptr<ConstantFP>> FPConstants;
  std::map<PointerType *, std::unique_ptr<ConstantNull>> NullConstants;
};

} // namespace cgcm

#endif // CGCM_IR_MODULE_H
