//===- ir/Type.cpp - CGCM IR type system ----------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace cgcm;

uint64_t Type::getSizeInBytes() const {
  switch (Kind) {
  case TypeKind::Void:
    CGCM_UNREACHABLE("void type has no size");
  case TypeKind::Integer: {
    unsigned Bits = cast<IntegerType>(this)->getBitWidth();
    return Bits <= 8 ? 1 : Bits / 8;
  }
  case TypeKind::Float:
    return 4;
  case TypeKind::Double:
    return 8;
  case TypeKind::Pointer:
    return 8;
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return AT->getElementType()->getSizeInBytes() * AT->getNumElements();
  }
  case TypeKind::Function:
    CGCM_UNREACHABLE("function type has no size");
  }
  CGCM_UNREACHABLE("covered switch");
}

std::string Type::getString() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Integer:
    return "i" + std::to_string(cast<IntegerType>(this)->getBitWidth());
  case TypeKind::Float:
    return "float";
  case TypeKind::Double:
    return "double";
  case TypeKind::Pointer:
    return cast<PointerType>(this)->getPointeeType()->getString() + "*";
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return "[" + std::to_string(AT->getNumElements()) + " x " +
           AT->getElementType()->getString() + "]";
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::string S = FT->getReturnType()->getString() + " (";
    for (unsigned I = 0, E = FT->getNumParams(); I != E; ++I) {
      if (I)
        S += ", ";
      S += FT->getParamType(I)->getString();
    }
    return S + ")";
  }
  }
  CGCM_UNREACHABLE("covered switch");
}

namespace {
/// Trivially constructible concrete type for the singleton kinds.
class PrimitiveType : public Type {
public:
  PrimitiveType(TypeContext &Ctx, TypeKind Kind) : Type(Ctx, Kind) {}
};
} // namespace

TypeContext::TypeContext() {
  auto AddPrimitive = [&](Type::TypeKind Kind) -> Type * {
    OwnedTypes.push_back(std::make_unique<PrimitiveType>(*this, Kind));
    return OwnedTypes.back().get();
  };
  VoidTy = AddPrimitive(Type::TypeKind::Void);
  FloatTy = AddPrimitive(Type::TypeKind::Float);
  DoubleTy = AddPrimitive(Type::TypeKind::Double);

  auto AddInteger = [&](unsigned Bits) -> IntegerType * {
    auto *T = new IntegerType(*this, Bits);
    OwnedTypes.push_back(std::unique_ptr<Type>(T));
    return T;
  };
  Int1Ty = AddInteger(1);
  Int8Ty = AddInteger(8);
  Int16Ty = AddInteger(16);
  Int32Ty = AddInteger(32);
  Int64Ty = AddInteger(64);
}

TypeContext::~TypeContext() = default;

IntegerType *TypeContext::getIntegerTy(unsigned BitWidth) {
  switch (BitWidth) {
  case 1:
    return Int1Ty;
  case 8:
    return Int8Ty;
  case 16:
    return Int16Ty;
  case 32:
    return Int32Ty;
  case 64:
    return Int64Ty;
  default:
    reportFatalError("unsupported integer bit width " +
                     std::to_string(BitWidth));
  }
}

PointerType *TypeContext::getPointerTo(Type *Pointee) {
  assert(Pointee && "null pointee type");
  auto It = PointerTypes.find(Pointee);
  if (It != PointerTypes.end())
    return It->second;
  auto *T = new PointerType(*this, Pointee);
  OwnedTypes.push_back(std::unique_ptr<Type>(T));
  PointerTypes[Pointee] = T;
  return T;
}

ArrayType *TypeContext::getArrayTy(Type *Element, uint64_t NumElements) {
  assert(Element && "null element type");
  auto Key = std::make_pair(Element, NumElements);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return It->second;
  auto *T = new ArrayType(*this, Element, NumElements);
  OwnedTypes.push_back(std::unique_ptr<Type>(T));
  ArrayTypes[Key] = T;
  return T;
}

FunctionType *TypeContext::getFunctionTy(Type *Ret,
                                         std::vector<Type *> Params) {
  auto Key = std::make_pair(Ret, Params);
  auto It = FunctionTypes.find(Key);
  if (It != FunctionTypes.end())
    return It->second;
  auto *T = new FunctionType(*this, Ret, std::move(Params));
  OwnedTypes.push_back(std::unique_ptr<Type>(T));
  FunctionTypes[Key] = T;
  return T;
}
