//===- ir/Type.h - CGCM IR type system ------------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CGCM IR type system: void, integers (1/8/16/32/64 bits), float,
/// double, pointers, sized arrays, and function types. Types are uniqued
/// by a TypeContext and compared by pointer identity.
///
/// The type system is intentionally C-like and *unreliable* in the sense
/// the paper exploits: nothing stops a front end from bit-casting integers
/// to pointers, which is why the CGCM compiler infers pointer-ness from
/// use rather than from declared types (paper section 4).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_TYPE_H
#define CGCM_IR_TYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cgcm {

class TypeContext;

/// Base class of the IR type hierarchy. Instances are uniqued per
/// TypeContext, so pointer equality is type equality.
class Type {
public:
  enum class TypeKind {
    Void,
    Integer,
    Float,   ///< 32-bit IEEE float.
    Double,  ///< 64-bit IEEE double.
    Pointer,
    Array,
    Function,
  };

  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;
  virtual ~Type() = default;

  TypeKind getKind() const { return Kind; }
  TypeContext &getContext() const { return Ctx; }

  bool isVoidTy() const { return Kind == TypeKind::Void; }
  bool isIntegerTy() const { return Kind == TypeKind::Integer; }
  bool isFloatTy() const { return Kind == TypeKind::Float; }
  bool isDoubleTy() const { return Kind == TypeKind::Double; }
  bool isFloatingPointTy() const { return isFloatTy() || isDoubleTy(); }
  bool isPointerTy() const { return Kind == TypeKind::Pointer; }
  bool isArrayTy() const { return Kind == TypeKind::Array; }
  bool isFunctionTy() const { return Kind == TypeKind::Function; }

  /// \returns the size of a value of this type in bytes as laid out in
  /// simulated memory. Void and function types have no size (asserts).
  uint64_t getSizeInBytes() const;

  /// Renders the type in IR syntax, e.g. "[8 x double]*".
  std::string getString() const;

protected:
  Type(TypeContext &Ctx, TypeKind Kind) : Ctx(Ctx), Kind(Kind) {}

private:
  TypeContext &Ctx;
  TypeKind Kind;
};

/// An integer type with an explicit bit width (1, 8, 16, 32, or 64).
class IntegerType : public Type {
  friend class TypeContext;
  IntegerType(TypeContext &Ctx, unsigned BitWidth)
      : Type(Ctx, TypeKind::Integer), BitWidth(BitWidth) {}

public:
  unsigned getBitWidth() const { return BitWidth; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Integer;
  }

private:
  unsigned BitWidth;
};

/// A pointer to a pointee type. All pointers are 8 bytes.
class PointerType : public Type {
  friend class TypeContext;
  PointerType(TypeContext &Ctx, Type *Pointee)
      : Type(Ctx, TypeKind::Pointer), Pointee(Pointee) {}

public:
  Type *getPointeeType() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Pointer;
  }

private:
  Type *Pointee;
};

/// A fixed-size array of a homogeneous element type.
class ArrayType : public Type {
  friend class TypeContext;
  ArrayType(TypeContext &Ctx, Type *Element, uint64_t NumElements)
      : Type(Ctx, TypeKind::Array), Element(Element),
        NumElements(NumElements) {}

public:
  Type *getElementType() const { return Element; }
  uint64_t getNumElements() const { return NumElements; }

  static bool classof(const Type *T) { return T->getKind() == TypeKind::Array; }

private:
  Type *Element;
  uint64_t NumElements;
};

/// A function signature: return type plus parameter types.
class FunctionType : public Type {
  friend class TypeContext;
  FunctionType(TypeContext &Ctx, Type *Ret, std::vector<Type *> Params)
      : Type(Ctx, TypeKind::Function), Ret(Ret), Params(std::move(Params)) {}

public:
  Type *getReturnType() const { return Ret; }
  const std::vector<Type *> &getParamTypes() const { return Params; }
  unsigned getNumParams() const { return Params.size(); }
  Type *getParamType(unsigned I) const { return Params[I]; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Function;
  }

private:
  Type *Ret;
  std::vector<Type *> Params;
};

/// Owns and uniques all types for one Module. Distinct structural types
/// map to distinct objects; equal structure maps to the same object.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;
  ~TypeContext();

  Type *getVoidTy() { return VoidTy; }
  Type *getFloatTy() { return FloatTy; }
  Type *getDoubleTy() { return DoubleTy; }
  IntegerType *getInt1Ty() { return Int1Ty; }
  IntegerType *getInt8Ty() { return Int8Ty; }
  IntegerType *getInt16Ty() { return Int16Ty; }
  IntegerType *getInt32Ty() { return Int32Ty; }
  IntegerType *getInt64Ty() { return Int64Ty; }
  IntegerType *getIntegerTy(unsigned BitWidth);

  PointerType *getPointerTo(Type *Pointee);
  ArrayType *getArrayTy(Type *Element, uint64_t NumElements);
  FunctionType *getFunctionTy(Type *Ret, std::vector<Type *> Params);

private:
  std::vector<std::unique_ptr<Type>> OwnedTypes;
  Type *VoidTy;
  Type *FloatTy;
  Type *DoubleTy;
  IntegerType *Int1Ty;
  IntegerType *Int8Ty;
  IntegerType *Int16Ty;
  IntegerType *Int32Ty;
  IntegerType *Int64Ty;
  std::map<Type *, PointerType *> PointerTypes;
  std::map<std::pair<Type *, uint64_t>, ArrayType *> ArrayTypes;
  std::map<std::pair<Type *, std::vector<Type *>>, FunctionType *>
      FunctionTypes;
};

} // namespace cgcm

#endif // CGCM_IR_TYPE_H
