//===- ir/Value.cpp - Base of the IR value hierarchy ----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include <algorithm>

using namespace cgcm;

Value::~Value() {
  assert(Users.empty() && "deleting a value that still has users");
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  // Take a snapshot: setOperand mutates the use list we are iterating.
  std::vector<User *> Snapshot = Users;
  for (User *U : Snapshot)
    for (unsigned I = 0, E = U->getNumOperands(); I != E; ++I)
      if (U->getOperand(I) == this)
        U->setOperand(I, New);
  assert(Users.empty() && "RAUW left stale uses behind");
}

void User::addOperand(Value *V) {
  assert(V && "null operand");
  Operands.push_back(V);
  V->Users.push_back(this);
}

void User::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "setOperand() out of range");
  assert(V && "null operand");
  Value *Old = Operands[I];
  if (Old == V)
    return;
  auto &OldUsers = Old->Users;
  auto It = std::find(OldUsers.begin(), OldUsers.end(), this);
  assert(It != OldUsers.end() && "use list out of sync");
  OldUsers.erase(It);
  Operands[I] = V;
  V->Users.push_back(this);
}

void User::removeOperand(unsigned I) {
  assert(I < Operands.size() && "removeOperand() out of range");
  Value *Old = Operands[I];
  auto &OldUsers = Old->Users;
  auto It = std::find(OldUsers.begin(), OldUsers.end(), this);
  assert(It != OldUsers.end() && "use list out of sync");
  OldUsers.erase(It);
  Operands.erase(Operands.begin() + I);
}

void User::dropAllOperands() {
  for (Value *V : Operands) {
    auto &VUsers = V->Users;
    auto It = std::find(VUsers.begin(), VUsers.end(), this);
    assert(It != VUsers.end() && "use list out of sync");
    VUsers.erase(It);
  }
  Operands.clear();
}
