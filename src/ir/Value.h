//===- ir/Value.h - Base of the IR value hierarchy ------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the base of everything that can appear as an operand: function
/// arguments, constants, globals, functions, and instructions. User extends
/// Value with an operand list; def-use edges are maintained in both
/// directions so passes can enumerate users and rewrite uses (RAUW).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_VALUE_H
#define CGCM_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cassert>
#include <string>
#include <vector>

namespace cgcm {

class User;

/// Base class of all IR values. Every value has a type and an optional
/// name; the printer falls back to per-function numbering for unnamed
/// values.
class Value {
public:
  enum class ValueKind {
    Argument,
    BasicBlock,
    ConstantInt,
    ConstantFP,
    ConstantNull,
    GlobalVariable,
    Function,
    // Instruction kinds. Keep InstBegin/InstEnd in sync with the range.
    InstBegin,
    Alloca = InstBegin,
    Load,
    Store,
    GEP,
    BinOp,
    Cmp,
    Cast,
    Call,
    KernelLaunch,
    Phi,
    Select,
    Br,
    Ret,
    InstEnd = Ret,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getKind() const { return Kind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }
  bool hasName() const { return !Name.empty(); }

  /// All users of this value. A user appears once per use, so a user with
  /// two identical operands appears twice.
  const std::vector<User *> &users() const { return Users; }
  bool hasUses() const { return !Users.empty(); }
  unsigned getNumUses() const { return Users.size(); }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  bool isInstruction() const {
    return Kind >= ValueKind::InstBegin && Kind <= ValueKind::InstEnd;
  }

protected:
  Value(ValueKind Kind, Type *Ty, std::string Name = "")
      : Kind(Kind), Ty(Ty), Name(std::move(Name)) {}

private:
  friend class User;

  ValueKind Kind;
  Type *Ty;
  std::string Name;
  std::vector<User *> Users;
};

/// A value that references other values as operands.
class User : public Value {
public:
  ~User() override { dropAllOperands(); }

  unsigned getNumOperands() const { return Operands.size(); }

  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "getOperand() out of range");
    return Operands[I];
  }

  /// Replaces operand \p I, maintaining use lists on both old and new
  /// values.
  void setOperand(unsigned I, Value *V);

  const std::vector<Value *> &operands() const { return Operands; }

  /// Removes this user from the use lists of all of its operands and
  /// clears the operand list.
  void dropAllOperands();

protected:
  User(ValueKind Kind, Type *Ty, std::string Name = "")
      : Value(Kind, Ty, std::move(Name)) {}

  /// Appends \p V to the operand list, registering the use.
  void addOperand(Value *V);

  /// Removes operand \p I entirely (shrinking the operand list).
  void removeOperand(unsigned I);

private:
  std::vector<Value *> Operands;
};

} // namespace cgcm

#endif // CGCM_IR_VALUE_H
