//===- ir/Verifier.cpp - IR structural invariant checking ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace cgcm;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Function &F) : F(F) {}

  bool run(std::string *Err) {
    if (!checkBlocks() || !checkTypes() || !checkPhis() || !checkDominance() ||
        !checkKernelRestrictions()) {
      if (Err)
        *Err = Message;
      return false;
    }
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    std::ostringstream OS;
    OS << "in function '" << F.getName() << "': " << Msg;
    Message = OS.str();
    return false;
  }

  bool checkBlocks() {
    std::set<const BasicBlock *> InFunction;
    for (const auto &BB : F)
      InFunction.insert(BB.get());
    for (const auto &BB : F) {
      if (BB->empty())
        return fail("empty basic block '" + BB->getName() + "'");
      if (!BB->getTerminator())
        return fail("block '" + BB->getName() + "' lacks a terminator");
      bool SeenNonPhi = false;
      for (const auto &I : *BB) {
        if (I->isTerminator() && I.get() != BB->back())
          return fail("terminator in the middle of block '" + BB->getName() +
                      "'");
        if (isa<PhiInst>(I.get())) {
          if (SeenNonPhi)
            return fail("phi after non-phi in block '" + BB->getName() + "'");
        } else {
          SeenNonPhi = true;
        }
        if (I->getParent() != BB.get())
          return fail("instruction parent link is stale");
      }
      for (BasicBlock *Succ : BB->successors())
        if (!InFunction.count(Succ))
          return fail("branch to block outside the function");
    }
    return true;
  }

  bool checkTypes() {
    for (const Instruction *I : F.instructions()) {
      switch (I->getKind()) {
      case Value::ValueKind::Load: {
        const auto *PT = dyn_cast<PointerType>(I->getOperand(0)->getType());
        if (!PT)
          return fail("load from a non-pointer operand");
        if (PT->getPointeeType() != I->getType())
          return fail("load result type does not match pointee type");
        break;
      }
      case Value::ValueKind::Store: {
        const auto *SI = cast<StoreInst>(I);
        const auto *PT =
            dyn_cast<PointerType>(SI->getPointerOperand()->getType());
        if (!PT)
          return fail("store to a non-pointer operand");
        if (PT->getPointeeType() != SI->getValueOperand()->getType())
          return fail("store value type does not match pointee type");
        break;
      }
      case Value::ValueKind::GEP: {
        if (!isa<PointerType>(I->getOperand(0)->getType()))
          return fail("gep on a non-pointer operand");
        if (!I->getOperand(1)->getType()->isIntegerTy())
          return fail("gep index is not an integer");
        break;
      }
      case Value::ValueKind::BinOp: {
        const auto *B = cast<BinOpInst>(I);
        if (B->getLHS()->getType() != B->getRHS()->getType())
          return fail("binop operand types differ");
        if (B->isFloatingPointOp() != B->getLHS()->getType()->isFloatingPointTy())
          return fail("binop opcode does not match operand types");
        break;
      }
      case Value::ValueKind::Cmp: {
        const auto *C = cast<CmpInst>(I);
        if (C->getLHS()->getType() != C->getRHS()->getType())
          return fail("cmp operand types differ");
        break;
      }
      case Value::ValueKind::Call: {
        const auto *C = cast<CallInst>(I);
        const FunctionType *FTy = C->getCallee()->getFunctionType();
        if (C->getNumArgs() != FTy->getNumParams())
          return fail("call to '" + C->getCallee()->getName() +
                      "' with wrong argument count");
        for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A)
          if (C->getArg(A)->getType() != FTy->getParamType(A))
            return fail("call to '" + C->getCallee()->getName() +
                        "' argument " + std::to_string(A) + " type mismatch");
        if (C->getType() != FTy->getReturnType())
          return fail("call result type mismatch");
        break;
      }
      case Value::ValueKind::KernelLaunch: {
        const auto *K = cast<KernelLaunchInst>(I);
        if (!K->getKernel()->isKernel())
          return fail("launch of non-kernel function '" +
                      K->getKernel()->getName() + "'");
        if (!K->getGrid()->getType()->isIntegerTy() ||
            !K->getBlock()->getType()->isIntegerTy())
          return fail("launch grid/block dimensions must be integers");
        const FunctionType *FTy = K->getKernel()->getFunctionType();
        if (K->getNumArgs() != FTy->getNumParams())
          return fail("launch of '" + K->getKernel()->getName() +
                      "' with wrong argument count");
        for (unsigned A = 0, E = K->getNumArgs(); A != E; ++A)
          if (K->getArg(A)->getType() != FTy->getParamType(A))
            return fail("launch of '" + K->getKernel()->getName() +
                        "' argument " + std::to_string(A) + " type mismatch");
        // Live-in hygiene: passing the same underlying pointer twice
        // gives the management pass two independent map/release pairings
        // for one allocation unit — and if the two uses infer different
        // pointer degrees, a map/mapArray double-booking. Casts do not
        // create new allocation units, so compare cast-stripped roots.
        std::map<const Value *, Type *> PointerRoots;
        for (unsigned A = 0, E = K->getNumArgs(); A != E; ++A) {
          const Value *Arg = K->getArg(A);
          if (!Arg->getType()->isPointerTy())
            continue;
          const Value *Root = Arg;
          while (const auto *CV = dyn_cast<CastInst>(Root))
            Root = CV->getValueOperand();
          auto [It, Inserted] = PointerRoots.insert({Root, Arg->getType()});
          if (Inserted)
            continue;
          if (It->second == Arg->getType())
            return fail("launch of '" + K->getKernel()->getName() +
                        "' passes the same pointer live-in more than once");
          return fail("launch of '" + K->getKernel()->getName() +
                      "' passes the same pointer live-in at inconsistent "
                      "pointer degrees (" +
                      It->second->getString() + " and " +
                      Arg->getType()->getString() + ")");
        }
        break;
      }
      case Value::ValueKind::Br: {
        const auto *B = cast<BranchInst>(I);
        if (B->isConditional()) {
          const auto *IT =
              dyn_cast<IntegerType>(B->getCondition()->getType());
          if (!IT || IT->getBitWidth() != 1)
            return fail("branch condition is not i1");
        }
        break;
      }
      case Value::ValueKind::Ret: {
        const auto *R = cast<RetInst>(I);
        Type *RetTy = F.getReturnType();
        if (R->hasReturnValue()) {
          if (R->getReturnValue()->getType() != RetTy)
            return fail("returned value type does not match function type");
        } else if (!RetTy->isVoidTy()) {
          return fail("missing return value in non-void function");
        }
        break;
      }
      default:
        break;
      }
    }
    return true;
  }

  bool checkPhis() {
    for (const auto &BB : F) {
      std::vector<BasicBlock *> Preds = BB->predecessors();
      for (const auto &I : *BB) {
        const auto *P = dyn_cast<PhiInst>(I.get());
        if (!P)
          break;
        if (P->getNumIncoming() != Preds.size())
          return fail("phi incoming count does not match predecessors in '" +
                      BB->getName() + "'");
        for (unsigned V = 0, E = P->getNumIncoming(); V != E; ++V) {
          if (std::find(Preds.begin(), Preds.end(), P->getIncomingBlock(V)) ==
              Preds.end())
            return fail("phi references a non-predecessor block");
          if (P->getIncomingValue(V)->getType() != P->getType())
            return fail("phi incoming value type mismatch");
        }
      }
    }
    return true;
  }

  /// Computes dominators with the classic iterative set algorithm (blocks
  /// here are few) and checks defs dominate uses.
  bool checkDominance() {
    std::vector<const BasicBlock *> Blocks;
    std::map<const BasicBlock *, unsigned> Index;
    for (const auto &BB : F) {
      Index[BB.get()] = Blocks.size();
      Blocks.push_back(BB.get());
    }
    unsigned N = Blocks.size();
    // Dom[i] = bitset of blocks dominating block i.
    std::vector<std::set<unsigned>> Dom(N);
    std::set<unsigned> All;
    for (unsigned I = 0; I != N; ++I)
      All.insert(I);
    for (unsigned I = 0; I != N; ++I)
      Dom[I] = All;
    Dom[0] = {0};
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned I = 1; I != N; ++I) {
        std::set<unsigned> NewDom = All;
        std::vector<BasicBlock *> Preds = Blocks[I]->predecessors();
        if (Preds.empty()) {
          NewDom = {I}; // Unreachable block: dominated only by itself.
        } else {
          for (BasicBlock *P : Preds) {
            const std::set<unsigned> &PD = Dom[Index[P]];
            std::set<unsigned> Tmp;
            std::set_intersection(NewDom.begin(), NewDom.end(), PD.begin(),
                                  PD.end(), std::inserter(Tmp, Tmp.begin()));
            NewDom = std::move(Tmp);
          }
          NewDom.insert(I);
        }
        if (NewDom != Dom[I]) {
          Dom[I] = std::move(NewDom);
          Changed = true;
        }
      }
    }

    auto Dominates = [&](const Instruction *Def, const Instruction *Use,
                         const BasicBlock *UseBB) {
      const BasicBlock *DefBB = Def->getParent();
      if (DefBB != UseBB)
        return Dom[Index[UseBB]].count(Index[DefBB]) != 0;
      for (const auto &I : *DefBB) {
        if (I.get() == Def)
          return true;
        if (I.get() == Use)
          return false;
      }
      return false;
    };

    for (const auto &BB : F) {
      for (const auto &I : *BB) {
        for (unsigned OpI = 0, E = I->getNumOperands(); OpI != E; ++OpI) {
          const auto *Def = dyn_cast<Instruction>(I->getOperand(OpI));
          if (!Def)
            continue;
          if (Def->getFunction() != &F)
            return fail("operand defined in a different function");
          if (const auto *P = dyn_cast<PhiInst>(I.get())) {
            // Phi uses must dominate the end of the incoming block.
            const BasicBlock *In = P->getIncomingBlock(OpI);
            if (Def->getParent() != In &&
                !Dom[Index[In]].count(Index[Def->getParent()]))
              return fail("phi incoming value does not dominate its edge");
            continue;
          }
          if (!Dominates(Def, I.get(), BB.get()))
            return fail("definition does not dominate use of '" +
                        std::string(Def->getOpcodeName()) + "' result");
        }
      }
    }
    return true;
  }

  /// The paper's restriction: pointers may not be stored inside GPU
  /// functions (section 2.3). Enforced here on declared types; the GPU
  /// executor additionally enforces it dynamically.
  bool checkKernelRestrictions() {
    if (!F.isKernel())
      return true;
    for (const Instruction *I : F.instructions())
      if (const auto *SI = dyn_cast<StoreInst>(I))
        if (SI->getValueOperand()->getType()->isPointerTy() &&
            !isa<AllocaInst>(SI->getPointerOperand()))
          // Spills to the kernel's own frame (direct alloca targets) are
          // fine; the restriction is about pointers escaping into
          // GPU-visible data structures.
          return fail("kernel stores a pointer, which CGCM forbids");
    return true;
  }

  const Function &F;
  std::string Message;
};

} // namespace

bool cgcm::verifyFunction(const Function &F, std::string *Err) {
  if (F.isDeclaration())
    return true;
  return VerifierImpl(F).run(Err);
}

bool cgcm::verifyModule(const Module &M, std::string *Err) {
  for (const auto &F : M.functions())
    if (!verifyFunction(*F, Err))
      return false;
  return true;
}
