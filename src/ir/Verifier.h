//===- ir/Verifier.h - IR structural invariant checking --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks structural IR invariants after construction and after every
/// transformation pass: terminated blocks, operand typing, phi/predecessor
/// agreement, def-before-use within blocks and across the dominator tree,
/// and the CGCM kernel restrictions.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_IR_VERIFIER_H
#define CGCM_IR_VERIFIER_H

#include <string>

namespace cgcm {

class Module;
class Function;

/// Verifies \p M. On failure returns false and, if \p Err is non-null,
/// stores a description of the first violation found.
bool verifyModule(const Module &M, std::string *Err = nullptr);

/// Verifies a single function definition.
bool verifyFunction(const Function &F, std::string *Err = nullptr);

} // namespace cgcm

#endif // CGCM_IR_VERIFIER_H
