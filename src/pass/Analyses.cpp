//===- pass/Analyses.cpp - Cached analysis wrappers -------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "pass/Analyses.h"

#include "pass/AnalysisManager.h"

using namespace cgcm;

namespace {

/// FNV-1a, the usual small-data mixer.
inline uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}

uint64_t hashString(uint64_t H, const std::string &S) {
  for (char C : S)
    H = mix(H, static_cast<uint64_t>(static_cast<unsigned char>(C)));
  return mix(H, S.size());
}

} // namespace

uint64_t cgcm::fingerprintCFG(const Function &F) {
  // Index blocks by position so the fingerprint is content-based, not
  // address-based.
  std::map<const BasicBlock *, uint64_t> Index;
  uint64_t N = 0;
  for (const auto &BB : F)
    Index[BB.get()] = N++;
  uint64_t H = mix(0xcbf29ce484222325ull, N);
  for (const auto &BB : F) {
    H = mix(H, Index[BB.get()]);
    for (const BasicBlock *S : BB->successors())
      H = mix(H, Index.count(S) ? Index[S] + 1 : 0);
  }
  return H;
}

uint64_t cgcm::fingerprintCallStructure(const Module &M) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    H = hashString(H, F->getName());
    for (const Instruction *I : F->instructions()) {
      const auto *CI = dyn_cast<CallInst>(I);
      if (!CI || CI->getCallee()->isDeclaration())
        continue;
      H = hashString(H, CI->getCallee()->getName());
    }
  }
  return H;
}

std::unique_ptr<DominatorTree>
DominatorTreeAnalysis::run(Function &F, FunctionAnalysisManager &AM) {
  (void)AM;
  return std::make_unique<DominatorTree>(F);
}

std::unique_ptr<LoopInfo> LoopAnalysis::run(Function &F,
                                            FunctionAnalysisManager &AM) {
  return std::make_unique<LoopInfo>(F,
                                    AM.getResult<DominatorTreeAnalysis>(F));
}

std::unique_ptr<CallGraph> CallGraphAnalysis::run(Module &M,
                                                  ModuleAnalysisManager &AM) {
  (void)AM;
  return std::make_unique<CallGraph>(M);
}

uint64_t cgcm::fingerprintModuleText(const Module &M) {
  return hashString(0xcbf29ce484222325ull, M.getString());
}

std::unique_ptr<CommCostReport>
CommCostAnalysis::run(Module &M, ModuleAnalysisManager &AM) {
  (void)AM;
  return std::make_unique<CommCostReport>(runCommCostAnalysis(M));
}
