//===- pass/Analyses.h - Cached analysis wrappers ---------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters presenting the concrete analyses (`src/analysis/`) to the
/// analysis managers. Each wrapper names the analysis, owns its identity
/// key, knows how to compute it, and — for the stale-analysis detector —
/// provides a *fingerprint* of exactly the IR features the result
/// depends on:
///
///  * DominatorTree / LoopInfo depend only on the CFG (blocks and
///    terminator targets); instruction-level queries re-read the block
///    contents on demand, so instruction insertion/deletion does not
///    stale them;
///  * CallGraph depends on the set of defined functions and the call
///    instructions whose callee is defined (calls to declarations — the
///    runtime API — are invisible to it).
///
/// A pass that mutates the IR without changing an analysis's fingerprint
/// may preserve it; the detector (AnalysisManager.h) enforces exactly
/// this contract.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_PASS_ANALYSES_H
#define CGCM_PASS_ANALYSES_H

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/commcost/CommCost.h"
#include "pass/PreservedAnalyses.h"

#include <cstdint>
#include <memory>

namespace cgcm {

class FunctionAnalysisManager;
class ModuleAnalysisManager;

/// Fingerprint of \p F's control-flow graph: block count plus every
/// terminator edge, by block position. Instruction-level changes do not
/// alter it.
uint64_t fingerprintCFG(const Function &F);

/// Fingerprint of \p M's call structure: the defined-function set and
/// every call to a defined callee, in program order.
uint64_t fingerprintCallStructure(const Module &M);

/// Fingerprint of \p M's full printed text. The coarsest (and safest)
/// fingerprint: any IR change invalidates. Used by analyses whose result
/// depends on instruction-level content (sizes, constants, locations),
/// not just structure.
uint64_t fingerprintModuleText(const Module &M);

//===----------------------------------------------------------------------===//
// Function-level analyses
//===----------------------------------------------------------------------===//

struct DominatorTreeAnalysis {
  using Result = DominatorTree;
  static AnalysisKey ID() {
    static char Tag;
    return &Tag;
  }
  static const char *name() { return "dominators"; }
  static uint64_t fingerprint(const Function &F) { return fingerprintCFG(F); }
  static std::unique_ptr<DominatorTree> run(Function &F,
                                            FunctionAnalysisManager &AM);
};

struct LoopAnalysis {
  using Result = LoopInfo;
  static AnalysisKey ID() {
    static char Tag;
    return &Tag;
  }
  static const char *name() { return "loops"; }
  static uint64_t fingerprint(const Function &F) { return fingerprintCFG(F); }
  static std::unique_ptr<LoopInfo> run(Function &F,
                                       FunctionAnalysisManager &AM);
};

//===----------------------------------------------------------------------===//
// Module-level analyses
//===----------------------------------------------------------------------===//

struct CallGraphAnalysis {
  using Result = CallGraph;
  static AnalysisKey ID() {
    static char Tag;
    return &Tag;
  }
  static const char *name() { return "callgraph"; }
  static uint64_t fingerprint(const Module &M) {
    return fingerprintCallStructure(M);
  }
  static std::unique_ptr<CallGraph> run(Module &M, ModuleAnalysisManager &AM);
};

/// Static communication-cost and lifecycle prediction (CommCost.h). The
/// result depends on everything — sizes, constants, loop bounds, source
/// locations — so it fingerprints the full module text and is preserved
/// only by passes that change nothing at all.
struct CommCostAnalysis {
  using Result = CommCostReport;
  static AnalysisKey ID() {
    static char Tag;
    return &Tag;
  }
  static const char *name() { return "commcost"; }
  static uint64_t fingerprint(const Module &M) {
    return fingerprintModuleText(M);
  }
  static std::unique_ptr<CommCostReport> run(Module &M,
                                             ModuleAnalysisManager &AM);
};

} // namespace cgcm

#endif // CGCM_PASS_ANALYSES_H
