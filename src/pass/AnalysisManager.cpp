//===- pass/AnalysisManager.cpp - Cached, invalidatable analyses ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "pass/AnalysisManager.h"

using namespace cgcm;

[[noreturn]] void cgcm::detail::reportStaleAnalysis(const char *Analysis,
                                                    const std::string &Unit) {
  reportFatalError("stale analysis: '" + std::string(Analysis) + "' for '" +
                   Unit +
                   "' consumed after the IR changed without invalidation");
}

//===----------------------------------------------------------------------===//
// FunctionAnalysisManager
//===----------------------------------------------------------------------===//

void FunctionAnalysisManager::invalidate(Function &F) {
  auto It = Cache.lower_bound({&F, nullptr});
  while (It != Cache.end() && It->first.first == &F) {
    if (PI)
      PI->runAnalysisInvalidated(It->second.Name, F.getName());
    It = Cache.erase(It);
  }
}

void FunctionAnalysisManager::invalidate(const PreservedAnalyses &PA) {
  if (PA.areAllPreserved())
    return;
  for (auto It = Cache.begin(); It != Cache.end();) {
    if (!PA.isPreserved(It->first.second)) {
      if (PI)
        PI->runAnalysisInvalidated(It->second.Name,
                                   It->first.first->getName());
      It = Cache.erase(It);
    } else {
      ++It;
    }
  }
}

void FunctionAnalysisManager::clear() { Cache.clear(); }

std::vector<AnalysisCacheStats> FunctionAnalysisManager::getCacheStats() const {
  std::vector<AnalysisCacheStats> Out;
  for (const auto &[K, C] : Counters) {
    (void)K;
    Out.push_back({C.Name, C.Constructions, C.Hits});
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// ModuleAnalysisManager
//===----------------------------------------------------------------------===//

void ModuleAnalysisManager::invalidate(const PreservedAnalyses &PA) {
  if (PA.areAllPreserved())
    return;
  for (auto It = Cache.begin(); It != Cache.end();) {
    if (!PA.isPreserved(It->first)) {
      if (PI)
        PI->runAnalysisInvalidated(It->second.Name, "<module>");
      It = Cache.erase(It);
    } else {
      ++It;
    }
  }
  FAM.invalidate(PA);
}

void ModuleAnalysisManager::clear() {
  Cache.clear();
  FAM.clear();
}

std::vector<AnalysisCacheStats> ModuleAnalysisManager::getCacheStats() const {
  std::vector<AnalysisCacheStats> Out;
  for (const auto &[K, C] : Counters) {
    (void)K;
    Out.push_back({C.Name, C.Constructions, C.Hits});
  }
  for (const AnalysisCacheStats &S : FAM.getCacheStats())
    Out.push_back(S);
  return Out;
}

uint64_t ModuleAnalysisManager::getConstructionCount(
    const std::string &AnalysisName) const {
  uint64_t N = 0;
  for (const AnalysisCacheStats &S : getCacheStats())
    if (S.Name == AnalysisName)
      N += S.Constructions;
  return N;
}

uint64_t
ModuleAnalysisManager::getHitCount(const std::string &AnalysisName) const {
  uint64_t N = 0;
  for (const AnalysisCacheStats &S : getCacheStats())
    if (S.Name == AnalysisName)
      N += S.Hits;
  return N;
}
