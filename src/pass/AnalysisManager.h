//===- pass/AnalysisManager.h - Cached, invalidatable analyses --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazily computes and caches analyses so every pass (and every
/// iteration of a convergence loop) that needs dominators, loops, or the
/// call graph asks the manager instead of rebuilding from scratch
/// (docs/PassManager.md). Results live until invalidated: the pass
/// manager intersects each pass's PreservedAnalyses with the caches, and
/// passes doing targeted mutation may invalidate single functions
/// mid-run.
///
/// Every construction and every cache hit is counted per analysis —
/// `--time-passes` and the ablation bench report these — and each cached
/// result carries a fingerprint of the IR features it depends on. With
/// stale checking enabled (setStaleCheckingEnabled, or automatically
/// under `--verify-each`), a cache hit whose fingerprint no longer
/// matches the IR is a fatal error: some pass mutated the IR and kept
/// consuming the cached result without invalidating it.
///
/// One manager serves one module; function results are keyed by
/// Function pointer, which is stable (no pass deletes functions).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_PASS_ANALYSISMANAGER_H
#define CGCM_PASS_ANALYSISMANAGER_H

#include "ir/Module.h"
#include "pass/PassInstrumentation.h"
#include "pass/PreservedAnalyses.h"
#include "support/ErrorHandling.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cgcm {

/// Per-analysis cache accounting, exposed for --time-passes and the
/// ablation bench.
struct AnalysisCacheStats {
  std::string Name;
  uint64_t Constructions = 0;
  uint64_t Hits = 0;
};

namespace detail {

/// Type-erased owner of one analysis result.
struct CachedResult {
  std::shared_ptr<void> Result;
  uint64_t Fingerprint = 0;
  const char *Name = "";
};

struct CacheCounter {
  const char *Name = "";
  uint64_t Constructions = 0;
  uint64_t Hits = 0;
};

[[noreturn]] void reportStaleAnalysis(const char *Analysis,
                                      const std::string &Unit);

} // namespace detail

//===----------------------------------------------------------------------===//
// FunctionAnalysisManager
//===----------------------------------------------------------------------===//

class FunctionAnalysisManager {
public:
  /// The cached result of analysis \p A on \p F, computing it on a miss.
  /// The reference stays valid until the entry is invalidated.
  template <typename A> typename A::Result &getResult(Function &F) {
    const AnalysisKey K = A::ID();
    detail::CacheCounter &C = Counters[K];
    C.Name = A::name();
    auto It = Cache.find({&F, K});
    if (It != Cache.end()) {
      ++C.Hits;
      if (StaleChecking && It->second.Fingerprint != A::fingerprint(F))
        detail::reportStaleAnalysis(A::name(), F.getName());
      return *static_cast<typename A::Result *>(It->second.Result.get());
    }
    ++C.Constructions;
    // run() may recurse into getResult (loops need dominators), so do not
    // hold an iterator across it.
    std::unique_ptr<typename A::Result> R = A::run(F, *this);
    typename A::Result *Raw = R.release();
    detail::CachedResult E;
    E.Result = std::shared_ptr<void>(static_cast<void *>(Raw), [](void *P) {
      delete static_cast<typename A::Result *>(P);
    });
    E.Fingerprint = A::fingerprint(F);
    E.Name = A::name();
    Cache[{&F, K}] = std::move(E);
    if (PI)
      PI->runAnalysisComputed(A::name(), F.getName());
    return *Raw;
  }

  /// True if \p A is currently cached for \p F (no side effects).
  template <typename A> bool isCached(const Function &F) const {
    return Cache.count({const_cast<Function *>(&F), A::ID()}) != 0;
  }

  /// Drops every cached analysis of \p F (the function was mutated).
  void invalidate(Function &F);

  /// Drops, for every function, the analyses \p PA does not preserve.
  void invalidate(const PreservedAnalyses &PA);

  void clear();

  void setInstrumentation(PassInstrumentation *P) { PI = P; }
  void setStaleCheckingEnabled(bool V) { StaleChecking = V; }
  bool isStaleCheckingEnabled() const { return StaleChecking; }

  std::vector<AnalysisCacheStats> getCacheStats() const;

private:
  std::map<std::pair<Function *, AnalysisKey>, detail::CachedResult> Cache;
  std::map<AnalysisKey, detail::CacheCounter> Counters;
  PassInstrumentation *PI = nullptr;
  bool StaleChecking = false;
};

//===----------------------------------------------------------------------===//
// ModuleAnalysisManager
//===----------------------------------------------------------------------===//

class ModuleAnalysisManager {
public:
  FunctionAnalysisManager &getFunctionAnalysisManager() { return FAM; }

  template <typename A> typename A::Result &getResult(Module &M) {
    const AnalysisKey K = A::ID();
    detail::CacheCounter &C = Counters[K];
    C.Name = A::name();
    auto It = Cache.find(K);
    if (It != Cache.end()) {
      ++C.Hits;
      if (StaleChecking && It->second.Fingerprint != A::fingerprint(M))
        detail::reportStaleAnalysis(A::name(), "<module>");
      return *static_cast<typename A::Result *>(It->second.Result.get());
    }
    ++C.Constructions;
    std::unique_ptr<typename A::Result> R = A::run(M, *this);
    typename A::Result *Raw = R.release();
    detail::CachedResult E;
    E.Result = std::shared_ptr<void>(static_cast<void *>(Raw), [](void *P) {
      delete static_cast<typename A::Result *>(P);
    });
    E.Fingerprint = A::fingerprint(M);
    E.Name = A::name();
    Cache[K] = std::move(E);
    if (PI)
      PI->runAnalysisComputed(A::name(), "<module>");
    return *Raw;
  }

  template <typename A> bool isCached() const {
    return Cache.count(A::ID()) != 0;
  }

  /// Module-level targeted invalidation.
  template <typename A> void invalidateResult() {
    auto It = Cache.find(A::ID());
    if (It == Cache.end())
      return;
    if (PI)
      PI->runAnalysisInvalidated(It->second.Name, "<module>");
    Cache.erase(It);
  }

  /// Drops everything \p PA does not preserve, at both levels.
  void invalidate(const PreservedAnalyses &PA);

  void clear();

  void setInstrumentation(PassInstrumentation *P) {
    PI = P;
    FAM.setInstrumentation(P);
  }
  PassInstrumentation *getInstrumentation() const { return PI; }

  void setStaleCheckingEnabled(bool V) {
    StaleChecking = V;
    FAM.setStaleCheckingEnabled(V);
  }
  bool isStaleCheckingEnabled() const { return StaleChecking; }

  /// Module- and function-level counters, merged by analysis name.
  std::vector<AnalysisCacheStats> getCacheStats() const;

  /// Constructions of the named analysis so far (0 if never requested).
  uint64_t getConstructionCount(const std::string &AnalysisName) const;
  /// Cache hits of the named analysis so far.
  uint64_t getHitCount(const std::string &AnalysisName) const;

private:
  FunctionAnalysisManager FAM;
  std::map<AnalysisKey, detail::CachedResult> Cache;
  std::map<AnalysisKey, detail::CacheCounter> Counters;
  PassInstrumentation *PI = nullptr;
  bool StaleChecking = false;
};

} // namespace cgcm

#endif // CGCM_PASS_ANALYSISMANAGER_H
