//===- pass/PassInstrumentation.h - Per-pass hook bus -----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation bus of the pass manager (docs/PassManager.md).
/// Interested parties — timing, IR verification, staged printing, trace
/// spans — register callbacks; the pass manager and the analysis
/// managers fire them at the corresponding points. Multiple subscribers
/// per hook are supported; they run in registration order.
///
/// Nested pass managers (the `fixpoint(...)` group) fire before/after
/// for the container *and* for every contained pass, strictly LIFO, so
/// subscribers may keep a stack.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_PASS_PASSINSTRUMENTATION_H
#define CGCM_PASS_PASSINSTRUMENTATION_H

#include <functional>
#include <string>
#include <vector>

namespace cgcm {

class Module;

class PassInstrumentation {
public:
  using BeforePassFn = std::function<void(const std::string &Pass, Module &M)>;
  using AfterPassFn =
      std::function<void(const std::string &Pass, Module &M, bool Changed)>;
  /// \p Unit is the function name for function analyses, "<module>" for
  /// module analyses.
  using AnalysisFn =
      std::function<void(const std::string &Analysis, const std::string &Unit)>;

  void registerBeforePass(BeforePassFn Fn) {
    BeforePass.push_back(std::move(Fn));
  }
  void registerAfterPass(AfterPassFn Fn) { AfterPass.push_back(std::move(Fn)); }
  void registerAnalysisComputed(AnalysisFn Fn) {
    AnalysisComputed.push_back(std::move(Fn));
  }
  void registerAnalysisInvalidated(AnalysisFn Fn) {
    AnalysisInvalidated.push_back(std::move(Fn));
  }

  //===--------------------------------------------------------------------===//
  // Firing (called by PassManager / AnalysisManager)
  //===--------------------------------------------------------------------===//

  void runBeforePass(const std::string &Pass, Module &M) const {
    for (const BeforePassFn &Fn : BeforePass)
      Fn(Pass, M);
  }
  void runAfterPass(const std::string &Pass, Module &M, bool Changed) const {
    for (const AfterPassFn &Fn : AfterPass)
      Fn(Pass, M, Changed);
  }
  void runAnalysisComputed(const std::string &Analysis,
                           const std::string &Unit) const {
    for (const AnalysisFn &Fn : AnalysisComputed)
      Fn(Analysis, Unit);
  }
  void runAnalysisInvalidated(const std::string &Analysis,
                              const std::string &Unit) const {
    for (const AnalysisFn &Fn : AnalysisInvalidated)
      Fn(Analysis, Unit);
  }

private:
  std::vector<BeforePassFn> BeforePass;
  std::vector<AfterPassFn> AfterPass;
  std::vector<AnalysisFn> AnalysisComputed;
  std::vector<AnalysisFn> AnalysisInvalidated;
};

} // namespace cgcm

#endif // CGCM_PASS_PASSINSTRUMENTATION_H
