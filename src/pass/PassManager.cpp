//===- pass/PassManager.cpp - Declarative pass scheduling -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "pass/PassManager.h"

using namespace cgcm;

std::vector<std::string> PassManager::getPassNames() const {
  std::vector<std::string> Names;
  for (const auto &P : Passes)
    Names.push_back(P->name());
  return Names;
}

bool PassManager::run(Module &M, ModuleAnalysisManager &AM) {
  bool AnyChanged = false;
  PassInstrumentation *PI = AM.getInstrumentation();
  for (const auto &P : Passes) {
    if (PI)
      PI->runBeforePass(P->name(), M);
    PassExecResult R = P->run(M, AM);
    AM.invalidate(R.PA);
    if (PI)
      PI->runAfterPass(P->name(), M, R.Changed);
    AnyChanged |= R.Changed;
  }
  return AnyChanged;
}

PassExecResult FixpointPass::run(Module &M, ModuleAnalysisManager &AM) {
  PassExecResult R;
  R.PA = PreservedAnalyses::all(); // Inner passes already invalidated.
  LastIterations = 0;
  for (unsigned I = 0; I != MaxIterations; ++I) {
    ++LastIterations;
    if (!Inner.run(M, AM))
      break;
    R.Changed = true;
  }
  return R;
}
