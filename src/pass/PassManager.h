//===- pass/PassManager.h - Declarative pass scheduling ---------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass manager (docs/PassManager.md): passes request analyses from
/// a ModuleAnalysisManager instead of rebuilding them, and report what
/// they preserved; the manager invalidates the rest after each pass, so
/// dominators/loops/call-graph survive exactly as long as they are
/// valid. `FixpointPass` wraps an inner pipeline and reruns it until a
/// full sweep changes nothing — with preservation-aware caching, the
/// final (no-change) sweep runs entirely out of the analysis cache.
///
/// Instrumentation (timing, verification, staged printing, trace spans)
/// attaches through the PassInstrumentation registered on the analysis
/// manager; the pass manager fires before/after hooks around every pass,
/// including passes inside nested groups.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_PASS_PASSMANAGER_H
#define CGCM_PASS_PASSMANAGER_H

#include "pass/AnalysisManager.h"
#include "pass/PreservedAnalyses.h"

#include <memory>
#include <string>
#include <vector>

namespace cgcm {

/// What one pass execution reports back: which analyses survived, and
/// whether the IR changed at all (drives fixpoint convergence — an
/// unchanged sweep terminates the group).
struct PassExecResult {
  PreservedAnalyses PA;
  bool Changed = false;
};

class ModulePass {
public:
  virtual ~ModulePass() = default;
  /// Stable name, as written in a `--passes=` string.
  virtual const char *name() const = 0;
  virtual PassExecResult run(Module &M, ModuleAnalysisManager &AM) = 0;
};

class PassManager {
public:
  PassManager() = default;
  PassManager(PassManager &&) = default;
  PassManager &operator=(PassManager &&) = default;

  void addPass(std::unique_ptr<ModulePass> P) {
    Passes.push_back(std::move(P));
  }
  bool empty() const { return Passes.empty(); }
  size_t size() const { return Passes.size(); }
  std::vector<std::string> getPassNames() const;

  /// Runs every pass in order, invalidating unpreserved analyses after
  /// each. Returns true if any pass changed the IR.
  bool run(Module &M, ModuleAnalysisManager &AM);

private:
  std::vector<std::unique_ptr<ModulePass>> Passes;
};

/// Reruns an inner pipeline until one full sweep reports no change (or
/// the iteration cap trips — a safety net, matching the bounded loops
/// the converging transforms already had).
class FixpointPass : public ModulePass {
public:
  explicit FixpointPass(PassManager Inner, unsigned MaxIterations = 32)
      : Inner(std::move(Inner)), MaxIterations(MaxIterations) {}

  const char *name() const override { return "fixpoint"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override;

  unsigned getLastIterationCount() const { return LastIterations; }

private:
  PassManager Inner;
  unsigned MaxIterations;
  unsigned LastIterations = 0;
};

} // namespace cgcm

#endif // CGCM_PASS_PASSMANAGER_H
