//===- pass/PreservedAnalyses.h - What a pass kept valid --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pass's declaration of which cached analyses remain valid after it
/// ran (docs/PassManager.md). The pass manager intersects this with the
/// analysis caches after every pass: anything not preserved is dropped
/// and will be recomputed on the next request.
///
/// The conservative default is `none()` — "I changed the IR, trust
/// nothing". Passes opt analyses back in individually; `all()` is for
/// passes that made no change at all (and is what every pass should
/// return on a no-op run, so convergence iterations keep their caches).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_PASS_PRESERVEDANALYSES_H
#define CGCM_PASS_PRESERVEDANALYSES_H

#include <set>

namespace cgcm {

/// Identity of one analysis type: the address of a per-type static tag
/// (see AnalysisInfo in Analyses.h). Stable for the process lifetime,
/// never dereferenced.
using AnalysisKey = const void *;

class PreservedAnalyses {
public:
  /// Nothing survives (the default for a mutating pass).
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  /// Everything survives (the pass changed nothing).
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.All = true;
    return PA;
  }

  PreservedAnalyses &preserve(AnalysisKey K) {
    Preserved.insert(K);
    return *this;
  }

  template <typename AnalysisT> PreservedAnalyses &preserve() {
    return preserve(AnalysisT::ID());
  }

  /// Intersection: preserved only if both agree.
  void intersect(const PreservedAnalyses &Other) {
    if (Other.All)
      return;
    if (All) {
      *this = Other;
      return;
    }
    std::set<AnalysisKey> Out;
    for (AnalysisKey K : Preserved)
      if (Other.Preserved.count(K))
        Out.insert(K);
    Preserved = std::move(Out);
  }

  bool isPreserved(AnalysisKey K) const {
    return All || Preserved.count(K) != 0;
  }

  template <typename AnalysisT> bool isPreserved() const {
    return isPreserved(AnalysisT::ID());
  }

  bool areAllPreserved() const { return All; }

private:
  bool All = false;
  std::set<AnalysisKey> Preserved;
};

} // namespace cgcm

#endif // CGCM_PASS_PRESERVEDANALYSES_H
