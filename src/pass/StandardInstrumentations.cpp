//===- pass/StandardInstrumentations.cpp - Stock instrumentation hooks ------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "pass/StandardInstrumentations.h"

#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <chrono>
#include <iomanip>

using namespace cgcm;

uint64_t cgcm::moduleInstructionCount(const Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : *F)
      N += BB->size();
  return N;
}

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

//===----------------------------------------------------------------------===//
// TimePassesHandler
//===----------------------------------------------------------------------===//

void TimePassesHandler::registerCallbacks(PassInstrumentation &PI) {
  PI.registerBeforePass([this](const std::string &Pass, Module &M) {
    size_t Idx = Timings.size();
    for (size_t I = 0; I != Timings.size(); ++I)
      if (Timings[I].Pass == Pass) {
        Idx = I;
        break;
      }
    if (Idx == Timings.size())
      Timings.push_back({Pass, 0, 0, 0});
    Stack.push_back({Idx, nowMs(), moduleInstructionCount(M)});
  });
  PI.registerAfterPass([this](const std::string &Pass, Module &M, bool) {
    if (Stack.empty() || Timings[Stack.back().TimingIndex].Pass != Pass)
      return; // A handler was registered mid-run; ignore the orphan.
    Frame F = Stack.back();
    Stack.pop_back();
    PassTiming &T = Timings[F.TimingIndex];
    T.WallMs += nowMs() - F.StartMs;
    T.IrDelta += static_cast<int64_t>(moduleInstructionCount(M)) -
                 static_cast<int64_t>(F.SizeBefore);
    ++T.Runs;
  });
}

void TimePassesHandler::print(std::ostream &OS,
                              const ModuleAnalysisManager &AM) const {
  OS << "-- time-passes --\n";
  OS << std::left << std::setw(28) << "pass" << std::right << std::setw(10)
     << "wall-ms" << std::setw(10) << "ir-delta" << std::setw(6) << "runs"
     << "\n";
  for (const PassTiming &T : Timings) {
    OS << std::left << std::setw(28) << T.Pass << std::right << std::fixed
       << std::setprecision(3) << std::setw(10) << T.WallMs << std::setw(10)
       << T.IrDelta << std::setw(6) << T.Runs << "\n";
  }
  OS << "-- analysis cache --\n";
  OS << std::left << std::setw(28) << "analysis" << std::right << std::setw(14)
     << "constructions" << std::setw(10) << "hits"
     << "\n";
  for (const AnalysisCacheStats &S : AM.getCacheStats())
    OS << std::left << std::setw(28) << S.Name << std::right << std::setw(14)
       << S.Constructions << std::setw(10) << S.Hits << "\n";
}

//===----------------------------------------------------------------------===//
// MetricsPassHandler
//===----------------------------------------------------------------------===//

void MetricsPassHandler::registerCallbacks(PassInstrumentation &PI) {
  PI.registerBeforePass([this](const std::string &, Module &) {
    StartStack.push_back(nowMs());
  });
  PI.registerAfterPass(
      [this](const std::string &Pass, Module &, bool Changed) {
        if (StartStack.empty())
          return;
        double Start = StartStack.back();
        StartStack.pop_back();
        MetricsRegistry &R = MetricsRegistry::get();
        R.histogram("pass." + Pass + ".wall_us")
            .record(static_cast<uint64_t>((nowMs() - Start) * 1000.0));
        R.counter("pass." + Pass + ".runs").inc();
        if (Changed)
          R.counter("pass." + Pass + ".changed").inc();
      });
}

void MetricsPassHandler::captureCacheBaseline(
    const ModuleAnalysisManager &AM) {
  Baseline = AM.getCacheStats();
}

void MetricsPassHandler::flushCacheStats(
    const ModuleAnalysisManager &AM) const {
  MetricsRegistry &R = MetricsRegistry::get();
  for (const AnalysisCacheStats &S : AM.getCacheStats()) {
    uint64_t BaseConstructions = 0, BaseHits = 0;
    for (const AnalysisCacheStats &B : Baseline)
      if (B.Name == S.Name) {
        BaseConstructions = B.Constructions;
        BaseHits = B.Hits;
        break;
      }
    if (S.Constructions > BaseConstructions)
      R.counter("pass.analysis." + S.Name + ".constructions")
          .inc(S.Constructions - BaseConstructions);
    if (S.Hits > BaseHits)
      R.counter("pass.analysis." + S.Name + ".hits").inc(S.Hits - BaseHits);
  }
}

//===----------------------------------------------------------------------===//
// VerifyEachHandler
//===----------------------------------------------------------------------===//

void VerifyEachHandler::registerCallbacks(PassInstrumentation &PI) {
  PI.registerAfterPass([](const std::string &Pass, Module &M, bool) {
    std::string Err;
    if (!verifyModule(M, &Err))
      reportFatalError("--verify-each: invalid IR after pass '" + Pass +
                       "': " + Err);
  });
}

//===----------------------------------------------------------------------===//
// PrintAfterHandler
//===----------------------------------------------------------------------===//

void PrintAfterHandler::registerCallbacks(PassInstrumentation &PI) {
  PI.registerAfterPass([this](const std::string &Pass, Module &M, bool) {
    if (PassName != "*" && PassName != Pass)
      return;
    OS << "; IR after pass '" << Pass << "'\n" << M.getString() << "\n";
  });
}

//===----------------------------------------------------------------------===//
// TraceSpanHandler
//===----------------------------------------------------------------------===//

void TraceSpanHandler::registerCallbacks(PassInstrumentation &PI) {
  PI.registerBeforePass([this](const std::string &, Module &) {
    StartStack.push_back(nowMs() * 1000.0); // µs
  });
  PI.registerAfterPass([this](const std::string &Pass, Module &M,
                              bool Changed) {
    if (StartStack.empty())
      return;
    double Start = StartStack.back();
    StartStack.pop_back();
    if (!Trace.isEnabled())
      return;
    TraceArgs Args;
    Args.add("changed", Changed);
    Args.add("ir_insts", moduleInstructionCount(M));
    Trace.complete(Pass, "pass", Start, nowMs() * 1000.0 - Start,
                   std::move(Args));
  });
}
