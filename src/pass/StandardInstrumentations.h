//===- pass/StandardInstrumentations.h - Stock instrumentation hooks --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation subscribers cgcmc exposes as flags
/// (docs/PassManager.md):
///
///  * TimePassesHandler   — `--time-passes`: wall time and IR-size delta
///    per pass (aggregated over fixpoint reruns), plus the analysis
///    managers' construction/hit counters;
///  * VerifyEachHandler   — `--verify-each`: run the IR verifier after
///    every pass and abort, naming the pass, on the first failure;
///  * PrintAfterHandler   — `--print-after=<pass>`: staged IR dumps
///    (`<pass>` may be `*` for every pass);
///  * TraceSpanHandler    — with `--trace`: one Complete span per pass
///    execution in the Chrome trace, category "pass", wall-clock
///    microseconds (compilation happens before the modeled clock starts
///    ticking).
///
/// Handlers must outlive the pipeline run they are registered on.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_PASS_STANDARDINSTRUMENTATIONS_H
#define CGCM_PASS_STANDARDINSTRUMENTATIONS_H

#include "pass/AnalysisManager.h"
#include "pass/PassInstrumentation.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cgcm {

class TraceCollector;

/// Total instruction count over all defined functions — the "modeled IR
/// size" whose per-pass delta --time-passes reports.
uint64_t moduleInstructionCount(const Module &M);

/// Aggregated measurements for one pass name.
struct PassTiming {
  std::string Pass;
  double WallMs = 0;    ///< Summed over runs.
  int64_t IrDelta = 0;  ///< Instructions added (+) or removed (-), summed.
  unsigned Runs = 0;    ///< Executions (fixpoint groups rerun passes).
};

class TimePassesHandler {
public:
  void registerCallbacks(PassInstrumentation &PI);

  /// Timings in first-execution order. Nested groups (`fixpoint`) appear
  /// as their own row *including* their children's time.
  const std::vector<PassTiming> &getTimings() const { return Timings; }

  /// Human-readable report: per-pass table plus \p AM's analysis
  /// construction/hit counters.
  void print(std::ostream &OS, const ModuleAnalysisManager &AM) const;

private:
  struct Frame {
    size_t TimingIndex;
    double StartMs;
    uint64_t SizeBefore;
  };
  std::vector<PassTiming> Timings;
  std::vector<Frame> Stack;
};

/// Always-on subscriber publishing per-pass wall time and run counts
/// into the process-wide metrics registry (support/Metrics.h):
/// `pass.<name>.wall_us` histograms (host wall clock, so filtered as
/// noisy by cgcm-metrics-diff) plus `pass.<name>.runs` and
/// `pass.<name>.changed` counters. flushCacheStats() publishes the
/// analysis managers' construction/hit deltas accumulated since
/// captureCacheBaseline() as `pass.analysis.<name>.{constructions,hits}`.
class MetricsPassHandler {
public:
  void registerCallbacks(PassInstrumentation &PI);
  void captureCacheBaseline(const ModuleAnalysisManager &AM);
  void flushCacheStats(const ModuleAnalysisManager &AM) const;

private:
  std::vector<double> StartStack; ///< Start times in ms, LIFO.
  std::vector<AnalysisCacheStats> Baseline;
};

class VerifyEachHandler {
public:
  void registerCallbacks(PassInstrumentation &PI);
};

class PrintAfterHandler {
public:
  /// \p PassName: exact pass name, or "*" for all passes.
  PrintAfterHandler(std::string PassName, std::ostream &OS)
      : PassName(std::move(PassName)), OS(OS) {}
  void registerCallbacks(PassInstrumentation &PI);

private:
  std::string PassName;
  std::ostream &OS;
};

class TraceSpanHandler {
public:
  explicit TraceSpanHandler(TraceCollector &Trace) : Trace(Trace) {}
  void registerCallbacks(PassInstrumentation &PI);

private:
  TraceCollector &Trace;
  std::vector<double> StartStack;
};

} // namespace cgcm

#endif // CGCM_PASS_STANDARDINSTRUMENTATIONS_H
