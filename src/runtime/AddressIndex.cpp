//===- runtime/AddressIndex.cpp - Page-granular allocation-unit index -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "runtime/AddressIndex.h"

#include "runtime/CGCMRuntime.h"

using namespace cgcm;

const AllocUnitInfo *AddressIndex::ambiguous() {
  // Any non-null pointer no real unit can alias works; a static dummy
  // keeps it well-defined.
  static const AllocUnitInfo Sentinel{};
  return &Sentinel;
}

void AddressIndex::insert(const AllocUnitInfo *U) {
  if (U->Size == 0)
    return; // Occupies no address; every probe misses it anyway.
  uint64_t End = U->Base + U->Size;
  if (End > CoverageLimit || End < U->Base) {
    // Outside the coverage window: from now on a page hit could hide
    // this unit, so every probe must consult the tree.
    HaveUnindexed = true;
    return;
  }
  for (uint64_t Page = U->Base >> PageShift, Last = (End - 1) >> PageShift;
       Page <= Last; ++Page) {
    std::unique_ptr<Leaf> &L = L1[Page >> LeafBits];
    if (!L)
      L = std::make_unique<Leaf>();
    const AllocUnitInfo *&Slot = L->Slots[Page & (LeafPages - 1)];
    Slot = Slot ? ambiguous() : U;
  }
}

const AllocUnitInfo *
AddressIndex::ownerOf(uint64_t Page,
                      const std::map<uint64_t, AllocUnitInfo> &Units) {
  uint64_t Lo = Page << PageShift, Hi = Lo + PageSize;
  const AllocUnitInfo *Found = nullptr;
  auto It = Units.lower_bound(Lo);
  if (It != Units.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second.Size != 0 && Prev->second.Base + Prev->second.Size > Lo)
      Found = &Prev->second;
  }
  for (; It != Units.end() && It->first < Hi; ++It) {
    if (It->second.Size == 0)
      continue;
    if (Found)
      return ambiguous();
    Found = &It->second;
  }
  return Found;
}

void AddressIndex::erase(uint64_t Base, uint64_t Size,
                         const std::map<uint64_t, AllocUnitInfo> &Units) {
  if (Size == 0)
    return;
  uint64_t End = Base + Size;
  if (End > CoverageLimit || End < Base)
    return; // Never indexed (insert set the fallback flag instead).
  for (uint64_t Page = Base >> PageShift, Last = (End - 1) >> PageShift;
       Page <= Last; ++Page) {
    Leaf *L = L1[Page >> LeafBits].get();
    if (!L)
      continue;
    L->Slots[Page & (LeafPages - 1)] = ownerOf(Page, Units);
  }
}

AddressIndex::Probe AddressIndex::probe(uint64_t Ptr) const {
  if (HaveUnindexed)
    return {false, nullptr, 0};
  if (Ptr >= CoverageLimit)
    return {true, nullptr, 1}; // No indexed unit reaches past the window.
  uint64_t Page = Ptr >> PageShift;
  const Leaf *L = L1[Page >> LeafBits].get();
  const AllocUnitInfo *U = L ? L->Slots[Page & (LeafPages - 1)] : nullptr;
  if (!U)
    return {true, nullptr, 1};
  if (U == ambiguous())
    return {false, nullptr, 1};
  // Exactly one unit overlaps the page; the range check is exact.
  if (Ptr >= U->Base && Ptr < U->Base + U->Size)
    return {true, U, 1};
  return {true, nullptr, 1};
}

void AddressIndex::rebuild(const std::map<uint64_t, AllocUnitInfo> &Units) {
  for (std::unique_ptr<Leaf> &L : L1)
    L.reset();
  HaveUnindexed = false;
  for (const auto &[Base, U] : Units)
    insert(&U);
}
