//===- runtime/AddressIndex.h - Page-granular allocation-unit index ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-level radix/page index over the simulated host address space
/// that accelerates the runtime's greatest-LTE allocation-unit lookup.
/// The leaves map 4 KiB pages to the single allocation unit overlapping
/// that page; a page shared by two or more units holds an "ambiguous"
/// sentinel, and probes of such pages — like probes outside the index's
/// coverage window — fall back to the balanced tree. The index stores
/// raw pointers into the runtime's `std::map` nodes, which are stable
/// for the lifetime of each tracked unit.
///
/// The answer model: a probe is either *resolved* (the exact unit, or
/// exactly "no unit") or *unresolved* (the caller must consult the
/// tree). Resolved answers are only possible while every tracked unit
/// is indexed, so tracking any unit outside the coverage window
/// permanently degrades the index to the unresolved path — a page hit
/// could otherwise hide an unindexed overlapping unit.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_RUNTIME_ADDRESSINDEX_H
#define CGCM_RUNTIME_ADDRESSINDEX_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace cgcm {

struct AllocUnitInfo;

class AddressIndex {
public:
  static constexpr unsigned PageShift = 12; ///< 4 KiB pages.
  static constexpr uint64_t PageSize = 1ull << PageShift;
  static constexpr unsigned LeafBits = 9; ///< 512 pages (2 MiB) per leaf.
  static constexpr uint64_t LeafPages = 1ull << LeafBits;
  /// Units reaching past this address are not indexed (the simulated
  /// host heap starts at HostAddressBase and grows upward; it never
  /// comes close). Tracking one sets the permanent fallback flag.
  static constexpr uint64_t CoverageLimit = 1ull << 32; // 4 GiB

  struct Probe {
    bool Resolved;             ///< The answer is exact; Unit may be null.
    const AllocUnitInfo *Unit; ///< Owning unit when Resolved, else null.
    unsigned Cost;             ///< Probes charged to runtime.index.probes.
  };

  AddressIndex() : L1(CoverageLimit >> (PageShift + LeafBits)) {}

  /// Indexes \p U over every page its [Base, Base+Size) range overlaps.
  /// The pointer must stay valid until erase(); the runtime guarantees
  /// this by pointing into stable std::map nodes.
  void insert(const AllocUnitInfo *U);

  /// Drops the coverage of a unit that was erased from \p Units (the
  /// tree erase must happen first): every page the dead range overlapped
  /// is recomputed from the tree, so pages the dead unit shared with a
  /// survivor resolve to the survivor again instead of staying
  /// ambiguous forever.
  void erase(uint64_t Base, uint64_t Size,
             const std::map<uint64_t, AllocUnitInfo> &Units);

  /// Resolves \p Ptr to its owning unit, "no unit", or "ask the tree".
  Probe probe(uint64_t Ptr) const;

  /// Rebuilds the whole index from \p Units (cold recovery path).
  void rebuild(const std::map<uint64_t, AllocUnitInfo> &Units);

  /// Whether every tracked unit is indexed (false once a unit outside
  /// the coverage window was tracked; all probes then fall back).
  bool coversAll() const { return !HaveUnindexed; }

private:
  struct Leaf {
    const AllocUnitInfo *Slots[LeafPages] = {};
  };

  /// The sentinel marking a page overlapped by two or more units.
  static const AllocUnitInfo *ambiguous();

  /// Recomputes one page's slot value from the tree.
  static const AllocUnitInfo *
  ownerOf(uint64_t Page, const std::map<uint64_t, AllocUnitInfo> &Units);

  std::vector<std::unique_ptr<Leaf>> L1;
  bool HaveUnindexed = false;
};

} // namespace cgcm

#endif // CGCM_RUNTIME_ADDRESSINDEX_H
