//===- runtime/CGCMRuntime.cpp - The CGCM run-time library ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "runtime/CGCMRuntime.h"

#include "support/ErrorHandling.h"

#include <vector>

using namespace cgcm;

void CGCMRuntime::chargeCall() {
  Stats.RuntimeCycles += TM.RuntimeCallOverhead;
  ++Stats.RuntimeCalls;
}

//===----------------------------------------------------------------------===//
// Tracking (section 3.1)
//===----------------------------------------------------------------------===//

void CGCMRuntime::declareGlobal(const std::string &Name, uint64_t Ptr,
                                uint64_t Size, bool IsReadOnly) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Info.IsGlobal = true;
  Info.IsReadOnly = IsReadOnly;
  Info.Name = Name;
  Units[Ptr] = Info;
}

void CGCMRuntime::declareAlloca(uint64_t Ptr, uint64_t Size) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Units[Ptr] = Info;
}

void CGCMRuntime::removeAlloca(uint64_t Ptr) {
  auto It = Units.find(Ptr);
  if (It == Units.end())
    return;
  // A mapped stack unit going out of scope releases its GPU copy; keeping
  // it would leak device memory for the rest of the program.
  if (It->second.RefCount > 0 && !It->second.IsGlobal)
    Device.cuMemFree(It->second.DevPtr);
  Units.erase(It);
}

void CGCMRuntime::notifyHeapAlloc(uint64_t Ptr, uint64_t Size) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Units[Ptr] = Info;
}

void CGCMRuntime::notifyHeapRealloc(uint64_t OldPtr, uint64_t NewPtr,
                                    uint64_t NewSize) {
  chargeCall();
  notifyHeapFree(OldPtr);
  notifyHeapAlloc(NewPtr, NewSize);
}

void CGCMRuntime::notifyHeapFree(uint64_t Ptr) {
  chargeCall();
  auto It = Units.find(Ptr);
  if (It == Units.end())
    reportFatalError("cgcm runtime: free of untracked heap pointer");
  if (It->second.RefCount > 0 && !It->second.IsGlobal)
    Device.cuMemFree(It->second.DevPtr);
  Units.erase(It);
}

//===----------------------------------------------------------------------===//
// Lookup
//===----------------------------------------------------------------------===//

const AllocUnitInfo *CGCMRuntime::lookup(uint64_t Ptr) const {
  auto It = Units.upper_bound(Ptr);
  if (It == Units.begin())
    return nullptr;
  --It;
  const AllocUnitInfo &Info = It->second;
  if (Ptr >= Info.Base + Info.Size)
    return nullptr;
  return &Info;
}

AllocUnitInfo &CGCMRuntime::lookupOrFail(uint64_t Ptr, const char *Op) {
  const AllocUnitInfo *Info = lookup(Ptr);
  if (!Info)
    reportFatalError(std::string("cgcm runtime: ") + Op + " of pointer " +
                     std::to_string(Ptr) +
                     " which is in no tracked allocation unit");
  return const_cast<AllocUnitInfo &>(*Info);
}

size_t CGCMRuntime::getNumMappedUnits() const {
  size_t N = 0;
  for (const auto &[Base, Info] : Units)
    if (Info.RefCount > 0)
      ++N;
  return N;
}

bool CGCMRuntime::translateToDevice(uint64_t HostPtr, uint64_t &DevPtr) const {
  const AllocUnitInfo *Info = lookup(HostPtr);
  if (!Info || Info->RefCount == 0)
    return false;
  DevPtr = Info->DevPtr + (HostPtr - Info->Base);
  return true;
}

//===----------------------------------------------------------------------===//
// map / unmap / release (Algorithms 1-3)
//===----------------------------------------------------------------------===//

uint64_t CGCMRuntime::map(uint64_t Ptr) {
  chargeCall();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "map");
  if (Info.RefCount > 0 && !RefCountReuseEnabled) {
    // Ablation: pretend we did not know the unit was resident.
    Device.cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size);
  }
  if (Info.RefCount == 0) {
    if (!Info.IsGlobal)
      Info.DevPtr = Device.cuMemAlloc(Info.Size);
    else
      Info.DevPtr = Device.cuModuleGetGlobal(Info.Name, Info.Size);
    Device.cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size);
    // A fresh GPU copy is current as of this epoch; unmap needs to copy
    // back only after a later kernel launch.
    Info.Epoch = GlobalEpoch;
  }
  ++Info.RefCount;
  return Info.DevPtr + (Ptr - Info.Base);
}

void CGCMRuntime::unmap(uint64_t Ptr) {
  chargeCall();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "unmap");
  if (Info.RefCount == 0)
    return; // Nothing on the GPU to copy back.
  if ((Info.Epoch != GlobalEpoch || !EpochCheckEnabled) && !Info.IsReadOnly) {
    Device.cuMemcpyDtoH(Host, Info.Base, Info.DevPtr, Info.Size);
    Info.Epoch = GlobalEpoch;
  }
}

void CGCMRuntime::release(uint64_t Ptr) {
  chargeCall();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "release");
  if (Info.RefCount == 0)
    reportFatalError("cgcm runtime: release of an unmapped allocation unit");
  --Info.RefCount;
  if (Info.RefCount == 0 && !Info.IsGlobal) {
    Device.cuMemFree(Info.DevPtr);
    Info.DevPtr = 0;
    Info.IsPointerArray = false;
  }
}

//===----------------------------------------------------------------------===//
// Array variants (doubly indirect pointers)
//===----------------------------------------------------------------------===//

uint64_t CGCMRuntime::mapArray(uint64_t Ptr) {
  chargeCall();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "mapArray");
  uint64_t NumSlots = Info.Size / 8;
  bool NeedsCopy = Info.RefCount == 0;

  // Map every pointer stored in the unit, translating to device pointers.
  std::vector<uint64_t> Translated(NumSlots, 0);
  for (uint64_t I = 0; I != NumSlots; ++I) {
    uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
    if (Elem == 0)
      continue;
    Translated[I] = map(Elem);
  }

  // lookupOrFail reference may have been invalidated by nested map()
  // rebalancing? std::map nodes are stable, so Info stays valid.
  if (NeedsCopy) {
    if (!Info.IsGlobal)
      Info.DevPtr = Device.cuMemAlloc(Info.Size);
    else
      Info.DevPtr = Device.cuModuleGetGlobal(Info.Name, Info.Size);
    // The device copy holds *translated* pointers, not raw host bytes.
    // Transfer cost is identical to a raw copy of the unit.
    Device.cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size);
    for (uint64_t I = 0; I != NumSlots; ++I)
      Device.getMemory().writeUInt(Info.DevPtr + I * 8, Translated[I], 8);
    Info.Epoch = GlobalEpoch;
    Info.IsPointerArray = true;
  }
  ++Info.RefCount;
  return Info.DevPtr + (Ptr - Info.Base);
}

void CGCMRuntime::unmapArray(uint64_t Ptr) {
  chargeCall();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "unmapArray");
  // Update each pointed-to unit from the GPU. The pointer array itself is
  // not copied back: its GPU copy holds device pointers that would
  // corrupt the host array.
  uint64_t NumSlots = Info.Size / 8;
  for (uint64_t I = 0; I != NumSlots; ++I) {
    uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
    if (Elem == 0)
      continue;
    unmap(Elem);
  }
}

void CGCMRuntime::releaseArray(uint64_t Ptr) {
  chargeCall();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "releaseArray");
  uint64_t NumSlots = Info.Size / 8;
  for (uint64_t I = 0; I != NumSlots; ++I) {
    uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
    if (Elem == 0)
      continue;
    release(Elem);
  }
  release(Info.Base);
}

void CGCMRuntime::releaseAll() {
  for (auto &[Base, Info] : Units) {
    if (Info.RefCount == 0)
      continue;
    if (!Info.IsGlobal)
      Device.cuMemFree(Info.DevPtr);
    Info.RefCount = 0;
    Info.DevPtr = 0;
  }
}
