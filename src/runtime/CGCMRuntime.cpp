//===- runtime/CGCMRuntime.cpp - The CGCM run-time library ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "runtime/CGCMRuntime.h"

#include "gpusim/DevicePool.h"
#include "support/ErrorHandling.h"
#include "support/Metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <vector>

using namespace cgcm;

namespace {

/// Host-side nanoseconds since \p T0, for the runtime's own-overhead
/// histograms (names carry the host_ns suffix the diff tool filters).
uint64_t hostNsSince(std::chrono::steady_clock::time_point T0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

} // namespace

CGCMRuntime::SiteInstruments &
CGCMRuntime::siteInstruments(const LedgerEntry *E) {
  // try_emplace probes the tree once for both the hit and the miss,
  // where find-then-emplace paid two lookups on every miss.
  auto [It, Inserted] = SiteCache.try_emplace(E);
  if (!Inserted)
    return It->second;
  std::string Site = E ? E->Site : std::string("<none>");
  for (char &C : Site)
    if (C == ' ')
      C = '_';
  MetricsRegistry &R = MetricsRegistry::get();
  SiteInstruments &SI = It->second;
  const std::string Prefix = "runtime.site." + Site + ".";
  SI.MapCycles = &R.histogram(Prefix + "map_cycles");
  SI.MapArrayCycles = &R.histogram(Prefix + "map_array_cycles");
  SI.UnmapCycles = &R.histogram(Prefix + "unmap_cycles");
  SI.MapHostNs = &R.histogram(Prefix + "map_host_ns");
  SI.MapArrayHostNs = &R.histogram(Prefix + "map_array_host_ns");
  SI.UnmapHostNs = &R.histogram(Prefix + "unmap_host_ns");
  return SI;
}

void CGCMRuntime::cacheXlat(SiteInstruments &SI, const AllocUnitInfo &Info) {
  if (!XlatCacheEnabled)
    return;
  SI.Xlat = {Info.Base, Info.Base + Info.Size, &Info, XlatGen};
  if (XlatMRU[0] != &SI) {
    XlatMRU[1] = XlatMRU[0];
    XlatMRU[0] = &SI;
  }
}

std::map<uint64_t, AllocUnitInfo>::iterator
CGCMRuntime::forgetUnit(std::map<uint64_t, AllocUnitInfo>::iterator It) {
  uint64_t Base = It->first;
  uint64_t Size = It->second.Size;
  auto Next = Units.erase(It);
  // Order matters: the index recomputes shared pages from the tree, so
  // the tree erase must already be visible.
  Index.erase(Base, Size, Units);
  ++XlatGen;
  return Next;
}

void CGCMRuntime::forgetUnit(uint64_t Base, uint64_t Size) {
  Units.erase(Base);
  Index.erase(Base, Size, Units);
  ++XlatGen;
}

void CGCMRuntime::chargeCall() {
  Stats.RuntimeCycles += TM.RuntimeCallOverhead;
  ++Stats.RuntimeCalls;
}

//===----------------------------------------------------------------------===//
// Multi-device routing (docs/MultiGPU.md). Inert without a pool > 1.
//===----------------------------------------------------------------------===//

GPUDevice &CGCMRuntime::devFor(const AllocUnitInfo &Info) {
  if (Pool && Pool->size() > 1)
    return Pool->device(Info.HomeDevice);
  return Device;
}

unsigned CGCMRuntime::pickHomeDevice(AllocUnitInfo &Info) {
  unsigned N = Pool ? Pool->size() : 1;
  if (N <= 1) {
    Info.HomeDevice = 0;
    return 0;
  }
  // A global's device region is a named allocation that is never freed:
  // once placed, it stays put across map generations.
  if (Info.IsGlobal && Info.HomeChosen)
    return Info.HomeDevice;
  unsigned Pick = 0;
  switch (Placement) {
  case PlacementPolicy::RoundRobin:
    Pick = static_cast<unsigned>(NextPlacement++ % N);
    break;
  case PlacementPolicy::BytesBalanced: {
    uint64_t Best = ~0ull;
    for (unsigned D = 0; D != N; ++D) {
      uint64_t Live = Pool->device(D).getMemory().getLiveBytes();
      if (Live < Best) {
        Best = Live;
        Pick = D;
      }
    }
    break;
  }
  }
  Info.HomeDevice = Pick;
  Info.HomeChosen = true;
  return Pick;
}

void CGCMRuntime::freeReplicas(AllocUnitInfo &Info) {
  if (Info.Replicas.empty())
    return;
  for (auto &[D, R] : Info.Replicas)
    if (R.DevPtr) {
      Pool->device(D).cuMemFree(R.DevPtr);
      --LiveReplicas;
    }
  Info.Replicas.clear();
}

AllocUnitInfo *CGCMRuntime::findByDevicePtr(uint64_t DevAddr) {
  for (auto &[B, Info] : Units)
    if (Info.RefCount > 0 && DevAddr >= Info.DevPtr &&
        DevAddr < Info.DevPtr + Info.Size)
      return &Info;
  return nullptr;
}

void CGCMRuntime::replicateForDevice(uint64_t DevPtr, unsigned Dev) {
  if (!Pool || Pool->size() <= 1)
    return;
  AllocUnitInfo *Info = findByDevicePtr(DevPtr);
  if (!Info || Dev == Info->HomeDevice)
    return;
  AllocUnitInfo::Replica &R = Info->Replicas[Dev];
  bool Fresh = R.DevPtr == 0;
  if (Fresh) {
    R.DevPtr = Pool->device(Dev).cuMemAlloc(Info->Size);
    ++LiveReplicas;
  }
  if (Fresh || !Info->replicaValid(R)) {
    Pool->p2pCopy(Info->HomeDevice, Dev, Info->DevPtr, R.DevPtr, Info->Size);
    R.Version = Info->ContentVersion;
    if (Info->Ledger) {
      Info->Ledger->BytesP2P += Info->Size;
      ++Info->Ledger->TransfersP2P;
    }
  }
}

CGCMRuntime::ReplicationEstimate
CGCMRuntime::estimateReplicationCycles(uint64_t DevPtr,
                                       unsigned NumDevices) const {
  ReplicationEstimate E;
  if (!Pool || Pool->size() <= 1)
    return E;
  const AllocUnitInfo *Info = nullptr;
  for (const auto &[B, U] : Units)
    if (U.RefCount > 0 && DevPtr >= U.DevPtr && DevPtr < U.DevPtr + U.Size) {
      Info = &U;
      break;
    }
  if (!Info)
    return E;
  for (unsigned D = 0; D != NumDevices; ++D) {
    if (D == Info->HomeDevice)
      continue;
    auto It = Info->Replicas.find(D);
    if (It == Info->Replicas.end() || !It->second.DevPtr)
      E.MissingCycles += TM.p2pCopyCycles(Info->Size);
    else if (!Info->replicaValid(It->second))
      E.StaleCycles += TM.p2pCopyCycles(Info->Size);
  }
  return E;
}

void CGCMRuntime::noteHostWrite(uint64_t Addr) {
  const AllocUnitInfo *Info = lookup(Addr);
  if (!Info || Info->Replicas.empty())
    return;
  // Invalidate every peer replica at once: they all compare their
  // version against the unit's.
  ++const_cast<AllocUnitInfo *>(Info)->ContentVersion;
}

size_t CGCMRuntime::getNumValidReplicas(uint64_t HostPtr) const {
  const AllocUnitInfo *Info = lookup(HostPtr);
  if (!Info)
    return 0;
  size_t N = 0;
  for (const auto &[D, R] : Info->Replicas)
    if (R.DevPtr && Info->replicaValid(R))
      ++N;
  return N;
}

double CGCMRuntime::clockNow() const {
  const StreamEngine &E = Device.getStreamEngine();
  return E.isAsync() ? E.hostNow() : Stats.totalCycles();
}

void CGCMRuntime::traceCall(const char *Op, const AllocUnitInfo &Info,
                            bool Copied) {
  if (!Trace || !Trace->isEnabled())
    return;
  Trace->complete(Op, "runtime", clockNow(), TM.RuntimeCallOverhead,
                  TraceArgs()
                      .add("base", Info.Base)
                      .add("size", Info.Size)
                      .add("refcount", Info.RefCount)
                      .add("epoch", Info.Epoch)
                      .add("copied", Copied));
}

//===----------------------------------------------------------------------===//
// Tracking (section 3.1)
//===----------------------------------------------------------------------===//

void CGCMRuntime::trackUnit(AllocUnitInfo Info) {
  // The host allocator may reuse the address range of a unit whose
  // destruction was deferred (free/realloc while still mapped). Once the
  // range has a new owner the zombie's pending release can no longer be
  // matched by address: reclaim it now so the new unit starts clean. The
  // abandoned release, if it ever arrives, fails with the untracked-
  // pointer diagnostic instead of corrupting the new unit's refcount.
  uint64_t Lo = Info.Base, Hi = Info.Base + Info.Size;
  std::vector<uint64_t> Evict;
  auto It = Units.lower_bound(Lo);
  if (It != Units.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second.HostDead && Prev->second.Base + Prev->second.Size > Lo)
      Evict.push_back(Prev->first);
  }
  for (; It != Units.end() && It->first < Hi; ++It)
    if (It->second.HostDead)
      Evict.push_back(It->first);
  if (!Evict.empty()) {
    static MetricCounter *const ZombiesEvicted =
        &MetricsRegistry::get().counter("runtime.zombies.evicted");
    ZombiesEvicted->inc(Evict.size());
  }
  for (uint64_t B : Evict) {
    // Re-find each victim instead of caching iterators from the scan:
    // reclaiming one zombie can erase another (a zombie listed in the
    // first one's element snapshots is released — and forgotten — by
    // the snapshot teardown). The old unchecked `Units.find(B)->second`
    // dereferenced end() in exactly that case.
    auto EvIt = Units.find(B);
    if (EvIt != Units.end())
      forceReclaim(EvIt->second, "evicted");
  }

  uint64_t Base = Info.Base;
  auto [NewIt, Inserted] = Units.insert_or_assign(Base, std::move(Info));
  if (!Inserted) {
    // A live unit already occupied this base (defensive: the eviction
    // scan above already reclaimed overlapping zombies, so only a
    // same-base re-declaration lands here). The assignment replaced it
    // in place; the old range's index coverage is stale, and its extent
    // is gone, so rebuild from the tree and drop cached translations.
    Index.rebuild(Units);
    ++XlatGen;
  } else {
    Index.insert(&NewIt->second);
  }
  if (Observer)
    Observer->onUnitTracked(NewIt->second);
}

void CGCMRuntime::declareGlobal(const std::string &Name, uint64_t Ptr,
                                uint64_t Size, bool IsReadOnly) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Info.IsGlobal = true;
  Info.IsReadOnly = IsReadOnly;
  Info.Name = Name;
  Info.Ledger = Ledger.entryFor("global " + Name, SourceLoc::none());
  ++Info.Ledger->Units;
  trackUnit(std::move(Info));
}

void CGCMRuntime::declareAlloca(uint64_t Ptr, uint64_t Size, SourceLoc Loc) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Info.Ledger = Ledger.entryFor(
      Loc.isValid() ? "alloca@" + Loc.getString() : "alloca@<unknown>", Loc);
  ++Info.Ledger->Units;
  trackUnit(std::move(Info));
}

void CGCMRuntime::removeAlloca(uint64_t Ptr) {
  auto It = Units.find(Ptr);
  if (It == Units.end())
    return;
  AllocUnitInfo &Info = It->second;
  if (Info.RefCount > 0 && !Info.IsGlobal) {
    // A mapped stack unit going out of scope: the frame is gone, so no
    // paired release can ever arrive. Drop every reference the unit
    // still holds — nested mapArray element references included, which
    // the old behaviour leaked — and free the GPU copy; keeping it
    // would leak device memory for the rest of the program.
    if (Observer)
      Observer->onDeferredReclaim(Info, "remove-alloca");
    forceReclaim(Info, "remove-alloca");
    return;
  }
  AllocUnitInfo Dead = std::move(Info);
  forgetUnit(It);
  if (Observer)
    Observer->onUnitForgotten(Dead, "remove-alloca");
}

void CGCMRuntime::notifyHeapAlloc(uint64_t Ptr, uint64_t Size,
                                  SourceLoc Loc) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Info.Ledger = Ledger.entryFor(
      Loc.isValid() ? "heap@" + Loc.getString() : "heap@<unknown>", Loc);
  ++Info.Ledger->Units;
  trackUnit(std::move(Info));
}

void CGCMRuntime::notifyHeapRealloc(uint64_t OldPtr, uint64_t NewPtr,
                                    uint64_t NewSize, SourceLoc Loc) {
  auto It = Units.find(OldPtr);
  if (It == Units.end())
    reportFatalError("cgcm runtime: realloc of untracked heap pointer");
  // One user-level realloc is one runtime call: charge once, not once per
  // internal free/alloc step.
  chargeCall();
  AllocUnitInfo &Old = It->second;
  if (Old.RefCount > 0 && !Old.IsGlobal) {
    // Reallocated while still mapped. The heap wrapper already moved the
    // *host* bytes to the new block, but the device copy may hold newer
    // data (a kernel wrote since the last sync): salvage it into the new
    // block so device-side updates are not silently lost. Pointer arrays
    // are host-authoritative (their device copy holds translated
    // pointers) and read-only units cannot be dirty, so neither copies.
    uint64_t SalvageBytes = std::min(Old.Size, NewSize);
    if (!Old.IsReadOnly && !Old.IsPointerArray && SalvageBytes != 0 &&
        (Old.Epoch != GlobalEpoch || !EpochCheckEnabled)) {
      auto R = devFor(Old).cuMemcpyDtoH(Host, NewPtr, Old.DevPtr, SalvageBytes,
                                        Old.Pinned);
      if (Old.Ledger) {
        Old.Ledger->BytesDtoH += SalvageBytes;
        ++Old.Ledger->TransfersDtoH;
        if (R.Coalesced)
          ++Old.Ledger->Coalesced;
      }
    }
    // Defer destruction: the compiler's paired unmap/release for the old
    // unit are still outstanding. unmap skips the copy-back from now on
    // (the host block is gone) and the final release frees the device
    // copy and forgets the unit.
    Old.HostDead = true;
    {
      static MetricCounter *const ZombiesCreated =
          &MetricsRegistry::get().counter("runtime.zombies.created");
      ZombiesCreated->inc();
    }
    traceCall("realloc-deferred", Old, /*Copied=*/false);
    if (Observer)
      Observer->onDeferredReclaim(Old, "realloc");
  } else {
    AllocUnitInfo Dead = std::move(Old);
    forgetUnit(It);
    if (Observer)
      Observer->onUnitForgotten(Dead, "realloc");
  }
  AllocUnitInfo Info;
  Info.Base = NewPtr;
  Info.Size = NewSize;
  Info.Ledger = Ledger.entryFor(
      Loc.isValid() ? "heap@" + Loc.getString() : "heap@<unknown>", Loc);
  ++Info.Ledger->Units;
  trackUnit(std::move(Info));
}

void CGCMRuntime::notifyHeapFree(uint64_t Ptr) {
  auto It = Units.find(Ptr);
  if (It == Units.end())
    reportFatalError("cgcm runtime: free of untracked heap pointer");
  chargeCall();
  AllocUnitInfo &Info = It->second;
  if (Info.RefCount > 0 && !Info.IsGlobal) {
    // Freed while still mapped. The old behaviour freed the device copy
    // and erased the unit, leaving the compiler's paired release to die
    // on "no tracked allocation unit". Defer instead: keep the (host-
    // dead) unit so the outstanding unmap/release resolve; the final
    // release reclaims the device copy.
    Info.HostDead = true;
    {
      static MetricCounter *const ZombiesCreated =
          &MetricsRegistry::get().counter("runtime.zombies.created");
      ZombiesCreated->inc();
    }
    traceCall("free-deferred", Info, /*Copied=*/false);
    if (Observer)
      Observer->onDeferredReclaim(Info, "free");
    return;
  }
  AllocUnitInfo Dead = std::move(Info);
  forgetUnit(It);
  if (Observer)
    Observer->onUnitForgotten(Dead, "free");
}

//===----------------------------------------------------------------------===//
// Lookup
//===----------------------------------------------------------------------===//

const AllocUnitInfo *CGCMRuntime::lookup(uint64_t Ptr) const {
  // Fastest path: the per-call-site translation cache. The MRU chain
  // holds the two site slots filled most recently, covering the common
  // map/unmap/release runs a loop replays against one unit. An entry is
  // live only while its generation matches (every unit forget bumps it).
  if (XlatCacheEnabled) {
    for (unsigned I = 0; I != 2; ++I) {
      SiteInstruments *SI = XlatMRU[I];
      if (!SI)
        break;
      const XlatEntry &X = SI->Xlat;
      if (X.Gen == XlatGen && Ptr >= X.Base && Ptr < X.End) {
        static MetricCounter *const Hits =
            &MetricsRegistry::get().counter("runtime.xlat.hits");
        Hits->inc();
        if (I)
          std::swap(XlatMRU[0], XlatMRU[1]);
        return X.Unit;
      }
    }
  }
  // Fast path: the page index answers aligned in-coverage probes in one
  // step. Probe count replaces the old runtime.lookup.depth series (the
  // tree depth is meaningless here); a tree fallback charges the page
  // probe plus the ~log2(size) nodes the greatest-LTE search visits.
  static MetricHistogram *const Probes =
      &MetricsRegistry::get().histogram("runtime.index.probes");
  AddressIndex::Probe P = Index.probe(Ptr);
  if (P.Resolved) {
    Probes->record(P.Cost);
    return P.Unit;
  }
  Probes->record(P.Cost + std::bit_width(Units.size()));
  auto It = Units.upper_bound(Ptr);
  if (It == Units.begin())
    return nullptr;
  --It;
  const AllocUnitInfo &Info = It->second;
  if (Ptr >= Info.Base + Info.Size)
    return nullptr;
  return &Info;
}

AllocUnitInfo &CGCMRuntime::lookupOrFail(uint64_t Ptr, const char *Op) {
  const AllocUnitInfo *Info = lookup(Ptr);
  if (!Info)
    reportFatalError(std::string("cgcm runtime: ") + Op + " of pointer " +
                     std::to_string(Ptr) +
                     " which is in no tracked allocation unit");
  return const_cast<AllocUnitInfo &>(*Info);
}

size_t CGCMRuntime::getNumMappedUnits() const {
  size_t N = 0;
  for (const auto &[Base, Info] : Units)
    if (Info.RefCount > 0)
      ++N;
  return N;
}

bool CGCMRuntime::translateToDevice(uint64_t HostPtr, uint64_t &DevPtr) const {
  const AllocUnitInfo *Info = lookup(HostPtr);
  if (!Info || Info->RefCount == 0)
    return false;
  DevPtr = Info->DevPtr + (HostPtr - Info->Base);
  return true;
}

bool CGCMRuntime::setHostPinned(uint64_t Ptr, bool Pinned) {
  const AllocUnitInfo *Info = lookup(Ptr);
  if (!Info)
    return false;
  const_cast<AllocUnitInfo *>(Info)->Pinned = Pinned;
  return true;
}

//===----------------------------------------------------------------------===//
// Internal teardown helpers
//===----------------------------------------------------------------------===//

void CGCMRuntime::releaseSnapshotElements(AllocUnitInfo &Info) {
  std::vector<std::vector<uint64_t>> Snapshots =
      std::move(Info.ElemSnapshots);
  Info.ElemSnapshots.clear();
  for (auto SI = Snapshots.rbegin(), SE = Snapshots.rend(); SI != SE; ++SI) {
    for (uint64_t Elem : *SI) {
      const AllocUnitInfo *E = lookup(Elem);
      if (!E || E == &Info)
        continue; // Element vanished, or a pathological self-pointer.
      auto &Unit = const_cast<AllocUnitInfo &>(*E);
      if (Unit.RefCount == 0)
        continue;
      --Unit.RefCount;
      bool Freed = false;
      if (Unit.RefCount == 0 && !Unit.IsGlobal) {
        devFor(Unit).cuMemFree(Unit.DevPtr);
        freeReplicas(Unit);
        Unit.DevPtr = 0;
        Unit.IsPointerArray = false;
        Unit.ElemSnapshots.clear();
        Freed = true;
      }
      if (Observer)
        Observer->onRelease(Unit, Freed);
      if (Unit.RefCount == 0 && Unit.HostDead) {
        AllocUnitInfo Dead = std::move(Unit);
        forgetUnit(Dead.Base, Dead.Size);
        scrubSnapshots(Dead.Base, Dead.Base + Dead.Size);
        if (Observer)
          Observer->onUnitForgotten(Dead, "release");
      }
    }
  }
}

void CGCMRuntime::forceReclaim(AllocUnitInfo &Info, const char *Why) {
  releaseSnapshotElements(Info);
  if (!Info.IsGlobal && Info.RefCount > 0)
    devFor(Info).cuMemFree(Info.DevPtr);
  freeReplicas(Info);
  AllocUnitInfo Dead = std::move(Info);
  forgetUnit(Dead.Base, Dead.Size);
  // Outstanding snapshots of other pointer arrays may still list element
  // pointers into the reclaimed range; those references died with the
  // unit.
  scrubSnapshots(Dead.Base, Dead.Base + Dead.Size);
  if (Observer)
    Observer->onUnitForgotten(Dead, Why);
}

void CGCMRuntime::scrubSnapshots(uint64_t Lo, uint64_t Hi) {
  for (auto &[B, U] : Units)
    for (auto &Snap : U.ElemSnapshots)
      Snap.erase(std::remove_if(Snap.begin(), Snap.end(),
                                [&](uint64_t E) { return E >= Lo && E < Hi; }),
                 Snap.end());
}

//===----------------------------------------------------------------------===//
// map / unmap / release (Algorithms 1-3)
//===----------------------------------------------------------------------===//

uint64_t CGCMRuntime::map(uint64_t Ptr) {
  const auto HostT0 = std::chrono::steady_clock::now();
  const double ClockT0 = clockNow();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "map");
  if (Info.HostDead)
    reportFatalError("cgcm runtime: map of an allocation unit whose host "
                     "memory was already freed");
  chargeCall();
  bool Copied = false;
  if (Info.Ledger)
    ++Info.Ledger->MapCalls;
  if (Info.RefCount > 0 && !RefCountReuseEnabled) {
    // Ablation: pretend we did not know the unit was resident.
    auto R = devFor(Info).cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size,
                                       Info.Pinned);
    Copied = true;
    if (Info.Ledger) {
      Info.Ledger->BytesHtoD += Info.Size;
      ++Info.Ledger->TransfersHtoD;
      if (R.Coalesced)
        ++Info.Ledger->Coalesced;
    }
  }
  if (Info.RefCount == 0) {
    pickHomeDevice(Info);
    GPUDevice &Dev = devFor(Info);
    if (!Info.IsGlobal)
      Info.DevPtr = Dev.cuMemAlloc(Info.Size);
    else
      Info.DevPtr = Dev.cuModuleGetGlobal(Info.Name, Info.Size);
    auto R = Dev.cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size,
                              Info.Pinned);
    Copied = true;
    if (Info.Ledger) {
      Info.Ledger->BytesHtoD += Info.Size;
      ++Info.Ledger->TransfersHtoD;
      if (R.Coalesced)
        ++Info.Ledger->Coalesced;
    }
    // A fresh GPU copy is current as of this epoch; unmap needs to copy
    // back only after a later kernel launch.
    Info.Epoch = GlobalEpoch;
  } else if (RefCountReuseEnabled) {
    // The reference-count test suppressed a host-to-device copy.
    if (Info.Ledger)
      ++Info.Ledger->ReuseSuppressed;
  }
  ++Info.RefCount;
  traceCall("map", Info, Copied);
  if (Observer)
    Observer->onMap(Info, Copied);
  SiteInstruments &SI = siteInstruments(Info.Ledger);
  SI.MapCycles->record(static_cast<uint64_t>(clockNow() - ClockT0));
  SI.MapHostNs->record(hostNsSince(HostT0));
  cacheXlat(SI, Info);
  return Info.DevPtr + (Ptr - Info.Base);
}

void CGCMRuntime::unmap(uint64_t Ptr) {
  const auto HostT0 = std::chrono::steady_clock::now();
  const double ClockT0 = clockNow();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "unmap");
  if (Info.RefCount == 0)
    return; // Nothing on the GPU to copy back; a no-op costs nothing.
  chargeCall();
  bool Copied = false;
  if (Info.Ledger)
    ++Info.Ledger->UnmapCalls;
  // A host-dead unit has no host buffer to update: the copy-back is
  // skipped, not merely suppressed. A pointer-array unit's GPU copy holds
  // *translated* device pointers: copying it back verbatim would corrupt
  // the host array, so scalar unmap skips it exactly as unmapArray does
  // (the elements are updated by the paired unmapArray walk).
  if ((Info.Epoch != GlobalEpoch || !EpochCheckEnabled) && !Info.IsReadOnly &&
      !Info.HostDead && !Info.IsPointerArray) {
    auto R = devFor(Info).cuMemcpyDtoH(Host, Info.Base, Info.DevPtr, Info.Size,
                                       Info.Pinned);
    Copied = true;
    if (Info.Ledger) {
      Info.Ledger->BytesDtoH += Info.Size;
      ++Info.Ledger->TransfersDtoH;
      if (R.Coalesced)
        ++Info.Ledger->Coalesced;
    }
    Info.Epoch = GlobalEpoch;
  } else if (Info.Epoch == GlobalEpoch && EpochCheckEnabled &&
             !Info.IsReadOnly && !Info.HostDead && !Info.IsPointerArray) {
    // The epoch test proved the host copy current: a suppressed copy.
    ++Stats.EpochSuppressedCopies;
    if (Info.Ledger)
      ++Info.Ledger->EpochSuppressed;
  }
  traceCall("unmap", Info, Copied);
  if (Observer)
    Observer->onUnmap(Info, Copied);
  SiteInstruments &SI = siteInstruments(Info.Ledger);
  SI.UnmapCycles->record(static_cast<uint64_t>(clockNow() - ClockT0));
  SI.UnmapHostNs->record(hostNsSince(HostT0));
  cacheXlat(SI, Info);
}

void CGCMRuntime::release(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "release");
  if (Info.RefCount == 0)
    reportFatalError("cgcm runtime: release of an unmapped allocation unit");
  chargeCall();
  if (Info.Ledger)
    ++Info.Ledger->ReleaseCalls;
  --Info.RefCount;
  bool Freed = false;
  if (Info.RefCount == 0 && !Info.IsGlobal) {
    devFor(Info).cuMemFree(Info.DevPtr);
    freeReplicas(Info);
    Info.DevPtr = 0;
    Info.IsPointerArray = false;
    Info.ElemSnapshots.clear();
    Freed = true;
  }
  traceCall("release", Info, /*Copied=*/false);
  if (Observer)
    Observer->onRelease(Info, Freed);
  if (Info.RefCount == 0 && Info.HostDead) {
    // Last outstanding reference to a unit whose host memory is gone:
    // nothing can legitimately name it again, so stop tracking it. An
    // outstanding mapArray snapshot may still list it (the scalar
    // reference can outlive the table's), so scrub like forceReclaim.
    AllocUnitInfo Dead = std::move(Info);
    forgetUnit(Dead.Base, Dead.Size);
    scrubSnapshots(Dead.Base, Dead.Base + Dead.Size);
    if (Observer)
      Observer->onUnitForgotten(Dead, "release");
  }
}

//===----------------------------------------------------------------------===//
// Array variants (doubly indirect pointers)
//===----------------------------------------------------------------------===//

uint64_t CGCMRuntime::mapArray(uint64_t Ptr) {
  const auto HostT0 = std::chrono::steady_clock::now();
  const double ClockT0 = clockNow();
  AllocUnitInfo &Info = lookupOrFail(Ptr, "mapArray");
  if (Info.HostDead)
    reportFatalError("cgcm runtime: mapArray of an allocation unit whose "
                     "host memory was already freed");
  chargeCall();
  if (Info.Ledger)
    ++Info.Ledger->MapCalls;
  uint64_t NumSlots = Info.Size / 8;
  bool FirstMap = Info.RefCount == 0;
  // Honor the reference-count ablation exactly like scalar map: with
  // reuse disabled, a re-map re-copies the raw bytes too.
  bool NeedsCopy = FirstMap || !RefCountReuseEnabled;

  // Map every pointer currently stored in the unit, translating to device
  // pointers, and snapshot exactly what was mapped: the paired
  // unmapArray/releaseArray walk this snapshot, so host slots overwritten
  // while the array is mapped cannot leak or misdirect a reference.
  std::vector<uint64_t> Snapshot;
  std::vector<uint64_t> Translated(NumSlots, 0);
  for (uint64_t I = 0; I != NumSlots; ++I) {
    uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
    if (Elem == 0)
      continue;
    // Nested map() never rebalances away Info: std::map nodes are stable.
    Translated[I] = map(Elem);
    Snapshot.push_back(Elem);
  }

  if (FirstMap) {
    pickHomeDevice(Info);
    GPUDevice &Dev = devFor(Info);
    if (!Info.IsGlobal)
      Info.DevPtr = Dev.cuMemAlloc(Info.Size);
    else
      Info.DevPtr = Dev.cuModuleGetGlobal(Info.Name, Info.Size);
    Info.Epoch = GlobalEpoch;
  }
  if (NeedsCopy) {
    // The device copy holds *translated* pointers, not raw host bytes.
    // Transfer cost is identical to a raw copy of the unit (and the raw
    // copy carries any non-pointer tail bytes when Size % 8 != 0).
    auto R = devFor(Info).cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size,
                                       Info.Pinned);
    if (Info.Ledger) {
      Info.Ledger->BytesHtoD += Info.Size;
      ++Info.Ledger->TransfersHtoD;
      if (R.Coalesced)
        ++Info.Ledger->Coalesced;
    }
  } else if (Info.Ledger) {
    ++Info.Ledger->ReuseSuppressed;
  }
  // Refresh every slot's translation in the device copy — on a re-map
  // too, so a host slot updated between maps cannot leave a stale device
  // pointer behind.
  for (uint64_t I = 0; I != NumSlots; ++I)
    devFor(Info).getMemory().writeUInt(Info.DevPtr + I * 8, Translated[I], 8);
  Info.IsPointerArray = true;
  Info.ElemSnapshots.push_back(std::move(Snapshot));
  ++Info.RefCount;
  traceCall("mapArray", Info, NeedsCopy);
  if (Observer)
    Observer->onMap(Info, NeedsCopy);
  SiteInstruments &SI = siteInstruments(Info.Ledger);
  SI.MapArrayCycles->record(static_cast<uint64_t>(clockNow() - ClockT0));
  SI.MapArrayHostNs->record(hostNsSince(HostT0));
  cacheXlat(SI, Info);
  return Info.DevPtr + (Ptr - Info.Base);
}

void CGCMRuntime::unmapArray(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "unmapArray");
  if (Info.RefCount == 0)
    return; // Matches scalar unmap: nothing resident, a no-op costs nothing.
  chargeCall();
  if (Info.Ledger)
    ++Info.Ledger->UnmapCalls;
  // Update each pointed-to unit from the GPU — the ones this array's most
  // recent mapArray actually mapped, not whatever the host slots hold
  // now. The pointer array itself is not copied back: its GPU copy holds
  // device pointers that would corrupt the host array.
  if (!Info.ElemSnapshots.empty()) {
    for (uint64_t Elem : Info.ElemSnapshots.back()) {
      // Tolerate vanished elements exactly like releaseSnapshotElements:
      // a release of a host-dead element (or an eviction scrub racing an
      // older snapshot) can erase the unit while this snapshot still
      // lists it; there is nothing left to sync.
      const AllocUnitInfo *E = lookup(Elem);
      if (!E || E == &Info)
        continue;
      unmap(Elem);
    }
  } else {
    // Mapped without mapArray (manual runtime use): fall back to the
    // host slots.
    uint64_t NumSlots = Info.Size / 8;
    for (uint64_t I = 0; I != NumSlots; ++I) {
      uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
      if (Elem == 0)
        continue;
      unmap(Elem);
    }
  }
  traceCall("unmapArray", Info, /*Copied=*/false);
  if (Observer)
    Observer->onUnmap(Info, /*Copied=*/false);
}

void CGCMRuntime::releaseArray(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "releaseArray");
  if (Info.RefCount == 0)
    reportFatalError("cgcm runtime: release of an unmapped allocation unit");
  chargeCall();
  uint64_t Base = Info.Base;
  if (!Info.ElemSnapshots.empty()) {
    // Release exactly the elements the matching mapArray mapped. Without
    // the snapshot, a host slot overwritten between map and release
    // leaked the originally-mapped element's refcount and underflowed
    // the new occupant's.
    std::vector<uint64_t> Snapshot = std::move(Info.ElemSnapshots.back());
    Info.ElemSnapshots.pop_back();
    for (uint64_t Elem : Snapshot)
      release(Elem);
  } else {
    uint64_t NumSlots = Info.Size / 8;
    for (uint64_t I = 0; I != NumSlots; ++I) {
      uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
      if (Elem == 0)
        continue;
      release(Elem);
    }
  }
  release(Base);
}

void CGCMRuntime::onKernelLaunch() {
  ++GlobalEpoch;
  if (Trace && Trace->isEnabled())
    Trace->instant("epoch", "runtime", clockNow(),
                   TraceArgs().add("epoch", GlobalEpoch));
  if (Observer)
    Observer->onKernelLaunch(GlobalEpoch);
}

void CGCMRuntime::releaseAll() {
  for (auto It = Units.begin(); It != Units.end();) {
    AllocUnitInfo &Info = It->second;
    if (Info.RefCount > 0 && !Info.IsGlobal)
      devFor(Info).cuMemFree(Info.DevPtr);
    freeReplicas(Info);
    if (Info.HostDead) {
      AllocUnitInfo Dead = std::move(Info);
      It = forgetUnit(It);
      if (Observer)
        Observer->onUnitForgotten(Dead, "release-all");
      continue;
    }
    // Reset the whole mapping state, not just the refcount: stale
    // IsPointerArray/Epoch/snapshots would corrupt the unit's next
    // mapping generation.
    Info.RefCount = 0;
    Info.DevPtr = 0;
    Info.Epoch = 0;
    Info.IsPointerArray = false;
    Info.ElemSnapshots.clear();
    ++It;
  }
}
