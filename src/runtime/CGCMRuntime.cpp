//===- runtime/CGCMRuntime.cpp - The CGCM run-time library ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "runtime/CGCMRuntime.h"

#include "support/ErrorHandling.h"

#include <vector>

using namespace cgcm;

void CGCMRuntime::chargeCall() {
  Stats.RuntimeCycles += TM.RuntimeCallOverhead;
  ++Stats.RuntimeCalls;
}

void CGCMRuntime::traceCall(const char *Op, const AllocUnitInfo &Info,
                            bool Copied) {
  if (!Trace || !Trace->isEnabled())
    return;
  Trace->complete(Op, "runtime", Stats.totalCycles(), TM.RuntimeCallOverhead,
                  TraceArgs()
                      .add("base", Info.Base)
                      .add("size", Info.Size)
                      .add("refcount", Info.RefCount)
                      .add("epoch", Info.Epoch)
                      .add("copied", Copied));
}

//===----------------------------------------------------------------------===//
// Tracking (section 3.1)
//===----------------------------------------------------------------------===//

void CGCMRuntime::declareGlobal(const std::string &Name, uint64_t Ptr,
                                uint64_t Size, bool IsReadOnly) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Info.IsGlobal = true;
  Info.IsReadOnly = IsReadOnly;
  Info.Name = Name;
  Info.Ledger = Ledger.entryFor("global " + Name, SourceLoc::none());
  ++Info.Ledger->Units;
  Units[Ptr] = Info;
}

void CGCMRuntime::declareAlloca(uint64_t Ptr, uint64_t Size, SourceLoc Loc) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Info.Ledger = Ledger.entryFor(
      Loc.isValid() ? "alloca@" + Loc.getString() : "alloca@<unknown>", Loc);
  ++Info.Ledger->Units;
  Units[Ptr] = Info;
}

void CGCMRuntime::removeAlloca(uint64_t Ptr) {
  auto It = Units.find(Ptr);
  if (It == Units.end())
    return;
  // A mapped stack unit going out of scope releases its GPU copy; keeping
  // it would leak device memory for the rest of the program.
  if (It->second.RefCount > 0 && !It->second.IsGlobal)
    Device.cuMemFree(It->second.DevPtr);
  Units.erase(It);
}

void CGCMRuntime::notifyHeapAlloc(uint64_t Ptr, uint64_t Size,
                                  SourceLoc Loc) {
  chargeCall();
  AllocUnitInfo Info;
  Info.Base = Ptr;
  Info.Size = Size;
  Info.Ledger = Ledger.entryFor(
      Loc.isValid() ? "heap@" + Loc.getString() : "heap@<unknown>", Loc);
  ++Info.Ledger->Units;
  Units[Ptr] = Info;
}

void CGCMRuntime::notifyHeapRealloc(uint64_t OldPtr, uint64_t NewPtr,
                                    uint64_t NewSize, SourceLoc Loc) {
  auto It = Units.find(OldPtr);
  if (It == Units.end())
    reportFatalError("cgcm runtime: realloc of untracked heap pointer");
  // One user-level realloc is one runtime call: charge once, not once per
  // internal free/alloc step.
  chargeCall();
  if (It->second.RefCount > 0 && !It->second.IsGlobal)
    Device.cuMemFree(It->second.DevPtr);
  Units.erase(It);
  AllocUnitInfo Info;
  Info.Base = NewPtr;
  Info.Size = NewSize;
  Info.Ledger = Ledger.entryFor(
      Loc.isValid() ? "heap@" + Loc.getString() : "heap@<unknown>", Loc);
  ++Info.Ledger->Units;
  Units[NewPtr] = Info;
}

void CGCMRuntime::notifyHeapFree(uint64_t Ptr) {
  auto It = Units.find(Ptr);
  if (It == Units.end())
    reportFatalError("cgcm runtime: free of untracked heap pointer");
  chargeCall();
  if (It->second.RefCount > 0 && !It->second.IsGlobal)
    Device.cuMemFree(It->second.DevPtr);
  Units.erase(It);
}

//===----------------------------------------------------------------------===//
// Lookup
//===----------------------------------------------------------------------===//

const AllocUnitInfo *CGCMRuntime::lookup(uint64_t Ptr) const {
  auto It = Units.upper_bound(Ptr);
  if (It == Units.begin())
    return nullptr;
  --It;
  const AllocUnitInfo &Info = It->second;
  if (Ptr >= Info.Base + Info.Size)
    return nullptr;
  return &Info;
}

AllocUnitInfo &CGCMRuntime::lookupOrFail(uint64_t Ptr, const char *Op) {
  const AllocUnitInfo *Info = lookup(Ptr);
  if (!Info)
    reportFatalError(std::string("cgcm runtime: ") + Op + " of pointer " +
                     std::to_string(Ptr) +
                     " which is in no tracked allocation unit");
  return const_cast<AllocUnitInfo &>(*Info);
}

size_t CGCMRuntime::getNumMappedUnits() const {
  size_t N = 0;
  for (const auto &[Base, Info] : Units)
    if (Info.RefCount > 0)
      ++N;
  return N;
}

bool CGCMRuntime::translateToDevice(uint64_t HostPtr, uint64_t &DevPtr) const {
  const AllocUnitInfo *Info = lookup(HostPtr);
  if (!Info || Info->RefCount == 0)
    return false;
  DevPtr = Info->DevPtr + (HostPtr - Info->Base);
  return true;
}

//===----------------------------------------------------------------------===//
// map / unmap / release (Algorithms 1-3)
//===----------------------------------------------------------------------===//

uint64_t CGCMRuntime::map(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "map");
  chargeCall();
  bool Copied = false;
  if (Info.Ledger)
    ++Info.Ledger->MapCalls;
  if (Info.RefCount > 0 && !RefCountReuseEnabled) {
    // Ablation: pretend we did not know the unit was resident.
    Device.cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size);
    Copied = true;
    if (Info.Ledger) {
      Info.Ledger->BytesHtoD += Info.Size;
      ++Info.Ledger->TransfersHtoD;
    }
  }
  if (Info.RefCount == 0) {
    if (!Info.IsGlobal)
      Info.DevPtr = Device.cuMemAlloc(Info.Size);
    else
      Info.DevPtr = Device.cuModuleGetGlobal(Info.Name, Info.Size);
    Device.cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size);
    Copied = true;
    if (Info.Ledger) {
      Info.Ledger->BytesHtoD += Info.Size;
      ++Info.Ledger->TransfersHtoD;
    }
    // A fresh GPU copy is current as of this epoch; unmap needs to copy
    // back only after a later kernel launch.
    Info.Epoch = GlobalEpoch;
  } else if (RefCountReuseEnabled) {
    // The reference-count test suppressed a host-to-device copy.
    if (Info.Ledger)
      ++Info.Ledger->ReuseSuppressed;
  }
  ++Info.RefCount;
  traceCall("map", Info, Copied);
  return Info.DevPtr + (Ptr - Info.Base);
}

void CGCMRuntime::unmap(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "unmap");
  if (Info.RefCount == 0)
    return; // Nothing on the GPU to copy back; a no-op costs nothing.
  chargeCall();
  bool Copied = false;
  if (Info.Ledger)
    ++Info.Ledger->UnmapCalls;
  if ((Info.Epoch != GlobalEpoch || !EpochCheckEnabled) && !Info.IsReadOnly) {
    Device.cuMemcpyDtoH(Host, Info.Base, Info.DevPtr, Info.Size);
    Copied = true;
    if (Info.Ledger) {
      Info.Ledger->BytesDtoH += Info.Size;
      ++Info.Ledger->TransfersDtoH;
    }
    Info.Epoch = GlobalEpoch;
  } else if (Info.Epoch == GlobalEpoch && EpochCheckEnabled &&
             !Info.IsReadOnly) {
    // The epoch test proved the host copy current: a suppressed copy.
    ++Stats.EpochSuppressedCopies;
    if (Info.Ledger)
      ++Info.Ledger->EpochSuppressed;
  }
  traceCall("unmap", Info, Copied);
}

void CGCMRuntime::release(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "release");
  if (Info.RefCount == 0)
    reportFatalError("cgcm runtime: release of an unmapped allocation unit");
  chargeCall();
  if (Info.Ledger)
    ++Info.Ledger->ReleaseCalls;
  --Info.RefCount;
  if (Info.RefCount == 0 && !Info.IsGlobal) {
    Device.cuMemFree(Info.DevPtr);
    Info.DevPtr = 0;
    Info.IsPointerArray = false;
  }
  traceCall("release", Info, /*Copied=*/false);
}

//===----------------------------------------------------------------------===//
// Array variants (doubly indirect pointers)
//===----------------------------------------------------------------------===//

uint64_t CGCMRuntime::mapArray(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "mapArray");
  chargeCall();
  if (Info.Ledger)
    ++Info.Ledger->MapCalls;
  uint64_t NumSlots = Info.Size / 8;
  bool NeedsCopy = Info.RefCount == 0;

  // Map every pointer stored in the unit, translating to device pointers.
  std::vector<uint64_t> Translated(NumSlots, 0);
  for (uint64_t I = 0; I != NumSlots; ++I) {
    uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
    if (Elem == 0)
      continue;
    Translated[I] = map(Elem);
  }

  // lookupOrFail reference may have been invalidated by nested map()
  // rebalancing? std::map nodes are stable, so Info stays valid.
  if (NeedsCopy) {
    if (!Info.IsGlobal)
      Info.DevPtr = Device.cuMemAlloc(Info.Size);
    else
      Info.DevPtr = Device.cuModuleGetGlobal(Info.Name, Info.Size);
    // The device copy holds *translated* pointers, not raw host bytes.
    // Transfer cost is identical to a raw copy of the unit.
    Device.cuMemcpyHtoD(Info.DevPtr, Host, Info.Base, Info.Size);
    if (Info.Ledger) {
      Info.Ledger->BytesHtoD += Info.Size;
      ++Info.Ledger->TransfersHtoD;
    }
    for (uint64_t I = 0; I != NumSlots; ++I)
      Device.getMemory().writeUInt(Info.DevPtr + I * 8, Translated[I], 8);
    Info.Epoch = GlobalEpoch;
    Info.IsPointerArray = true;
  } else if (Info.Ledger) {
    ++Info.Ledger->ReuseSuppressed;
  }
  ++Info.RefCount;
  traceCall("mapArray", Info, NeedsCopy);
  return Info.DevPtr + (Ptr - Info.Base);
}

void CGCMRuntime::unmapArray(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "unmapArray");
  chargeCall();
  if (Info.Ledger)
    ++Info.Ledger->UnmapCalls;
  // Update each pointed-to unit from the GPU. The pointer array itself is
  // not copied back: its GPU copy holds device pointers that would
  // corrupt the host array.
  uint64_t NumSlots = Info.Size / 8;
  for (uint64_t I = 0; I != NumSlots; ++I) {
    uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
    if (Elem == 0)
      continue;
    unmap(Elem);
  }
  traceCall("unmapArray", Info, /*Copied=*/false);
}

void CGCMRuntime::releaseArray(uint64_t Ptr) {
  AllocUnitInfo &Info = lookupOrFail(Ptr, "releaseArray");
  chargeCall();
  uint64_t NumSlots = Info.Size / 8;
  for (uint64_t I = 0; I != NumSlots; ++I) {
    uint64_t Elem = Host.readUInt(Info.Base + I * 8, 8);
    if (Elem == 0)
      continue;
    release(Elem);
  }
  release(Info.Base);
}

void CGCMRuntime::onKernelLaunch() {
  ++GlobalEpoch;
  if (Trace && Trace->isEnabled())
    Trace->instant("epoch", "runtime", Stats.totalCycles(),
                   TraceArgs().add("epoch", GlobalEpoch));
}

void CGCMRuntime::releaseAll() {
  for (auto &[Base, Info] : Units) {
    if (Info.RefCount == 0)
      continue;
    if (!Info.IsGlobal)
      Device.cuMemFree(Info.DevPtr);
    Info.RefCount = 0;
    Info.DevPtr = 0;
  }
}
