//===- runtime/CGCMRuntime.h - The CGCM run-time library --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's run-time support library (section 3). It tracks allocation
/// units in a self-balancing tree keyed by base address, translates CPU
/// pointers to equivalent GPU pointers, and manages GPU copies with
/// reference counts and a per-launch epoch:
///
///   map(ptr)      — Algorithm 1: copy the unit to the GPU on first map,
///                   bump its reference count, translate the pointer.
///   unmap(ptr)    — Algorithm 2: copy the unit back to the CPU at most
///                   once per epoch, unless it is read-only.
///   release(ptr)  — Algorithm 3: drop a reference; free the GPU copy at
///                   zero (globals are never freed).
///   mapArray / unmapArray / releaseArray — the same semantics for doubly
///                   indirect pointers: every CPU pointer stored in the
///                   unit is itself mapped and translated into the GPU
///                   copy of the array.
///   declareGlobal / declareAlloca / heap wrappers — section 3.1 tracking
///                   for globals, escaping stack variables, and the heap.
///
/// The runtime never consults static types: everything is an opaque
/// address, exactly as in the paper. Pointer arithmetic and aliasing are
/// handled by the greatest-lower-bound lookup over allocation units.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_RUNTIME_CGCMRUNTIME_H
#define CGCM_RUNTIME_CGCMRUNTIME_H

#include "gpusim/GPUDevice.h"
#include "gpusim/SimMemory.h"
#include "gpusim/Timing.h"
#include "runtime/TransferLedger.h"
#include "support/SourceLoc.h"
#include "support/Trace.h"

#include <cstdint>
#include <map>
#include <string>

namespace cgcm {

/// Allocation-unit bookkeeping record (the paper's allocInfoMap values).
struct AllocUnitInfo {
  uint64_t Base = 0;
  uint64_t Size = 0;
  uint64_t DevPtr = 0;
  unsigned RefCount = 0;
  uint64_t Epoch = 0;
  bool IsGlobal = false;
  bool IsReadOnly = false;
  bool IsPointerArray = false; ///< Mapped via mapArray.
  std::string Name;            ///< For globals: cuModuleGetGlobal key.
  LedgerEntry *Ledger = nullptr; ///< Allocation-site accounting row.
};

class CGCMRuntime {
public:
  CGCMRuntime(SimMemory &Host, GPUDevice &Device, TimingModel &TM,
              ExecStats &Stats)
      : Host(Host), Device(Device), TM(TM), Stats(Stats) {}

  //===--------------------------------------------------------------------===//
  // Section 3.1: tracking allocation units
  //===--------------------------------------------------------------------===//

  /// Registers a global variable (compiler inserts a call before main).
  /// Declaring at run time sidesteps position-independent code and ASLR,
  /// as the paper notes.
  void declareGlobal(const std::string &Name, uint64_t Ptr, uint64_t Size,
                     bool IsReadOnly);

  /// Registers an escaping stack variable. The registration expires when
  /// the frame is popped (removeAlloca). \p Loc is the source position of
  /// the allocating instruction, used to attribute the unit's transfers
  /// in the communication ledger.
  void declareAlloca(uint64_t Ptr, uint64_t Size,
                     SourceLoc Loc = SourceLoc::none());

  /// Expires a stack registration at scope exit.
  void removeAlloca(uint64_t Ptr);

  /// Heap wrapper hooks: malloc/calloc register, realloc re-registers,
  /// free unregisters. \p Loc attributes the unit in the ledger.
  void notifyHeapAlloc(uint64_t Ptr, uint64_t Size,
                       SourceLoc Loc = SourceLoc::none());
  void notifyHeapRealloc(uint64_t OldPtr, uint64_t NewPtr, uint64_t NewSize,
                         SourceLoc Loc = SourceLoc::none());
  void notifyHeapFree(uint64_t Ptr);

  //===--------------------------------------------------------------------===//
  // Section 3.2/3.3: mapping semantics
  //===--------------------------------------------------------------------===//

  /// Maps a CPU pointer to the equivalent GPU pointer (Algorithm 1).
  uint64_t map(uint64_t Ptr);

  /// Updates CPU memory from the GPU copy if stale (Algorithm 2).
  void unmap(uint64_t Ptr);

  /// Releases one reference to the GPU copy (Algorithm 3).
  void release(uint64_t Ptr);

  /// Array (doubly indirect) variants.
  uint64_t mapArray(uint64_t Ptr);
  void unmapArray(uint64_t Ptr);
  void releaseArray(uint64_t Ptr);

  /// Called on every kernel launch; advances the epoch that makes unmap
  /// copy back at most once per launch.
  void onKernelLaunch();

  uint64_t getEpoch() const { return GlobalEpoch; }

  //===--------------------------------------------------------------------===//
  // Introspection (tests, benches, inspector oracle)
  //===--------------------------------------------------------------------===//

  /// Greatest-LTE lookup; null if the pointer is in no tracked unit.
  const AllocUnitInfo *lookup(uint64_t Ptr) const;

  size_t getNumTrackedUnits() const { return Units.size(); }
  size_t getNumMappedUnits() const;

  /// Translates a host pointer to its device equivalent if the unit is
  /// currently mapped; returns false otherwise. (Used by the GPU executor
  /// to resolve pointers the compiler proved map-promotable.)
  bool translateToDevice(uint64_t HostPtr, uint64_t &DevPtr) const;

  /// Releases every mapped unit (end-of-program cleanup in tests).
  void releaseAll();

  //===--------------------------------------------------------------------===//
  // Observability
  //===--------------------------------------------------------------------===//

  /// Per-allocation-site communication accounting (always on).
  const TransferLedger &getLedger() const { return Ledger; }
  TransferLedger &getLedger() { return Ledger; }

  /// Attaches the machine's structured trace collector; runtime calls
  /// emit events into it when tracing is enabled. Null detaches.
  void setTrace(TraceCollector *T) { Trace = T; }

  //===--------------------------------------------------------------------===//
  // Ablation knobs (benchmarks only)
  //===--------------------------------------------------------------------===//

  /// Disables the epoch check: unmap copies back on every call, not once
  /// per kernel launch (ablates Algorithm 2's staleness test).
  void setEpochCheckEnabled(bool V) { EpochCheckEnabled = V; }

  /// Disables reference-count reuse: map re-copies host data even when
  /// the unit is already resident (ablates Algorithm 1's refCount test).
  void setRefCountReuseEnabled(bool V) { RefCountReuseEnabled = V; }

private:
  AllocUnitInfo &lookupOrFail(uint64_t Ptr, const char *Op);
  /// Charges one runtime call to the overhead counters. Entry points call
  /// this only after validating their arguments, so failed or no-op calls
  /// never inflate the modeled overhead.
  void chargeCall();
  /// Emits a runtime-call trace event for \p Info (no-op when tracing is
  /// off or no collector is attached).
  void traceCall(const char *Op, const AllocUnitInfo &Info, bool Copied);

  SimMemory &Host;
  GPUDevice &Device;
  TimingModel &TM;
  ExecStats &Stats;
  std::map<uint64_t, AllocUnitInfo> Units; ///< Keyed by base address.
  TransferLedger Ledger;
  TraceCollector *Trace = nullptr;
  uint64_t GlobalEpoch = 1;
  bool EpochCheckEnabled = true;
  bool RefCountReuseEnabled = true;
};

} // namespace cgcm

#endif // CGCM_RUNTIME_CGCMRUNTIME_H
