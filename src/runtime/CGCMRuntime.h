//===- runtime/CGCMRuntime.h - The CGCM run-time library --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's run-time support library (section 3). It tracks allocation
/// units in a self-balancing tree keyed by base address, translates CPU
/// pointers to equivalent GPU pointers, and manages GPU copies with
/// reference counts and a per-launch epoch:
///
///   map(ptr)      — Algorithm 1: copy the unit to the GPU on first map,
///                   bump its reference count, translate the pointer.
///   unmap(ptr)    — Algorithm 2: copy the unit back to the CPU at most
///                   once per epoch, unless it is read-only.
///   release(ptr)  — Algorithm 3: drop a reference; free the GPU copy at
///                   zero (globals are never freed).
///   mapArray / unmapArray / releaseArray — the same semantics for doubly
///                   indirect pointers: every CPU pointer stored in the
///                   unit is itself mapped and translated into the GPU
///                   copy of the array.
///   declareGlobal / declareAlloca / heap wrappers — section 3.1 tracking
///                   for globals, escaping stack variables, and the heap.
///
/// The runtime never consults static types: everything is an opaque
/// address, exactly as in the paper. Pointer arithmetic and aliasing are
/// handled by the greatest-lower-bound lookup over allocation units.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_RUNTIME_CGCMRUNTIME_H
#define CGCM_RUNTIME_CGCMRUNTIME_H

#include "gpusim/GPUDevice.h"
#include "gpusim/SimMemory.h"
#include "gpusim/Timing.h"
#include "runtime/AddressIndex.h"
#include "runtime/TransferLedger.h"
#include "support/SourceLoc.h"
#include "support/Trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cgcm {

class DevicePool;
class MetricHistogram;

/// How a multi-device runtime chooses the home device of a freshly
/// mapped allocation unit (docs/MultiGPU.md). Irrelevant with one
/// device: everything homes on device 0.
enum class PlacementPolicy {
  RoundRobin,    ///< Cycle through the pool in map order.
  BytesBalanced, ///< Home on the device with the fewest live bytes.
};

/// Allocation-unit bookkeeping record (the paper's allocInfoMap values).
struct AllocUnitInfo {
  uint64_t Base = 0;
  uint64_t Size = 0;
  uint64_t DevPtr = 0;
  unsigned RefCount = 0;
  uint64_t Epoch = 0;
  bool IsGlobal = false;
  bool IsReadOnly = false;
  bool IsPointerArray = false; ///< Mapped via mapArray.
  /// The host backing store was freed (heap free/realloc) while the GPU
  /// copy still had references. The unit stays tracked so the paired
  /// unmap/release calls the compiler already emitted still resolve;
  /// unmap skips the copy-back (the host buffer is gone) and the final
  /// release reclaims the device copy and forgets the unit.
  bool HostDead = false;
  /// The host buffer is page-locked: asynchronous copies of this unit
  /// skip the pageable staging cost (docs/TransferEngine.md). Purely a
  /// timing attribute; set via setHostPinned.
  bool Pinned = false;
  /// One entry per outstanding mapArray call: the non-null element
  /// pointers that call mapped, in slot order. unmapArray walks the top
  /// snapshot and releaseArray pops it, so a host slot overwritten while
  /// the array is mapped cannot leak the originally-mapped element's
  /// reference (the paper's pairing is by map generation, not by the
  /// host array's current contents).
  std::vector<std::vector<uint64_t>> ElemSnapshots;
  std::string Name;            ///< For globals: cuModuleGetGlobal key.
  LedgerEntry *Ledger = nullptr; ///< Allocation-site accounting row.

  //===--------------------------------------------------------------------===//
  // Multi-device residency (docs/MultiGPU.md). All fields are inert with
  // one device: HomeDevice stays 0 and no replicas are ever created.
  //===--------------------------------------------------------------------===//

  /// The device holding the authoritative mapped copy; DevPtr lives in
  /// this device's address window. Chosen by the placement policy at the
  /// map that takes the unit from zero references.
  unsigned HomeDevice = 0;
  /// For globals: the home sticks across map generations (the named
  /// device region is never freed).
  bool HomeChosen = false;
  /// Staleness epoch of the unit's contents. Host writes to a replicated
  /// unit bump it, invalidating every peer replica at once.
  uint64_t ContentVersion = 0;
  /// One peer replica per non-home device that received this unit for a
  /// sharded launch. Valid iff Version == ContentVersion.
  struct Replica {
    uint64_t DevPtr = 0;
    uint64_t Version = 0;
  };
  std::map<unsigned, Replica> Replicas;

  bool replicaValid(const Replica &R) const {
    return R.Version == ContentVersion;
  }
};

/// Observation hooks for every state transition the runtime performs.
/// The fuzzing subsystem's RuntimeAuditor implements this to maintain a
/// shadow reference-count model and cross-check it against the runtime's
/// own bookkeeping (docs/Fuzzing.md); tests use it to pin event orders.
/// All callbacks fire *after* the runtime applied the transition.
class RuntimeObserver {
public:
  virtual ~RuntimeObserver() = default;
  /// A unit entered the tracking map (declare*/notifyHeapAlloc/realloc).
  virtual void onUnitTracked(const AllocUnitInfo &Info) {}
  /// A unit left the tracking map. \p Why is one of "free", "realloc",
  /// "remove-alloca", "release", "release-all", or "evicted" (a new
  /// allocation reused the address range of a host-dead zombie).
  virtual void onUnitForgotten(const AllocUnitInfo &Info, const char *Why) {}
  virtual void onMap(const AllocUnitInfo &Info, bool Copied) {}
  virtual void onUnmap(const AllocUnitInfo &Info, bool Copied) {}
  virtual void onRelease(const AllocUnitInfo &Info, bool FreedDevice) {}
  virtual void onKernelLaunch(uint64_t NewEpoch) {}
  /// Destruction of a still-mapped unit was deferred (heap free/realloc
  /// with live references) or forced (alloca scope exit). \p Op is
  /// "free", "realloc", or "remove-alloca".
  virtual void onDeferredReclaim(const AllocUnitInfo &Info, const char *Op) {}
};

class CGCMRuntime {
public:
  CGCMRuntime(SimMemory &Host, GPUDevice &Device, TimingModel &TM,
              ExecStats &Stats)
      : Host(Host), Device(Device), TM(TM), Stats(Stats) {}

  //===--------------------------------------------------------------------===//
  // Section 3.1: tracking allocation units
  //===--------------------------------------------------------------------===//

  /// Registers a global variable (compiler inserts a call before main).
  /// Declaring at run time sidesteps position-independent code and ASLR,
  /// as the paper notes.
  void declareGlobal(const std::string &Name, uint64_t Ptr, uint64_t Size,
                     bool IsReadOnly);

  /// Registers an escaping stack variable. The registration expires when
  /// the frame is popped (removeAlloca). \p Loc is the source position of
  /// the allocating instruction, used to attribute the unit's transfers
  /// in the communication ledger.
  void declareAlloca(uint64_t Ptr, uint64_t Size,
                     SourceLoc Loc = SourceLoc::none());

  /// Expires a stack registration at scope exit.
  void removeAlloca(uint64_t Ptr);

  /// Heap wrapper hooks: malloc/calloc register, realloc re-registers,
  /// free unregisters. \p Loc attributes the unit in the ledger.
  void notifyHeapAlloc(uint64_t Ptr, uint64_t Size,
                       SourceLoc Loc = SourceLoc::none());
  void notifyHeapRealloc(uint64_t OldPtr, uint64_t NewPtr, uint64_t NewSize,
                         SourceLoc Loc = SourceLoc::none());
  void notifyHeapFree(uint64_t Ptr);

  //===--------------------------------------------------------------------===//
  // Section 3.2/3.3: mapping semantics
  //===--------------------------------------------------------------------===//

  /// Maps a CPU pointer to the equivalent GPU pointer (Algorithm 1).
  uint64_t map(uint64_t Ptr);

  /// Updates CPU memory from the GPU copy if stale (Algorithm 2).
  void unmap(uint64_t Ptr);

  /// Releases one reference to the GPU copy (Algorithm 3).
  void release(uint64_t Ptr);

  /// Array (doubly indirect) variants.
  uint64_t mapArray(uint64_t Ptr);
  void unmapArray(uint64_t Ptr);
  void releaseArray(uint64_t Ptr);

  /// Called on every kernel launch; advances the epoch that makes unmap
  /// copy back at most once per launch.
  void onKernelLaunch();

  uint64_t getEpoch() const { return GlobalEpoch; }

  //===--------------------------------------------------------------------===//
  // Introspection (tests, benches, inspector oracle)
  //===--------------------------------------------------------------------===//

  /// Greatest-LTE lookup; null if the pointer is in no tracked unit.
  const AllocUnitInfo *lookup(uint64_t Ptr) const;

  size_t getNumTrackedUnits() const { return Units.size(); }
  size_t getNumMappedUnits() const;

  /// Translates a host pointer to its device equivalent if the unit is
  /// currently mapped; returns false otherwise. (Used by the GPU executor
  /// to resolve pointers the compiler proved map-promotable.)
  bool translateToDevice(uint64_t HostPtr, uint64_t &DevPtr) const;

  /// Marks the unit containing \p Ptr as page-locked (or pageable again).
  /// Affects only the asynchronous staging cost model, never data or
  /// synchronous cost; returns false if the pointer is untracked.
  bool setHostPinned(uint64_t Ptr, bool Pinned);

  /// Releases every mapped unit (end-of-program cleanup in tests).
  void releaseAll();

  //===--------------------------------------------------------------------===//
  // Multi-device pool (docs/MultiGPU.md). Without a pool — or with a
  // pool of one — every path below is inert and the runtime behaves
  // byte-for-byte like the single-device original.
  //===--------------------------------------------------------------------===//

  /// Attaches the machine's device pool (null, or a pool of one,
  /// restores pure single-device behavior). Machine::setDevices calls
  /// this; the runtime keeps routing through its device reference for
  /// units homed on device 0.
  void setDevicePool(DevicePool *P) { Pool = P; }

  /// Placement policy for fresh maps (multi-device only).
  void setPlacementPolicy(PlacementPolicy P) { Placement = P; }
  PlacementPolicy getPlacementPolicy() const { return Placement; }

  /// Ensures device \p Dev holds a current replica of the mapped unit
  /// whose *device* (home) address range contains \p DevPtr, issuing a
  /// P2P copy from the home device when the replica is missing or stale.
  /// No-op when \p Dev is the home device or the pointer resolves to no
  /// mapped unit. Called by the interpreter before dispatching a shard.
  void replicateForDevice(uint64_t DevPtr, unsigned Dev);

  /// Modeled replication cost a sharded launch over devices
  /// [0, NumDevices) would incur for the unit holding \p DevPtr, split
  /// by how the cost recurs. StaleCycles prices replicas that exist but
  /// were invalidated by a host write — a cost that repeats every
  /// iteration of a host-touching loop. MissingCycles prices replicas
  /// that do not exist yet — a one-time setup cost that amortizes
  /// across the kernel's future launches. The interpreter's
  /// shard-profitability gate charges stale cost in full and missing
  /// cost divided by the timing model's amortization horizon.
  struct ReplicationEstimate {
    double StaleCycles = 0;
    double MissingCycles = 0;
  };
  ReplicationEstimate estimateReplicationCycles(uint64_t DevPtr,
                                                unsigned NumDevices) const;

  /// Notes a host write into a tracked unit: bumps the unit's content
  /// version, invalidating every device replica (cross-device
  /// invalidation on host writes). Cheap to call only when
  /// hasReplicas() is true; the interpreter gates on that.
  void noteHostWrite(uint64_t Addr);

  /// Whether any unit currently holds peer replicas (fast gate for the
  /// interpreter's host-write hook).
  bool hasReplicas() const { return LiveReplicas > 0; }

  /// Number of *current* (non-stale) peer replicas of the unit holding
  /// \p HostPtr (tests).
  size_t getNumValidReplicas(uint64_t HostPtr) const;

  //===--------------------------------------------------------------------===//
  // Observability
  //===--------------------------------------------------------------------===//

  /// Per-allocation-site communication accounting (always on).
  const TransferLedger &getLedger() const { return Ledger; }
  TransferLedger &getLedger() { return Ledger; }

  /// Attaches the machine's structured trace collector; runtime calls
  /// emit events into it when tracing is enabled. Null detaches.
  void setTrace(TraceCollector *T) { Trace = T; }

  /// Attaches an observer notified of every runtime state transition
  /// (the fuzzing auditor's hook). Null detaches.
  void setObserver(RuntimeObserver *O) { Observer = O; }

  //===--------------------------------------------------------------------===//
  // Ablation knobs (benchmarks only)
  //===--------------------------------------------------------------------===//

  /// Disables the epoch check: unmap copies back on every call, not once
  /// per kernel launch (ablates Algorithm 2's staleness test).
  void setEpochCheckEnabled(bool V) { EpochCheckEnabled = V; }

  /// Disables reference-count reuse: map re-copies host data even when
  /// the unit is already resident (ablates Algorithm 1's refCount test).
  void setRefCountReuseEnabled(bool V) { RefCountReuseEnabled = V; }

  /// Enables/disables the per-call-site translation cache (on by
  /// default). Purely a host-time optimization: every modeled cycle,
  /// ledger counter, and byte of data is identical either way. The
  /// cgcmc `--no-xlat-cache` flag and the fuzz differ's force-enabled
  /// configuration drive this.
  void setXlatCacheEnabled(bool V) {
    XlatCacheEnabled = V;
    XlatMRU[0] = XlatMRU[1] = nullptr;
  }
  bool isXlatCacheEnabled() const { return XlatCacheEnabled; }

  /// Whether the radix index can currently resolve probes without the
  /// tree (tests; false once a unit outside its window was tracked).
  bool indexCoversAll() const { return Index.coversAll(); }

private:
  /// The device a unit's mapped traffic routes through: its home device
  /// when a multi-device pool is attached, the single device otherwise.
  GPUDevice &devFor(const AllocUnitInfo &Info);
  /// Picks (once) the home device for a unit about to be mapped fresh.
  unsigned pickHomeDevice(AllocUnitInfo &Info);
  /// Frees every peer replica of \p Info (release-at-zero and teardown).
  void freeReplicas(AllocUnitInfo &Info);
  /// The mapped unit whose home-device copy contains \p DevAddr, or
  /// null. Linear in the number of mapped units; only sharded-launch
  /// paths use it.
  AllocUnitInfo *findByDevicePtr(uint64_t DevAddr);

  AllocUnitInfo &lookupOrFail(uint64_t Ptr, const char *Op);
  /// Charges one runtime call to the overhead counters. Entry points call
  /// this only after validating their arguments, so failed or no-op calls
  /// never inflate the modeled overhead.
  void chargeCall();
  /// Emits a runtime-call trace event for \p Info (no-op when tracing is
  /// off or no collector is attached).
  void traceCall(const char *Op, const AllocUnitInfo &Info, bool Copied);
  /// The host-lane clock for runtime trace events: the stream engine's
  /// hostNow() on asynchronous runs, ExecStats::totalCycles() otherwise
  /// (identical values on a synchronous run).
  double clockNow() const;
  /// Registers a fresh unit, first force-reclaiming any host-dead zombie
  /// whose range the new allocation reuses (the host allocator may hand
  /// the same addresses out again).
  void trackUnit(AllocUnitInfo Info);
  /// Drops every reference a zombie still holds (nested element
  /// snapshots included), frees its device copy, and forgets it.
  void forceReclaim(AllocUnitInfo &Info, const char *Why);
  /// Releases the element references recorded in every outstanding
  /// mapArray snapshot of \p Info (used when the array unit itself is
  /// being torn down rather than released pairwise).
  void releaseSnapshotElements(AllocUnitInfo &Info);
  /// Removes element pointers into [Lo, Hi) from every outstanding
  /// mapArray snapshot. Must run whenever a unit leaves the tracking map
  /// while snapshots may still list it — otherwise the paired
  /// unmapArray/releaseArray misdirects an unmap or release at whatever
  /// owns the range next.
  void scrubSnapshots(uint64_t Lo, uint64_t Hi);

  /// One call site's cached pointer translation: the unit the site
  /// touched last, valid while Gen matches the runtime's XlatGen.
  /// Every path that forgets a unit bumps the generation, so a cached
  /// translation can never survive free, realloc, zombie eviction, or
  /// address-reuse re-tracking. Zombie *transitions* (HostDead flips
  /// while the unit stays tracked) need no invalidation: the cached
  /// pointer reads the live node, so map's host-dead check still fires.
  struct XlatEntry {
    uint64_t Base = 0;
    uint64_t End = 0;
    const AllocUnitInfo *Unit = nullptr;
    uint64_t Gen = 0;
  };

  /// Per-allocation-site latency instruments in the process-wide metrics
  /// registry (support/Metrics.h), cached by ledger entry so the hot
  /// path pays one tree lookup instead of a registry string lookup.
  /// Modeled-cycle histograms feed the attribution profiler; the host-ns
  /// variants measure the runtime's own wall overhead and are filtered
  /// as noisy by cgcm-metrics-diff. The translation-cache entry rides in
  /// the same per-site slot (the slot's address is stable: SiteCache is
  /// a std::map that is never erased from).
  struct SiteInstruments {
    MetricHistogram *MapCycles = nullptr;
    MetricHistogram *MapArrayCycles = nullptr;
    MetricHistogram *UnmapCycles = nullptr;
    MetricHistogram *MapHostNs = nullptr;
    MetricHistogram *MapArrayHostNs = nullptr;
    MetricHistogram *UnmapHostNs = nullptr;
    XlatEntry Xlat;
  };
  SiteInstruments &siteInstruments(const LedgerEntry *E);

  /// Records \p Info as \p SI's last-touched unit and promotes the site
  /// to the front of the MRU probe chain.
  void cacheXlat(SiteInstruments &SI, const AllocUnitInfo &Info);

  /// Erases the unit at \p It from the tracking map, drops its index
  /// coverage, and invalidates every cached site translation. ALL unit
  /// forgetting must funnel through one of these overloads. Returns the
  /// iterator past the erased unit.
  std::map<uint64_t, AllocUnitInfo>::iterator
  forgetUnit(std::map<uint64_t, AllocUnitInfo>::iterator It);
  /// Key-based overload for teardown paths holding only the dead unit's
  /// range (\p Size is needed to drop the index coverage).
  void forgetUnit(uint64_t Base, uint64_t Size);

  SimMemory &Host;
  GPUDevice &Device;
  TimingModel &TM;
  ExecStats &Stats;
  std::map<uint64_t, AllocUnitInfo> Units; ///< Keyed by base address.
  /// Page-granular accelerator over Units; holds raw pointers into the
  /// tree's stable nodes.
  AddressIndex Index;
  std::map<const LedgerEntry *, SiteInstruments> SiteCache;
  /// Translation-cache generation; bumping it (every unit forget)
  /// invalidates every cached XlatEntry at once.
  uint64_t XlatGen = 1;
  /// The two most recently filled site slots, probed before the index.
  /// Mutable: lookup() is const but maintains the MRU order.
  mutable SiteInstruments *XlatMRU[2] = {nullptr, nullptr};
  bool XlatCacheEnabled = true;
  TransferLedger Ledger;
  TraceCollector *Trace = nullptr;
  RuntimeObserver *Observer = nullptr;
  uint64_t GlobalEpoch = 1;
  bool EpochCheckEnabled = true;
  bool RefCountReuseEnabled = true;

  /// Multi-device state (all inert without a pool of more than one).
  DevicePool *Pool = nullptr;
  PlacementPolicy Placement = PlacementPolicy::RoundRobin;
  uint64_t NextPlacement = 0; ///< Round-robin cursor.
  uint64_t LiveReplicas = 0;  ///< Peer replicas currently allocated.
};

} // namespace cgcm

#endif // CGCM_RUNTIME_CGCMRUNTIME_H
