//===- runtime/RuntimeAuditor.cpp - Shadow-refcount runtime oracle ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "runtime/RuntimeAuditor.h"

#include "gpusim/GPUDevice.h"
#include "gpusim/Timing.h"

#include <cstring>

using namespace cgcm;

std::string AuditReport::str() const {
  std::string Out;
  for (const std::string &V : Violations) {
    if (!Out.empty())
      Out += '\n';
    Out += V;
  }
  if (DroppedViolations)
    Out += "\n... and " + std::to_string(DroppedViolations) + " more";
  return Out;
}

void RuntimeAuditor::violation(std::string Msg) {
  if (Report.Violations.size() >= Opts.MaxViolations) {
    ++Report.DroppedViolations;
    return;
  }
  Report.Violations.push_back(std::move(Msg));
}

RuntimeAuditor::Shadow *RuntimeAuditor::find(uint64_t Base) {
  auto It = Shadows.find(Base);
  return It == Shadows.end() ? nullptr : &It->second;
}

void RuntimeAuditor::onUnitTracked(const AllocUnitInfo &Info) {
  ++Report.Events;
  // Tracking fires after zombie eviction, so any surviving overlap with a
  // unit that still holds references is a runtime bookkeeping bug.
  for (auto &[Base, S] : Shadows) {
    bool Overlaps = Base < Info.Base + Info.Size && Info.Base < Base + S.Size;
    if (Overlaps && S.Ref > 0 && Base != Info.Base)
      violation("tracked unit [" + std::to_string(Info.Base) + "," +
                std::to_string(Info.Base + Info.Size) +
                ") overlaps still-mapped unit base=" + std::to_string(Base));
  }
  Shadows[Info.Base] =
      Shadow{Info.Size, 0, /*Ref=*/0, Info.IsGlobal, /*HostDead=*/false};
}

void RuntimeAuditor::onUnitForgotten(const AllocUnitInfo &Info,
                                     const char *Why) {
  ++Report.Events;
  Shadow *S = find(Info.Base);
  if (!S) {
    violation("forgot unknown unit base=" + std::to_string(Info.Base) +
              " (" + Why + ")");
    return;
  }
  bool Forced = std::strcmp(Why, "remove-alloca") == 0 ||
                std::strcmp(Why, "evicted") == 0 ||
                std::strcmp(Why, "release-all") == 0;
  if (Forced)
    ++Report.ForcedReclaims;
  else if (S->Ref != 0)
    violation(std::string("unit base=") + std::to_string(Info.Base) +
              " forgotten via '" + Why + "' with refcount " +
              std::to_string(S->Ref) + " (should have been deferred)");
  Shadows.erase(Info.Base);
}

void RuntimeAuditor::onMap(const AllocUnitInfo &Info, bool Copied) {
  ++Report.Events;
  Shadow *S = find(Info.Base);
  if (!S) {
    violation("map of untracked unit base=" + std::to_string(Info.Base));
    return;
  }
  if (S->HostDead)
    violation("map of host-dead unit base=" + std::to_string(Info.Base));
  if (S->Ref == 0 && !Copied)
    violation("first map of base=" + std::to_string(Info.Base) +
              " did not copy to the device");
  ++S->Ref;
  S->DevPtr = Info.DevPtr;
  if (S->Ref != Info.RefCount)
    violation("refcount divergence on map of base=" +
              std::to_string(Info.Base) + ": shadow " +
              std::to_string(S->Ref) + " vs runtime " +
              std::to_string(Info.RefCount));
}

void RuntimeAuditor::onUnmap(const AllocUnitInfo &Info, bool Copied) {
  ++Report.Events;
  (void)Copied;
  Shadow *S = find(Info.Base);
  if (!S) {
    violation("unmap of untracked unit base=" + std::to_string(Info.Base));
    return;
  }
  if (S->Ref == 0)
    violation("unmap of unmapped unit base=" + std::to_string(Info.Base) +
              " was not a no-op");
  if (S->HostDead && Copied)
    violation("unmap copied back into freed host memory, base=" +
              std::to_string(Info.Base));
  if (S->Ref != Info.RefCount)
    violation("refcount divergence on unmap of base=" +
              std::to_string(Info.Base) + ": shadow " +
              std::to_string(S->Ref) + " vs runtime " +
              std::to_string(Info.RefCount));
}

void RuntimeAuditor::onRelease(const AllocUnitInfo &Info, bool FreedDevice) {
  ++Report.Events;
  Shadow *S = find(Info.Base);
  if (!S) {
    violation("release of untracked unit base=" + std::to_string(Info.Base));
    return;
  }
  if (S->Ref == 0) {
    violation("release underflow on base=" + std::to_string(Info.Base));
    return;
  }
  --S->Ref;
  if (S->Ref != Info.RefCount)
    violation("refcount divergence on release of base=" +
              std::to_string(Info.Base) + ": shadow " +
              std::to_string(S->Ref) + " vs runtime " +
              std::to_string(Info.RefCount));
  bool ShouldFree = S->Ref == 0 && !S->IsGlobal;
  if (FreedDevice != ShouldFree)
    violation(std::string("release of base=") + std::to_string(Info.Base) +
              (FreedDevice ? " freed the device copy early"
                           : " failed to free the device copy at refcount 0"));
  if (FreedDevice)
    S->DevPtr = 0;
}

void RuntimeAuditor::onKernelLaunch(uint64_t NewEpoch) {
  ++Report.Events;
  (void)NewEpoch;
}

void RuntimeAuditor::onDeferredReclaim(const AllocUnitInfo &Info,
                                       const char *Op) {
  ++Report.Events;
  ++Report.DeferredReclaims;
  Shadow *S = find(Info.Base);
  if (!S) {
    violation("deferred reclaim of untracked unit base=" +
              std::to_string(Info.Base));
    return;
  }
  if (std::strcmp(Op, "remove-alloca") != 0)
    S->HostDead = true;
}

void RuntimeAuditor::finish(const CGCMRuntime &RT, const GPUDevice &Device,
                            const ExecStats &Stats) {
  // 1. Paired map/release: every reference count drains to zero.
  for (const auto &[Base, S] : Shadows)
    if (S.Ref != 0)
      violation("unit base=" + std::to_string(Base) +
                " still mapped at exit (refcount " + std::to_string(S.Ref) +
                ")");

  // 2. The shadow unit set and the runtime's tracked set agree in size.
  if (Shadows.size() != RT.getNumTrackedUnits())
    violation("tracked-unit divergence at exit: shadow " +
              std::to_string(Shadows.size()) + " vs runtime " +
              std::to_string(RT.getNumTrackedUnits()));

  // 3. Device leaks: every live device allocation must be a module
  // global (named regions are deliberately never freed).
  for (const auto &[Base, Size] : Device.getMemory().allocations()) {
    bool IsModuleGlobal = false;
    for (const auto &[Name, Addr] : Device.getModuleGlobals())
      if (Addr == Base) {
        IsModuleGlobal = true;
        break;
      }
    if (!IsModuleGlobal)
      violation("leaked device allocation at " + std::to_string(Base) + " (" +
                std::to_string(Size) + " bytes)");
  }

  // 4. Byte conservation: the per-site ledger and the global counters
  // must describe the same traffic.
  if (Opts.CheckTransferTotals) {
    const TransferLedger &L = RT.getLedger();
    if (L.totalBytesHtoD() != Stats.BytesHtoD)
      violation("HtoD byte divergence: ledger " +
                std::to_string(L.totalBytesHtoD()) + " vs stats " +
                std::to_string(Stats.BytesHtoD));
    if (L.totalBytesDtoH() != Stats.BytesDtoH)
      violation("DtoH byte divergence: ledger " +
                std::to_string(L.totalBytesDtoH()) + " vs stats " +
                std::to_string(Stats.BytesDtoH));
  }
}
