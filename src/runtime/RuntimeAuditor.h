//===- runtime/RuntimeAuditor.h - Shadow-refcount runtime oracle ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RuntimeObserver that maintains an independent shadow model of the
/// runtime's allocation-unit state — reference counts, residency, and
/// host-liveness — and cross-checks every transition against it. At the
/// end of a run, finish() sweeps for the invariants the differential
/// fuzzer cares about (docs/Fuzzing.md):
///
///   * every reference count is zero at exit (map/release calls paired),
///   * every live device allocation is a module global (no device leaks),
///   * the per-site transfer ledger and the global ExecStats counters
///     agree byte-for-byte (no transfer escapes accounting),
///   * the shadow unit set matches the runtime's tracked-unit count.
///
/// The auditor is deliberately written against the observer callbacks
/// only — it never reaches into CGCMRuntime's private state — so a
/// bookkeeping bug in the runtime cannot hide itself in the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_RUNTIME_RUNTIMEAUDITOR_H
#define CGCM_RUNTIME_RUNTIMEAUDITOR_H

#include "runtime/CGCMRuntime.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cgcm {

class GPUDevice;
struct ExecStats;

/// Outcome of an audited run. Violations are capped (see
/// RuntimeAuditor::Options) so a catastrophic bug cannot OOM the fuzzer.
struct AuditReport {
  std::vector<std::string> Violations;
  uint64_t Events = 0;           ///< Observer callbacks seen.
  uint64_t DeferredReclaims = 0; ///< free/realloc deferred on a mapped unit.
  uint64_t ForcedReclaims = 0;   ///< remove-alloca / eviction teardowns.
  uint64_t DroppedViolations = 0; ///< Past the cap; counted, not stored.

  bool clean() const { return Violations.empty(); }
  /// All violations joined with newlines (empty when clean).
  std::string str() const;
};

class RuntimeAuditor : public RuntimeObserver {
public:
  struct Options {
    /// Check ledger totals == ExecStats totals in finish(). Only valid
    /// when every transfer in the run went through the runtime (true for
    /// the managed pipeline; false for inspector-executor or demand
    /// paging, which issue their own copies).
    bool CheckTransferTotals = true;
    size_t MaxViolations = 64;
  };

  RuntimeAuditor() = default;
  explicit RuntimeAuditor(Options O) : Opts(O) {}

  void onUnitTracked(const AllocUnitInfo &Info) override;
  void onUnitForgotten(const AllocUnitInfo &Info, const char *Why) override;
  void onMap(const AllocUnitInfo &Info, bool Copied) override;
  void onUnmap(const AllocUnitInfo &Info, bool Copied) override;
  void onRelease(const AllocUnitInfo &Info, bool FreedDevice) override;
  void onKernelLaunch(uint64_t NewEpoch) override;
  void onDeferredReclaim(const AllocUnitInfo &Info, const char *Op) override;

  /// End-of-run invariant sweep. Call after the program finished (and
  /// after any releaseAll the harness performs deliberately happens —
  /// the fuzzer does *not* call releaseAll, precisely so unpaired maps
  /// surface here).
  void finish(const CGCMRuntime &RT, const GPUDevice &Device,
              const ExecStats &Stats);

  const AuditReport &getReport() const { return Report; }

private:
  struct Shadow {
    uint64_t Size = 0;
    uint64_t DevPtr = 0;
    unsigned Ref = 0;
    bool IsGlobal = false;
    bool HostDead = false;
  };

  void violation(std::string Msg);
  Shadow *find(uint64_t Base);

  Options Opts;
  std::map<uint64_t, Shadow> Shadows;
  AuditReport Report;
};

} // namespace cgcm

#endif // CGCM_RUNTIME_RUNTIMEAUDITOR_H
