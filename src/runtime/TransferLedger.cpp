//===- runtime/TransferLedger.cpp - Per-allocation-unit accounting ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "runtime/TransferLedger.h"

#include "support/JSON.h"

#include <algorithm>
#include <cstdio>

using namespace cgcm;

LedgerEntry *TransferLedger::entryFor(const std::string &Site,
                                      SourceLoc Loc) {
  auto [It, Inserted] = Entries.try_emplace(Site);
  if (Inserted) {
    It->second.Site = Site;
    It->second.Loc = Loc;
  }
  return &It->second;
}

uint64_t TransferLedger::totalBytesHtoD() const {
  uint64_t N = 0;
  for (const auto &[Site, E] : Entries)
    N += E.BytesHtoD;
  return N;
}

uint64_t TransferLedger::totalBytesDtoH() const {
  uint64_t N = 0;
  for (const auto &[Site, E] : Entries)
    N += E.BytesDtoH;
  return N;
}

std::vector<const LedgerEntry *> TransferLedger::sortedByBytes() const {
  std::vector<const LedgerEntry *> Out;
  Out.reserve(Entries.size());
  for (const auto &[Site, E] : Entries)
    Out.push_back(&E);
  // Fully deterministic order regardless of insertion history: bytes
  // moved, then transfer count, then source position, then site name.
  std::stable_sort(
      Out.begin(), Out.end(), [](const LedgerEntry *A, const LedgerEntry *B) {
        if (A->totalBytes() != B->totalBytes())
          return A->totalBytes() > B->totalBytes();
        uint64_t TA = A->TransfersHtoD + A->TransfersDtoH;
        uint64_t TB = B->TransfersHtoD + B->TransfersDtoH;
        if (TA != TB)
          return TA > TB;
        if (A->Loc.Line != B->Loc.Line)
          return A->Loc.Line < B->Loc.Line;
        if (A->Loc.Col != B->Loc.Col)
          return A->Loc.Col < B->Loc.Col;
        return A->Site < B->Site;
      });
  return Out;
}

void TransferLedger::report(std::ostream &OS, size_t TopN) const {
  std::vector<const LedgerEntry *> Sorted = sortedByBytes();
  OS << "-- communication ledger: top " << std::min(TopN, Sorted.size())
     << " of " << Sorted.size() << " allocation sites by bytes moved --\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "%-24s %6s %12s %12s %8s %8s %10s %10s\n",
                "site", "units", "HtoD bytes", "DtoH bytes", "HtoD#",
                "DtoH#", "epoch-skip", "reuse-skip");
  OS << Buf;
  size_t N = 0;
  for (const LedgerEntry *E : Sorted) {
    if (N++ == TopN)
      break;
    std::snprintf(Buf, sizeof(Buf),
                  "%-24s %6llu %12llu %12llu %8llu %8llu %10llu %10llu\n",
                  E->Site.c_str(), static_cast<unsigned long long>(E->Units),
                  static_cast<unsigned long long>(E->BytesHtoD),
                  static_cast<unsigned long long>(E->BytesDtoH),
                  static_cast<unsigned long long>(E->TransfersHtoD),
                  static_cast<unsigned long long>(E->TransfersDtoH),
                  static_cast<unsigned long long>(E->EpochSuppressed),
                  static_cast<unsigned long long>(E->ReuseSuppressed));
    OS << Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%-24s %6s %12llu %12llu\n", "total", "",
                static_cast<unsigned long long>(totalBytesHtoD()),
                static_cast<unsigned long long>(totalBytesDtoH()));
  OS << Buf;
}

void cgcm::writeProfileJson(std::ostream &OS, const ExecStats &Stats,
                            const TransferLedger &Ledger) {
  JsonWriter W(OS);
  W.beginObject();
  W.key("schema").string("cgcm-profile-v1");

  W.key("stats").beginObject();
  W.key("cpu_cycles").number(Stats.CpuCycles);
  W.key("gpu_cycles").number(Stats.GpuCycles);
  W.key("comm_cycles").number(Stats.CommCycles);
  W.key("inspector_cycles").number(Stats.InspectorCycles);
  W.key("runtime_cycles").number(Stats.RuntimeCycles);
  W.key("total_cycles").number(Stats.totalCycles());
  W.key("kernel_launches").number(Stats.KernelLaunches);
  W.key("transfers_htod").number(Stats.TransfersHtoD);
  W.key("transfers_dtoh").number(Stats.TransfersDtoH);
  W.key("bytes_htod").number(Stats.BytesHtoD);
  W.key("bytes_dtoh").number(Stats.BytesDtoH);
  W.key("transfers_p2p").number(Stats.TransfersP2P);
  W.key("bytes_p2p").number(Stats.BytesP2P);
  W.key("p2p_comm_cycles").number(Stats.P2PCommCycles);
  W.key("cpu_ops").number(Stats.CpuOps);
  W.key("gpu_ops").number(Stats.GpuOps);
  W.key("runtime_calls").number(Stats.RuntimeCalls);
  W.key("demand_faults").number(Stats.DemandFaults);
  W.key("epoch_suppressed_copies").number(Stats.EpochSuppressedCopies);
  W.key("peak_resident_device_bytes").number(Stats.PeakResidentDeviceBytes);
  // Stream-engine accounting (docs/TransferEngine.md); all zero on a
  // synchronous run except wall_cycles, which then equals total_cycles.
  W.key("wall_cycles").number(Stats.wallCycles());
  W.key("stall_cycles").number(Stats.StallCycles);
  W.key("overlap_saved_cycles").number(Stats.overlapSavedCycles());
  W.key("async_transfers").number(Stats.AsyncTransfers);
  W.key("dma_batches").number(Stats.DmaBatches);
  W.key("coalesced_transfers").number(Stats.CoalescedTransfers);
  W.key("host_syncs").number(Stats.HostSyncs);
  W.endObject();

  W.key("ledger").beginArray();
  for (const LedgerEntry *E : Ledger.sortedByBytes()) {
    W.beginObject();
    W.key("site").string(E->Site);
    if (E->Loc.isValid()) {
      W.key("line").number(static_cast<uint64_t>(E->Loc.Line));
      W.key("col").number(static_cast<uint64_t>(E->Loc.Col));
    } else {
      W.key("line").null();
      W.key("col").null();
    }
    W.key("units").number(E->Units);
    W.key("bytes_htod").number(E->BytesHtoD);
    W.key("bytes_dtoh").number(E->BytesDtoH);
    W.key("transfers_htod").number(E->TransfersHtoD);
    W.key("transfers_dtoh").number(E->TransfersDtoH);
    W.key("transfers_p2p").number(E->TransfersP2P);
    W.key("bytes_p2p").number(E->BytesP2P);
    W.key("epoch_suppressed").number(E->EpochSuppressed);
    W.key("reuse_suppressed").number(E->ReuseSuppressed);
    W.key("coalesced").number(E->Coalesced);
    W.key("map_calls").number(E->MapCalls);
    W.key("unmap_calls").number(E->UnmapCalls);
    W.key("release_calls").number(E->ReleaseCalls);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << "\n";
}
