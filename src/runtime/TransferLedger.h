//===- runtime/TransferLedger.h - Per-allocation-unit transfer accounting ---===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The communication ledger of the observability subsystem
/// (docs/Observability.md): the runtime attributes every copy it issues
/// — and every copy it *suppresses* via the epoch or reference-count
/// tests — to the allocation site of the unit involved (the `!loc` of
/// the allocating instruction, or the global's name). Aggregating by
/// site rather than by raw base address keeps the ledger meaningful
/// across unit churn: a malloc in a loop is one hot spot, not a thousand
/// one-row entries.
///
/// The ledger is always on: it costs a pointer dereference and a few
/// integer increments per runtime call, all of which are already charged
/// 40 modeled cycles. `cgcmc --profile=<file>` exports it (with
/// ExecStats) as JSON; the text report lists the top-N hot spots.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_RUNTIME_TRANSFERLEDGER_H
#define CGCM_RUNTIME_TRANSFERLEDGER_H

#include "gpusim/Timing.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cgcm {

/// One allocation site's accumulated communication.
struct LedgerEntry {
  std::string Site; ///< "heap@12:3", "alloca@8:5", "global A", ...
  SourceLoc Loc;    ///< Source position when known (heap/alloca sites).
  uint64_t Units = 0; ///< Allocation units attributed to this site.
  uint64_t BytesHtoD = 0;
  uint64_t BytesDtoH = 0;
  uint64_t TransfersHtoD = 0;
  uint64_t TransfersDtoH = 0;
  /// Peer-to-peer replication traffic for this site's units (device pool
  /// runs only; always 0 with one device).
  uint64_t BytesP2P = 0;
  uint64_t TransfersP2P = 0;
  /// DtoH copies unmap skipped because the epoch proved the host copy
  /// current.
  uint64_t EpochSuppressed = 0;
  /// HtoD copies map skipped because the unit was already resident.
  uint64_t ReuseSuppressed = 0;
  /// Copies of this site's units the stream engine merged into a
  /// preceding same-direction DMA batch, paying no per-copy latency
  /// (asynchronous runs only; docs/TransferEngine.md).
  uint64_t Coalesced = 0;
  uint64_t MapCalls = 0;
  uint64_t UnmapCalls = 0;
  uint64_t ReleaseCalls = 0;

  uint64_t totalBytes() const { return BytesHtoD + BytesDtoH; }
};

class TransferLedger {
public:
  /// Finds or creates the entry for \p Site (creation records \p Loc).
  /// The returned pointer is stable for the ledger's lifetime.
  LedgerEntry *entryFor(const std::string &Site, SourceLoc Loc);

  const std::map<std::string, LedgerEntry> &entries() const {
    return Entries;
  }
  bool empty() const { return Entries.empty(); }

  uint64_t totalBytesHtoD() const;
  uint64_t totalBytesDtoH() const;

  /// Entries sorted by total bytes moved, descending.
  std::vector<const LedgerEntry *> sortedByBytes() const;

  /// Human-readable hot-spot table: top \p TopN sites by bytes moved.
  void report(std::ostream &OS, size_t TopN = 10) const;

  void clear() { Entries.clear(); }

private:
  std::map<std::string, LedgerEntry> Entries;
};

/// Exports \p Stats and \p Ledger as the machine-readable profile
/// (schema "cgcm-profile-v1"; see docs/Observability.md).
void writeProfileJson(std::ostream &OS, const ExecStats &Stats,
                      const TransferLedger &Ledger);

} // namespace cgcm

#endif // CGCM_RUNTIME_TRANSFERLEDGER_H
