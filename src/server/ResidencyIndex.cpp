//===- server/ResidencyIndex.cpp - Sharded device-residency lease index -----===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "server/ResidencyIndex.h"

#include "support/Metrics.h"

#include <algorithm>

using namespace cgcm;

namespace {
// Registry names are stable; the pointers are process-lifetime
// (docs/Observability.md), so one lookup per process is enough. The
// holder struct makes the lazy initialization a C++ magic static —
// thread-safe under concurrent index construction.
struct ServerMetrics {
  MetricCounter &LeasesCreated;
  MetricCounter &Evictions;
  MetricCounter &EvictedBytes;
  MetricCounter &CapacityStalls;
  ServerMetrics()
      : LeasesCreated(MetricsRegistry::get().counter("server.leases_created")),
        Evictions(MetricsRegistry::get().counter("server.evictions")),
        EvictedBytes(MetricsRegistry::get().counter("server.evicted_bytes")),
        CapacityStalls(
            MetricsRegistry::get().counter("server.capacity_stalls")) {}
};
ServerMetrics &metrics() {
  static ServerMetrics M;
  return M;
}
} // namespace

ResidencyIndex::ResidencyIndex(unsigned ShardCount) {
  // Round up to a power of two so shardFor can mask.
  unsigned N = 1;
  while (N < ShardCount)
    N <<= 1;
  Shards = std::vector<Shard>(N);
  (void)metrics(); // Force registration before any worker thread runs.
}

void ResidencyIndex::creditGlobal(uint64_t Bytes) {
  uint64_t Cur = GlobalBytes.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  uint64_t Peak = PeakGlobalBytes.load(std::memory_order_relaxed);
  while (Cur > Peak && !PeakGlobalBytes.compare_exchange_weak(
                           Peak, Cur, std::memory_order_relaxed))
    ;
}

void ResidencyIndex::debitGlobal(uint64_t Bytes) {
  GlobalBytes.fetch_sub(Bytes, std::memory_order_relaxed);
}

void ResidencyIndex::noteResident(SessionAccount &Acct, uint32_t Sid,
                                  uint64_t Base, uint64_t Bytes,
                                  unsigned Device) {
  uint64_t K = key(Sid, Base);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Leases.find(K);
  if (It != S.Leases.end()) {
    // An idle global lease revived by a fresh map generation: same
    // bytes, back to one reference, newly touched.
    Lease &L = It->second;
    L.Ref.store(1, std::memory_order_relaxed);
    L.Stamp.store(nextStamp(), std::memory_order_relaxed);
    S.Lru.splice(S.Lru.begin(), S.Lru, L.LruIt);
    return;
  }
  Lease &L = S.Leases[K];
  L.Sid = Sid;
  L.Base = Base;
  L.Bytes = Bytes;
  L.Device = Device;
  L.Ref.store(1, std::memory_order_relaxed);
  L.Stamp.store(nextStamp(), std::memory_order_relaxed);
  L.Acct = &Acct;
  S.Lru.push_front(K);
  L.LruIt = S.Lru.begin();
  Acct.ResidentBytes.fetch_add(Bytes, std::memory_order_relaxed);
  Acct.notePeak();
  Acct.LeasesCreated.fetch_add(1, std::memory_order_relaxed);
  creditGlobal(Bytes);
  metrics().LeasesCreated.inc();
}

void ResidencyIndex::addRef(uint32_t Sid, uint64_t Base) {
  uint64_t K = key(Sid, Base);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Leases.find(K);
  if (It == S.Leases.end())
    return; // Unit never took device residency under this index's watch.
  Lease &L = It->second;
  L.Ref.fetch_add(1, std::memory_order_relaxed);
  L.Stamp.store(nextStamp(), std::memory_order_relaxed);
  S.Lru.splice(S.Lru.begin(), S.Lru, L.LruIt);
}

void ResidencyIndex::dropRef(uint32_t Sid, uint64_t Base) {
  uint64_t K = key(Sid, Base);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Leases.find(K);
  if (It == S.Leases.end())
    return;
  uint32_t Old = It->second.Ref.load(std::memory_order_relaxed);
  if (Old > 0)
    It->second.Ref.store(Old - 1, std::memory_order_relaxed);
}

void ResidencyIndex::drop(SessionAccount &Acct, uint32_t Sid, uint64_t Base) {
  uint64_t K = key(Sid, Base);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Leases.find(K);
  if (It == S.Leases.end())
    return;
  uint64_t Bytes = It->second.Bytes;
  S.Lru.erase(It->second.LruIt);
  S.Leases.erase(It);
  Acct.ResidentBytes.fetch_sub(Bytes, std::memory_order_relaxed);
  debitGlobal(Bytes);
}

ResidencyIndex::SweepResult ResidencyIndex::dropSession(SessionAccount &Acct,
                                                        uint32_t Sid) {
  SweepResult R;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (auto It = S.Leases.begin(); It != S.Leases.end();) {
      if (It->second.Sid != Sid) {
        ++It;
        continue;
      }
      ++R.Leases;
      R.Bytes += It->second.Bytes;
      if (It->second.Ref.load(std::memory_order_relaxed) > 0)
        ++R.Referenced;
      Acct.ResidentBytes.fetch_sub(It->second.Bytes,
                                   std::memory_order_relaxed);
      debitGlobal(It->second.Bytes);
      S.Lru.erase(It->second.LruIt);
      It = S.Leases.erase(It);
    }
  }
  return R;
}

uint64_t ResidencyIndex::evictIdle(uint64_t WantBytes, uint32_t OnlySid) {
  uint64_t Freed = 0;
  while (Freed < WantBytes) {
    // Pass 1: find the globally oldest idle lease by LRU stamp. Each
    // stripe is scanned from its own LRU tail under its own lock; the
    // cross-stripe winner is the smallest stamp.
    uint64_t BestStamp = ~0ull;
    uint64_t BestKey = 0;
    Shard *BestShard = nullptr;
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      for (auto It = S.Lru.rbegin(); It != S.Lru.rend(); ++It) {
        auto LIt = S.Leases.find(*It);
        if (LIt == S.Leases.end())
          continue;
        Lease &L = LIt->second;
        if (L.Ref.load(std::memory_order_relaxed) != 0)
          continue;
        if (OnlySid != AnySession && L.Sid != OnlySid)
          continue;
        uint64_t St = L.Stamp.load(std::memory_order_relaxed);
        if (St < BestStamp) {
          BestStamp = St;
          BestKey = *It;
          BestShard = &S;
        }
        break; // Oldest qualifying lease of this stripe found.
      }
    }
    if (!BestShard)
      return Freed; // Nothing idle left to evict.

    // Pass 2: re-check under the winner's lock — the owner may have
    // re-referenced it between the scan and now.
    std::lock_guard<std::mutex> Lock(BestShard->Mu);
    auto It = BestShard->Leases.find(BestKey);
    if (It == BestShard->Leases.end() ||
        It->second.Ref.load(std::memory_order_relaxed) != 0)
      continue;
    Lease &L = It->second;
    uint64_t Bytes = L.Bytes;
    SessionAccount *Victim = L.Acct;
    BestShard->Lru.erase(L.LruIt);
    BestShard->Leases.erase(It);
    if (Victim) {
      Victim->ResidentBytes.fetch_sub(Bytes, std::memory_order_relaxed);
      Victim->LeasesEvicted.fetch_add(1, std::memory_order_relaxed);
      Victim->BytesEvicted.fetch_add(Bytes, std::memory_order_relaxed);
    }
    debitGlobal(Bytes);
    Freed += Bytes;
    Evictions.fetch_add(1, std::memory_order_relaxed);
    EvictedBytes.fetch_add(Bytes, std::memory_order_relaxed);
    metrics().Evictions.inc();
    metrics().EvictedBytes.inc(Bytes);
  }
  return Freed;
}

void ResidencyIndex::noteCapacityStall() {
  CapacityStalls.fetch_add(1, std::memory_order_relaxed);
  metrics().CapacityStalls.inc();
}

uint64_t ResidencyIndex::leaseCount() const {
  uint64_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Leases.size();
  }
  return N;
}

std::vector<std::pair<uint32_t, uint64_t>> ResidencyIndex::idleLeasesLRU()
    const {
  std::vector<std::pair<uint64_t, std::pair<uint32_t, uint64_t>>> Stamped;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &KV : S.Leases) {
      const Lease &L = KV.second;
      if (L.Ref.load(std::memory_order_relaxed) == 0)
        Stamped.push_back({L.Stamp.load(std::memory_order_relaxed),
                           {L.Sid, L.Base}});
    }
  }
  std::sort(Stamped.begin(), Stamped.end());
  std::vector<std::pair<uint32_t, uint64_t>> Out;
  Out.reserve(Stamped.size());
  for (const auto &P : Stamped)
    Out.push_back(P.second);
  return Out;
}
