//===- server/ResidencyIndex.h - Sharded device-residency lease index -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-wide view of device memory. Every session mirrors its
/// runtime's residency transitions (observed through RuntimeObserver
/// hooks) into this index as *leases*: one lease per allocation unit
/// that currently holds a device copy, tagged with the owning session.
/// The index is sharded — a fixed power-of-two number of stripes, each
/// with its own mutex, hash map, and LRU list — so concurrent sessions
/// on different stripes never contend on a lock. Reference counts are
/// atomic: the eviction scan reads them without taking the owner's
/// write path.
///
/// The index is also the eviction policy (docs/Server.md). Leases with
/// a zero reference count are *idle*: the runtime semantics guarantee
/// that the next map of an idle unit re-copies it from the host anyway
/// (map at RefCount==0 always allocates-and-copies, even for globals),
/// so evicting an idle lease is pure capacity accounting — the victim
/// pays nothing it would not already pay. Eviction order is global LRU
/// across stripes, implemented with a lock-free logical clock stamped
/// on every touch.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SERVER_RESIDENCYINDEX_H
#define CGCM_SERVER_RESIDENCYINDEX_H

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cgcm {

/// Per-session accounting shared between a Session and the index. All
/// fields are atomics: the owning session mutates them from its worker
/// thread while evictions triggered by *other* sessions credit the
/// eviction counters concurrently.
struct SessionAccount {
  std::atomic<uint64_t> ResidentBytes{0};
  std::atomic<uint64_t> PeakResidentBytes{0};
  std::atomic<uint64_t> LeasesCreated{0};
  std::atomic<uint64_t> LeasesEvicted{0};
  std::atomic<uint64_t> BytesEvicted{0};

  void notePeak() {
    uint64_t Cur = ResidentBytes.load(std::memory_order_relaxed);
    uint64_t Peak = PeakResidentBytes.load(std::memory_order_relaxed);
    while (Cur > Peak && !PeakResidentBytes.compare_exchange_weak(
                             Peak, Cur, std::memory_order_relaxed))
      ;
  }
};

class ResidencyIndex {
public:
  /// Sentinel for evictIdle: consider leases of every session.
  static constexpr uint32_t AnySession = ~0u;

  explicit ResidencyIndex(unsigned ShardCount = 16);

  //===--------------------------------------------------------------------===//
  // Lease lifecycle (driven by Session's observer hooks)
  //===--------------------------------------------------------------------===//

  /// A unit took residency on a device (map at zero references, which
  /// always copies). Creates the lease with one reference, or — for a
  /// global whose idle lease survived between map generations — revives
  /// the existing lease back to one reference.
  void noteResident(SessionAccount &Acct, uint32_t Sid, uint64_t Base,
                    uint64_t Bytes, unsigned Device);

  /// map at RefCount > 0: one more reference, touch the LRU.
  void addRef(uint32_t Sid, uint64_t Base);

  /// release that kept the device copy (refcount still > 0, or a global
  /// parked at zero references — the lease goes idle and evictable).
  void dropRef(uint32_t Sid, uint64_t Base);

  /// The device copy is gone (release freed it, or the runtime forgot
  /// the unit). Removes the lease if present; no-op otherwise.
  void drop(SessionAccount &Acct, uint32_t Sid, uint64_t Base);

  /// End-of-request sweep: removes every lease the session still holds
  /// (the runtime destructor fires no hooks, so idle global leases
  /// survive to here). Returns how many leases still carried references
  /// — nonzero means the program leaked map/release pairs.
  struct SweepResult {
    uint64_t Leases = 0;
    uint64_t Bytes = 0;
    uint64_t Referenced = 0;
  };
  SweepResult dropSession(SessionAccount &Acct, uint32_t Sid);

  //===--------------------------------------------------------------------===//
  // Eviction
  //===--------------------------------------------------------------------===//

  /// Evicts idle (zero-reference) leases in global LRU order until at
  /// least \p WantBytes were reclaimed or no idle lease remains. With
  /// \p OnlySid != AnySession, only that session's leases are
  /// considered (the per-session quota path). Returns bytes reclaimed.
  uint64_t evictIdle(uint64_t WantBytes, uint32_t OnlySid = AnySession);

  /// Record that a quota overage could not be cleared by eviction.
  void noteCapacityStall();

  //===--------------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------------===//

  uint64_t residentBytes() const {
    return GlobalBytes.load(std::memory_order_relaxed);
  }
  uint64_t peakResidentBytes() const {
    return PeakGlobalBytes.load(std::memory_order_relaxed);
  }
  uint64_t leaseCount() const;
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  uint64_t evictedBytes() const {
    return EvictedBytes.load(std::memory_order_relaxed);
  }
  uint64_t capacityStalls() const {
    return CapacityStalls.load(std::memory_order_relaxed);
  }
  unsigned shardCount() const { return static_cast<unsigned>(Shards.size()); }

  /// Oldest-first (Sid, Base) of every idle lease — deterministic LRU
  /// order for tests; takes every stripe lock in sequence.
  std::vector<std::pair<uint32_t, uint64_t>> idleLeasesLRU() const;

private:
  struct Lease {
    uint32_t Sid = 0;
    uint64_t Base = 0;
    uint64_t Bytes = 0;
    unsigned Device = 0;
    std::atomic<uint32_t> Ref{0};
    /// Logical LRU clock value of the last touch (map/addRef). Read by
    /// the eviction scan without the owner's lock.
    std::atomic<uint64_t> Stamp{0};
    SessionAccount *Acct = nullptr;
    std::list<uint64_t>::iterator LruIt; ///< Position in Shard::Lru.
  };

  struct Shard {
    mutable std::mutex Mu;
    /// Keyed by Base ^ (Sid << 1): sessions run in private simulated
    /// address spaces, so (Sid, Base) is the identity of a lease.
    std::unordered_map<uint64_t, Lease> Leases;
    /// Most-recent first; holds keys into Leases.
    std::list<uint64_t> Lru;
  };

  static uint64_t key(uint32_t Sid, uint64_t Base) {
    return Base ^ (static_cast<uint64_t>(Sid) * 0x9E3779B97F4A7C15ull);
  }
  Shard &shardFor(uint64_t Key) {
    return Shards[(Key >> 4) & (Shards.size() - 1)];
  }
  const Shard &shardFor(uint64_t Key) const {
    return Shards[(Key >> 4) & (Shards.size() - 1)];
  }
  uint64_t nextStamp() {
    return Clock.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void creditGlobal(uint64_t Bytes);
  void debitGlobal(uint64_t Bytes);

  std::vector<Shard> Shards;
  std::atomic<uint64_t> Clock{0};
  std::atomic<uint64_t> GlobalBytes{0};
  std::atomic<uint64_t> PeakGlobalBytes{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> EvictedBytes{0};
  std::atomic<uint64_t> CapacityStalls{0};
};

} // namespace cgcm

#endif // CGCM_SERVER_RESIDENCYINDEX_H
