//===- server/Session.cpp - One tenant of the runtime server ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "server/Session.h"

#include "runtime/RuntimeAuditor.h"

using namespace cgcm;

namespace {
/// Only the managed pipeline routes every transfer through the runtime,
/// so only its configurations (and the transfer-free sequential
/// baseline) can be held to the auditor's full invariant sweep.
/// Inspector-executor and demand paging issue their own copies and keep
/// their own mapping lifetimes — out of audit scope, exactly as in the
/// differential fuzzer.
bool auditable(BenchConfig C) {
  switch (C) {
  case BenchConfig::Sequential:
  case BenchConfig::CGCMUnoptimized:
  case BenchConfig::CGCMOptimized:
    return true;
  case BenchConfig::InspectorExecutor:
  case BenchConfig::DemandPaged:
    return false;
  }
  return false;
}
} // namespace

void Session::onUnitTracked(const AllocUnitInfo &Info) {
  if (Chain)
    Chain->onUnitTracked(Info);
}

void Session::onUnitForgotten(const AllocUnitInfo &Info, const char *Why) {
  // Whatever the reason, a forgotten unit holds no device copy anymore
  // (zombie releases and forced reclaims free it first); retire the
  // lease if one exists.
  Index.drop(Acct, Id, Info.Base);
  if (Chain)
    Chain->onUnitForgotten(Info, Why);
}

void Session::onMap(const AllocUnitInfo &Info, bool Copied) {
  if (Info.RefCount == 1 && Copied) {
    // The map that took the unit from zero references: a fresh device
    // copy exists (the runtime re-copies even revived globals).
    Index.noteResident(Acct, Id, Info.Base, Info.Size, Info.HomeDevice);
    enforceQuotas();
  } else {
    Index.addRef(Id, Info.Base);
  }
  if (Chain)
    Chain->onMap(Info, Copied);
}

void Session::onUnmap(const AllocUnitInfo &Info, bool Copied) {
  if (Chain)
    Chain->onUnmap(Info, Copied);
}

void Session::onRelease(const AllocUnitInfo &Info, bool FreedDevice) {
  if (FreedDevice)
    Index.drop(Acct, Id, Info.Base);
  else
    // Still referenced, or a global parked at zero references — the
    // lease stays, idle and evictable in the latter case.
    Index.dropRef(Id, Info.Base);
  if (Chain)
    Chain->onRelease(Info, FreedDevice);
}

void Session::onKernelLaunch(uint64_t NewEpoch) {
  ++KernelLaunches;
  if (Chain)
    Chain->onKernelLaunch(NewEpoch);
}

void Session::onDeferredReclaim(const AllocUnitInfo &Info, const char *Op) {
  if (Chain)
    Chain->onDeferredReclaim(Info, Op);
}

void Session::enforceQuotas() {
  if (Quotas.SessionDeviceBytes) {
    uint64_t Mine = Acct.ResidentBytes.load(std::memory_order_relaxed);
    if (Mine > Quotas.SessionDeviceBytes) {
      uint64_t Want = Mine - Quotas.SessionDeviceBytes;
      uint64_t Got = Index.evictIdle(Want, Id);
      if (Got)
        ++EvictionsTriggered;
      if (Got < Want)
        Index.noteCapacityStall();
    }
  }
  if (Quotas.GlobalDeviceBytes) {
    uint64_t All = Index.residentBytes();
    if (All > Quotas.GlobalDeviceBytes) {
      uint64_t Want = All - Quotas.GlobalDeviceBytes;
      uint64_t Got = Index.evictIdle(Want);
      if (Got)
        ++EvictionsTriggered;
      if (Got < Want)
        Index.noteCapacityStall();
    }
  }
}

ServerResponse Session::run(const ServerRequest &R, RunnerOptions RO,
                            bool Audit) {
  ++RequestEpoch;
  KernelLaunches = 0;
  EvictionsTriggered = 0;
  Acct.PeakResidentBytes.store(Acct.ResidentBytes.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  uint64_t CreatedBefore = Acct.LeasesCreated.load(std::memory_order_relaxed);
  uint64_t EvictedBefore = Acct.LeasesEvicted.load(std::memory_order_relaxed);

  ServerResponse Resp;
  Resp.Session = Id;
  Resp.Name = R.Name;

  bool DoAudit = Audit && auditable(R.Config);
  RuntimeAuditor Auditor;
  Chain = DoAudit ? &Auditor : nullptr;
  RO.Observer = this;
  std::string AuditError;
  RO.PostRun = [&](Machine &M) {
    if (DoAudit) {
      Auditor.finish(M.getRuntime(), M.getDevice(), M.getStats());
      if (!Auditor.getReport().clean())
        AuditError = Auditor.getReport().str();
    }
  };

  Workload W;
  W.Name = R.Name;
  W.Source = R.Source;
  WorkloadRun Run = runWorkload(W, R.Config, RO);
  Chain = nullptr;

  // The machine is gone and its destructor fires no hooks: sweep the
  // leases this request left behind (idle globals, by construction).
  ResidencyIndex::SweepResult Sweep = Index.dropSession(Acct, Id);

  Resp.Output = Run.Output;
  Resp.ServiceCycles = Run.TotalCycles;
  Resp.PeakResidentBytes =
      Acct.PeakResidentBytes.load(std::memory_order_relaxed);
  Resp.LeasesCreated =
      Acct.LeasesCreated.load(std::memory_order_relaxed) - CreatedBefore;
  Resp.LeasesEvictedFrom =
      Acct.LeasesEvicted.load(std::memory_order_relaxed) - EvictedBefore;
  Resp.EvictionsTriggered = EvictionsTriggered;
  Resp.KernelLaunches = KernelLaunches;

  Resp.Ok = true;
  if (!AuditError.empty()) {
    Resp.Ok = false;
    Resp.Error = AuditError;
  }
  if (Sweep.Referenced) {
    Resp.Ok = false;
    if (!Resp.Error.empty())
      Resp.Error += "\n";
    Resp.Error += "session " + std::to_string(Id) + ": " +
                  std::to_string(Sweep.Referenced) +
                  " lease(s) still referenced at request teardown";
  }
  return Resp;
}
