//===- server/Session.h - One tenant of the runtime server ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Session is one tenant: it runs MiniC programs on a private Machine
/// (its own simulated host memory, device pool, and CGCMRuntime — the
/// per-tenant address-space isolation that makes outputs bit-identical
/// to solo execution) while mirroring every device-residency transition
/// into the server-shared ResidencyIndex through the RuntimeObserver
/// hooks. The session enforces its own device-memory quota and the
/// server's global quota by triggering LRU eviction of idle leases, and
/// chains a RuntimeAuditor behind itself so every request is verified
/// against the shadow refcount model (docs/Server.md).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SERVER_SESSION_H
#define CGCM_SERVER_SESSION_H

#include "runtime/CGCMRuntime.h"
#include "server/ResidencyIndex.h"
#include "workloads/Runner.h"

#include <cstdint>
#include <string>

namespace cgcm {

/// Device-memory quotas, in bytes. Zero disables a limit.
struct ServerQuotas {
  uint64_t SessionDeviceBytes = 16ull << 20;
  uint64_t GlobalDeviceBytes = 64ull << 20;
};

/// One unit of server work: a named MiniC program plus the evaluation
/// configuration to run it under.
struct ServerRequest {
  std::string Name;
  std::string Source;
  BenchConfig Config = BenchConfig::CGCMOptimized;
};

struct ServerResponse {
  uint32_t Session = 0;
  std::string Name;
  std::string Output;
  bool Ok = false;
  std::string Error; ///< Audit violations or lease-sweep diagnostics.

  /// Modeled wall cycles of the run itself — deterministic for a given
  /// program and configuration (the machine is private), independent of
  /// how requests interleave. The latency post-pass builds on this.
  double ServiceCycles = 0;
  uint64_t PeakResidentBytes = 0; ///< This request's device high-water mark.
  uint64_t LeasesCreated = 0;
  uint64_t LeasesEvictedFrom = 0; ///< Leases this session lost to eviction.
  uint64_t EvictionsTriggered = 0; ///< Evictions this session's quotas forced.
  uint64_t KernelLaunches = 0;

  /// Filled by SessionManager's deterministic latency post-pass
  /// (docs/Server.md): modeled arrival, admission-queue exit, and
  /// completion, all in cycles.
  double ArrivalCycles = 0;
  double StartCycles = 0;
  double LatencyCycles = 0;
};

/// A session observes its own runtime. Hooks fire on the session's
/// worker thread; the index calls are the only cross-thread traffic.
class Session final : public RuntimeObserver {
public:
  Session(uint32_t Id, ResidencyIndex &Index, const ServerQuotas &Quotas)
      : Id(Id), Index(Index), Quotas(Quotas) {}

  /// Runs one request to completion on a fresh private machine.
  /// \p RO carries the server's execution knobs; Observer/PostRun are
  /// overwritten by the session itself. With \p Audit, a RuntimeAuditor
  /// is chained behind the session's own hooks and its report gates
  /// Response.Ok.
  ServerResponse run(const ServerRequest &R, RunnerOptions RO,
                     bool Audit = true);

  uint32_t id() const { return Id; }
  /// Requests served — the session's epoch; each request runs on a
  /// fresh machine whose runtime epochs are private, so this is the
  /// only cross-request clock.
  uint64_t requestEpoch() const { return RequestEpoch; }
  const SessionAccount &account() const { return Acct; }

  // RuntimeObserver — mirror residency into the index, then forward to
  // the chained auditor.
  void onUnitTracked(const AllocUnitInfo &Info) override;
  void onUnitForgotten(const AllocUnitInfo &Info, const char *Why) override;
  void onMap(const AllocUnitInfo &Info, bool Copied) override;
  void onUnmap(const AllocUnitInfo &Info, bool Copied) override;
  void onRelease(const AllocUnitInfo &Info, bool FreedDevice) override;
  void onKernelLaunch(uint64_t NewEpoch) override;
  void onDeferredReclaim(const AllocUnitInfo &Info, const char *Op) override;

private:
  void enforceQuotas();

  uint32_t Id;
  ResidencyIndex &Index;
  ServerQuotas Quotas;
  SessionAccount Acct;
  RuntimeObserver *Chain = nullptr; ///< The per-request auditor, if any.
  uint64_t RequestEpoch = 0;
  uint64_t KernelLaunches = 0;
  uint64_t EvictionsTriggered = 0;
};

} // namespace cgcm

#endif // CGCM_SERVER_SESSION_H
