//===- server/SessionManager.cpp - Multi-tenant runtime front end -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "server/SessionManager.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace cgcm;

SessionManager::SessionManager(ServerConfig C) : Cfg(C) {
  if (Cfg.Threads == 0)
    Cfg.Threads = 1;
  if (Cfg.BatchSize == 0)
    Cfg.BatchSize = 1;
  if (Cfg.QueueDepth == 0)
    Cfg.QueueDepth = 1;
}

void SessionManager::submit(size_t Index, const ServerRequest *R) {
  std::unique_lock<std::mutex> Lock(QueueMu);
  QueueSpaceCv.wait(Lock, [&] { return Queue.size() < Cfg.QueueDepth; });
  Queue.push_back({Index, R});
  Lock.unlock();
  QueueCv.notify_one();
}

void SessionManager::worker(std::vector<ServerResponse> &Out) {
  for (;;) {
    std::vector<Item> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [&] { return Closed || !Queue.empty(); });
      if (Queue.empty()) {
        if (Closed)
          return;
        continue;
      }
      while (!Queue.empty() && Batch.size() < Cfg.BatchSize) {
        Batch.push_back(Queue.front());
        Queue.pop_front();
      }
    }
    QueueSpaceCv.notify_all();
    for (const Item &I : Batch) {
      // Each request is its own tenant; responses land in distinct
      // slots of the preallocated vector, so no lock is needed here.
      Session S(static_cast<uint32_t>(I.Index) + 1, Index, Cfg.Quotas);
      Out[I.Index] = S.run(*I.Req, Cfg.Run, Cfg.Audit);
    }
  }
}

std::vector<ServerResponse>
SessionManager::replay(const std::vector<ServerRequest> &Reqs) {
  std::vector<ServerResponse> Rs(Reqs.size());
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Closed = false;
  }
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  Workers.reserve(Cfg.Threads);
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    Workers.emplace_back([this, &Rs] { worker(Rs); });
  for (size_t I = 0; I < Reqs.size(); ++I)
    submit(I, &Reqs[I]);
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Closed = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  LastReplayWallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  computeLatencies(Rs, Cfg);
  return Rs;
}

void SessionManager::computeLatencies(std::vector<ServerResponse> &Rs,
                                      const ServerConfig &C) {
  size_t N = Rs.size();
  if (!N)
    return;
  unsigned Lanes = std::max(1u, C.Threads);
  unsigned B = std::max(1u, C.BatchSize);
  std::vector<double> LaneFree(Lanes, 0.0);
  for (size_t I = 0; I < N; ++I)
    Rs[I].ArrivalCycles = static_cast<double>(I) * C.ArrivalSpacingCycles;
  for (size_t Head = 0; Head < N; Head += B) {
    size_t Tail = std::min(N, Head + B);
    // A batch is admitted whole once its last member arrived, and pays
    // the front-end admission cost once — the batching trade-off
    // (amortized admission vs fill wait) is visible in the numbers.
    double Admit = Rs[Tail - 1].ArrivalCycles + C.AdmissionCycles;
    for (size_t I = Head; I < Tail; ++I) {
      auto Lane = std::min_element(LaneFree.begin(), LaneFree.end());
      double Start = std::max(Admit, *Lane);
      double End = Start + Rs[I].ServiceCycles;
      *Lane = End;
      Rs[I].StartCycles = Start;
      Rs[I].LatencyCycles = End - Rs[I].ArrivalCycles;
    }
  }
}

ServerStats
SessionManager::summarize(const std::vector<ServerResponse> &Rs) const {
  ServerStats S;
  S.Requests = Rs.size();
  if (Rs.empty())
    return S;
  std::vector<double> Lat;
  Lat.reserve(Rs.size());
  double Sum = 0;
  for (const ServerResponse &R : Rs) {
    if (!R.Ok)
      ++S.Failures;
    Lat.push_back(R.LatencyCycles);
    Sum += R.LatencyCycles;
    S.MakespanCycles =
        std::max(S.MakespanCycles, R.ArrivalCycles + R.LatencyCycles);
  }
  std::sort(Lat.begin(), Lat.end());
  auto Pct = [&](double P) {
    size_t Idx = static_cast<size_t>(P * static_cast<double>(Lat.size() - 1));
    return Lat[Idx];
  };
  S.P50LatencyCycles = Pct(0.50);
  S.P90LatencyCycles = Pct(0.90);
  S.P99LatencyCycles = Pct(0.99);
  S.MeanLatencyCycles = Sum / static_cast<double>(Lat.size());
  if (S.MakespanCycles > 0)
    S.RequestsPerMegacycle =
        static_cast<double>(Rs.size()) * 1e6 / S.MakespanCycles;
  S.HostWallSeconds = LastReplayWallSeconds;
  if (LastReplayWallSeconds > 0)
    S.HostRequestsPerSec =
        static_cast<double>(Rs.size()) / LastReplayWallSeconds;
  return S;
}
