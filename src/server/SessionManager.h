//===- server/SessionManager.h - Multi-tenant runtime front end -------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission/batching front end of the runtime server. A bounded
/// queue feeds a pool of worker threads; each worker drains requests in
/// batches and runs every request as its own Session against the shared
/// ResidencyIndex. Outputs are bit-identical to solo execution because
/// sessions run on private machines; the index is the only shared
/// mutable state, and it only arbitrates modeled device capacity.
///
/// Latency numbers are *not* taken from the live interleave (which is
/// scheduler-dependent): after the replay completes, a deterministic
/// queueing post-pass re-derives arrival, admission, and completion
/// times in modeled cycles from the per-request deterministic
/// ServiceCycles — fixed arrival spacing, batches admitted whole, FCFS
/// over as many lanes as worker threads. Same requests + same config =
/// the same p50/p99, bit for bit, which is what lets BENCH_server.json
/// be a gated baseline (docs/Server.md).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SERVER_SESSIONMANAGER_H
#define CGCM_SERVER_SESSIONMANAGER_H

#include "server/Session.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace cgcm {

struct ServerConfig {
  unsigned Threads = 8;   ///< Worker threads = modeled service lanes.
  unsigned BatchSize = 8; ///< Requests a worker drains per queue visit.
  unsigned QueueDepth = 256; ///< Admission bound; submit blocks beyond it.
  ServerQuotas Quotas;
  RunnerOptions Run;  ///< Execution knobs forwarded to every session.
  bool Audit = true;  ///< Chain a RuntimeAuditor behind each session.

  //===--------------------------------------------------------------------===//
  // Deterministic latency model (docs/Server.md)
  //===--------------------------------------------------------------------===//

  /// Modeled cycles between consecutive request arrivals.
  double ArrivalSpacingCycles = 100000;
  /// Modeled front-end cost paid once per admitted batch.
  double AdmissionCycles = 5000;
};

/// Aggregates over one replay, all modeled numbers deterministic.
struct ServerStats {
  uint64_t Requests = 0;
  uint64_t Failures = 0; ///< Responses with Ok == false.
  double P50LatencyCycles = 0;
  double P90LatencyCycles = 0;
  double P99LatencyCycles = 0;
  double MeanLatencyCycles = 0;
  double MakespanCycles = 0; ///< Last modeled completion time.
  /// Modeled throughput: requests per million cycles of makespan.
  double RequestsPerMegacycle = 0;
  /// Host-clock throughput of the live replay — real, noisy, never
  /// gated.
  double HostWallSeconds = 0;
  double HostRequestsPerSec = 0;
};

class SessionManager {
public:
  explicit SessionManager(ServerConfig C);

  /// Replays \p Reqs through the live front end (bounded queue, worker
  /// pool, batch admission, shared index with quota eviction), then
  /// attaches deterministic modeled latencies. Response order matches
  /// request order; request i runs as session id i + 1.
  std::vector<ServerResponse> replay(const std::vector<ServerRequest> &Reqs);

  /// The deterministic queueing post-pass alone (exposed for tests):
  /// fills Arrival/Start/LatencyCycles from ServiceCycles and \p C.
  static void computeLatencies(std::vector<ServerResponse> &Rs,
                               const ServerConfig &C);

  /// Percentiles (nearest-rank over modeled latencies) and throughput
  /// of a completed replay.
  ServerStats summarize(const std::vector<ServerResponse> &Rs) const;

  ResidencyIndex &index() { return Index; }
  const ServerConfig &config() const { return Cfg; }

private:
  struct Item {
    size_t Index = 0;
    const ServerRequest *Req = nullptr;
  };

  void submit(size_t Index, const ServerRequest *R);
  void worker(std::vector<ServerResponse> &Out);

  ServerConfig Cfg;
  ResidencyIndex Index;

  std::mutex QueueMu;
  std::condition_variable QueueCv;      ///< Work available (or closed).
  std::condition_variable QueueSpaceCv; ///< Admission slot available.
  std::deque<Item> Queue;
  bool Closed = false;
  double LastReplayWallSeconds = 0;
};

} // namespace cgcm

#endif // CGCM_SERVER_SESSIONMANAGER_H
