//===- support/Casting.h - LLVM-style isa/cast/dyn_cast templates --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the isa<>, cast<>, and dyn_cast<> templates, a hand-rolled,
/// opt-in form of RTTI in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by providing a static `classof(const Base *)`
/// predicate on each derived class.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_CASTING_H
#define CGCM_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace cgcm {

/// Returns true if \p Val is an instance of the class \p To (or one of its
/// descendants). \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  if constexpr (std::is_base_of_v<To, From>)
    return true;
  else
    return To::classof(Val);
}

/// Variadic isa<>: true if \p Val is an instance of any of the listed types.
template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked cast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking cast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null argument (returning false).
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates a null argument (propagating it).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace cgcm

#endif // CGCM_SUPPORT_CASTING_H
