//===- support/Diagnostics.cpp - Checker diagnostics -----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace cgcm;

std::string Diagnostic::getString() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.getString() << ": ";
  else
    OS << "<unknown>: ";
  const char *Sev = Severity == DiagSeverity::Error     ? "error"
                    : Severity == DiagSeverity::Warning ? "warning"
                                                        : "remark";
  OS << Sev << "[" << ID << "]: " << Message;
  if (!FunctionName.empty())
    OS << " [in '" << FunctionName << "']";
  return OS.str();
}

unsigned DiagnosticEngine::getNumErrors() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      ++N;
  return N;
}

unsigned DiagnosticEngine::getNumWarnings() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Warning)
      ++N;
  return N;
}

unsigned DiagnosticEngine::getNumRemarks() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Remark)
      ++N;
  return N;
}

bool DiagnosticEngine::hasErrors() const {
  // Remarks are never failures, even under -Werror.
  if (WarningsAsErrors && getNumWarnings() != 0)
    return true;
  return getNumErrors() != 0;
}

bool DiagnosticEngine::hasDiagnostic(const std::string &ID) const {
  for (const Diagnostic &D : Diags)
    if (D.ID == ID)
      return true;
  return false;
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.getString() << "\n";
  if (Diags.empty())
    return;
  unsigned Errors = getNumErrors(), Warnings = getNumWarnings();
  unsigned Remarks = getNumRemarks();
  OS << Errors << (Errors == 1 ? " error, " : " errors, ") << Warnings
     << (Warnings == 1 ? " warning" : " warnings");
  if (Remarks != 0)
    OS << ", " << Remarks << (Remarks == 1 ? " remark" : " remarks");
  OS << " generated\n";
}
