//===- support/Diagnostics.cpp - Checker diagnostics -----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace cgcm;

std::string Diagnostic::getString() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.getString() << ": ";
  else
    OS << "<unknown>: ";
  OS << (Severity == DiagSeverity::Error ? "error" : "warning") << "[" << ID
     << "]: " << Message;
  if (!FunctionName.empty())
    OS << " [in '" << FunctionName << "']";
  return OS.str();
}

unsigned DiagnosticEngine::getNumErrors() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      ++N;
  return N;
}

unsigned DiagnosticEngine::getNumWarnings() const {
  return static_cast<unsigned>(Diags.size()) - getNumErrors();
}

bool DiagnosticEngine::hasErrors() const {
  if (WarningsAsErrors)
    return !Diags.empty();
  return getNumErrors() != 0;
}

bool DiagnosticEngine::hasDiagnostic(const std::string &ID) const {
  for (const Diagnostic &D : Diags)
    if (D.ID == ID)
      return true;
  return false;
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.getString() << "\n";
  if (Diags.empty())
    return;
  unsigned Errors = getNumErrors(), Warnings = getNumWarnings();
  OS << Errors << (Errors == 1 ? " error, " : " errors, ") << Warnings
     << (Warnings == 1 ? " warning" : " warnings") << " generated\n";
}
