//===- support/Diagnostics.h - Checker diagnostics -------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine for the static checkers (docs/StaticAnalysis.md).
/// Unlike ErrorHandling.h — which aborts on invariant violations — the
/// engine *collects* findings about the user's program so a single
/// `cgcmc --analyze` run can report every problem at once, each tagged
/// with a stable diagnostic ID and the MiniC source location of the
/// offending construct.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_DIAGNOSTICS_H
#define CGCM_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <ostream>
#include <string>
#include <vector>

namespace cgcm {

enum class DiagSeverity {
  Remark,  ///< An optimization report (what a pass did, or why it did
           ///< not); never an error, surfaced via cgcmc --remarks.
  Warning, ///< Suspicious but not provably wrong; promotable via -Werror.
  Error,   ///< A proven violation of a CGCM soundness property.
};

/// One checker finding. IDs are stable strings ("cgcm-missing-map", ...)
/// listed in docs/StaticAnalysis.md; tests match on them.
struct Diagnostic {
  std::string ID;
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;            ///< MiniC position; may be invalid for pass-made IR.
  std::string Message;
  std::string FunctionName; ///< Host/kernel function the finding is in.

  /// "12:3: error[cgcm-missing-map]: ..." (or "<unknown>:" without a loc).
  std::string getString() const;
};

/// Collects diagnostics across checker runs. Checkers append via report();
/// drivers query hasErrors() and render with print().
class DiagnosticEngine {
public:
  /// When set, warnings count as errors for hasErrors() (the --Werror
  /// flag); already-reported diagnostics keep their printed severity.
  void setWarningsAsErrors(bool V) { WarningsAsErrors = V; }
  bool getWarningsAsErrors() const { return WarningsAsErrors; }

  void report(Diagnostic D) { Diags.push_back(std::move(D)); }

  /// Convenience for the common case.
  void report(const std::string &ID, DiagSeverity Severity, SourceLoc Loc,
              const std::string &Message, const std::string &FunctionName) {
    Diags.push_back({ID, Severity, Loc, Message, FunctionName});
  }

  /// Convenience for optimization remarks (the transform passes).
  void remark(const std::string &ID, SourceLoc Loc, const std::string &Message,
              const std::string &FunctionName) {
    Diags.push_back({ID, DiagSeverity::Remark, Loc, Message, FunctionName});
  }

  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  unsigned getNumErrors() const;
  unsigned getNumWarnings() const;
  unsigned getNumRemarks() const;

  /// True if analysis must fail: any error, or any warning under -Werror.
  bool hasErrors() const;

  /// True if any diagnostic with exactly this ID was reported (test aid).
  bool hasDiagnostic(const std::string &ID) const;

  /// Writes every diagnostic, one per line, followed by a summary line
  /// ("2 errors, 1 warning generated") if anything was reported.
  void print(std::ostream &OS) const;

private:
  std::vector<Diagnostic> Diags;
  bool WarningsAsErrors = false;
};

} // namespace cgcm

#endif // CGCM_SUPPORT_DIAGNOSTICS_H
