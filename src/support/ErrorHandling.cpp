//===- support/ErrorHandling.cpp - Fatal error reporting -----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace cgcm;

void cgcm::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "cgcm fatal error: %s\n", Msg.c_str());
  std::abort();
}

void cgcm::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
