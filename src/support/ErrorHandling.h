//===- support/ErrorHandling.h - Fatal error reporting -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and the CGCM_UNREACHABLE marker, mirroring
/// llvm/Support/ErrorHandling.h. Library code never throws; invariant
/// violations abort with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_ERRORHANDLING_H
#define CGCM_SUPPORT_ERRORHANDLING_H

#include <string>

namespace cgcm {

/// Reports a fatal error (an unrecoverable environment or usage problem)
/// and aborts the process. The message follows tool-style conventions:
/// lowercase first letter, no trailing period.
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Implementation hook for CGCM_UNREACHABLE.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace cgcm

/// Marks a point in code that should never be reached if program invariants
/// hold. Prints the message, file, and line, then aborts.
#define CGCM_UNREACHABLE(msg)                                                  \
  ::cgcm::unreachableInternal(msg, __FILE__, __LINE__)

#endif // CGCM_SUPPORT_ERRORHANDLING_H
