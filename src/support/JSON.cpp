//===- support/JSON.cpp - Minimal JSON writing and parsing ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace cgcm;

std::string cgcm::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string cgcm::jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  // Integral doubles print without a fraction so counters stay readable.
  if (V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::beforeValue() {
  if (PendingKey) {
    PendingKey = false;
    return; // key() already wrote the separator.
  }
  if (!HasValue.empty()) {
    if (HasValue.back())
      OS << ",";
    HasValue.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  OS << "{";
  IsObject.push_back(true);
  HasValue.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  OS << "}";
  IsObject.pop_back();
  HasValue.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  OS << "[";
  IsObject.push_back(false);
  HasValue.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  OS << "]";
  IsObject.pop_back();
  HasValue.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  if (!HasValue.empty()) {
    if (HasValue.back())
      OS << ",";
    HasValue.back() = true;
  }
  OS << "\"" << jsonEscape(K) << "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::string(const std::string &V) {
  beforeValue();
  OS << "\"" << jsonEscape(V) << "\"";
  return *this;
}

JsonWriter &JsonWriter::number(double V) {
  beforeValue();
  OS << jsonNumber(V);
  return *this;
}

JsonWriter &JsonWriter::number(uint64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::number(int64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::boolean(bool V) {
  beforeValue();
  OS << (V ? "true" : "false");
  return *this;
}

JsonWriter &JsonWriter::null() {
  beforeValue();
  OS << "null";
  return *this;
}

JsonWriter &JsonWriter::raw(const std::string &Raw) {
  beforeValue();
  OS << Raw;
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const JsonValue &JsonValue::operator[](const std::string &Key) const {
  static const JsonValue Null;
  if (K != Kind::Object)
    return Null;
  auto It = Object.find(Key);
  return It == Object.end() ? Null : It->second;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Err) : Text(Text), Err(Err) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Err)
      *Err = "json offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::string(Lit).size();
    if (Text.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.String);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' in object");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Object[Key] = std::move(V);
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Array.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = static_cast<unsigned>(
            std::strtoul(Text.substr(Pos, 4).c_str(), nullptr, 16));
        Pos += 4;
        // Basic-multilingual-plane only; enough for our own output.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    Out.K = JsonValue::Kind::Number;
    Out.Number = std::strtod(Text.substr(Start, Pos - Start).c_str(), nullptr);
    return true;
  }

  const std::string &Text;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

bool cgcm::parseJson(const std::string &Text, JsonValue &Out,
                     std::string *Err) {
  return Parser(Text, Err).parse(Out);
}
