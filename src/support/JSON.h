//===- support/JSON.h - Minimal JSON writing and parsing --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON toolkit for the observability subsystem: string escaping
/// and a streaming writer (used by the trace/profile/bench exporters) and
/// a recursive-descent parser (used by tests and validators to parse the
/// emitted files back). Deliberately tiny: objects, arrays, strings,
/// numbers, booleans, and null — no streaming reads, no comments.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_JSON_H
#define CGCM_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace cgcm {

/// Escapes \p S for inclusion inside a JSON string literal (no quotes
/// added).
std::string jsonEscape(const std::string &S);

/// Renders a double the way JSON expects: finite values in shortest
/// round-trippable form, non-finite values as null.
std::string jsonNumber(double V);

/// A streaming JSON writer with automatic comma management. Usage:
///
///   JsonWriter W(OS);
///   W.beginObject();
///   W.key("name").string("saxpy");
///   W.key("events").beginArray();
///   ...
///   W.endArray();
///   W.endObject();
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Writes an object key; the next value call supplies its value.
  JsonWriter &key(const std::string &K);

  JsonWriter &string(const std::string &V);
  JsonWriter &number(double V);
  JsonWriter &number(uint64_t V);
  JsonWriter &number(int64_t V);
  JsonWriter &boolean(bool V);
  JsonWriter &null();

  /// Writes \p Raw verbatim as a value (caller guarantees valid JSON);
  /// used by the trace layer, whose event args are pre-rendered.
  JsonWriter &raw(const std::string &Raw);

private:
  void beforeValue();

  std::ostream &OS;
  /// One entry per open container: true = object, false = array.
  std::vector<bool> IsObject;
  /// Whether the current container already holds a value.
  std::vector<bool> HasValue;
  bool PendingKey = false;
};

/// A parsed JSON value (tests and validators only; not a DOM for hot
/// paths).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool Bool = false;
  double Number = 0;
  std::string String;
  std::vector<JsonValue> Array;
  std::map<std::string, JsonValue> Object;

  bool isNull() const { return K == Kind::Null; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member access; returns null for missing keys or non-objects.
  const JsonValue &operator[](const std::string &Key) const;
};

/// Parses \p Text as a single JSON document. On failure returns false and
/// fills \p Err with a position-tagged message.
bool parseJson(const std::string &Text, JsonValue &Out, std::string *Err);

} // namespace cgcm

#endif // CGCM_SUPPORT_JSON_H
