//===- support/Metrics.cpp - Process-wide metrics registry ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/JSON.h"

#include <cmath>

using namespace cgcm;

//===----------------------------------------------------------------------===//
// MetricHistogram
//===----------------------------------------------------------------------===//

uint64_t MetricHistogram::percentile(double P) const {
  const uint64_t N = count();
  if (N == 0)
    return 0;
  const uint64_t Rank =
      static_cast<uint64_t>(std::ceil(P * static_cast<double>(N)));
  uint64_t Cum = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Cum += bucketCount(I);
    if (Cum >= Rank)
      return bucketUpperBound(I);
  }
  return bucketUpperBound(NumBuckets - 1);
}

void MetricHistogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::get() {
  static MetricsRegistry R;
  return R;
}

MetricCounter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<MetricCounter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<MetricCounter>();
  return *Slot;
}

MetricGauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<MetricGauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<MetricGauge>();
  return *Slot;
}

MetricHistogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<MetricHistogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<MetricHistogram>();
  return *Slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  MetricsSnapshot S;
  S.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    S.Counters.push_back({Name, C->value()});
  S.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.push_back({Name, G->value()});
  S.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    HistogramSnapshot HS;
    HS.Name = Name;
    HS.Count = H->count();
    HS.Sum = H->sum();
    HS.Min = H->min();
    HS.Max = H->max();
    HS.P50 = H->percentile(0.50);
    HS.P90 = H->percentile(0.90);
    HS.P99 = H->percentile(0.99);
    for (unsigned I = 0; I < MetricHistogram::NumBuckets; ++I)
      if (uint64_t N = H->bucketCount(I))
        HS.Buckets.push_back({MetricHistogram::bucketUpperBound(I), N});
    S.Histograms.push_back(std::move(HS));
  }
  return S;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

void MetricsRegistry::writeJson(std::ostream &OS,
                                const std::string &AttributionRaw) const {
  JsonWriter W(OS);
  writeMetricsObject(W, snapshot(), AttributionRaw);
  OS << "\n";
}

void cgcm::writeMetricsObject(JsonWriter &W, const MetricsSnapshot &S,
                              const std::string &AttributionRaw) {
  W.beginObject();
  W.key("schema").string("cgcm-metrics-v1");
  W.key("counters").beginArray();
  for (const CounterSnapshot &C : S.Counters) {
    W.beginObject();
    W.key("name").string(C.Name);
    W.key("value").number(C.Value);
    W.endObject();
  }
  W.endArray();
  W.key("gauges").beginArray();
  for (const GaugeSnapshot &G : S.Gauges) {
    W.beginObject();
    W.key("name").string(G.Name);
    W.key("value").number(G.Value);
    W.endObject();
  }
  W.endArray();
  W.key("histograms").beginArray();
  for (const HistogramSnapshot &H : S.Histograms) {
    W.beginObject();
    W.key("name").string(H.Name);
    W.key("count").number(H.Count);
    W.key("sum").number(H.Sum);
    W.key("min").number(H.Min);
    W.key("max").number(H.Max);
    W.key("p50").number(H.P50);
    W.key("p90").number(H.P90);
    W.key("p99").number(H.P99);
    W.key("buckets").beginArray();
    for (const HistogramSnapshot::Bucket &B : H.Buckets) {
      W.beginObject();
      W.key("le").number(B.Le);
      W.key("count").number(B.Count);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  if (!AttributionRaw.empty())
    W.key("attribution").raw(AttributionRaw);
  W.endObject();
}
