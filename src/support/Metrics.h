//===- support/Metrics.h - Process-wide metrics registry --------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of counters, gauges, and log-bucketed
/// histograms, cheap enough to leave always-on (docs/Observability.md
/// §Metrics). Producers hold stable references obtained once from
/// MetricsRegistry::get() and update them with relaxed atomics; consumers
/// take a name-sorted snapshot and render it as `cgcm-metrics-v1` JSON.
///
/// Histogram semantics, fixed and tested (MetricsTests.cpp):
///  - bucket index for a value V is std::bit_width(V): V == 0 lands in
///    bucket 0, V in [2^(k-1), 2^k) lands in bucket k, for 65 buckets
///    total (k <= 64);
///  - bucket k's inclusive upper bound is 2^k - 1 (UINT64_MAX for k=64);
///  - percentile(P) is the upper bound of the smallest bucket whose
///    cumulative count reaches ceil(P * count) — a deterministic,
///    conservative (rounded-up) quantile. min/max/sum/count are exact.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_METRICS_H
#define CGCM_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cgcm {

class JsonWriter;

//===----------------------------------------------------------------------===//
// Instruments
//===----------------------------------------------------------------------===//

/// A monotonically increasing event count.
class MetricCounter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-written (or accumulated) level; doubles because most gauges
/// mirror modeled-cycle quantities.
class MetricGauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  void add(double X) { V.fetch_add(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// A log2-bucketed distribution of non-negative integer samples. See the
/// file comment for the exact bucket and percentile definitions.
class MetricHistogram {
public:
  static constexpr unsigned NumBuckets = 65;

  /// Bucket index for \p Value: 0 for 0, else bit_width (so
  /// [2^(k-1), 2^k) -> k).
  static unsigned bucketIndex(uint64_t Value) {
    return static_cast<unsigned>(std::bit_width(Value));
  }

  /// Inclusive upper bound of bucket \p Index.
  static uint64_t bucketUpperBound(unsigned Index) {
    return Index >= 64 ? UINT64_MAX : (uint64_t(1) << Index) - 1;
  }

  void record(uint64_t Value) {
    Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
    updateMin(Value);
    updateMax(Value);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const {
    uint64_t M = Min.load(std::memory_order_relaxed);
    return M == UINT64_MAX ? 0 : M;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }

  /// The upper bound of the smallest bucket whose cumulative count
  /// reaches ceil(P * count()); 0 when empty. P in (0, 1].
  uint64_t percentile(double P) const;

  uint64_t bucketCount(unsigned Index) const {
    return Buckets[Index].load(std::memory_order_relaxed);
  }

  void reset();

private:
  void updateMin(uint64_t Value) {
    uint64_t Cur = Min.load(std::memory_order_relaxed);
    while (Value < Cur &&
           !Min.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
  }
  void updateMax(uint64_t Value) {
    uint64_t Cur = Max.load(std::memory_order_relaxed);
    while (Value > Cur &&
           !Max.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
  }

  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

struct CounterSnapshot {
  std::string Name;
  uint64_t Value = 0;
};

struct GaugeSnapshot {
  std::string Name;
  double Value = 0;
};

struct HistogramSnapshot {
  struct Bucket {
    uint64_t Le = 0; ///< Inclusive upper bound.
    uint64_t Count = 0;
  };
  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0;
  uint64_t Max = 0;
  uint64_t P50 = 0;
  uint64_t P90 = 0;
  uint64_t P99 = 0;
  /// Non-empty buckets only, ascending by Le.
  std::vector<Bucket> Buckets;
};

/// A consistent-enough, name-sorted copy of the registry (exact when no
/// writer is concurrently active, which is the only mode we snapshot in).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> Counters;
  std::vector<GaugeSnapshot> Gauges;
  std::vector<HistogramSnapshot> Histograms;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// The process-wide registry. Lookup takes a mutex; callers on hot paths
/// look up once and cache the returned reference, which stays valid for
/// the life of the process (reset() zeroes values, never removes
/// instruments).
class MetricsRegistry {
public:
  static MetricsRegistry &get();

  MetricCounter &counter(const std::string &Name);
  MetricGauge &gauge(const std::string &Name);
  MetricHistogram &histogram(const std::string &Name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered instrument (tests; the registry is
  /// process-wide and would otherwise accumulate across cases).
  void reset();

  /// Renders a standalone `cgcm-metrics-v1` document. \p AttributionRaw,
  /// when non-empty, is pre-rendered JSON spliced in as the
  /// "attribution" member (the renderer lives above support/ — see
  /// WallAttribution in gpusim/Timing.h).
  void writeJson(std::ostream &OS, const std::string &AttributionRaw = "") const;

private:
  MetricsRegistry() = default;

  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<MetricCounter>> Counters;
  std::map<std::string, std::unique_ptr<MetricGauge>> Gauges;
  std::map<std::string, std::unique_ptr<MetricHistogram>> Histograms;
};

/// Writes \p S as a complete `cgcm-metrics-v1` JSON object value on \p W
/// (including the "schema" member), so embedders (bench/BenchJson.h) can
/// nest it inside their own documents. \p AttributionRaw as in
/// MetricsRegistry::writeJson.
void writeMetricsObject(JsonWriter &W, const MetricsSnapshot &S,
                        const std::string &AttributionRaw = "");

} // namespace cgcm

#endif // CGCM_SUPPORT_METRICS_H
