//===- support/MetricsDiff.cpp - Cross-run metric comparison ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/MetricsDiff.h"

#include "support/JSON.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <string_view>

using namespace cgcm;

//===----------------------------------------------------------------------===//
// Series extraction
//===----------------------------------------------------------------------===//

namespace {

std::string joinKey(std::initializer_list<std::string> Parts) {
  std::string Out;
  for (const std::string &P : Parts) {
    if (!Out.empty())
      Out += "/";
    Out += P;
  }
  return Out;
}

void extractAttribution(const JsonValue &A, const std::string &Prefix,
                        MetricSeries &Out) {
  if (!A.isObject())
    return;
  for (const auto &[Key, V] : A.Object) {
    if (V.isNumber())
      Out[joinKey({Prefix, Key})] = V.Number;
    else if (Key == "streams" && V.isArray())
      for (const JsonValue &S : V.Array) {
        if (!S.isObject() || !S["stream"].isNumber())
          continue;
        std::string SP = joinKey(
            {Prefix, "stream" + std::to_string(
                         static_cast<long long>(S["stream"].Number))});
        for (const auto &[SK, SV] : S.Object)
          if (SK != "stream" && SV.isNumber())
            Out[joinKey({SP, SK})] = SV.Number;
      }
  }
}

void extractMetricsV1(const JsonValue &Doc, const std::string &Prefix,
                      MetricSeries &Out) {
  for (const JsonValue &C : Doc["counters"].Array)
    if (C["name"].isString() && C["value"].isNumber())
      Out[joinKey({Prefix, C["name"].String})] = C["value"].Number;
  for (const JsonValue &G : Doc["gauges"].Array)
    if (G["name"].isString() && G["value"].isNumber())
      Out[joinKey({Prefix, G["name"].String})] = G["value"].Number;
  for (const JsonValue &H : Doc["histograms"].Array) {
    if (!H["name"].isString())
      continue;
    const std::string Base = joinKey({Prefix, H["name"].String});
    for (const char *Field :
         {"count", "sum", "min", "max", "p50", "p90", "p99"})
      if (H[Field].isNumber())
        Out[Base + "." + Field] = H[Field].Number;
  }
  extractAttribution(Doc["attribution"],
                     Prefix.empty() ? "attribution"
                                    : Prefix + "/attribution",
                     Out);
}

std::string formatNumberKey(double V) {
  // Bench keys are small integers (stream counts); render without a
  // fractional part when exact.
  long long I = static_cast<long long>(V);
  if (static_cast<double>(I) == V)
    return std::to_string(I);
  return jsonNumber(V);
}

void extractBenchV1(const JsonValue &Doc, MetricSeries &Out) {
  for (const JsonValue &R : Doc["rows"].Array) {
    if (!R["workload"].isString() || !R["config"].isString())
      continue;
    std::string Base =
        joinKey({"rows", R["workload"].String, R["config"].String});
    for (const char *Field : {"cycles", "bytes_htod", "bytes_dtoh"})
      if (R[Field].isNumber())
        Out[joinKey({Base, Field})] = R[Field].Number;
  }
  for (const JsonValue &T : Doc["transfer_overlap"].Array) {
    if (!T["workload"].isString())
      continue;
    std::string Base = joinKey(
        {"transfer_overlap", T["workload"].String,
         "s" + formatNumberKey(T["streams"].Number),
         T["coalesce"].Bool ? "coalesce" : "no-coalesce",
         T["pinned"].Bool ? "pinned" : "pageable"});
    for (const char *Field :
         {"total_cycles", "wall_cycles", "stall_cycles",
          "overlap_saved_cycles", "async_transfers", "dma_batches",
          "coalesced_transfers", "host_syncs"})
      if (T[Field].isNumber())
        Out[joinKey({Base, Field})] = T[Field].Number;
  }
  for (const JsonValue &P : Doc["pass_timings"].Array)
    if (P["pass"].isString()) {
      std::string Base = joinKey({"pass_timings", P["pass"].String});
      if (P["runs"].isNumber())
        Out[joinKey({Base, "runs"})] = P["runs"].Number;
      // wall_ms measures real time; exported under its noisy name so the
      // default filter drops it.
      if (P["wall_ms"].isNumber())
        Out[joinKey({Base, "wall_ms"})] = P["wall_ms"].Number;
    }
  for (const JsonValue &A : Doc["analysis_cache"].Array)
    if (A["analysis"].isString()) {
      std::string Base = joinKey({"analysis_cache", A["analysis"].String});
      for (const char *Field : {"constructions", "hits"})
        if (A[Field].isNumber())
          Out[joinKey({Base, Field})] = A[Field].Number;
    }
  if (Doc["metrics"].isObject() &&
      Doc["metrics"]["schema"].String == "cgcm-metrics-v1")
    extractMetricsV1(Doc["metrics"], "metrics", Out);
}

} // namespace

bool cgcm::extractSeries(const JsonValue &Doc, MetricSeries &Out,
                         std::string *Err) {
  const JsonValue &Schema = Doc["schema"];
  if (!Schema.isString()) {
    if (Err)
      *Err = "document has no \"schema\" member";
    return false;
  }
  if (Schema.String == "cgcm-metrics-v1") {
    extractMetricsV1(Doc, "", Out);
    return true;
  }
  if (Schema.String == "cgcm-bench-v1") {
    extractBenchV1(Doc, Out);
    return true;
  }
  if (Err)
    *Err = "unsupported schema \"" + Schema.String +
           "\" (want cgcm-metrics-v1 or cgcm-bench-v1)";
  return false;
}

bool cgcm::extractSeriesFromText(const std::string &Text, MetricSeries &Out,
                                 std::string *Err) {
  JsonValue Doc;
  if (!parseJson(Text, Doc, Err))
    return false;
  return extractSeries(Doc, Out, Err);
}

//===----------------------------------------------------------------------===//
// Diffing
//===----------------------------------------------------------------------===//

bool cgcm::isNoisySeries(const std::string &Name) {
  // "host-ns" is the bench row config spelling (rows/<w>/host-ns-per-op).
  for (const char *Sub : {"host_ns", "host-ns", "wall_ms", "wall_us"})
    if (Name.find(Sub) != std::string::npos)
      return true;
  return false;
}

double DiffOptions::thresholdFor(const std::string &Name) const {
  double T = Threshold;
  for (const auto &[Substr, Override] : Overrides)
    if (Name.find(Substr) != std::string::npos)
      T = Override;
  return T;
}

std::string DiffOptions::renamedName(const std::string &Name) const {
  auto prefixed = [](const std::string &N, const std::string &P) {
    return N.size() >= P.size() && N.compare(0, P.size(), P) == 0;
  };
  for (const auto &[Old, New] : Renames) {
    if (prefixed(Name, Old))
      return New + Name.substr(Old.size());
    // A bench document's embedded snapshot flattens under "metrics/".
    std::string Embedded = "metrics/" + Old;
    if (prefixed(Name, Embedded))
      return "metrics/" + New + Name.substr(Embedded.size());
  }
  return {};
}

namespace {

/// The device indices a flattened document exposes per-device series
/// for: every name starting with `dev<N>.` (optionally under the
/// embedded-metrics `metrics/` prefix of a bench document).
std::set<unsigned> deviceIndexSet(const MetricSeries &S) {
  std::set<unsigned> Devs;
  for (const auto &[Name, V] : S) {
    std::string_view N(Name);
    if (N.substr(0, 8) == "metrics/")
      N.remove_prefix(8);
    if (N.substr(0, 3) != "dev")
      continue;
    N.remove_prefix(3);
    size_t Digits = 0;
    unsigned Idx = 0;
    while (Digits < N.size() && N[Digits] >= '0' && N[Digits] <= '9')
      Idx = Idx * 10 + (N[Digits++] - '0');
    if (Digits && Digits < N.size() && N[Digits] == '.')
      Devs.insert(Idx);
  }
  return Devs;
}

std::string formatDeviceSet(const std::set<unsigned> &Devs) {
  if (Devs.empty())
    return "none";
  std::string Out = "{";
  for (unsigned D : Devs)
    Out += (Out.size() > 1 ? "," : "") + std::to_string(D);
  return Out + "}";
}

} // namespace

DiffResult cgcm::diffSeries(const MetricSeries &Base, const MetricSeries &Cur,
                            const DiffOptions &Opts) {
  DiffResult R;
  std::set<unsigned> BaseDevs = deviceIndexSet(Base);
  std::set<unsigned> CurDevs = deviceIndexSet(Cur);
  if (BaseDevs != CurDevs)
    R.DeviceMismatch =
        "per-device series cover different device sets: baseline " +
        formatDeviceSet(BaseDevs) + ", candidate " + formatDeviceSet(CurDevs) +
        "; the runs used different --devices=N, so per-series deltas are "
        "meaningless — regenerate both sides with the same device count";
  auto skip = [&](const std::string &Name) {
    if (Opts.IncludeNoisy || !isNoisySeries(Name))
      return false;
    ++R.NoisySkipped;
    return true;
  };
  // Candidate names consumed by a rename match: the renamed series is
  // reported once (as Renamed), not a second time as New.
  std::set<std::string> RenameTargets;
  for (const auto &[Name, BaseV] : Base) {
    if (skip(Name))
      continue;
    DiffEntry E;
    E.Name = Name;
    E.Base = BaseV;
    auto It = Cur.find(Name);
    if (It == Cur.end()) {
      std::string NewName = Opts.renamedName(Name);
      if (!NewName.empty()) {
        auto NewIt = Cur.find(NewName);
        if (NewIt != Cur.end()) {
          // A known rename with the new series present: note it, but do
          // not threshold-check across the rename (the renamed series
          // measures something different by definition).
          E.RenamedTo = NewName;
          E.Cur = NewIt->second;
          E.S = DiffEntry::Status::Renamed;
          ++R.Renamed;
          RenameTargets.insert(std::move(NewName));
          R.Entries.push_back(std::move(E));
          continue;
        }
      }
      E.S = DiffEntry::Status::Missing;
      ++R.Missing;
      R.Entries.push_back(std::move(E));
      continue;
    }
    E.Cur = It->second;
    ++R.Compared;
    if (BaseV == 0)
      E.Delta = E.Cur == 0 ? 0
                : E.Cur > 0 ? std::numeric_limits<double>::infinity()
                            : -std::numeric_limits<double>::infinity();
    else
      E.Delta = (E.Cur - BaseV) / std::fabs(BaseV);
    const double T = Opts.thresholdFor(Name);
    if (E.Delta > T) {
      E.S = DiffEntry::Status::Regressed;
      ++R.Regressions;
    } else if (E.Delta < -T) {
      E.S = DiffEntry::Status::Improved;
      ++R.Improvements;
    }
    R.Entries.push_back(std::move(E));
  }
  for (const auto &[Name, CurV] : Cur) {
    if (Base.count(Name) || RenameTargets.count(Name) || skip(Name))
      continue;
    DiffEntry E;
    E.Name = Name;
    E.Cur = CurV;
    E.S = DiffEntry::Status::New;
    ++R.NewSeries;
    R.Entries.push_back(std::move(E));
  }
  // Two interleaved sorted passes: merge back to one name order.
  std::sort(R.Entries.begin(), R.Entries.end(),
            [](const DiffEntry &A, const DiffEntry &B) {
              return A.Name < B.Name;
            });
  return R;
}

void cgcm::printDiffReport(std::ostream &OS, const DiffResult &R,
                           bool Verbose) {
  auto statusName = [](DiffEntry::Status S) {
    switch (S) {
    case DiffEntry::Status::Ok:
      return "ok       ";
    case DiffEntry::Status::Regressed:
      return "REGRESSED";
    case DiffEntry::Status::Improved:
      return "improved ";
    case DiffEntry::Status::Missing:
      return "MISSING  ";
    case DiffEntry::Status::New:
      return "new      ";
    case DiffEntry::Status::Renamed:
      return "renamed  ";
    }
    return "?        ";
  };
  for (const DiffEntry &E : R.Entries) {
    if (!Verbose && E.S == DiffEntry::Status::Ok)
      continue;
    OS << "  " << statusName(E.S) << " " << E.Name;
    if (E.S == DiffEntry::Status::Missing)
      OS << "  base=" << E.Base << " (absent in candidate)";
    else if (E.S == DiffEntry::Status::New)
      OS << "  cur=" << E.Cur << " (absent in baseline)";
    else if (E.S == DiffEntry::Status::Renamed)
      OS << " -> " << E.RenamedTo << "  base=" << E.Base << " cur=" << E.Cur
         << " (not compared across the rename)";
    else {
      OS << "  base=" << E.Base << " cur=" << E.Cur << " (";
      if (std::isinf(E.Delta))
        OS << (E.Delta > 0 ? "+inf" : "-inf");
      else {
        std::ostringstream Pct;
        Pct << std::showpos << std::fixed << std::setprecision(1)
            << E.Delta * 100.0;
        OS << Pct.str() << "%";
      }
      OS << ")";
    }
    OS << "\n";
  }
  if (!R.DeviceMismatch.empty())
    OS << "  DEVICE-MISMATCH " << R.DeviceMismatch << "\n";
  OS << (R.failed() ? "FAIL" : "OK") << ": " << R.Compared << " compared, "
     << R.Regressions << " regressed, " << R.Missing << " missing, "
     << R.Improvements << " improved, " << R.NewSeries << " new";
  if (R.Renamed)
    OS << ", " << R.Renamed << " renamed";
  if (R.NoisySkipped)
    OS << ", " << R.NoisySkipped << " noisy skipped";
  OS << "\n";
}
