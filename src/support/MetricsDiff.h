//===- support/MetricsDiff.h - Cross-run metric comparison ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison engine behind tools/cgcm-metrics-diff (and the
/// regression gate in CI): flattens a `cgcm-metrics-v1` or
/// `cgcm-bench-v1` document into a name -> value series, aligns two such
/// series, and classifies every per-series delta against configurable
/// thresholds. Lives in support/ (not the tool) so MetricsTests.cpp can
/// exercise the doctored-snapshot and identity cases in-process.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_METRICSDIFF_H
#define CGCM_SUPPORT_METRICSDIFF_H

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cgcm {

struct JsonValue;

/// A flattened document: slash-joined series name -> numeric value.
using MetricSeries = std::map<std::string, double>;

/// Flattens \p Doc into \p Out. Accepts `cgcm-metrics-v1` (counters and
/// gauges by name; histograms as name.count/.sum/.min/.max/.p50/.p90/.p99;
/// the attribution block as attribution/<field>) and `cgcm-bench-v1`
/// (rows as rows/<workload>/<config>/{cycles,bytes_htod,bytes_dtoh};
/// transfer_overlap keyed by workload/streams/coalesce/pinned;
/// pass_timings runs; analysis_cache counters; an embedded "metrics"
/// section recursed under metrics/). Returns false with \p Err set on an
/// unrecognized schema.
bool extractSeries(const JsonValue &Doc, MetricSeries &Out, std::string *Err);

/// Parses \p Text as JSON and flattens it (extractSeries on the result).
bool extractSeriesFromText(const std::string &Text, MetricSeries &Out,
                           std::string *Err);

struct DiffOptions {
  /// Relative growth beyond which a series counts as regressed (and
  /// shrinkage beyond which it counts as improved).
  double Threshold = 0.15;
  /// Substring-matched per-series overrides; the last match wins.
  std::vector<std::pair<std::string, double>> Overrides;
  /// Compare wall-time series too (names containing host_ns / host-ns /
  /// wall_ms / wall_us measure real time and are skipped by default).
  bool IncludeNoisy = false;
  /// Known series renames, old-prefix -> new-prefix (prefix-matched:
  /// histograms flatten to seven `.count`/`.sum`/... series, and
  /// bench-embedded metrics carry a `metrics/` prefix). A baseline
  /// series matching an old prefix whose renamed counterpart exists in
  /// the candidate is classified Renamed — a note, not the Missing
  /// failure — so an intentional rename does not trip the gate while a
  /// genuinely vanished series still does. Values are NOT threshold-
  /// checked across a rename: the series measures something new.
  /// Seeded with the renames this project has performed; the tool's
  /// --rename=<old>=<new> flag appends more.
  std::vector<std::pair<std::string, std::string>> Renames = {
      // PR 9: the balanced-tree probe depth became the radix-index
      // probe count when the index replaced the tree hot path.
      {"runtime.lookup.depth", "runtime.index.probes"},
  };

  double thresholdFor(const std::string &Name) const;
  /// The candidate-side name \p Name maps to under Renames, or "" when
  /// no rule matches.
  std::string renamedName(const std::string &Name) const;
};

/// True for series that measure host wall time (non-deterministic across
/// runs); skipped unless DiffOptions::IncludeNoisy.
bool isNoisySeries(const std::string &Name);

struct DiffEntry {
  enum class Status {
    Ok,        ///< Within threshold (delta may still be nonzero).
    Regressed, ///< Grew beyond the threshold.
    Improved,  ///< Shrank beyond the threshold (a note, not a failure).
    Missing,   ///< In the baseline but not the candidate — a failure:
               ///< deleted series cannot hide regressions.
    New,       ///< In the candidate only (a note).
    Renamed,   ///< Vanished under a known rename rule and present in the
               ///< candidate under the new name (a note, not a failure).
  };
  std::string Name;
  /// For Renamed: the candidate-side name that matched.
  std::string RenamedTo;
  double Base = 0;
  double Cur = 0;
  /// (Cur - Base) / |Base|; +-inf when Base == 0 and Cur != 0.
  double Delta = 0;
  Status S = Status::Ok;
};

struct DiffResult {
  /// Every aligned series, name-sorted (noisy ones excluded unless
  /// requested).
  std::vector<DiffEntry> Entries;
  unsigned Compared = 0;
  unsigned Regressions = 0;
  unsigned Missing = 0;
  unsigned Improvements = 0;
  unsigned NewSeries = 0;
  unsigned Renamed = 0;
  unsigned NoisySkipped = 0;
  /// Set when the two documents carry per-device (`dev<N>.`) series for
  /// different device sets — the runs used different --devices=N, so
  /// per-series deltas are meaningless. Treated as a lost-series
  /// failure.
  std::string DeviceMismatch;

  /// The exit-nonzero condition: any regression, missing series, or a
  /// device-count mismatch between the two runs.
  bool failed() const {
    return Regressions + Missing > 0 || !DeviceMismatch.empty();
  }
};

DiffResult diffSeries(const MetricSeries &Base, const MetricSeries &Cur,
                      const DiffOptions &Opts = {});

/// Human-readable report: one line per non-Ok entry (every entry when
/// \p Verbose), then a summary line.
void printDiffReport(std::ostream &OS, const DiffResult &R,
                     bool Verbose = false);

} // namespace cgcm

#endif // CGCM_SUPPORT_METRICSDIFF_H
