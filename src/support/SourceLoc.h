//===- support/SourceLoc.h - Source positions ------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MiniC source position, shared between the frontend (tokens, AST
/// nodes) and the IR (instructions carry the location of the construct
/// they were lowered from, so diagnostics and the static checkers can
/// point back at source lines). Line 0 means "no location".
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_SOURCELOC_H
#define CGCM_SUPPORT_SOURCELOC_H

#include <string>

namespace cgcm {

/// A source position for diagnostics (1-based line/column).
struct SourceLoc {
  unsigned Line = 1;
  unsigned Col = 1;

  /// A location that points nowhere (unlowered or pass-created IR).
  static SourceLoc none() { return {0, 0}; }

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &O) const {
    return Line == O.Line && Col == O.Col;
  }

  std::string getString() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace cgcm

#endif // CGCM_SUPPORT_SOURCELOC_H
