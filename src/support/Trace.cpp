//===- support/Trace.cpp - Structured communication event tracing -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/JSON.h"
#include "support/Metrics.h"

#include <algorithm>
#include <iostream>

using namespace cgcm;

TraceArgs &TraceArgs::addRaw(const std::string &Key,
                             const std::string &Rendered) {
  if (!Json.empty())
    Json += ",";
  Json += "\"" + jsonEscape(Key) + "\":" + Rendered;
  return *this;
}

TraceArgs &TraceArgs::add(const std::string &Key, double V) {
  return addRaw(Key, jsonNumber(V));
}

TraceArgs &TraceArgs::add(const std::string &Key, const std::string &V) {
  return addRaw(Key, "\"" + jsonEscape(V) + "\"");
}

TraceCollector::TraceCollector(size_t Capacity)
    : Capacity(Capacity ? Capacity : 1) {}

void TraceCollector::push(TraceEvent E) {
  std::lock_guard<std::mutex> Lock(Mu);
  E.Seq = NextSeq++;
  if (Ring.size() < Capacity) {
    Ring.push_back(std::move(E));
    return;
  }
  // Ring overwrite: slot index cycles through the buffer; Seq keeps the
  // true order for export.
  static MetricCounter *const DroppedEvents =
      &MetricsRegistry::get().counter("trace.dropped_events");
  DroppedEvents->inc();
  Ring[static_cast<size_t>(E.Seq % Capacity)] = std::move(E);
}

void TraceCollector::instant(const std::string &Name,
                             const std::string &Category, double TsCycles,
                             TraceArgs Args, unsigned Lane) {
  if (!Enabled)
    return;
  TraceEvent E;
  E.Phase = TracePhase::Instant;
  E.Name = Name;
  E.Category = Category;
  E.TsCycles = TsCycles;
  E.ArgsJson = Args.getJson();
  E.Lane = Lane;
  push(std::move(E));
}

void TraceCollector::complete(const std::string &Name,
                              const std::string &Category, double TsCycles,
                              double DurCycles, TraceArgs Args,
                              unsigned Lane) {
  if (!Enabled)
    return;
  TraceEvent E;
  E.Phase = TracePhase::Complete;
  E.Name = Name;
  E.Category = Category;
  E.TsCycles = TsCycles;
  E.DurCycles = DurCycles;
  E.ArgsJson = Args.getJson();
  E.Lane = Lane;
  push(std::move(E));
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Ring.size();
}

uint64_t TraceCollector::getNumEmitted() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NextSeq;
}

uint64_t TraceCollector::getNumDropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NextSeq > Ring.size() ? NextSeq - Ring.size() : 0;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  NextSeq = 0;
}

void TraceCollector::setLaneName(unsigned Lane, const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  LaneNames[Lane] = Name;
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> Out = Ring;
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return A.Seq < B.Seq;
            });
  return Out;
}

namespace {

void writeEventFields(JsonWriter &W, const TraceEvent &E) {
  W.key("name").string(E.Name);
  W.key("cat").string(E.Category);
  if (E.Phase == TracePhase::Complete) {
    W.key("ph").string("X");
    W.key("dur").number(E.DurCycles);
  } else {
    W.key("ph").string("i");
    W.key("s").string("g"); // Global-scope instant marker.
  }
  W.key("ts").number(E.TsCycles);
  W.key("pid").number(static_cast<uint64_t>(1));
  // Lanes map 1:1 onto Chrome threads; lane 0 (the host, and everything
  // in a synchronous run) keeps the historical tid 1.
  W.key("tid").number(static_cast<uint64_t>(E.Lane + 1));
  W.key("seq").number(E.Seq);
  W.key("args");
  if (E.ArgsJson.empty())
    W.beginObject().endObject();
  else
    W.raw("{" + E.ArgsJson + "}");
}

/// Names one lane for the Chrome/Perfetto track list ("M" metadata
/// event). Only emitted when a trace actually used multiple lanes.
void writeThreadName(JsonWriter &W, unsigned Lane, const std::string &Name) {
  W.beginObject();
  W.key("name").string("thread_name");
  W.key("ph").string("M");
  W.key("pid").number(static_cast<uint64_t>(1));
  W.key("tid").number(static_cast<uint64_t>(Lane + 1));
  W.key("args");
  W.raw("{\"name\":\"" + jsonEscape(Name) + "\"}");
  W.endObject();
}

} // namespace

void TraceCollector::warnIfDropped() const {
  uint64_t Dropped = getNumDropped();
  if (Dropped)
    std::cerr << "trace: ring buffer overwrote " << Dropped << " of "
              << getNumEmitted()
              << " events (oldest lost; raise the capacity to keep them)\n";
}

void TraceCollector::exportChromeTrace(std::ostream &OS) const {
  warnIfDropped();
  std::vector<TraceEvent> Events = snapshot();
  unsigned MaxLane = 0;
  for (const TraceEvent &E : Events)
    MaxLane = std::max(MaxLane, E.Lane);
  JsonWriter W(OS);
  W.beginObject();
  W.key("traceEvents").beginArray();
  std::map<unsigned, std::string> Names;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Names = LaneNames;
  }
  if (MaxLane > 0) {
    // Asynchronous run: name the lanes (StreamEngine.h numbering),
    // preferring explicit overrides (multi-device pools name per-device
    // lanes; with none set this is the historical single-device output).
    auto laneName = [&](unsigned L) -> std::string {
      auto It = Names.find(L);
      if (It != Names.end())
        return It->second;
      if (L == 0)
        return "host";
      if (L == 1)
        return "gpu-compute";
      return "stream-" + std::to_string(L - 2);
    };
    for (unsigned L = 0; L <= MaxLane; ++L)
      writeThreadName(W, L, laneName(L));
  }
  for (const TraceEvent &E : Events) {
    W.beginObject();
    writeEventFields(W, E);
    W.endObject();
  }
  W.endArray();
  W.key("displayTimeUnit").string("ns");
  W.key("otherData").beginObject();
  W.key("clock").string("modeled-cycles");
  W.key("emitted").number(getNumEmitted());
  W.key("dropped").number(getNumDropped());
  W.endObject();
  W.endObject();
  OS << "\n";
}

void TraceCollector::exportJsonl(std::ostream &OS) const {
  warnIfDropped();
  for (const TraceEvent &E : snapshot()) {
    JsonWriter W(OS);
    W.beginObject();
    writeEventFields(W, E);
    W.endObject();
    OS << "\n";
  }
}
