//===- support/Trace.h - Structured communication event tracing -------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured event layer of the observability subsystem
/// (docs/Observability.md). The runtime, the GPU simulator, and the
/// interpreter emit events into a shared, thread-safe, bounded ring
/// buffer; exporters render the buffer as Chrome `trace_event` JSON
/// (loadable in chrome://tracing and Perfetto) or as JSONL, one event
/// per line.
///
/// Tracing is off by default: every emission site is guarded by
/// `isEnabled()`, so a disabled collector records nothing and costs one
/// predictable branch. Timestamps are *modeled* cycles (ExecStats
/// totalCycles at emission), not host time — the trace shows the
/// simulated schedule, which is the thing the paper's Figure 2 plots.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_SUPPORT_TRACE_H
#define CGCM_SUPPORT_TRACE_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cgcm {

/// Pre-rendered JSON arguments for one event ("k":v pairs without the
/// enclosing braces). Building the string eagerly keeps the ring buffer
/// POD-simple and the export step trivial.
class TraceArgs {
public:
  TraceArgs &add(const std::string &Key, uint64_t V) {
    return addRaw(Key, std::to_string(V));
  }
  TraceArgs &add(const std::string &Key, int64_t V) {
    return addRaw(Key, std::to_string(V));
  }
  TraceArgs &add(const std::string &Key, unsigned V) {
    return addRaw(Key, std::to_string(V));
  }
  TraceArgs &add(const std::string &Key, double V);
  TraceArgs &add(const std::string &Key, const std::string &V);
  TraceArgs &add(const std::string &Key, const char *V) {
    return add(Key, std::string(V));
  }
  TraceArgs &add(const std::string &Key, bool V) {
    return addRaw(Key, V ? "true" : "false");
  }

  const std::string &getJson() const { return Json; }
  bool empty() const { return Json.empty(); }

private:
  TraceArgs &addRaw(const std::string &Key, const std::string &Rendered);

  std::string Json;
};

enum class TracePhase : uint8_t {
  Complete, ///< A span with a duration (Chrome "ph":"X").
  Instant,  ///< A point event (Chrome "ph":"i").
};

struct TraceEvent {
  uint64_t Seq = 0; ///< Global emission order (stable sort key).
  TracePhase Phase = TracePhase::Instant;
  std::string Name;
  std::string Category;
  double TsCycles = 0;  ///< Modeled start time.
  double DurCycles = 0; ///< Modeled duration (Complete only).
  std::string ArgsJson; ///< Pre-rendered "k":v pairs, may be empty.
  /// Execution lane (gpusim/StreamEngine.h numbering: 0 host, 1 compute,
  /// 2+s stream s). Exported as Chrome tid = Lane + 1, so synchronous
  /// traces — everything on lane 0 — keep the historical single tid 1.
  unsigned Lane = 0;
};

/// Thread-safe bounded event sink. When the ring fills, the oldest
/// events are overwritten and counted as dropped; the exporters note the
/// loss so a truncated trace is never mistaken for a complete one.
class TraceCollector {
public:
  explicit TraceCollector(size_t Capacity = DefaultCapacity);

  /// The branch every emission site checks first. Disabled collectors
  /// record nothing.
  bool isEnabled() const { return Enabled; }
  void setEnabled(bool V) { Enabled = V; }

  void instant(const std::string &Name, const std::string &Category,
               double TsCycles, TraceArgs Args = TraceArgs(),
               unsigned Lane = 0);
  void complete(const std::string &Name, const std::string &Category,
                double TsCycles, double DurCycles,
                TraceArgs Args = TraceArgs(), unsigned Lane = 0);

  size_t size() const;
  uint64_t getNumEmitted() const;
  uint64_t getNumDropped() const;
  void clear();

  /// Events in emission order (oldest retained first).
  std::vector<TraceEvent> snapshot() const;

  /// Overrides the exported name of one lane (multi-device pools name
  /// lanes "dev<D>/gpu-compute" and "dev<D>/stream-<s>"). With no
  /// overrides set, the exporters keep the historical single-device
  /// formula (host / gpu-compute / stream-N) byte-for-byte.
  void setLaneName(unsigned Lane, const std::string &Name);

  /// Chrome trace_event format: {"traceEvents": [...], ...}. "ts"/"dur"
  /// carry modeled cycles in the microsecond fields, so one trace
  /// microsecond = one modeled cycle.
  void exportChromeTrace(std::ostream &OS) const;

  /// One JSON object per line, same fields as the Chrome export.
  void exportJsonl(std::ostream &OS) const;

  /// One-line stderr warning when the ring buffer overwrote events (both
  /// exporters call it, so a truncated artifact is never silent).
  void warnIfDropped() const;

  static constexpr size_t DefaultCapacity = 1 << 16;

private:
  void push(TraceEvent E);

  mutable std::mutex Mu;
  std::vector<TraceEvent> Ring;
  size_t Capacity;
  uint64_t NextSeq = 0;
  bool Enabled = false;
  /// Explicit lane names (empty = historical formula).
  std::map<unsigned, std::string> LaneNames;
};

/// RAII span: records the start timestamp at construction and emits one
/// Complete event at destruction (or at explicit end()). The clock is a
/// caller-supplied callable returning modeled cycles, keeping this layer
/// independent of the timing model.
class TraceSpan {
public:
  template <typename ClockFn>
  TraceSpan(TraceCollector &C, std::string Name, std::string Category,
            ClockFn &&Clock)
      : C(C), Name(std::move(Name)), Category(std::move(Category)) {
    Active = C.isEnabled();
    if (Active) {
      Start = Clock();
      End = [Fn = std::forward<ClockFn>(Clock)]() { return Fn(); };
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  void addArg(const std::string &Key, uint64_t V) {
    if (Active)
      Args.add(Key, V);
  }
  void addArg(const std::string &Key, const std::string &V) {
    if (Active)
      Args.add(Key, V);
  }

  void end() {
    if (!Active)
      return;
    Active = false;
    double Now = End();
    C.complete(Name, Category, Start, Now - Start, std::move(Args));
  }

  ~TraceSpan() { end(); }

private:
  TraceCollector &C;
  std::string Name;
  std::string Category;
  TraceArgs Args;
  double Start = 0;
  std::function<double()> End;
  bool Active = false;
};

} // namespace cgcm

#endif // CGCM_SUPPORT_TRACE_H
