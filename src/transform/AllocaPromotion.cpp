//===- transform/AllocaPromotion.cpp - Hoist locals up the call graph -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/AllocaPromotion.h"

#include "analysis/CallGraph.h"
#include "ir/IRBuilder.h"
#include "pass/Analyses.h"
#include "pass/AnalysisManager.h"
#include "ir/Verifier.h"
#include "support/Diagnostics.h"
#include "support/ErrorHandling.h"
#include "transform/Utils.h"

#include <set>

using namespace cgcm;

namespace {

/// True if \p F's parameter \p ArgNo participates in GPU work: used by a
/// runtime call or kernel launch, or forwarded to a parameter that is.
bool paramFeedsGPUWork(const Function *F, unsigned ArgNo,
                       std::set<std::pair<const Function *, unsigned>> &Seen);

/// Walks forward from \p V through casts/geps looking for GPU uses.
bool valueFeedsGPUWork(const Value *V,
                       std::set<std::pair<const Function *, unsigned>> &Seen) {
  for (const User *U : V->users()) {
    if (isa<KernelLaunchInst>(U))
      return true;
    if (const auto *CI = dyn_cast<CallInst>(U)) {
      if (isRuntimeFunction(CI->getCallee()))
        return true;
      if (!CI->getCallee()->isDeclaration()) {
        for (unsigned I = 0, E = CI->getNumArgs(); I != E; ++I)
          if (CI->getArg(I) == V &&
              paramFeedsGPUWork(CI->getCallee(), I, Seen))
            return true;
      }
      continue;
    }
    if (isa<CastInst>(U) || isa<GEPInst>(U))
      if (valueFeedsGPUWork(static_cast<const Value *>(U), Seen))
        return true;
  }
  return false;
}

bool paramFeedsGPUWork(const Function *F, unsigned ArgNo,
                       std::set<std::pair<const Function *, unsigned>> &Seen) {
  if (!Seen.insert({F, ArgNo}).second)
    return false;
  return valueFeedsGPUWork(F->getArg(ArgNo), Seen);
}

class AllocaPromoter {
public:
  AllocaPromoter(Module &M, ModuleAnalysisManager &AM,
                 DiagnosticEngine *Remarks)
      : M(M), AM(AM), Remarks(Remarks) {}

  AllocaPromotionStats run() {
    bool Changed = true;
    while (Changed && Stats.Iterations < 16) {
      Changed = false;
      ++Stats.Iterations;
      // Hoisting rewrites signatures and call sites but introduces no new
      // calls to defined functions, so the cached call graph stays valid;
      // restarting the bottom-up walk after each hoist keeps the historic
      // visit order without paying for a rebuild.
      CallGraph &CG = AM.getResult<CallGraphAnalysis>(M);
      for (Function *F : CG.getBottomUpOrder()) {
        if (F->isKernel() || CG.isRecursive(F) || F->getName() == "main")
          continue;
        if (hoistOneAlloca(*F, CG)) {
          Changed = true;
          break; // Restart the walk from the leaves.
        }
      }
    }
    std::string Err;
    if (!verifyModule(M, &Err))
      reportFatalError("alloca promotion produced invalid IR: " + Err);
    return Stats;
  }

private:
  bool hoistOneAlloca(Function &F, CallGraph &CG) {
    const std::vector<CallInst *> &Callers = CG.getCallers(&F);
    if (Callers.empty())
      return false;
    for (CallInst *CS : Callers)
      if (CS->getFunction()->isKernel())
        return false;

    for (Instruction *I : F.instructions()) {
      auto *AI = dyn_cast<AllocaInst>(I);
      if (!AI || AI->hasArraySize())
        continue;
      std::set<std::pair<const Function *, unsigned>> Seen;
      if (!valueFeedsGPUWork(AI, Seen))
        continue;
      if (Remarks)
        Remarks->remark("cgcm-alloca-hoist", AI->getLoc(),
                        "preallocated local " +
                            (AI->hasName() ? "'" + AI->getName() + "'"
                                           : std::string("<unnamed>")) +
                            " in " + std::to_string(Callers.size()) +
                            " caller(s) so its map can climb the call graph",
                        F.getName());
      hoist(F, AI, Callers);
      ++Stats.AllocasHoisted;
      return true;
    }
    return false;
  }

  void hoist(Function &F, AllocaInst *AI, std::vector<CallInst *> Callers) {
    // Drop F's own registration: the buffer now lives in the caller's
    // frame, so the caller registers it.
    CallInst *DeclCall = nullptr;
    Value *DeclCast = nullptr;
    for (User *U : AI->users()) {
      if (auto *CI = dyn_cast<CallInst>(U)) {
        if (CI->getCallee()->getName() == "cgcm_declare_alloca")
          DeclCall = CI;
      } else if (auto *Cast = dyn_cast<CastInst>(U)) {
        for (User *CU : Cast->users())
          if (auto *CI = dyn_cast<CallInst>(CU))
            if (CI->getCallee()->getName() == "cgcm_declare_alloca") {
              DeclCall = CI;
              DeclCast = Cast;
            }
      }
    }
    if (DeclCall)
      DeclCall->eraseFromParent();
    if (DeclCast && !DeclCast->hasUses())
      cast<Instruction>(DeclCast)->eraseFromParent();

    Argument *NewArg = F.appendArgument(
        AI->getType(), AI->hasName() ? AI->getName() : "hoisted");
    AI->replaceAllUsesWith(NewArg);
    AI->eraseFromParent();

    RuntimeAPI API = getOrDeclareRuntimeAPI(M);
    for (CallInst *CS : Callers) {
      Function *Caller = CS->getFunction();
      // Preallocate in the caller's frame: entry block, before its first
      // real instruction, so one buffer serves every call.
      IRBuilder B(M);
      B.setInsertPoint(Caller->getEntryBlock()->front());
      AllocaInst *Pre = B.createAlloca(
          cast<PointerType>(NewArg->getType())->getPointeeType(), nullptr,
          NewArg->getName());
      Value *P8 = B.createCast(
          CastInst::Op::Bitcast, Pre,
          M.getContext().getPointerTo(M.getContext().getInt8Ty()));
      B.createCall(API.DeclareAlloca,
                   {P8, M.getInt64(static_cast<int64_t>(
                            Pre->getAllocatedType()->getSizeInBytes()))});
      CS->appendArg(Pre);
    }
  }

  Module &M;
  ModuleAnalysisManager &AM;
  DiagnosticEngine *Remarks;
  AllocaPromotionStats Stats;
};

} // namespace

AllocaPromotionStats
cgcm::promoteAllocasUpCallGraph(Module &M, ModuleAnalysisManager &AM,
                                DiagnosticEngine *Remarks) {
  return AllocaPromoter(M, AM, Remarks).run();
}

AllocaPromotionStats
cgcm::promoteAllocasUpCallGraph(Module &M, DiagnosticEngine *Remarks) {
  ModuleAnalysisManager MAM;
  return promoteAllocasUpCallGraph(M, MAM, Remarks);
}
