//===- transform/AllocaPromotion.h - Hoist locals up the call graph ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alloca promotion (paper section 5.2): map promotion cannot hoist a
/// local variable's map above the function that allocates it. This pass
/// preallocates escaping locals in the parents' stack frames — the
/// alloca becomes a new parameter, each caller allocates the buffer —
/// letting map operations climb higher in the call graph. Like map
/// promotion it iterates to convergence and skips recursive functions.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_ALLOCAPROMOTION_H
#define CGCM_TRANSFORM_ALLOCAPROMOTION_H

#include "ir/Module.h"

namespace cgcm {

class DiagnosticEngine;
class ModuleAnalysisManager;

struct AllocaPromotionStats {
  unsigned AllocasHoisted = 0;
  unsigned Iterations = 0;
};

/// Hoists escaping constant-size allocas into callers. Must run before
/// the management pass inserts declareAlloca calls (the pass schedule is
/// glue kernels, alloca promotion, management bookkeeping for new sites,
/// then map promotion) — here we hoist both the alloca and, if present,
/// its cgcm_declare_alloca registration. When \p Remarks is non-null each
/// hoist is reported as a cgcm-alloca-hoist remark.
AllocaPromotionStats
promoteAllocasUpCallGraph(Module &M, DiagnosticEngine *Remarks = nullptr);

/// Analysis-manager variant: fetches the call graph from \p AM. Hoisting
/// rewrites signatures and call sites but adds no calls to defined
/// functions and touches no CFG, so the cached call graph stays valid
/// across iterations and nothing is invalidated.
AllocaPromotionStats
promoteAllocasUpCallGraph(Module &M, ModuleAnalysisManager &AM,
                          DiagnosticEngine *Remarks = nullptr);

} // namespace cgcm

#endif // CGCM_TRANSFORM_ALLOCAPROMOTION_H
