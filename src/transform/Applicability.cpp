//===- transform/Applicability.cpp - Framework applicability models ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Applicability.h"

#include "analysis/TypeInference.h"

#include <set>

using namespace cgcm;

namespace {

/// Strips value-preserving casts from a launch argument.
const Value *stripCasts(const Value *V, bool &SawIntPtrCast) {
  while (const auto *C = dyn_cast<CastInst>(V)) {
    if (C->getOp() == CastInst::Op::IntToPtr ||
        C->getOp() == CastInst::Op::PtrToInt)
      SawIntPtrCast = true;
    else if (C->getOp() != CastInst::Op::Bitcast)
      break;
    V = C->getValueOperand();
  }
  return V;
}

/// A "named allocation unit": a whole global, a whole alloca, or a whole
/// heap allocation — not a pointer derived by arithmetic.
bool isNamedUnit(const Value *Root) {
  if (isa<GlobalVariable>(Root) || isa<AllocaInst>(Root))
    return true;
  if (const auto *CI = dyn_cast<CallInst>(Root)) {
    const std::string &N = CI->getCallee()->getName();
    return N == "malloc" || N == "calloc" || N == "realloc";
  }
  return false;
}

/// True if \p V's computation tree (within the kernel) contains a load —
/// a data-dependent ("irregular") subscript.
bool indexUsesLoad(const Value *V, std::set<const Value *> &Visited) {
  if (!Visited.insert(V).second)
    return false;
  if (isa<LoadInst>(V))
    return true;
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return false;
  for (const Value *Op : I->operands())
    if (!isa<BasicBlock>(Op) && indexUsesLoad(Op, Visited))
      return true;
  return false;
}

unsigned degreeValue(PointerDegree D) {
  switch (D) {
  case PointerDegree::Scalar:
    return 0;
  case PointerDegree::Pointer:
    return 1;
  case PointerDegree::DoublePointer:
    return 2;
  case PointerDegree::Deeper:
    return 3;
  }
  return 3;
}

} // namespace

LaunchApplicability
cgcm::analyzeLaunchApplicability(const KernelLaunchInst *KL) {
  LaunchApplicability R;
  R.Launch = KL;
  const Function *Kernel = KL->getKernel();
  KernelLiveIns LI = analyzeKernelLiveIns(*Kernel);

  // Max indirection over arguments and globals.
  for (PointerDegree D : LI.ArgDegrees)
    R.MaxIndirection = std::max(R.MaxIndirection, degreeValue(D));
  for (const auto &[GV, D] : LI.GlobalDegrees)
    R.MaxIndirection = std::max(R.MaxIndirection, degreeValue(D));

  // Pointer live-ins must be distinct named units for NR/affine/IE.
  std::set<const Value *> Roots;
  for (unsigned I = 0, E = KL->getNumArgs(); I != E; ++I) {
    if (LI.ArgDegrees[I] == PointerDegree::Scalar)
      continue;
    bool SawIntPtr = false;
    const Value *Root = stripCasts(KL->getArg(I), SawIntPtr);
    if (SawIntPtr)
      R.UsesSubversiveCasts = true;
    if (!isNamedUnit(Root)) {
      R.LiveInsAreDistinctNamedUnits = false;
      R.HasPointerArithmeticLiveIn = true;
    } else if (!Roots.insert(Root).second) {
      R.LiveInsAreDistinctNamedUnits = false; // Aliasing live-ins.
    }
  }
  for (const auto &[GV, D] : LI.GlobalDegrees) {
    (void)D;
    if (!Roots.insert(GV).second)
      R.LiveInsAreDistinctNamedUnits = false;
  }

  // Irregular subscripts and subversive casts inside the kernel.
  for (const Function *F : LI.DeviceFunctions) {
    for (const auto &BB : *F) {
      for (const auto &I : *BB) {
        if (const auto *G = dyn_cast<GEPInst>(I.get())) {
          std::set<const Value *> Visited;
          if (indexUsesLoad(G->getIndexOperand(), Visited))
            R.HasIrregularIndexing = true;
        }
        if (const auto *C = dyn_cast<CastInst>(I.get()))
          if (C->getOp() == CastInst::Op::IntToPtr ||
              C->getOp() == CastInst::Op::PtrToInt)
            R.UsesSubversiveCasts = true;
      }
    }
  }

  R.CGCM = R.MaxIndirection <= 2;
  R.NamedRegions = R.LiveInsAreDistinctNamedUnits && R.MaxIndirection <= 1 &&
                   !R.HasIrregularIndexing && !R.UsesSubversiveCasts;
  R.Affine = R.NamedRegions; // Same applicability (paper section 6.3).
  R.InspectorExecutor =
      R.LiveInsAreDistinctNamedUnits && R.MaxIndirection <= 1 &&
      !R.UsesSubversiveCasts;
  return R;
}

std::vector<LaunchApplicability> cgcm::analyzeModuleApplicability(Module &M) {
  std::vector<LaunchApplicability> Result;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isKernel())
      continue;
    for (Instruction *I : F->instructions())
      if (const auto *KL = dyn_cast<KernelLaunchInst>(I))
        Result.push_back(analyzeLaunchApplicability(KL));
  }
  return Result;
}
