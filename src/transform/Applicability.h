//===- transform/Applicability.h - Framework applicability models -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the applicability guards of the communication-management
/// frameworks the paper compares against (Table 1, and the right half of
/// Table 3):
///
///  * CGCM — applicable whenever no live-in exceeds two levels of
///    indirection; tolerates aliasing, interior pointers, pointer
///    arithmetic, irregular accesses, and weak typing.
///  * Named regions (OpenMP-to-GPGPU) and the affine PGI model — require
///    every pointer live-in to be a *distinct named allocation unit*
///    (a global or a whole malloc/alloca result, not a derived pointer),
///    at most one level of indirection, induction-variable based array
///    indexes (no loaded subscripts), and no pointer/integer casts.
///  * Inspector-executor — requires distinct named allocation units and
///    single indirection, but handles irregular subscripts (that is what
///    the inspector is for).
///
/// These predicates run on the *unmanaged* module (before the management
/// pass rewrites launch arguments).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_APPLICABILITY_H
#define CGCM_TRANSFORM_APPLICABILITY_H

#include "ir/Module.h"

#include <vector>

namespace cgcm {

struct LaunchApplicability {
  const KernelLaunchInst *Launch = nullptr;

  // Feature probes (Table 1 columns).
  unsigned MaxIndirection = 0;
  bool LiveInsAreDistinctNamedUnits = true;
  bool HasIrregularIndexing = false;
  bool UsesSubversiveCasts = false;
  bool HasPointerArithmeticLiveIn = false;

  // Per-framework verdicts.
  bool CGCM = false;
  bool NamedRegions = false;
  bool Affine = false;
  bool InspectorExecutor = false;
};

/// Analyzes one kernel launch in unmanaged IR.
LaunchApplicability analyzeLaunchApplicability(const KernelLaunchInst *KL);

/// Analyzes every launch in the module.
std::vector<LaunchApplicability> analyzeModuleApplicability(Module &M);

} // namespace cgcm

#endif // CGCM_TRANSFORM_APPLICABILITY_H
