//===- transform/CommManagement.cpp - Insert runtime management calls -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/CommManagement.h"

#include "analysis/TypeInference.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "transform/Utils.h"

#include <map>

using namespace cgcm;

namespace {

/// Casts \p V to i8* before \p InsertPt (reusing nothing; promotion dedups
/// by looking through the cast).
Value *castToBytePtr(Module &M, IRBuilder &B, Value *V) {
  TypeContext &Ctx = M.getContext();
  Type *I8Ptr = Ctx.getPointerTo(Ctx.getInt8Ty());
  if (V->getType() == I8Ptr)
    return V;
  return B.createCast(CastInst::Op::Bitcast, V, I8Ptr);
}

class ManagementPass {
public:
  explicit ManagementPass(Module &M)
      : M(M), API(getOrDeclareRuntimeAPI(M)), B(M) {}

  ManagementStats run() {
    declareGlobals();
    declareAllocas();
    manageAllLaunches();
    std::string Err;
    if (!verifyModule(M, &Err))
      reportFatalError("communication management produced invalid IR: " +
                       Err);
    return Stats;
  }

  void manageLaunch(KernelLaunchInst *Launch) {
    Function *Kernel = Launch->getKernel();
    const KernelLiveIns &LI = liveInsFor(Kernel);
    BasicBlock *BB = Launch->getParent();
    // Management calls implement the launch: diagnostics about them
    // should point at the launch statement.
    B.setCurrentLoc(Launch->getLoc());

    // Find the instruction after the launch (launches never terminate a
    // block) to anchor the unmap/release insertions.
    auto It = BB->getIterator(Launch);
    ++It;
    assert(It != BB->end() && "kernel launch at end of block");
    Instruction *After = It->get();

    struct Managed {
      Value *BytePtr;
      bool IsArray;
    };
    std::vector<Managed> ManagedPtrs;

    // Arguments, by inferred degree (the declared types are ignored).
    B.setInsertPoint(Launch);
    for (unsigned I = 0, E = Launch->getNumArgs(); I != E; ++I) {
      PointerDegree D = LI.ArgDegrees[I];
      if (D == PointerDegree::Scalar)
        continue;
      if (D == PointerDegree::Deeper)
        reportFatalError(
            "kernel '" + Kernel->getName() + "' argument " +
            std::to_string(I) +
            " has three or more levels of indirection; CGCM supports at "
            "most two (paper section 2.3)");
      Value *HostPtr = Launch->getArg(I);
      Value *A8 = castToBytePtr(M, B, HostPtr);
      bool IsArray = D == PointerDegree::DoublePointer;
      Value *D8 =
          B.createCall(IsArray ? API.MapArray : API.Map, {A8}, "dev");
      Value *DevPtr = D8;
      if (HostPtr->getType() != D8->getType())
        DevPtr = B.createCast(CastInst::Op::Bitcast, D8, HostPtr->getType());
      Launch->setArg(I, DevPtr);
      ManagedPtrs.push_back({A8, IsArray});
      if (IsArray)
        ++Stats.MapArraysInserted;
      else
        ++Stats.MapsInserted;
    }

    // Globals used by the kernel: map them so the runtime copies into the
    // device's named region (cuModuleGetGlobal); the kernel references
    // the global directly, so the translated pointer is unused.
    for (const GlobalVariable *GV : LI.GlobalOrder) {
      PointerDegree D = LI.GlobalDegrees.at(GV);
      if (D == PointerDegree::Deeper)
        reportFatalError("global '" + GV->getName() +
                         "' has three or more levels of indirection");
      B.setInsertPoint(Launch);
      Value *G8 = castToBytePtr(M, B, const_cast<GlobalVariable *>(GV));
      bool IsArray = D == PointerDegree::DoublePointer;
      B.createCall(IsArray ? API.MapArray : API.Map, {G8});
      ManagedPtrs.push_back({G8, IsArray});
      if (IsArray)
        ++Stats.MapArraysInserted;
      else
        ++Stats.MapsInserted;
    }

    // After the launch: unmap everything, then release everything.
    B.setInsertPoint(After);
    for (const Managed &MP : ManagedPtrs)
      B.createCall(MP.IsArray ? API.UnmapArray : API.Unmap, {MP.BytePtr});
    for (const Managed &MP : ManagedPtrs)
      B.createCall(MP.IsArray ? API.ReleaseArray : API.Release,
                   {MP.BytePtr});

    ++Stats.LaunchesManaged;
  }

  ManagementStats Stats;

private:
  const KernelLiveIns &liveInsFor(Function *Kernel) {
    auto It = LiveInCache.find(Kernel);
    if (It != LiveInCache.end())
      return It->second;
    return LiveInCache[Kernel] = analyzeKernelLiveIns(*Kernel);
  }

  void declareGlobals() {
    Function *Main = M.getFunction("main");
    if (!Main || Main->isDeclaration())
      reportFatalError("management requires a defined main");
    // Snapshot: creating name-string globals must not redeclare them.
    std::vector<GlobalVariable *> Originals;
    for (const auto &GV : M.globals())
      Originals.push_back(GV.get());

    Instruction *First = Main->getEntryBlock()->front();
    B.setInsertPoint(First);
    TypeContext &Ctx = M.getContext();
    for (GlobalVariable *GV : Originals) {
      // The runtime receives the name at run time (section 3.1: declaring
      // addresses at run time sidesteps PIC and ASLR).
      GlobalVariable *NameStr = internName(GV->getName());
      Value *NamePtr = B.createArrayDecay(NameStr);
      Value *G8 = castToBytePtr(M, B, GV);
      B.createCall(API.DeclareGlobal,
                   {NamePtr, G8,
                    M.getInt64(static_cast<int64_t>(GV->getSizeInBytes())),
                    M.getInt32(GV->isConstant() ? 1 : 0)});
      ++Stats.GlobalsDeclared;
    }
  }

  GlobalVariable *internName(const std::string &Name) {
    std::string SymName = ".cgcmname." + Name;
    if (GlobalVariable *Existing = M.getGlobal(SymName))
      return Existing;
    TypeContext &Ctx = M.getContext();
    auto *GV = M.createGlobal(Ctx.getArrayTy(Ctx.getInt8Ty(), Name.size() + 1),
                              SymName, /*IsConstant=*/true);
    std::vector<uint8_t> Bytes(Name.begin(), Name.end());
    Bytes.push_back(0);
    GV->setInitializer(std::move(Bytes));
    return GV;
  }

  void declareAllocas() {
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isKernel())
        continue;
      std::vector<AllocaInst *> Allocas;
      for (Instruction *I : F->instructions())
        if (auto *AI = dyn_cast<AllocaInst>(I))
          Allocas.push_back(AI);
      for (AllocaInst *AI : Allocas) {
        // Insert immediately after the alloca. The declaration call
        // inherits the alloca's source location so the runtime keys the
        // unit's ledger site as "alloca@L:C" instead of collapsing every
        // stack unit into "alloca@<unknown>".
        auto It = AI->getParent()->getIterator(AI);
        ++It;
        assert(It != AI->getParent()->end() && "alloca terminates a block?");
        B.setInsertPoint(It->get());
        B.setCurrentLoc(AI->getLoc());
        Value *A8 = castToBytePtr(M, B, AI);
        Value *Size =
            M.getInt64(static_cast<int64_t>(
                AI->getAllocatedType()->getSizeInBytes()));
        if (AI->hasArraySize()) {
          Value *Count = AI->getArraySize();
          if (Count->getType() != M.getContext().getInt64Ty())
            Count = B.createCast(CastInst::Op::SExt, Count,
                                 M.getContext().getInt64Ty());
          Size = B.createMul(Size, Count);
        }
        B.createCall(API.DeclareAlloca, {A8, Size});
        ++Stats.AllocasDeclared;
      }
    }
  }

  void manageAllLaunches() {
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isKernel())
        continue;
      std::vector<KernelLaunchInst *> Launches;
      for (Instruction *I : F->instructions())
        if (auto *KL = dyn_cast<KernelLaunchInst>(I))
          Launches.push_back(KL);
      for (KernelLaunchInst *KL : Launches)
        manageLaunch(KL);
    }
  }

  Module &M;
  RuntimeAPI API;
  IRBuilder B;
  std::map<const Function *, KernelLiveIns> LiveInCache;
};

} // namespace

ManagementStats cgcm::insertCommunicationManagement(Module &M) {
  ManagementPass Pass(M);
  return Pass.run();
}

void cgcm::manageSingleLaunch(Module &M, KernelLaunchInst *Launch,
                              ManagementStats &Stats) {
  ManagementPass Pass(M);
  Pass.manageLaunch(Launch);
  Stats.LaunchesManaged += Pass.Stats.LaunchesManaged;
  Stats.MapsInserted += Pass.Stats.MapsInserted;
  Stats.MapArraysInserted += Pass.Stats.MapArraysInserted;
}
