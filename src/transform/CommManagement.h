//===- transform/CommManagement.h - Insert runtime management calls ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The communication-management compiler pass (paper section 4). Starting
/// from CPU code that calls GPU kernels with *no* communication at all
/// (one shared namespace), it:
///
///  * registers every global with the runtime before main runs
///    (declareGlobal) and every escaping stack variable at its
///    allocation (declareAlloca);
///  * for each kernel launch, computes the live-in values (arguments and
///    used globals), infers their pointer degree by use (section 4's
///    type inference, ignoring the unreliable C types), and wraps the
///    launch in map/mapArray before and unmap/unmapArray +
///    release/releaseArray after.
///
/// The result is correct but maximally cyclic communication — exactly
/// Listing 3 — which the optimization passes then improve.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_COMMMANAGEMENT_H
#define CGCM_TRANSFORM_COMMMANAGEMENT_H

#include "ir/Module.h"

namespace cgcm {

struct ManagementStats {
  unsigned LaunchesManaged = 0;
  unsigned MapsInserted = 0;
  unsigned MapArraysInserted = 0;
  unsigned GlobalsDeclared = 0;
  unsigned AllocasDeclared = 0;
};

/// Runs full management over the module.
ManagementStats insertCommunicationManagement(Module &M);

/// Manages a single launch (used by the glue-kernel pass for launches it
/// creates after the main management pass has run).
void manageSingleLaunch(Module &M, KernelLaunchInst *Launch,
                        ManagementStats &Stats);

} // namespace cgcm

#endif // CGCM_TRANSFORM_COMMMANAGEMENT_H
