//===- transform/DOALL.cpp - Simple DOALL loop parallelizer -----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/DOALL.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryObjects.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "pass/Analyses.h"
#include "pass/AnalysisManager.h"
#include "support/Diagnostics.h"
#include "support/ErrorHandling.h"
#include "transform/Utils.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

using namespace cgcm;

namespace {

/// DOALL-local object identification: like findMemoryObject, but treats
/// distinct pointer arguments as distinct objects (the restrict-style
/// assumption simple parallelizers make; see header comment).
struct DOALLObject {
  const Value *Root = nullptr;
  bool Identified = false;

  bool operator==(const DOALLObject &O) const { return Root == O.Root; }
  bool operator<(const DOALLObject &O) const { return Root < O.Root; }
};

DOALLObject classifyForDOALL(const Value *Addr) {
  MemoryObject O = findMemoryObject(Addr);
  DOALLObject R;
  R.Root = O.Root;
  R.Identified = O.isIdentified() || isa<Argument>(O.Root);
  return R;
}

/// The canonical loop shape the parallelizer accepts.
struct CanonicalLoop {
  Loop *L = nullptr;
  PhiInst *IV = nullptr;
  Value *Init = nullptr;
  Value *Bound = nullptr;
  BinOpInst *Increment = nullptr;
  CmpInst *Cond = nullptr;
  BasicBlock *Preheader = nullptr;
  BasicBlock *Latch = nullptr;
  BasicBlock *Exit = nullptr;
};

class DOALLDriver {
public:
  DOALLDriver(Module &M, ModuleAnalysisManager &AM, DiagnosticEngine *Remarks)
      : M(M), AM(AM), Remarks(Remarks) {}

  DOALLStats run() {
    FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isKernel())
        continue;
      // Transforming invalidates loop structures; iterate one loop at a
      // time to a fixpoint per function, dropping the function's cached
      // analyses after each rewrite.
      while (parallelizeOneLoop(*F))
        FAM.invalidate(*F);
    }
    // Outlined kernels are new defined functions.
    if (Stats.KernelsCreated)
      AM.invalidateResult<CallGraphAnalysis>();
    return Stats;
  }

private:
  //===--------------------------------------------------------------------===//
  // Loop recognition
  //===--------------------------------------------------------------------===//

  std::optional<CanonicalLoop> matchCanonical(Loop *L) {
    CanonicalLoop C;
    C.L = L;
    BasicBlock *H = L->getHeader();

    C.Preheader = L->getPreheader();
    if (!C.Preheader)
      return std::nullopt;
    Instruction *PreTerm = C.Preheader->getTerminator();
    auto *PreBr = dyn_cast<BranchInst>(PreTerm);
    if (!PreBr || PreBr->isConditional())
      return std::nullopt;

    std::vector<BasicBlock *> Latches = L->getLatches();
    if (Latches.size() != 1)
      return std::nullopt;
    C.Latch = Latches[0];
    auto *LatchBr = dyn_cast<BranchInst>(C.Latch->getTerminator());
    if (!LatchBr || LatchBr->isConditional())
      return std::nullopt;

    // Exactly one phi: the induction variable.
    PhiInst *IV = nullptr;
    for (const auto &I : *H) {
      auto *P = dyn_cast<PhiInst>(I.get());
      if (!P)
        break;
      if (IV)
        return std::nullopt; // Second phi: a recurrence; not DOALL.
      IV = P;
    }
    if (!IV || IV->getNumIncoming() != 2)
      return std::nullopt;
    C.IV = IV;
    for (unsigned I = 0; I != 2; ++I) {
      if (IV->getIncomingBlock(I) == C.Preheader)
        C.Init = IV->getIncomingValue(I);
      else if (IV->getIncomingBlock(I) == C.Latch) {
        auto *Inc = dyn_cast<BinOpInst>(IV->getIncomingValue(I));
        if (!Inc || Inc->getOp() != BinOpInst::Op::Add)
          return std::nullopt;
        auto *One = dyn_cast<ConstantInt>(Inc->getRHS());
        if (Inc->getLHS() != IV || !One || !One->isOne())
          return std::nullopt;
        C.Increment = Inc;
      }
    }
    if (!C.Init || !C.Increment)
      return std::nullopt;

    // Header: phi; cmp slt(IV, Bound); condbr(body, exit).
    auto *HBr = dyn_cast<BranchInst>(H->getTerminator());
    if (!HBr || !HBr->isConditional())
      return std::nullopt;
    auto *Cmp = dyn_cast<CmpInst>(HBr->getCondition());
    if (!Cmp || Cmp->getPredicate() != CmpInst::Predicate::SLT ||
        Cmp->getLHS() != IV)
      return std::nullopt;
    C.Cond = Cmp;
    C.Bound = Cmp->getRHS();
    if (auto *BI = dyn_cast<Instruction>(C.Bound))
      if (L->contains(BI))
        return std::nullopt; // Bound varies inside the loop.
    if (L->contains(HBr->getSuccessor(0)) == L->contains(HBr->getSuccessor(1)))
      return std::nullopt;
    C.Exit = L->contains(HBr->getSuccessor(0)) ? HBr->getSuccessor(1)
                                               : HBr->getSuccessor(0);
    if (C.Exit != HBr->getSuccessor(1))
      return std::nullopt; // Canonical: true branch enters the loop.

    // The header must be the only block that exits the loop.
    for (BasicBlock *BB : L->getBlocks())
      for (BasicBlock *S : BB->successors())
        if (!L->contains(S) && BB != H)
          return std::nullopt;
    // The exit block must have the header as its only predecessor and no
    // phis (no SSA values flow out of a DOALL loop).
    if (C.Exit->predecessors().size() != 1)
      return std::nullopt;
    if (isa<PhiInst>(C.Exit->front()))
      return std::nullopt;
    return C;
  }

  //===--------------------------------------------------------------------===//
  // Dependence testing
  //===--------------------------------------------------------------------===//

  /// An address (or integer) expression viewed as
  ///   IVCoeff * IV + Const + (terms in IV-free symbols).
  /// Symbol terms (inner-loop phis, loop-invariant values) contribute to
  /// neither field; a value the walker cannot classify fails.
  struct AffineForm {
    int64_t IVCoeff = 0;
    int64_t Const = 0;
  };

  std::optional<AffineForm> affineParts(const Value *V,
                                        const CanonicalLoop &C,
                                        std::set<const Value *> &Visiting) {
    if (V == C.IV)
      return AffineForm{1, 0};
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return AffineForm{0, CI->getValue()};
    if (isa<GlobalVariable>(V) || isa<Argument>(V))
      return AffineForm{0, 0}; // Symbol.
    const auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return std::nullopt;
    if (!C.L->contains(I))
      return AffineForm{0, 0}; // Loop-invariant symbol.
    if (PhiAssumptions.count(I))
      return AffineForm{0, 0}; // Assumed-symbolic inner induction.
    if (!Visiting.insert(V).second)
      return std::nullopt; // Cycle (non-IV recurrence).

    std::optional<AffineForm> R;
    switch (I->getKind()) {
    case Value::ValueKind::GEP: {
      const auto *G = cast<GEPInst>(I);
      auto P = affineParts(G->getPointerOperand(), C, Visiting);
      auto X = affineParts(G->getIndexOperand(), C, Visiting);
      if (P && X) {
        int64_t Step =
            static_cast<int64_t>(G->getSteppedType()->getSizeInBytes());
        R = AffineForm{P->IVCoeff + X->IVCoeff * Step,
                       P->Const + X->Const * Step};
      }
      break;
    }
    case Value::ValueKind::Cast:
      R = affineParts(cast<CastInst>(I)->getValueOperand(), C, Visiting);
      break;
    case Value::ValueKind::BinOp: {
      const auto *B = cast<BinOpInst>(I);
      auto X = affineParts(B->getLHS(), C, Visiting);
      auto Y = affineParts(B->getRHS(), C, Visiting);
      if (!X || !Y)
        break;
      switch (B->getOp()) {
      case BinOpInst::Op::Add:
        R = AffineForm{X->IVCoeff + Y->IVCoeff, X->Const + Y->Const};
        break;
      case BinOpInst::Op::Sub:
        R = AffineForm{X->IVCoeff - Y->IVCoeff, X->Const - Y->Const};
        break;
      case BinOpInst::Op::Mul: {
        // Linear only when one side is a literal constant (a symbol-free
        // constant expression has IVCoeff 0 and carries its value in
        // Const only if it really is a ConstantInt; be conservative).
        const auto *KL = dyn_cast<ConstantInt>(B->getLHS());
        const auto *KR = dyn_cast<ConstantInt>(B->getRHS());
        if (KR && X)
          R = AffineForm{X->IVCoeff * KR->getValue(),
                         X->Const * KR->getValue()};
        else if (KL && Y)
          R = AffineForm{Y->IVCoeff * KL->getValue(),
                         Y->Const * KL->getValue()};
        else if (X->IVCoeff == 0 && Y->IVCoeff == 0 && X->Const == 0 &&
                 Y->Const == 0)
          R = AffineForm{0, 0}; // symbol * symbol stays a symbol.
        break;
      }
      default:
        if (X->IVCoeff == 0 && Y->IVCoeff == 0 && X->Const == 0 &&
            Y->Const == 0)
          R = AffineForm{0, 0}; // IV-free bit-twiddling of symbols.
        break;
      }
      break;
    }
    case Value::ValueKind::Phi: {
      // An inner-loop induction variable: a symbol iff IV-free on every
      // incoming path. Optimistically assume the phi itself is a symbol
      // so its own recurrence (j = j + 1) resolves, then verify.
      const auto *P = cast<PhiInst>(I);
      PhiAssumptions.insert(P);
      bool Symbol = true;
      for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
        auto X = affineParts(P->getIncomingValue(K), C, Visiting);
        if (!X || X->IVCoeff != 0) {
          Symbol = false;
          break;
        }
      }
      PhiAssumptions.erase(P);
      if (Symbol)
        R = AffineForm{0, 0};
      break;
    }
    case Value::ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      auto X = affineParts(S->getTrueValue(), C, Visiting);
      auto Y = affineParts(S->getFalseValue(), C, Visiting);
      auto Z = affineParts(S->getCondition(), C, Visiting);
      if (X && Y && Z && X->IVCoeff == 0 && Y->IVCoeff == 0 &&
          Z->IVCoeff == 0)
        R = AffineForm{0, 0};
      break;
    }
    default:
      break; // Loads, calls: not classifiable.
    }
    Visiting.erase(V);
    return R;
  }

  static bool isPureMath(const Function *F) {
    const std::string &N = F->getName();
    return N == "sqrt" || N == "exp" || N == "log" || N == "sin" ||
           N == "cos" || N == "fabs" || N == "pow";
  }

  bool isIndependent(const CanonicalLoop &C) {
    // Gather all memory effects.
    struct WriteInfo {
      const StoreInst *SI;
      DOALLObject Obj;
      AffineForm Form;
    };
    std::vector<WriteInfo> Writes;
    std::vector<const LoadInst *> Loads;

    for (BasicBlock *BB : C.L->getBlocks()) {
      for (const auto &I : *BB) {
        if (isa<KernelLaunchInst>(I.get()) || isa<AllocaInst>(I.get()))
          return false;
        if (const auto *CI = dyn_cast<CallInst>(I.get())) {
          if (!isPureMath(CI->getCallee()))
            return false;
          continue;
        }
        if (const auto *SI = dyn_cast<StoreInst>(I.get())) {
          // CGCM forbids pointer stores inside GPU functions (section
          // 2.3), so a loop storing pointers cannot become a kernel.
          if (SI->getValueOperand()->getType()->isPointerTy())
            return false;
          DOALLObject Obj = classifyForDOALL(SI->getPointerOperand());
          if (!Obj.Identified)
            return false;
          std::set<const Value *> Visiting;
          auto Form = affineParts(SI->getPointerOperand(), C, Visiting);
          if (!Form || Form->IVCoeff == 0)
            return false; // Same address every iteration, or non-affine.
          Writes.push_back({SI, Obj, *Form});
          continue;
        }
        if (const auto *LI = dyn_cast<LoadInst>(I.get()))
          Loads.push_back(LI);
      }
    }

    // All writes to one object must target the same per-iteration slice:
    // equal IV coefficients and constant offsets within one stride.
    for (const WriteInfo &A : Writes) {
      for (const WriteInfo &B : Writes) {
        if (&A == &B)
          continue;
        bool Alias = (!A.Obj.Identified || !B.Obj.Identified)
                         ? true
                         : A.Obj.Root == B.Obj.Root;
        if (!Alias)
          continue;
        if (A.Form.IVCoeff != B.Form.IVCoeff ||
            std::llabs(A.Form.Const - B.Form.Const) >=
                std::llabs(A.Form.IVCoeff))
          return false;
      }
    }

    // Reads: a load may touch a written object only inside the same
    // iteration's slice: equal IV coefficient and a constant offset
    // smaller than the IV's byte stride. That admits read-modify-write
    // (A[i][j] += x), intra-row shifts (X[i][j-1] vs X[i][j]), and
    // same-row symbolic indices (A[i][k] vs A[i][j]) under the row-local
    // in-bounds assumption documented in DESIGN.md; it rejects
    // cross-iteration stencils (A[i-1][j] vs A[i][j]).
    for (const LoadInst *LI : Loads) {
      DOALLObject Obj = classifyForDOALL(LI->getPointerOperand());
      for (const WriteInfo &W : Writes) {
        bool Alias = (!Obj.Identified || !W.Obj.Identified)
                         ? true
                         : Obj.Root == W.Obj.Root;
        if (!Alias)
          continue;
        std::set<const Value *> Visiting;
        auto RF = affineParts(LI->getPointerOperand(), C, Visiting);
        if (!RF || RF->IVCoeff != W.Form.IVCoeff ||
            std::llabs(RF->Const - W.Form.Const) >=
                std::llabs(W.Form.IVCoeff))
          return false;
      }
    }
    return !Writes.empty(); // A loop with no writes gains nothing.
  }

  //===--------------------------------------------------------------------===//
  // Outlining
  //===--------------------------------------------------------------------===//

  /// Values defined outside the loop but used inside (excluding globals
  /// and constants, which kernels reference directly).
  std::vector<Value *> collectLiveIns(const CanonicalLoop &C) {
    std::vector<Value *> LiveIns;
    std::set<Value *> Seen;
    for (BasicBlock *BB : C.L->getBlocks()) {
      for (const auto &I : *BB) {
        for (Value *Op : I->operands()) {
          if (isa<Constant>(Op) || isa<GlobalVariable>(Op) ||
              isa<Function>(Op) || isa<BasicBlock>(Op))
            continue;
          if (const auto *OI = dyn_cast<Instruction>(Op))
            if (C.L->contains(OI))
              continue;
          if (Seen.insert(Op).second)
            LiveIns.push_back(Op);
        }
      }
    }
    return LiveIns;
  }

  /// Loops are rescanned every fixpoint round; report each (function,
  /// loop, reason) once.
  void remarkReject(const Function &F, const Loop *L, const char *Why) {
    if (!Remarks)
      return;
    SourceLoc Loc = L->getHeader()->empty()
                        ? SourceLoc::none()
                        : L->getHeader()->front()->getLoc();
    std::string Msg = std::string("not parallelizing loop: ") + Why;
    if (!SeenRejects.insert(F.getName() + "|" + Loc.getString() + "|" + Msg)
             .second)
      return;
    Remarks->remark("cgcm-doall-reject", Loc, Msg, F.getName());
  }

  bool parallelizeOneLoop(Function &F) {
    LoopInfo &LI =
        AM.getFunctionAnalysisManager().getResult<LoopAnalysis>(F);

    // Outermost-first; parallelizing an outer loop absorbs its children.
    for (const auto &LPtr : LI.getLoops()) {
      Loop *L = LPtr.get();
      ++Stats.LoopsConsidered;
      std::optional<CanonicalLoop> C = matchCanonical(L);
      const char *Why = nullptr;
      if (!C)
        Why = "the loop is not a canonical counted loop";
      else if (!isIndependent(*C))
        Why = "iterations may not be independent";
      else if (hasLiveOuts(*C))
        Why = "a loop value is used after the loop";
      if (Why) {
        ++Stats.LoopsRejected;
        remarkReject(F, L, Why);
        continue;
      }
      outline(F, *C);
      return true;
    }
    return false;
  }

  bool hasLiveOuts(const CanonicalLoop &C) {
    for (BasicBlock *BB : C.L->getBlocks())
      for (const auto &I : *BB)
        for (const User *U : I->users()) {
          const auto *UI = dyn_cast<Instruction>(U);
          if (UI && !C.L->contains(UI))
            return true;
        }
    return false;
  }

  void outline(Function &F, const CanonicalLoop &C) {
    TypeContext &Ctx = M.getContext();
    std::vector<Value *> LiveIns = collectLiveIns(C);

    // Kernel signature: one parameter per live-in.
    std::vector<Type *> ParamTys;
    for (Value *V : LiveIns)
      ParamTys.push_back(V->getType());
    std::string KName =
        F.getName() + "_k" + std::to_string(Stats.KernelsCreated);
    Function *K = M.getOrCreateFunction(
        KName, Ctx.getFunctionTy(Ctx.getVoidTy(), ParamTys));
    K->setKernel(true);
    if (Remarks)
      Remarks->remark("cgcm-doall-outline", C.Cond->getLoc(),
                      "parallelized DOALL loop into GPU kernel '" + KName +
                          "'",
                      F.getName());
    Stats.Kernels.push_back(K);
    ++Stats.KernelsCreated;

    std::map<const Value *, Value *> VMap;
    for (unsigned I = 0; I != LiveIns.size(); ++I) {
      VMap[LiveIns[I]] = K->getArg(I);
      K->getArg(I)->setName(LiveIns[I]->getName());
    }

    // Entry: compute this thread's starting IV and the grid stride.
    auto *IVTy = cast<IntegerType>(C.IV->getType());
    BasicBlock *Entry = K->createBlock("entry");
    IRBuilder B(M);
    B.setCurrentLoc(C.Cond->getLoc()); // Prologue stands in for the loop.
    B.setInsertPoint(Entry);
    Function *TidFn = M.getFunction("__tid");
    Function *NTidFn = M.getFunction("__ntid");
    assert(TidFn && NTidFn && "builtins not declared");
    Value *Tid = B.createCall(TidFn, {}, "tid");
    Value *NTid = B.createCall(NTidFn, {}, "ntid");
    if (IVTy->getBitWidth() < 64) {
      Tid = B.createCast(CastInst::Op::Trunc, Tid, IVTy);
      NTid = B.createCast(CastInst::Op::Trunc, NTid, IVTy);
    }
    Value *InitV = VMap.count(C.Init)
                       ? VMap[C.Init]
                       : C.Init; // Constant stays as-is.
    Value *I0 = B.createAdd(InitV, Tid, "i0");

    // Clone loop blocks in RPO (defs before uses for non-phi operands).
    std::map<const BasicBlock *, BasicBlock *> BMap;
    std::vector<BasicBlock *> Order;
    // F is still untouched here, so this is a cache hit on the tree the
    // loop forest was built from.
    const DominatorTree &KernelDT =
        AM.getFunctionAnalysisManager().getResult<DominatorTreeAnalysis>(F);
    for (BasicBlock *BB : KernelDT.getReversePostOrder())
      if (C.L->contains(BB))
        Order.push_back(BB);
    for (BasicBlock *BB : Order)
      BMap[BB] = K->createBlock(BB->getName());
    BasicBlock *ExitBB = K->createBlock("kexit");

    B.setInsertPoint(Entry);
    B.createBr(BMap[C.L->getHeader()]);
    B.setInsertPoint(ExitBB);
    B.createRet();

    auto MapValue = [&](Value *Op) -> Value * {
      auto It = VMap.find(Op);
      if (It != VMap.end())
        return It->second;
      assert((isa<Constant>(Op) || isa<GlobalVariable>(Op) ||
              isa<Function>(Op)) &&
             "unmapped non-constant operand while cloning");
      return Op;
    };
    auto MapBlock = [&](BasicBlock *BB) -> BasicBlock * {
      if (BB == C.Exit)
        return ExitBB;
      auto It = BMap.find(BB);
      assert(It != BMap.end() && "branch out of the cloned region");
      return It->second;
    };

    std::vector<std::pair<const PhiInst *, PhiInst *>> Phis;
    for (BasicBlock *BB : Order) {
      B.setInsertPoint(BMap[BB]);
      for (const auto &I : *BB) {
        Instruction *NewI = nullptr;
        switch (I->getKind()) {
        case Value::ValueKind::Phi: {
          auto *P = cast<PhiInst>(I.get());
          auto *NP = B.createPhi(P->getType(), P->getName());
          Phis.push_back({P, NP});
          NewI = NP;
          break;
        }
        case Value::ValueKind::Load:
          NewI = B.createLoad(MapValue(I->getOperand(0)), I->getName());
          break;
        case Value::ValueKind::Store:
          NewI = B.createStore(MapValue(I->getOperand(0)),
                               MapValue(I->getOperand(1)));
          break;
        case Value::ValueKind::GEP: {
          auto *G = cast<GEPInst>(I.get());
          NewI = B.createGEP(MapValue(G->getPointerOperand()),
                             MapValue(G->getIndexOperand()), G->getName());
          break;
        }
        case Value::ValueKind::BinOp: {
          auto *BO = cast<BinOpInst>(I.get());
          NewI = B.createBinOp(BO->getOp(), MapValue(BO->getLHS()),
                               MapValue(BO->getRHS()), BO->getName());
          break;
        }
        case Value::ValueKind::Cmp: {
          auto *CI = cast<CmpInst>(I.get());
          NewI = B.createCmp(CI->getPredicate(), MapValue(CI->getLHS()),
                             MapValue(CI->getRHS()), CI->getName());
          break;
        }
        case Value::ValueKind::Cast: {
          auto *CA = cast<CastInst>(I.get());
          NewI = B.createCast(CA->getOp(), MapValue(CA->getValueOperand()),
                              CA->getType(), CA->getName());
          break;
        }
        case Value::ValueKind::Select: {
          auto *S = cast<SelectInst>(I.get());
          NewI = B.createSelect(MapValue(S->getCondition()),
                                MapValue(S->getTrueValue()),
                                MapValue(S->getFalseValue()), S->getName());
          break;
        }
        case Value::ValueKind::Call: {
          auto *CI = cast<CallInst>(I.get());
          std::vector<Value *> Args;
          for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A)
            Args.push_back(MapValue(CI->getArg(A)));
          NewI = B.createCall(CI->getCallee(), Args, CI->getName());
          break;
        }
        case Value::ValueKind::Br: {
          auto *Br = cast<BranchInst>(I.get());
          if (Br->isConditional())
            NewI = B.createCondBr(MapValue(Br->getCondition()),
                                  MapBlock(Br->getSuccessor(0)),
                                  MapBlock(Br->getSuccessor(1)));
          else
            NewI = B.createBr(MapBlock(Br->getSuccessor(0)));
          break;
        }
        default:
          reportFatalError("unexpected instruction kind while outlining "
                           "DOALL loop");
        }
        NewI->setLoc(I->getLoc()); // Kernel code keeps the loop's source.
        VMap[I.get()] = NewI;
      }
    }

    // Fill phi incomings, rerouting the IV's preheader edge to entry.
    for (auto &[OldP, NewP] : Phis) {
      for (unsigned I = 0, E = OldP->getNumIncoming(); I != E; ++I) {
        BasicBlock *InBB = OldP->getIncomingBlock(I);
        Value *InV = OldP->getIncomingValue(I);
        if (OldP == C.IV && InBB == C.Preheader) {
          NewP->addIncoming(I0, Entry);
          continue;
        }
        NewP->addIncoming(MapValue(InV), MapBlock(InBB));
      }
    }

    // Grid-stride: the cloned increment steps by the thread count.
    auto *NewInc = cast<BinOpInst>(VMap.at(C.Increment));
    NewInc->setOperand(1, NTid);

    // Call site: replace the loop with a launch in the preheader. The
    // launch and its grid arithmetic stand in for the loop statement.
    B.setCurrentLoc(C.Cond->getLoc());
    B.setInsertPoint(C.Preheader->getTerminator());
    Value *BoundV = C.Bound;
    Value *InitCallerV = C.Init;
    Value *Span = B.createSub(BoundV, InitCallerV, "span");
    Value *Plus = B.createAdd(Span, M.getConstantInt(IVTy, 127));
    Value *Grid =
        B.createBinOp(BinOpInst::Op::SDiv, Plus, M.getConstantInt(IVTy, 128),
                      "grid");
    Value *TooSmall = B.createCmp(CmpInst::Predicate::SLT, Grid,
                                  M.getConstantInt(IVTy, 1));
    Grid = B.createSelect(TooSmall, M.getConstantInt(IVTy, 1), Grid);
    if (IVTy->getBitWidth() < 64)
      Grid = B.createCast(CastInst::Op::SExt, Grid, Ctx.getInt64Ty());
    B.createKernelLaunch(K, Grid, M.getInt64(128), LiveIns);

    // Reroute the preheader around the loop and delete the loop body.
    auto *PreBr = cast<BranchInst>(C.Preheader->getTerminator());
    PreBr->setSuccessor(0, C.Exit);
    for (BasicBlock *BB : C.L->getBlocks())
      for (const auto &I : *BB)
        I->dropAllOperands();
    for (BasicBlock *BB : C.L->getBlocks())
      F.eraseBlock(BB);

    std::string Err;
    if (!verifyFunction(F, &Err) || !verifyFunction(*K, &Err))
      reportFatalError("DOALL outlining produced invalid IR: " + Err +
                       "\n" + M.getString());

    // The independence proof that admitted the loop also admits sharding
    // its iteration space across a device pool: contiguous thread ranges
    // touch no cross-range state the analysis could not see. The halo
    // estimate prices the post-launch boundary exchange between adjacent
    // shards (docs/MultiGPU.md).
    uint64_t Halo = computeHaloBytes(*K);
    K->setShardable(true);
    K->setHaloBytes(Halo);
    if (Remarks)
      Remarks->remark("cgcm-doall-shardable", C.Cond->getLoc(),
                      "kernel '" + KName +
                          "' is shardable across a device pool (halo " +
                          std::to_string(Halo) + " bytes)",
                      F.getName());
  }

  /// Modeled boundary-exchange bytes for one adjacent shard pair: every
  /// pointer parameter the kernel both reads and writes (through GEPs or
  /// directly) contributes one element of the widest type it moves —
  /// the stencil-style footprint a shard boundary exposes. Read-only and
  /// write-only arrays need no re-coherence between shards.
  uint64_t computeHaloBytes(const Function &K) {
    uint64_t Halo = 0;
    for (unsigned A = 0, E = K.getNumArgs(); A != E; ++A) {
      const Argument *Arg = K.getArg(A);
      if (!Arg->getType()->isPointerTy())
        continue;
      uint64_t LoadBytes = 0, StoreBytes = 0;
      auto NoteAccess = [&](const Value *Ptr) {
        for (const User *U : Ptr->users()) {
          if (const auto *LI = dyn_cast<LoadInst>(U)) {
            if (LI->getPointerOperand() == Ptr)
              LoadBytes =
                  std::max(LoadBytes, LI->getType()->getSizeInBytes());
          } else if (const auto *SI = dyn_cast<StoreInst>(U)) {
            if (SI->getPointerOperand() == Ptr)
              StoreBytes = std::max(
                  StoreBytes,
                  SI->getValueOperand()->getType()->getSizeInBytes());
          }
        }
      };
      NoteAccess(Arg);
      for (const Instruction *I : K.instructions())
        if (const auto *G = dyn_cast<GEPInst>(I))
          if (G->getPointerOperand() == Arg)
            NoteAccess(G);
      if (LoadBytes && StoreBytes)
        Halo += std::max(LoadBytes, StoreBytes);
    }
    return Halo;
  }

  Module &M;
  ModuleAnalysisManager &AM;
  DiagnosticEngine *Remarks;
  DOALLStats Stats;
  std::set<std::string> SeenRejects;
  /// Inner-loop phis optimistically treated as IV-free symbols while
  /// their recurrences are being classified.
  std::set<const Instruction *> PhiAssumptions;
};

} // namespace

DOALLStats cgcm::parallelizeDOALLLoops(Module &M, ModuleAnalysisManager &AM,
                                       DiagnosticEngine *Remarks) {
  return DOALLDriver(M, AM, Remarks).run();
}

DOALLStats cgcm::parallelizeDOALLLoops(Module &M, DiagnosticEngine *Remarks) {
  ModuleAnalysisManager MAM;
  return parallelizeDOALLLoops(M, MAM, Remarks);
}
