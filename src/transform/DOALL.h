//===- transform/DOALL.h - Simple DOALL loop parallelizer -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "simple automatic DOALL parallelizer" of the paper's evaluation
/// (section 6): canonical counted loops whose iterations are provably
/// independent are outlined into GPU kernels launched over a grid-stride
/// thread range. Unlike CGCM itself, the parallelizer relies on static
/// alias analysis (and, like the parallelizers the paper targets,
/// assumes distinct pointer arguments do not alias — the PolyBench-style
/// restrict convention). No communication is inserted here: launching the
/// produced kernels without the management pass faults on the first GPU
/// access to host memory, which is the paper's motivating bug.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_DOALL_H
#define CGCM_TRANSFORM_DOALL_H

#include "ir/Module.h"

#include <vector>

namespace cgcm {

class DiagnosticEngine;
class ModuleAnalysisManager;

struct DOALLStats {
  unsigned KernelsCreated = 0;
  unsigned LoopsConsidered = 0;
  unsigned LoopsRejected = 0;
  std::vector<Function *> Kernels;
};

/// Parallelizes every eligible DOALL loop in CPU code. Requires Mem2Reg
/// to have run. Returns creation statistics. When \p Remarks is non-null
/// each outlined loop — and each rejected one, with the reason — is
/// reported as a cgcm-doall-* remark.
DOALLStats parallelizeDOALLLoops(Module &M,
                                 DiagnosticEngine *Remarks = nullptr);

/// Analysis-manager variant. Outlining a loop restructures the host
/// function's CFG and adds a kernel, so the pass invalidates the mutated
/// function's analyses after each outlined loop and module analyses when
/// any kernel was created; the dominator tree reused while cloning the
/// body is a cache hit rather than a rebuild.
DOALLStats parallelizeDOALLLoops(Module &M, ModuleAnalysisManager &AM,
                                 DiagnosticEngine *Remarks = nullptr);

} // namespace cgcm

#endif // CGCM_TRANSFORM_DOALL_H
